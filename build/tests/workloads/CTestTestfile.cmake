# CMake generated Testfile for 
# Source directory: /root/repo/tests/workloads
# Build directory: /root/repo/build/tests/workloads
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/workloads/workloads_suite_test[1]_include.cmake")
include("/root/repo/build/tests/workloads/workloads_casestudy_test[1]_include.cmake")
include("/root/repo/build/tests/workloads/workloads_table5_regression_test[1]_include.cmake")
