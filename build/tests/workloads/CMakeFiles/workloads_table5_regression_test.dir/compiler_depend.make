# Empty compiler generated dependencies file for workloads_table5_regression_test.
# This may be replaced when dependencies are built.
