file(REMOVE_RECURSE
  "CMakeFiles/workloads_table5_regression_test.dir/table5_regression_test.cpp.o"
  "CMakeFiles/workloads_table5_regression_test.dir/table5_regression_test.cpp.o.d"
  "workloads_table5_regression_test"
  "workloads_table5_regression_test.pdb"
  "workloads_table5_regression_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads_table5_regression_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
