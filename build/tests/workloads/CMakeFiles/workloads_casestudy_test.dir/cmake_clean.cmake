file(REMOVE_RECURSE
  "CMakeFiles/workloads_casestudy_test.dir/casestudy_test.cpp.o"
  "CMakeFiles/workloads_casestudy_test.dir/casestudy_test.cpp.o.d"
  "workloads_casestudy_test"
  "workloads_casestudy_test.pdb"
  "workloads_casestudy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads_casestudy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
