# Empty compiler generated dependencies file for workloads_casestudy_test.
# This may be replaced when dependencies are built.
