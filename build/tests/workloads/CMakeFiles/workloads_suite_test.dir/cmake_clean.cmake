file(REMOVE_RECURSE
  "CMakeFiles/workloads_suite_test.dir/suite_test.cpp.o"
  "CMakeFiles/workloads_suite_test.dir/suite_test.cpp.o.d"
  "workloads_suite_test"
  "workloads_suite_test.pdb"
  "workloads_suite_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads_suite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
