# Empty dependencies file for workloads_suite_test.
# This may be replaced when dependencies are built.
