# Empty dependencies file for support_int_math_test.
# This may be replaced when dependencies are built.
