file(REMOVE_RECURSE
  "CMakeFiles/support_int_math_test.dir/int_math_test.cpp.o"
  "CMakeFiles/support_int_math_test.dir/int_math_test.cpp.o.d"
  "support_int_math_test"
  "support_int_math_test.pdb"
  "support_int_math_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_int_math_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
