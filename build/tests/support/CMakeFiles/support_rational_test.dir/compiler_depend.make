# Empty compiler generated dependencies file for support_rational_test.
# This may be replaced when dependencies are built.
