file(REMOVE_RECURSE
  "CMakeFiles/support_rational_test.dir/rational_test.cpp.o"
  "CMakeFiles/support_rational_test.dir/rational_test.cpp.o.d"
  "support_rational_test"
  "support_rational_test.pdb"
  "support_rational_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_rational_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
