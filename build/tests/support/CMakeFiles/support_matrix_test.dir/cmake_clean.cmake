file(REMOVE_RECURSE
  "CMakeFiles/support_matrix_test.dir/matrix_test.cpp.o"
  "CMakeFiles/support_matrix_test.dir/matrix_test.cpp.o.d"
  "support_matrix_test"
  "support_matrix_test.pdb"
  "support_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
