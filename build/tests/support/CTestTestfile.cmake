# CMake generated Testfile for 
# Source directory: /root/repo/tests/support
# Build directory: /root/repo/build/tests/support
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support/support_rational_test[1]_include.cmake")
include("/root/repo/build/tests/support/support_matrix_test[1]_include.cmake")
include("/root/repo/build/tests/support/support_int_math_test[1]_include.cmake")
