# Empty compiler generated dependencies file for core_pipeline_fuzz_test.
# This may be replaced when dependencies are built.
