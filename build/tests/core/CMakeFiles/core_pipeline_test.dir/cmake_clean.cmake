file(REMOVE_RECURSE
  "CMakeFiles/core_pipeline_test.dir/pipeline_test.cpp.o"
  "CMakeFiles/core_pipeline_test.dir/pipeline_test.cpp.o.d"
  "core_pipeline_test"
  "core_pipeline_test.pdb"
  "core_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
