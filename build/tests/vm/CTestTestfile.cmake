# CMake generated Testfile for 
# Source directory: /root/repo/tests/vm
# Build directory: /root/repo/build/tests/vm
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/vm/vm_vm_test[1]_include.cmake")
include("/root/repo/build/tests/vm/vm_opcode_sweep_test[1]_include.cmake")
