file(REMOVE_RECURSE
  "CMakeFiles/vm_vm_test.dir/vm_test.cpp.o"
  "CMakeFiles/vm_vm_test.dir/vm_test.cpp.o.d"
  "vm_vm_test"
  "vm_vm_test.pdb"
  "vm_vm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_vm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
