# Empty compiler generated dependencies file for vm_vm_test.
# This may be replaced when dependencies are built.
