file(REMOVE_RECURSE
  "CMakeFiles/vm_opcode_sweep_test.dir/opcode_sweep_test.cpp.o"
  "CMakeFiles/vm_opcode_sweep_test.dir/opcode_sweep_test.cpp.o.d"
  "vm_opcode_sweep_test"
  "vm_opcode_sweep_test.pdb"
  "vm_opcode_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_opcode_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
