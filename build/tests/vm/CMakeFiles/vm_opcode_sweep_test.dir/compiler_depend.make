# Empty compiler generated dependencies file for vm_opcode_sweep_test.
# This may be replaced when dependencies are built.
