# Empty compiler generated dependencies file for feedback_report_test.
# This may be replaced when dependencies are built.
