file(REMOVE_RECURSE
  "CMakeFiles/feedback_report_test.dir/report_test.cpp.o"
  "CMakeFiles/feedback_report_test.dir/report_test.cpp.o.d"
  "feedback_report_test"
  "feedback_report_test.pdb"
  "feedback_report_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feedback_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
