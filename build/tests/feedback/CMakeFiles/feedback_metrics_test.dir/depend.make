# Empty dependencies file for feedback_metrics_test.
# This may be replaced when dependencies are built.
