file(REMOVE_RECURSE
  "CMakeFiles/feedback_metrics_test.dir/metrics_test.cpp.o"
  "CMakeFiles/feedback_metrics_test.dir/metrics_test.cpp.o.d"
  "feedback_metrics_test"
  "feedback_metrics_test.pdb"
  "feedback_metrics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feedback_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
