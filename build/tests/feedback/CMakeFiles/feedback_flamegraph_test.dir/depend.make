# Empty dependencies file for feedback_flamegraph_test.
# This may be replaced when dependencies are built.
