file(REMOVE_RECURSE
  "CMakeFiles/feedback_flamegraph_test.dir/flamegraph_test.cpp.o"
  "CMakeFiles/feedback_flamegraph_test.dir/flamegraph_test.cpp.o.d"
  "feedback_flamegraph_test"
  "feedback_flamegraph_test.pdb"
  "feedback_flamegraph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feedback_flamegraph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
