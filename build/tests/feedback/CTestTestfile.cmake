# CMake generated Testfile for 
# Source directory: /root/repo/tests/feedback
# Build directory: /root/repo/build/tests/feedback
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/feedback/feedback_metrics_test[1]_include.cmake")
include("/root/repo/build/tests/feedback/feedback_flamegraph_test[1]_include.cmake")
include("/root/repo/build/tests/feedback/feedback_report_test[1]_include.cmake")
