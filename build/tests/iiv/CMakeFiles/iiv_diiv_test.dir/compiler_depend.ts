# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for iiv_diiv_test.
