# Empty dependencies file for iiv_diiv_test.
# This may be replaced when dependencies are built.
