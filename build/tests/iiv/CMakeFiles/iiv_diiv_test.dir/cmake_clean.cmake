file(REMOVE_RECURSE
  "CMakeFiles/iiv_diiv_test.dir/diiv_test.cpp.o"
  "CMakeFiles/iiv_diiv_test.dir/diiv_test.cpp.o.d"
  "iiv_diiv_test"
  "iiv_diiv_test.pdb"
  "iiv_diiv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iiv_diiv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
