# Empty dependencies file for iiv_kelly_test.
# This may be replaced when dependencies are built.
