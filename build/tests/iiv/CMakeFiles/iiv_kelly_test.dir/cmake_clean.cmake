file(REMOVE_RECURSE
  "CMakeFiles/iiv_kelly_test.dir/kelly_test.cpp.o"
  "CMakeFiles/iiv_kelly_test.dir/kelly_test.cpp.o.d"
  "iiv_kelly_test"
  "iiv_kelly_test.pdb"
  "iiv_kelly_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iiv_kelly_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
