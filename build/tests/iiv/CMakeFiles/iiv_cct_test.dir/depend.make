# Empty dependencies file for iiv_cct_test.
# This may be replaced when dependencies are built.
