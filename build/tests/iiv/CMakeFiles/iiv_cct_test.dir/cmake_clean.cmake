file(REMOVE_RECURSE
  "CMakeFiles/iiv_cct_test.dir/cct_test.cpp.o"
  "CMakeFiles/iiv_cct_test.dir/cct_test.cpp.o.d"
  "iiv_cct_test"
  "iiv_cct_test.pdb"
  "iiv_cct_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iiv_cct_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
