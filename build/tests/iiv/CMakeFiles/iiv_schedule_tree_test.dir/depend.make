# Empty dependencies file for iiv_schedule_tree_test.
# This may be replaced when dependencies are built.
