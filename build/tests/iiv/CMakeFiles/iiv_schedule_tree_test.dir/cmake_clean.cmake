file(REMOVE_RECURSE
  "CMakeFiles/iiv_schedule_tree_test.dir/schedule_tree_test.cpp.o"
  "CMakeFiles/iiv_schedule_tree_test.dir/schedule_tree_test.cpp.o.d"
  "iiv_schedule_tree_test"
  "iiv_schedule_tree_test.pdb"
  "iiv_schedule_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iiv_schedule_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
