# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for iiv_schedule_tree_test.
