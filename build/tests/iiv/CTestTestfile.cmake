# CMake generated Testfile for 
# Source directory: /root/repo/tests/iiv
# Build directory: /root/repo/build/tests/iiv
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/iiv/iiv_diiv_test[1]_include.cmake")
include("/root/repo/build/tests/iiv/iiv_schedule_tree_test[1]_include.cmake")
include("/root/repo/build/tests/iiv/iiv_cct_test[1]_include.cmake")
include("/root/repo/build/tests/iiv/iiv_kelly_test[1]_include.cmake")
