file(REMOVE_RECURSE
  "CMakeFiles/ir_builder_test.dir/builder_test.cpp.o"
  "CMakeFiles/ir_builder_test.dir/builder_test.cpp.o.d"
  "ir_builder_test"
  "ir_builder_test.pdb"
  "ir_builder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
