# Empty compiler generated dependencies file for ir_ir_test.
# This may be replaced when dependencies are built.
