# Empty compiler generated dependencies file for ir_parser_test.
# This may be replaced when dependencies are built.
