file(REMOVE_RECURSE
  "CMakeFiles/ir_parser_test.dir/parser_test.cpp.o"
  "CMakeFiles/ir_parser_test.dir/parser_test.cpp.o.d"
  "ir_parser_test"
  "ir_parser_test.pdb"
  "ir_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
