# CMake generated Testfile for 
# Source directory: /root/repo/tests/fold
# Build directory: /root/repo/build/tests/fold
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/fold/fold_folder_test[1]_include.cmake")
include("/root/repo/build/tests/fold/fold_folded_ddg_test[1]_include.cmake")
include("/root/repo/build/tests/fold/fold_fuzz_test[1]_include.cmake")
