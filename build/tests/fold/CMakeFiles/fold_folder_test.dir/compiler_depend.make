# Empty compiler generated dependencies file for fold_folder_test.
# This may be replaced when dependencies are built.
