file(REMOVE_RECURSE
  "CMakeFiles/fold_folder_test.dir/folder_test.cpp.o"
  "CMakeFiles/fold_folder_test.dir/folder_test.cpp.o.d"
  "fold_folder_test"
  "fold_folder_test.pdb"
  "fold_folder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fold_folder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
