# Empty dependencies file for fold_folded_ddg_test.
# This may be replaced when dependencies are built.
