# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fold_folded_ddg_test.
