file(REMOVE_RECURSE
  "CMakeFiles/fold_folded_ddg_test.dir/folded_ddg_test.cpp.o"
  "CMakeFiles/fold_folded_ddg_test.dir/folded_ddg_test.cpp.o.d"
  "fold_folded_ddg_test"
  "fold_folded_ddg_test.pdb"
  "fold_folded_ddg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fold_folded_ddg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
