# Empty dependencies file for fold_fuzz_test.
# This may be replaced when dependencies are built.
