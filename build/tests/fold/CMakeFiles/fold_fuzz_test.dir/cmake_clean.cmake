file(REMOVE_RECURSE
  "CMakeFiles/fold_fuzz_test.dir/fold_fuzz_test.cpp.o"
  "CMakeFiles/fold_fuzz_test.dir/fold_fuzz_test.cpp.o.d"
  "fold_fuzz_test"
  "fold_fuzz_test.pdb"
  "fold_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fold_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
