
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fold/fold_fuzz_test.cpp" "tests/fold/CMakeFiles/fold_fuzz_test.dir/fold_fuzz_test.cpp.o" "gcc" "tests/fold/CMakeFiles/fold_fuzz_test.dir/fold_fuzz_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fold/CMakeFiles/pp_fold.dir/DependInfo.cmake"
  "/root/repo/build/src/poly/CMakeFiles/pp_poly.dir/DependInfo.cmake"
  "/root/repo/build/src/ddg/CMakeFiles/pp_ddg.dir/DependInfo.cmake"
  "/root/repo/build/src/iiv/CMakeFiles/pp_iiv.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/pp_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/pp_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/pp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
