# Empty dependencies file for ddg_shadow_test.
# This may be replaced when dependencies are built.
