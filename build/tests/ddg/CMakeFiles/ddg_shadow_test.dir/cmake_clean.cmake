file(REMOVE_RECURSE
  "CMakeFiles/ddg_shadow_test.dir/shadow_test.cpp.o"
  "CMakeFiles/ddg_shadow_test.dir/shadow_test.cpp.o.d"
  "ddg_shadow_test"
  "ddg_shadow_test.pdb"
  "ddg_shadow_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddg_shadow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
