# Empty compiler generated dependencies file for ddg_statement_test.
# This may be replaced when dependencies are built.
