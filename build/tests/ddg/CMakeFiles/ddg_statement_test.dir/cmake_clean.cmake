file(REMOVE_RECURSE
  "CMakeFiles/ddg_statement_test.dir/statement_test.cpp.o"
  "CMakeFiles/ddg_statement_test.dir/statement_test.cpp.o.d"
  "ddg_statement_test"
  "ddg_statement_test.pdb"
  "ddg_statement_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddg_statement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
