# Empty compiler generated dependencies file for ddg_builder_test.
# This may be replaced when dependencies are built.
