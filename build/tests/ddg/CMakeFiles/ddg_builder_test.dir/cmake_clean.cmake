file(REMOVE_RECURSE
  "CMakeFiles/ddg_builder_test.dir/ddg_builder_test.cpp.o"
  "CMakeFiles/ddg_builder_test.dir/ddg_builder_test.cpp.o.d"
  "ddg_builder_test"
  "ddg_builder_test.pdb"
  "ddg_builder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddg_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
