# CMake generated Testfile for 
# Source directory: /root/repo/tests/ddg
# Build directory: /root/repo/build/tests/ddg
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/ddg/ddg_statement_test[1]_include.cmake")
include("/root/repo/build/tests/ddg/ddg_shadow_test[1]_include.cmake")
include("/root/repo/build/tests/ddg/ddg_builder_test[1]_include.cmake")
