file(REMOVE_RECURSE
  "CMakeFiles/cfg_dynamic_cfg_test.dir/dynamic_cfg_test.cpp.o"
  "CMakeFiles/cfg_dynamic_cfg_test.dir/dynamic_cfg_test.cpp.o.d"
  "cfg_dynamic_cfg_test"
  "cfg_dynamic_cfg_test.pdb"
  "cfg_dynamic_cfg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfg_dynamic_cfg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
