# Empty dependencies file for cfg_dynamic_cfg_test.
# This may be replaced when dependencies are built.
