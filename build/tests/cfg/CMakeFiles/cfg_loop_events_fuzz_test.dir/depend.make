# Empty dependencies file for cfg_loop_events_fuzz_test.
# This may be replaced when dependencies are built.
