# Empty dependencies file for cfg_recursive_components_test.
# This may be replaced when dependencies are built.
