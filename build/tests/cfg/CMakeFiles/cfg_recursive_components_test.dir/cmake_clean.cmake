file(REMOVE_RECURSE
  "CMakeFiles/cfg_recursive_components_test.dir/recursive_components_test.cpp.o"
  "CMakeFiles/cfg_recursive_components_test.dir/recursive_components_test.cpp.o.d"
  "cfg_recursive_components_test"
  "cfg_recursive_components_test.pdb"
  "cfg_recursive_components_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfg_recursive_components_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
