# Empty compiler generated dependencies file for cfg_loop_forest_test.
# This may be replaced when dependencies are built.
