file(REMOVE_RECURSE
  "CMakeFiles/cfg_loop_events_test.dir/loop_events_test.cpp.o"
  "CMakeFiles/cfg_loop_events_test.dir/loop_events_test.cpp.o.d"
  "cfg_loop_events_test"
  "cfg_loop_events_test.pdb"
  "cfg_loop_events_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfg_loop_events_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
