# Empty compiler generated dependencies file for cfg_loop_events_test.
# This may be replaced when dependencies are built.
