# Empty compiler generated dependencies file for cfg_graph_test.
# This may be replaced when dependencies are built.
