file(REMOVE_RECURSE
  "CMakeFiles/cfg_graph_test.dir/graph_test.cpp.o"
  "CMakeFiles/cfg_graph_test.dir/graph_test.cpp.o.d"
  "cfg_graph_test"
  "cfg_graph_test.pdb"
  "cfg_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfg_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
