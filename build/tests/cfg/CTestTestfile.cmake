# CMake generated Testfile for 
# Source directory: /root/repo/tests/cfg
# Build directory: /root/repo/build/tests/cfg
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/cfg/cfg_graph_test[1]_include.cmake")
include("/root/repo/build/tests/cfg/cfg_loop_forest_test[1]_include.cmake")
include("/root/repo/build/tests/cfg/cfg_recursive_components_test[1]_include.cmake")
include("/root/repo/build/tests/cfg/cfg_dynamic_cfg_test[1]_include.cmake")
include("/root/repo/build/tests/cfg/cfg_loop_events_test[1]_include.cmake")
include("/root/repo/build/tests/cfg/cfg_loop_events_fuzz_test[1]_include.cmake")
