# CMake generated Testfile for 
# Source directory: /root/repo/tests/scheduler
# Build directory: /root/repo/build/tests/scheduler
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/scheduler/scheduler_scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/scheduler/scheduler_parameterize_test[1]_include.cmake")
include("/root/repo/build/tests/scheduler/scheduler_fuzz_test[1]_include.cmake")
