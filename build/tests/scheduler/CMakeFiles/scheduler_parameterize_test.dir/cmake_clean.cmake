file(REMOVE_RECURSE
  "CMakeFiles/scheduler_parameterize_test.dir/parameterize_test.cpp.o"
  "CMakeFiles/scheduler_parameterize_test.dir/parameterize_test.cpp.o.d"
  "scheduler_parameterize_test"
  "scheduler_parameterize_test.pdb"
  "scheduler_parameterize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduler_parameterize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
