# Empty dependencies file for scheduler_fuzz_test.
# This may be replaced when dependencies are built.
