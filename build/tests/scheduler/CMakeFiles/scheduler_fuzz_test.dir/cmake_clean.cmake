file(REMOVE_RECURSE
  "CMakeFiles/scheduler_fuzz_test.dir/scheduler_fuzz_test.cpp.o"
  "CMakeFiles/scheduler_fuzz_test.dir/scheduler_fuzz_test.cpp.o.d"
  "scheduler_fuzz_test"
  "scheduler_fuzz_test.pdb"
  "scheduler_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduler_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
