# CMake generated Testfile for 
# Source directory: /root/repo/tests/statican
# Build directory: /root/repo/build/tests/statican
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/statican/statican_statican_test[1]_include.cmake")
