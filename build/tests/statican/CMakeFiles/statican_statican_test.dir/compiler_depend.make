# Empty compiler generated dependencies file for statican_statican_test.
# This may be replaced when dependencies are built.
