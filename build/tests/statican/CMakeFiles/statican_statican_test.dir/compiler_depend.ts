# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for statican_statican_test.
