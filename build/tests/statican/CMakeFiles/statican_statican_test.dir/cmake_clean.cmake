file(REMOVE_RECURSE
  "CMakeFiles/statican_statican_test.dir/statican_test.cpp.o"
  "CMakeFiles/statican_statican_test.dir/statican_test.cpp.o.d"
  "statican_statican_test"
  "statican_statican_test.pdb"
  "statican_statican_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statican_statican_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
