# CMake generated Testfile for 
# Source directory: /root/repo/tests/poly
# Build directory: /root/repo/build/tests/poly
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/poly/poly_simplex_test[1]_include.cmake")
include("/root/repo/build/tests/poly/poly_affine_test[1]_include.cmake")
include("/root/repo/build/tests/poly/poly_polyhedron_test[1]_include.cmake")
include("/root/repo/build/tests/poly/poly_projection_fuzz_test[1]_include.cmake")
