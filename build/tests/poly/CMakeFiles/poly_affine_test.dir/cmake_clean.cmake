file(REMOVE_RECURSE
  "CMakeFiles/poly_affine_test.dir/affine_test.cpp.o"
  "CMakeFiles/poly_affine_test.dir/affine_test.cpp.o.d"
  "poly_affine_test"
  "poly_affine_test.pdb"
  "poly_affine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poly_affine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
