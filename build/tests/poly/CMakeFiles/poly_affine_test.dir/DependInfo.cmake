
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/poly/affine_test.cpp" "tests/poly/CMakeFiles/poly_affine_test.dir/affine_test.cpp.o" "gcc" "tests/poly/CMakeFiles/poly_affine_test.dir/affine_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/poly/CMakeFiles/pp_poly.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
