# Empty dependencies file for poly_affine_test.
# This may be replaced when dependencies are built.
