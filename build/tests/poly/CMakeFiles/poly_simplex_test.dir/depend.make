# Empty dependencies file for poly_simplex_test.
# This may be replaced when dependencies are built.
