file(REMOVE_RECURSE
  "CMakeFiles/poly_simplex_test.dir/simplex_test.cpp.o"
  "CMakeFiles/poly_simplex_test.dir/simplex_test.cpp.o.d"
  "poly_simplex_test"
  "poly_simplex_test.pdb"
  "poly_simplex_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poly_simplex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
