# Empty dependencies file for poly_projection_fuzz_test.
# This may be replaced when dependencies are built.
