file(REMOVE_RECURSE
  "CMakeFiles/poly_projection_fuzz_test.dir/projection_fuzz_test.cpp.o"
  "CMakeFiles/poly_projection_fuzz_test.dir/projection_fuzz_test.cpp.o.d"
  "poly_projection_fuzz_test"
  "poly_projection_fuzz_test.pdb"
  "poly_projection_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poly_projection_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
