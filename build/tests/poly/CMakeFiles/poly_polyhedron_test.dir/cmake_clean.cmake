file(REMOVE_RECURSE
  "CMakeFiles/poly_polyhedron_test.dir/polyhedron_test.cpp.o"
  "CMakeFiles/poly_polyhedron_test.dir/polyhedron_test.cpp.o.d"
  "poly_polyhedron_test"
  "poly_polyhedron_test.pdb"
  "poly_polyhedron_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poly_polyhedron_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
