# Empty dependencies file for poly_polyhedron_test.
# This may be replaced when dependencies are built.
