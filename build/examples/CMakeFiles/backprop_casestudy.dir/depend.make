# Empty dependencies file for backprop_casestudy.
# This may be replaced when dependencies are built.
