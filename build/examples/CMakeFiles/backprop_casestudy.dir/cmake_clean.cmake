file(REMOVE_RECURSE
  "CMakeFiles/backprop_casestudy.dir/backprop_casestudy.cpp.o"
  "CMakeFiles/backprop_casestudy.dir/backprop_casestudy.cpp.o.d"
  "backprop_casestudy"
  "backprop_casestudy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backprop_casestudy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
