file(REMOVE_RECURSE
  "CMakeFiles/gemsfdtd_casestudy.dir/gemsfdtd_casestudy.cpp.o"
  "CMakeFiles/gemsfdtd_casestudy.dir/gemsfdtd_casestudy.cpp.o.d"
  "gemsfdtd_casestudy"
  "gemsfdtd_casestudy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemsfdtd_casestudy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
