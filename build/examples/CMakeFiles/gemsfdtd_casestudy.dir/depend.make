# Empty dependencies file for gemsfdtd_casestudy.
# This may be replaced when dependencies are built.
