# Empty dependencies file for flamegraph_export.
# This may be replaced when dependencies are built.
