file(REMOVE_RECURSE
  "CMakeFiles/flamegraph_export.dir/flamegraph_export.cpp.o"
  "CMakeFiles/flamegraph_export.dir/flamegraph_export.cpp.o.d"
  "flamegraph_export"
  "flamegraph_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flamegraph_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
