# Empty dependencies file for recursion_inspector.
# This may be replaced when dependencies are built.
