file(REMOVE_RECURSE
  "CMakeFiles/recursion_inspector.dir/recursion_inspector.cpp.o"
  "CMakeFiles/recursion_inspector.dir/recursion_inspector.cpp.o.d"
  "recursion_inspector"
  "recursion_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recursion_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
