file(REMOVE_RECURSE
  "CMakeFiles/fig7_flamegraph.dir/fig7_flamegraph.cpp.o"
  "CMakeFiles/fig7_flamegraph.dir/fig7_flamegraph.cpp.o.d"
  "fig7_flamegraph"
  "fig7_flamegraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_flamegraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
