# Empty compiler generated dependencies file for fig7_flamegraph.
# This may be replaced when dependencies are built.
