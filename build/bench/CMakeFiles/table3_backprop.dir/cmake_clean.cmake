file(REMOVE_RECURSE
  "CMakeFiles/table3_backprop.dir/table3_backprop.cpp.o"
  "CMakeFiles/table3_backprop.dir/table3_backprop.cpp.o.d"
  "table3_backprop"
  "table3_backprop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_backprop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
