# Empty dependencies file for table3_backprop.
# This may be replaced when dependencies are built.
