# Empty dependencies file for expII_static_baseline.
# This may be replaced when dependencies are built.
