file(REMOVE_RECURSE
  "CMakeFiles/expII_static_baseline.dir/expII_static_baseline.cpp.o"
  "CMakeFiles/expII_static_baseline.dir/expII_static_baseline.cpp.o.d"
  "expII_static_baseline"
  "expII_static_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expII_static_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
