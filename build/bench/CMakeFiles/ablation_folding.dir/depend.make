# Empty dependencies file for ablation_folding.
# This may be replaced when dependencies are built.
