file(REMOVE_RECURSE
  "CMakeFiles/ablation_folding.dir/ablation_folding.cpp.o"
  "CMakeFiles/ablation_folding.dir/ablation_folding.cpp.o.d"
  "ablation_folding"
  "ablation_folding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_folding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
