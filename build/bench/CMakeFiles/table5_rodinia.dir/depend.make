# Empty dependencies file for table5_rodinia.
# This may be replaced when dependencies are built.
