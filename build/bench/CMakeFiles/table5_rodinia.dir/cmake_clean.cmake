file(REMOVE_RECURSE
  "CMakeFiles/table5_rodinia.dir/table5_rodinia.cpp.o"
  "CMakeFiles/table5_rodinia.dir/table5_rodinia.cpp.o.d"
  "table5_rodinia"
  "table5_rodinia.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_rodinia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
