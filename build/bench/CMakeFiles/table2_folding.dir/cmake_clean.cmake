file(REMOVE_RECURSE
  "CMakeFiles/table2_folding.dir/table2_folding.cpp.o"
  "CMakeFiles/table2_folding.dir/table2_folding.cpp.o.d"
  "table2_folding"
  "table2_folding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_folding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
