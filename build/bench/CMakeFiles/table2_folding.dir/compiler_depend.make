# Empty compiler generated dependencies file for table2_folding.
# This may be replaced when dependencies are built.
