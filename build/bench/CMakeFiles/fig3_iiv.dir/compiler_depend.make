# Empty compiler generated dependencies file for fig3_iiv.
# This may be replaced when dependencies are built.
