file(REMOVE_RECURSE
  "CMakeFiles/fig3_iiv.dir/fig3_iiv.cpp.o"
  "CMakeFiles/fig3_iiv.dir/fig3_iiv.cpp.o.d"
  "fig3_iiv"
  "fig3_iiv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_iiv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
