# Empty compiler generated dependencies file for table4_gemsfdtd.
# This may be replaced when dependencies are built.
