file(REMOVE_RECURSE
  "CMakeFiles/table4_gemsfdtd.dir/table4_gemsfdtd.cpp.o"
  "CMakeFiles/table4_gemsfdtd.dir/table4_gemsfdtd.cpp.o.d"
  "table4_gemsfdtd"
  "table4_gemsfdtd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_gemsfdtd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
