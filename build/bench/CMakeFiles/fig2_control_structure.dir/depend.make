# Empty dependencies file for fig2_control_structure.
# This may be replaced when dependencies are built.
