file(REMOVE_RECURSE
  "CMakeFiles/overhead_profiling.dir/overhead_profiling.cpp.o"
  "CMakeFiles/overhead_profiling.dir/overhead_profiling.cpp.o.d"
  "overhead_profiling"
  "overhead_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overhead_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
