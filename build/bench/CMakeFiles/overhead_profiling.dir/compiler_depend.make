# Empty compiler generated dependencies file for overhead_profiling.
# This may be replaced when dependencies are built.
