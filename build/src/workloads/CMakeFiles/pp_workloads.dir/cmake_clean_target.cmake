file(REMOVE_RECURSE
  "libpp_workloads.a"
)
