
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/backprop.cpp" "src/workloads/CMakeFiles/pp_workloads.dir/backprop.cpp.o" "gcc" "src/workloads/CMakeFiles/pp_workloads.dir/backprop.cpp.o.d"
  "/root/repo/src/workloads/gemsfdtd.cpp" "src/workloads/CMakeFiles/pp_workloads.dir/gemsfdtd.cpp.o" "gcc" "src/workloads/CMakeFiles/pp_workloads.dir/gemsfdtd.cpp.o.d"
  "/root/repo/src/workloads/registry.cpp" "src/workloads/CMakeFiles/pp_workloads.dir/registry.cpp.o" "gcc" "src/workloads/CMakeFiles/pp_workloads.dir/registry.cpp.o.d"
  "/root/repo/src/workloads/rodinia_a.cpp" "src/workloads/CMakeFiles/pp_workloads.dir/rodinia_a.cpp.o" "gcc" "src/workloads/CMakeFiles/pp_workloads.dir/rodinia_a.cpp.o.d"
  "/root/repo/src/workloads/rodinia_b.cpp" "src/workloads/CMakeFiles/pp_workloads.dir/rodinia_b.cpp.o" "gcc" "src/workloads/CMakeFiles/pp_workloads.dir/rodinia_b.cpp.o.d"
  "/root/repo/src/workloads/rodinia_c.cpp" "src/workloads/CMakeFiles/pp_workloads.dir/rodinia_c.cpp.o" "gcc" "src/workloads/CMakeFiles/pp_workloads.dir/rodinia_c.cpp.o.d"
  "/root/repo/src/workloads/util.cpp" "src/workloads/CMakeFiles/pp_workloads.dir/util.cpp.o" "gcc" "src/workloads/CMakeFiles/pp_workloads.dir/util.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/pp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
