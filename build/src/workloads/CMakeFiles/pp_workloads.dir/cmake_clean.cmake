file(REMOVE_RECURSE
  "CMakeFiles/pp_workloads.dir/backprop.cpp.o"
  "CMakeFiles/pp_workloads.dir/backprop.cpp.o.d"
  "CMakeFiles/pp_workloads.dir/gemsfdtd.cpp.o"
  "CMakeFiles/pp_workloads.dir/gemsfdtd.cpp.o.d"
  "CMakeFiles/pp_workloads.dir/registry.cpp.o"
  "CMakeFiles/pp_workloads.dir/registry.cpp.o.d"
  "CMakeFiles/pp_workloads.dir/rodinia_a.cpp.o"
  "CMakeFiles/pp_workloads.dir/rodinia_a.cpp.o.d"
  "CMakeFiles/pp_workloads.dir/rodinia_b.cpp.o"
  "CMakeFiles/pp_workloads.dir/rodinia_b.cpp.o.d"
  "CMakeFiles/pp_workloads.dir/rodinia_c.cpp.o"
  "CMakeFiles/pp_workloads.dir/rodinia_c.cpp.o.d"
  "CMakeFiles/pp_workloads.dir/util.cpp.o"
  "CMakeFiles/pp_workloads.dir/util.cpp.o.d"
  "libpp_workloads.a"
  "libpp_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
