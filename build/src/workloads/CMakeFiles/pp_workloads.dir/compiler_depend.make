# Empty compiler generated dependencies file for pp_workloads.
# This may be replaced when dependencies are built.
