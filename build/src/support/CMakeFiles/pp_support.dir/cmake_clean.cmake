file(REMOVE_RECURSE
  "CMakeFiles/pp_support.dir/int_math.cpp.o"
  "CMakeFiles/pp_support.dir/int_math.cpp.o.d"
  "CMakeFiles/pp_support.dir/matrix.cpp.o"
  "CMakeFiles/pp_support.dir/matrix.cpp.o.d"
  "CMakeFiles/pp_support.dir/rational.cpp.o"
  "CMakeFiles/pp_support.dir/rational.cpp.o.d"
  "CMakeFiles/pp_support.dir/str.cpp.o"
  "CMakeFiles/pp_support.dir/str.cpp.o.d"
  "libpp_support.a"
  "libpp_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
