file(REMOVE_RECURSE
  "libpp_support.a"
)
