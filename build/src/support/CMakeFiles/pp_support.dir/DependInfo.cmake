
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/int_math.cpp" "src/support/CMakeFiles/pp_support.dir/int_math.cpp.o" "gcc" "src/support/CMakeFiles/pp_support.dir/int_math.cpp.o.d"
  "/root/repo/src/support/matrix.cpp" "src/support/CMakeFiles/pp_support.dir/matrix.cpp.o" "gcc" "src/support/CMakeFiles/pp_support.dir/matrix.cpp.o.d"
  "/root/repo/src/support/rational.cpp" "src/support/CMakeFiles/pp_support.dir/rational.cpp.o" "gcc" "src/support/CMakeFiles/pp_support.dir/rational.cpp.o.d"
  "/root/repo/src/support/str.cpp" "src/support/CMakeFiles/pp_support.dir/str.cpp.o" "gcc" "src/support/CMakeFiles/pp_support.dir/str.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
