# Empty dependencies file for pp_support.
# This may be replaced when dependencies are built.
