file(REMOVE_RECURSE
  "CMakeFiles/pp_iiv.dir/cct.cpp.o"
  "CMakeFiles/pp_iiv.dir/cct.cpp.o.d"
  "CMakeFiles/pp_iiv.dir/diiv.cpp.o"
  "CMakeFiles/pp_iiv.dir/diiv.cpp.o.d"
  "CMakeFiles/pp_iiv.dir/schedule_tree.cpp.o"
  "CMakeFiles/pp_iiv.dir/schedule_tree.cpp.o.d"
  "libpp_iiv.a"
  "libpp_iiv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp_iiv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
