# Empty compiler generated dependencies file for pp_iiv.
# This may be replaced when dependencies are built.
