file(REMOVE_RECURSE
  "libpp_iiv.a"
)
