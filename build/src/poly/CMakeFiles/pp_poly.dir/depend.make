# Empty dependencies file for pp_poly.
# This may be replaced when dependencies are built.
