file(REMOVE_RECURSE
  "libpp_poly.a"
)
