
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/poly/affine.cpp" "src/poly/CMakeFiles/pp_poly.dir/affine.cpp.o" "gcc" "src/poly/CMakeFiles/pp_poly.dir/affine.cpp.o.d"
  "/root/repo/src/poly/poly_set.cpp" "src/poly/CMakeFiles/pp_poly.dir/poly_set.cpp.o" "gcc" "src/poly/CMakeFiles/pp_poly.dir/poly_set.cpp.o.d"
  "/root/repo/src/poly/polyhedron.cpp" "src/poly/CMakeFiles/pp_poly.dir/polyhedron.cpp.o" "gcc" "src/poly/CMakeFiles/pp_poly.dir/polyhedron.cpp.o.d"
  "/root/repo/src/poly/simplex.cpp" "src/poly/CMakeFiles/pp_poly.dir/simplex.cpp.o" "gcc" "src/poly/CMakeFiles/pp_poly.dir/simplex.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/pp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
