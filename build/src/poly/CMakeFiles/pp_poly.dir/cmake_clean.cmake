file(REMOVE_RECURSE
  "CMakeFiles/pp_poly.dir/affine.cpp.o"
  "CMakeFiles/pp_poly.dir/affine.cpp.o.d"
  "CMakeFiles/pp_poly.dir/poly_set.cpp.o"
  "CMakeFiles/pp_poly.dir/poly_set.cpp.o.d"
  "CMakeFiles/pp_poly.dir/polyhedron.cpp.o"
  "CMakeFiles/pp_poly.dir/polyhedron.cpp.o.d"
  "CMakeFiles/pp_poly.dir/simplex.cpp.o"
  "CMakeFiles/pp_poly.dir/simplex.cpp.o.d"
  "libpp_poly.a"
  "libpp_poly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp_poly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
