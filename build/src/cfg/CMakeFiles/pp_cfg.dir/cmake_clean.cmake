file(REMOVE_RECURSE
  "CMakeFiles/pp_cfg.dir/dynamic_cfg.cpp.o"
  "CMakeFiles/pp_cfg.dir/dynamic_cfg.cpp.o.d"
  "CMakeFiles/pp_cfg.dir/graph.cpp.o"
  "CMakeFiles/pp_cfg.dir/graph.cpp.o.d"
  "CMakeFiles/pp_cfg.dir/loop_events.cpp.o"
  "CMakeFiles/pp_cfg.dir/loop_events.cpp.o.d"
  "CMakeFiles/pp_cfg.dir/loop_forest.cpp.o"
  "CMakeFiles/pp_cfg.dir/loop_forest.cpp.o.d"
  "CMakeFiles/pp_cfg.dir/recursive_components.cpp.o"
  "CMakeFiles/pp_cfg.dir/recursive_components.cpp.o.d"
  "libpp_cfg.a"
  "libpp_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
