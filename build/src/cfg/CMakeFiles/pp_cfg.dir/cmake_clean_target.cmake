file(REMOVE_RECURSE
  "libpp_cfg.a"
)
