
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cfg/dynamic_cfg.cpp" "src/cfg/CMakeFiles/pp_cfg.dir/dynamic_cfg.cpp.o" "gcc" "src/cfg/CMakeFiles/pp_cfg.dir/dynamic_cfg.cpp.o.d"
  "/root/repo/src/cfg/graph.cpp" "src/cfg/CMakeFiles/pp_cfg.dir/graph.cpp.o" "gcc" "src/cfg/CMakeFiles/pp_cfg.dir/graph.cpp.o.d"
  "/root/repo/src/cfg/loop_events.cpp" "src/cfg/CMakeFiles/pp_cfg.dir/loop_events.cpp.o" "gcc" "src/cfg/CMakeFiles/pp_cfg.dir/loop_events.cpp.o.d"
  "/root/repo/src/cfg/loop_forest.cpp" "src/cfg/CMakeFiles/pp_cfg.dir/loop_forest.cpp.o" "gcc" "src/cfg/CMakeFiles/pp_cfg.dir/loop_forest.cpp.o.d"
  "/root/repo/src/cfg/recursive_components.cpp" "src/cfg/CMakeFiles/pp_cfg.dir/recursive_components.cpp.o" "gcc" "src/cfg/CMakeFiles/pp_cfg.dir/recursive_components.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/pp_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pp_support.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/pp_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
