# Empty compiler generated dependencies file for pp_cfg.
# This may be replaced when dependencies are built.
