file(REMOVE_RECURSE
  "libpp_ir.a"
)
