# Empty dependencies file for pp_ir.
# This may be replaced when dependencies are built.
