file(REMOVE_RECURSE
  "CMakeFiles/pp_ir.dir/builder.cpp.o"
  "CMakeFiles/pp_ir.dir/builder.cpp.o.d"
  "CMakeFiles/pp_ir.dir/ir.cpp.o"
  "CMakeFiles/pp_ir.dir/ir.cpp.o.d"
  "CMakeFiles/pp_ir.dir/parser.cpp.o"
  "CMakeFiles/pp_ir.dir/parser.cpp.o.d"
  "libpp_ir.a"
  "libpp_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
