
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/builder.cpp" "src/ir/CMakeFiles/pp_ir.dir/builder.cpp.o" "gcc" "src/ir/CMakeFiles/pp_ir.dir/builder.cpp.o.d"
  "/root/repo/src/ir/ir.cpp" "src/ir/CMakeFiles/pp_ir.dir/ir.cpp.o" "gcc" "src/ir/CMakeFiles/pp_ir.dir/ir.cpp.o.d"
  "/root/repo/src/ir/parser.cpp" "src/ir/CMakeFiles/pp_ir.dir/parser.cpp.o" "gcc" "src/ir/CMakeFiles/pp_ir.dir/parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/pp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
