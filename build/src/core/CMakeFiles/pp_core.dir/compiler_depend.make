# Empty compiler generated dependencies file for pp_core.
# This may be replaced when dependencies are built.
