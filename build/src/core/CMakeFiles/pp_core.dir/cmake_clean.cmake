file(REMOVE_RECURSE
  "CMakeFiles/pp_core.dir/pipeline.cpp.o"
  "CMakeFiles/pp_core.dir/pipeline.cpp.o.d"
  "libpp_core.a"
  "libpp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
