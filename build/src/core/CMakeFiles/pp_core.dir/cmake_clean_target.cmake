file(REMOVE_RECURSE
  "libpp_core.a"
)
