# Empty dependencies file for pp_fold.
# This may be replaced when dependencies are built.
