file(REMOVE_RECURSE
  "CMakeFiles/pp_fold.dir/folded_ddg.cpp.o"
  "CMakeFiles/pp_fold.dir/folded_ddg.cpp.o.d"
  "CMakeFiles/pp_fold.dir/folder.cpp.o"
  "CMakeFiles/pp_fold.dir/folder.cpp.o.d"
  "libpp_fold.a"
  "libpp_fold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp_fold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
