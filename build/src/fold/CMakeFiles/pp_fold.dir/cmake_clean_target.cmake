file(REMOVE_RECURSE
  "libpp_fold.a"
)
