# Empty compiler generated dependencies file for pp_ddg.
# This may be replaced when dependencies are built.
