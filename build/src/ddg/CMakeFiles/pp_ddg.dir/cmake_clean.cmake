file(REMOVE_RECURSE
  "CMakeFiles/pp_ddg.dir/ddg_builder.cpp.o"
  "CMakeFiles/pp_ddg.dir/ddg_builder.cpp.o.d"
  "CMakeFiles/pp_ddg.dir/statement.cpp.o"
  "CMakeFiles/pp_ddg.dir/statement.cpp.o.d"
  "libpp_ddg.a"
  "libpp_ddg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp_ddg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
