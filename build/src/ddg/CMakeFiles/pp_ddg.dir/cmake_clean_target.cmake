file(REMOVE_RECURSE
  "libpp_ddg.a"
)
