# Empty dependencies file for pp_vm.
# This may be replaced when dependencies are built.
