file(REMOVE_RECURSE
  "libpp_vm.a"
)
