file(REMOVE_RECURSE
  "CMakeFiles/pp_vm.dir/vm.cpp.o"
  "CMakeFiles/pp_vm.dir/vm.cpp.o.d"
  "libpp_vm.a"
  "libpp_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
