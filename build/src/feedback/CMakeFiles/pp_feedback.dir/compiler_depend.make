# Empty compiler generated dependencies file for pp_feedback.
# This may be replaced when dependencies are built.
