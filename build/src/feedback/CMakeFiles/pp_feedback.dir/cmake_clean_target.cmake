file(REMOVE_RECURSE
  "libpp_feedback.a"
)
