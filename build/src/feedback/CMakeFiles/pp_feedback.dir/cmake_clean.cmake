file(REMOVE_RECURSE
  "CMakeFiles/pp_feedback.dir/flamegraph.cpp.o"
  "CMakeFiles/pp_feedback.dir/flamegraph.cpp.o.d"
  "CMakeFiles/pp_feedback.dir/metrics.cpp.o"
  "CMakeFiles/pp_feedback.dir/metrics.cpp.o.d"
  "CMakeFiles/pp_feedback.dir/report.cpp.o"
  "CMakeFiles/pp_feedback.dir/report.cpp.o.d"
  "libpp_feedback.a"
  "libpp_feedback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp_feedback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
