file(REMOVE_RECURSE
  "libpp_scheduler.a"
)
