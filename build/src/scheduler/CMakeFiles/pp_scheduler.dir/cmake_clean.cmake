file(REMOVE_RECURSE
  "CMakeFiles/pp_scheduler.dir/scheduler.cpp.o"
  "CMakeFiles/pp_scheduler.dir/scheduler.cpp.o.d"
  "libpp_scheduler.a"
  "libpp_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
