# Empty dependencies file for pp_scheduler.
# This may be replaced when dependencies are built.
