file(REMOVE_RECURSE
  "CMakeFiles/pp_statican.dir/statican.cpp.o"
  "CMakeFiles/pp_statican.dir/statican.cpp.o.d"
  "libpp_statican.a"
  "libpp_statican.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp_statican.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
