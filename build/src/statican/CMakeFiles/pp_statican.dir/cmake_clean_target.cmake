file(REMOVE_RECURSE
  "libpp_statican.a"
)
