# Empty dependencies file for pp_statican.
# This may be replaced when dependencies are built.
