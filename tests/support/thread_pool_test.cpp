#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace pp::support {
namespace {

TEST(ThreadPool, DefaultWorkersIsPositive) {
  EXPECT_GE(ThreadPool::default_workers(), 1u);
  ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), ThreadPool::default_workers());
}

TEST(ThreadPool, SingleLaneRunsInlineInOrder) {
  ThreadPool pool(1);
  EXPECT_TRUE(pool.serial());
  std::vector<std::size_t> order;
  pool.parallel_for(5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, EmptyRangeIsANoOp) {
  ThreadPool pool(4);
  pool.parallel_for(0, [&](std::size_t) { FAIL() << "body must not run"; });
}

TEST(ThreadPool, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_FALSE(pool.serial());
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, SlotCollectionIsDeterministicAcrossWorkerCounts) {
  auto run = [](unsigned workers) {
    ThreadPool pool(workers);
    std::vector<long> slots(257, 0);
    pool.parallel_for(slots.size(),
                      [&](std::size_t i) { slots[i] = long(i) * long(i); });
    return slots;
  };
  auto serial = run(1);
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(4));
  EXPECT_EQ(serial, run(8));
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.parallel_for(8, [&](std::size_t) {
    pool.parallel_for(8, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, FirstExceptionIsRethrownAfterDrain) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  try {
    pool.parallel_for(64, [&](std::size_t i) {
      if (i == 13) throw std::runtime_error("boom");
      ran.fetch_add(1, std::memory_order_relaxed);
    });
    FAIL() << "expected rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
  // Other chunks still drained; at most the faulting chunk's tail skipped.
  EXPECT_GT(ran.load(), 0);
}

TEST(ThreadPool, ReusableAcrossManyBatches) {
  ThreadPool pool(3);
  long sum = 0;
  for (int round = 0; round < 50; ++round) {
    std::vector<long> slots(round + 1, 0);
    pool.parallel_for(slots.size(), [&](std::size_t i) { slots[i] = 1; });
    sum += std::accumulate(slots.begin(), slots.end(), 0L);
  }
  EXPECT_EQ(sum, 50L * 51L / 2);
}

}  // namespace
}  // namespace pp::support
