#include "support/matrix.hpp"

#include <gtest/gtest.h>

namespace pp {
namespace {

TEST(Matrix, RankOfIdentityAndSingular) {
  RatMatrix id{{Rat(1), Rat(0)}, {Rat(0), Rat(1)}};
  EXPECT_EQ(id.rank(), 2u);
  RatMatrix sing{{Rat(1), Rat(2)}, {Rat(2), Rat(4)}};
  EXPECT_EQ(sing.rank(), 1u);
  RatMatrix zero(3, 3);
  EXPECT_EQ(zero.rank(), 0u);
}

TEST(Matrix, SolveUniqueSystem) {
  // 2x + y = 5 ; x - y = 1  =>  x = 2, y = 1
  RatMatrix a{{Rat(2), Rat(1)}, {Rat(1), Rat(-1)}};
  auto x = a.solve({Rat(5), Rat(1)});
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ((*x)[0], Rat(2));
  EXPECT_EQ((*x)[1], Rat(1));
}

TEST(Matrix, SolveInconsistentReturnsNullopt) {
  RatMatrix a{{Rat(1), Rat(1)}, {Rat(1), Rat(1)}};
  EXPECT_FALSE(a.solve({Rat(1), Rat(2)}).has_value());
}

TEST(Matrix, SolveUnderdeterminedReturnsSomeSolution) {
  RatMatrix a{{Rat(1), Rat(1), Rat(1)}};
  auto x = a.solve({Rat(6)});
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ((*x)[0] + (*x)[1] + (*x)[2], Rat(6));
}

TEST(Matrix, SolveRationalResult) {
  RatMatrix a{{Rat(2), Rat(0)}, {Rat(0), Rat(3)}};
  auto x = a.solve({Rat(1), Rat(1)});
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ((*x)[0], Rat(1, 2));
  EXPECT_EQ((*x)[1], Rat(1, 3));
}

TEST(Matrix, NullspaceOfRankDeficient) {
  RatMatrix a{{Rat(1), Rat(2), Rat(3)}, {Rat(2), Rat(4), Rat(6)}};
  auto basis = a.nullspace();
  EXPECT_EQ(basis.size(), 2u);
  // Every basis vector must satisfy A v = 0.
  for (const auto& v : basis) {
    for (std::size_t r = 0; r < a.rows(); ++r)
      EXPECT_EQ(dot(a.row(r), v), Rat(0));
  }
}

TEST(Matrix, NullspaceOfFullRankIsEmpty) {
  RatMatrix a{{Rat(1), Rat(0)}, {Rat(0), Rat(1)}};
  EXPECT_TRUE(a.nullspace().empty());
}

TEST(Matrix, RowSpaceContains) {
  RatMatrix a{{Rat(1), Rat(0), Rat(1)}, {Rat(0), Rat(1), Rat(1)}};
  EXPECT_TRUE(a.row_space_contains({Rat(1), Rat(1), Rat(2)}));
  EXPECT_TRUE(a.row_space_contains({Rat(2), Rat(-1), Rat(1)}));
  EXPECT_FALSE(a.row_space_contains({Rat(0), Rat(0), Rat(1)}));
  EXPECT_TRUE(a.row_space_contains({Rat(0), Rat(0), Rat(0)}));
}

TEST(Matrix, PushRowAndAccessors) {
  RatMatrix m;
  m.push_row({Rat(1), Rat(2)});
  m.push_row({Rat(3), Rat(4)});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_EQ(m.at(1, 0), Rat(3));
  EXPECT_THROW(m.push_row({Rat(1)}), Error);
}

TEST(Matrix, DotProduct) {
  EXPECT_EQ(dot({Rat(1), Rat(2)}, {Rat(3), Rat(4)}), Rat(11));
  EXPECT_THROW(dot({Rat(1)}, {Rat(1), Rat(2)}), Error);
}

// Property sweep: random-ish integer matrices — solve() result must verify.
class MatrixSolveSweep : public ::testing::TestWithParam<int> {};

TEST_P(MatrixSolveSweep, SolutionSatisfiesSystem) {
  int seed = GetParam();
  // Small deterministic LCG so the sweep is reproducible.
  u64 state = static_cast<u64>(seed) * 6364136223846793005ULL + 1;
  auto next = [&]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<i64>((state >> 33) % 11) - 5;
  };
  std::size_t n = 3;
  RatMatrix a(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) a.at(r, c) = Rat(next());
  RatVec b(n);
  for (auto& v : b) v = Rat(next());
  auto x = a.solve(b);
  if (x) {
    for (std::size_t r = 0; r < n; ++r) EXPECT_EQ(dot(a.row(r), *x), b[r]);
  } else {
    // Inconsistent: rank of [A|b] must exceed rank of A.
    RatMatrix aug(n, n + 1);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) aug.at(r, c) = a.at(r, c);
      aug.at(r, n) = b[r];
    }
    EXPECT_GT(aug.rank(), a.rank());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatrixSolveSweep, ::testing::Range(0, 50));

}  // namespace
}  // namespace pp
