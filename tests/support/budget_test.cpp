#include "support/budget.hpp"

#include <gtest/gtest.h>

namespace pp::support {
namespace {

TEST(RunBudget, DefaultIsUnlimited) {
  RunBudget b;
  EXPECT_TRUE(b.unlimited());
  EXPECT_FALSE(b.wall_exceeded());
  EXPECT_FALSE(b.steps_exceeded(~0ull));
  EXPECT_FALSE(b.shadow_exceeded(~std::size_t{0}));
  EXPECT_FALSE(b.pool_exceeded(~std::size_t{0}));
}

TEST(RunBudget, StepsAccounting) {
  RunBudget b;
  b.vm_steps = 100;
  EXPECT_FALSE(b.unlimited());
  EXPECT_FALSE(b.steps_exceeded(99));
  EXPECT_FALSE(b.steps_exceeded(100));  // at the cap is still within budget
  EXPECT_TRUE(b.steps_exceeded(101));
}

TEST(RunBudget, ShadowAndPoolAccounting) {
  RunBudget b;
  b.shadow_pages = 4;
  b.coord_pool_words = 1000;
  EXPECT_FALSE(b.shadow_exceeded(4));
  EXPECT_TRUE(b.shadow_exceeded(5));
  EXPECT_FALSE(b.pool_exceeded(1000));
  EXPECT_TRUE(b.pool_exceeded(1001));
}

TEST(RunBudget, WallClockNeedsArming) {
  RunBudget b;
  b.wall_ms = 1;  // tiny cap, but unarmed clocks never report exhaustion
  EXPECT_FALSE(b.armed());
  EXPECT_FALSE(b.wall_exceeded());
  EXPECT_EQ(b.elapsed_ms(), 0u);
  b.arm();
  EXPECT_TRUE(b.armed());
  // Can't assert exceeded without sleeping; just exercise the reads.
  (void)b.elapsed_ms();
  (void)b.wall_exceeded();
}

TEST(Diagnostic, RendersDeterministically) {
  Diagnostic d;
  d.severity = Severity::kError;
  d.stage = Stage::kDdg;
  d.statement = 5;
  d.reason = "budget exhausted";
  EXPECT_EQ(d.str(), "[error] ddg: budget exhausted (statement S5)");

  Diagnostic r;
  r.severity = Severity::kWarn;
  r.stage = Stage::kFeedback;
  r.region = "backprop.c:253";
  r.reason = "unanalyzable";
  EXPECT_EQ(r.str(), "[warn] feedback: unanalyzable (region backprop.c:253)");
}

TEST(DiagnosticLog, InsertionOrderAndCounts) {
  DiagnosticLog log;
  EXPECT_TRUE(log.empty());
  log.info(Stage::kSetup, "starting");
  log.warn(Stage::kDdg, "degrading", 3);
  log.error(Stage::kFold, "fold failed");
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.count(Severity::kInfo), 1u);
  EXPECT_EQ(log.count(Severity::kWarn), 1u);
  EXPECT_EQ(log.count(Severity::kError), 1u);
  EXPECT_TRUE(log.has_errors());
  std::string text = log.render();
  // One line per record, in insertion order.
  EXPECT_EQ(text,
            "[info] setup: starting\n"
            "[warn] ddg: degrading (statement S3)\n"
            "[error] fold: fold failed\n");
  log.clear();
  EXPECT_TRUE(log.empty());
  EXPECT_FALSE(log.has_errors());
}

}  // namespace
}  // namespace pp::support
