#include "support/rational.hpp"

#include <gtest/gtest.h>

namespace pp {
namespace {

TEST(Rational, CanonicalForm) {
  Rat r(6, 8);
  EXPECT_EQ(r.num(), 3);
  EXPECT_EQ(r.den(), 4);
  Rat neg(3, -4);
  EXPECT_EQ(neg.num(), -3);
  EXPECT_EQ(neg.den(), 4);
  Rat zero(0, 17);
  EXPECT_EQ(zero.num(), 0);
  EXPECT_EQ(zero.den(), 1);
}

TEST(Rational, Arithmetic) {
  EXPECT_EQ(Rat(1, 2) + Rat(1, 3), Rat(5, 6));
  EXPECT_EQ(Rat(1, 2) - Rat(1, 3), Rat(1, 6));
  EXPECT_EQ(Rat(2, 3) * Rat(3, 4), Rat(1, 2));
  EXPECT_EQ(Rat(2, 3) / Rat(4, 3), Rat(1, 2));
  EXPECT_EQ(-Rat(2, 3), Rat(-2, 3));
}

TEST(Rational, DivisionByZeroThrows) {
  EXPECT_THROW(Rat(1) / Rat(0), Error);
  EXPECT_THROW(Rat(1, 0), Error);
}

TEST(Rational, Comparisons) {
  EXPECT_LT(Rat(1, 3), Rat(1, 2));
  EXPECT_GT(Rat(-1, 3), Rat(-1, 2));
  EXPECT_LE(Rat(2, 4), Rat(1, 2));
  EXPECT_EQ(Rat(2, 4), Rat(1, 2));
  EXPECT_NE(Rat(1, 3), Rat(1, 2));
}

TEST(Rational, FloorCeil) {
  EXPECT_EQ(Rat(7, 2).floor(), 3);
  EXPECT_EQ(Rat(7, 2).ceil(), 4);
  EXPECT_EQ(Rat(-7, 2).floor(), -4);
  EXPECT_EQ(Rat(-7, 2).ceil(), -3);
  EXPECT_EQ(Rat(4).floor(), 4);
  EXPECT_EQ(Rat(4).ceil(), 4);
}

TEST(Rational, StrAndPredicates) {
  EXPECT_EQ(Rat(7, 3).str(), "7/3");
  EXPECT_EQ(Rat(4).str(), "4");
  EXPECT_EQ(Rat(-1, 2).str(), "-1/2");
  EXPECT_TRUE(Rat(0).is_zero());
  EXPECT_TRUE(Rat(4).is_integer());
  EXPECT_FALSE(Rat(1, 2).is_integer());
  EXPECT_EQ(Rat(-5).sign(), -1);
  EXPECT_EQ(Rat(0).sign(), 0);
  EXPECT_EQ(Rat(5).sign(), 1);
}

TEST(Rational, AbsAndCompound) {
  EXPECT_EQ(Rat(-3, 4).abs(), Rat(3, 4));
  Rat r(1, 2);
  r += Rat(1, 2);
  EXPECT_EQ(r, Rat(1));
  r *= Rat(3);
  EXPECT_EQ(r, Rat(3));
  r -= Rat(1, 3);
  EXPECT_EQ(r, Rat(8, 3));
  r /= Rat(2);
  EXPECT_EQ(r, Rat(4, 3));
}

TEST(Rational, FieldAxiomsSweep) {
  // Exhaustive small-value sweep of commutativity/associativity/
  // distributivity — the rational kernel must be a field, exactly.
  std::vector<Rat> vals;
  for (int n = -3; n <= 3; ++n)
    for (int d = 1; d <= 3; ++d) vals.emplace_back(n, d);
  for (const Rat& a : vals) {
    for (const Rat& b : vals) {
      EXPECT_EQ(a + b, b + a);
      EXPECT_EQ(a * b, b * a);
      for (const Rat& c : vals) {
        EXPECT_EQ((a + b) + c, a + (b + c));
        EXPECT_EQ(a * (b + c), a * b + a * c);
      }
    }
  }
}

TEST(Rational, ToDouble) {
  EXPECT_DOUBLE_EQ(Rat(1, 2).to_double(), 0.5);
  EXPECT_DOUBLE_EQ(Rat(-3).to_double(), -3.0);
}

}  // namespace
}  // namespace pp
