// Thread-safety tests for the degrade-don't-die substrate: DiagnosticLog
// under concurrent producers and RunBudget's atomic piece accounting.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "support/budget.hpp"
#include "support/thread_pool.hpp"

namespace pp::support {
namespace {

TEST(DiagnosticLogConcurrency, ConcurrentAddsLoseNothing) {
  DiagnosticLog log;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i)
        log.warn(Stage::kFold, "degraded", t);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(log.size(), std::size_t{kThreads} * kPerThread);
  EXPECT_EQ(log.count(Severity::kWarn), std::size_t{kThreads} * kPerThread);
}

TEST(DiagnosticLogConcurrency, StableFlushSequencesUnorderedProducers) {
  // Each (stage, statement) key has one producer; arrival order across
  // keys races, but the flushed text must not depend on it.
  auto produce = [] {
    DiagnosticLog log;
    ThreadPool pool(4);
    pool.parallel_for(16, [&](std::size_t i) {
      Stage stage = (i % 2 == 0) ? Stage::kFold : Stage::kFeedback;
      log.warn(stage, "task " + std::to_string(i), static_cast<int>(i));
    });
    return log.stable_flush();
  };
  std::string first = produce();
  for (int round = 0; round < 10; ++round) EXPECT_EQ(first, produce());
  // Sorted: all fold records (even i, ascending) before feedback (odd i).
  EXPECT_EQ(first.substr(0, first.find('\n')),
            "[warn] fold: task 0 (statement S0)");
}

TEST(DiagnosticLogConcurrency, StableFlushKeepsArrivalOrderOnTies) {
  DiagnosticLog log;
  log.warn(Stage::kFold, "first", 3);
  log.warn(Stage::kFold, "second", 3);  // same key: arrival order preserved
  log.warn(Stage::kDdg, "earlier stage", 9);
  EXPECT_EQ(log.stable_flush(),
            "[warn] ddg: earlier stage (statement S9)\n"
            "[warn] fold: first (statement S3)\n"
            "[warn] fold: second (statement S3)\n");
  EXPECT_TRUE(log.empty());
}

TEST(DiagnosticLogConcurrency, MergeFromPreservesDonorOrder) {
  DiagnosticLog task_a, task_b, merged;
  task_a.warn(Stage::kFold, "a1", 0);
  task_a.error(Stage::kFold, "a2", 0);
  task_b.warn(Stage::kFold, "b1", 1);
  merged.info(Stage::kSetup, "start");
  merged.merge_from(std::move(task_a));
  merged.merge_from(std::move(task_b));
  EXPECT_EQ(merged.render(),
            "[info] setup: start\n"
            "[warn] fold: a1 (statement S0)\n"
            "[error] fold: a2 (statement S0)\n"
            "[warn] fold: b1 (statement S1)\n");
}

TEST(DiagnosticLogConcurrency, CopyAndMoveCarryRecords) {
  DiagnosticLog log;
  log.error(Stage::kDdg, "trap", 2);
  DiagnosticLog copy = log;
  EXPECT_EQ(copy.render(), log.render());
  DiagnosticLog moved = std::move(log);
  EXPECT_EQ(moved.size(), 1u);
}

TEST(RunBudgetConcurrency, ChargePiecesIsAtomic) {
  RunBudget budget;
  budget.folder_pieces = 1000;
  ThreadPool pool(4);
  pool.parallel_for(256, [&](std::size_t) { budget.charge_pieces(5); });
  EXPECT_EQ(budget.pieces_charged(), 256u * 5u);
  EXPECT_TRUE(budget.pieces_exceeded(budget.pieces_charged()));
  EXPECT_FALSE(budget.pieces_exceeded(1000));
}

TEST(RunBudgetConcurrency, CopyCarriesArmingAndCharges) {
  RunBudget budget;
  budget.wall_ms = 50000;
  budget.arm();
  budget.charge_pieces(7);
  RunBudget copy = budget;
  EXPECT_TRUE(copy.armed());
  EXPECT_EQ(copy.pieces_charged(), 7u);
  EXPECT_EQ(copy.wall_ms, 50000u);
  RunBudget assigned;
  assigned = copy;
  EXPECT_TRUE(assigned.armed());
  EXPECT_EQ(assigned.pieces_charged(), 7u);
}

TEST(RunBudgetConcurrency, ArmIsVisibleAcrossThreads) {
  RunBudget budget;
  budget.wall_ms = 1;
  std::thread reader([&budget] {
    while (!budget.armed()) std::this_thread::yield();
    (void)budget.wall_exceeded();
  });
  budget.arm();
  reader.join();
  EXPECT_TRUE(budget.armed());
}

}  // namespace
}  // namespace pp::support
