#include "support/coord_pool.hpp"

#include <gtest/gtest.h>

namespace pp::support {
namespace {

std::vector<i64> vec(std::span<const i64> s) { return {s.begin(), s.end()}; }

TEST(CoordPool, InternRoundTrips) {
  CoordPool pool;
  CoordRef a = pool.intern(std::vector<i64>{1, 2, 3});
  CoordRef b = pool.intern(std::vector<i64>{4});
  EXPECT_EQ(vec(pool.get(a)), (std::vector<i64>{1, 2, 3}));
  EXPECT_EQ(vec(pool.get(b)), (std::vector<i64>{4}));
}

TEST(CoordPool, EmptyVectorIsTheDefaultRef) {
  CoordPool pool;
  CoordRef empty;
  EXPECT_TRUE(pool.get(empty).empty());
  CoordRef interned = pool.intern({});
  EXPECT_TRUE(pool.get(interned).empty());
}

TEST(CoordPool, ConsecutiveDuplicatesCollapse) {
  // Most loop events only update the context part of the IIV; the
  // numerical coordinates repeat and must not grow the arena.
  CoordPool pool;
  CoordRef a = pool.intern(std::vector<i64>{7, 7});
  std::size_t words = pool.size_words();
  CoordRef b = pool.intern(std::vector<i64>{7, 7});
  EXPECT_EQ(a, b);
  EXPECT_EQ(pool.size_words(), words);
  // A different vector does intern fresh storage...
  CoordRef c = pool.intern(std::vector<i64>{7, 8});
  EXPECT_NE(a, c);
  // ...and only the most recent entry is a dedupe target (the pool is an
  // arena, not a hash set).
  CoordRef d = pool.intern(std::vector<i64>{7, 7});
  EXPECT_NE(a, d);
  EXPECT_EQ(vec(pool.get(d)), (std::vector<i64>{7, 7}));
}

TEST(CoordPool, HandlesStayValidAcrossArenaGrowth) {
  CoordPool pool;
  CoordRef first = pool.intern(std::vector<i64>{42, -1});
  // Force many reallocations of the backing arena.
  for (i64 i = 0; i < 10000; ++i) pool.intern(std::vector<i64>{i, i + 1, i + 2});
  EXPECT_EQ(vec(pool.get(first)), (std::vector<i64>{42, -1}));
}

TEST(CoordPool, ClearKeepsCapacityForReuse) {
  CoordPool pool;
  for (i64 i = 0; i < 1000; ++i) pool.intern(std::vector<i64>{i, i});
  std::size_t cap = pool.capacity_words();
  ASSERT_GT(cap, 0u);
  pool.clear();
  EXPECT_EQ(pool.size_words(), 0u);
  EXPECT_EQ(pool.capacity_words(), cap);
  // A reused pool hands out handles from the recycled storage.
  CoordRef r = pool.intern(std::vector<i64>{9});
  EXPECT_EQ(r.offset, 0u);
  EXPECT_EQ(vec(pool.get(r)), (std::vector<i64>{9}));
  EXPECT_EQ(pool.capacity_words(), cap);
}

TEST(CoordPool, OutOfBoundsRefTraps) {
  CoordPool pool;
  pool.intern(std::vector<i64>{1});
  CoordRef bogus{0, 5};
  EXPECT_THROW(pool.get(bogus), Error);
}

}  // namespace
}  // namespace pp::support
