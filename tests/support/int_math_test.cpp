#include "support/int_math.hpp"

#include <gtest/gtest.h>

namespace pp {
namespace {

TEST(IntMath, GcdBasics) {
  EXPECT_EQ(gcd(12, 18), 6);
  EXPECT_EQ(gcd(-12, 18), 6);
  EXPECT_EQ(gcd(12, -18), 6);
  EXPECT_EQ(gcd(0, 5), 5);
  EXPECT_EQ(gcd(5, 0), 5);
  EXPECT_EQ(gcd(0, 0), 0);
  EXPECT_EQ(gcd(7, 13), 1);
}

TEST(IntMath, Lcm) {
  EXPECT_EQ(lcm(4, 6), 12);
  EXPECT_EQ(lcm(0, 6), 0);
  EXPECT_EQ(lcm(-4, 6), 12);
}

TEST(IntMath, FloorDivAllSignCombinations) {
  EXPECT_EQ(floor_div(7, 2), 3);
  EXPECT_EQ(floor_div(-7, 2), -4);
  EXPECT_EQ(floor_div(7, -2), -4);
  EXPECT_EQ(floor_div(-7, -2), 3);
  EXPECT_EQ(floor_div(6, 2), 3);
  EXPECT_EQ(floor_div(-6, 2), -3);
}

TEST(IntMath, CeilDivAllSignCombinations) {
  EXPECT_EQ(ceil_div(7, 2), 4);
  EXPECT_EQ(ceil_div(-7, 2), -3);
  EXPECT_EQ(ceil_div(7, -2), -3);
  EXPECT_EQ(ceil_div(-7, -2), 4);
  EXPECT_EQ(ceil_div(6, 2), 3);
}

TEST(IntMath, FloorCeilAgreeOnExactDivision) {
  for (int a = -20; a <= 20; ++a) {
    for (int b : {-3, -1, 1, 3}) {
      if (a % b == 0) {
        EXPECT_EQ(floor_div(a, b), ceil_div(a, b));
      }
      EXPECT_LE(floor_div(a, b), ceil_div(a, b));
    }
  }
}

TEST(IntMath, CheckedOpsThrowOnOverflow) {
  i128 big = i128(1) << 126;
  EXPECT_THROW(add_checked(big, big), Error);
  EXPECT_THROW(mul_checked(big, 4), Error);
  EXPECT_THROW(sub_checked(-big - big, big), Error);
  EXPECT_EQ(add_checked(big, -big), 0);
}

TEST(IntMath, ToString128) {
  EXPECT_EQ(to_string_i128(0), "0");
  EXPECT_EQ(to_string_i128(42), "42");
  EXPECT_EQ(to_string_i128(-42), "-42");
  i128 big = i128(1000000000000000000LL) * 1000;
  EXPECT_EQ(to_string_i128(big), "1000000000000000000000");
  EXPECT_EQ(to_string_i128(-big), "-1000000000000000000000");
}

TEST(IntMath, NarrowI64) {
  EXPECT_EQ(narrow_i64(i128(INT64_MAX)), INT64_MAX);
  EXPECT_EQ(narrow_i64(i128(INT64_MIN)), INT64_MIN);
  EXPECT_THROW(narrow_i64(i128(INT64_MAX) + 1), Error);
}

}  // namespace
}  // namespace pp
