// Selective instrumentation's contract (ISSUE PR 8): with
// PipelineOptions::selective_instrumentation on, the full_report is
// BYTE-identical to a full run — the skipped sites were proven
// dependence-free by the exact static analysis, so no dependence edge, no
// shadow page, no fold piece and no report byte may change. Diffing against
// the serial full run covers the whole plan-consumption surface at once.
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "ddg/ddg_builder.hpp"
#include "gtest/gtest.h"
#include "ir/builder.hpp"
#include "verify/exact.hpp"
#include "workloads/workloads.hpp"

namespace pp {
namespace {

std::string report_with(const ir::Module& m, unsigned threads,
                        bool selective, bool observe = false) {
  core::PipelineOptions opts;
  opts.threads = threads;
  opts.selective_instrumentation = selective;
  opts.observe = observe;
  core::ProfileResult r = core::Pipeline(m).run(opts);
  return core::full_report(r);
}

class SelectiveIdentity : public testing::TestWithParam<std::string> {};

TEST_P(SelectiveIdentity, ReportIsByteIdenticalToFullRun) {
  workloads::Workload wl = workloads::make_rodinia(GetParam());
  const std::string full = report_with(wl.module, 1, false);
  EXPECT_NE(full.find("-- static precision --"), std::string::npos);
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(full, report_with(wl.module, threads, true));
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, SelectiveIdentity,
                         testing::ValuesIn(workloads::rodinia_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n)
                             if (c == '+') c = 'p';
                           return n;
                         });

/// A triad kernel whose every access site is provably dependence-free:
/// out[i] = a[i] * 3 + b[i] over three disjoint pre-initialized globals.
/// The strongest test of the skip path — ALL memory shadow work is elided.
/// Each array carries one word of padding: statican widens IV ranges by
/// one step (the exit value), which would otherwise make adjacent arrays
/// look dependent at their shared boundary word.
ir::Module make_triad(i64 n = 64) {
  ir::Module m;
  std::vector<i64> init(static_cast<std::size_t>(n) + 1);
  for (i64 i = 0; i <= n; ++i) init[static_cast<std::size_t>(i)] = i * 7 + 1;
  const i64 ga = m.add_global_init("a", init);
  const i64 gb = m.add_global_init("b", init);
  const i64 go = m.add_global("out", (n + 1) * 8);
  ir::Function& f = m.add_function("main", 0);
  ir::Builder b(m, f);
  b.set_block(b.make_block());
  ir::Reg ra = b.const_(ga);
  ir::Reg rb = b.const_(gb);
  ir::Reg ro = b.const_(go);
  ir::Reg nn = b.const_(n);
  b.counted_loop(0, nn, 1, [&](ir::Reg iv) {
    ir::Reg off = b.muli(iv, 8);
    ir::Reg x = b.load(b.add(ra, off));
    ir::Reg y = b.load(b.add(rb, off));
    b.store(b.add(ro, off), b.add(b.muli(x, 3), y));
  });
  // Return a pre-loop register: a loop-defined one is not defined on the
  // zero-trip path and the IR verifier rejects the whole module.
  b.ret(nn);
  return m;
}

TEST(SelectiveTriad, PlanCoversEverySiteAndReportMatches) {
  const ir::Module m = make_triad();
  const ddg::SelectivePlan plan = verify::exact::compute_selective_plan(m);
  EXPECT_TRUE(plan.poison_reason.empty());
  EXPECT_EQ(plan.total_sites(), 3u);

  const std::string full = report_with(m, 1, false);
  // Guard against a vacuous pass: a verifier-rejected module would yield
  // two identical *error* reports. A real profile carries this section.
  EXPECT_NE(full.find("-- static precision --"), std::string::npos);
  EXPECT_EQ(full, report_with(m, 1, true));
  EXPECT_EQ(full, report_with(m, 4, true));
}

TEST(SelectiveTriad, ObservedStableReportMatchesToo) {
  // The observed run exposes stage-2 counters (ddg.shadow_pages among
  // them) in the self-profile section: the reconstructed page count and
  // untouched event/dependence counters must render identically.
  const ir::Module m = make_triad();
  const std::string full = report_with(m, 1, false, /*observe=*/true);
  EXPECT_NE(full.find("-- self profile --"), std::string::npos);
  EXPECT_EQ(full, report_with(m, 1, true, /*observe=*/true));
  EXPECT_EQ(full, report_with(m, 4, true, /*observe=*/true));
}

TEST(SelectiveTriad, SkipsAreActuallyTaken) {
  // Guard against the plan silently never engaging: profile the triad both
  // ways at the builder level and check the skip counter moved while every
  // observable stayed put.
  const ir::Module m = make_triad();
  core::PipelineOptions base;
  base.threads = 1;
  core::ProfileResult full = core::Pipeline(m).run(base);
  ASSERT_FALSE(full.truncated) << full.diagnostics.render();
  base.selective_instrumentation = true;
  core::ProfileResult sel = core::Pipeline(m).run(base);
  EXPECT_EQ(full.ddg_dependences, sel.ddg_dependences);
  EXPECT_EQ(full.shadow_pages, sel.shadow_pages);
  EXPECT_EQ(full.coord_pool_words, sel.coord_pool_words);
  EXPECT_EQ(full.exit_value, sel.exit_value);
}

TEST(SelectiveGating, AntiOutputTrackingDisablesSkips) {
  // WAR/WAW edges from skipped stores would be lost — the pipeline must
  // refuse to combine the two (and the reports still match because both
  // runs instrument fully).
  const ir::Module m = make_triad();
  core::PipelineOptions opts;
  opts.threads = 1;
  opts.ddg.track_anti_output = true;
  core::ProfileResult full = core::Pipeline(m).run(opts);
  opts.selective_instrumentation = true;
  core::ProfileResult sel = core::Pipeline(m).run(opts);
  EXPECT_EQ(core::full_report(full), core::full_report(sel));
  EXPECT_EQ(full.ddg_dependences, sel.ddg_dependences);
}

TEST(SelectiveGating, ShadowPageBudgetDisablesSkips) {
  // A shadow-page budget's trip point depends on pages_live during the
  // replay; selective must auto-disable so degradation is identical.
  const ir::Module m = make_triad(4096);
  core::PipelineOptions opts;
  opts.threads = 1;
  opts.budget.shadow_pages = 1;
  core::ProfileResult full = core::Pipeline(m).run(opts);
  opts.selective_instrumentation = true;
  core::ProfileResult sel = core::Pipeline(m).run(opts);
  EXPECT_EQ(core::full_report(full), core::full_report(sel));
  EXPECT_EQ(full.truncated, sel.truncated);
}

TEST(SelectiveClamp, ClampedRunsStayByteIdentical) {
  // Clamping gates emission only; skipped sites emit nothing in either
  // mode, so clamped selective runs must match clamped full runs too.
  const ir::Module m = make_triad();
  core::PipelineOptions opts;
  opts.threads = 1;
  opts.ddg.clamp_instances = 8;
  core::ProfileResult full = core::Pipeline(m).run(opts);
  opts.selective_instrumentation = true;
  core::ProfileResult sel = core::Pipeline(m).run(opts);
  EXPECT_EQ(core::full_report(full), core::full_report(sel));
}

}  // namespace
}  // namespace pp
