// pp::obs end-to-end: the observed pipeline produces stage spans covering
// the run, counters that agree with the result's own accounting, a
// Perfetto-loadable Chrome trace and a run manifest, and a self-profile
// report section that is stable across thread counts (the determinism
// suite covers the cross-thread byte-identity; this file covers content).
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "gtest/gtest.h"
#include "obs/obs.hpp"
#include "workloads/workloads.hpp"

namespace pp {
namespace {

core::ProfileResult observed_run(const ir::Module& m, unsigned threads) {
  core::Pipeline pipe(m);
  core::PipelineOptions opts;
  opts.observe = true;
  opts.threads = threads;
  return pipe.run(opts);
}

TEST(SelfProfile, SessionPresentOnlyWhenObserved) {
  workloads::Workload wl = workloads::make_rodinia("backprop");
  core::Pipeline pipe(wl.module);
  EXPECT_EQ(pipe.run({}).obs, nullptr);
  core::ProfileResult r = observed_run(wl.module, 2);
  ASSERT_NE(r.obs, nullptr);
  EXPECT_TRUE(r.obs->enabled());
}

TEST(SelfProfile, StageSpansCoverEveryPipelineStage) {
  workloads::Workload wl = workloads::make_rodinia("backprop");
  core::ProfileResult r = observed_run(wl.module, 2);
  core::full_report(r);  // runs + closes the feedback stage
  std::vector<std::string> names;
  for (const obs::SpanRec& s : r.obs->stage_spans()) names.push_back(s.name);
  EXPECT_EQ(names, (std::vector<std::string>{"stage:verify", "stage:control",
                                             "stage:ddg", "stage:fold",
                                             "stage:feedback"}));
}

TEST(SelfProfile, CountersAgreeWithResultAccounting) {
  workloads::Workload wl = workloads::make_rodinia("backprop");
  core::ProfileResult r = observed_run(wl.module, 4);
  auto cs = r.obs->counters();
  EXPECT_EQ(cs.at("ddg.dependences").value,
            static_cast<i64>(r.ddg_dependences));
  EXPECT_EQ(cs.at("ddg.shadow_pages").value,
            static_cast<i64>(r.shadow_pages));
  EXPECT_EQ(cs.at("ddg.coord_pool_words").value,
            static_cast<i64>(r.coord_pool_words));
  EXPECT_EQ(cs.at("vm.instructions").value,
            static_cast<i64>(r.stats.instructions));
  EXPECT_GT(cs.at("fold.pieces").value, 0);
  // The threaded replay streams both stages through the ring.
  EXPECT_GT(cs.at("ring.events_consumed").value, 0);
  EXPECT_GT(cs.at("ring.batches").value, 0);
}

TEST(SelfProfile, SerialRunHasNoRingCounters) {
  workloads::Workload wl = workloads::make_rodinia("backprop");
  core::ProfileResult r = observed_run(wl.module, 1);
  auto cs = r.obs->counters();
  EXPECT_EQ(cs.count("ring.events_consumed"), 0u);
  EXPECT_GT(cs.at("vm.instructions").value, 0);
}

TEST(SelfProfile, ChromeTraceAndManifestExport) {
  workloads::Workload wl = workloads::make_rodinia("backprop");
  core::ProfileResult r = observed_run(wl.module, 2);
  std::string report = core::full_report(r);

  std::string trace = r.obs->chrome_trace_json();
  EXPECT_EQ(trace.find("{\"traceEvents\":"), 0u);
  for (const char* stage :
       {"stage:verify", "stage:control", "stage:ddg", "stage:fold",
        "stage:feedback"})
    EXPECT_NE(trace.find(stage), std::string::npos) << stage;

  obs::Session::ManifestExtra extra;
  extra.workload = "backprop";
  extra.threads = 2;
  extra.truncated = r.truncated;
  char fp[32];
  std::snprintf(fp, sizeof fp, "%016llx",
                static_cast<unsigned long long>(obs::fnv1a(report)));
  extra.report_fingerprint = fp;
  std::string manifest = r.obs->manifest_json(extra);
  EXPECT_NE(manifest.find("\"workload\": \"backprop\""), std::string::npos);
  EXPECT_NE(manifest.find("{\"name\": \"ddg\", \"wall_ms\": "),
            std::string::npos);
  EXPECT_NE(manifest.find("\"report_fingerprint\": \""), std::string::npos);
  EXPECT_NE(manifest.find("\"ddg.dependences\": "), std::string::npos);
}

TEST(SelfProfile, StageSpanSumIsSaneAgainstWallTime) {
  workloads::Workload wl = workloads::make_rodinia("backprop");
  const u64 t0 = obs::now_ns();
  core::ProfileResult r = observed_run(wl.module, 2);
  core::full_report(r);
  const u64 wall = obs::now_ns() - t0;
  u64 sum = 0;
  for (const obs::SpanRec& s : r.obs->stage_spans()) sum += s.dur_ns;
  EXPECT_GT(sum, 0u);
  // Stage spans are non-overlapping main-thread intervals inside [t0, t1]:
  // their sum can never exceed the enclosing wall time, and the pipeline
  // spends the bulk of the run inside its stages.
  EXPECT_LE(sum, wall);
  EXPECT_GE(static_cast<double>(sum), 0.5 * static_cast<double>(wall));
}

TEST(SelfProfile, StableSectionElidesTimesButTimedSectionHasThem) {
  workloads::Workload wl = workloads::make_rodinia("backprop");
  core::ProfileResult r = observed_run(wl.module, 4);
  core::ReportOptions stable;
  std::string s = core::full_report(r, stable);
  EXPECT_NE(s.find("-- self profile --"), std::string::npos);
  EXPECT_NE(s.find("stage ddg: wall - cpu -"), std::string::npos);
  EXPECT_EQ(s.find("pool.steals"), std::string::npos);

  core::ReportOptions timed;
  timed.stable_self_profile = false;
  std::string t = core::full_report(r, timed);
  EXPECT_NE(t.find("stage ddg: wall "), std::string::npos);
  EXPECT_NE(t.find("pool.tasks"), std::string::npos);
}

}  // namespace
}  // namespace pp
