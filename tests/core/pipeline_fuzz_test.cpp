// End-to-end pipeline fuzzing over randomly generated structured loop
// nests: whatever the nest shape (depth, bounds, interprocedural split,
// triangular bounds), the profiler must
//  * fold every statement's domain exactly with the right instance count,
//  * tag statements with the right loop depth,
//  * keep the whole program 100%-affine under the extended metric.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "ir/builder.hpp"

namespace pp::core {
namespace {

using ir::Builder;
using ir::Function;
using ir::Module;
using ir::Reg;

struct Rng {
  u64 state;
  explicit Rng(u64 seed) : state(seed * 6364136223846793005ull + 99) {}
  i64 range(i64 lo, i64 hi) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return lo + static_cast<i64>((state >> 33) % static_cast<u64>(hi - lo + 1));
  }
};

struct NestSpec {
  int depth;                 // 1..3
  std::vector<i64> trips;    // per-level trip count
  bool triangular;           // level 1 bound = iv0 + 1
  // (interprocedural split is exercised by NestCallFuzz below)
};

// Build a program for the spec; returns expected innermost store count.
u64 build_nest(Module& m, const NestSpec& spec) {
  u64 expected = 0;
  if (spec.triangular) {
    // sum over i of (i + 1) * remaining trips
    for (i64 i = 0; i < spec.trips[0]; ++i) {
      u64 inner = static_cast<u64>(i + 1);
      for (int d = 2; d < spec.depth; ++d)
        inner *= static_cast<u64>(spec.trips[static_cast<std::size_t>(d)]);
      expected += inner;
    }
  } else {
    expected = 1;
    for (int d = 0; d < spec.depth; ++d)
      expected *= static_cast<u64>(spec.trips[static_cast<std::size_t>(d)]);
  }

  i64 g = m.add_global("data", 4096);
  Function& f = m.add_function("main", 0, "nest.c");
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg base = b.const_(g);
  std::vector<Reg> ivs;
  std::function<void(int)> emit = [&](int level) {
    if (level == spec.depth) {
      // Body: store data[(sum of ivs) mod small] — affine accumulate.
      Reg idx = b.const_(0);
      for (Reg iv : ivs) b.add(idx, iv, idx);
      Reg off = b.muli(idx, 8);
      Reg p = b.add(base, off);
      b.store(p, idx);
      return;
    }
    Reg bound;
    if (level == 1 && spec.triangular) {
      bound = b.addi(ivs[0], 1);
    } else {
      bound = b.const_(spec.trips[static_cast<std::size_t>(level)]);
    }
    b.counted_loop(0, bound, 1, [&](Reg iv) {
      ivs.push_back(iv);
      emit(level + 1);
      ivs.pop_back();
    });
  };
  emit(0);
  b.ret();
  return expected;
}

class NestFuzz : public ::testing::TestWithParam<int> {};

TEST_P(NestFuzz, DomainsFoldExactlyWithRightCounts) {
  Rng rng(static_cast<u64>(GetParam()));
  NestSpec spec;
  spec.depth = static_cast<int>(rng.range(1, 3));
  for (int d = 0; d < spec.depth; ++d) spec.trips.push_back(rng.range(2, 6));
  spec.triangular = spec.depth >= 2 && rng.range(0, 1) == 1;


  Module m;
  u64 expected = build_nest(m, spec);
  Pipeline pipe(m);
  ProfileResult r = pipe.run();

  bool found_store = false;
  for (const auto& s : r.program.statements) {
    if (s.meta.op != ir::Op::kStore) continue;
    found_store = true;
    EXPECT_EQ(s.meta.depth, static_cast<std::size_t>(spec.depth));
    EXPECT_EQ(s.meta.executions, expected);
    ASSERT_EQ(s.domain.pieces().size(), 1u);
    const auto& piece = s.domain.pieces()[0];
    EXPECT_TRUE(piece.exact)
        << "depth=" << spec.depth << " triangular=" << spec.triangular;
    EXPECT_EQ(piece.observed_points, expected);
  }
  EXPECT_TRUE(found_store);
  EXPECT_DOUBLE_EQ(feedback::percent_affine(r.program, /*strict=*/false),
                   100.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NestFuzz, ::testing::Range(0, 40));

// Interprocedural variant: the innermost loop lives in a callee called
// from the outer loop's body — the folded depth must still be the full
// nest depth.
class NestCallFuzz : public ::testing::TestWithParam<int> {};

TEST_P(NestCallFuzz, InterproceduralNestsFoldFullDepth) {
  Rng rng(static_cast<u64>(GetParam()) + 500);
  const i64 outer = rng.range(2, 6), inner = rng.range(2, 6);

  Module m;
  i64 g = m.add_global("data", 1024);
  Function& callee = m.add_function("kernel", 1, "nest.c");
  {
    Builder b(m, callee);
    b.set_block(b.make_block());
    Reg base = b.const_(g);
    Reg n = b.const_(inner);
    b.counted_loop(0, n, 1, [&](Reg j) {
      Reg idx = b.add(0, j);
      Reg off = b.muli(idx, 8);
      Reg p = b.add(base, off);
      b.store(p, idx);
    });
    b.ret();
  }
  Function& f = m.add_function("main", 0, "nest.c");
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg n = b.const_(outer);
  b.counted_loop(0, n, 1, [&](Reg i) { b.call(callee, {i}); });
  b.ret();

  Pipeline pipe(m);
  ProfileResult r = pipe.run();
  bool found = false;
  for (const auto& s : r.program.statements) {
    if (s.meta.op != ir::Op::kStore) continue;
    found = true;
    EXPECT_EQ(s.meta.depth, 2u);
    EXPECT_EQ(s.meta.executions, static_cast<u64>(outer * inner));
    ASSERT_EQ(s.domain.pieces().size(), 1u);
    EXPECT_TRUE(s.domain.pieces()[0].exact);
  }
  EXPECT_TRUE(found);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NestCallFuzz, ::testing::Range(0, 30));

}  // namespace
}  // namespace pp::core
