// The parallel pipeline's central contract (DESIGN.md, "Concurrency
// architecture"): `full_report` is BYTE-identical for every thread count.
// threads=1 is the serial reference path (no ring, no buffered fold, no
// fan-out), so diffing it against threaded runs covers every merge-order
// decision at once — fold slots, diagnostics sequencing, scheduler group
// order, oracle witness order, budget-degradation points.
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "gtest/gtest.h"
#include "workloads/workloads.hpp"

namespace pp {
namespace {

std::string report_with_threads(const ir::Module& m, unsigned threads,
                                const core::PipelineOptions& base = {}) {
  core::Pipeline pipe(m);
  core::PipelineOptions opts = base;
  opts.threads = threads;
  core::ProfileResult r = pipe.run(opts);
  return core::full_report(r);
}

class ParallelDeterminism : public testing::TestWithParam<std::string> {};

TEST_P(ParallelDeterminism, ReportIsByteIdenticalAcrossThreadCounts) {
  workloads::Workload wl = workloads::make_rodinia(GetParam());
  const std::string serial = report_with_threads(wl.module, 1);
  for (unsigned threads : {2u, 4u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(serial, report_with_threads(wl.module, threads));
  }
}

// Observability must not break the contract: with observe on, the report
// grows a "-- self profile --" section whose stable rendering (times
// elided, kStable counters only) is still byte-identical across thread
// counts — and except for that section, matches the unobserved report.
TEST_P(ParallelDeterminism, ObservedStableReportIsByteIdenticalToo) {
  workloads::Workload wl = workloads::make_rodinia(GetParam());
  core::PipelineOptions base;
  base.observe = true;
  const std::string serial = report_with_threads(wl.module, 1, base);
  EXPECT_NE(serial.find("-- self profile --"), std::string::npos);
  for (unsigned threads : {2u, 4u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(serial, report_with_threads(wl.module, threads, base));
  }
  // The observed report is the unobserved one plus the self profile.
  const std::string plain = report_with_threads(wl.module, 1);
  EXPECT_EQ(serial.substr(0, plain.size()), plain);
}

// Hot-path trace compaction is a pure optimization: the report with
// path_compaction off (the reference interpretation) must be byte-equal
// to the compacted one at EVERY thread count — compressed runs replay
// through the same ring/fold machinery as per-event streams.
TEST_P(ParallelDeterminism, CompactionIsByteIdenticalOnOffAcrossThreads) {
  workloads::Workload wl = workloads::make_rodinia(GetParam());
  core::PipelineOptions off;
  off.path_compaction = false;
  const std::string reference = report_with_threads(wl.module, 1, off);
  core::PipelineOptions on;
  on.path_compaction = true;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(reference, report_with_threads(wl.module, threads, on));
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, ParallelDeterminism,
                         testing::ValuesIn(workloads::rodinia_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n)
                             if (c == '+') c = 'p';
                           return n;
                         });

// Degraded runs must stay deterministic too: the chaos trigger is
// event-count-seeded and interposed on the producer thread, so the same
// fault lands on the same event at any thread count, and the diagnosed
// partial report matches the serial one byte for byte.
TEST(ParallelDeterminismChaos, DegradedRunsMatchSerialReference) {
  workloads::Workload wl = workloads::make_rodinia("pathfinder");
  for (vm::FaultKind kind :
       {vm::FaultKind::kTruncate, vm::FaultKind::kUnmatchedReturn,
        vm::FaultKind::kMisalign, vm::FaultKind::kBadBlock}) {
    core::PipelineOptions base;
    base.chaos.kind = kind;
    base.chaos.seed = 7;
    SCOPED_TRACE(std::string("fault=") + vm::fault_kind_name(kind));
    const std::string serial = report_with_threads(wl.module, 1, base);
    for (unsigned threads : {2u, 4u}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      EXPECT_EQ(serial, report_with_threads(wl.module, threads, base));
    }
  }
}

// An injected fault landing INSIDE a compressed run must degrade exactly
// like the reference: the chaos interposer sits upstream of the
// compactor, so the fault fires on the same event ordinal either way and
// the armed run flushes at the same point. Reference = compaction off,
// serial; compared against compaction on at several thread counts.
TEST(ParallelDeterminismChaos, FaultInsideCompressedRunMatchesReference) {
  workloads::Workload wl = workloads::make_rodinia("pathfinder");
  for (vm::FaultKind kind :
       {vm::FaultKind::kTruncate, vm::FaultKind::kUnmatchedReturn,
        vm::FaultKind::kMisalign, vm::FaultKind::kBadBlock}) {
    SCOPED_TRACE(std::string("fault=") + vm::fault_kind_name(kind));
    core::PipelineOptions off;
    off.chaos.kind = kind;
    off.chaos.seed = 7;
    off.path_compaction = false;
    const std::string reference = report_with_threads(wl.module, 1, off);
    core::PipelineOptions on = off;
    on.path_compaction = true;
    for (unsigned threads : {1u, 2u, 4u}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      EXPECT_EQ(reference, report_with_threads(wl.module, threads, on));
    }
  }
}

// A folder-piece budget degrades statements; the charge is atomic but
// enforcement happens in merge order, so the SAME statement degrades at
// every thread count and the report (including the degradations section)
// stays identical.
TEST(ParallelDeterminismBudget, PieceBudgetDegradesIdentically) {
  workloads::Workload wl = workloads::make_rodinia("srad_v1");
  core::PipelineOptions base;
  base.budget.folder_pieces = 24;
  const std::string serial = report_with_threads(wl.module, 1, base);
  for (unsigned threads : {2u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(serial, report_with_threads(wl.module, threads, base));
  }
}

// Determinism under cancellation: a job cancelled at a structural point —
// stage boundary or fold merge position — produces a byte-identical
// partial report at ANY thread count. The chaos service faults fire the
// token at exactly those points, so the whole cancellation surface is
// coverable without wall-clock races. Each run gets a FRESH token (tokens
// are one-shot) and the token outlives full_report (which consults it).
TEST(ParallelDeterminismCancel, CancelledRunsMatchSerialReference) {
  workloads::Workload wl = workloads::make_rodinia("pathfinder");
  auto report_with = [&](vm::ServiceFault fault, u64 seed, unsigned threads) {
    support::CancelToken token;
    core::PipelineOptions opts;
    opts.chaos.service = fault;
    opts.chaos.seed = seed;
    opts.cancel = &token;
    opts.threads = threads;
    core::ProfileResult r = core::Pipeline(wl.module).run(opts);
    return core::full_report(r);
  };
  for (vm::ServiceFault fault :
       {vm::ServiceFault::kCancelAtControl, vm::ServiceFault::kCancelAtDdg,
        vm::ServiceFault::kCancelAtFold, vm::ServiceFault::kCancelAtFeedback,
        vm::ServiceFault::kDeadlineMidFold}) {
    SCOPED_TRACE(std::string("fault=") + vm::service_fault_name(fault));
    const std::string serial = report_with(fault, 3, 1);
    EXPECT_NE(serial.find("PARTIAL PROFILE"), std::string::npos);
    for (unsigned threads : {2u, 4u}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      EXPECT_EQ(serial, report_with(fault, 3, threads));
    }
  }
}

// The seeded mid-fold deadline lands on different merge positions for
// different seeds; every one of them must stay thread-count-invariant.
TEST(ParallelDeterminismCancel, MidFoldDeadlineSeedSweep) {
  workloads::Workload wl = workloads::make_rodinia("srad_v1");
  auto report_with = [&](u64 seed, unsigned threads) {
    support::CancelToken token;
    core::PipelineOptions opts;
    opts.chaos.service = vm::ServiceFault::kDeadlineMidFold;
    opts.chaos.seed = seed;
    opts.cancel = &token;
    opts.threads = threads;
    core::ProfileResult r = core::Pipeline(wl.module).run(opts);
    return core::full_report(r);
  };
  for (u64 seed : {u64{0}, u64{1}, u64{2}, u64{3}}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const std::string serial = report_with(seed, 1);
    for (unsigned threads : {2u, 4u}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      EXPECT_EQ(serial, report_with(seed, threads));
    }
  }
}

}  // namespace
}  // namespace pp
