#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include "feedback/flamegraph.hpp"
#include "ir/builder.hpp"

namespace pp::core {
namespace {

using ir::Builder;
using ir::Function;
using ir::Module;
using ir::Op;
using ir::Reg;

// A layerforward-shaped kernel (paper Fig. 6): for each j, sum over k of
// conn[k][j] * l1[k], stored to l2[j]. n2 columns, n1 rows.
Module layerforward_module(i64 n1, i64 n2) {
  Module m;
  i64 conn = m.add_global("conn", n1 * n2 * 8);
  i64 l1 = m.add_global("l1", n1 * 8);
  i64 l2 = m.add_global("l2", n2 * 8);
  Function& f = m.add_function("main", 0, "backprop.c");
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg connr = b.const_(conn);
  Reg l1r = b.const_(l1);
  Reg l2r = b.const_(l2);
  Reg n1r = b.const_(n1);
  Reg n2r = b.const_(n2);
  b.set_line(253);
  b.counted_loop(0, n2r, 1, [&](Reg j) {
    Reg sum = b.fconst(0.0);
    b.set_line(254);
    b.counted_loop(0, n1r, 1, [&](Reg k) {
      // tmp1 = &conn[k][0]; tmp2 = conn[k][j]; tmp3 = l1[k]
      Reg rowoff = b.muli(k, n2 * 8);
      Reg rowptr = b.add(connr, rowoff);
      Reg joff = b.muli(j, 8);
      Reg cellptr = b.add(rowptr, joff);
      Reg tmp2 = b.load(cellptr);
      Reg koff = b.muli(k, 8);
      Reg l1ptr = b.add(l1r, koff);
      Reg tmp3 = b.load(l1ptr);
      Reg prod = b.fmul(tmp2, tmp3);
      b.fadd(sum, prod, sum);
    });
    b.set_line(256);
    Reg joff = b.muli(j, 8);
    Reg outptr = b.add(l2r, joff);
    b.store(outptr, sum);
  });
  b.ret();
  return m;
}

TEST(Pipeline, RunsEndToEnd) {
  Module m = layerforward_module(8, 4);
  Pipeline pipe(m);
  ProfileResult r = pipe.run();
  EXPECT_GT(r.statements.size(), 0u);
  EXPECT_GT(r.program.total_dynamic_ops, 0u);
  EXPECT_GT(r.schedule_tree.total_weight(), 0u);
  EXPECT_EQ(r.schedule_tree.total_weight(), r.program.total_dynamic_ops);
}

TEST(Pipeline, LayerforwardMostlyAffine) {
  Module m = layerforward_module(8, 4);
  Pipeline pipe(m);
  ProfileResult r = pipe.run();
  EXPECT_GT(r.percent_affine(), 60.0);
}

TEST(Pipeline, HotRegionFindsTheNest) {
  Module m = layerforward_module(16, 8);
  Pipeline pipe(m);
  ProfileResult r = pipe.run();
  auto regions = r.hot_regions(0.05);
  ASSERT_GE(regions.size(), 1u);
  // The hottest region is the 2-D nest in backprop.c.
  EXPECT_NE(regions[0].name.find("backprop.c"), std::string::npos);
  u64 ops = 0;
  for (int id : regions[0].stmts) ops += r.program.stmt(id).meta.executions;
  EXPECT_GT(ops, r.program.total_dynamic_ops / 2);
}

TEST(Pipeline, LayerforwardFeedbackMatchesPaperCaseStudy) {
  // Paper Table 3, L_layer row: fully permutable 2-D nest, only the
  // outermost loop parallel, interchange suggested for stride, reduction
  // scalar to expand.
  Module m = layerforward_module(16, 8);
  Pipeline pipe(m);
  ProfileResult r = pipe.run();
  auto regions = r.hot_regions(0.05);
  ASSERT_GE(regions.size(), 1u);
  feedback::RegionMetrics mx = r.analyze(regions[0]);

  EXPECT_EQ(mx.max_loop_depth, 2);
  EXPECT_EQ(mx.tile_depth, 2);          // fully permutable
  EXPECT_FALSE(mx.skew_used);
  EXPECT_TRUE(mx.schedulable);
  EXPECT_GT(mx.parallel_ops, 0u);       // j loop parallel
  // The stride-friendly dimension is j (column index): interchange raises
  // reuse, so potential reuse strictly exceeds current reuse.
  EXPECT_GT(mx.preuse_mem_ops, mx.reuse_mem_ops);
  bool has_interchange = false, has_expand = false;
  for (const auto& s : mx.suggestions) {
    if (s.find("interchange") != std::string::npos) has_interchange = true;
    if (s.find("array-expand") != std::string::npos) has_expand = true;
  }
  EXPECT_TRUE(has_interchange);
  EXPECT_TRUE(has_expand);
  EXPECT_GT(mx.est_speedup, 1.0);
}

TEST(Pipeline, AstAndSummaryRender) {
  Module m = layerforward_module(8, 4);
  Pipeline pipe(m);
  ProfileResult r = pipe.run();
  auto regions = r.hot_regions(0.05);
  ASSERT_GE(regions.size(), 1u);
  feedback::RegionMetrics mx = r.analyze(regions[0]);
  std::string ast = feedback::render_ast(mx, r.program, &m);
  EXPECT_NE(ast.find("for t0"), std::string::npos);
  EXPECT_NE(ast.find("backprop.c"), std::string::npos);
  std::string sum = feedback::summarize(mx);
  EXPECT_NE(sum.find("estimated speedup"), std::string::npos);
}

TEST(Pipeline, FlameGraphRenders) {
  Module m = layerforward_module(8, 4);
  Pipeline pipe(m);
  ProfileResult r = pipe.run();
  std::string svg =
      feedback::render_flamegraph_svg(r.schedule_tree, &m);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("loop"), std::string::npos);
  std::string ascii =
      feedback::render_flamegraph_ascii(r.schedule_tree, &m);
  EXPECT_NE(ascii.find("loop"), std::string::npos);
}

TEST(Pipeline, WholeProgramRegion) {
  Module m = layerforward_module(4, 4);
  Pipeline pipe(m);
  ProfileResult r = pipe.run();
  feedback::Region whole = r.whole_program();
  EXPECT_EQ(whole.stmts.size(), r.program.statements.size());
  feedback::RegionMetrics mx = r.analyze(whole);
  EXPECT_EQ(mx.ops, r.program.total_dynamic_ops);
}

TEST(Pipeline, CctCapturedDuringStage1) {
  Module m = layerforward_module(4, 4);
  Pipeline pipe(m);
  ProfileResult r = pipe.run();
  EXPECT_GE(r.cct.size(), 1u);
}

TEST(Pipeline, RecursiveProgramProfilesFlat) {
  // Recursive sum over an array: the recursive component folds the call
  // chain into a 1-D domain instead of a depth-proportional context.
  Module m;
  i64 g = m.add_global("a", 32 * 8);
  Function& rec = m.add_function("recsum", 2);  // (idx, acc-ptr-ish) -> sum
  {
    Builder b(m, rec);
    int entry = b.make_block();
    int base = b.make_block();
    int step = b.make_block();
    b.set_block(entry);
    Reg n = b.const_(32);
    Reg done = b.cmp(Op::kCmpGe, 0, n);
    b.br_cond(done, base, step);
    b.set_block(base);
    Reg z = b.const_(0);
    b.ret(z);
    b.set_block(step);
    Reg off = b.muli(0, 8);
    Reg baseaddr = b.const_(g);
    Reg p = b.add(baseaddr, off);
    Reg v = b.load(p);
    Reg next = b.addi(0, 1);
    Reg sub = b.call(rec, {next, 1}, true);
    Reg s = b.add(v, sub);
    b.ret(s);
  }
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg zero = b.const_(0);
  Reg res = b.call(rec, {zero, zero}, true);
  b.ret(res);

  Pipeline pipe(m);
  ProfileResult r = pipe.run();
  // The recursive component exists.
  EXPECT_EQ(r.control.rcs.components().size(), 1u);
  // The load inside the recursion has a 1-dimensional folded domain with
  // 32 points (one per recursion level).
  bool found = false;
  for (const auto& s : r.program.statements) {
    if (s.meta.op != Op::kLoad) continue;
    EXPECT_EQ(s.meta.depth, 1u);
    ASSERT_EQ(s.domain.pieces().size(), 1u);
    EXPECT_EQ(s.domain.pieces()[0].observed_points, 32u);
    found = true;
  }
  EXPECT_TRUE(found);
  // And the CCT (for contrast) is deep.
  EXPECT_GT(r.cct.max_depth(), 30);
}

TEST(Pipeline, RejectsIllFormedModuleBeforeExecution) {
  // A dangling branch target: the verifier must reject the module with a
  // structured diagnostic and the VM must never start.
  Module m = layerforward_module(4, 4);
  for (auto& bb : m.functions[0].blocks)
    if (!bb.instrs.empty() && bb.instrs.back().op == Op::kBr)
      bb.instrs.back().imm = 99;

  Pipeline pipe(m);
  ProfileResult r = pipe.run();
  EXPECT_TRUE(r.truncated);
  EXPECT_EQ(r.stats.instructions, 0u) << "VM ran on an ill-formed module";
  EXPECT_TRUE(r.program.statements.empty());
  std::string diag = r.diagnostics.render();
  EXPECT_NE(diag.find("dangling-branch-target"), std::string::npos) << diag;
  EXPECT_NE(diag.find("module rejected"), std::string::npos) << diag;
}

TEST(Pipeline, VerifierOptOutProfilesAnyway) {
  // use-before-def is harmless at runtime (registers are zero-initialized)
  // but ill-formed; with verify_module=false the profile must proceed.
  Module m = layerforward_module(4, 4);
  Function& f = m.functions[0];
  ir::Instr use;
  use.op = Op::kMov;
  use.dst = f.num_regs;
  use.a = f.num_regs;
  f.num_regs += 1;
  auto& entry = f.blocks.front().instrs;
  entry.insert(entry.begin(), use);

  Pipeline strict(m);
  ProfileResult rejected = strict.run();
  EXPECT_TRUE(rejected.truncated);
  EXPECT_EQ(rejected.stats.instructions, 0u);

  PipelineOptions opts;
  opts.verify_module = false;
  Pipeline lenient(m);
  ProfileResult r = lenient.run(opts);
  EXPECT_FALSE(r.truncated);
  EXPECT_GT(r.stats.instructions, 0u);
  EXPECT_FALSE(r.program.statements.empty());
}

}  // namespace
}  // namespace pp::core
