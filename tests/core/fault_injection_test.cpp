// Fault-injection harness: every fault the ChaosObserver can inject — and
// every budget exhaustion and runtime trap — must yield a *diagnosed
// partial result*, never an uncaught throw. This is the executable form of
// the pipeline's degrade-don't-die contract.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "ir/builder.hpp"

namespace pp::core {
namespace {

using ir::Builder;
using ir::Function;
using ir::Module;
using ir::Op;
using ir::Reg;

// Same layerforward shape the pipeline tests use: j/k 2-D nest with loads,
// an FP reduction and a store — enough events to trip any chaos trigger.
Module layerforward_module(i64 n1, i64 n2) {
  Module m;
  i64 conn = m.add_global("conn", n1 * n2 * 8);
  i64 l1 = m.add_global("l1", n1 * 8);
  i64 l2 = m.add_global("l2", n2 * 8);
  Function& f = m.add_function("main", 0, "backprop.c");
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg connr = b.const_(conn);
  Reg l1r = b.const_(l1);
  Reg l2r = b.const_(l2);
  Reg n1r = b.const_(n1);
  Reg n2r = b.const_(n2);
  b.counted_loop(0, n2r, 1, [&](Reg j) {
    Reg sum = b.fconst(0.0);
    b.counted_loop(0, n1r, 1, [&](Reg k) {
      Reg rowoff = b.muli(k, n2 * 8);
      Reg rowptr = b.add(connr, rowoff);
      Reg joff = b.muli(j, 8);
      Reg cellptr = b.add(rowptr, joff);
      Reg tmp2 = b.load(cellptr);
      Reg koff = b.muli(k, 8);
      Reg l1ptr = b.add(l1r, koff);
      Reg tmp3 = b.load(l1ptr);
      Reg prod = b.fmul(tmp2, tmp3);
      b.fadd(sum, prod, sum);
    });
    Reg joff = b.muli(j, 8);
    Reg outptr = b.add(l2r, joff);
    b.store(outptr, sum);
  });
  b.ret();
  return m;
}

// A kernel that works for a while, then traps: sums a[0..n), then loads
// from an address far outside VM memory.
Module trapping_module(i64 n) {
  Module m;
  i64 g = m.add_global("a", n * 8);
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg base = b.const_(g);
  Reg nr = b.const_(n);
  Reg acc = b.const_(0);
  b.counted_loop(0, nr, 1, [&](Reg i) {
    Reg off = b.muli(i, 8);
    Reg p = b.add(base, off);
    Reg v = b.load(p);
    b.add(acc, v, acc);
  });
  Reg bad = b.const_(i64{1} << 40);
  b.load(bad);  // load trap: far beyond VM memory
  b.ret(acc);
  return m;
}

// Reference run: the clean control structure the faulty runs must preserve.
struct ControlShape {
  std::size_t forests;
  std::size_t total_loops;
  int main_max_depth;
};

ControlShape shape_of(const cfg::ControlStructure& cs) {
  ControlShape s{cs.forests.size(), 0, 0};
  for (const auto& [func, forest] : cs.forests) {
    s.total_loops += forest.loops().size();
    s.main_max_depth = std::max(s.main_max_depth, forest.max_depth());
  }
  return s;
}

class FaultMatrix : public ::testing::TestWithParam<
                        std::tuple<vm::FaultKind, u64 /*seed*/>> {};

TEST_P(FaultMatrix, EveryFaultYieldsDiagnosedPartialResult) {
  auto [kind, seed] = GetParam();
  Module m = layerforward_module(8, 4);

  ProfileResult clean = Pipeline(m).run();
  ASSERT_FALSE(clean.truncated);
  ControlShape clean_shape = shape_of(clean.control);

  PipelineOptions opts;
  opts.chaos.kind = kind;
  opts.chaos.seed = seed;
  ProfileResult r;
  // The contract under test: no pp::Error (or anything else) escapes.
  ASSERT_NO_THROW(r = Pipeline(m).run(opts));

  // The fault was diagnosed, not swallowed.
  EXPECT_TRUE(r.truncated) << vm::fault_kind_name(kind) << " seed " << seed;
  EXPECT_FALSE(r.diagnostics.empty());

  // Stage 1 is never chaos-wrapped: the control structure stays intact.
  ControlShape s = shape_of(r.control);
  EXPECT_EQ(s.forests, clean_shape.forests);
  EXPECT_EQ(s.total_loops, clean_shape.total_loops);
  EXPECT_EQ(s.main_max_depth, clean_shape.main_max_depth);

  // The partial result is still a result: report rendering never throws
  // and always carries the degradation section.
  std::string report;
  ASSERT_NO_THROW(report = full_report(r));
  EXPECT_NE(report.find("-- degradations --"), std::string::npos);
  EXPECT_NE(report.find("PARTIAL PROFILE"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    AllFaults, FaultMatrix,
    ::testing::Combine(::testing::Values(vm::FaultKind::kTruncate,
                                         vm::FaultKind::kUnmatchedReturn,
                                         vm::FaultKind::kMisalign,
                                         vm::FaultKind::kBadFunc,
                                         vm::FaultKind::kBadBlock),
                       ::testing::Values(u64{1}, u64{7}, u64{42})),
    [](const auto& info) {
      std::string name = vm::fault_kind_name(std::get<0>(info.param));
      for (char& c : name)
        if (c == '-') c = '_';
      return name + "_s" + std::to_string(std::get<1>(info.param));
    });

// Service-level fault points: each one fires the run's CancelToken at a
// deterministic structural point (stage boundary / seeded fold merge
// position). Same contract as the event-stream faults — a diagnosed
// partial result, never a throw — plus the cancellation bookkeeping.
class ServiceFaultMatrix
    : public ::testing::TestWithParam<std::tuple<vm::ServiceFault, u64>> {};

TEST_P(ServiceFaultMatrix, EveryServiceFaultYieldsDiagnosedPartialResult) {
  auto [fault, seed] = GetParam();
  Module m = layerforward_module(8, 4);

  support::CancelToken token;
  PipelineOptions opts;
  opts.chaos.service = fault;
  opts.chaos.seed = seed;
  opts.cancel = &token;
  ProfileResult r;
  ASSERT_NO_THROW(r = Pipeline(m).run(opts));

  EXPECT_TRUE(r.truncated) << vm::service_fault_name(fault);
  EXPECT_TRUE(r.cancelled);
  EXPECT_TRUE(token.cancelled());
  EXPECT_FALSE(r.diagnostics.empty());
  EXPECT_NE(r.diagnostics.render().find("cancelled"), std::string::npos);

  // kDeadlineMidFold expires the deadline; the cancel points fire a plain
  // cancel — the reason is preserved for the service's outcome report.
  if (fault == vm::ServiceFault::kDeadlineMidFold)
    EXPECT_EQ(token.reason(), support::CancelReason::kDeadline);
  else
    EXPECT_EQ(token.reason(), support::CancelReason::kCancel);

  std::string report;
  ASSERT_NO_THROW(report = full_report(r));
  EXPECT_NE(report.find("PARTIAL PROFILE"), std::string::npos);
  EXPECT_NE(report.find("cancelled"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    AllServiceFaults, ServiceFaultMatrix,
    ::testing::Combine(
        ::testing::Values(vm::ServiceFault::kCancelAtControl,
                          vm::ServiceFault::kCancelAtDdg,
                          vm::ServiceFault::kCancelAtFold,
                          vm::ServiceFault::kCancelAtFeedback,
                          vm::ServiceFault::kDeadlineMidFold),
        ::testing::Values(u64{1}, u64{2}, u64{3})),
    [](const auto& info) {
      std::string name = vm::service_fault_name(std::get<0>(info.param));
      for (char& c : name)
        if (c == '-') c = '_';
      return name + "_s" + std::to_string(std::get<1>(info.param));
    });

TEST(ServiceFault, CancelAtDdgPreservesStageOneStructure) {
  // Cancelling at the stage-2 boundary must not cost the control
  // structure stage 1 already built.
  Module m = layerforward_module(8, 4);
  ProfileResult clean = Pipeline(m).run();
  ControlShape clean_shape = shape_of(clean.control);

  support::CancelToken token;
  PipelineOptions opts;
  opts.chaos.service = vm::ServiceFault::kCancelAtDdg;
  opts.cancel = &token;
  ProfileResult r = Pipeline(m).run(opts);
  ControlShape s = shape_of(r.control);
  EXPECT_EQ(s.forests, clean_shape.forests);
  EXPECT_EQ(s.total_loops, clean_shape.total_loops);
  EXPECT_EQ(s.main_max_depth, clean_shape.main_max_depth);
  EXPECT_EQ(r.statements.size(), 0u);  // stage 2 never ran
}

TEST(ServiceFault, RealDeadlineExpiryDegradesLikeChaosDeadline) {
  // A genuinely expired deadline (not chaos-injected) lands wherever the
  // next checkpoint is; it must still come back diagnosed, with the
  // deadline reason recorded.
  Module m = layerforward_module(16, 16);
  support::CancelToken token;
  token.set_deadline_in_ms(0);  // already expired at the first poll
  PipelineOptions opts;
  opts.cancel = &token;
  ProfileResult r;
  ASSERT_NO_THROW(r = Pipeline(m).run(opts));
  EXPECT_TRUE(r.truncated);
  EXPECT_TRUE(r.cancelled);
  EXPECT_EQ(token.reason(), support::CancelReason::kDeadline);
  EXPECT_NE(r.diagnostics.render().find("deadline"), std::string::npos);
  ASSERT_NO_THROW(full_report(r));
}

TEST(FaultInjection, RuntimeTrapYieldsPartialProfile) {
  Module m = trapping_module(16);
  ProfileResult r;
  ASSERT_NO_THROW(r = Pipeline(m).run());
  EXPECT_TRUE(r.truncated);
  // Both replays trap; both degradations are on record.
  EXPECT_TRUE(r.diagnostics.has_errors());
  std::string rendered = r.diagnostics.render();
  EXPECT_NE(rendered.find("VM trap"), std::string::npos);
  // The prefix was profiled: the summation loop's statements exist and the
  // partial stats count its instructions.
  EXPECT_GT(r.statements.size(), 0u);
  EXPECT_GT(r.stats.instructions, 0u);
  EXPECT_GT(r.program.total_dynamic_ops, 0u);
}

TEST(FaultInjection, MissingEntryDiagnosedBeforeAnyReplay) {
  Module m = layerforward_module(4, 4);
  PipelineOptions opts;
  opts.entry = "does_not_exist";
  ProfileResult r;
  ASSERT_NO_THROW(r = Pipeline(m).run(opts));
  EXPECT_TRUE(r.truncated);
  ASSERT_EQ(r.diagnostics.size(), 1u);
  EXPECT_EQ(r.diagnostics.all()[0].stage, support::Stage::kSetup);
  EXPECT_EQ(r.diagnostics.all()[0].severity, support::Severity::kError);
  EXPECT_NE(r.diagnostics.all()[0].reason.find("not found"),
            std::string::npos);
  EXPECT_EQ(r.statements.size(), 0u);
  EXPECT_EQ(r.stats.instructions, 0u);  // no replay was paid for
}

TEST(FaultInjection, ArgCountMismatchDiagnosedBeforeAnyReplay) {
  Module m = layerforward_module(4, 4);
  PipelineOptions opts;
  opts.args = {1, 2, 3};  // main takes none
  ProfileResult r;
  ASSERT_NO_THROW(r = Pipeline(m).run(opts));
  EXPECT_TRUE(r.truncated);
  ASSERT_EQ(r.diagnostics.size(), 1u);
  EXPECT_EQ(r.diagnostics.all()[0].stage, support::Stage::kSetup);
  EXPECT_EQ(r.stats.instructions, 0u);
}

TEST(FaultInjection, StepBudgetTruncatesBothReplays) {
  Module m = layerforward_module(8, 8);
  PipelineOptions opts;
  opts.budget.vm_steps = 200;
  ProfileResult r;
  ASSERT_NO_THROW(r = Pipeline(m).run(opts));
  EXPECT_TRUE(r.truncated);
  EXPECT_FALSE(r.diagnostics.empty());
  EXPECT_NE(r.diagnostics.render().find("step limit"), std::string::npos);
  // Partial profile: some statements were still collected.
  EXPECT_GT(r.statements.size(), 0u);
  EXPECT_LE(r.stats.instructions, 200u);
}

TEST(FaultInjection, CoordPoolBudgetDegradesToOverApproximation) {
  Module m = layerforward_module(16, 8);
  ProfileResult clean = Pipeline(m).run();
  ASSERT_GT(clean.coord_pool_words, 64u);

  PipelineOptions opts;
  opts.budget.coord_pool_words = 64;  // far below the clean run's usage
  ProfileResult r;
  ASSERT_NO_THROW(r = Pipeline(m).run(opts));
  EXPECT_TRUE(r.truncated);
  EXPECT_GT(r.program.degraded_statements, 0u);
  EXPECT_NE(r.diagnostics.render().find("coordinate-pool budget"),
            std::string::npos);

  // %Aff honesty: degraded statements never count as affine, under either
  // strictness, so the degraded run's %Aff cannot exceed the clean run's.
  auto strict = r.program.affine_flags(true);
  auto extended = r.program.affine_flags(false);
  u64 degraded_seen = 0;
  for (const auto& s : r.program.statements) {
    if (!s.degraded) continue;
    ++degraded_seen;
    EXPECT_FALSE(s.domain_exact);
    EXPECT_FALSE(s.is_scev);
    EXPECT_FALSE(strict[static_cast<std::size_t>(s.meta.id)]);
    EXPECT_FALSE(extended[static_cast<std::size_t>(s.meta.id)]);
  }
  EXPECT_EQ(degraded_seen, r.program.degraded_statements);
  EXPECT_LE(r.percent_affine(), clean.percent_affine());

  // Dependences incident to degraded statements are over-approximate:
  // they contribute nothing to the must-dependence view.
  for (const auto& d : r.program.deps) {
    if (r.program.stmt(d.src).degraded || r.program.stmt(d.dst).degraded) {
      EXPECT_TRUE(d.must_relation().empty());
      EXPECT_EQ(d.must_coverage(), 0.0);
    }
  }
}

TEST(FaultInjection, ShadowPageBudgetDegrades) {
  // Touch many distinct 32 KiB shadow spans: a strided walk over a large
  // global, one store per page.
  constexpr i64 kPageSpan = 8 * (i64{1} << 12);  // ShadowMemory page bytes
  constexpr i64 kPages = 8;
  Module m;
  i64 g = m.add_global("big", kPages * kPageSpan);
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg base = b.const_(g);
  Reg n = b.const_(kPages);
  b.counted_loop(0, n, 1, [&](Reg i) {
    Reg off = b.muli(i, kPageSpan);
    Reg p = b.add(base, off);
    b.store(p, i);
    Reg v = b.load(p);
    b.addi(v, 1);
  });
  b.ret();

  PipelineOptions opts;
  opts.budget.shadow_pages = 2;
  ProfileResult r;
  ASSERT_NO_THROW(r = Pipeline(m).run(opts));
  EXPECT_TRUE(r.truncated);
  EXPECT_GT(r.program.degraded_statements, 0u);
  EXPECT_NE(r.diagnostics.render().find("shadow-page budget"),
            std::string::npos);
}

TEST(FaultInjection, ChaosOnTrappingProgramStillIsolated) {
  // Compound failure: injected stream corruption AND a runtime trap in the
  // same run must still come back as one diagnosed partial result.
  Module m = trapping_module(32);
  for (u64 seed : {u64{1}, u64{2}, u64{3}}) {
    PipelineOptions opts;
    opts.chaos.kind = vm::FaultKind::kUnmatchedReturn;
    opts.chaos.seed = seed;
    ProfileResult r;
    ASSERT_NO_THROW(r = Pipeline(m).run(opts));
    EXPECT_TRUE(r.truncated);
    EXPECT_FALSE(r.diagnostics.empty());
    ASSERT_NO_THROW(full_report(r));
  }
}

TEST(FaultInjection, CleanRunStaysClean) {
  // The harness itself must not degrade healthy runs: validator wired in,
  // budget unlimited, chaos off — identical results to the seed pipeline.
  Module m = layerforward_module(8, 4);
  ProfileResult r = Pipeline(m).run();
  EXPECT_FALSE(r.truncated);
  EXPECT_TRUE(r.diagnostics.empty());
  EXPECT_EQ(r.program.degraded_statements, 0u);
  std::string report = full_report(r);
  EXPECT_NE(report.find("-- degradations --\nnone"), std::string::npos);
  EXPECT_EQ(report.find("PARTIAL"), std::string::npos);
}

}  // namespace
}  // namespace pp::core
