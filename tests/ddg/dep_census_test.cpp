// Dependence-count invariance of the shadow-memory implementation: the
// page-table shadow + interned coordinates must stream exactly the same
// dynamic dependences as the reference hash-map shadow (with the clamp /
// anti-dependence bugs fixed). The goldens below were captured from that
// bug-fixed reference implementation on the mini-Rodinia workloads; any
// drift means the shadow rewrite changed profiling semantics, not just
// its data layout.
#include <gtest/gtest.h>

#include "cfg/dynamic_cfg.hpp"
#include "ddg/ddg_builder.hpp"
#include "workloads/workloads.hpp"

namespace pp::ddg {
namespace {

struct Census {
  u64 instrs = 0;
  u64 reg_flow = 0;
  u64 mem_flow = 0;
  u64 anti = 0;
  u64 output = 0;
  u64 total = 0;
};

struct CountSink : DdgSink {
  Census c;
  void on_instruction(const Statement&, std::span<const i64>, bool, i64, bool,
                      i64) override {
    ++c.instrs;
  }
  void on_dependence(DepKind kind, int, std::span<const i64>, int,
                     std::span<const i64>, int) override {
    switch (kind) {
      case DepKind::kRegFlow: ++c.reg_flow; break;
      case DepKind::kMemFlow: ++c.mem_flow; break;
      case DepKind::kAnti: ++c.anti; break;
      case DepKind::kOutput: ++c.output; break;
    }
  }
};

Census census(const char* name, DdgOptions opts) {
  workloads::Workload w = workloads::make_rodinia(name);
  cfg::ControlStructure cs;
  {
    vm::Machine machine(w.module);
    cfg::DynamicCfgBuilder dyn;
    machine.set_observer(&dyn);
    machine.run("main");
    cs = cfg::ControlStructure::build(dyn, {w.module.find_function("main")->id});
  }
  CountSink sink;
  DdgBuilder builder(w.module, cs, &sink, opts);
  {
    vm::Machine machine(w.module);
    machine.set_observer(&builder);
    machine.run("main");
  }
  sink.c.total = builder.dependences_emitted();
  EXPECT_EQ(sink.c.total,
            sink.c.reg_flow + sink.c.mem_flow + sink.c.anti + sink.c.output);
  return sink.c;
}

TEST(DepCensus, BackpropPlainMatchesReference) {
  Census c = census("backprop", {});
  EXPECT_EQ(c.instrs, 44514u);
  EXPECT_EQ(c.reg_flow, 62366u);
  EXPECT_EQ(c.mem_flow, 1687u);
  EXPECT_EQ(c.anti, 0u);
  EXPECT_EQ(c.output, 0u);
}

TEST(DepCensus, BackpropAntiOutputMatchesReference) {
  Census c = census("backprop", {.track_anti_output = true});
  EXPECT_EQ(c.instrs, 44514u);
  EXPECT_EQ(c.reg_flow, 62366u);
  EXPECT_EQ(c.mem_flow, 1687u);
  EXPECT_EQ(c.anti, 1619u);
  EXPECT_EQ(c.output, 833u);
}

TEST(DepCensus, BackpropClampedMatchesReference) {
  Census c =
      census("backprop", {.track_anti_output = true, .clamp_instances = 16});
  EXPECT_EQ(c.instrs, 2673u);
  EXPECT_EQ(c.reg_flow, 3299u);
  EXPECT_EQ(c.mem_flow, 144u);
  EXPECT_EQ(c.anti, 80u);
  EXPECT_EQ(c.output, 63u);
}

TEST(DepCensus, NwMatchesReference) {
  Census c = census("nw", {.track_anti_output = true});
  EXPECT_EQ(c.instrs, 23938u);
  EXPECT_EQ(c.reg_flow, 32830u);
  EXPECT_EQ(c.mem_flow, 1729u);
  EXPECT_EQ(c.anti, 0u);
  EXPECT_EQ(c.output, 1u);
}

}  // namespace
}  // namespace pp::ddg
