#include "ddg/shadow.hpp"

#include <gtest/gtest.h>

namespace pp::ddg {
namespace {

TEST(ShadowMemory, LastWriterWins) {
  ShadowMemory sm;
  EXPECT_EQ(sm.read(64), nullptr);
  sm.write(64, {1, {0}});
  sm.write(64, {2, {3}});
  const Occurrence* w = sm.read(64);
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->stmt, 2);
  EXPECT_EQ(w->coords, (std::vector<i64>{3}));
}

TEST(ShadowMemory, AddressesAreIndependent) {
  ShadowMemory sm;
  sm.write(0, {1, {}});
  sm.write(8, {2, {}});
  EXPECT_EQ(sm.read(0)->stmt, 1);
  EXPECT_EQ(sm.read(8)->stmt, 2);
  EXPECT_EQ(sm.tracked_words(), 2u);
  sm.clear();
  EXPECT_EQ(sm.read(0), nullptr);
}

TEST(ShadowFrame, RegistersStartUnset) {
  ShadowFrame f(4);
  EXPECT_EQ(f.regs.size(), 4u);
  for (const auto& r : f.regs) EXPECT_FALSE(r.has_value());
}

}  // namespace
}  // namespace pp::ddg
