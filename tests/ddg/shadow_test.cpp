#include "ddg/shadow.hpp"

#include <gtest/gtest.h>

namespace pp::ddg {
namespace {

support::CoordRef ref(support::CoordPool& pool, std::vector<i64> coords) {
  return pool.intern(coords);
}

TEST(ShadowMemory, LastWriterWins) {
  support::CoordPool pool;
  ShadowMemory sm;
  EXPECT_EQ(sm.read(64), nullptr);
  sm.write(64, {1, ref(pool, {0})});
  sm.write(64, {2, ref(pool, {3})});
  const Occurrence* w = sm.read(64);
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->stmt, 2);
  std::span<const i64> got = pool.get(w->coords);
  EXPECT_EQ(std::vector<i64>(got.begin(), got.end()), (std::vector<i64>{3}));
}

TEST(ShadowMemory, AddressesAreIndependent) {
  ShadowMemory sm;
  sm.write(0, {1, {}});
  sm.write(8, {2, {}});
  EXPECT_EQ(sm.read(0)->stmt, 1);
  EXPECT_EQ(sm.read(8)->stmt, 2);
  EXPECT_EQ(sm.tracked_words(), 2u);
  sm.clear();
  EXPECT_EQ(sm.read(0), nullptr);
  EXPECT_EQ(sm.tracked_words(), 0u);
}

TEST(ShadowMemory, ByteAddressesOfTheSameWordAlias) {
  // Keys are word-granular (addr >> 3): any byte address inside an 8-byte
  // word resolves to the same record. The old hash-map shadow keyed raw
  // byte addresses, contradicting its own "one record per word" contract.
  ShadowMemory sm;
  sm.write(64, {7, {}});
  for (i64 b = 64; b < 72; ++b) {
    const Occurrence* w = sm.read(b);
    ASSERT_NE(w, nullptr) << "byte " << b;
    EXPECT_EQ(w->stmt, 7);
  }
  EXPECT_EQ(sm.read(63), nullptr);
  EXPECT_EQ(sm.read(72), nullptr);
  EXPECT_EQ(sm.tracked_words(), 1u);
  // And writes through a byte alias update the word's record.
  sm.write(71, {8, {}});
  EXPECT_EQ(sm.read(64)->stmt, 8);
  EXPECT_EQ(sm.tracked_words(), 1u);
}

TEST(ShadowMemory, FindNeverAllocatesPages) {
  ShadowMemory sm;
  EXPECT_EQ(sm.find(1 << 20), nullptr);
  EXPECT_EQ(sm.pages_allocated(), 0u);
  sm.touch(1 << 20);
  EXPECT_EQ(sm.pages_allocated(), 1u);
  EXPECT_NE(sm.find(1 << 20), nullptr);
  // A fresh record is empty in both roles.
  const ShadowMemory::Record* r = sm.find(1 << 20);
  EXPECT_FALSE(r->writer.valid());
  EXPECT_FALSE(r->reader.valid());
}

TEST(ShadowMemory, SparseAddressesShareNothing) {
  ShadowMemory sm;
  // Two addresses one page-span apart land on distinct pages.
  constexpr i64 kPageSpan = i64{8} * ShadowMemory::kPageWords;
  sm.write(0, {1, {}});
  sm.write(kPageSpan, {2, {}});
  EXPECT_EQ(sm.pages_live(), 2u);
  EXPECT_EQ(sm.read(0)->stmt, 1);
  EXPECT_EQ(sm.read(kPageSpan)->stmt, 2);
}

TEST(ShadowMemory, ClearRecyclesPagesThroughFreeList) {
  ShadowMemory sm;
  constexpr i64 kPageSpan = i64{8} * ShadowMemory::kPageWords;
  sm.write(0, {1, {}});
  sm.write(kPageSpan, {2, {}});
  sm.write(3 * kPageSpan, {3, {}});
  EXPECT_EQ(sm.pages_allocated(), 3u);
  EXPECT_EQ(sm.pages_live(), 3u);

  sm.clear();
  EXPECT_EQ(sm.pages_live(), 0u);
  EXPECT_EQ(sm.pages_free(), 3u);
  EXPECT_EQ(sm.read(0), nullptr);
  EXPECT_EQ(sm.tracked_words(), 0u);

  // Reuse: the next touches pull parked pages instead of allocating, and
  // recycled pages come back zeroed.
  sm.write(kPageSpan, {4, {}});
  sm.write(2 * kPageSpan, {5, {}});
  EXPECT_EQ(sm.pages_allocated(), 3u);
  EXPECT_EQ(sm.pages_free(), 1u);
  EXPECT_EQ(sm.read(kPageSpan)->stmt, 4);
  EXPECT_EQ(sm.read(0), nullptr);
  EXPECT_EQ(sm.tracked_words(), 2u);
}

TEST(ShadowMemory, NegativeAddressTraps) {
  ShadowMemory sm;
  EXPECT_THROW(sm.touch(-8), Error);
}

TEST(ShadowFrame, RegistersStartUnset) {
  ShadowFrame f(4);
  EXPECT_EQ(f.regs.size(), 4u);
  for (const auto& r : f.regs) EXPECT_FALSE(r.valid());
}

TEST(ShadowFrame, ResetReinitializesInPlace) {
  ShadowFrame f(2);
  f.regs[0] = {5, {}};
  f.reset(3);
  EXPECT_EQ(f.regs.size(), 3u);
  for (const auto& r : f.regs) EXPECT_FALSE(r.valid());
}

}  // namespace
}  // namespace pp::ddg
