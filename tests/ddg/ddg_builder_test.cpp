#include "ddg/ddg_builder.hpp"

#include <gtest/gtest.h>

#include "ir/builder.hpp"

namespace pp::ddg {
namespace {

using ir::Builder;
using ir::Function;
using ir::Module;
using ir::Op;
using ir::Reg;

struct Recorder : DdgSink {
  struct InstrRec {
    int stmt;
    std::vector<i64> coords;
    bool has_value;
    i64 value;
    bool has_address;
    i64 address;
  };
  struct DepRec {
    DepKind kind;
    int src_stmt;
    std::vector<i64> src_coords;
    int dst_stmt;
    std::vector<i64> dst_coords;
  };
  std::vector<InstrRec> instrs;
  std::vector<DepRec> deps;

  void on_instruction(const Statement& s, std::span<const i64> coords,
                      bool has_value, i64 value, bool has_address,
                      i64 address) override {
    instrs.push_back({s.id,
                      {coords.begin(), coords.end()},
                      has_value,
                      value,
                      has_address,
                      address});
  }
  void on_dependence(DepKind kind, int src_stmt,
                     std::span<const i64> src_coords, int dst_stmt,
                     std::span<const i64> dst_coords, int slot) override {
    (void)slot;
    deps.push_back({kind,
                    src_stmt,
                    {src_coords.begin(), src_coords.end()},
                    dst_stmt,
                    {dst_coords.begin(), dst_coords.end()}});
  }

  std::vector<DepRec> deps_of_kind(DepKind k) const {
    std::vector<DepRec> out;
    for (const auto& d : deps)
      if (d.kind == k) out.push_back(d);
    return out;
  }
};

// Run a module end-to-end through stage 1 + stage 2.
struct Profiled {
  Recorder rec;
  cfg::ControlStructure cs;
  std::unique_ptr<DdgBuilder> builder;
};

void profile(const Module& m, Profiled& p, DdgOptions opts = {}) {
  // Stage 1: control structure.
  {
    vm::Machine machine(m);
    cfg::DynamicCfgBuilder dyn;
    machine.set_observer(&dyn);
    machine.run("main");
    const ir::Function* entry = m.find_function("main");
    p.cs = cfg::ControlStructure::build(dyn, {entry->id});
  }
  // Stage 2: DDG.
  {
    vm::Machine machine(m);
    p.builder = std::make_unique<DdgBuilder>(m, p.cs, &p.rec, opts);
    machine.set_observer(p.builder.get());
    machine.run("main");
  }
}

TEST(DdgBuilder, RegisterFlowDependence) {
  Module m;
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg a = b.const_(6);
  Reg c = b.const_(7);
  b.mul(a, c);
  b.ret();
  Profiled p;
  profile(m, p);
  auto reg = p.rec.deps_of_kind(DepKind::kRegFlow);
  ASSERT_EQ(reg.size(), 2u);  // mul reads both consts
  EXPECT_EQ(reg[0].dst_stmt, reg[1].dst_stmt);
  EXPECT_NE(reg[0].src_stmt, reg[1].src_stmt);
}

TEST(DdgBuilder, MemFlowThroughStoreLoad) {
  Module m;
  i64 g = m.add_global("x", 8);
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg base = b.const_(g);
  Reg v = b.const_(5);
  b.store(base, v);
  b.load(base);
  b.ret();
  Profiled p;
  profile(m, p);
  auto mem = p.rec.deps_of_kind(DepKind::kMemFlow);
  ASSERT_EQ(mem.size(), 1u);
  const auto& d = mem[0];
  const Statement& src = p.builder->statements().stmt(d.src_stmt);
  const Statement& dst = p.builder->statements().stmt(d.dst_stmt);
  EXPECT_EQ(src.op, Op::kStore);
  EXPECT_EQ(dst.op, Op::kLoad);
}

TEST(DdgBuilder, LoopCarriedDependenceDistanceOne) {
  // for (i = 1; i < 8; ++i) a[i] = a[i-1]: the load at iteration i depends
  // on the store at iteration i-1.
  Module m;
  i64 g = m.add_global("a", 8 * 8);
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg base = b.const_(g);
  // Seed a[0].
  Reg init = b.const_(1);
  b.store(base, init);
  Reg n = b.const_(8);
  Reg iv0 = b.fresh();
  b.const_(1, iv0);
  int header = b.make_block();
  int body = b.make_block();
  int exit_bb = b.make_block();
  b.br(header);
  b.set_block(header);
  Reg c = b.cmp(Op::kCmpLt, iv0, n);
  b.br_cond(c, body, exit_bb);
  b.set_block(body);
  Reg offm1 = b.addi(iv0, -1);
  Reg offb = b.muli(offm1, 8);
  Reg pprev = b.add(base, offb);
  Reg prev = b.load(pprev);
  Reg off = b.muli(iv0, 8);
  Reg pcur = b.add(base, off);
  b.store(pcur, prev);
  b.addi(iv0, 1, iv0);
  b.br(header);
  b.set_block(exit_bb);
  b.ret();

  Profiled p;
  profile(m, p);
  auto mem = p.rec.deps_of_kind(DepKind::kMemFlow);
  // 7 loop-carried instances: load@i=1..7 <- store@i-1 (the first from the
  // seed store outside the loop).
  ASSERT_EQ(mem.size(), 7u);
  int carried = 0;
  for (const auto& d : mem) {
    if (d.src_coords.size() == 1 && d.dst_coords.size() == 1) {
      EXPECT_EQ(d.src_coords[0], d.dst_coords[0] - 1);
      ++carried;
    }
  }
  EXPECT_EQ(carried, 6);  // i=2..7 depend on the in-loop store
}

TEST(DdgBuilder, CoordinatesTagLoopIterations) {
  Module m;
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg n = b.const_(3);
  Reg sink = b.fresh();
  b.counted_loop(0, n, 1, [&](Reg iv) { b.mov(iv, sink); });
  b.ret();
  Profiled p;
  profile(m, p);
  // The mov statement must have instances at coordinates 0, 1, 2.
  std::map<int, std::vector<std::vector<i64>>> by_stmt;
  for (const auto& r : p.rec.instrs) by_stmt[r.stmt].push_back(r.coords);
  bool found = false;
  for (const auto& [id, coords] : by_stmt) {
    if (p.builder->statements().stmt(id).op == Op::kMov) {
      ASSERT_EQ(coords.size(), 3u);
      EXPECT_EQ(coords[0], (std::vector<i64>{0}));
      EXPECT_EQ(coords[1], (std::vector<i64>{1}));
      EXPECT_EQ(coords[2], (std::vector<i64>{2}));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(DdgBuilder, ValuesAndAddressesStreamed) {
  Module m;
  i64 g = m.add_global("x", 16);
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg base = b.const_(g);
  Reg v = b.const_(99);
  b.store(base, v, 8);
  b.ret();
  Profiled p;
  profile(m, p);
  bool saw_store = false, saw_const = false;
  for (const auto& r : p.rec.instrs) {
    const Statement& s = p.builder->statements().stmt(r.stmt);
    if (s.op == Op::kStore) {
      saw_store = true;
      EXPECT_TRUE(r.has_address);
      EXPECT_EQ(r.address, g + 8);
    }
    if (s.op == Op::kConst && r.value == 99) {
      saw_const = true;
      EXPECT_TRUE(r.has_value);
    }
  }
  EXPECT_TRUE(saw_store);
  EXPECT_TRUE(saw_const);
}

TEST(DdgBuilder, InterproceduralDependenceThroughArgument) {
  // main computes v then calls consume(v) which stores it: the register
  // dependence must connect main's producer to the store in consume
  // (argument pass-through, no extra node for the call).
  Module m;
  i64 g = m.add_global("x", 8);
  Function& consume = m.add_function("consume", 1);
  {
    Builder b(m, consume);
    b.set_block(b.make_block());
    Reg base = b.const_(g);
    b.store(base, 0);
    b.ret();
  }
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg v = b.addi(b.const_(1), 41);
  b.call(consume, {v});
  b.ret();

  Profiled p;
  profile(m, p);
  bool found = false;
  for (const auto& d : p.rec.deps_of_kind(DepKind::kRegFlow)) {
    const Statement& src = p.builder->statements().stmt(d.src_stmt);
    const Statement& dst = p.builder->statements().stmt(d.dst_stmt);
    if (src.op == Op::kAddI && dst.op == Op::kStore &&
        src.code.func == f.id && dst.code.func == consume.id)
      found = true;
  }
  EXPECT_TRUE(found);
}

TEST(DdgBuilder, ReturnValuePassThrough) {
  // r = produce(); use(r): the consumer depends on the instruction inside
  // produce() that computed the return value.
  Module m;
  Function& produce = m.add_function("produce", 0);
  {
    Builder b(m, produce);
    b.set_block(b.make_block());
    Reg v = b.const_(7);
    b.ret(v);
  }
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg r = b.call(produce, {}, true);
  b.addi(r, 1);
  b.ret();

  Profiled p;
  profile(m, p);
  bool found = false;
  for (const auto& d : p.rec.deps_of_kind(DepKind::kRegFlow)) {
    const Statement& src = p.builder->statements().stmt(d.src_stmt);
    const Statement& dst = p.builder->statements().stmt(d.dst_stmt);
    if (src.op == Op::kConst && src.code.func == produce.id &&
        dst.op == Op::kAddI && dst.code.func == f.id)
      found = true;
  }
  EXPECT_TRUE(found);
}

TEST(DdgBuilder, AntiAndOutputDepsWhenEnabled) {
  Module m;
  i64 g = m.add_global("x", 8);
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg base = b.const_(g);
  Reg v1 = b.const_(1);
  b.store(base, v1);   // W
  b.load(base);        // R
  Reg v2 = b.const_(2);
  b.store(base, v2);   // W: output dep on first store, anti dep on load
  b.ret();

  Profiled off;
  profile(m, off);
  EXPECT_TRUE(off.rec.deps_of_kind(DepKind::kAnti).empty());
  EXPECT_TRUE(off.rec.deps_of_kind(DepKind::kOutput).empty());

  Profiled on;
  profile(m, on, {.track_anti_output = true});
  EXPECT_EQ(on.rec.deps_of_kind(DepKind::kAnti).size(), 1u);
  EXPECT_EQ(on.rec.deps_of_kind(DepKind::kOutput).size(), 1u);
}

TEST(DdgBuilder, ClampingBoundsStreamedInstances) {
  Module m;
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg n = b.const_(100);
  Reg sink = b.fresh();
  b.counted_loop(0, n, 1, [&](Reg iv) { b.mov(iv, sink); });
  b.ret();

  Profiled p;
  profile(m, p, {.clamp_instances = 10});
  EXPECT_FALSE(p.builder->clamped_statements().empty());
  std::map<int, int> counts;
  for (const auto& r : p.rec.instrs) counts[r.stmt]++;
  for (const auto& [stmt, count] : counts) EXPECT_LE(count, 10);
}

TEST(DdgBuilder, ClampedStoreStillUpdatesShadow) {
  // Regression: a store past clamp_instances used to skip the shadow
  // update entirely, leaving the clamp-boundary instance as the word's
  // last writer. A later (unclamped) load then reported a flow dependence
  // from the wrong occurrence. The clamp must gate emission only.
  Module m;
  i64 g = m.add_global("x", 8);
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg base = b.const_(g);
  Reg n = b.const_(5);
  b.counted_loop(0, n, 1, [&](Reg iv) { b.store(base, iv); });
  b.load(base);
  b.ret();

  Profiled p;
  profile(m, p, {.clamp_instances = 2});
  auto mem = p.rec.deps_of_kind(DepKind::kMemFlow);
  ASSERT_EQ(mem.size(), 1u);
  // The load depends on the *final* store instance (i = 4), not on the
  // last unclamped one (i = 1).
  EXPECT_EQ(mem[0].src_coords, (std::vector<i64>{4}));
  EXPECT_TRUE(mem[0].dst_coords.empty());
}

TEST(DdgBuilder, ClampedLoadStillUpdatesReader) {
  // Same rule for the last-reader half of the record: a clamped load must
  // still register as the word's pending reader, so a later store's anti
  // dependence cites the true most-recent read.
  Module m;
  i64 g = m.add_global("x", 8);
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg base = b.const_(g);
  Reg v = b.const_(1);
  b.store(base, v);
  Reg n = b.const_(5);
  Reg sink = b.fresh();
  b.counted_loop(0, n, 1, [&](Reg) { b.mov(b.load(base), sink); });
  Reg v2 = b.const_(2);
  b.store(base, v2);
  b.ret();

  Profiled p;
  profile(m, p, {.track_anti_output = true, .clamp_instances = 2});
  auto anti = p.rec.deps_of_kind(DepKind::kAnti);
  ASSERT_EQ(anti.size(), 1u);
  EXPECT_EQ(anti[0].src_coords, (std::vector<i64>{4}));
}

TEST(DdgBuilder, StoreKillsPendingAntiRead) {
  // Regression: the last-reader record was never cleared on store, so a
  // second store to the same word emitted a spurious anti dependence from
  // a read that already preceded the first store.
  Module m;
  i64 g = m.add_global("x", 8);
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg base = b.const_(g);
  Reg v1 = b.const_(1);
  b.store(base, v1);   // W1
  b.load(base);        // R
  Reg v2 = b.const_(2);
  b.store(base, v2);   // W2: anti dep R -> W2 (consumes the pending read)
  Reg v3 = b.const_(3);
  b.store(base, v3);   // W3: output dep only — R precedes W2
  b.ret();

  Profiled p;
  profile(m, p, {.track_anti_output = true});
  EXPECT_EQ(p.rec.deps_of_kind(DepKind::kAnti).size(), 1u);
  EXPECT_EQ(p.rec.deps_of_kind(DepKind::kOutput).size(), 2u);
  EXPECT_EQ(p.rec.deps_of_kind(DepKind::kMemFlow).size(), 1u);
}

TEST(DdgBuilder, SteadyStateKeepsCoordPoolCompact) {
  // The interned-coordinate arena grows per IIV state change, never per
  // instruction: a straight-line loop body of k instructions adds one
  // vector per iteration, not k.
  Module m;
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg n = b.const_(100);
  Reg sink = b.fresh();
  b.counted_loop(0, n, 1, [&](Reg iv) {
    b.mov(iv, sink);
    b.mov(iv, sink);
    b.mov(iv, sink);
  });
  b.ret();

  Profiled p;
  profile(m, p);
  u64 instrs = p.builder->statements().total_executions();
  ASSERT_GT(instrs, 300u);
  // Depth <= 1 everywhere: one interned word per loop iteration plus a
  // handful of boundary states; far below one entry per instruction.
  EXPECT_LT(p.builder->coord_pool().size_words(), 150u);
}

TEST(DdgBuilder, StatementsDistinguishedByCallingContext) {
  // One function called from two *different blocks*: its instructions
  // appear as two distinct statements (context-sensitive DDG, call sites
  // at block granularity exactly like the paper's CCT labeling). This is
  // what lets the backprop case study treat "the first call (of two) to
  // bpnn_layerforward" as its own region.
  Module m;
  i64 g = m.add_global("x", 8);
  Function& kernel = m.add_function("kernel", 0);
  {
    Builder b(m, kernel);
    b.set_block(b.make_block());
    Reg base = b.const_(g);
    b.load(base);
    b.ret();
  }
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  int b0 = b.make_block();
  int b1 = b.make_block();
  b.set_block(b0);
  b.call(kernel, {});
  b.br(b1);
  b.set_block(b1);
  b.call(kernel, {});
  b.ret();

  Profiled p;
  profile(m, p);
  int load_stmts = 0;
  for (const auto& s : p.builder->statements().all())
    if (s.op == Op::kLoad) ++load_stmts;
  EXPECT_EQ(load_stmts, 2);
}

TEST(DdgBuilder, SameBlockCallSitesShareContext) {
  // Two calls from the same basic block share the (block-granular)
  // context, matching CCT practice.
  Module m;
  i64 g = m.add_global("x", 8);
  Function& kernel = m.add_function("kernel", 0);
  {
    Builder b(m, kernel);
    b.set_block(b.make_block());
    Reg base = b.const_(g);
    b.load(base);
    b.ret();
  }
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  b.call(kernel, {});
  b.call(kernel, {});
  b.ret();

  Profiled p;
  profile(m, p);
  int load_stmts = 0;
  for (const auto& s : p.builder->statements().all())
    if (s.op == Op::kLoad) {
      ++load_stmts;
      EXPECT_EQ(s.executions, 2u);
    }
  EXPECT_EQ(load_stmts, 1);
}

}  // namespace
}  // namespace pp::ddg
