#include "ddg/statement.hpp"

#include <gtest/gtest.h>

namespace pp::ddg {
namespace {

iiv::ContextKey ctx(int bb) {
  return iiv::ContextKey{{{iiv::CtxElem::block(0, bb)}}};
}

ir::Instr add_instr() { return {.op = ir::Op::kAdd, .dst = 0, .a = 1, .b = 2}; }

TEST(StatementTable, InternsAndCounts) {
  StatementTable t;
  ir::Instr in = add_instr();
  int a = t.touch(ctx(0), {0, 0, 0}, in);
  int b = t.touch(ctx(0), {0, 0, 0}, in);
  EXPECT_EQ(a, b);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.stmt(a).executions, 2u);
  EXPECT_EQ(t.total_executions(), 2u);
}

TEST(StatementTable, DistinctCodeRefsDistinctStatements) {
  StatementTable t;
  ir::Instr in = add_instr();
  int a = t.touch(ctx(0), {0, 0, 0}, in);
  int b = t.touch(ctx(0), {0, 0, 1}, in);
  EXPECT_NE(a, b);
  EXPECT_EQ(t.size(), 2u);
}

TEST(StatementTable, DistinctContextsDistinctStatements) {
  // Same static instruction in two calling contexts = two statements.
  StatementTable t;
  ir::Instr in = add_instr();
  iiv::ContextKey c1{{{iiv::CtxElem::block(0, 0), iiv::CtxElem::block(1, 0)}}};
  iiv::ContextKey c2{{{iiv::CtxElem::block(0, 2), iiv::CtxElem::block(1, 0)}}};
  int a = t.touch(c1, {1, 0, 0}, in);
  int b = t.touch(c2, {1, 0, 0}, in);
  EXPECT_NE(a, b);
}

TEST(StatementTable, MetadataCaptured) {
  StatementTable t;
  ir::Instr in{.op = ir::Op::kStore, .a = 0, .b = 1, .line = 42};
  iiv::ContextKey deep{{{iiv::CtxElem::block(0, 0), iiv::CtxElem::loop(0, 0)},
                        {iiv::CtxElem::block(0, 1)}}};
  int id = t.touch(deep, {0, 1, 0}, in);
  const Statement& s = t.stmt(id);
  EXPECT_EQ(s.op, ir::Op::kStore);
  EXPECT_EQ(s.line, 42);
  EXPECT_EQ(s.depth, 1u);
  EXPECT_TRUE(s.is_memory);
  EXPECT_TRUE(s.writes_memory);
  EXPECT_FALSE(s.is_fp);
}

}  // namespace
}  // namespace pp::ddg
