#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace pp::obs {
namespace {

TEST(ObsSpan, RecordsNestedSpans) {
  Session s;
  {
    Span outer = s.span("outer");
    Span inner = s.span("inner");
  }
  std::vector<SpanRec> spans = s.merged_spans();
  ASSERT_EQ(spans.size(), 2u);
  // Sorted by start time: outer opened first.
  EXPECT_STREQ(spans[0].name, "outer");
  EXPECT_STREQ(spans[1].name, "inner");
  EXPECT_LE(spans[0].start_ns, spans[1].start_ns);
  // The outer span covers the inner one.
  EXPECT_GE(spans[0].start_ns + spans[0].dur_ns,
            spans[1].start_ns + spans[1].dur_ns);
}

TEST(ObsSpan, EndIsIdempotentAndEarly) {
  Session s;
  Span sp = s.span("x");
  sp.end();
  sp.end();  // no double record
  EXPECT_EQ(s.merged_spans().size(), 1u);
}

TEST(ObsSpan, NullAndDisabledSessionsRecordNothing) {
  { Span sp(nullptr, "free"); }  // must not crash
  Session off(false);
  EXPECT_FALSE(off.enabled());
  {
    Span sp = off.span("x");
    off.add("c");
    off.set("g", 7);
    off.gauge_max("m", 9);
  }
  EXPECT_TRUE(off.merged_spans().empty());
  EXPECT_TRUE(off.counters().empty());
}

TEST(ObsSpan, MoveTransfersOwnership) {
  Session s;
  {
    Span a = s.span("moved");
    Span b = std::move(a);
    EXPECT_FALSE(a.active());  // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(b.active());
  }
  EXPECT_EQ(s.merged_spans().size(), 1u);
}

TEST(ObsCounters, AddSetGaugeMax) {
  Session s;
  s.add("events", 10);
  s.add("events", 5);
  s.set("final", 42);
  s.set("final", 43);
  s.gauge_max("hwm", 3);
  s.gauge_max("hwm", 9);
  s.gauge_max("hwm", 4);
  auto cs = s.counters();
  EXPECT_EQ(cs.at("events").value, 15);
  EXPECT_EQ(cs.at("final").value, 43);
  EXPECT_EQ(cs.at("hwm").value, 9);
}

TEST(ObsCounters, StabilityTagFixedOnFirstTouch) {
  Session s;
  s.add("a", 1, Stability::kTiming);
  s.add("a", 1, Stability::kStable);  // ignored: tag fixed by first touch
  s.add("b", 1, Stability::kStable);
  auto cs = s.counters();
  EXPECT_EQ(cs.at("a").stability, Stability::kTiming);
  EXPECT_EQ(cs.at("b").stability, Stability::kStable);
}

TEST(ObsSession, ConcurrentSpansAndCountersMerge) {
  Session s;
  constexpr int kThreads = 8;
  constexpr int kSpansPer = 50;
  std::vector<std::thread> ts;
  ts.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&s] {
      for (int i = 0; i < kSpansPer; ++i) {
        Span sp = s.span("work");
        s.add("n");
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(s.merged_spans().size(),
            static_cast<std::size_t>(kThreads * kSpansPer));
  EXPECT_EQ(s.counters().at("n").value, kThreads * kSpansPer);
}

TEST(ObsSession, TlsSurvivesSessionRecycling) {
  // A fresh Session at a recycled address must not inherit the previous
  // session's thread registration (the TLS cache is generation-keyed).
  for (int i = 0; i < 4; ++i) {
    Session s;
    { Span sp = s.span("gen"); }
    EXPECT_EQ(s.merged_spans().size(), 1u);
  }
}

TEST(ObsSession, StageSpansFilterAndOrder) {
  Session s;
  { Span a = s.span("stage:control"); }
  { Span x = s.span("detail:misc"); }
  { Span b = s.span("stage:ddg"); }
  auto stages = s.stage_spans();
  ASSERT_EQ(stages.size(), 2u);
  EXPECT_STREQ(stages[0].name, "stage:control");
  EXPECT_STREQ(stages[1].name, "stage:ddg");
}

TEST(ObsExport, ChromeTraceShape) {
  Session s;
  { Span a = s.span("stage:fold"); }
  s.add("fold.pieces", 12);
  std::string j = s.chrome_trace_json("test-proc");
  EXPECT_EQ(j.find("{\"traceEvents\":"), 0u);
  EXPECT_NE(j.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(j.find("stage:fold"), std::string::npos);
  EXPECT_NE(j.find("fold.pieces"), std::string::npos);
  EXPECT_NE(j.find("test-proc"), std::string::npos);
}

TEST(ObsExport, ManifestShape) {
  Session s;
  { Span a = s.span("stage:ddg"); }
  s.add("ddg.dependences", 7);
  Session::ManifestExtra extra;
  extra.workload = "backprop";
  extra.threads = 4;
  extra.truncated = true;
  extra.report_fingerprint = "deadbeef";
  std::string j = s.manifest_json(extra);
  EXPECT_NE(j.find("\"workload\": \"backprop\""), std::string::npos);
  EXPECT_NE(j.find("\"threads\": 4"), std::string::npos);
  EXPECT_NE(j.find("\"truncated\": true"), std::string::npos);
  EXPECT_NE(j.find("\"report_fingerprint\": \"deadbeef\""),
            std::string::npos);
  // Stage names drop the "stage:" prefix in the manifest table.
  EXPECT_NE(j.find("{\"name\": \"ddg\", \"wall_ms\": "), std::string::npos);
  EXPECT_NE(j.find("\"ddg.dependences\": 7"), std::string::npos);
}

TEST(ObsExport, JsonStringsEscaped) {
  Session s;
  Session::ManifestExtra extra;
  extra.workload = "we\"ird\\name\n";
  std::string j = s.manifest_json(extra);
  EXPECT_NE(j.find("we\\\"ird\\\\name\\n"), std::string::npos);
}

TEST(ObsExport, SelfProfileStableElidesTimes) {
  Session s;
  { Span a = s.span("stage:control"); }
  s.add("ddg.dependences", 3, Stability::kStable);
  s.add("ring.producer_stalls", 5, Stability::kTiming);
  std::string stable = s.self_profile_section(true);
  EXPECT_NE(stable.find("stage control: wall - cpu -"), std::string::npos);
  EXPECT_NE(stable.find("counter ddg.dependences: 3"), std::string::npos);
  // Timing counters and real times are elided in stable mode.
  EXPECT_EQ(stable.find("ring.producer_stalls"), std::string::npos);
  EXPECT_EQ(stable.find(" ms"), std::string::npos);

  std::string timed = s.self_profile_section(false);
  EXPECT_NE(timed.find("ring.producer_stalls"), std::string::npos);
  EXPECT_NE(timed.find(" ms"), std::string::npos);
}

TEST(ObsFnv, MatchesReferenceVectors) {
  // Published FNV-1a 64-bit test vectors.
  EXPECT_EQ(fnv1a(""), 14695981039346656037ull);
  EXPECT_EQ(fnv1a("a"), 12638187200555641996ull);
  EXPECT_EQ(fnv1a("foobar"), 0x85944171f73967e8ull);
}

}  // namespace
}  // namespace pp::obs
