#include "scheduler/scheduler.hpp"

#include <gtest/gtest.h>

namespace pp::scheduler {
namespace {

using poly::AffineExpr;
using poly::AffineMap;
using poly::Polyhedron;

// Helpers --------------------------------------------------------------

Polyhedron rect(i64 ni, i64 nj) {
  return Polyhedron::box({{0, ni - 1}, {0, nj - 1}});
}

// Dependence whose source is dst shifted by (di, dj).
SchedDep shift_dep(int src, int dst, Polyhedron dom, std::vector<i64> delta) {
  std::size_t d = delta.size();
  std::vector<AffineExpr> outs;
  for (std::size_t i = 0; i < d; ++i)
    outs.push_back(AffineExpr::var(d, i) - delta[i]);
  SchedDep dep;
  dep.src = src;
  dep.dst = dst;
  dep.pieces.push_back({std::move(dom), AffineMap(d, std::move(outs)), true});
  return dep;
}

SchedStatement stmt(int id, std::size_t depth, Polyhedron dom, u64 ops = 100) {
  SchedStatement s;
  s.id = id;
  s.depth = depth;
  s.ops = ops;
  s.domain_pieces.push_back(std::move(dom));
  return s;
}

// Tests ----------------------------------------------------------------

TEST(Scheduler, ReductionNestIsPermutableWithParallelOuter) {
  // The layerforward shape: one 2-D statement with a (0,1) self-dependence
  // (sum reduction along the inner loop). Expect: outer level parallel,
  // inner level carries, both in one permutable band (=> tilable, and the
  // feedback layer may interchange).
  Problem p;
  Polyhedron dom = rect(16, 43);
  p.statements.push_back(stmt(0, 2, dom));
  Polyhedron dep_dom = dom;
  dep_dom.add_ge0(AffineExpr::var(2, 1) - 1);  // j >= 1
  p.deps.push_back(shift_dep(0, 0, dep_dom, {0, 1}));

  ScheduleResult r = schedule(p);
  ASSERT_EQ(r.groups.size(), 1u);
  const GroupSchedule& g = r.groups[0];
  ASSERT_EQ(g.levels.size(), 2u);
  EXPECT_TRUE(g.schedulable);
  EXPECT_TRUE(g.levels[0].parallel);
  EXPECT_FALSE(g.levels[1].parallel);
  EXPECT_TRUE(g.levels[1].carries);
  EXPECT_TRUE(g.fully_permutable());
  EXPECT_EQ(g.tile_depth(), 2);
  EXPECT_FALSE(g.uses_skew());
  EXPECT_TRUE(g.has_outer_parallelism());
  EXPECT_FALSE(g.inner_parallel());
}

TEST(Scheduler, FullyParallelNest) {
  // No dependences: everything parallel, fully permutable.
  Problem p;
  p.statements.push_back(stmt(0, 3, Polyhedron::box({{0, 7}, {0, 7}, {0, 7}})));
  ScheduleResult r = schedule(p);
  const GroupSchedule& g = r.groups[0];
  ASSERT_EQ(g.levels.size(), 3u);
  for (const auto& lv : g.levels) EXPECT_TRUE(lv.parallel);
  EXPECT_TRUE(g.fully_permutable());
  EXPECT_EQ(g.tile_depth(), 3);
  EXPECT_TRUE(g.inner_parallel());
}

TEST(Scheduler, SeidelStencilNeedsSkewForTiling) {
  // Gauss-Seidel-style dependences (1,0), (0,1), (1,-1): without skewing
  // the band breaks after the first level; with skewing the nest is fully
  // permutable (wavefront).
  Problem p;
  Polyhedron dom = rect(10, 10);
  p.statements.push_back(stmt(0, 2, dom));
  p.deps.push_back(shift_dep(0, 0, rect(10, 10), {1, 0}));
  p.deps.push_back(shift_dep(0, 0, rect(10, 10), {0, 1}));
  p.deps.push_back(shift_dep(0, 0, rect(10, 10), {1, -1}));

  Options no_skew;
  no_skew.allow_skew = false;
  ScheduleResult r1 = schedule(p, no_skew);
  EXPECT_FALSE(r1.groups[0].fully_permutable());
  EXPECT_EQ(r1.groups[0].tile_depth(), 1);

  ScheduleResult r2 = schedule(p);  // skew allowed
  const GroupSchedule& g = r2.groups[0];
  EXPECT_TRUE(g.fully_permutable());
  EXPECT_EQ(g.tile_depth(), 2);
  EXPECT_TRUE(g.uses_skew());
}

TEST(Scheduler, OpaqueDependenceForcesIdentity) {
  Problem p;
  p.statements.push_back(stmt(0, 2, rect(8, 8)));
  SchedDep d;
  d.src = d.dst = 0;
  d.pieces.push_back({rect(8, 8), AffineMap(2, {AffineExpr(2), AffineExpr(2)}),
                      /*analyzable=*/false});
  p.deps.push_back(d);
  ScheduleResult r = schedule(p);
  const GroupSchedule& g = r.groups[0];
  EXPECT_FALSE(g.schedulable);
  ASSERT_EQ(g.levels.size(), 2u);
  // Identity rows, no parallelism claimed, no multi-level band.
  EXPECT_EQ(g.levels[0].row, (std::vector<i64>{1, 0}));
  EXPECT_EQ(g.levels[1].row, (std::vector<i64>{0, 1}));
  EXPECT_FALSE(g.levels[0].parallel);
  EXPECT_EQ(g.tile_depth(), 1);
}

TEST(Scheduler, SmartFuseSeparatesIndependentNests) {
  Problem p;
  p.statements.push_back(stmt(0, 2, rect(8, 8), 500));
  p.statements.push_back(stmt(1, 2, rect(8, 8), 500));
  ScheduleResult smart = schedule(p);  // default smartfuse
  EXPECT_EQ(smart.groups.size(), 2u);

  Options mf;
  mf.fusion = FusionHeuristic::kMaxFuse;
  ScheduleResult fused = schedule(p, mf);
  EXPECT_EQ(fused.groups.size(), 1u);
  EXPECT_EQ(fused.groups[0].stmts.size(), 2u);
}

TEST(Scheduler, DependentStatementsShareAGroup) {
  Problem p;
  p.statements.push_back(stmt(0, 1, Polyhedron::box({{0, 9}})));
  p.statements.push_back(stmt(1, 1, Polyhedron::box({{0, 9}})));
  p.deps.push_back(shift_dep(0, 1, Polyhedron::box({{0, 9}}), {0}));
  ScheduleResult r = schedule(p);
  ASSERT_EQ(r.groups.size(), 1u);
  EXPECT_EQ(r.groups[0].stmts, (std::vector<int>{0, 1}));
  // Producer-consumer at equal iterations: level parallel? The dependence
  // has distance 0 along the fused loop, so the level is NOT carried but
  // has zero distance -> parallel (it orders within the body).
  EXPECT_TRUE(r.groups[0].levels[0].parallel);
}

TEST(Scheduler, MixedDepthStatements) {
  // An initialization statement (depth 1) fused with a 2-D consumer.
  Problem p;
  p.statements.push_back(stmt(0, 1, Polyhedron::box({{0, 7}})));
  p.statements.push_back(stmt(1, 2, rect(8, 8)));
  // dst (i,j) reads src (i): src_fn = (i).
  SchedDep d;
  d.src = 0;
  d.dst = 1;
  d.pieces.push_back({rect(8, 8), AffineMap(2, {AffineExpr::var(2, 0)}), true});
  p.deps.push_back(d);
  ScheduleResult r = schedule(p);
  ASSERT_EQ(r.groups.size(), 1u);
  const GroupSchedule& g = r.groups[0];
  EXPECT_EQ(g.levels.size(), 2u);
  EXPECT_TRUE(g.schedulable);
  // Level 0 = i with distance 0 -> parallel.
  EXPECT_TRUE(g.levels[0].parallel);
}

TEST(Scheduler, LoopReversalNotNeededForBackwardDep) {
  // Dynamic dependences always point backward: a "future" read never
  // appears. With dep (i) <- (i-2), the loop carries it at distance 2.
  Problem p;
  p.statements.push_back(stmt(0, 1, Polyhedron::box({{0, 9}})));
  Polyhedron dom = Polyhedron::box({{2, 9}});
  p.deps.push_back(shift_dep(0, 0, dom, {2}));
  ScheduleResult r = schedule(p);
  const GroupSchedule& g = r.groups[0];
  ASSERT_EQ(g.levels.size(), 1u);
  EXPECT_FALSE(g.levels[0].parallel);
  EXPECT_TRUE(g.levels[0].carries);
}

TEST(Scheduler, NumComponentsAppliesOpsThreshold) {
  Problem p;
  p.statements.push_back(stmt(0, 1, Polyhedron::box({{0, 9}}), 9000));
  p.statements.push_back(stmt(1, 1, Polyhedron::box({{0, 9}}), 500));
  p.statements.push_back(stmt(2, 1, Polyhedron::box({{0, 9}}), 500));
  ScheduleResult r = schedule(p);
  EXPECT_EQ(r.groups.size(), 3u);
  // Only the big group exceeds 5% of 10000.
  EXPECT_EQ(r.num_components(0.05, 10000), 1);
  EXPECT_EQ(r.num_components(0.0, 10000), 3);
}

TEST(Scheduler, EmptyProblem) {
  ScheduleResult r = schedule(Problem{});
  EXPECT_TRUE(r.groups.empty());
  EXPECT_EQ(r.num_components(0.05, 0), 0);
}

TEST(Scheduler, InterchangeableLoopsKeepIdentityWhenAllEqual) {
  // No preference pressure: the scheduler picks the identity permutation
  // (candidates are generated unit-vectors-first in index order).
  Problem p;
  p.statements.push_back(stmt(0, 2, rect(4, 4)));
  ScheduleResult r = schedule(p);
  const GroupSchedule& g = r.groups[0];
  EXPECT_EQ(g.levels[0].row, (std::vector<i64>{1, 0}));
  EXPECT_EQ(g.levels[1].row, (std::vector<i64>{0, 1}));
}

TEST(Scheduler, DistributedLoopsUnconstrained) {
  // Two statements in DIFFERENT loops (distinct loop paths) connected by a
  // scrambled dependence: the dependence is satisfied by statement order,
  // so both loops stay parallel and the group remains schedulable even
  // though the dependence labels are opaque.
  Problem p;
  SchedStatement a = stmt(0, 1, Polyhedron::box({{0, 9}}));
  a.loop_path = {0};
  SchedStatement b = stmt(1, 1, Polyhedron::box({{0, 9}}));
  b.loop_path = {1};  // a different loop
  p.statements.push_back(std::move(a));
  p.statements.push_back(std::move(b));
  SchedDep d;
  d.src = 0;
  d.dst = 1;
  d.pieces.push_back({Polyhedron::box({{0, 9}}),
                      AffineMap(1, {AffineExpr(1)}), /*analyzable=*/false});
  p.deps.push_back(std::move(d));
  ScheduleResult r = schedule(p);
  ASSERT_EQ(r.groups.size(), 1u);  // fused by the dependence edge
  const GroupSchedule& g = r.groups[0];
  EXPECT_TRUE(g.schedulable);
  EXPECT_TRUE(g.levels[0].parallel);
}

TEST(Scheduler, SharedLoopOpaqueDepBlocks) {
  // The same opaque dependence within ONE shared loop is a hard stop.
  Problem p;
  SchedStatement a = stmt(0, 1, Polyhedron::box({{0, 9}}));
  a.loop_path = {0};
  SchedStatement b = stmt(1, 1, Polyhedron::box({{0, 9}}));
  b.loop_path = {0};  // same loop
  p.statements.push_back(std::move(a));
  p.statements.push_back(std::move(b));
  SchedDep d;
  d.src = 0;
  d.dst = 1;
  d.pieces.push_back({Polyhedron::box({{0, 9}}),
                      AffineMap(1, {AffineExpr(1)}), /*analyzable=*/false});
  p.deps.push_back(std::move(d));
  ScheduleResult r = schedule(p);
  EXPECT_FALSE(r.groups[0].schedulable);
}

TEST(Scheduler, IdentityOnlyKeepsOriginalOrder) {
  // With skew available, the seidel nest would pick a skewed second row;
  // identity-only must keep (1,0),(0,1) and lose the band.
  Problem p;
  p.statements.push_back(stmt(0, 2, rect(10, 10)));
  p.deps.push_back(shift_dep(0, 0, rect(10, 10), {1, 0}));
  p.deps.push_back(shift_dep(0, 0, rect(10, 10), {0, 1}));
  p.deps.push_back(shift_dep(0, 0, rect(10, 10), {1, -1}));
  Options o;
  o.identity_only = true;
  ScheduleResult r = schedule(p, o);
  const GroupSchedule& g = r.groups[0];
  EXPECT_EQ(g.levels[0].row, (std::vector<i64>{1, 0}));
  EXPECT_EQ(g.levels[1].row, (std::vector<i64>{0, 1}));
  EXPECT_FALSE(g.uses_skew());
  EXPECT_EQ(g.tile_depth(), 1);
}

}  // namespace
}  // namespace pp::scheduler
