// Scheduler soundness fuzzing: for random dependence sets, every verdict
// the LP-based legality analysis produced is re-verified by brute force —
// enumerate each dependence piece's lattice points and check the chosen
// rows' latency differences directly:
//  * weakly legal rows never see a negative distance before the carrying
//    level,
//  * a level marked `carries` has a strictly positive distance on some
//    dependence whose earlier distances were all zero-or-positive,
//  * a level marked `parallel` has distance exactly zero for every
//    dependence still active at it.
#include <gtest/gtest.h>

#include "scheduler/scheduler.hpp"

namespace pp::scheduler {
namespace {

using poly::AffineExpr;
using poly::AffineMap;
using poly::Polyhedron;

struct Rng {
  u64 state;
  explicit Rng(u64 seed) : state(seed * 0x2545f4914f6cdd1dull + 19) {}
  i64 range(i64 lo, i64 hi) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return lo + static_cast<i64>((state >> 33) % static_cast<u64>(hi - lo + 1));
  }
};

// Random problem: one 2-D statement with 1..3 LEX-POSITIVE shift
// dependences (dynamic flow deps always point backward in time, so random
// deltas are drawn lex-positive, as the profiler would produce).
Problem random_problem(Rng& rng) {
  Problem p;
  SchedStatement s;
  s.id = 0;
  s.depth = 2;
  s.ops = 100;
  i64 n = rng.range(4, 8);
  s.domain_pieces.push_back(Polyhedron::box({{0, n - 1}, {0, n - 1}}));
  p.statements.push_back(std::move(s));
  int ndeps = static_cast<int>(rng.range(1, 3));
  for (int k = 0; k < ndeps; ++k) {
    i64 di = rng.range(0, 2);
    i64 dj = di == 0 ? rng.range(1, 2) : rng.range(-2, 2);
    Polyhedron dom = Polyhedron::box(
        {{std::max<i64>(di, 0), n - 1},
         {std::max<i64>(dj, 0), n - 1 + std::min<i64>(dj, 0)}});
    std::vector<AffineExpr> outs = {AffineExpr::var(2, 0) - di,
                                    AffineExpr::var(2, 1) - dj};
    SchedDep d;
    d.src = d.dst = 0;
    d.pieces.push_back({std::move(dom), AffineMap(2, std::move(outs)), true});
    p.deps.push_back(std::move(d));
  }
  return p;
}

// Distance of `row` on dependence `d` at lattice point `t`.
i128 distance_at(const std::vector<i64>& row, const SchedDep& d,
                 std::span<const i64> t) {
  const auto& piece = d.pieces[0];
  i128 dst = 0, src = 0;
  auto srcv = piece.src_fn.eval(t);
  for (std::size_t i = 0; i < row.size(); ++i) {
    dst += static_cast<i128>(row[i]) * t[i];
    src += static_cast<i128>(row[i]) * srcv[i];
  }
  return dst - src;
}

class SchedulerFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SchedulerFuzz, VerdictsHoldPointwise) {
  Rng rng(static_cast<u64>(GetParam()));
  Problem p = random_problem(rng);
  ScheduleResult r = schedule(p);
  ASSERT_EQ(r.groups.size(), 1u);
  const GroupSchedule& g = r.groups[0];
  ASSERT_EQ(g.levels.size(), 2u);

  // Per dependence: walk the levels in order; until the dependence is
  // strictly carried, every row's distance must be >= 0 at every point,
  // and rows marked parallel must see distance exactly 0.
  for (const auto& d : p.deps) {
    auto pts = d.pieces[0].dst_domain.enumerate();
    ASSERT_TRUE(pts.has_value());
    bool carried = false;
    for (const auto& lv : g.levels) {
      if (carried) break;
      bool all_pos = !pts->empty();
      for (const auto& t : *pts) {
        i128 dist = distance_at(lv.row, d, t);
        EXPECT_GE(dist, 0) << "illegal row chosen";
        if (lv.parallel) {
          EXPECT_EQ(dist, 0) << "parallel row with movement";
        }
        if (dist <= 0) all_pos = false;
      }
      if (all_pos) carried = true;
    }
    // Lex-positive dependences must be carried by the full schedule.
    EXPECT_TRUE(carried || pts->empty())
        << "dependence never carried by any level";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerFuzz, ::testing::Range(0, 60));

}  // namespace
}  // namespace pp::scheduler
