#include "scheduler/scheduler.hpp"

#include <gtest/gtest.h>

namespace pp::scheduler {
namespace {

TEST(Parameterize, SmallConstantsUntouched) {
  auto r = parameterize_constants({0, 1, -5, 100});
  for (const auto& a : r) EXPECT_EQ(a.param, -1);
}

TEST(Parameterize, LargeConstantGetsParameter) {
  auto r = parameterize_constants({1024});
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].param, 0);
  EXPECT_EQ(r[0].offset, 0);
}

TEST(Parameterize, WindowSharesParameter) {
  // The paper's example: x in [1024-s, 1024+s] (s = 20) is rewritten as
  // n + (x - 1024).
  auto r = parameterize_constants({1024, 1030, 1004, 1044});
  EXPECT_EQ(r[0].param, 0);
  EXPECT_EQ(r[1].param, 0);
  EXPECT_EQ(r[1].offset, 6);
  EXPECT_EQ(r[2].param, 0);
  EXPECT_EQ(r[2].offset, -20);
  EXPECT_EQ(r[3].param, 0);
  EXPECT_EQ(r[3].offset, 20);
}

TEST(Parameterize, OutsideWindowNewParameter) {
  auto r = parameterize_constants({1024, 1045, 2048});
  EXPECT_EQ(r[0].param, 0);
  EXPECT_EQ(r[1].param, 1);  // 21 away: outside +-20
  EXPECT_EQ(r[2].param, 2);
}

TEST(Parameterize, NegativeConstants) {
  auto r = parameterize_constants({-1024, -1030});
  EXPECT_EQ(r[0].param, 0);
  EXPECT_EQ(r[1].param, 0);
  EXPECT_EQ(r[1].offset, -6);
}

TEST(Parameterize, CustomThresholdAndWindow) {
  auto r = parameterize_constants({100, 103}, /*threshold=*/50, /*window=*/2);
  EXPECT_EQ(r[0].param, 0);
  EXPECT_EQ(r[1].param, 1);  // 3 > window 2
}

}  // namespace
}  // namespace pp::scheduler
