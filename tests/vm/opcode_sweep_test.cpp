// Table-driven opcode semantics sweep: every arithmetic/compare opcode is
// executed in the VM over a grid of operand values and compared against
// host-side reference semantics (two's-complement 64-bit / IEEE double).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "ir/builder.hpp"
#include "vm/vm.hpp"

namespace pp::vm {
namespace {

using ir::Builder;
using ir::Function;
using ir::Module;
using ir::Op;
using ir::Reg;

i64 run_binop(Op op, i64 a, i64 b) {
  Module m;
  Function& f = m.add_function("main", 2);
  Builder bld(m, f);
  bld.set_block(bld.make_block());
  Reg r = bld.cmp(op, 0, 1);  // cmp() emits any 2-operand opcode given here
  bld.ret(r);
  Machine vm(m);
  return vm.run("main", {a, b}).exit_value;
}

// Reference semantics for integer ops.
i64 host_int(Op op, i64 a, i64 b) {
  switch (op) {
    case Op::kAdd: return a + b;
    case Op::kSub: return a - b;
    case Op::kMul: return a * b;
    case Op::kAnd: return a & b;
    case Op::kOr: return a | b;
    case Op::kXor: return a ^ b;
    case Op::kShl: return a << (b & 63);
    case Op::kShr: return static_cast<i64>(static_cast<u64>(a) >> (b & 63));
    case Op::kCmpEq: return a == b;
    case Op::kCmpNe: return a != b;
    case Op::kCmpLt: return a < b;
    case Op::kCmpLe: return a <= b;
    case Op::kCmpGt: return a > b;
    case Op::kCmpGe: return a >= b;
    case Op::kDiv: return a / b;
    case Op::kRem: return a % b;
    default: return 0;
  }
}

struct IntCase {
  Op op;
  const char* name;
  bool div_like;
};

class IntOpSweep : public ::testing::TestWithParam<IntCase> {};

TEST_P(IntOpSweep, MatchesHostSemantics) {
  const IntCase& c = GetParam();
  const i64 vals[] = {-7, -1, 0, 1, 2, 5, 63, -64, 1000000007};
  for (i64 a : vals) {
    for (i64 b : vals) {
      if (c.div_like && b == 0) continue;
      EXPECT_EQ(run_binop(c.op, a, b), host_int(c.op, a, b))
          << c.name << "(" << a << ", " << b << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, IntOpSweep,
    ::testing::Values(IntCase{Op::kAdd, "add", false},
                      IntCase{Op::kSub, "sub", false},
                      IntCase{Op::kMul, "mul", false},
                      IntCase{Op::kDiv, "div", true},
                      IntCase{Op::kRem, "rem", true},
                      IntCase{Op::kAnd, "and", false},
                      IntCase{Op::kOr, "or", false},
                      IntCase{Op::kXor, "xor", false},
                      IntCase{Op::kShl, "shl", false},
                      IntCase{Op::kShr, "shr", false},
                      IntCase{Op::kCmpEq, "cmpeq", false},
                      IntCase{Op::kCmpNe, "cmpne", false},
                      IntCase{Op::kCmpLt, "cmplt", false},
                      IntCase{Op::kCmpLe, "cmple", false},
                      IntCase{Op::kCmpGt, "cmpgt", false},
                      IntCase{Op::kCmpGe, "cmpge", false}),
    [](const auto& info) { return info.param.name; });

// FP opcodes run on double bit patterns.
double run_fp(Op op, double a, double b) {
  i64 abits, bbits;
  std::memcpy(&abits, &a, 8);
  std::memcpy(&bbits, &b, 8);
  Module m;
  Function& f = m.add_function("main", 2);
  Builder bld(m, f);
  bld.set_block(bld.make_block());
  Reg r = bld.cmp(op, 0, 1);
  bld.ret(r);
  Machine vm(m);
  i64 out = vm.run("main", {abits, bbits}).exit_value;
  double d;
  std::memcpy(&d, &out, 8);
  return d;
}

TEST(FpOpSweep, MatchesHostDoubles) {
  const double vals[] = {-2.5, -0.0, 0.0, 0.125, 1.0, 3.14159, 1e300};
  for (double a : vals) {
    for (double b : vals) {
      EXPECT_EQ(run_fp(Op::kFAdd, a, b), a + b);
      EXPECT_EQ(run_fp(Op::kFSub, a, b), a - b);
      EXPECT_EQ(run_fp(Op::kFMul, a, b), a * b);
      if (b != 0.0) {
        EXPECT_EQ(run_fp(Op::kFDiv, a, b), a / b);
      }
    }
  }
}

TEST(FpOpSweep, Conversions) {
  Module m;
  Function& f = m.add_function("main", 1);
  Builder bld(m, f);
  bld.set_block(bld.make_block());
  Reg d = bld.i2f(0);
  Reg r = bld.f2i(d);
  bld.ret(r);
  Machine vm(m);
  for (i64 v : {-1000000, -1, 0, 1, 42, 1 << 20})
    EXPECT_EQ(vm.run("main", {v}).exit_value, v);
}

}  // namespace
}  // namespace pp::vm
