#include "vm/event_ring.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>

#include "ir/builder.hpp"
#include "support/diag.hpp"

namespace pp::vm {
namespace {

using ir::Builder;
using ir::Function;
using ir::Module;
using ir::Op;
using ir::Reg;

/// Renders the full event stream as text so serial and threaded replays
/// can be compared byte for byte.
struct TraceRecorder : Observer {
  std::ostringstream os;
  void on_local_jump(int func, int dst_bb) override {
    os << "J " << func << " " << dst_bb << "\n";
  }
  void on_call(CodeRef site, int callee) override {
    os << "C " << site.func << ":" << site.block << ":" << site.instr << " "
       << callee << "\n";
  }
  void on_return(int callee, CodeRef into) override {
    os << "R " << callee << " " << into.func << ":" << into.block << ":"
       << into.instr << "\n";
  }
  void on_instr(const InstrEvent& ev) override {
    os << "I " << ev.ref.func << ":" << ev.ref.block << ":" << ev.ref.instr
       << " " << (ev.has_result ? ev.result : -999) << " " << ev.address
       << "\n";
  }
  std::string str() const { return os.str(); }
};

Module loop_module(i64 trip) {
  Module m;
  i64 addr = m.add_global("buf", trip * 8);
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg base = b.const_(addr);
  Reg n = b.const_(trip);
  Reg sum = b.const_(0);
  b.counted_loop(0, n, 1, [&](Reg iv) {
    Reg off = b.muli(iv, 8);
    Reg slot = b.add(base, off);
    b.store(slot, iv);
    Reg v = b.load(slot);
    b.add(sum, v, sum);
  });
  b.ret(sum);
  return m;
}

Module trap_module() {
  // Executes a few instructions, then divides by zero.
  Module m;
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg a = b.const_(10);
  Reg z = b.const_(0);
  Reg bad = b.div(a, z);
  b.ret(bad);
  return m;
}

TEST(EventRing, BatchesFlowInFifoOrder) {
  EventRing ring(/*slots=*/2, /*batch_capacity=*/4);
  std::thread producer([&] {
    for (int batch = 0; batch < 5; ++batch) {
      auto& buf = ring.acquire();
      for (int i = 0; i < 4; ++i) {
        Event ev;
        ev.kind = Event::Kind::kLocalJump;
        ev.func = batch;
        ev.dst_bb = i;
        buf.push_back(ev);
      }
      ring.commit();
    }
    ring.close();
  });
  std::vector<Event> batch;
  int expect_batch = 0;
  while (ring.consume(batch)) {
    ASSERT_EQ(batch.size(), 4u);
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(batch[static_cast<std::size_t>(i)].func, expect_batch);
      EXPECT_EQ(batch[static_cast<std::size_t>(i)].dst_bb, i);
    }
    ++expect_batch;
  }
  EXPECT_EQ(expect_batch, 5);
  producer.join();
}

TEST(EventRing, ThreadedReplayMatchesSerialTrace) {
  Module m = loop_module(200);

  TraceRecorder serial;
  Machine vm1(m);
  vm1.set_observer(&serial);
  RunResult r1 = vm1.run("main");

  TraceRecorder threaded;
  Machine vm2(m);
  // Tiny batches force many ring round-trips; order must survive.
  RunResult r2 = replay_threaded(vm2, "main", {}, 500'000'000, threaded,
                                 /*wrap_producer=*/{}, /*ring_slots=*/3,
                                 /*batch_capacity=*/64);

  EXPECT_EQ(r1.exit_value, r2.exit_value);
  EXPECT_EQ(r1.stats.instructions, r2.stats.instructions);
  EXPECT_EQ(serial.str(), threaded.str());
  EXPECT_GT(serial.str().size(), 1000u);  // the loop actually ran
}

TEST(EventRing, ProducerTrapRethrownAfterDrainingPrefix) {
  Module m = trap_module();
  TraceRecorder serial;
  {
    Machine vm(m);
    vm.set_observer(&serial);
    EXPECT_THROW(vm.run("main"), Error);
  }

  TraceRecorder threaded;
  Machine vm(m);
  try {
    replay_threaded(vm, "main", {}, 500'000'000, threaded);
    FAIL() << "expected the trap to be rethrown on the calling thread";
  } catch (const Error&) {
  }
  // Every event up to the trap was delivered, same as the sync chain,
  // and partial stats survive on the machine.
  EXPECT_EQ(serial.str(), threaded.str());
  EXPECT_EQ(vm.stats().instructions, 3u);  // two consts + the trapping div
}

TEST(EventRing, ConsumerExceptionAbortsAndPropagates) {
  struct Bomb : Observer {
    int seen = 0;
    void on_instr(const InstrEvent&) override {
      if (++seen == 3) throw std::runtime_error("downstream bomb");
    }
  };
  Module m = loop_module(500);
  Bomb bomb;
  Machine vm(m);
  try {
    replay_threaded(vm, "main", {}, 500'000'000, bomb,
                    /*wrap_producer=*/{}, /*ring_slots=*/2,
                    /*batch_capacity=*/16);
    FAIL() << "expected the consumer exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "downstream bomb");
  }
  EXPECT_EQ(bomb.seen, 3);
  // The producer was unblocked and joined: the machine finished (or was
  // discarded) without deadlock — constructing another run still works.
  Machine vm2(m);
  EXPECT_NO_THROW(vm2.run("main"));
}

TEST(EventRing, ProducerInterposeSeesTheStream) {
  struct Counter : Observer {
    Observer* inner;
    u64 events = 0;
    explicit Counter(Observer* in) : inner(in) {}
    void on_local_jump(int f, int b) override {
      ++events;
      inner->on_local_jump(f, b);
    }
    void on_call(CodeRef s, int c) override {
      ++events;
      inner->on_call(s, c);
    }
    void on_return(int c, CodeRef i) override {
      ++events;
      inner->on_return(c, i);
    }
    void on_instr(const InstrEvent& ev) override {
      ++events;
      inner->on_instr(ev);
    }
  };
  Module m = loop_module(50);
  TraceRecorder sink;
  std::unique_ptr<Counter> counter;
  Machine vm(m);
  replay_threaded(vm, "main", {}, 500'000'000, sink,
                  [&](Observer& writer) -> Observer* {
                    counter = std::make_unique<Counter>(&writer);
                    return counter.get();
                  });
  ASSERT_NE(counter, nullptr);
  EXPECT_GT(counter->events, 0u);
  std::string trace = sink.str();
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(trace.begin(), trace.end(), '\n')),
            counter->events);
}

TEST(EventRing, ConsumerEarlyExitUnblocksProducer) {
  // Deadlock regression: a consumer that stops draining (cancellation,
  // early shutdown) must unpark a producer blocked in acquire() on a full
  // ring. The tiny ring guarantees the producer parks almost immediately;
  // without close_consumer() this join hangs forever.
  EventRing ring(/*slots=*/2, /*batch_capacity=*/4);
  std::thread producer([&] {
    for (int batch = 0; batch < 64; ++batch) {
      auto& buf = ring.acquire();
      for (int i = 0; i < 4; ++i) {
        Event ev;
        ev.kind = Event::Kind::kLocalJump;
        ev.func = batch;
        ev.dst_bb = i;
        buf.push_back(ev);
      }
      ring.commit();
    }
    ring.close();
  });
  std::vector<Event> batch;
  ASSERT_TRUE(ring.consume(batch));  // take one batch, then walk away
  ring.close_consumer();
  producer.join();  // the whole test: this must not deadlock
  // After the consumer closed its side, nothing more is drainable.
  EXPECT_FALSE(ring.consume(batch));
}

TEST(EventRing, CloseConsumerIsIdempotentAndOrderInsensitive) {
  EventRing ring(2, 4);
  ring.close_consumer();
  ring.close_consumer();  // idempotent
  // A producer starting after the consumer left just discards everything.
  auto& buf = ring.acquire();
  buf.push_back(Event{});
  ring.commit();
  ring.close();
  std::vector<Event> batch;
  EXPECT_FALSE(ring.consume(batch));
}

TEST(EventRing, PreFiredCancelTruncatesReplayAtStepCadence) {
  // A token fired before the replay starts stops the Machine at its first
  // cancel checkpoint (every 2048 retired steps) — deterministically, on
  // the producer thread, with the truncation reason recorded.
  Module m = loop_module(5000);  // far more than 2048 steps of work
  support::CancelToken token;
  token.cancel();
  TraceRecorder sink;
  Machine vm(m);
  RunResult r =
      replay_threaded(vm, "main", {}, 500'000'000, sink,
                      /*wrap_producer=*/{}, /*ring_slots=*/8,
                      /*batch_capacity=*/4096, /*obs=*/nullptr, &token);
  EXPECT_TRUE(r.truncated);
  EXPECT_NE(r.truncate_reason.find("cancelled"), std::string::npos);
  EXPECT_GT(r.stats.instructions, 0u);
  EXPECT_LE(r.stats.instructions, 2048u);
}

TEST(EventRing, ConcurrentCancelNeverDeadlocks) {
  // Wall-clock cancel racing a threaded replay over a tiny ring: whatever
  // the interleaving, the replay returns (complete or truncated) and the
  // producer thread is joined inside replay_threaded — no hang, no throw.
  Module m = loop_module(20000);
  for (int round = 0; round < 8; ++round) {
    support::CancelToken token;
    TraceRecorder sink;
    Machine vm(m);
    std::thread canceller([&] { token.cancel(); });
    EXPECT_NO_THROW(replay_threaded(vm, "main", {}, 500'000'000, sink,
                                    /*wrap_producer=*/{}, /*ring_slots=*/2,
                                    /*batch_capacity=*/64, nullptr, &token));
    canceller.join();
  }
}

}  // namespace
}  // namespace pp::vm
