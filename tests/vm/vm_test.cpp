#include "vm/vm.hpp"

#include <gtest/gtest.h>

#include "ir/builder.hpp"

namespace pp::vm {
namespace {

using ir::Builder;
using ir::Function;
using ir::Module;
using ir::Op;
using ir::Reg;

// A trace-recording observer used across the tests.
struct Recorder : Observer {
  std::vector<std::pair<int, int>> jumps;  // (func, bb)
  std::vector<std::pair<CodeRef, int>> calls;
  std::vector<std::pair<int, CodeRef>> returns;
  u64 instr_events = 0;
  std::vector<i64> load_addresses;

  void on_local_jump(int func, int dst_bb) override {
    jumps.emplace_back(func, dst_bb);
  }
  void on_call(CodeRef site, int callee) override {
    calls.emplace_back(site, callee);
  }
  void on_return(int callee, CodeRef into) override {
    returns.emplace_back(callee, into);
  }
  void on_instr(const InstrEvent& ev) override {
    ++instr_events;
    if (ev.instr->op == Op::kLoad) load_addresses.push_back(ev.address);
  }
};

Module arith_module() {
  Module m;
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg a = b.const_(6);
  Reg c = b.const_(7);
  Reg r = b.mul(a, c);
  b.ret(r);
  return m;
}

TEST(Vm, BasicArithmetic) {
  Module m = arith_module();
  Machine vm(m);
  RunResult r = vm.run("main");
  EXPECT_EQ(r.exit_value, 42);
  EXPECT_EQ(r.stats.instructions, 4u);
}

TEST(Vm, AllIntOps) {
  Module m;
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg a = b.const_(13);
  Reg c = b.const_(5);
  Reg sum = b.add(a, c);           // 18
  Reg diff = b.sub(sum, c);        // 13
  Reg quot = b.div(diff, c);       // 2
  Reg remv = b.rem(diff, c);       // 3
  Reg mixed = b.mul(quot, remv);   // 6
  Reg r = b.addi(mixed, 100);      // 106
  b.ret(r);
  Machine vm(m);
  EXPECT_EQ(vm.run("main").exit_value, 106);
}

TEST(Vm, ComparisonsAndBranching) {
  // return (10 < 20) ? 1 : 2 via brcond
  Module m;
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  int entry = b.make_block();
  int then_bb = b.make_block();
  int else_bb = b.make_block();
  b.set_block(entry);
  Reg a = b.const_(10);
  Reg c = b.const_(20);
  Reg lt = b.cmp(Op::kCmpLt, a, c);
  b.br_cond(lt, then_bb, else_bb);
  b.set_block(then_bb);
  Reg one = b.const_(1);
  b.ret(one);
  b.set_block(else_bb);
  Reg two = b.const_(2);
  b.ret(two);
  Machine vm(m);
  EXPECT_EQ(vm.run("main").exit_value, 1);
}

TEST(Vm, FloatingPointOps) {
  Module m;
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg x = b.fconst(1.5);
  Reg y = b.fconst(2.5);
  Reg s = b.fadd(x, y);      // 4.0
  Reg p = b.fmul(s, y);      // 10.0
  Reg i = b.f2i(p);          // 10
  b.ret(i);
  Machine vm(m);
  RunResult r = vm.run("main");
  EXPECT_EQ(r.exit_value, 10);
  EXPECT_EQ(r.stats.fp_ops, 2u);
}

TEST(Vm, LoadStoreGlobals) {
  Module m;
  i64 addr = m.add_global_init("tbl", {10, 20, 30});
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg base = b.const_(addr);
  Reg v1 = b.load(base, 8);    // 20
  Reg v2 = b.load(base, 16);   // 30
  Reg s = b.add(v1, v2);       // 50
  b.store(base, s, 0);
  b.ret(s);
  Machine vm(m);
  RunResult r = vm.run("main");
  EXPECT_EQ(r.exit_value, 50);
  EXPECT_EQ(vm.read_word(addr), 50);
  EXPECT_EQ(r.stats.loads, 2u);
  EXPECT_EQ(r.stats.stores, 1u);
}

TEST(Vm, LoopExecutesNTimes) {
  // return sum of 0..9 = 45
  Module m;
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg sum = b.const_(0);
  Reg n = b.const_(10);
  b.counted_loop(0, n, 1, [&](Reg iv) { b.add(sum, iv, sum); });
  b.ret(sum);
  Machine vm(m);
  EXPECT_EQ(vm.run("main").exit_value, 45);
}

TEST(Vm, CallsAndReturnValues) {
  Module m;
  Function& sq = m.add_function("square", 1);
  {
    Builder b(m, sq);
    b.set_block(b.make_block());
    Reg r = b.mul(0, 0);
    b.ret(r);
  }
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg x = b.const_(9);
  Reg r = b.call(sq, {x}, true);
  b.ret(r);
  Machine vm(m);
  RunResult res = vm.run("main");
  EXPECT_EQ(res.exit_value, 81);
  EXPECT_EQ(res.stats.calls, 1u);
}

TEST(Vm, RecursionFactorial) {
  Module m;
  Function& fact = m.add_function("fact", 1);
  {
    Builder b(m, fact);
    int entry = b.make_block();
    int base = b.make_block();
    int rec = b.make_block();
    b.set_block(entry);
    Reg one = b.const_(1);
    Reg le = b.cmp(Op::kCmpLe, 0, one);
    b.br_cond(le, base, rec);
    b.set_block(base);
    Reg c1 = b.const_(1);
    b.ret(c1);
    b.set_block(rec);
    Reg nm1 = b.addi(0, -1);
    Reg sub = b.call(fact, {nm1}, true);
    Reg r = b.mul(0, sub);
    b.ret(r);
  }
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg n = b.const_(6);
  Reg r = b.call(fact, {n}, true);
  b.ret(r);
  Machine vm(m);
  EXPECT_EQ(vm.run("main").exit_value, 720);
}

TEST(Vm, EntryArguments) {
  Module m;
  Function& f = m.add_function("main", 2);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg r = b.sub(0, 1);
  b.ret(r);
  Machine vm(m);
  EXPECT_EQ(vm.run("main", {50, 8}).exit_value, 42);
}

TEST(Vm, ObserverSeesControlEvents) {
  Module m;
  Function& g = m.add_function("g", 0);
  {
    Builder b(m, g);
    b.set_block(b.make_block());
    b.ret();
  }
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  int entry = b.make_block();
  int next = b.make_block();
  b.set_block(entry);
  b.call(g, {});
  b.br(next);
  b.set_block(next);
  b.ret();
  Machine vm(m);
  Recorder rec;
  vm.set_observer(&rec);
  vm.run("main");
  // Initial jump into main bb0, then jump to bb1.
  ASSERT_GE(rec.jumps.size(), 2u);
  EXPECT_EQ(rec.jumps[0], std::make_pair(f.id, 0));
  EXPECT_EQ(rec.jumps.back(), std::make_pair(f.id, 1));
  ASSERT_EQ(rec.calls.size(), 1u);
  EXPECT_EQ(rec.calls[0].second, g.id);
  ASSERT_EQ(rec.returns.size(), 1u);
  EXPECT_EQ(rec.returns[0].first, g.id);
  EXPECT_EQ(rec.returns[0].second.func, f.id);
  EXPECT_GT(rec.instr_events, 0u);
}

TEST(Vm, ObserverSeesLoadAddresses) {
  Module m;
  i64 addr = m.add_global("buf", 64);
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg base = b.const_(addr);
  Reg n = b.const_(4);
  b.counted_loop(0, n, 1, [&](Reg iv) {
    Reg off = b.muli(iv, 8);
    Reg p = b.add(base, off);
    b.load(p);
  });
  b.ret();
  Machine vm(m);
  Recorder rec;
  vm.set_observer(&rec);
  vm.run("main");
  EXPECT_EQ(rec.load_addresses,
            (std::vector<i64>{addr, addr + 8, addr + 16, addr + 24}));
}

TEST(Vm, TrapsOnBadAddress) {
  Module m;
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg bad = b.const_(-8);
  b.load(bad);
  b.ret();
  Machine vm(m);
  EXPECT_THROW(vm.run("main"), Error);
}

TEST(Vm, TrapsOnUnalignedAddress) {
  Module m;
  m.add_global("buf", 64);
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg bad = b.const_(3);
  b.load(bad);
  b.ret();
  Machine vm(m);
  EXPECT_THROW(vm.run("main"), Error);
}

TEST(Vm, TrapsOnDivisionByZero) {
  Module m;
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg a = b.const_(1);
  Reg z = b.const_(0);
  b.div(a, z);
  b.ret();
  Machine vm(m);
  EXPECT_THROW(vm.run("main"), Error);
}

TEST(Vm, StepLimitTruncatesInfiniteLoops) {
  Module m;
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  int entry = b.make_block();
  b.set_block(entry);
  b.br(entry);
  Machine vm(m);
  // Exhausting the step cap is a truncation, not a trap: the run stops
  // and the partial stats survive.
  RunResult rr = vm.run("main", {}, /*max_steps=*/1000);
  EXPECT_TRUE(rr.truncated);
  EXPECT_NE(rr.truncate_reason.find("step limit"), std::string::npos);
  EXPECT_EQ(rr.stats.instructions, 1000u);
}

TEST(Vm, CacheModelCountsMisses) {
  // Stride-8 (one word) walk over 4 KiB touches 64 lines -> 64 misses;
  // a second pass over the same data (fits in cache) hits.
  Module m;
  i64 addr = m.add_global("buf", 4096);
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg base = b.const_(addr);
  Reg n = b.const_(512);
  b.counted_loop(0, n, 1, [&](Reg iv) {
    Reg off = b.muli(iv, 8);
    Reg p = b.add(base, off);
    b.load(p);
  });
  b.counted_loop(0, n, 1, [&](Reg iv) {
    Reg off = b.muli(iv, 8);
    Reg p = b.add(base, off);
    b.load(p);
  });
  b.ret();
  Machine vm(m);
  RunResult r = vm.run("main");
  EXPECT_EQ(r.stats.cache_misses, 64u);
}

TEST(Vm, PerFunctionInstructionCounts) {
  Module m = arith_module();
  Machine vm(m);
  RunResult r = vm.run("main");
  ASSERT_EQ(r.stats.per_function_instrs.size(), 1u);
  EXPECT_EQ(r.stats.per_function_instrs[0], r.stats.instructions);
}

TEST(Vm, DeterministicAcrossRuns) {
  Module m = arith_module();
  Machine vm(m);
  RunResult a = vm.run("main");
  RunResult b = vm.run("main");
  EXPECT_EQ(a.exit_value, b.exit_value);
  EXPECT_EQ(a.stats.instructions, b.stats.instructions);
  EXPECT_EQ(a.stats.cycles, b.stats.cycles);
}

}  // namespace
}  // namespace pp::vm
