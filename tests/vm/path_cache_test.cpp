// Hot-path trace compaction (vm::PathCache + DdgBuilder bulk replay):
// the hard contract is that `full_report` is byte-identical with
// compaction on and off — compressed runs must reproduce the reference
// event stream exactly, and every guard failure must bail out at the
// diverging event and resume on the interpreted slow path. These tests
// drive the bailout taxonomy directly: data-dependent control flow,
// clamped emission inside a run, a VM trap mid-run, and non-affine
// (collected) values/addresses.
#include <string>

#include "core/pipeline.hpp"
#include "gtest/gtest.h"
#include "ir/builder.hpp"

namespace pp {
namespace {

using ir::Builder;
using ir::Function;
using ir::Module;
using ir::Op;
using ir::Reg;

std::string report_with_compaction(const ir::Module& m, bool on,
                                   const core::PipelineOptions& base = {}) {
  core::Pipeline pipe(m);
  core::PipelineOptions opts = base;
  opts.path_compaction = on;
  core::ProfileResult r = pipe.run(opts);
  return core::full_report(r);
}

/// Counter finals from an observed compacted run (0 if absent).
struct PathCounters {
  i64 hits = 0, bailouts = 0, compressed = 0;
  bool truncated = false;
};
PathCounters counters_of(const ir::Module& m,
                         const core::PipelineOptions& base = {}) {
  core::Pipeline pipe(m);
  core::PipelineOptions opts = base;
  opts.path_compaction = true;
  opts.observe = true;
  core::ProfileResult r = pipe.run(opts);
  PathCounters c;
  c.truncated = r.truncated;
  auto cs = r.obs->counters();
  if (auto it = cs.find("vm.path_hits"); it != cs.end())
    c.hits = it->second.value;
  if (auto it = cs.find("vm.path_bailouts"); it != cs.end())
    c.bailouts = it->second.value;
  if (auto it = cs.find("vm.events_compressed"); it != cs.end())
    c.compressed = it->second.value;
  return c;
}

// for (i = 0; i < n; ++i) a[i] = i;  — one acyclic body path, affine
// value and address recurrences: the canonical compressible loop.
Module affine_store_loop(i64 n) {
  Module m;
  i64 a = m.add_global("a", n * 8);
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg base = b.const_(a);
  Reg end = b.const_(n);
  b.counted_loop(0, end, 1, [&](Reg iv) {
    Reg off = b.muli(iv, 8);
    Reg addr = b.add(base, off);
    b.store(addr, iv);
  });
  b.ret();
  return m;
}

TEST(PathCache, AffineLoopCompressesAndReportMatchesReference) {
  Module m = affine_store_loop(64);
  EXPECT_EQ(report_with_compaction(m, false), report_with_compaction(m, true));
  PathCounters c = counters_of(m);
  EXPECT_GT(c.hits, 0);
  EXPECT_GT(c.compressed, 0);
}

// Loop whose branch depends on loaded data: constant for a long stretch,
// flips once mid-loop, then constant again. The armed run must bail at
// exactly the diverging jump and re-arm afterwards.
Module data_dependent_branch_loop(i64 n, i64 flip_at) {
  Module m;
  std::vector<i64> words(static_cast<std::size_t>(n), 0);
  words[static_cast<std::size_t>(flip_at)] = 1;
  i64 a = m.add_global_init("a", std::move(words));
  i64 acc_slot = m.add_global("acc", 8);
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg base = b.const_(a);
  Reg accp = b.const_(acc_slot);
  Reg end = b.const_(n);
  b.counted_loop(0, end, 1, [&](Reg iv) {
    Reg off = b.muli(iv, 8);
    Reg addr = b.add(base, off);
    Reg v = b.load(addr);
    int then_bb = b.make_block("then");
    int else_bb = b.make_block("else");
    int join_bb = b.make_block("join");
    b.br_cond(v, then_bb, else_bb);
    b.set_block(then_bb);
    Reg acc1 = b.load(accp);
    Reg bumped = b.addi(acc1, 100);
    b.store(accp, bumped);
    b.br(join_bb);
    b.set_block(else_bb);
    Reg acc2 = b.load(accp);
    Reg inc = b.addi(acc2, 1);
    b.store(accp, inc);
    b.br(join_bb);
    b.set_block(join_bb);
  });
  Reg final_acc = b.load(b.const_(acc_slot));
  b.ret(final_acc);
  return m;
}

TEST(PathCache, DataDependentBranchBailsAtDivergingEvent) {
  Module m = data_dependent_branch_loop(96, 48);
  EXPECT_EQ(report_with_compaction(m, false), report_with_compaction(m, true));
  PathCounters c = counters_of(m);
  // The flip iteration cannot match the armed else-path template.
  EXPECT_GE(c.bailouts, 1);
  EXPECT_GT(c.hits, 0);
}

TEST(PathCache, ClampedEmissionInsideCompressedRunStaysExact) {
  Module m = affine_store_loop(100);
  // The clamp trips strictly inside a compressed run: emission stops at
  // the exact instance while executions keep counting.
  for (u64 clamp : {1u, 5u, 37u, 99u}) {
    SCOPED_TRACE("clamp=" + std::to_string(clamp));
    core::PipelineOptions base;
    base.ddg.clamp_instances = clamp;
    EXPECT_EQ(report_with_compaction(m, false, base),
              report_with_compaction(m, true, base));
  }
}

// for (i = 0; i < n; ++i) a[i] = i;  with n large enough that the store
// walks past the data segment AND the machine's default 1 MiB heap: the
// trap lands inside an armed run and the flushed partial profile must
// match the reference byte for byte.
Module trapping_store_loop(i64 alloc, i64 n) {
  Module m;
  i64 a = m.add_global("a", alloc * 8);
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg base = b.const_(a);
  Reg end = b.const_(n);
  b.counted_loop(0, end, 1, [&](Reg iv) {
    Reg off = b.muli(iv, 8);
    Reg addr = b.add(base, off);
    b.store(addr, iv);
  });
  b.ret();
  return m;
}

TEST(PathCache, TrapMidCompressedRunFlushesToReferenceProfile) {
  Module m = trapping_store_loop(/*alloc=*/40, /*n=*/1 << 18);
  const std::string off = report_with_compaction(m, false);
  EXPECT_NE(off.find("PARTIAL PROFILE"), std::string::npos);
  EXPECT_EQ(off, report_with_compaction(m, true));
  PathCounters c = counters_of(m);
  EXPECT_TRUE(c.truncated);
  EXPECT_GT(c.hits, 0);
}

// a[b[i]] with a scrambled index vector: the load address never settles
// into an affine recurrence, so the slot demotes to collect-class and the
// run keeps compressing without address guards.
Module indirect_load_loop(i64 n) {
  Module m;
  std::vector<i64> idx(static_cast<std::size_t>(n));
  for (i64 i = 0; i < n; ++i)
    idx[static_cast<std::size_t>(i)] = (i * 7 + 3) % n;
  i64 bg = m.add_global_init("b", std::move(idx));
  i64 ag = m.add_global("a", n * 8);
  i64 acc_slot = m.add_global("acc", 8);
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg bbase = b.const_(bg);
  Reg abase = b.const_(ag);
  Reg accp = b.const_(acc_slot);
  Reg end = b.const_(n);
  b.counted_loop(0, end, 1, [&](Reg iv) {
    Reg boff = b.muli(iv, 8);
    Reg baddr = b.add(bbase, boff);
    Reg j = b.load(baddr);
    Reg aoff = b.muli(j, 8);
    Reg aaddr = b.add(abase, aoff);
    Reg v = b.load(aaddr);
    Reg acc = b.load(accp);
    Reg sum = b.add(acc, v);
    b.store(accp, sum);
  });
  b.ret();
  return m;
}

TEST(PathCache, NonAffineAddressesCollectWithoutBailing) {
  Module m = indirect_load_loop(80);
  EXPECT_EQ(report_with_compaction(m, false), report_with_compaction(m, true));
  PathCounters c = counters_of(m);
  EXPECT_GT(c.hits, 0);
  EXPECT_GT(c.compressed, 0);
}

// Compaction is silently ignored when it could be observable: anti/output
// tracking changes shadow-read bookkeeping, and shadow/pool/wall budget
// caps would trip at different points under bulk replay.
TEST(PathCache, ObservableConfigurationsDisableCompaction) {
  Module m = affine_store_loop(64);
  {
    core::PipelineOptions base;
    base.ddg.track_anti_output = true;
    base.observe = true;
    base.path_compaction = true;
    core::ProfileResult r = core::Pipeline(m).run(base);
    auto cs = r.obs->counters();
    EXPECT_EQ(cs.find("vm.path_hits"), cs.end());
  }
  {
    core::PipelineOptions base;
    base.budget.shadow_pages = 1 << 20;
    base.observe = true;
    base.path_compaction = true;
    core::ProfileResult r = core::Pipeline(m).run(base);
    auto cs = r.obs->counters();
    EXPECT_EQ(cs.find("vm.path_hits"), cs.end());
  }
}

}  // namespace
}  // namespace pp
