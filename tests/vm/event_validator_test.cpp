#include "vm/event_validator.hpp"

#include <gtest/gtest.h>

#include "ir/builder.hpp"

namespace pp::vm {
namespace {

using ir::Builder;
using ir::Function;
using ir::Module;
using ir::Reg;

/// Counts forwarded events (what a downstream builder would see).
struct Recorder : Observer {
  u64 jumps = 0, calls = 0, returns = 0, instrs = 0;
  void on_local_jump(int, int) override { ++jumps; }
  void on_call(CodeRef, int) override { ++calls; }
  void on_return(int, CodeRef) override { ++returns; }
  void on_instr(const InstrEvent&) override { ++instrs; }
  u64 total() const { return jumps + calls + returns + instrs; }
};

/// main { g = global; for i in 0..4: store g[i] = load g[i] } with a callee.
Module looped_module() {
  Module m;
  i64 g = m.add_global("g", 8 * 8);
  Function& leaf = m.add_function("leaf", 1);
  {
    Builder b(m, leaf);
    b.set_block(b.make_block());
    Reg two = b.muli(0, 2);
    b.ret(two);
  }
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg base = b.const_(g);
  Reg n = b.const_(4);
  b.counted_loop(0, n, 1, [&](Reg i) {
    Reg off = b.muli(i, 8);
    Reg p = b.add(base, off);
    Reg v = b.load(p);
    Reg d = b.call(leaf, {v}, true);
    b.store(p, d);
  });
  b.ret();
  return m;
}

TEST(EventValidator, ValidStreamPassesThroughUnchanged) {
  Module m = looped_module();
  Recorder direct;
  {
    Machine vm(m);
    vm.set_observer(&direct);
    vm.run("main");
  }
  Recorder through;
  support::DiagnosticLog diag;
  {
    Machine vm(m);
    EventValidator val(m, &through, &diag);
    vm.set_observer(&val);
    vm.run("main");
    EXPECT_TRUE(val.ok());
    EXPECT_EQ(val.instr_events(), through.instrs);
    EXPECT_EQ(val.frame_depth(), 1u);  // only the entry frame left open
  }
  EXPECT_EQ(direct.jumps, through.jumps);
  EXPECT_EQ(direct.calls, through.calls);
  EXPECT_EQ(direct.returns, through.returns);
  EXPECT_EQ(direct.instrs, through.instrs);
  EXPECT_TRUE(diag.empty());
}

TEST(EventValidator, RejectsOutOfRangeFunction) {
  Module m = looped_module();
  Recorder rec;
  support::DiagnosticLog diag;
  EventValidator val(m, &rec, &diag);
  val.on_local_jump(99, 0);
  EXPECT_FALSE(val.ok());
  EXPECT_NE(val.fault().find("out-of-range function"), std::string::npos);
  ASSERT_EQ(diag.size(), 1u);
  EXPECT_EQ(diag.all()[0].severity, support::Severity::kError);
  EXPECT_EQ(rec.total(), 0u);  // nothing forwarded
}

TEST(EventValidator, RejectsOutOfRangeBlock) {
  Module m = looped_module();
  Recorder rec;
  EventValidator val(m, &rec);
  int main_id = m.find_function("main")->id;
  val.on_local_jump(main_id, 1'000'000);
  EXPECT_FALSE(val.ok());
  EXPECT_NE(val.fault().find("out-of-range block"), std::string::npos);
}

TEST(EventValidator, RejectsUnmatchedReturn) {
  Module m = looped_module();
  Recorder rec;
  support::DiagnosticLog diag;
  EventValidator val(m, &rec, &diag);
  int main_id = m.find_function("main")->id;
  val.on_local_jump(main_id, 0);  // entry frame
  val.on_return(main_id, CodeRef{main_id, 0, 0});  // no call to match
  EXPECT_FALSE(val.ok());
  EXPECT_NE(val.fault().find("unmatched return"), std::string::npos);
  EXPECT_EQ(rec.returns, 0u);
}

TEST(EventValidator, RejectsReturnFromWrongCallee) {
  Module m = looped_module();
  Recorder rec;
  EventValidator val(m, &rec);
  int main_id = m.find_function("main")->id;
  int leaf_id = m.find_function("leaf")->id;
  val.on_local_jump(main_id, 0);
  val.on_call(CodeRef{main_id, 0, 0}, leaf_id);
  val.on_return(main_id, CodeRef{main_id, 0, 0});  // should be leaf
  EXPECT_FALSE(val.ok());
  EXPECT_NE(val.fault().find("does not match innermost call"),
            std::string::npos);
}

TEST(EventValidator, RejectsMisalignedAddress) {
  Module m = looped_module();
  Recorder rec;
  EventValidator val(m, &rec);
  int main_id = m.find_function("main")->id;
  const auto& f = m.functions[static_cast<std::size_t>(main_id)];
  // Locate the first load and replay its block's prefix faithfully, then
  // hand the validator a misaligned address for the load itself.
  int load_bb = -1, load_idx = -1;
  for (std::size_t bi = 0; bi < f.blocks.size() && load_bb < 0; ++bi)
    for (std::size_t ii = 0; ii < f.blocks[bi].instrs.size(); ++ii)
      if (f.blocks[bi].instrs[ii].op == ir::Op::kLoad) {
        load_bb = static_cast<int>(bi);
        load_idx = static_cast<int>(ii);
        break;
      }
  ASSERT_GE(load_bb, 0);
  val.on_local_jump(main_id, load_bb);
  for (int i = 0; i <= load_idx; ++i) {
    InstrEvent ev;
    ev.ref = {main_id, load_bb, i};
    ev.instr = &f.blocks[static_cast<std::size_t>(load_bb)]
                    .instrs[static_cast<std::size_t>(i)];
    if (i == load_idx) ev.address = 12 + 3;  // not 8-byte aligned
    val.on_instr(ev);
  }
  EXPECT_FALSE(val.ok());
  EXPECT_NE(val.fault().find("misaligned"), std::string::npos);
}

TEST(EventValidator, RejectsNonMonotoneOrdering) {
  Module m = looped_module();
  Recorder rec;
  EventValidator val(m, &rec);
  int main_id = m.find_function("main")->id;
  const auto& entry_bb =
      m.functions[static_cast<std::size_t>(main_id)].blocks[0];
  ASSERT_GE(entry_bb.instrs.size(), 2u);
  val.on_local_jump(main_id, 0);
  InstrEvent ev;
  ev.ref = {main_id, 0, 1};  // skips instr 0
  ev.instr = &entry_bb.instrs[1];
  val.on_instr(ev);
  EXPECT_FALSE(val.ok());
  EXPECT_NE(val.fault().find("non-monotone"), std::string::npos);
}

TEST(EventValidator, DropsEverythingAfterFirstFault) {
  Module m = looped_module();
  Recorder rec;
  support::DiagnosticLog diag;
  EventValidator val(m, &rec, &diag);
  val.on_local_jump(99, 0);  // fault
  ASSERT_FALSE(val.ok());
  int main_id = m.find_function("main")->id;
  val.on_local_jump(main_id, 0);  // would be valid, but the stream is dead
  val.on_call(CodeRef{main_id, 0, 0}, main_id);
  EXPECT_EQ(rec.total(), 0u);
  EXPECT_EQ(diag.size(), 1u);  // only the first fault is recorded
}

}  // namespace
}  // namespace pp::vm
