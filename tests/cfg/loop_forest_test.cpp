#include "cfg/loop_forest.hpp"

#include <gtest/gtest.h>

namespace pp::cfg {
namespace {

// The paper's Fig. 2(a): blocks A=0, B=1, C=2, D=3, E=4.
//   A -> B;  B -> C, D;  C -> D, E;  D -> C, B
// SCC {B,C,D} = loop L1 (header B, back-edge D->B); removing (D,B) leaves
// sub-SCC {C,D} = loop L2 with entries {C,D}, C chosen header, back-edge
// (D,C).
FunctionCfg fig2_cfg() {
  FunctionCfg cfg;
  cfg.func = 0;
  cfg.entry = 0;
  cfg.blocks.add_edge(0, 1);
  cfg.blocks.add_edge(1, 2);
  cfg.blocks.add_edge(1, 3);
  cfg.blocks.add_edge(2, 3);
  cfg.blocks.add_edge(2, 4);
  cfg.blocks.add_edge(3, 2);
  cfg.blocks.add_edge(3, 1);
  return cfg;
}

TEST(LoopForest, Fig2StructureMatchesPaper) {
  LoopForest lf(fig2_cfg());
  ASSERT_EQ(lf.loops().size(), 2u);

  int l1 = lf.loop_of_header(1);
  ASSERT_GE(l1, 0);
  const Loop& L1 = lf.loop(l1);
  EXPECT_EQ(L1.header, 1);
  EXPECT_EQ(L1.blocks, (std::set<int>{1, 2, 3}));
  EXPECT_EQ(L1.back_edges, (std::set<std::pair<int, int>>{{3, 1}}));
  EXPECT_EQ(L1.parent, -1);
  EXPECT_EQ(L1.depth, 1);

  int l2 = lf.loop_of_header(2);
  ASSERT_GE(l2, 0);
  const Loop& L2 = lf.loop(l2);
  EXPECT_EQ(L2.header, 2);  // C chosen among entries {C, D}
  EXPECT_EQ(L2.blocks, (std::set<int>{2, 3}));
  EXPECT_EQ(L2.back_edges, (std::set<std::pair<int, int>>{{3, 2}}));
  EXPECT_EQ(L2.parent, l1);
  EXPECT_EQ(L2.depth, 2);
  EXPECT_EQ(L1.children, (std::vector<int>{l2}));
}

TEST(LoopForest, InnermostLoopMap) {
  LoopForest lf(fig2_cfg());
  int l1 = lf.loop_of_header(1);
  int l2 = lf.loop_of_header(2);
  EXPECT_EQ(lf.innermost_loop(0), -1);  // A outside all loops
  EXPECT_EQ(lf.innermost_loop(4), -1);  // E outside all loops
  EXPECT_EQ(lf.innermost_loop(1), l1);  // B only in L1
  EXPECT_EQ(lf.innermost_loop(2), l2);  // C in L2
  EXPECT_EQ(lf.innermost_loop(3), l2);  // D in L2
  EXPECT_EQ(lf.max_depth(), 2);
}

TEST(LoopForest, AcyclicCfgHasNoLoops) {
  FunctionCfg cfg;
  cfg.blocks.add_edge(0, 1);
  cfg.blocks.add_edge(0, 2);
  cfg.blocks.add_edge(1, 3);
  cfg.blocks.add_edge(2, 3);
  LoopForest lf(cfg);
  EXPECT_TRUE(lf.loops().empty());
  EXPECT_EQ(lf.max_depth(), 0);
}

TEST(LoopForest, SelfLoopBlock) {
  FunctionCfg cfg;
  cfg.blocks.add_edge(0, 1);
  cfg.blocks.add_edge(1, 1);
  cfg.blocks.add_edge(1, 2);
  LoopForest lf(cfg);
  ASSERT_EQ(lf.loops().size(), 1u);
  EXPECT_EQ(lf.loop(0).header, 1);
  EXPECT_EQ(lf.loop(0).blocks, (std::set<int>{1}));
  EXPECT_EQ(lf.loop(0).back_edges, (std::set<std::pair<int, int>>{{1, 1}}));
}

TEST(LoopForest, TripleNest) {
  // while(){ while(){ while(){} } } as: 1 -> 2 -> 3 -> 3, 3 -> 2, 2 -> 1.
  FunctionCfg cfg;
  cfg.blocks.add_edge(0, 1);
  cfg.blocks.add_edge(1, 2);
  cfg.blocks.add_edge(2, 3);
  cfg.blocks.add_edge(3, 3);
  cfg.blocks.add_edge(3, 2);
  cfg.blocks.add_edge(2, 1);
  cfg.blocks.add_edge(1, 4);
  LoopForest lf(cfg);
  ASSERT_EQ(lf.loops().size(), 3u);
  EXPECT_EQ(lf.max_depth(), 3);
  int outer = lf.loop_of_header(1);
  int mid = lf.loop_of_header(2);
  int inner = lf.loop_of_header(3);
  EXPECT_EQ(lf.loop(mid).parent, outer);
  EXPECT_EQ(lf.loop(inner).parent, mid);
  EXPECT_EQ(lf.innermost_loop(3), inner);
}

TEST(LoopForest, TwoSiblingLoops) {
  // 0 -> 1 (loop) -> 2 (loop) -> 3 with 1->1 and 2->2.
  FunctionCfg cfg;
  cfg.blocks.add_edge(0, 1);
  cfg.blocks.add_edge(1, 1);
  cfg.blocks.add_edge(1, 2);
  cfg.blocks.add_edge(2, 2);
  cfg.blocks.add_edge(2, 3);
  LoopForest lf(cfg);
  ASSERT_EQ(lf.loops().size(), 2u);
  EXPECT_EQ(lf.loop(lf.loop_of_header(1)).parent, -1);
  EXPECT_EQ(lf.loop(lf.loop_of_header(2)).parent, -1);
  EXPECT_EQ(lf.max_depth(), 1);
}

TEST(LoopForest, IrreducibleLoopGetsSingleHeader) {
  // Classic irreducible region: 0 -> 1, 0 -> 2, 1 <-> 2. The SCC {1,2} has
  // two entries; exactly one becomes the header.
  FunctionCfg cfg;
  cfg.blocks.add_edge(0, 1);
  cfg.blocks.add_edge(0, 2);
  cfg.blocks.add_edge(1, 2);
  cfg.blocks.add_edge(2, 1);
  LoopForest lf(cfg);
  ASSERT_EQ(lf.loops().size(), 1u);
  EXPECT_EQ(lf.loop(0).header, 1);  // lowest-id entry
  EXPECT_EQ(lf.loop(0).blocks, (std::set<int>{1, 2}));
}

TEST(LoopForest, EntryBlockInLoop) {
  // The function entry itself is a loop header: 0 -> 1 -> 0.
  FunctionCfg cfg;
  cfg.entry = 0;
  cfg.blocks.add_edge(0, 1);
  cfg.blocks.add_edge(1, 0);
  cfg.blocks.add_edge(1, 2);
  LoopForest lf(cfg);
  ASSERT_EQ(lf.loops().size(), 1u);
  EXPECT_EQ(lf.loop(0).header, 0);
}

TEST(LoopForest, StrRendering) {
  LoopForest lf(fig2_cfg());
  std::string s = lf.str();
  EXPECT_NE(s.find("header=bb1"), std::string::npos);
  EXPECT_NE(s.find("header=bb2"), std::string::npos);
}

}  // namespace
}  // namespace pp::cfg
