#include "cfg/recursive_components.hpp"

#include <gtest/gtest.h>

namespace pp::cfg {
namespace {

// The paper's Fig. 2(c/d): call graph whose SCC {B, C} is entered at B and
// needs two header-elimination rounds, producing headers {B, C}.
// Functions: M=0, B=1, C=2 with M->B, B->C, C->B, C->C.
TEST(RecursiveComponents, Fig2HeadersMatchPaper) {
  CallGraph cg;
  cg.graph.add_edge(0, 1);
  cg.graph.add_edge(1, 2);
  cg.graph.add_edge(2, 1);
  cg.graph.add_edge(2, 2);
  RecursiveComponentSet rcs(cg, {0});
  ASSERT_EQ(rcs.components().size(), 1u);
  const RecursiveComponent& rc = rcs.components()[0];
  EXPECT_EQ(rc.functions, (std::set<int>{1, 2}));
  EXPECT_EQ(rc.entries, (std::set<int>{1}));
  EXPECT_EQ(rc.headers, (std::set<int>{1, 2}));
  EXPECT_EQ(rcs.component_of(1), 0);
  EXPECT_EQ(rcs.component_of(2), 0);
  EXPECT_EQ(rcs.component_of(0), -1);
  EXPECT_TRUE(rcs.is_entry(1));
  EXPECT_FALSE(rcs.is_entry(2));
  EXPECT_TRUE(rcs.is_header(1));
  EXPECT_TRUE(rcs.is_header(2));
}

TEST(RecursiveComponents, SelfRecursionFig3Ex2) {
  // Fig. 3(f/g): M -> D -> C, M -> B, B -> B (self), B -> C.
  // Functions: M=0, B=1, C=2, D=3.
  CallGraph cg;
  cg.graph.add_edge(0, 3);
  cg.graph.add_edge(3, 2);
  cg.graph.add_edge(0, 1);
  cg.graph.add_edge(1, 1);
  cg.graph.add_edge(1, 2);
  RecursiveComponentSet rcs(cg, {0});
  ASSERT_EQ(rcs.components().size(), 1u);
  const RecursiveComponent& rc = rcs.components()[0];
  EXPECT_EQ(rc.functions, (std::set<int>{1}));
  EXPECT_EQ(rc.entries, (std::set<int>{1}));
  EXPECT_EQ(rc.headers, (std::set<int>{1}));
  // C is called both from inside and outside the component but is not part
  // of it (matches the paper's discussion of Ex. 2).
  EXPECT_EQ(rcs.component_of(2), -1);
}

TEST(RecursiveComponents, NoRecursionNoComponents) {
  CallGraph cg;
  cg.graph.add_edge(0, 1);
  cg.graph.add_edge(0, 2);
  cg.graph.add_edge(1, 2);
  RecursiveComponentSet rcs(cg, {0});
  EXPECT_TRUE(rcs.components().empty());
  EXPECT_FALSE(rcs.is_header(1));
  EXPECT_FALSE(rcs.is_entry(1));
}

TEST(RecursiveComponents, MutualRecursionPair) {
  // M -> A <-> B: one component {A, B}, entry A, single header breaks it.
  CallGraph cg;
  cg.graph.add_edge(0, 1);
  cg.graph.add_edge(1, 2);
  cg.graph.add_edge(2, 1);
  RecursiveComponentSet rcs(cg, {0});
  ASSERT_EQ(rcs.components().size(), 1u);
  const RecursiveComponent& rc = rcs.components()[0];
  EXPECT_EQ(rc.functions, (std::set<int>{1, 2}));
  EXPECT_EQ(rc.entries, (std::set<int>{1}));
  EXPECT_EQ(rc.headers, (std::set<int>{1}));
}

TEST(RecursiveComponents, TwoIndependentComponents) {
  // M -> A (self), M -> B (self).
  CallGraph cg;
  cg.graph.add_edge(0, 1);
  cg.graph.add_edge(1, 1);
  cg.graph.add_edge(0, 2);
  cg.graph.add_edge(2, 2);
  RecursiveComponentSet rcs(cg, {0});
  EXPECT_EQ(rcs.components().size(), 2u);
  EXPECT_NE(rcs.component_of(1), rcs.component_of(2));
}

TEST(RecursiveComponents, RootItselfRecursive) {
  // main calls itself: entry via the program root.
  CallGraph cg;
  cg.graph.add_edge(0, 0);
  RecursiveComponentSet rcs(cg, {0});
  ASSERT_EQ(rcs.components().size(), 1u);
  EXPECT_EQ(rcs.components()[0].entries, (std::set<int>{0}));
  EXPECT_EQ(rcs.components()[0].headers, (std::set<int>{0}));
}

TEST(RecursiveComponents, StrRendering) {
  CallGraph cg;
  cg.graph.add_edge(0, 1);
  cg.graph.add_edge(1, 1);
  RecursiveComponentSet rcs(cg, {0});
  std::string s = rcs.str();
  EXPECT_NE(s.find("component 0"), std::string::npos);
  EXPECT_NE(s.find("headers={1}"), std::string::npos);
}

}  // namespace
}  // namespace pp::cfg
