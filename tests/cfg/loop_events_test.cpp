#include "cfg/loop_events.hpp"

#include <gtest/gtest.h>

namespace pp::cfg {
namespace {

using Kind = LoopEvent::Kind;

// Convenience: build a ControlStructure from explicit CFGs / CG.
struct Fixture {
  std::map<int, FunctionCfg> cfgs;
  CallGraph cg;
  std::vector<int> roots;

  ControlStructure make() const {
    ControlStructure cs;
    for (const auto& [f, cfg] : cfgs) cs.forests.emplace(f, LoopForest(cfg));
    cs.rcs = RecursiveComponentSet(cg, roots);
    return cs;
  }
};

std::vector<Kind> kinds(const std::vector<LoopEvent>& evs) {
  std::vector<Kind> out;
  out.reserve(evs.size());
  for (const auto& e : evs) out.push_back(e.kind);
  return out;
}

TEST(LoopEvents, SimpleLoopEnterIterateExit) {
  // Function 0: 0 -> 1 (header) -> 2 -> 1, 1 -> 3.
  Fixture fx;
  FunctionCfg cfg;
  cfg.func = 0;
  cfg.blocks.add_edge(0, 1);
  cfg.blocks.add_edge(1, 2);
  cfg.blocks.add_edge(2, 1);
  cfg.blocks.add_edge(1, 3);
  fx.cfgs[0] = cfg;
  fx.roots = {0};
  ControlStructure cs = fx.make();

  std::vector<LoopEvent> evs;
  LoopEventMachine lem(cs, [&](const LoopEvent& e) { evs.push_back(e); });
  // Trace: 0, 1, 2, 1, 2, 1, 3  (two iterations then exit).
  for (int b : {0, 1, 2, 1, 2, 1, 3}) lem.on_jump(0, b);

  EXPECT_EQ(kinds(evs),
            (std::vector<Kind>{
                Kind::kBlock,                 // N(0)
                Kind::kEnter, Kind::kBlock,   // E(L,1) N(1)
                Kind::kBlock,                 // N(2)
                Kind::kIterate, Kind::kBlock, // I(L,1) N(1)
                Kind::kBlock,                 // N(2)
                Kind::kIterate, Kind::kBlock, // I(L,1) N(1)
                Kind::kExit, Kind::kBlock,    // X(L,3) N(3)
            }));
  EXPECT_EQ(lem.live_depth(), 0u);
}

TEST(LoopEvents, NestedLoopsExitInnerOnOuterIteration) {
  // 0 -> 1(outer hdr) -> 2(inner hdr) -> 2, 2 -> 1, 1 -> 3.
  Fixture fx;
  FunctionCfg cfg;
  cfg.func = 0;
  cfg.blocks.add_edge(0, 1);
  cfg.blocks.add_edge(1, 2);
  cfg.blocks.add_edge(2, 2);
  cfg.blocks.add_edge(2, 1);
  cfg.blocks.add_edge(1, 3);
  fx.cfgs[0] = cfg;
  fx.roots = {0};
  ControlStructure cs = fx.make();

  std::vector<LoopEvent> evs;
  LoopEventMachine lem(cs, [&](const LoopEvent& e) { evs.push_back(e); });
  // 0, 1, 2, 2, 1, 2, 3 : enter outer, enter inner, iterate inner,
  // back to outer header (exits inner, iterates outer), inner again, exit.
  for (int b : {0, 1, 2, 2, 1, 2, 3}) lem.on_jump(0, b);

  EXPECT_EQ(kinds(evs),
            (std::vector<Kind>{
                Kind::kBlock,
                Kind::kEnter, Kind::kBlock,    // outer
                Kind::kEnter, Kind::kBlock,    // inner
                Kind::kIterate, Kind::kBlock,  // inner iterates
                Kind::kExit,                   // inner exits (jump to 1)
                Kind::kIterate, Kind::kBlock,  // outer iterates
                Kind::kEnter, Kind::kBlock,    // inner re-entered
                Kind::kExit, Kind::kExit,      // both exit (jump to 3)
                Kind::kBlock,
            }));
}

TEST(LoopEvents, InterproceduralLoopsStayLiveAcrossCalls) {
  // Fig. 3 Ex. 1 shape: A's loop L1 (blocks 1,2) calls B; B has its own
  // loop L2. A = function 0, B = function 1.
  Fixture fx;
  FunctionCfg a;
  a.func = 0;
  a.blocks.add_edge(0, 1);
  a.blocks.add_edge(1, 2);
  a.blocks.add_edge(2, 1);
  a.blocks.add_edge(1, 3);
  fx.cfgs[0] = a;
  FunctionCfg bcfg;
  bcfg.func = 1;
  bcfg.blocks.add_edge(0, 1);
  bcfg.blocks.add_edge(1, 1);
  bcfg.blocks.add_edge(1, 2);
  fx.cfgs[1] = bcfg;
  fx.cg.graph.add_edge(0, 1);
  fx.roots = {0};
  ControlStructure cs = fx.make();

  std::vector<LoopEvent> evs;
  LoopEventMachine lem(cs, [&](const LoopEvent& e) { evs.push_back(e); });

  lem.on_jump(0, 0);      // N(A0)
  lem.on_jump(0, 1);      // E(L1) N(A1)
  lem.on_call(0, 1, 0);   // C(B, B0)
  EXPECT_EQ(lem.live_depth(), 1u);  // A's loop still live during the call
  lem.on_jump(1, 1);      // E(L2) N(B1)
  lem.on_jump(1, 1);      // I(L2) N(B1)
  EXPECT_EQ(lem.live_depth(), 2u);
  lem.on_jump(1, 2);      // X(L2) N(B2)
  lem.on_return(1, 0, 1); // R back into A block 1 — but block 1 is a
                          // header reached by return, not jump: no event.
  EXPECT_EQ(lem.live_depth(), 1u);
  lem.on_jump(0, 2);      // N(A2)
  lem.on_jump(0, 1);      // I(L1) N(A1): A's loop iterates
  lem.on_jump(0, 3);      // X(L1) N(A3)

  EXPECT_EQ(kinds(evs), (std::vector<Kind>{
                            Kind::kBlock,                  // A0
                            Kind::kEnter, Kind::kBlock,    // E(L1) A1
                            Kind::kCall,                   // C -> B
                            Kind::kEnter, Kind::kBlock,    // E(L2) B1
                            Kind::kIterate, Kind::kBlock,  // I(L2) B1
                            Kind::kExit, Kind::kBlock,     // X(L2) B2
                            Kind::kRet,                    // R -> A1
                            Kind::kBlock,                  // A2
                            Kind::kIterate, Kind::kBlock,  // I(L1) A1
                            Kind::kExit, Kind::kBlock,     // X(L1) A3
                        }));
  EXPECT_EQ(lem.live_depth(), 0u);
}

TEST(LoopEvents, CalleeLoopExitedOnReturnIfStillLive) {
  // A function returning from inside its loop: return must exit it.
  Fixture fx;
  FunctionCfg callee;
  callee.func = 1;
  callee.blocks.add_edge(0, 1);
  callee.blocks.add_edge(1, 1);
  callee.blocks.add_edge(1, 2);  // block 2 returns from inside... simulate
  fx.cfgs[1] = callee;
  FunctionCfg caller;
  caller.func = 0;
  caller.blocks.add_node(0);
  fx.cfgs[0] = caller;
  fx.cg.graph.add_edge(0, 1);
  fx.roots = {0};
  ControlStructure cs = fx.make();

  std::vector<LoopEvent> evs;
  LoopEventMachine lem(cs, [&](const LoopEvent& e) { evs.push_back(e); });
  lem.on_jump(0, 0);
  lem.on_call(0, 1, 0);
  lem.on_jump(1, 1);           // E(L)
  EXPECT_EQ(lem.live_depth(), 1u);
  lem.on_return(1, 0, 0);      // return with the loop still live
  EXPECT_EQ(lem.live_depth(), 0u);
  ASSERT_GE(evs.size(), 2u);
  EXPECT_EQ(evs[evs.size() - 2].kind, Kind::kExit);
  EXPECT_EQ(evs.back().kind, Kind::kRet);
}

TEST(LoopEvents, RecursionFig3Ex2EventSequence) {
  // Fig. 3 Ex. 2: M=0 calls B=1; B recursively calls itself twice from its
  // body; the recursive-component iteration counter follows
  // Ec, Ic, Ic, Ir, Ir, Xr.
  Fixture fx;
  FunctionCfg mcfg;
  mcfg.func = 0;
  mcfg.blocks.add_node(0);
  fx.cfgs[0] = mcfg;
  FunctionCfg bcfg;
  bcfg.func = 1;
  bcfg.blocks.add_edge(0, 1);
  fx.cfgs[1] = bcfg;
  fx.cg.graph.add_edge(0, 1);
  fx.cg.graph.add_edge(1, 1);
  fx.roots = {0};
  ControlStructure cs = fx.make();

  std::vector<LoopEvent> evs;
  LoopEventMachine lem(cs, [&](const LoopEvent& e) { evs.push_back(e); });

  lem.on_jump(0, 0);       // N(M0)
  lem.on_call(0, 1, 0);    // Ec: enter recursive loop
  lem.on_jump(1, 1);       // N(B1)
  lem.on_call(1, 1, 0);    // Ic: first recursive call
  lem.on_jump(1, 1);       // N(B1)
  lem.on_call(1, 1, 0);    // Ic: second recursive call (depth 3)
  lem.on_jump(1, 1);       // N(B1)
  lem.on_return(1, 1, 1);  // Ir
  lem.on_return(1, 1, 1);  // Ir
  lem.on_return(1, 0, 0);  // Xr: original call unstacked

  EXPECT_EQ(kinds(evs), (std::vector<Kind>{
                            Kind::kBlock,
                            Kind::kEnterRec, Kind::kBlock,
                            Kind::kIterateRecCall, Kind::kBlock,
                            Kind::kIterateRecCall, Kind::kBlock,
                            Kind::kIterateRecRet,
                            Kind::kIterateRecRet,
                            Kind::kExitRec,
                        }));
  EXPECT_EQ(lem.live_depth(), 0u);
}

TEST(LoopEvents, RecursiveIterationExitsNestedCfgLoops) {
  // A CFG loop inside the recursive function must be exited when the
  // recursion iterates (call to the header function).
  Fixture fx;
  FunctionCfg mcfg;
  mcfg.func = 0;
  mcfg.blocks.add_node(0);
  fx.cfgs[0] = mcfg;
  FunctionCfg bcfg;
  bcfg.func = 1;
  bcfg.blocks.add_edge(0, 1);
  bcfg.blocks.add_edge(1, 1);  // CFG loop at block 1
  bcfg.blocks.add_edge(1, 2);
  fx.cfgs[1] = bcfg;
  fx.cg.graph.add_edge(0, 1);
  fx.cg.graph.add_edge(1, 1);
  fx.roots = {0};
  ControlStructure cs = fx.make();

  std::vector<LoopEvent> evs;
  LoopEventMachine lem(cs, [&](const LoopEvent& e) { evs.push_back(e); });
  lem.on_jump(0, 0);
  lem.on_call(0, 1, 0);   // Ec
  lem.on_jump(1, 1);      // E(CFG loop), N
  EXPECT_EQ(lem.live_depth(), 2u);
  lem.on_call(1, 1, 0);   // Ic: must first X the CFG loop
  EXPECT_EQ(lem.live_depth(), 1u);
  std::vector<Kind> ks = kinds(evs);
  ASSERT_GE(ks.size(), 2u);
  EXPECT_EQ(ks[ks.size() - 2], Kind::kExit);
  EXPECT_EQ(ks.back(), Kind::kIterateRecCall);
}

TEST(LoopEvents, NonHeaderCallInsideComponentIsPlainCall) {
  // Component {1}, function 2 is called from 1 but is outside the
  // component: plain C event, recursion stays live.
  Fixture fx;
  FunctionCfg f0, f1, f2;
  f0.func = 0; f0.blocks.add_node(0);
  f1.func = 1; f1.blocks.add_node(0);
  f2.func = 2; f2.blocks.add_node(0);
  fx.cfgs[0] = f0;
  fx.cfgs[1] = f1;
  fx.cfgs[2] = f2;
  fx.cg.graph.add_edge(0, 1);
  fx.cg.graph.add_edge(1, 1);
  fx.cg.graph.add_edge(1, 2);
  fx.roots = {0};
  ControlStructure cs = fx.make();

  std::vector<LoopEvent> evs;
  LoopEventMachine lem(cs, [&](const LoopEvent& e) { evs.push_back(e); });
  lem.on_jump(0, 0);
  lem.on_call(0, 1, 0);   // Ec
  lem.on_call(1, 2, 0);   // C (outside component)
  EXPECT_EQ(evs.back().kind, Kind::kCall);
  lem.on_return(2, 1, 0); // R
  EXPECT_EQ(evs.back().kind, Kind::kRet);
  EXPECT_EQ(lem.live_depth(), 1u);  // recursion still live
}

TEST(LoopEvents, EventStrRendering) {
  LoopEvent e{Kind::kEnter, 0, 1, 2, -1};
  EXPECT_EQ(e.str(), "E(L2,bb1)");
  LoopEvent r{Kind::kEnterRec, 1, 0, -1, 3};
  EXPECT_EQ(r.str(), "Ec(RC3,bb0)");
}

}  // namespace
}  // namespace pp::cfg
