#include "cfg/dynamic_cfg.hpp"

#include <gtest/gtest.h>

#include "cfg/loop_events.hpp"
#include "cfg/loop_forest.hpp"
#include "cfg/recursive_components.hpp"
#include "ir/builder.hpp"

namespace pp::cfg {
namespace {

using ir::Builder;
using ir::Function;
using ir::Module;
using ir::Op;
using ir::Reg;

TEST(DynamicCfg, SingleLoopProgram) {
  Module m;
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block("entry"));
  Reg n = b.const_(3);
  b.counted_loop(0, n, 1, [&](Reg) {});
  b.ret();

  vm::Machine machine(m);
  DynamicCfgBuilder dyn;
  machine.set_observer(&dyn);
  machine.run("main");

  ASSERT_TRUE(dyn.has_cfg(f.id));
  const FunctionCfg& cfg = dyn.cfg(f.id);
  // entry -> header -> body -> header -> exit: 4 blocks, with the
  // back-edge body -> header observed.
  EXPECT_EQ(cfg.blocks.num_nodes(), 4u);
  EXPECT_TRUE(cfg.blocks.has_edge(0, 1));  // entry -> header
  EXPECT_TRUE(cfg.blocks.has_edge(1, 2));  // header -> body
  EXPECT_TRUE(cfg.blocks.has_edge(2, 1));  // body -> header (back-edge)
  EXPECT_TRUE(cfg.blocks.has_edge(1, 3));  // header -> exit

  LoopForest lf(cfg);
  ASSERT_EQ(lf.loops().size(), 1u);
  EXPECT_EQ(lf.loop(0).header, 1);
  EXPECT_EQ(lf.loop(0).blocks, (std::set<int>{1, 2}));
}

TEST(DynamicCfg, OnlyExecutedPathsAppear) {
  // if (false) then-block else else-block: the then-block never executes
  // and must not appear in the dynamic CFG.
  Module m;
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  int entry = b.make_block();
  int then_bb = b.make_block();
  int else_bb = b.make_block();
  b.set_block(entry);
  Reg zero = b.const_(0);
  b.br_cond(zero, then_bb, else_bb);
  b.set_block(then_bb);
  b.ret();
  b.set_block(else_bb);
  b.ret();

  vm::Machine machine(m);
  DynamicCfgBuilder dyn;
  machine.set_observer(&dyn);
  machine.run("main");
  const FunctionCfg& cfg = dyn.cfg(f.id);
  EXPECT_TRUE(cfg.blocks.has_node(else_bb));
  EXPECT_FALSE(cfg.blocks.has_node(then_bb));
}

TEST(DynamicCfg, CallGraphWithSites) {
  Module m;
  Function& g = m.add_function("g", 0);
  {
    Builder b(m, g);
    b.set_block(b.make_block());
    b.ret();
  }
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  b.call(g, {});
  b.call(g, {});
  b.ret();

  vm::Machine machine(m);
  DynamicCfgBuilder dyn;
  machine.set_observer(&dyn);
  machine.run("main");

  EXPECT_TRUE(dyn.call_graph().graph.has_edge(f.id, g.id));
  auto it = dyn.call_graph().sites.find({f.id, g.id});
  ASSERT_NE(it, dyn.call_graph().sites.end());
  EXPECT_EQ(it->second.size(), 2u);  // two distinct call sites
  EXPECT_TRUE(dyn.has_cfg(g.id));
}

TEST(DynamicCfg, RecursiveProgramYieldsComponent) {
  Module m;
  Function& rec = m.add_function("rec", 1);
  {
    Builder b(m, rec);
    int entry = b.make_block();
    int base = b.make_block();
    int again = b.make_block();
    b.set_block(entry);
    Reg zero = b.const_(0);
    Reg done = b.cmp(Op::kCmpLe, 0, zero);
    b.br_cond(done, base, again);
    b.set_block(base);
    b.ret();
    b.set_block(again);
    Reg nm1 = b.addi(0, -1);
    b.call(rec, {nm1});
    b.ret();
  }
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg n = b.const_(3);
  b.call(rec, {n});
  b.ret();

  vm::Machine machine(m);
  DynamicCfgBuilder dyn;
  machine.set_observer(&dyn);
  machine.run("main");

  RecursiveComponentSet rcs(dyn.call_graph(), {f.id});
  ASSERT_EQ(rcs.components().size(), 1u);
  EXPECT_EQ(rcs.components()[0].functions, (std::set<int>{rec.id}));
  EXPECT_EQ(rcs.components()[0].headers, (std::set<int>{rec.id}));
}

TEST(DynamicCfg, ControlStructureBuild) {
  Module m;
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg n = b.const_(2);
  b.counted_loop(0, n, 1, [&](Reg) {});
  b.ret();
  vm::Machine machine(m);
  DynamicCfgBuilder dyn;
  machine.set_observer(&dyn);
  machine.run("main");
  ControlStructure cs = ControlStructure::build(dyn, {f.id});
  ASSERT_EQ(cs.forests.count(f.id), 1u);
  EXPECT_EQ(cs.forests.at(f.id).loops().size(), 1u);
  EXPECT_TRUE(cs.rcs.components().empty());
}

}  // namespace
}  // namespace pp::cfg
