#include "cfg/graph.hpp"

#include <gtest/gtest.h>

namespace pp::cfg {
namespace {

TEST(Digraph, NodesAndEdges) {
  Digraph g;
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_node(7);
  EXPECT_TRUE(g.has_node(1));
  EXPECT_TRUE(g.has_node(3));  // added implicitly as edge target
  EXPECT_TRUE(g.has_node(7));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(2, 1));
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.succs(2).size(), 1u);
  EXPECT_TRUE(g.succs(99).empty());
}

TEST(Scc, LinearChainGivesSingletons) {
  Digraph g;
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  auto sccs = strongly_connected_components(g, g.nodes());
  EXPECT_EQ(sccs.size(), 3u);
  for (const auto& c : sccs) EXPECT_EQ(c.size(), 1u);
}

TEST(Scc, SimpleCycle) {
  Digraph g;
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  auto sccs = strongly_connected_components(g, g.nodes());
  ASSERT_EQ(sccs.size(), 1u);
  EXPECT_EQ(sccs[0], (std::vector<int>{0, 1, 2}));
}

TEST(Scc, TwoComponentsReverseTopoOrder) {
  // 0 <-> 1 -> 2 <-> 3 : SCC {2,3} returned before SCC {0,1}.
  Digraph g;
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 2);
  auto sccs = strongly_connected_components(g, g.nodes());
  ASSERT_EQ(sccs.size(), 2u);
  EXPECT_EQ(sccs[0], (std::vector<int>{2, 3}));
  EXPECT_EQ(sccs[1], (std::vector<int>{0, 1}));
}

TEST(Scc, RespectsRemovedEdges) {
  Digraph g;
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  auto sccs = strongly_connected_components(g, g.nodes(), {{1, 0}});
  EXPECT_EQ(sccs.size(), 2u);
}

TEST(Scc, RestrictedNodeSet) {
  Digraph g;
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 1);
  auto sccs = strongly_connected_components(g, {1, 2});
  ASSERT_EQ(sccs.size(), 1u);
  EXPECT_EQ(sccs[0], (std::vector<int>{1, 2}));
}

TEST(Scc, SelfLoop) {
  Digraph g;
  g.add_edge(5, 5);
  auto sccs = strongly_connected_components(g, g.nodes());
  ASSERT_EQ(sccs.size(), 1u);
  EXPECT_TRUE(component_has_cycle(g, sccs[0], {}));
  EXPECT_FALSE(component_has_cycle(g, sccs[0], {{5, 5}}));
}

TEST(Scc, SingletonWithoutSelfLoopHasNoCycle) {
  Digraph g;
  g.add_node(3);
  auto sccs = strongly_connected_components(g, g.nodes());
  ASSERT_EQ(sccs.size(), 1u);
  EXPECT_FALSE(component_has_cycle(g, sccs[0], {}));
}

TEST(Scc, DeepChainDoesNotOverflowStack) {
  // 50k-node chain with a final cycle back to 0: one big SCC.
  Digraph g;
  const int n = 50000;
  for (int i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  g.add_edge(n - 1, 0);
  auto sccs = strongly_connected_components(g, g.nodes());
  ASSERT_EQ(sccs.size(), 1u);
  EXPECT_EQ(sccs[0].size(), static_cast<std::size_t>(n));
}

}  // namespace
}  // namespace pp::cfg
