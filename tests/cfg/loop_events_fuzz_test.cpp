// Fuzzing Algorithms 1-3 end-to-end over randomly generated structured
// programs (random nest depths, random call splits, random recursion):
// well-formedness invariants of the loop-event stream —
//  * enter/exit events balance, the live stack drains to zero,
//  * the dynamic IIV applies every event without error and ends flat,
//  * iterate counts equal total iterations minus entries.
#include <gtest/gtest.h>

#include "iiv/diiv.hpp"
#include "ir/builder.hpp"

namespace pp::cfg {
namespace {

using ir::Builder;
using ir::Function;
using ir::Module;
using ir::Op;
using ir::Reg;

struct Rng {
  u64 state;
  explicit Rng(u64 seed) : state(seed * 0x9e3779b97f4a7c15ull + 7) {}
  i64 range(i64 lo, i64 hi) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return lo + static_cast<i64>((state >> 33) % static_cast<u64>(hi - lo + 1));
  }
};

// A random structured program: a chain of nests; some nest levels are
// extracted into callees; optionally a self-recursive walker at the end.
Module random_program(Rng& rng, bool with_recursion) {
  Module m;
  i64 g = m.add_global("buf", 4096);

  // Optional callee holding an inner loop.
  Function* callee = nullptr;
  if (rng.range(0, 1) == 1) {
    callee = &m.add_function("inner", 1);
    Builder b(m, *callee);
    b.set_block(b.make_block());
    Reg base = b.const_(g);
    Reg n = b.const_(rng.range(2, 5));
    b.counted_loop(0, n, 1, [&](Reg j) {
      Reg idx = b.add(0, j);
      Reg off = b.muli(idx, 8);
      Reg p = b.add(base, off);
      b.store(p, idx);
    });
    b.ret();
  }

  Function* rec = nullptr;
  if (with_recursion) {
    rec = &m.add_function("rec", 1);
    Builder b(m, *rec);
    int entry = b.make_block();
    int base_bb = b.make_block();
    int step = b.make_block();
    b.set_block(entry);
    Reg lim = b.const_(rng.range(3, 8));
    Reg done = b.cmp(Op::kCmpGe, 0, lim);
    b.br_cond(done, base_bb, step);
    b.set_block(base_bb);
    b.ret();
    b.set_block(step);
    Reg nxt = b.addi(0, 1);
    b.call(*rec, {nxt});
    b.ret();
  }

  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg base = b.const_(g);
  int nests = static_cast<int>(rng.range(1, 3));
  for (int k = 0; k < nests; ++k) {
    Reg n = b.const_(rng.range(2, 5));
    int depth = static_cast<int>(rng.range(1, 2));
    b.counted_loop(0, n, 1, [&](Reg i) {
      if (callee && rng.range(0, 1) == 1) {
        b.call(*callee, {i});
      } else if (depth == 2) {
        Reg n2 = b.const_(rng.range(2, 4));
        b.counted_loop(0, n2, 1, [&](Reg j) {
          Reg idx = b.add(i, j);
          Reg off = b.muli(idx, 8);
          Reg p = b.add(base, off);
          b.store(p, idx);
        });
      } else {
        Reg off = b.muli(i, 8);
        Reg p = b.add(base, off);
        b.store(p, i);
      }
    });
  }
  if (rec) {
    Reg zero = b.const_(0);
    b.call(*rec, {zero});
  }
  b.ret();
  return m;
}

struct EventCounts {
  int enter = 0, exit_ = 0, iterate = 0;
  int enter_rec = 0, exit_rec = 0, it_rec = 0;
};

class LoopEventFuzz : public ::testing::TestWithParam<int> {};

TEST_P(LoopEventFuzz, StreamWellFormed) {
  Rng rng(static_cast<u64>(GetParam()));
  bool with_rec = GetParam() % 3 == 0;
  Module m = random_program(rng, with_rec);
  ASSERT_NO_THROW(ir::verify(m));

  // Stage 1.
  ControlStructure cs;
  {
    vm::Machine machine(m);
    DynamicCfgBuilder dyn;
    machine.set_observer(&dyn);
    machine.run("main");
    cs = ControlStructure::build(dyn, {m.find_function("main")->id});
  }

  // Stage 2 raw replay through the loop-event machine + Algorithm 3.
  EventCounts counts;
  iiv::DynamicIiv diiv;
  LoopEventMachine lem(cs, [&](const LoopEvent& ev) {
    ASSERT_NO_THROW(diiv.apply(ev));
    using K = LoopEvent::Kind;
    switch (ev.kind) {
      case K::kEnter: ++counts.enter; break;
      case K::kExit: ++counts.exit_; break;
      case K::kIterate: ++counts.iterate; break;
      case K::kEnterRec: ++counts.enter_rec; break;
      case K::kExitRec: ++counts.exit_rec; break;
      case K::kIterateRecCall:
      case K::kIterateRecRet: ++counts.it_rec; break;
      default: break;
    }
  });
  struct Replayer : vm::Observer {
    LoopEventMachine* lem;
    void on_local_jump(int func, int bb) override { lem->on_jump(func, bb); }
    void on_call(vm::CodeRef site, int callee) override {
      lem->on_call(site.func, callee, 0);
    }
    void on_return(int callee, vm::CodeRef into) override {
      lem->on_return(callee, into.func, into.block);
    }
  } replay;
  replay.lem = &lem;
  {
    vm::Machine machine(m);
    machine.set_observer(&replay);
    machine.run("main");
  }

  // Invariants.
  EXPECT_EQ(counts.enter, counts.exit_) << "unbalanced CFG loop events";
  EXPECT_EQ(counts.enter_rec, counts.exit_rec)
      << "unbalanced recursive loop events";
  EXPECT_EQ(lem.live_depth(), 0u) << "live loops leaked";
  EXPECT_EQ(diiv.depth(), 0u) << "IIV did not return to flat";
  if (with_rec) {
    EXPECT_GT(counts.enter_rec + counts.it_rec, 0);
  }
  EXPECT_GT(counts.enter, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LoopEventFuzz, ::testing::Range(0, 50));

}  // namespace
}  // namespace pp::cfg
