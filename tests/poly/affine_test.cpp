#include "poly/affine.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace pp::poly {
namespace {

TEST(AffineExpr, EvalAndOps) {
  // 2x - y + 3
  AffineExpr e({2, -1}, 3);
  std::vector<i64> p = {4, 1};
  EXPECT_EQ(e.eval(p), 10);
  AffineExpr f = e + AffineExpr({1, 1}, -3);  // 3x + 0y + 0
  EXPECT_EQ(f.eval(p), 12);
  EXPECT_EQ((e * 2).eval(p), 20);
  EXPECT_EQ((-e).eval(p), -10);
  EXPECT_EQ((e + 5).eval(p), 15);
  EXPECT_EQ((e - 5).eval(p), 5);
}

TEST(AffineExpr, Factories) {
  AffineExpr v = AffineExpr::var(3, 1);
  std::vector<i64> p = {7, 8, 9};
  EXPECT_EQ(v.eval(p), 8);
  AffineExpr k = AffineExpr::constant(3, 42);
  EXPECT_EQ(k.eval(p), 42);
  EXPECT_TRUE(k.is_constant());
  EXPECT_FALSE(v.is_constant());
}

TEST(AffineExpr, Str) {
  EXPECT_EQ(AffineExpr({2, -1}, 3).str(), "2*x0 - x1 + 3");
  EXPECT_EQ(AffineExpr({0, 0}, -7).str(), "-7");
  EXPECT_EQ(AffineExpr({1, 0}, 0).str(), "x0");
  EXPECT_EQ(AffineExpr({-1, 0}, 0).str(), "-x0");
  std::vector<std::string> names = {"i", "j"};
  EXPECT_EQ(AffineExpr({1, 1}, -1).str(names), "i + j - 1");
}

TEST(AffineExpr, StrIsDefinedAtInt64Min) {
  // -INT64_MIN is UB; str() must print via the unsigned magnitude instead
  // of negating. Each placement (leading coeff, trailing coeff, constant)
  // exercises a different branch of the printer.
  const i64 min = std::numeric_limits<i64>::min();
  EXPECT_EQ(AffineExpr({1, min}, 0).str(), "x0 - 9223372036854775808*x1");
  EXPECT_EQ(AffineExpr({1}, min).str(), "x0 - 9223372036854775808");
  EXPECT_EQ(AffineExpr({min}, 0).str(), "-9223372036854775808*x0");
  EXPECT_EQ(AffineExpr({0}, min).str(), "-9223372036854775808");
  // Sanity on the magnitude path for ordinary negatives.
  EXPECT_EQ(AffineExpr({1, -3}, -4).str(), "x0 - 3*x1 - 4");
}

TEST(AffineExpr, DimensionMismatchThrows) {
  AffineExpr a(2), b(3);
  EXPECT_THROW(a + b, Error);
  std::vector<i64> p = {1};
  EXPECT_THROW(a.eval(p), Error);
}

TEST(Constraint, Holds) {
  // x - y >= 0
  Constraint ge = Constraint::ge0(AffineExpr({1, -1}, 0));
  std::vector<i64> in = {3, 2}, border = {2, 2}, out = {1, 2};
  EXPECT_TRUE(ge.holds(in));
  EXPECT_TRUE(ge.holds(border));
  EXPECT_FALSE(ge.holds(out));
  Constraint eq = Constraint::eq0(AffineExpr({1, -1}, 0));
  EXPECT_FALSE(eq.holds(in));
  EXPECT_TRUE(eq.holds(border));
}

TEST(AffineMap, IdentityAndEval) {
  AffineMap id = AffineMap::identity(2);
  std::vector<i64> p = {5, -3};
  auto out = id.eval(p);
  EXPECT_EQ(out[0], 5);
  EXPECT_EQ(out[1], -3);
  // (i + j, i - 1)
  AffineMap m(2, {AffineExpr({1, 1}, 0), AffineExpr({1, 0}, -1)});
  out = m.eval(p);
  EXPECT_EQ(out[0], 2);
  EXPECT_EQ(out[1], 4);
  EXPECT_EQ(m.str(), "(x0 + x1, x0 - 1)");
}

TEST(AffineMap, OutputDimMismatchThrows) {
  EXPECT_THROW(AffineMap(2, {AffineExpr(3)}), Error);
}

}  // namespace
}  // namespace pp::poly
