#include "poly/simplex.hpp"

#include <gtest/gtest.h>

namespace pp::poly {
namespace {

// min x + y  s.t.  x >= 1, y >= 2  ->  3 at (1,2)
TEST(Simplex, SimpleBoundedMin) {
  std::vector<LpConstraint> cs = {
      {{Rat(1), Rat(0)}, Rat(1), false},
      {{Rat(0), Rat(1)}, Rat(2), false},
  };
  LpResult r = lp_minimize(2, cs, {Rat(1), Rat(1)});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_EQ(r.objective, Rat(3));
  EXPECT_EQ(r.point[0], Rat(1));
  EXPECT_EQ(r.point[1], Rat(2));
}

// Free variables can take negative values: min x s.t. x >= -5 -> -5.
TEST(Simplex, NegativeValues) {
  std::vector<LpConstraint> cs = {{{Rat(1)}, Rat(-5), false}};
  LpResult r = lp_minimize(1, cs, {Rat(1)});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_EQ(r.objective, Rat(-5));
}

TEST(Simplex, Unbounded) {
  std::vector<LpConstraint> cs = {{{Rat(1)}, Rat(0), false}};  // x >= 0
  LpResult r = lp_minimize(1, cs, {Rat(-1)});                  // min -x
  EXPECT_EQ(r.status, LpStatus::kUnbounded);
}

TEST(Simplex, Infeasible) {
  std::vector<LpConstraint> cs = {
      {{Rat(1)}, Rat(3), false},   // x >= 3
      {{Rat(-1)}, Rat(-1), false}, // -x >= -1, i.e. x <= 1
  };
  LpResult r = lp_minimize(1, cs, {Rat(1)});
  EXPECT_EQ(r.status, LpStatus::kInfeasible);
}

TEST(Simplex, EqualityConstraints) {
  // min x + y  s.t.  x + y == 4, x >= 1, y >= 1  ->  4.
  std::vector<LpConstraint> cs = {
      {{Rat(1), Rat(1)}, Rat(4), true},
      {{Rat(1), Rat(0)}, Rat(1), false},
      {{Rat(0), Rat(1)}, Rat(1), false},
  };
  LpResult r = lp_minimize(2, cs, {Rat(1), Rat(1)});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_EQ(r.objective, Rat(4));
  EXPECT_EQ(r.point[0] + r.point[1], Rat(4));
}

TEST(Simplex, RationalOptimum) {
  // min y s.t. 2y >= 1 -> 1/2.
  std::vector<LpConstraint> cs = {{{Rat(2)}, Rat(1), false}};
  LpResult r = lp_minimize(1, cs, {Rat(1)});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_EQ(r.objective, Rat(1, 2));
}

TEST(Simplex, MaximizeWrapper) {
  // max x s.t. x <= 7 (written -x >= -7) -> 7.
  std::vector<LpConstraint> cs = {{{Rat(-1)}, Rat(-7), false}};
  LpResult r = lp_maximize(1, cs, {Rat(1)});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_EQ(r.objective, Rat(7));
}

TEST(Simplex, TriangularDomainMinOfDifference) {
  // Triangle 0 <= j <= i <= 10. min (i - j) = 0, max (i - j) = 10.
  std::vector<LpConstraint> cs = {
      {{Rat(0), Rat(1)}, Rat(0), false},          // j >= 0
      {{Rat(1), Rat(-1)}, Rat(0), false},         // i - j >= 0
      {{Rat(-1), Rat(0)}, Rat(-10), false},       // i <= 10
  };
  LpResult lo = lp_minimize(2, cs, {Rat(1), Rat(-1)});
  ASSERT_EQ(lo.status, LpStatus::kOptimal);
  EXPECT_EQ(lo.objective, Rat(0));
  LpResult hi = lp_maximize(2, cs, {Rat(1), Rat(-1)});
  ASSERT_EQ(hi.status, LpStatus::kOptimal);
  EXPECT_EQ(hi.objective, Rat(10));
}

TEST(Simplex, DegenerateRedundantRows) {
  // Duplicate + implied constraints should not break phase 1/2.
  std::vector<LpConstraint> cs = {
      {{Rat(1), Rat(0)}, Rat(2), false},
      {{Rat(1), Rat(0)}, Rat(2), false},
      {{Rat(2), Rat(0)}, Rat(4), false},
      {{Rat(0), Rat(1)}, Rat(0), false},
  };
  LpResult r = lp_minimize(2, cs, {Rat(1), Rat(1)});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_EQ(r.objective, Rat(2));
}

TEST(Simplex, EqualityOnlySystem) {
  // x == 3, y == -2; min anything gives the unique point.
  std::vector<LpConstraint> cs = {
      {{Rat(1), Rat(0)}, Rat(3), true},
      {{Rat(0), Rat(1)}, Rat(-2), true},
  };
  LpResult r = lp_minimize(2, cs, {Rat(5), Rat(7)});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_EQ(r.objective, Rat(1));
  EXPECT_EQ(r.point[0], Rat(3));
  EXPECT_EQ(r.point[1], Rat(-2));
}

// Property sweep: LP optimum over a random box must equal brute-force
// integer scan when the objective is integral and the box is integral
// (vertices of a box are integer points).
class SimplexBoxSweep : public ::testing::TestWithParam<int> {};

TEST_P(SimplexBoxSweep, MatchesBruteForceOnBoxes) {
  u64 state = static_cast<u64>(GetParam()) * 2654435761u + 17;
  auto next = [&](int lo, int hi) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return lo + static_cast<int>((state >> 33) % static_cast<u64>(hi - lo + 1));
  };
  int x_lo = next(-5, 0), x_hi = next(x_lo, x_lo + 6);
  int y_lo = next(-5, 0), y_hi = next(y_lo, y_lo + 6);
  int cx = next(-3, 3), cy = next(-3, 3);
  std::vector<LpConstraint> cs = {
      {{Rat(1), Rat(0)}, Rat(x_lo), false},
      {{Rat(-1), Rat(0)}, Rat(-x_hi), false},
      {{Rat(0), Rat(1)}, Rat(y_lo), false},
      {{Rat(0), Rat(-1)}, Rat(-y_hi), false},
  };
  LpResult r = lp_minimize(2, cs, {Rat(cx), Rat(cy)});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  Rat best;
  bool first = true;
  for (int x = x_lo; x <= x_hi; ++x) {
    for (int y = y_lo; y <= y_hi; ++y) {
      Rat v = Rat(cx) * Rat(x) + Rat(cy) * Rat(y);
      if (first || v < best) best = v;
      first = false;
    }
  }
  EXPECT_EQ(r.objective, best);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexBoxSweep, ::testing::Range(0, 60));

}  // namespace
}  // namespace pp::poly
