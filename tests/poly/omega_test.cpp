// The Omega core's contract is "never wrong": a definite verdict must be a
// theorem about the integer points. The heart of this suite is a seeded
// differential sweep (>= 200 systems) against brute-force integer-point
// enumeration on small boxes — the enumerator is ground truth, and on these
// small systems the solver must also never punt to kUnknown. The crafted
// cases pin the classic traps: gcd-refutable equalities, dark-shadow gaps
// (a rational point but no integer one), unbounded variables, and the
// mod-reduction path for equalities with no unit coefficient.
#include <vector>

#include "gtest/gtest.h"
#include "poly/omega.hpp"

namespace pp::poly {
namespace {

Feas feas(const Polyhedron& p) { return integer_feasible(p); }

// --- crafted cases -------------------------------------------------------

TEST(OmegaTest, EmptySystemIsFeasible) {
  EXPECT_EQ(feas(Polyhedron::universe(0)), Feas::kFeasible);
  EXPECT_EQ(feas(Polyhedron::universe(3)), Feas::kFeasible);
}

TEST(OmegaTest, ConstantRowsDecideDirectly) {
  Polyhedron p(2);
  p.add_ge0(AffineExpr::constant(2, 5));
  EXPECT_EQ(feas(p), Feas::kFeasible);
  p.add_ge0(AffineExpr::constant(2, -1));
  EXPECT_EQ(feas(p), Feas::kInfeasible);
}

TEST(OmegaTest, GcdRefutesEquality) {
  // 6x + 10y == 1 has no integer solution (gcd 2 does not divide 1).
  Polyhedron p(2);
  p.add_eq0(AffineExpr({6, 10}, -1));
  EXPECT_EQ(feas(p), Feas::kInfeasible);
  // 6x + 10y == 16 does (x=1, y=1).
  Polyhedron q(2);
  q.add_eq0(AffineExpr({6, 10}, -16));
  EXPECT_EQ(feas(q), Feas::kFeasible);
}

TEST(OmegaTest, ModReductionHandlesNoUnitCoefficient) {
  // 31x - 28y == 1 (gcd 1, no unit coefficient): solvable over Z.
  Polyhedron p(2);
  p.add_eq0(AffineExpr({31, -28}, -1));
  EXPECT_EQ(feas(p), Feas::kFeasible);
  // Same equality restricted to a box with no solution: 31x = 28y + 1 has
  // smallest non-negative solution x=19, y=21.
  Polyhedron q(2);
  q.add_eq0(AffineExpr({31, -28}, -1));
  q.bound_var(0, 0, 10);
  q.bound_var(1, 0, 10);
  EXPECT_EQ(feas(q), Feas::kInfeasible);
  Polyhedron r(2);
  r.add_eq0(AffineExpr({31, -28}, -1));
  r.bound_var(0, 0, 19);
  r.bound_var(1, 0, 21);
  EXPECT_EQ(feas(r), Feas::kFeasible);
}

TEST(OmegaTest, IntegerTighteningClosesRationalGaps) {
  // 7 <= 3x <= 8: rationally nonempty, no integer multiple of 3 inside.
  Polyhedron p(1);
  p.add_ge0(AffineExpr({3}, -7));
  p.add_ge0(AffineExpr({-3}, 8));
  EXPECT_EQ(feas(p), Feas::kInfeasible);
  // 5 <= 3x <= 7 contains x=2.
  Polyhedron q(1);
  q.add_ge0(AffineExpr({3}, -5));
  q.add_ge0(AffineExpr({-3}, 7));
  EXPECT_EQ(feas(q), Feas::kFeasible);
}

TEST(OmegaTest, DarkShadowGapTwoVariables) {
  // The classic inexact-projection example: 2y <= 2x + 1, 2x <= 2y + 1
  // forces |x - y| <= 1/2, so x == y over Z; combined with 3x - 3y == 1
  // style offsets the system is integer-empty while rationally fat.
  Polyhedron p(2);
  p.add_ge0(AffineExpr({2, -2}, 1));   // 2x - 2y + 1 >= 0
  p.add_ge0(AffineExpr({-2, 2}, 1));   // 2y - 2x + 1 >= 0
  p.add_ge0(AffineExpr({1, -1}, 0) * 2 - 1);  // 2x - 2y - 1 >= 0: x > y
  EXPECT_EQ(feas(p), Feas::kInfeasible);
}

TEST(OmegaTest, UnboundedDirections) {
  Polyhedron p(2);
  p.add_ge0(AffineExpr({1, 0}, -5));  // x >= 5, y free
  EXPECT_EQ(feas(p), Feas::kFeasible);
  p.add_ge0(AffineExpr({-1, 0}, 3));  // x <= 3: conflict
  EXPECT_EQ(feas(p), Feas::kInfeasible);
}

TEST(OmegaTest, LargeBoundedBoxNeedsNoEnumeration) {
  // A box with ~10^12 points: enumeration is hopeless, FM is instant.
  Polyhedron p(2);
  p.bound_var(0, 0, 1'000'000);
  p.bound_var(1, 0, 1'000'000);
  p.add_eq0(AffineExpr({1, -1}, -999'983));
  EXPECT_EQ(feas(p), Feas::kFeasible);
  p.add_ge0(AffineExpr({-1, 0}, 10));  // x <= 10 contradicts x = y + 999983
  EXPECT_EQ(feas(p), Feas::kInfeasible);
}

TEST(OmegaTest, StrideDisjointDependenceShape) {
  // a[2i] vs a[2i+1] over i,i' in [0,N]: 2i - 2i' == 1 never holds — the
  // shape the even/odd workload pair test relies on.
  Polyhedron p(2);
  p.add_eq0(AffineExpr({2, -2}, -1));
  p.bound_var(0, 0, 100);
  p.bound_var(1, 0, 100);
  EXPECT_EQ(feas(p), Feas::kInfeasible);
}

TEST(OmegaTest, EffortCapReturnsUnknownNotWrong) {
  // A tiny budget must degrade to kUnknown, never a definite verdict.
  Polyhedron p(3);
  p.bound_var(0, 0, 50);
  p.bound_var(1, 0, 50);
  p.bound_var(2, 0, 50);
  p.add_ge0(AffineExpr({3, 5, -7}, 11));
  p.add_ge0(AffineExpr({-2, 7, 3}, -5));
  OmegaOptions tight;
  tight.max_steps = 1;
  EXPECT_EQ(integer_feasible(p, tight), Feas::kUnknown);
  EXPECT_EQ(integer_feasible(p), Feas::kFeasible);
}

// --- randomized differential sweep ---------------------------------------

u64 splitmix64(u64& state) {
  u64 z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

i64 rnd_range(u64& state, i64 lo, i64 hi) {
  return lo + static_cast<i64>(splitmix64(state) %
                               static_cast<u64>(hi - lo + 1));
}

/// Ground truth by brute force over the bounding box.
bool enumerate_feasible(const Polyhedron& p,
                        const std::vector<std::pair<i64, i64>>& box) {
  std::vector<i64> pt(box.size());
  // Odometer over the box.
  for (std::size_t i = 0; i < box.size(); ++i) pt[i] = box[i].first;
  for (;;) {
    if (p.contains(pt)) return true;
    std::size_t d = 0;
    while (d < box.size() && ++pt[d] > box[d].second) {
      pt[d] = box[d].first;
      ++d;
    }
    if (d == box.size()) return false;
  }
}

TEST(OmegaDifferential, MatchesEnumerationOn240Seeds) {
  int feasible = 0, infeasible = 0;
  for (u64 seed = 1; seed <= 240; ++seed) {
    u64 state = seed;
    const std::size_t dim = 1 + splitmix64(state) % 4;  // 1..4 vars
    std::vector<std::pair<i64, i64>> box(dim);
    Polyhedron p(dim);
    for (std::size_t i = 0; i < dim; ++i) {
      i64 lo = rnd_range(state, -4, 2);
      i64 hi = lo + rnd_range(state, 0, 6);
      box[i] = {lo, hi};
      p.bound_var(i, lo, hi);
    }
    const std::size_t extra = 1 + splitmix64(state) % 3;
    for (std::size_t c = 0; c < extra; ++c) {
      std::vector<i64> coeffs(dim);
      bool nonzero = false;
      for (std::size_t i = 0; i < dim; ++i) {
        coeffs[i] = rnd_range(state, -3, 3);
        nonzero |= coeffs[i] != 0;
      }
      if (!nonzero) coeffs[0] = 1;
      AffineExpr e(std::move(coeffs), rnd_range(state, -10, 10));
      if (splitmix64(state) % 4 == 0)
        p.add_eq0(std::move(e));
      else
        p.add_ge0(std::move(e));
    }
    const bool truth = enumerate_feasible(p, box);
    const Feas verdict = integer_feasible(p);
    SCOPED_TRACE("seed=" + std::to_string(seed));
    ASSERT_NE(verdict, Feas::kUnknown) << p.str();
    EXPECT_EQ(verdict == Feas::kFeasible, truth) << p.str();
    (truth ? feasible : infeasible)++;
  }
  // The sweep must exercise both verdicts heavily to mean anything.
  EXPECT_GT(feasible, 40);
  EXPECT_GT(infeasible, 40);
}

// A second sweep without box bounds on every variable: one variable is left
// unbounded so the FM one-sided-drop and unbounded-feasibility paths get
// differential coverage too (truth: unbounded var projected by checking a
// widened range — sound here because coefficients and constants are small).
TEST(OmegaDifferential, UnboundedVariableSweep) {
  for (u64 seed = 1; seed <= 60; ++seed) {
    u64 state = seed * 77 + 5;
    const std::size_t dim = 2 + splitmix64(state) % 2;  // 2..3 vars
    std::vector<std::pair<i64, i64>> box(dim);
    Polyhedron p(dim);
    for (std::size_t i = 0; i + 1 < dim; ++i) {
      i64 lo = rnd_range(state, -3, 1);
      i64 hi = lo + rnd_range(state, 0, 4);
      box[i] = {lo, hi};
      p.bound_var(i, lo, hi);
    }
    // Last var: constrained only through shared rows; coefficients are
    // <= 3 in magnitude and constants <= 10, so any solution can be
    // shifted into [-60, 60] — enumerate that widened range as truth.
    box[dim - 1] = {-60, 60};
    const std::size_t extra = 1 + splitmix64(state) % 2;
    for (std::size_t c = 0; c < extra; ++c) {
      std::vector<i64> coeffs(dim);
      for (std::size_t i = 0; i < dim; ++i) coeffs[i] = rnd_range(state, -3, 3);
      if (coeffs[dim - 1] == 0) coeffs[dim - 1] = 1;
      AffineExpr e(std::move(coeffs), rnd_range(state, -10, 10));
      if (splitmix64(state) % 3 == 0)
        p.add_eq0(std::move(e));
      else
        p.add_ge0(std::move(e));
    }
    const bool truth = enumerate_feasible(p, box);
    const Feas verdict = integer_feasible(p);
    SCOPED_TRACE("seed=" + std::to_string(seed));
    ASSERT_NE(verdict, Feas::kUnknown) << p.str();
    EXPECT_EQ(verdict == Feas::kFeasible, truth) << p.str();
  }
}

}  // namespace
}  // namespace pp::poly
