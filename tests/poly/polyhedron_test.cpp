#include "poly/polyhedron.hpp"

#include <gtest/gtest.h>

#include "poly/poly_set.hpp"

namespace pp::poly {
namespace {

Polyhedron triangle(i64 n) {
  // {(i, j) : 0 <= j <= i <= n}
  Polyhedron p(2);
  p.add_ge0(AffineExpr::var(2, 1));                                // j >= 0
  p.add_ge0(AffineExpr::var(2, 0) - AffineExpr::var(2, 1));        // i >= j
  p.add_ge0(AffineExpr::constant(2, n) - AffineExpr::var(2, 0));   // i <= n
  return p;
}

TEST(Polyhedron, BoxContainment) {
  Polyhedron b = Polyhedron::box({{0, 4}, {-2, 2}});
  std::vector<i64> in = {2, 0}, edge = {4, -2}, out = {5, 0};
  EXPECT_TRUE(b.contains(in));
  EXPECT_TRUE(b.contains(edge));
  EXPECT_FALSE(b.contains(out));
}

TEST(Polyhedron, EmptinessRational) {
  Polyhedron p(1);
  p.bound_var(0, 3, 1);  // 3 <= x <= 1: empty
  EXPECT_TRUE(p.is_rational_empty());
  Polyhedron q = Polyhedron::box({{0, 0}});
  EXPECT_FALSE(q.is_rational_empty());
  EXPECT_FALSE(Polyhedron::universe(2).is_rational_empty());
}

TEST(Polyhedron, IntegerEmptyButRationallyNonEmpty) {
  // 1 <= 2x <= 1 has the rational point 1/2 but no integer point.
  Polyhedron p(1);
  p.add_ge0(AffineExpr({2}, -1));   // 2x - 1 >= 0
  p.add_ge0(AffineExpr({-2}, 1));   // 1 - 2x >= 0
  EXPECT_FALSE(p.is_rational_empty());
  EXPECT_TRUE(p.is_integer_empty());
}

TEST(Polyhedron, MinimizeMaximize) {
  Polyhedron t = triangle(10);
  AffineExpr diff = AffineExpr::var(2, 0) - AffineExpr::var(2, 1);
  BoundResult lo = t.minimize(diff);
  ASSERT_EQ(lo.status, LpStatus::kOptimal);
  EXPECT_EQ(lo.value, Rat(0));
  BoundResult hi = t.maximize(diff);
  ASSERT_EQ(hi.status, LpStatus::kOptimal);
  EXPECT_EQ(hi.value, Rat(10));
  // Constant terms must flow through.
  BoundResult shifted = t.minimize(diff + 5);
  EXPECT_EQ(shifted.value, Rat(5));
}

TEST(Polyhedron, VarBounds) {
  Polyhedron t = triangle(7);
  auto bi = t.var_bounds(0);
  ASSERT_TRUE(bi.has_value());
  EXPECT_EQ(bi->first, 0);
  EXPECT_EQ(bi->second, 7);
  EXPECT_FALSE(Polyhedron::universe(1).var_bounds(0).has_value());
}

TEST(Polyhedron, CountTrianglePoints) {
  // Triangle with n=4: sum_{i=0..4} (i+1) = 15 points.
  auto n = triangle(4).count_points();
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(*n, 15u);
}

TEST(Polyhedron, EnumerateLexOrder) {
  Polyhedron b = Polyhedron::box({{0, 1}, {0, 1}});
  auto pts = b.enumerate();
  ASSERT_TRUE(pts.has_value());
  ASSERT_EQ(pts->size(), 4u);
  EXPECT_EQ((*pts)[0], (std::vector<i64>{0, 0}));
  EXPECT_EQ((*pts)[1], (std::vector<i64>{0, 1}));
  EXPECT_EQ((*pts)[2], (std::vector<i64>{1, 0}));
  EXPECT_EQ((*pts)[3], (std::vector<i64>{1, 1}));
}

TEST(Polyhedron, EnumerateUnboundedReturnsNullopt) {
  Polyhedron p(1);
  p.add_ge0(AffineExpr::var(1, 0));  // x >= 0, unbounded above
  EXPECT_FALSE(p.enumerate().has_value());
  EXPECT_FALSE(p.count_points().has_value());
}

TEST(Polyhedron, EnumerateCapReturnsNullopt) {
  Polyhedron b = Polyhedron::box({{0, 99}});
  EXPECT_FALSE(b.count_points(10).has_value());
  EXPECT_TRUE(b.count_points(100).has_value());
}

TEST(Polyhedron, ZeroDimensional) {
  Polyhedron p(0);
  EXPECT_EQ(p.count_points().value(), 1u);
  EXPECT_EQ(p.enumerate()->size(), 1u);
}

TEST(Polyhedron, EqualityConstraintSlices) {
  // Box with diagonal equality: x == y gives 5 points on the diagonal.
  Polyhedron p = Polyhedron::box({{0, 4}, {0, 4}});
  p.add_eq0(AffineExpr::var(2, 0) - AffineExpr::var(2, 1));
  EXPECT_EQ(p.count_points().value(), 5u);
}

TEST(Polyhedron, ModuloLikeEqualityEmptyRange) {
  // 2x == 5 has no integer solution inside [0, 10].
  Polyhedron p = Polyhedron::box({{0, 10}});
  p.add_eq0(AffineExpr({2}, -5));
  EXPECT_EQ(p.count_points().value(), 0u);
}

TEST(Polyhedron, IntersectAndRedundant) {
  Polyhedron a = Polyhedron::box({{0, 10}});
  Polyhedron b = Polyhedron::box({{5, 20}});
  Polyhedron c = a.intersect(b);
  auto bounds = c.var_bounds(0);
  ASSERT_TRUE(bounds.has_value());
  EXPECT_EQ(bounds->first, 5);
  EXPECT_EQ(bounds->second, 10);
  c.remove_redundant();
  EXPECT_EQ(c.num_constraints(), 2u);  // only x >= 5 and x <= 10 survive
}

TEST(Polyhedron, ProjectOutTriangle) {
  // Projecting j out of the triangle {0<=j<=i<=5} gives {0<=i<=5}.
  Polyhedron t = triangle(5);
  Polyhedron p = t.project_out(1);
  EXPECT_EQ(p.dim(), 1u);
  auto b = p.var_bounds(0);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->first, 0);
  EXPECT_EQ(b->second, 5);
}

TEST(Polyhedron, ProjectOutWithEqualities) {
  // {x == 2y, 0 <= x <= 8}: projecting x gives 0 <= 2y <= 8.
  Polyhedron p(2);
  p.add_eq0(AffineExpr({1, -2}, 0));
  p.bound_var(0, 0, 8);
  Polyhedron q = p.project_out(0);
  auto b = q.var_bounds(0);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->first, 0);
  EXPECT_EQ(b->second, 4);
}

TEST(Polyhedron, StrRendering) {
  Polyhedron t = triangle(3);
  std::vector<std::string> names = {"i", "j"};
  std::string s = t.str(names);
  EXPECT_NE(s.find("j >= 0"), std::string::npos);
  EXPECT_NE(s.find("i - j >= 0"), std::string::npos);
}

TEST(Polyhedron, LexminBox) {
  Polyhedron b = Polyhedron::box({{2, 5}, {-3, 4}});
  auto lm = b.lexmin();
  ASSERT_TRUE(lm.has_value());
  EXPECT_EQ(*lm, (std::vector<i64>{2, -3}));
}

TEST(Polyhedron, LexminTriangle) {
  Polyhedron t = triangle(5);
  auto lm = t.lexmin();
  ASSERT_TRUE(lm.has_value());
  EXPECT_EQ(*lm, (std::vector<i64>{0, 0}));
}

TEST(Polyhedron, LexminSkipsNonIntegralRationalMin) {
  // 1 <= 2x <= 7: rational min 1/2, integer lexmin x = 1.
  Polyhedron p(1);
  p.add_ge0(AffineExpr({2}, -1));
  p.add_ge0(AffineExpr({-2}, 7));
  auto lm = p.lexmin();
  ASSERT_TRUE(lm.has_value());
  EXPECT_EQ(*lm, (std::vector<i64>{1}));
}

TEST(Polyhedron, LexminEmptyAndUnbounded) {
  Polyhedron empty(1);
  empty.bound_var(0, 3, 1);
  EXPECT_FALSE(empty.lexmin().has_value());
  Polyhedron unbounded(1);
  unbounded.add_ge0(-AffineExpr::var(1, 0));  // x <= 0, unbounded below
  EXPECT_FALSE(unbounded.lexmin().has_value());
}

TEST(Polyhedron, LexminIsFirstEnumerated) {
  // lexmin must agree with the first point of lexicographic enumeration.
  Polyhedron p = Polyhedron::box({{0, 3}, {0, 3}});
  p.add_ge0(AffineExpr({1, 1}, -3));  // x + y >= 3
  auto lm = p.lexmin();
  auto pts = p.enumerate();
  ASSERT_TRUE(lm && pts && !pts->empty());
  EXPECT_EQ(*lm, pts->front());
}

TEST(PolySet, PiecesAndContainment) {
  PolySet s(1);
  Piece p1{Polyhedron::box({{0, 3}}), AffineMap::identity(1), true, true, 4};
  Piece p2{Polyhedron::box({{10, 12}}), AffineMap::identity(1), false, true, 3};
  s.add_piece(p1);
  s.add_piece(p2);
  std::vector<i64> a = {2}, b = {11}, c = {7};
  EXPECT_TRUE(s.contains(a));
  EXPECT_TRUE(s.contains(b));
  EXPECT_FALSE(s.contains(c));
  EXPECT_FALSE(s.all_exact());
  EXPECT_EQ(s.total_observed(), 7u);
  EXPECT_NE(s.str().find("(approx)"), std::string::npos);
}

// Property sweep: count_points on random template polyhedra must match a
// brute-force scan of the bounding box.
class CountSweep : public ::testing::TestWithParam<int> {};

TEST_P(CountSweep, MatchesBruteForce) {
  u64 state = static_cast<u64>(GetParam()) * 987654321u + 3;
  auto next = [&](int lo, int hi) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return lo + static_cast<int>((state >> 33) % static_cast<u64>(hi - lo + 1));
  };
  Polyhedron p(2);
  int xlo = next(-4, 0), xhi = next(0, 5);
  int ylo = next(-4, 0), yhi = next(0, 5);
  p.bound_var(0, xlo, xhi);
  p.bound_var(1, ylo, yhi);
  // One random octagon constraint: a*x + b*y + c >= 0 with a, b in ±1.
  int a = next(0, 1) ? 1 : -1;
  int b = next(0, 1) ? 1 : -1;
  int c = next(-3, 3);
  p.add_ge0(AffineExpr({a, b}, c));
  u64 expected = 0;
  for (i64 x = xlo; x <= xhi; ++x) {
    for (i64 y = ylo; y <= yhi; ++y) {
      std::vector<i64> pt = {x, y};
      if (p.contains(pt)) ++expected;
    }
  }
  EXPECT_EQ(p.count_points().value(), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CountSweep, ::testing::Range(0, 60));

}  // namespace
}  // namespace pp::poly
