// Property fuzzing of Fourier–Motzkin projection and the LP bound queries
// against brute-force lattice enumeration.
#include <gtest/gtest.h>

#include <set>

#include "poly/polyhedron.hpp"

namespace pp::poly {
namespace {

struct Rng {
  u64 state;
  explicit Rng(u64 seed) : state(seed * 2862933555777941757ull + 3037000493ull) {}
  i64 range(i64 lo, i64 hi) {
    state = state * 2862933555777941757ull + 3037000493ull;
    return lo + static_cast<i64>((state >> 33) % static_cast<u64>(hi - lo + 1));
  }
};

Polyhedron random_poly(Rng& rng) {
  Polyhedron p(2);
  p.bound_var(0, rng.range(-4, 0), rng.range(1, 5));
  p.bound_var(1, rng.range(-4, 0), rng.range(1, 5));
  int extra = static_cast<int>(rng.range(0, 2));
  for (int k = 0; k < extra; ++k) {
    i64 a = rng.range(-2, 2), b = rng.range(-2, 2), c = rng.range(-4, 4);
    if (a == 0 && b == 0) continue;
    p.add_ge0(AffineExpr({a, b}, c));
  }
  return p;
}

class ProjectionFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ProjectionFuzz, FourierMotzkinContainsTrueProjection) {
  Rng rng(static_cast<u64>(GetParam()));
  Polyhedron p = random_poly(rng);
  auto pts = p.enumerate();
  ASSERT_TRUE(pts.has_value());

  for (std::size_t drop : {std::size_t{0}, std::size_t{1}}) {
    Polyhedron proj = p.project_out(drop);
    std::set<i64> truth;
    for (const auto& pt : *pts) truth.insert(pt[drop == 0 ? 1 : 0]);
    // FM projection is exact on rationals: every integer point of the true
    // projection must be inside, and (for these full-dimensional cases)
    // points far outside must not be.
    for (i64 v : truth) {
      std::vector<i64> q = {v};
      EXPECT_TRUE(proj.contains(q))
          << "lost projected point " << v << " of " << p.str();
    }
    if (!truth.empty()) {
      std::vector<i64> below = {*truth.begin() - 20};
      std::vector<i64> above = {*truth.rbegin() + 20};
      EXPECT_FALSE(proj.contains(below));
      EXPECT_FALSE(proj.contains(above));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProjectionFuzz, ::testing::Range(0, 60));

class BoundsFuzz : public ::testing::TestWithParam<int> {};

TEST_P(BoundsFuzz, LpBoundsMatchEnumeration) {
  Rng rng(static_cast<u64>(GetParam()) + 1000);
  Polyhedron p = random_poly(rng);
  auto pts = p.enumerate();
  ASSERT_TRUE(pts.has_value());
  if (pts->empty()) {
    // Rational emptiness may disagree with integer emptiness only in the
    // sound direction.
    EXPECT_TRUE(p.is_integer_empty());
    return;
  }
  // Random objective: LP min/max must bound the integer min/max, and for
  // integral vertices coincide often; we assert the sound inequality.
  i64 cx = rng.range(-3, 3), cy = rng.range(-3, 3);
  AffineExpr obj({cx, cy}, 0);
  i128 lo = 0, hi = 0;
  bool first = true;
  for (const auto& pt : *pts) {
    i128 v = obj.eval(pt);
    if (first || v < lo) lo = v;
    if (first || v > hi) hi = v;
    first = false;
  }
  BoundResult bmin = p.minimize(obj);
  BoundResult bmax = p.maximize(obj);
  ASSERT_EQ(bmin.status, LpStatus::kOptimal);
  ASSERT_EQ(bmax.status, LpStatus::kOptimal);
  EXPECT_LE(bmin.value, Rat(lo));
  EXPECT_GE(bmax.value, Rat(hi));
  // var_bounds: integer-tight for each dimension.
  for (std::size_t d = 0; d < 2; ++d) {
    auto vb = p.var_bounds(d);
    ASSERT_TRUE(vb.has_value());
    i64 vlo = (*pts)[0][d], vhi = (*pts)[0][d];
    for (const auto& pt : *pts) {
      vlo = std::min(vlo, pt[d]);
      vhi = std::max(vhi, pt[d]);
    }
    EXPECT_LE(vb->first, vlo);
    EXPECT_GE(vb->second, vhi);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundsFuzz, ::testing::Range(0, 60));

}  // namespace
}  // namespace pp::poly
