#include "ir/builder.hpp"

#include <gtest/gtest.h>

namespace pp::ir {
namespace {

TEST(Builder, EmitsIntoCurrentBlock) {
  Module m;
  Function& f = m.add_function("f", 1);
  Builder b(m, f);
  int entry = b.make_block("entry");
  b.set_block(entry);
  Reg x = b.addi(0, 5);
  b.ret(x);
  EXPECT_NO_THROW(verify(m));
  EXPECT_EQ(f.blocks[0].instrs.size(), 2u);
  EXPECT_EQ(f.blocks[0].instrs[0].op, Op::kAddI);
}

TEST(Builder, RejectsEmissionAfterTerminator) {
  Module m;
  Function& f = m.add_function("f", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  b.ret();
  EXPECT_THROW(b.const_(1), Error);
}

TEST(Builder, RejectsEmissionWithoutBlock) {
  Module m;
  Function& f = m.add_function("f", 0);
  Builder b(m, f);
  EXPECT_THROW(b.const_(1), Error);
}

TEST(Builder, FreshRegistersAreDistinct) {
  Module m;
  Function& f = m.add_function("f", 2);
  Builder b(m, f);
  Reg a = b.fresh();
  Reg c = b.fresh();
  EXPECT_NE(a, c);
  EXPECT_GE(a, 2);  // args occupy r0, r1
}

TEST(Builder, LineInfoAttaches) {
  Module m;
  Function& f = m.add_function("f", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  b.set_line(99);
  b.const_(7);
  b.ret();
  EXPECT_EQ(f.blocks[0].instrs[0].line, 99);
}

TEST(Builder, CountedLoopShape) {
  // sum = 0; for (i = 0; i < n; ++i) sum += i; return sum
  Module m;
  Function& f = m.add_function("sum_to_n", 1);
  Builder b(m, f);
  int entry = b.make_block("entry");
  b.set_block(entry);
  Reg sum = b.const_(0);
  b.counted_loop(0, /*end=*/0 /* r0 = n */, 1,
                 [&](Reg iv) { b.add(sum, iv, sum); });
  b.ret(sum);
  EXPECT_NO_THROW(verify(m));
  // Loop structure: entry + header + body + exit = 4 blocks.
  EXPECT_EQ(f.blocks.size(), 4u);
}

TEST(Builder, CallHelper) {
  Module m;
  Function& callee = m.add_function("callee", 1);
  {
    Builder cb(m, callee);
    cb.set_block(cb.make_block());
    Reg out = cb.addi(0, 1);
    cb.ret(out);
  }
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg arg = b.const_(41);
  Reg r = b.call(callee, {arg}, /*want_result=*/true);
  b.ret(r);
  EXPECT_NO_THROW(verify(m));
  EXPECT_NE(r, kNoReg);
}

}  // namespace
}  // namespace pp::ir
