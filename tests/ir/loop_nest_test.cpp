// Loop-nest rewriting primitives (ir/loop_nest.hpp): every rewrite is
// checked end-to-end by executing the module before and after on the VM
// and comparing exit value + full memory image — the same byte-identity
// contract the transformation engine enforces.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "ir/builder.hpp"
#include "ir/loop_nest.hpp"
#include "vm/vm.hpp"

namespace pp::ir {
namespace {

struct Snapshot {
  i64 exit_value = 0;
  std::vector<i64> memory;
};

Snapshot execute(const Module& m) {
  vm::Machine machine(m);
  vm::RunResult r = machine.run("main");
  EXPECT_FALSE(r.truncated);
  std::span<const i64> img = machine.memory_image();
  return {r.exit_value, {img.begin(), img.end()}};
}

// for i < n: for j < n: A[i*n+j] = i*10 + j
Module build_nest2(i64 n) {
  Module m;
  i64 ga = m.add_global("A", n * n * 8);
  Function& f = m.add_function("main", 0, "nest.c");
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg a = b.const_(ga);
  Reg nr = b.const_(n);
  b.counted_loop(0, nr, 1, [&](Reg i) {
    b.counted_loop(0, nr, 1, [&](Reg j) {
      Reg row = b.mul(i, nr);
      Reg cell = b.add(row, j);
      Reg off = b.muli(cell, 8);
      Reg ptr = b.add(a, off);
      Reg ten = b.muli(i, 10);
      Reg v = b.add(ten, j);
      b.store(ptr, v);
    });
  });
  b.ret();
  return m;
}

// The outer/inner pair of the only 2-deep nest in `f`, by header order.
std::pair<CountedLoop, CountedLoop> only_pair(const Function& f) {
  std::vector<CountedLoop> loops = find_counted_loops(f);
  for (const CountedLoop& outer : loops)
    for (const CountedLoop& inner : loops)
      if (outer.body == inner.preheader && inner.exit == outer.latch)
        return {outer, inner};
  ADD_FAILURE() << "no perfectly nestable pair found";
  return {};
}

TEST(LoopNest, MatchesBuilderLoop) {
  Module m = build_nest2(6);
  const Function& f = *m.find_function("main");
  std::vector<CountedLoop> loops = find_counted_loops(f);
  ASSERT_EQ(loops.size(), 2u);
  for (const CountedLoop& l : loops) {
    EXPECT_EQ(l.step, 1);
    EXPECT_EQ(l.cmp_op, Op::kCmpLt);
    EXPECT_TRUE(l.init_is_const);
    EXPECT_EQ(l.begin, 0);
  }
}

TEST(LoopNest, InterchangeKeepsOutputIdentical) {
  Module m = build_nest2(7);
  Snapshot before = execute(m);
  Function& f = *m.find_function("main");
  auto [outer, inner] = only_pair(f);
  ASSERT_TRUE(sink_preheader_extras(f, outer, inner));
  ASSERT_TRUE(interchange(f, outer, inner));
  Snapshot after = execute(m);
  EXPECT_EQ(before.exit_value, after.exit_value);
  EXPECT_EQ(before.memory, after.memory);
}

TEST(LoopNest, InterchangeRefusesTriangularNest) {
  // for i < n: for j < i: ... — the inner bound is the outer induction
  // variable, written by the outer latch; swapping would read garbage.
  Module m;
  i64 ga = m.add_global("A", 8 * 8 * 8);
  Function& f = m.add_function("main", 0, "tri.c");
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg a = b.const_(ga);
  Reg nr = b.const_(8);
  b.counted_loop(0, nr, 1, [&](Reg i) {
    b.counted_loop(0, i, 1, [&](Reg j) {
      Reg row = b.muli(i, 8);
      Reg cell = b.add(row, j);
      Reg off = b.muli(cell, 8);
      Reg ptr = b.add(a, off);
      b.store(ptr, j);
    });
  });
  b.ret();
  Function& fn = *m.find_function("main");
  auto [outer, inner] = only_pair(fn);
  ASSERT_TRUE(sink_preheader_extras(fn, outer, inner));
  EXPECT_FALSE(interchange(fn, outer, inner));
}

TEST(LoopNest, Tile2KeepsOutputIdentical) {
  Module m = build_nest2(12);
  Snapshot before = execute(m);
  Function& f = *m.find_function("main");
  auto [outer, inner] = only_pair(f);
  ASSERT_TRUE(sink_preheader_extras(f, outer, inner));
  ASSERT_TRUE(tile2(f, outer, inner, 4));
  Snapshot after = execute(m);
  EXPECT_EQ(before.memory, after.memory);
}

TEST(LoopNest, Tile2HandlesNonMultipleTripCount) {
  // 10 is not a multiple of the tile size 4: the strip-mined inner bound
  // takes the min(ivt + 4, n) path on the last tile.
  Module m = build_nest2(10);
  Snapshot before = execute(m);
  Function& f = *m.find_function("main");
  auto [outer, inner] = only_pair(f);
  ASSERT_TRUE(sink_preheader_extras(f, outer, inner));
  ASSERT_TRUE(tile2(f, outer, inner, 4));
  Snapshot after = execute(m);
  EXPECT_EQ(before.memory, after.memory);
}

// a: A[i] = i*3;  b: B[i] = A[i] + 100;  c: C[i] = B[i] * 2 — a legal
// fusion chain (all dependences are intra-iteration after fusion).
Module build_chain3(i64 n) {
  Module m;
  i64 ga = m.add_global("A", n * 8);
  i64 gb = m.add_global("B", n * 8);
  i64 gc = m.add_global("C", n * 8);
  Function& f = m.add_function("main", 0, "chain.c");
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg a = b.const_(ga);
  Reg bb = b.const_(gb);
  Reg c = b.const_(gc);
  Reg nr = b.const_(n);
  b.counted_loop(0, nr, 1, [&](Reg i) {
    Reg off = b.muli(i, 8);
    Reg ptr = b.add(a, off);
    b.store(ptr, b.muli(i, 3));
  });
  b.counted_loop(0, nr, 1, [&](Reg i) {
    Reg off = b.muli(i, 8);
    Reg v = b.load(b.add(a, off));
    b.store(b.add(bb, off), b.addi(v, 100));
  });
  b.counted_loop(0, nr, 1, [&](Reg i) {
    Reg off = b.muli(i, 8);
    Reg v = b.load(b.add(bb, off));
    b.store(b.add(c, off), b.muli(v, 2));
  });
  b.ret();
  return m;
}

TEST(LoopNest, FuseKeepsOutputIdentical) {
  Module m = build_chain3(16);
  Snapshot before = execute(m);
  Function& f = *m.find_function("main");
  std::vector<CountedLoop> loops = find_counted_loops(f);
  ASSERT_EQ(loops.size(), 3u);
  ASSERT_TRUE(fuse(f, loops[0], loops[1]));
  Snapshot after = execute(m);
  EXPECT_EQ(before.memory, after.memory);
}

TEST(LoopNest, FuseChainsAcrossThreeLoops) {
  // Regression for the dead-island bug: after fuse(a, b) the dead b
  // header used to keep a branch into the merged loop body, making the
  // merged loop fail match_counted_loop's side-entry check — so chain
  // fusion stopped after one step. Both fusions must match and apply.
  Module m = build_chain3(16);
  Snapshot before = execute(m);
  Function& f = *m.find_function("main");
  std::vector<CountedLoop> loops = find_counted_loops(f);
  ASSERT_EQ(loops.size(), 3u);
  ASSERT_TRUE(fuse(f, loops[0], loops[1]));
  std::optional<CountedLoop> merged = match_counted_loop(f, loops[0].header);
  ASSERT_TRUE(merged.has_value()) << "fused loop no longer matches";
  std::optional<CountedLoop> tail = match_counted_loop(f, loops[2].header);
  ASSERT_TRUE(tail.has_value());
  ASSERT_TRUE(fuse(f, *merged, *tail));
  EXPECT_GT(remove_unreachable_blocks(f), 0);
  Snapshot after = execute(m);
  EXPECT_EQ(before.exit_value, after.exit_value);
  EXPECT_EQ(before.memory, after.memory);
}

TEST(LoopNest, FuseRefusesUnequalTripSpaces) {
  Module m;
  i64 ga = m.add_global("A", 32 * 8);
  Function& f = m.add_function("main", 0, "uneq.c");
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg a = b.const_(ga);
  Reg n1 = b.const_(8);
  Reg n2 = b.const_(12);
  b.counted_loop(0, n1, 1, [&](Reg i) {
    b.store(b.add(a, b.muli(i, 8)), i);
  });
  b.counted_loop(0, n2, 1, [&](Reg i) {
    b.store(b.add(a, b.muli(i, 8)), i, 128);
  });
  b.ret();
  Function& fn = *m.find_function("main");
  std::vector<CountedLoop> loops = find_counted_loops(fn);
  ASSERT_EQ(loops.size(), 2u);
  EXPECT_FALSE(fuse(fn, loops[0], loops[1]));
}

}  // namespace
}  // namespace pp::ir
