#include "ir/ir.hpp"

#include <gtest/gtest.h>

#include "ir/builder.hpp"

namespace pp::ir {
namespace {

Module tiny_module() {
  Module m;
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  int entry = b.make_block("entry");
  b.set_block(entry);
  Reg r = b.const_(42);
  b.ret(r);
  return m;
}

TEST(Ir, VerifyAcceptsValidModule) {
  Module m = tiny_module();
  EXPECT_NO_THROW(verify(m));
}

TEST(Ir, VerifyRejectsEmptyFunction) {
  Module m;
  m.add_function("empty", 0);
  EXPECT_THROW(verify(m), Error);
}

TEST(Ir, VerifyRejectsUnterminatedBlock) {
  Module m;
  Function& f = m.add_function("f", 0);
  f.blocks.push_back({0, "entry", {{.op = Op::kConst, .dst = 0, .imm = 1}}});
  f.num_regs = 1;
  EXPECT_THROW(verify(m), Error);
}

TEST(Ir, VerifyRejectsBadRegister) {
  Module m;
  Function& f = m.add_function("f", 0);
  f.num_regs = 1;
  f.blocks.push_back(
      {0, "entry", {{.op = Op::kMov, .dst = 0, .a = 5}, {.op = Op::kRet}}});
  EXPECT_THROW(verify(m), Error);
}

TEST(Ir, VerifyRejectsBadBranchTarget) {
  Module m;
  Function& f = m.add_function("f", 0);
  f.blocks.push_back({0, "entry", {{.op = Op::kBr, .imm = 7}}});
  EXPECT_THROW(verify(m), Error);
}

TEST(Ir, VerifyRejectsCallArityMismatch) {
  Module m;
  Function& callee = m.add_function("callee", 2);
  Builder cb(m, callee);
  cb.set_block(cb.make_block());
  cb.ret();
  Function& f = m.add_function("f", 0);
  f.blocks.push_back(
      {0, "entry", {{.op = Op::kCall, .imm = callee.id, .args = {}},
                    {.op = Op::kRet}}});
  EXPECT_THROW(verify(m), Error);
}

TEST(Ir, VerifyRejectsDuplicateFunctionNames) {
  Module m = tiny_module();
  Function& dup = m.add_function("main", 0);
  Builder b(m, dup);
  b.set_block(b.make_block());
  b.ret();
  EXPECT_THROW(verify(m), Error);
}

TEST(Ir, GlobalsAllocateAlignedAddresses) {
  Module m;
  i64 a = m.add_global("a", 12);  // rounds to 16
  i64 b = m.add_global("b", 8);
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 16);
  EXPECT_EQ(m.data_segment_size, 24);
  EXPECT_NE(m.find_global("a"), nullptr);
  EXPECT_EQ(m.find_global("zzz"), nullptr);
}

TEST(Ir, GlobalInitWords) {
  Module m;
  i64 addr = m.add_global_init("tbl", {1, 2, 3});
  EXPECT_EQ(addr, 0);
  EXPECT_EQ(m.globals[0].size_bytes, 24);
  EXPECT_EQ(m.globals[0].init_words.size(), 3u);
}

TEST(Ir, FindFunction) {
  Module m = tiny_module();
  EXPECT_NE(m.find_function("main"), nullptr);
  EXPECT_EQ(m.find_function("nope"), nullptr);
}

TEST(Ir, PrintContainsStructure) {
  Module m = tiny_module();
  std::string s = print(m);
  EXPECT_NE(s.find("func main"), std::string::npos);
  EXPECT_NE(s.find("const r0, 42"), std::string::npos);
  EXPECT_NE(s.find("ret r0"), std::string::npos);
}

TEST(Ir, OpClassification) {
  EXPECT_TRUE(op_is_terminator(Op::kBr));
  EXPECT_TRUE(op_is_terminator(Op::kRet));
  EXPECT_FALSE(op_is_terminator(Op::kCall));
  EXPECT_TRUE(op_is_fp(Op::kFMul));
  EXPECT_FALSE(op_is_fp(Op::kMul));
  EXPECT_TRUE(op_is_memory(Op::kLoad));
  EXPECT_TRUE(op_is_memory(Op::kStore));
  EXPECT_FALSE(op_is_memory(Op::kAdd));
}

}  // namespace
}  // namespace pp::ir
