#include "ir/parser.hpp"

#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "vm/vm.hpp"
#include "workloads/workloads.hpp"

namespace pp::ir {
namespace {

TEST(Parser, ParsesMinimalModule) {
  const char* text =
      "func main(0 args, 1 regs)\n"
      "bb0:\n"
      "  const r0, 42\n"
      "  ret r0\n";
  Module m = parse(text);
  ASSERT_EQ(m.functions.size(), 1u);
  EXPECT_EQ(m.functions[0].name, "main");
  vm::Machine machine(m);
  EXPECT_EQ(machine.run("main").exit_value, 42);
}

TEST(Parser, ParsesGlobalsWithAddresses) {
  const char* text =
      "global a @0 size 16\n"
      "global b @16 size 8\n"
      "func main(0 args, 1 regs)\n"
      "bb0:\n"
      "  ret\n";
  Module m = parse(text);
  EXPECT_EQ(m.globals.size(), 2u);
  EXPECT_EQ(m.find_global("b")->address, 16);
  EXPECT_EQ(m.data_segment_size, 24);
}

TEST(Parser, ParsesControlFlowAndCalls) {
  const char* text =
      "func helper(1 args, 2 regs)\n"
      "bb0:\n"
      "  addi r1, r0, 1\n"
      "  ret r1\n"
      "func main(0 args, 3 regs)\n"
      "bb0:\n"
      "  const r0, 5\n"
      "  call r1 = helper(r0)\n"
      "  brcond r1, bb1, bb2\n"
      "bb1:\n"
      "  ret r1\n"
      "bb2:\n"
      "  const r2, -1\n"
      "  ret r2\n";
  Module m = parse(text);
  vm::Machine machine(m);
  EXPECT_EQ(machine.run("main").exit_value, 6);
}

TEST(Parser, ParsesMemoryWithOffsets) {
  const char* text =
      "global buf @0 size 32\n"
      "func main(0 args, 3 regs)\n"
      "bb0:\n"
      "  const r0, 0\n"
      "  const r1, 7\n"
      "  store [r0 + 8], r1\n"
      "  load r2, [r0 + 8]\n"
      "  ret r2\n";
  Module m = parse(text);
  vm::Machine machine(m);
  EXPECT_EQ(machine.run("main").exit_value, 7);
}

TEST(Parser, LineDebugInfoPreserved) {
  const char* text =
      "func main(0 args, 1 regs)\n"
      "bb0:\n"
      "  const r0, 1   ; line 99\n"
      "  ret r0\n";
  Module m = parse(text);
  EXPECT_EQ(m.functions[0].blocks[0].instrs[0].line, 99);
}

TEST(Parser, RejectsMalformedInput) {
  EXPECT_THROW(parse("func broken\n"), Error);
  EXPECT_THROW(parse("func f(0 args, 1 regs)\nbb0:\n  bogus r0\n  ret\n"),
               Error);
  EXPECT_THROW(parse("func f(0 args, 1 regs)\nbb0:\n  const r0\n  ret\n"),
               Error);
  EXPECT_THROW(
      parse("func f(0 args, 1 regs)\nbb0:\n  call r0 = nosuch()\n  ret\n"),
      Error);
  // Instruction outside any block.
  EXPECT_THROW(parse("func f(0 args, 1 regs)\n  const r0, 1\n"), Error);
}

TEST(Parser, FconstRoundTripsExactly) {
  Module m;
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg x = b.fconst(0.1);           // not exactly representable in decimal
  Reg y = b.fconst(1.0 / 3.0);
  Reg s = b.fadd(x, y);
  Reg r = b.f2i(b.fmul(s, b.fconst(1e6)));
  b.ret(r);
  Module m2 = parse(print(m));
  vm::Machine v1(m), v2(m2);
  EXPECT_EQ(v1.run("main").exit_value, v2.run("main").exit_value);
}

// The strong property: print -> parse -> print is a fixpoint, and the
// reparsed module computes the same result, for every mini-Rodinia
// benchmark and both case-study programs.
class ParserRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(ParserRoundTrip, PrintParsePrintFixpoint) {
  workloads::Workload w = workloads::make_rodinia(GetParam());
  std::string text = print(w.module);
  Module reparsed = parse(text);
  EXPECT_EQ(print(reparsed), text);
  // Semantics: same instruction count (data initializers are not part of
  // the textual form, so exit values may differ; structure must match).
  EXPECT_EQ(reparsed.functions.size(), w.module.functions.size());
  for (std::size_t i = 0; i < reparsed.functions.size(); ++i) {
    EXPECT_EQ(reparsed.functions[i].blocks.size(),
              w.module.functions[i].blocks.size());
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, ParserRoundTrip,
                         ::testing::ValuesIn(workloads::rodinia_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n)
                             if (c == '+') c = 'p';
                           return n;
                         });

}  // namespace
}  // namespace pp::ir
