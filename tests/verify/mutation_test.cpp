// The mutation matrix (defect class x workload): a seeded mutator injects
// exactly one defect of a chosen class into a real mini-Rodinia module, and
// the verifier must flag that class. This is the verifier's
// false-NEGATIVE guard, complementing the all-workloads-clean test.
#include "verify/mutator.hpp"

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "verify/verifier.hpp"
#include "workloads/workloads.hpp"

namespace pp::verify {
namespace {

TEST(Mutator, DeterministicForSeed) {
  workloads::Workload a = workloads::make_rodinia("backprop");
  workloads::Workload b = workloads::make_rodinia("backprop");
  Mutation ma = mutate(a.module, DefectClass::kDanglingBranch, 42);
  Mutation mb = mutate(b.module, DefectClass::kDanglingBranch, 42);
  EXPECT_EQ(ma.func, mb.func);
  EXPECT_EQ(ma.block, mb.block);
  EXPECT_EQ(ma.instr, mb.instr);
  EXPECT_EQ(ma.description, mb.description);
}

TEST(Mutator, SeedsSpreadAcrossSites) {
  // Not a strict requirement, but 8 seeds picking the identical site would
  // mean the rng plumbing is broken.
  std::set<std::tuple<int, int, int>> sites;
  for (u64 seed = 0; seed < 8; ++seed) {
    workloads::Workload w = workloads::make_rodinia("hotspot");
    Mutation mu = mutate(w.module, DefectClass::kOutOfRangeRegister, seed);
    sites.insert({mu.func, mu.block, mu.instr});
  }
  EXPECT_GT(sites.size(), 1u);
}

class MutationMatrix
    : public ::testing::TestWithParam<std::tuple<DefectClass, std::string>> {};

TEST_P(MutationMatrix, VerifierFlagsInjectedDefect) {
  auto [cls, name] = GetParam();
  for (u64 seed : {u64{1}, u64{7}, u64{42}}) {
    workloads::Workload w = workloads::make_rodinia(name);
    ASSERT_TRUE(verify_module(w.module).ok()) << "baseline not clean";
    Mutation mu = mutate(w.module, cls, seed);
    EXPECT_EQ(mu.cls, cls);
    VerifyReport rep = verify_module(w.module);
    EXPECT_FALSE(rep.ok()) << defect_class_name(cls) << " seed " << seed
                           << ": " << mu.description;
    EXPECT_TRUE(rep.has(expected_issue(cls)))
        << defect_class_name(cls) << " seed " << seed << ": "
        << mu.description << "\nreport:\n"
        << rep.str();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllClassesAllBenchmarks, MutationMatrix,
    ::testing::Combine(::testing::ValuesIn(kAllDefectClasses),
                       ::testing::ValuesIn(workloads::rodinia_names())),
    [](const auto& info) {
      std::string n = std::string(defect_class_name(std::get<0>(info.param))) +
                      "_" + std::get<1>(info.param);
      for (char& c : n)
        if (c == '+') c = 'p';
        else if (c == '-') c = '_';
      return n;
    });

}  // namespace
}  // namespace pp::verify
