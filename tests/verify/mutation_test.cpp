// The mutation matrix (defect class x workload): a seeded mutator injects
// exactly one defect of a chosen class into a real mini-Rodinia module, and
// the verifier must flag that class. This is the verifier's
// false-NEGATIVE guard, complementing the all-workloads-clean test.
#include "verify/mutator.hpp"

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "ir/builder.hpp"
#include "verify/exact.hpp"
#include "verify/verifier.hpp"
#include "workloads/workloads.hpp"

namespace pp::verify {
namespace {

TEST(Mutator, DeterministicForSeed) {
  workloads::Workload a = workloads::make_rodinia("backprop");
  workloads::Workload b = workloads::make_rodinia("backprop");
  Mutation ma = mutate(a.module, DefectClass::kDanglingBranch, 42);
  Mutation mb = mutate(b.module, DefectClass::kDanglingBranch, 42);
  EXPECT_EQ(ma.func, mb.func);
  EXPECT_EQ(ma.block, mb.block);
  EXPECT_EQ(ma.instr, mb.instr);
  EXPECT_EQ(ma.description, mb.description);
}

TEST(Mutator, SeedsSpreadAcrossSites) {
  // Not a strict requirement, but 8 seeds picking the identical site would
  // mean the rng plumbing is broken.
  std::set<std::tuple<int, int, int>> sites;
  for (u64 seed = 0; seed < 8; ++seed) {
    workloads::Workload w = workloads::make_rodinia("hotspot");
    Mutation mu = mutate(w.module, DefectClass::kOutOfRangeRegister, seed);
    sites.insert({mu.func, mu.block, mu.instr});
  }
  EXPECT_GT(sites.size(), 1u);
}

class MutationMatrix
    : public ::testing::TestWithParam<std::tuple<DefectClass, std::string>> {};

TEST_P(MutationMatrix, VerifierFlagsInjectedDefect) {
  auto [cls, name] = GetParam();
  for (u64 seed : {u64{1}, u64{7}, u64{42}}) {
    workloads::Workload w = workloads::make_rodinia(name);
    ASSERT_TRUE(verify_module(w.module).ok()) << "baseline not clean";
    Mutation mu = mutate(w.module, cls, seed);
    EXPECT_EQ(mu.cls, cls);
    VerifyReport rep = verify_module(w.module);
    EXPECT_FALSE(rep.ok()) << defect_class_name(cls) << " seed " << seed
                           << ": " << mu.description;
    EXPECT_TRUE(rep.has(expected_issue(cls)))
        << defect_class_name(cls) << " seed " << seed << ": "
        << mu.description << "\nreport:\n"
        << rep.str();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllClassesAllBenchmarks, MutationMatrix,
    ::testing::Combine(::testing::ValuesIn(kAllDefectClasses),
                       ::testing::ValuesIn(workloads::rodinia_names())),
    [](const auto& info) {
      std::string n = std::string(defect_class_name(std::get<0>(info.param))) +
                      "_" + std::get<1>(info.param);
      for (char& c : n)
        if (c == '+') c = 'p';
        else if (c == '-') c = '_';
      return n;
    });

// -----------------------------------------------------------------------
// Access-class mutations: the exact analysis's false-negative guard. A
// kStaticExact site flipped down the lattice must (a) keep the module
// verifier-clean (the flips are semantics-preserving), (b) be downgraded
// by the classifier, and (c) never be skipped by the selective plan.

/// a[i] = i*3 over a private global: one provably skippable store.
ir::Module skippable_kernel() {
  ir::Module m;
  i64 g = m.add_global("a", 65 * 8);
  ir::Function& f = m.add_function("main", 0);
  ir::Builder b(m, f);
  b.set_block(b.make_block());
  ir::Reg base = b.const_(g);
  ir::Reg n = b.const_(64);
  b.counted_loop(0, n, 1, [&](ir::Reg iv) {
    b.store(b.add(base, b.muli(iv, 8)), b.muli(iv, 3));
  });
  b.ret();
  return m;
}

class AccessMutationMatrix
    : public ::testing::TestWithParam<AccessMutation> {};

TEST_P(AccessMutationMatrix, FlipsSkippableSiteAndSelectiveRefuses) {
  const AccessMutation cls = GetParam();
  for (u64 seed : {u64{1}, u64{7}, u64{42}}) {
    ir::Module m = skippable_kernel();
    // Baseline: the store really is skippable before the flip.
    ASSERT_TRUE(
        verify::exact::compute_selective_plan(m).total_sites() > 0u);
    AccessMutationResult mu = mutate_access(m, cls, seed);
    ASSERT_GE(mu.func, 0) << access_mutation_name(cls);
    ASSERT_TRUE(verify_module(m).ok())
        << access_mutation_name(cls) << ": " << mu.description;
    const ir::Function& f =
        m.functions[static_cast<std::size_t>(mu.func)];
    exact::ExactDeps ex(m, f);
    EXPECT_EQ(ex.site_class(mu.block, mu.instr), expected_access_class(cls))
        << access_mutation_name(cls) << " seed " << seed << ": "
        << mu.description;
    ddg::SelectivePlan plan = verify::exact::compute_selective_plan(m);
    EXPECT_FALSE(plan.skip(mu.func, mu.block, mu.instr))
        << access_mutation_name(cls) << " seed " << seed << ": "
        << mu.description;
  }
}

TEST_P(AccessMutationMatrix, DowngradesAcrossWorkloads) {
  const AccessMutation cls = GetParam();
  int applied = 0;
  for (const std::string& name : workloads::rodinia_names()) {
    for (u64 seed : {u64{1}, u64{7}}) {
      workloads::Workload w = workloads::make_rodinia(name);
      AccessMutationResult mu = mutate_access(w.module, cls, seed);
      if (mu.func < 0) continue;  // no static-exact candidate to flip
      ++applied;
      ASSERT_TRUE(verify_module(w.module).ok())
          << name << ": " << mu.description;
      const ir::Function& f =
          w.module.functions[static_cast<std::size_t>(mu.func)];
      exact::ExactDeps ex(w.module, f);
      EXPECT_EQ(ex.site_class(mu.block, mu.instr),
                expected_access_class(cls))
          << name << " seed " << seed << ": " << mu.description;
      ddg::SelectivePlan plan =
          verify::exact::compute_selective_plan(w.module);
      EXPECT_FALSE(plan.skip(mu.func, mu.block, mu.instr))
          << name << " seed " << seed << ": " << mu.description;
    }
  }
  // The matrix must not be vacuous: most workloads have a candidate.
  EXPECT_GT(applied, 0) << access_mutation_name(cls);
}

INSTANTIATE_TEST_SUITE_P(BothClasses, AccessMutationMatrix,
                         ::testing::ValuesIn(kAllAccessMutations),
                         [](const auto& info) {
                           std::string n = access_mutation_name(info.param);
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

}  // namespace
}  // namespace pp::verify
