// Differential soundness oracle tests: the dynamic-⊆-static containment
// and the parallel-claim race detector, on hand-built modules (with
// deliberate corruption to prove the oracle actually fires) and across the
// whole mini-Rodinia suite (the acceptance bar: the oracle passes on every
// workload).
#include "verify/oracle.hpp"

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "ir/builder.hpp"
#include "workloads/workloads.hpp"

namespace pp::verify {
namespace {

using ir::Builder;
using ir::Function;
using ir::Module;
using ir::Op;
using ir::Reg;

/// for (i = 0..10) { a[2i] = i; x = a[2i]; y = a[2i+1]; b[i] = x + y; }
/// Even/odd accesses are GCD-disjoint — the raw material for the
/// corruption tests below.
Module even_odd_module() {
  Module m;
  i64 ga = m.add_global("a", 400);
  i64 gb = m.add_global("b", 400);
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg abase = b.const_(ga);
  Reg bbase = b.const_(gb);
  Reg n = b.const_(10);
  b.counted_loop(0, n, 1, [&](Reg iv) {
    Reg p = b.add(abase, b.muli(iv, 16));
    b.store(p, iv);
    Reg x = b.load(p);
    Reg y = b.load(p, 8);
    Reg q = b.add(bbase, b.muli(iv, 8));
    b.store(q, b.add(x, y));
  });
  b.ret();
  return m;
}

/// Statement id of the first statement matching `pred`, or -1.
template <typename Pred>
int find_stmt(const fold::FoldedProgram& prog, Pred pred) {
  for (const auto& s : prog.statements)
    if (pred(s.meta)) return s.meta.id;
  return -1;
}

TEST(Oracle, CleanProgramIsCovered) {
  Module m = even_odd_module();
  core::Pipeline pipe(m);
  core::ProfileResult r = pipe.run();
  ASSERT_FALSE(r.truncated);
  CoverageReport rep = check_dynamic_coverage(m, r.program);
  EXPECT_TRUE(rep.ok()) << rep.str();
  EXPECT_GT(rep.checked, 0u);
  // The a[2i] store -> a[2i] load mem-flow edge is may-covered, so the
  // exact tier re-examined it (and agreed).
  EXPECT_GT(rep.exact_checked, 0u);
}

TEST(Oracle, PrecisionTierRefinesEvenOdd) {
  // may_alias is GCD/Banerjee-only: the a[2i] store vs a[2i+1] load pair is
  // proven disjoint by GCD, so refinement isn't guaranteed there — but the
  // exact tier must at least agree with every may verdict (zero mismatches)
  // and examine every modeled store-involved pair.
  Module m = even_odd_module();
  PrecisionReport rep = check_precision_tier(m);
  EXPECT_TRUE(rep.ok()) << rep.str();
  EXPECT_GT(rep.pairs_checked, 0u);
}

TEST(Oracle, DetectsStaticallyImpossibleMemoryEdge) {
  Module m = even_odd_module();
  core::Pipeline pipe(m);
  core::ProfileResult r = pipe.run();
  // Find the statements for the a[2i] store and the a[2i+1] load (the
  // load with imm 8 on the a-array address).
  const Function& f = m.functions[0];
  auto instr_at = [&](const vm::CodeRef& c) -> const ir::Instr& {
    return f.blocks[static_cast<std::size_t>(c.block)]
        .instrs[static_cast<std::size_t>(c.instr)];
  };
  int odd_load = find_stmt(r.program, [&](const ddg::Statement& s) {
    return s.op == Op::kLoad && instr_at(s.code).imm == 8;
  });
  ASSERT_GE(odd_load, 0);
  // Reroute a store->load mem-flow edge onto the odd load: a dependence
  // the GCD test proves impossible.
  fold::FoldedProgram tampered = r.program;
  bool rerouted = false;
  for (auto& d : tampered.deps) {
    if (d.kind != ddg::DepKind::kMemFlow) continue;
    const auto& src = tampered.stmt(d.src).meta;
    if (src.op != Op::kStore || instr_at(src.code).op != Op::kStore) continue;
    d.dst = odd_load;
    rerouted = true;
    break;
  }
  ASSERT_TRUE(rerouted);
  CoverageReport rep = check_dynamic_coverage(m, tampered);
  EXPECT_FALSE(rep.ok());
  ASSERT_FALSE(rep.violations.empty());
  EXPECT_EQ(rep.violations[0].dst_stmt, odd_load);
}

TEST(Oracle, DetectsImpossibleRegisterFlow) {
  Module m = even_odd_module();
  core::Pipeline pipe(m);
  core::ProfileResult r = pipe.run();
  // Retarget a reg-flow edge's producer to a store (which defines no
  // register at all): statically impossible.
  int store_stmt = find_stmt(r.program, [&](const ddg::Statement& s) {
    return s.op == Op::kStore;
  });
  ASSERT_GE(store_stmt, 0);
  fold::FoldedProgram tampered = r.program;
  bool rerouted = false;
  for (auto& d : tampered.deps) {
    if (d.kind != ddg::DepKind::kRegFlow || d.src == store_stmt) continue;
    d.src = store_stmt;
    rerouted = true;
    break;
  }
  ASSERT_TRUE(rerouted);
  CoverageReport rep = check_dynamic_coverage(m, tampered);
  EXPECT_FALSE(rep.ok()) << rep.str();
}

TEST(Oracle, ForcedParallelClaimIsContradictedAndDowngraded) {
  // sum += a[i]: the loop level carries the accumulator dependence, so a
  // parallel claim on it must be contradicted by the folded DDG.
  Module m;
  i64 g = m.add_global("a", 400);
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg base = b.const_(g);
  Reg n = b.const_(20);
  b.counted_loop(0, n, 1, [&](Reg iv) {  // a[i] = i
    Reg p = b.add(base, b.muli(iv, 8));
    b.store(p, iv);
  });
  Reg acc = b.const_(0);
  b.counted_loop(0, n, 1, [&](Reg iv) {  // acc += a[i]
    Reg p = b.add(base, b.muli(iv, 8));
    Reg v = b.load(p);
    b.add(acc, v, acc);
  });
  b.ret(acc);

  core::Pipeline pipe(m);
  core::ProfileResult r = pipe.run();
  ASSERT_FALSE(r.truncated);
  feedback::RegionMetrics mx = r.analyze(r.whole_program());
  ASSERT_TRUE(mx.analyzable);

  // Baseline: the honest schedule raises no witness.
  {
    ClaimReport rep = check_parallel_claims(r.program, mx, /*downgrade=*/false);
    EXPECT_TRUE(rep.ok()) << rep.str();
  }

  // Force a parallel claim onto a carried level, then let the oracle
  // downgrade it again.
  int forced_group = -1, forced_level = -1;
  for (std::size_t gi = 0;
       gi < mx.sched.groups.size() && forced_group < 0; ++gi) {
    auto& grp = mx.sched.groups[gi];
    if (!grp.schedulable) continue;
    for (std::size_t li = 0; li < grp.levels.size(); ++li) {
      if (grp.levels[li].carries && !grp.levels[li].parallel) {
        grp.levels[li].parallel = true;
        forced_group = static_cast<int>(gi);
        forced_level = static_cast<int>(li);
        break;
      }
    }
  }
  ASSERT_GE(forced_group, 0) << "no carried level to corrupt";

  ClaimReport rep = check_parallel_claims(r.program, mx, /*downgrade=*/true);
  EXPECT_FALSE(rep.ok());
  EXPECT_GT(rep.instances_checked, 0u);
  EXPECT_GE(rep.downgraded_levels, 1);
  bool hit = false;
  for (const auto& w : rep.witnesses)
    if (w.kind == ClaimWitness::Kind::kParallelContradicted &&
        w.group == forced_group && w.level == forced_level)
      hit = true;
  EXPECT_TRUE(hit) << rep.str();
  // The downgrade restored the truthful flag.
  EXPECT_FALSE(mx.sched.groups[static_cast<std::size_t>(forced_group)]
                   .levels[static_cast<std::size_t>(forced_level)]
                   .parallel);
}

/// acc += a[i] over `n` iterations: the accumulator chain is a genuine
/// loop-carried dependence whose must-piece has `n` instances.
Module reduction_module(i64 n) {
  Module m;
  i64 g = m.add_global("a", (n + 1) * 8);
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg base = b.const_(g);
  Reg nn = b.const_(n);
  b.counted_loop(0, nn, 1, [&](Reg iv) {  // a[i] = i
    Reg p = b.add(base, b.muli(iv, 8));
    b.store(p, iv);
  });
  Reg acc = b.const_(0);
  b.counted_loop(0, nn, 1, [&](Reg iv) {  // acc += a[i]
    Reg p = b.add(base, b.muli(iv, 8));
    Reg v = b.load(p);
    b.add(acc, v, acc);
  });
  b.ret(acc);
  return m;
}

TEST(Oracle, CappedPiecesAreDecidedExactly) {
  // 6000 iterations blow the 4096-instance enumeration cap: the oracle
  // must route those pieces through the exact integer walk (counted as
  // capped) and still accept the honest schedule with zero witnesses.
  Module m = reduction_module(6000);
  core::Pipeline pipe(m);
  core::ProfileResult r = pipe.run();
  ASSERT_FALSE(r.truncated);
  feedback::RegionMetrics mx = r.analyze(r.whole_program());
  ASSERT_TRUE(mx.analyzable);
  ClaimReport rep = check_parallel_claims(r.program, mx, /*downgrade=*/false);
  EXPECT_TRUE(rep.ok()) << rep.str();
  EXPECT_GE(rep.capped_pieces, 1u);
}

TEST(Oracle, CappedForcedClaimYieldsIntegerWitness) {
  // Same module, but with a parallel claim forced onto a carried level:
  // the exact walk over the capped piece must contradict it (the witness
  // comes from the Omega test, not from enumeration).
  Module m = reduction_module(6000);
  core::Pipeline pipe(m);
  core::ProfileResult r = pipe.run();
  feedback::RegionMetrics mx = r.analyze(r.whole_program());
  ASSERT_TRUE(mx.analyzable);
  bool forced = false;
  for (auto& grp : mx.sched.groups) {
    if (!grp.schedulable || forced) continue;
    for (auto& lv : grp.levels) {
      if (lv.carries && !lv.parallel) {
        lv.parallel = true;
        forced = true;
        break;
      }
    }
  }
  ASSERT_TRUE(forced) << "no carried level to corrupt";
  ClaimReport rep = check_parallel_claims(r.program, mx, /*downgrade=*/true);
  EXPECT_FALSE(rep.ok());
  EXPECT_GE(rep.capped_pieces, 1u);
  bool integer_witness = false;
  for (const auto& w : rep.witnesses)
    if (w.kind == ClaimWitness::Kind::kParallelContradicted &&
        w.message.find("integer instance") != std::string::npos)
      integer_witness = true;
  EXPECT_TRUE(integer_witness) << rep.str();
}

// The acceptance bar: on every mini-Rodinia workload, every dynamic
// dependence is covered by the static may-dependence set, every
// parallelism claim of the scheduler survives re-validation against the
// folded DDG, and the two static analyses nest (exact ⊆ may-dep, zero
// precision mismatches).
class RodiniaOracle : public ::testing::TestWithParam<std::string> {};

TEST_P(RodiniaOracle, DynamicSubsetOfStaticAndClaimsHold) {
  workloads::Workload w = workloads::make_rodinia(GetParam());
  core::Pipeline pipe(w.module);
  core::ProfileResult r = pipe.run();

  std::vector<feedback::RegionMetrics> metrics;
  for (const auto& region : r.hot_regions())
    metrics.push_back(r.analyze(region));
  std::vector<feedback::RegionMetrics*> ptrs;
  for (auto& mx : metrics) ptrs.push_back(&mx);

  OracleReport rep = run_oracle(w.module, r.program, ptrs);
  EXPECT_TRUE(rep.coverage.ok()) << rep.coverage.str();
  EXPECT_GT(rep.coverage.checked, 0u);
  EXPECT_TRUE(rep.precision.ok()) << rep.precision.str();
  for (const auto& c : rep.claims) EXPECT_TRUE(c.ok()) << c.str();
  EXPECT_TRUE(rep.ok());
  EXPECT_NE(rep.verdict_line().find("OK"), std::string::npos);
  EXPECT_NE(rep.verdict_line().find("exact precision ok"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, RodiniaOracle,
                         ::testing::ValuesIn(workloads::rodinia_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n)
                             if (c == '+') c = 'p';
                           return n;
                         });

}  // namespace
}  // namespace pp::verify
