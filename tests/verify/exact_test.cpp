#include "verify/exact.hpp"

#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "support/thread_pool.hpp"
#include "workloads/workloads.hpp"

namespace pp::verify::exact {
namespace {

using ir::Builder;
using ir::Function;
using ir::Module;
using ir::Reg;

int last_instr(const Function& f, int block) {
  return static_cast<int>(
             f.blocks[static_cast<std::size_t>(block)].instrs.size()) -
         1;
}

/// 2-D stencil with a fixed row stride:
///   for (i = 1..N) for (j = 1..N) A[i][j] = A[i-1][j] + A[i][j-1]
/// The canonical interchange-blocking example: flow deps (1,0) and (0,1).
/// Rows are kRow (> 2N) elements wide so the one-step-widened IV ranges
/// cannot let distinct (di, dj) combinations reach the same byte offset.
struct Stencil2D {
  static constexpr i64 kN = 8;
  static constexpr i64 kRow = 24;
  Module m;
  int store_b = -1, store_i = -1;
  int up_b = -1, up_i = -1;     // A[i-1][j]
  int left_b = -1, left_i = -1; // A[i][j-1]

  Stencil2D() {
    const i64 g = m.add_global("A", (kN + 1) * kRow * 8);
    Function& f = m.add_function("main", 0);
    Builder b(m, f);
    b.set_block(b.make_block());
    Reg base = b.const_(g);
    Reg n = b.const_(kN);
    b.counted_loop(1, n, 1, [&](Reg i) {
      b.counted_loop(1, n, 1, [&](Reg j) {
        Reg p = b.add(base, b.add(b.muli(i, kRow * 8), b.muli(j, 8)));
        Reg up = b.load(p, -kRow * 8);
        up_b = b.current_block();
        up_i = last_instr(f, up_b);
        Reg left = b.load(p, -8);
        left_b = b.current_block();
        left_i = last_instr(f, left_b);
        b.store(p, b.add(up, left));
        store_b = b.current_block();
        store_i = last_instr(f, store_b);
      });
    });
    b.ret();
  }
};

TEST(DepVectorGolden, InterchangeStencilDistances) {
  Stencil2D st;
  const ExactDeps ex(st.m, st.m.functions[0]);

  // Store A[i][j] feeds the A[i-1][j] read one outer iteration later.
  const auto up = ex.dep_vector(st.store_b, st.store_i, st.up_b, st.up_i);
  ASSERT_TRUE(up.has_value());
  ASSERT_EQ(up->loops.size(), 2u);
  EXPECT_EQ(up->dirs, "<=");
  ASSERT_TRUE(up->dist[0].has_value());
  ASSERT_TRUE(up->dist[1].has_value());
  EXPECT_EQ(*up->dist[0], 1);
  EXPECT_EQ(*up->dist[1], 0);

  // ... and the A[i][j-1] read one inner iteration later.
  const auto left =
      ex.dep_vector(st.store_b, st.store_i, st.left_b, st.left_i);
  ASSERT_TRUE(left.has_value());
  EXPECT_EQ(left->dirs, "=<");
  EXPECT_EQ(*left->dist[0], 0);
  EXPECT_EQ(*left->dist[1], 1);
}

TEST(DepVectorGolden, DiagonalTileKernel) {
  // for (i = 1..N) for (j = 1..N) A[i][j] = A[i-1][j-1]: one diagonal flow
  // dep, distance (1,1) — the classic legal-to-tile shape. Wide rows for
  // the same reason as in Stencil2D.
  constexpr i64 kN = 8;
  constexpr i64 kRow = 24;
  Module m;
  const i64 g = m.add_global("A", (kN + 1) * kRow * 8);
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg base = b.const_(g);
  Reg n = b.const_(kN);
  int sb = -1, si = -1, lb = -1, li = -1;
  b.counted_loop(1, n, 1, [&](Reg i) {
    b.counted_loop(1, n, 1, [&](Reg j) {
      Reg p = b.add(base, b.add(b.muli(i, kRow * 8), b.muli(j, 8)));
      Reg d = b.load(p, -kRow * 8 - 8);
      lb = b.current_block();
      li = last_instr(f, lb);
      b.store(p, d);
      sb = b.current_block();
      si = last_instr(f, sb);
    });
  });
  b.ret();

  const ExactDeps ex(m, f);
  const auto dv = ex.dep_vector(sb, si, lb, li);
  ASSERT_TRUE(dv.has_value());
  EXPECT_EQ(dv->dirs, "<<");
  ASSERT_TRUE(dv->dist[0].has_value());
  ASSERT_TRUE(dv->dist[1].has_value());
  EXPECT_EQ(*dv->dist[0], 1);
  EXPECT_EQ(*dv->dist[1], 1);
}

/// a[2i] store, a[2i] load, a[2i+1] load — the stride pair the rational
/// tester cannot separate but the integer test can.
struct EvenOdd {
  Module m;
  int store_b = -1, store_i = -1;
  int even_b = -1, even_i = -1;
  int odd_b = -1, odd_i = -1;

  EvenOdd() {
    const i64 g = m.add_global("a", 400);
    Function& f = m.add_function("main", 0);
    Builder b(m, f);
    b.set_block(b.make_block());
    Reg base = b.const_(g);
    Reg n = b.const_(10);
    b.counted_loop(0, n, 1, [&](Reg iv) {
      Reg p = b.add(base, b.muli(iv, 16));
      b.store(p, iv);
      store_b = b.current_block();
      store_i = last_instr(f, store_b);
      b.load(p);
      even_b = b.current_block();
      even_i = last_instr(f, even_b);
      b.load(p, 8);
      odd_b = b.current_block();
      odd_i = last_instr(f, odd_b);
    });
    b.ret();
  }
};

TEST(PairVerdicts, StrideDisjointIsIndependent) {
  EvenOdd eo;
  const ExactDeps ex(eo.m, eo.m.functions[0]);
  EXPECT_EQ(ex.pair_verdict(eo.store_b, eo.store_i, eo.odd_b, eo.odd_i),
            PairVerdict::kIndependent);
  EXPECT_EQ(ex.pair_verdict(eo.store_b, eo.store_i, eo.even_b, eo.even_i),
            PairVerdict::kDependent);
  // Self pairs carry no verdict: instance-distinctness is not modeled.
  EXPECT_EQ(ex.pair_verdict(eo.store_b, eo.store_i, eo.store_b, eo.store_i),
            PairVerdict::kUnknown);
}

TEST(SiteClasses, CleanAffineSitesAreStaticExact) {
  EvenOdd eo;
  const ExactDeps ex(eo.m, eo.m.functions[0]);
  EXPECT_EQ(ex.site_class(eo.store_b, eo.store_i),
            statican::AccessClass::kStaticExact);
  EXPECT_EQ(ex.site_class(eo.even_b, eo.even_i),
            statican::AccessClass::kStaticExact);
  const ExactDeps::Summary s = ex.summary();
  EXPECT_EQ(s.classes[0], 3);
  EXPECT_EQ(s.classes[1], 0);
  EXPECT_EQ(s.classes[2], 0);
  EXPECT_EQ(s.pairs, 2u);  // store-even and store-odd (load-load skipped)
  EXPECT_GE(s.independent, 1u);
  EXPECT_GE(s.dependent, 1u);
}

TEST(SiteClasses, UndecidablePartnerDowngradesCandidates) {
  // A non-affine access (iv*iv) in a LATER loop makes the store's pair
  // with it undecidable: the store's own block is clean (a kStaticExact
  // candidate), but the exact pass must drop it to weakly-dynamic.
  Module m;
  const i64 g = m.add_global("a", 400);
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg base = b.const_(g);
  Reg n = b.const_(5);
  int ob = -1, oi = -1, sb = -1, si = -1;
  b.counted_loop(0, n, 1, [&](Reg iv) {
    Reg q = b.add(base, b.muli(iv, 8));
    b.store(q, iv);
    sb = b.current_block();
    si = last_instr(f, sb);
  });
  b.counted_loop(0, n, 1, [&](Reg iv) {
    Reg p = b.add(base, b.mul(iv, iv));
    b.load(p);
    ob = b.current_block();
    oi = last_instr(f, ob);
  });
  b.ret();

  const ExactDeps ex(m, f);
  EXPECT_EQ(ex.site_class(ob, oi), statican::AccessClass::kDynamicRequired);
  EXPECT_EQ(ex.site_class(sb, si), statican::AccessClass::kWeaklyDynamic);
}

// --- selective plan -----------------------------------------------------

TEST(SelectivePlan, DisjointArraysAreSkippable) {
  // out[i] = a[i] + b[i] over three disjoint globals: three dependence-free
  // components (two load-only, one store-only), every site skippable.
  Module m;
  const i64 ga = m.add_global("a", 128);
  const i64 gb = m.add_global("b", 128);
  const i64 go = m.add_global("out", 128);
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg ra = b.const_(ga);
  Reg rb = b.const_(gb);
  Reg ro = b.const_(go);
  Reg n = b.const_(10);
  b.counted_loop(0, n, 1, [&](Reg iv) {
    Reg off = b.muli(iv, 8);
    Reg x = b.load(b.add(ra, off));
    Reg y = b.load(b.add(rb, off));
    b.store(b.add(ro, off), b.add(x, y));
  });
  b.ret();

  const ddg::SelectivePlan plan = compute_selective_plan(m);
  EXPECT_TRUE(plan.poison_reason.empty());
  EXPECT_EQ(plan.total_sites(), 3u);
  EXPECT_EQ(plan.groups, 3u);
}

TEST(SelectivePlan, OverlappingDependentPairBlocksItsComponent) {
  EvenOdd eo;
  // store a[2i] and load a[2i] conflict: their shared component is not
  // dependence-free, and it also swallows the independent odd load.
  const ddg::SelectivePlan plan = compute_selective_plan(eo.m);
  EXPECT_TRUE(plan.poison_reason.empty());
  EXPECT_EQ(plan.total_sites(), 0u);
  EXPECT_EQ(plan.groups, 0u);
}

TEST(SelectivePlan, StrideInterleavedButIndependentIsSkippable) {
  // store a[2i], load a[2i+1]: word ranges interleave (one component) but
  // the integer test proves every pair independent — skippable, which no
  // range-based argument could justify.
  Module m;
  const i64 g = m.add_global("a", 400);
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg base = b.const_(g);
  Reg n = b.const_(10);
  b.counted_loop(0, n, 1, [&](Reg iv) {
    Reg p = b.add(base, b.muli(iv, 16));
    b.store(p, iv);
    b.load(p, 8);
  });
  b.ret();

  const ddg::SelectivePlan plan = compute_selective_plan(m);
  EXPECT_TRUE(plan.poison_reason.empty());
  EXPECT_EQ(plan.total_sites(), 2u);
  EXPECT_EQ(plan.groups, 1u);
}

TEST(SelectivePlan, UnboundedAccessPoisonsTheWholePlan) {
  // A non-affine access could touch any address: even the provably
  // disjoint sites elsewhere must stay instrumented.
  Module m;
  const i64 g = m.add_global("a", 400);
  const i64 go = m.add_global("out", 128);
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg base = b.const_(g);
  Reg ro = b.const_(go);
  Reg n = b.const_(5);
  b.counted_loop(0, n, 1, [&](Reg iv) {
    Reg p = b.add(base, b.mul(iv, iv));
    b.load(p);
    b.store(b.add(ro, b.muli(iv, 8)), iv);
  });
  b.ret();

  const ddg::SelectivePlan plan = compute_selective_plan(m);
  EXPECT_EQ(plan.total_sites(), 0u);
  EXPECT_NE(plan.poison_reason.find("not statically bounded"),
            std::string::npos);
}

// --- report section -----------------------------------------------------

TEST(PrecisionSection, DeterministicAcrossPoolSizes) {
  Stencil2D st;
  support::ThreadPool pool(4);
  const std::string serial = precision_section(st.m);
  const std::string pooled = precision_section(st.m, &pool);
  EXPECT_EQ(serial, pooled);
  EXPECT_NE(serial.find("selective plan:"), std::string::npos);
  EXPECT_NE(serial.find("static-exact"), std::string::npos);
}

TEST(PrecisionSection, DeterministicOnAllRodiniaWorkloads) {
  support::ThreadPool pool(4);
  for (const std::string& name : workloads::rodinia_names()) {
    const workloads::Workload w = workloads::make_rodinia(name);
    const std::string serial = precision_section(w.module);
    const std::string pooled = precision_section(w.module, &pool);
    EXPECT_EQ(serial, pooled) << name;
    EXPECT_NE(serial.find("selective plan:"), std::string::npos) << name;
  }
}

}  // namespace
}  // namespace pp::verify::exact
