#include "verify/dataflow.hpp"

#include <gtest/gtest.h>

#include "ir/builder.hpp"

namespace pp::verify {
namespace {

using ir::Builder;
using ir::Function;
using ir::Module;
using ir::Reg;

TEST(BitVec, TransferAndMeet) {
  BitVec a(130), b(130);
  a.set(0);
  a.set(129);
  b.set(129);
  b.set(64);
  BitVec u = a;
  u.union_with(b);
  EXPECT_TRUE(u.test(0));
  EXPECT_TRUE(u.test(64));
  EXPECT_TRUE(u.test(129));
  BitVec i = a;
  i.intersect_with(b);
  EXPECT_FALSE(i.test(0));
  EXPECT_FALSE(i.test(64));
  EXPECT_TRUE(i.test(129));
}

/// Diamond CFG: e -> {t, el} -> j.
struct Diamond {
  Module m;
  Function* f;
  int e, t, el, j;
  Reg cond, x;

  Diamond() {
    f = &m.add_function("f", 1);
    Builder b(m, *f);
    e = b.make_block();
    t = b.make_block();
    el = b.make_block();
    j = b.make_block();
    b.set_block(e);
    cond = b.const_(0);   // e:0
    x = b.fresh();
    b.br_cond(cond, t, el);  // e:1
    b.set_block(t);
    b.const_(5, x);       // t:0 — x defined on the then path only
    b.br(j);              // t:1
    b.set_block(el);
    b.br(j);              // el:0
    b.set_block(j);
    b.mov(x);             // j:0 — use of x
    b.ret();              // j:1
  }
};

TEST(BlockGraph, SuccsPredsAndRpo) {
  Diamond d;
  BlockGraph g(*d.f);
  ASSERT_EQ(g.num_blocks(), 4u);
  EXPECT_EQ(g.succs[static_cast<std::size_t>(d.e)].size(), 2u);
  EXPECT_EQ(g.preds[static_cast<std::size_t>(d.j)].size(), 2u);
  // RPO starts at the entry and visits everything (all reachable).
  ASSERT_EQ(g.rpo.size(), 4u);
  EXPECT_EQ(g.rpo.front(), d.e);
  for (int bb = 0; bb < 4; ++bb) EXPECT_TRUE(g.reachable(bb));
}

TEST(BlockGraph, UnreachableBlockDetected) {
  Module m;
  Function& f = m.add_function("f", 0);
  Builder b(m, f);
  int e = b.make_block();
  int dead = b.make_block();
  b.set_block(e);
  b.ret();
  b.set_block(dead);
  b.ret();
  BlockGraph g(f);
  EXPECT_TRUE(g.reachable(e));
  EXPECT_FALSE(g.reachable(dead));
}

TEST(DomTree, DiamondDominance) {
  Diamond d;
  BlockGraph g(*d.f);
  DomTree dom(g);
  EXPECT_TRUE(dom.dominates(d.e, d.t));
  EXPECT_TRUE(dom.dominates(d.e, d.j));
  EXPECT_FALSE(dom.dominates(d.t, d.j));   // el path bypasses t
  EXPECT_FALSE(dom.dominates(d.el, d.j));
  EXPECT_TRUE(dom.dominates(d.j, d.j));    // reflexive
  EXPECT_EQ(dom.idom(d.j), d.e);
}

TEST(ReachingDefs, KilledAndMergedDefs) {
  Module m;
  Function& f = m.add_function("f", 0);
  Builder b(m, f);
  int e = b.make_block();
  int t = b.make_block();
  int j = b.make_block();
  b.set_block(e);
  Reg x = b.const_(1);   // e:0 first def of x
  Reg c = b.const_(0);   // e:1
  b.br_cond(c, t, j);    // e:2
  b.set_block(t);
  b.const_(2, x);        // t:0 redefinition
  b.br(j);               // t:1
  b.set_block(j);
  b.mov(x);              // j:0 use
  b.ret();               // j:1

  BlockGraph g(f);
  ReachingDefs rd(f, g);
  // Both defs merge at the join point.
  EXPECT_TRUE(rd.def_reaches(e, 0, j, 0));
  EXPECT_TRUE(rd.def_reaches(t, 0, j, 0));
  // The entry def is killed by t:0 before t's terminator.
  EXPECT_FALSE(rd.def_reaches(e, 0, t, 1));
}

TEST(ReachingDefs, LoopCarriedSelfUse) {
  // acc = acc + 1 inside a loop: the def at the add reaches its own use
  // around the back edge.
  Module m;
  Function& f = m.add_function("f", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg acc = b.const_(0);
  Reg n = b.const_(4);
  b.counted_loop(0, n, 1, [&](Reg) {
    b.addi(acc, 1, acc);  // body:0
  });
  b.ret(acc);
  BlockGraph g(f);
  ReachingDefs rd(f, g);
  // Locate the addi site: the single-instruction body block.
  int body = -1;
  for (const auto& bb : f.blocks)
    if (!bb.instrs.empty() && bb.instrs[0].op == ir::Op::kAddI &&
        bb.instrs[0].dst == acc)
      body = bb.id;
  ASSERT_GE(body, 0);
  EXPECT_TRUE(rd.def_reaches(body, 0, body, 0));
}

TEST(Liveness, LiveAcrossBranch) {
  Diamond d;
  BlockGraph g(*d.f);
  Liveness lv(*d.f, g);
  // cond is defined inside e (not upward-exposed); x is read at the join.
  EXPECT_FALSE(lv.live_in(d.e, d.cond));
  EXPECT_TRUE(lv.live_in(d.j, d.x));
  EXPECT_TRUE(lv.live_out(d.t, d.x));
}

TEST(MustDefined, OneSidedDefDoesNotDominateJoin) {
  Diamond d;
  BlockGraph g(*d.f);
  MustDefined md(*d.f, g);
  // The function argument r0 is defined everywhere.
  EXPECT_TRUE(md.defined_before(d.j, 0, 0));
  // x is defined on the then path only: not must-defined at the join.
  EXPECT_FALSE(md.defined_before(d.j, 0, d.x));
  // But it IS defined after t:0 within t.
  EXPECT_TRUE(md.defined_before(d.t, 1, d.x));
}

TEST(InstrUses, StoreReadsBothOperands) {
  ir::Instr st;
  st.op = ir::Op::kStore;
  st.a = 3;
  st.b = 7;
  auto uses = instr_uses(st);
  ASSERT_EQ(uses.size(), 2u);
  EXPECT_FALSE(instr_writes(st));
}

}  // namespace
}  // namespace pp::verify
