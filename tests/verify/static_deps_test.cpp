#include "verify/static_deps.hpp"

#include <gtest/gtest.h>

#include "ir/builder.hpp"

namespace pp::verify {
namespace {

using ir::Builder;
using ir::Function;
using ir::Module;
using ir::Reg;

/// One loop over a global array, with a store and two loads whose index
/// expressions are supplied by the caller:
///   for (i = 0..n) { a[2i] = i; x = a[2i]; y = a[2i+1]; }
struct EvenOdd {
  Module m;
  int store_b = -1, store_i = -1;     // a[2i] =
  int even_b = -1, even_i = -1;       // = a[2i]
  int odd_b = -1, odd_i = -1;         // = a[2i+1]

  EvenOdd() {
    i64 g = m.add_global("a", 400);
    Function& f = m.add_function("main", 0);
    Builder b(m, f);
    b.set_block(b.make_block());
    Reg base = b.const_(g);
    Reg n = b.const_(10);
    b.counted_loop(0, n, 1, [&](Reg iv) {
      Reg off = b.muli(iv, 16);  // 2i elements = 16 bytes
      Reg p = b.add(base, off);
      b.store(p, iv);
      store_b = b.current_block();
      store_i = static_cast<int>(
          f.blocks[static_cast<std::size_t>(store_b)].instrs.size()) - 1;
      b.load(p);
      even_b = b.current_block();
      even_i = static_cast<int>(
          f.blocks[static_cast<std::size_t>(even_b)].instrs.size()) - 1;
      b.load(p, 8);
      odd_b = b.current_block();
      odd_i = static_cast<int>(
          f.blocks[static_cast<std::size_t>(odd_b)].instrs.size()) - 1;
    });
    b.ret();
  }
};

TEST(MayDepSet, ModelsAllThreeAccesses) {
  EvenOdd eo;
  MayDepSet deps(eo.m, eo.m.functions[0]);
  EXPECT_TRUE(deps.modeled(eo.store_b, eo.store_i));
  EXPECT_TRUE(deps.modeled(eo.even_b, eo.even_i));
  EXPECT_TRUE(deps.modeled(eo.odd_b, eo.odd_i));
  const auto* st = deps.access(eo.store_b, eo.store_i);
  ASSERT_NE(st, nullptr);
  EXPECT_TRUE(st->is_store);
  EXPECT_TRUE(st->affine);
}

TEST(MayDepSet, GcdProvesEvenOddIndependent) {
  // a[2i] vs a[2j+1]: 16 | (address difference - 8) never holds.
  EvenOdd eo;
  MayDepSet deps(eo.m, eo.m.functions[0]);
  EXPECT_FALSE(deps.may_depend(eo.store_b, eo.store_i, eo.odd_b, eo.odd_i));
}

TEST(MayDepSet, SameIndexStaysDependent) {
  EvenOdd eo;
  MayDepSet deps(eo.m, eo.m.functions[0]);
  EXPECT_TRUE(deps.may_depend(eo.store_b, eo.store_i, eo.even_b, eo.even_i));
}

TEST(MayDepSet, LoadLoadIsNeverADependence) {
  EvenOdd eo;
  MayDepSet deps(eo.m, eo.m.functions[0]);
  EXPECT_FALSE(deps.may_depend(eo.even_b, eo.even_i, eo.odd_b, eo.odd_i));
}

TEST(MayDepSet, BanerjeeProvesDistantRangesIndependent) {
  // store a[i], load a[i + 100] with i in [0, 10]: the GCD test is blind
  // (gcd 8 divides 800) but the value ranges cannot meet.
  Module m;
  i64 g = m.add_global("a", 2000);
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg base = b.const_(g);
  Reg n = b.const_(10);
  int sb = -1, si = -1, lb = -1, li = -1;
  b.counted_loop(0, n, 1, [&](Reg iv) {
    Reg off = b.muli(iv, 8);
    Reg p = b.add(base, off);
    b.store(p, iv);
    sb = b.current_block();
    si = static_cast<int>(
        f.blocks[static_cast<std::size_t>(sb)].instrs.size()) - 1;
    b.load(p, 800);
    lb = b.current_block();
    li = static_cast<int>(
        f.blocks[static_cast<std::size_t>(lb)].instrs.size()) - 1;
  });
  b.ret();
  MayDepSet deps(m, f);
  ASSERT_TRUE(deps.modeled(sb, si));
  ASSERT_TRUE(deps.modeled(lb, li));
  EXPECT_FALSE(deps.may_depend(sb, si, lb, li));
}

TEST(MayDepSet, UnmodeledAccessFallsBackToMayDepend) {
  // Address computed as iv*iv: not affine, so the tester must stay
  // conservative for any pair involving it.
  Module m;
  i64 g = m.add_global("a", 400);
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg base = b.const_(g);
  Reg n = b.const_(5);
  int ob = -1, oi = -1, sb = -1, si = -1;
  b.counted_loop(0, n, 1, [&](Reg iv) {
    Reg sq = b.mul(iv, iv);
    Reg p = b.add(base, sq);
    b.load(p);
    ob = b.current_block();
    oi = static_cast<int>(
        f.blocks[static_cast<std::size_t>(ob)].instrs.size()) - 1;
    Reg q = b.add(base, b.muli(iv, 8));
    b.store(q, iv);
    sb = b.current_block();
    si = static_cast<int>(
        f.blocks[static_cast<std::size_t>(sb)].instrs.size()) - 1;
  });
  b.ret();
  MayDepSet deps(m, f);
  EXPECT_FALSE(deps.modeled(ob, oi));
  EXPECT_TRUE(deps.may_depend(ob, oi, sb, si));
  EXPECT_TRUE(deps.may_depend(sb, si, ob, oi));
}

TEST(MayDepSet, AllPairsContainsStoreLoadPair) {
  EvenOdd eo;
  MayDepSet deps(eo.m, eo.m.functions[0]);
  bool store_even = false, store_odd = false;
  for (const auto& p : deps.all_pairs()) {
    if (p.src_block == eo.store_b && p.src_instr == eo.store_i &&
        p.dst_block == eo.even_b && p.dst_instr == eo.even_i)
      store_even = true;
    if (p.src_block == eo.store_b && p.src_instr == eo.store_i &&
        p.dst_block == eo.odd_b && p.dst_instr == eo.odd_i)
      store_odd = true;
  }
  EXPECT_TRUE(store_even);   // may alias: in the set
  EXPECT_FALSE(store_odd);   // proven disjoint: pruned
}

}  // namespace
}  // namespace pp::verify
