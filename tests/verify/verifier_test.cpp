#include "verify/verifier.hpp"

#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "workloads/workloads.hpp"

namespace pp::verify {
namespace {

using ir::Builder;
using ir::Function;
using ir::Instr;
using ir::Module;
using ir::Op;
using ir::Reg;

Module clean_module() {
  Module m;
  i64 g = m.add_global("a", 80);
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg base = b.const_(g);
  Reg n = b.const_(10);
  b.counted_loop(0, n, 1, [&](Reg iv) {
    Reg off = b.muli(iv, 8);
    Reg p = b.add(base, off);
    b.store(p, iv);
  });
  b.ret();
  return m;
}

TEST(Verifier, CleanModuleHasNoErrors) {
  Module m = clean_module();
  VerifyReport rep = verify_module(m);
  EXPECT_TRUE(rep.ok()) << rep.str();
}

TEST(Verifier, DanglingBranchTarget) {
  Module m = clean_module();
  for (auto& bb : m.functions[0].blocks)
    if (bb.instrs.back().op == Op::kBr) bb.instrs.back().imm = 99;
  VerifyReport rep = verify_module(m);
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(rep.has(IssueCode::kBadBranchTarget)) << rep.str();
}

TEST(Verifier, MissingTerminator) {
  Module m = clean_module();
  Instr filler;
  filler.op = Op::kConst;
  filler.dst = 0;
  m.functions[0].blocks.front().instrs.back() = filler;
  VerifyReport rep = verify_module(m);
  EXPECT_TRUE(rep.has(IssueCode::kMissingTerminator)) << rep.str();
}

TEST(Verifier, MidBlockTerminator) {
  Module m = clean_module();
  auto& instrs = m.functions[0].blocks.front().instrs;
  Instr r;
  r.op = Op::kRet;
  instrs.insert(instrs.begin(), r);
  VerifyReport rep = verify_module(m);
  EXPECT_TRUE(rep.has(IssueCode::kMidBlockTerminator)) << rep.str();
}

TEST(Verifier, OutOfRangeRegister) {
  Module m = clean_module();
  m.functions[0].blocks.front().instrs.front().dst =
      m.functions[0].num_regs + 4;
  VerifyReport rep = verify_module(m);
  EXPECT_TRUE(rep.has(IssueCode::kBadRegister)) << rep.str();
}

TEST(Verifier, BadCallTargetAndArity) {
  Module m;
  Function& callee = m.add_function("callee", 2);
  {
    Builder b(m, callee);
    b.set_block(b.make_block());
    b.ret(0);
  }
  Function& f = m.add_function("main", 0);
  {
    Builder b(m, f);
    b.set_block(b.make_block());
    Reg x = b.const_(1);
    b.call(callee, {x});  // one arg, callee wants two
    b.ret();
  }
  VerifyReport rep = verify_module(m);
  EXPECT_TRUE(rep.has(IssueCode::kBadCallArity)) << rep.str();

  // Retarget the call to a nonexistent function.
  for (auto& bb : m.functions[1].blocks)
    for (auto& in : bb.instrs)
      if (in.op == Op::kCall) in.imm = 7;
  rep = verify_module(m);
  EXPECT_TRUE(rep.has(IssueCode::kBadCallTarget)) << rep.str();
}

TEST(Verifier, UseBeforeDefOnOnePath) {
  // Diamond where x is defined on one side only, then read at the join.
  Module m;
  Function& f = m.add_function("f", 1);
  Builder b(m, f);
  int e = b.make_block();
  int t = b.make_block();
  int el = b.make_block();
  int j = b.make_block();
  b.set_block(e);
  Reg x = b.fresh();
  b.br_cond(0, t, el);
  b.set_block(t);
  b.const_(5, x);
  b.br(j);
  b.set_block(el);
  b.br(j);
  b.set_block(j);
  b.mov(x);
  b.ret();
  VerifyReport rep = verify_module(m);
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(rep.has(IssueCode::kUseBeforeDef)) << rep.str();

  // Defining x on the other path too makes the module clean.
  Module m2;
  Function& f2 = m2.add_function("f", 1);
  Builder b2(m2, f2);
  e = b2.make_block();
  t = b2.make_block();
  el = b2.make_block();
  j = b2.make_block();
  b2.set_block(e);
  x = b2.fresh();
  b2.br_cond(0, t, el);
  b2.set_block(t);
  b2.const_(5, x);
  b2.br(j);
  b2.set_block(el);
  b2.const_(6, x);
  b2.br(j);
  b2.set_block(j);
  b2.mov(x);
  b2.ret();
  EXPECT_TRUE(verify_module(m2).ok()) << verify_module(m2).str();
}

TEST(Verifier, ProvablyMisalignedAccessRejected) {
  // a[8i + 4]: every element lands mid-word. statican models the access,
  // so the verifier can prove the misalignment statically.
  Module m;
  i64 g = m.add_global("a", 128);
  ASSERT_EQ(g % 8, 0) << "globals are word-aligned";
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg base = b.const_(g);
  Reg n = b.const_(10);
  b.counted_loop(0, n, 1, [&](Reg iv) {
    Reg off = b.muli(iv, 8);
    Reg p = b.add(base, off);
    b.store(p, iv, 4);  // +4: off the word grid
  });
  b.ret();
  VerifyReport rep = verify_module(m);
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(rep.has(IssueCode::kMisalignedAccess)) << rep.str();

  // The alignment pass honors the opt-out.
  VerifyOptions opts;
  opts.check_alignment = false;
  EXPECT_TRUE(verify_module(m, opts).ok());
}

TEST(Verifier, IssueLimitRespected) {
  Module m = clean_module();
  // Corrupt every instruction's destination register.
  for (auto& bb : m.functions[0].blocks)
    for (auto& in : bb.instrs) in.dst = 1000;
  VerifyOptions opts;
  opts.max_issues = 3;
  VerifyReport rep = verify_module(m, opts);
  EXPECT_FALSE(rep.ok());
  EXPECT_LE(rep.issues.size(), 3u);
}

// Every mini-Rodinia module is accepted — the verifier's false-positive
// guard across all real workloads.
class RodiniaVerify : public ::testing::TestWithParam<std::string> {};

TEST_P(RodiniaVerify, WorkloadVerifiesClean) {
  workloads::Workload w = workloads::make_rodinia(GetParam());
  VerifyReport rep = verify_module(w.module);
  EXPECT_TRUE(rep.ok()) << rep.str();
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, RodiniaVerify,
                         ::testing::ValuesIn(workloads::rodinia_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n)
                             if (c == '+') c = 'p';
                           return n;
                         });

}  // namespace
}  // namespace pp::verify
