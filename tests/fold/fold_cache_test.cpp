// Fast-path coverage for the algorithmic folder: stride-run absorption
// must be output-equivalent to point-at-a-time routing, the collapse
// guard must bound memory regardless of piece count, the canonical-form
// cache must share identical pieces without changing any output, and
// i128 template bounds past int64 must degrade instead of trapping.
#include <gtest/gtest.h>

#include <cstdint>

#include "fold/folder.hpp"

namespace pp::fold {
namespace {

using poly::PolySet;

// Deterministic xorshift-ish generator (no <random> to keep seeds stable
// across libstdc++ versions).
struct Rng {
  u64 state;
  explicit Rng(u64 seed) : state(seed * 6364136223846793005ULL + 1442695040888963407ULL) {}
  i64 next(i64 lo, i64 hi) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return lo + static_cast<i64>((state >> 33) %
                                 static_cast<u64>(hi - lo + 1));
  }
};

std::string describe(const PolySet& s) {
  std::string out;
  for (const auto& p : s.pieces()) {
    out += p.domain.str();
    out += " | ";
    out += p.label_fn.str();
    out += " | exact=";
    out += p.exact ? '1' : '0';
    out += " label_exact=";
    out += p.label_exact ? '1' : '0';
    out += " observed=";
    out += std::to_string(p.observed_points);
    out += '\n';
  }
  return out;
}

// Fold one stream with stride runs on and off; the outputs must match
// piece for piece (the run path is an equivalence-preserving fast path).
void expect_equivalent(const std::vector<std::vector<i64>>& pts,
                       const std::vector<std::vector<i64>>& labels,
                       std::size_t in_dim, std::size_t label_dim,
                       FolderOptions base = {}) {
  FolderOptions on = base, off = base;
  on.stride_runs = true;
  off.stride_runs = false;
  Folder f_on(in_dim, label_dim, on);
  Folder f_off(in_dim, label_dim, off);
  for (std::size_t k = 0; k < pts.size(); ++k) {
    f_on.add(pts[k], labels[k]);
    f_off.add(pts[k], labels[k]);
  }
  PolySet s_on = f_on.finish();
  PolySet s_off = f_off.finish();
  EXPECT_EQ(describe(s_on), describe(s_off));
}

TEST(StrideRuns, LongAffineRunMatchesPointAtATime) {
  std::vector<std::vector<i64>> pts, labels;
  for (i64 i = 0; i < 500; ++i) {
    pts.push_back({i});
    labels.push_back({3 * i - 7});
  }
  expect_equivalent(pts, labels, 1, 1);
}

TEST(StrideRuns, NestedLoopRunsMatchPointAtATime) {
  // 2-D nest: the inner loop is a stride run, the outer iteration breaks
  // it (column reset), exercising flush + restart each row.
  std::vector<std::vector<i64>> pts, labels;
  for (i64 i = 0; i < 20; ++i)
    for (i64 j = 0; j < 30; ++j) {
      pts.push_back({i, j});
      labels.push_back({5 * i + 2 * j + 1});
    }
  expect_equivalent(pts, labels, 2, 1);
}

TEST(StrideRuns, PiecewiseBreaksMatchPointAtATime) {
  // Label function switches mid-stream: the run breaks on the label
  // stride, not just the point stride.
  std::vector<std::vector<i64>> pts, labels;
  for (i64 i = 0; i < 40; ++i) {
    pts.push_back({i});
    labels.push_back({i < 20 ? 2 * i : 1000 - i});
  }
  expect_equivalent(pts, labels, 1, 1);
}

TEST(StrideRuns, NonMonotoneStreamMatchesPointAtATime) {
  // Duplicate and backwards points: the lexicographic forfeit must fire
  // at the same position on both paths.
  std::vector<std::vector<i64>> pts = {{0}, {1}, {2}, {2}, {2}, {1}, {0}};
  std::vector<std::vector<i64>> labels;
  for (const auto& p : pts) labels.push_back({p[0] * 4});
  expect_equivalent(pts, labels, 1, 1);
}

TEST(StrideRuns, CollapseTrippingStreamMatchesPointAtATime) {
  FolderOptions opts;
  opts.max_pieces = 4;
  std::vector<std::vector<i64>> pts, labels;
  for (i64 i = 0; i < 64; ++i) {
    pts.push_back({i});
    labels.push_back({(i * 7919) % 1000});
  }
  expect_equivalent(pts, labels, 1, 1, opts);
}

TEST(StrideRuns, FinishMidRunMatchesPointAtATime) {
  FolderOptions on, off;
  on.stride_runs = true;
  off.stride_runs = false;
  Folder f_on(1, 1, on), f_off(1, 1, off);
  for (i64 i = 0; i < 10; ++i) {
    i64 pt[1] = {i};
    f_on.add(pt, std::vector<i64>{i});
    f_off.add(pt, std::vector<i64>{i});
  }
  // finish() lands while a run is pending; it must flush and match.
  EXPECT_EQ(describe(f_on.finish()), describe(f_off.finish()));
  // The folder keeps streaming after finish on both paths.
  for (i64 i = 0; i < 6; ++i) {
    i64 pt[1] = {i};
    f_on.add(pt, std::vector<i64>{9 * i});
    f_off.add(pt, std::vector<i64>{9 * i});
  }
  EXPECT_EQ(describe(f_on.finish()), describe(f_off.finish()));
}

TEST(StrideRuns, RandomStreamSweepMatchesPointAtATime) {
  for (int seed = 0; seed < 40; ++seed) {
    Rng rng(static_cast<u64>(seed) + 17);
    std::size_t dim = static_cast<std::size_t>(rng.next(1, 3));
    std::size_t ldim = static_cast<std::size_t>(rng.next(0, 2));
    std::vector<std::vector<i64>> pts, labels;
    std::vector<i64> cur(dim, 0);
    int n = static_cast<int>(rng.next(5, 120));
    for (int k = 0; k < n; ++k) {
      // Mostly regular advance with occasional jumps/backsteps so runs of
      // every length (including none) appear.
      if (rng.next(0, 9) == 0) {
        for (auto& c : cur) c = rng.next(-20, 20);
      } else {
        cur[dim - 1] += rng.next(0, 2);
      }
      pts.push_back(cur);
      std::vector<i64> lab;
      for (std::size_t j = 0; j < ldim; ++j) {
        i64 v = 0;
        for (std::size_t i = 0; i < dim; ++i)
          v += static_cast<i64>(i + 2) * cur[i];
        // A sprinkling of non-affine noise fragments pieces.
        if (rng.next(0, 14) == 0) v += rng.next(1, 50);
        lab.push_back(v + static_cast<i64>(j));
      }
      labels.push_back(lab);
    }
    FolderOptions opts;
    opts.max_pieces = static_cast<std::size_t>(rng.next(3, 64));
    expect_equivalent(pts, labels, dim, ldim, opts);
  }
}

TEST(StrideRuns, HullFastPathHandlesDecreasingPivotRows) {
  // Regression: the fraction-free hull-membership fast path reduces with
  // suffix-only rescaling, which is sound only when rows are visited in
  // increasing pivot order. Basis discovery order (0,2) then (32,0)
  // produces RREF rows with pivots [1, 0]; the third point lies in their
  // affine hull (3/2·(0,2) − 1/2·(32,0)), and a wrong "outside" verdict
  // from the fast path makes absorb call extend_basis, which then traps
  // on the exact check. No labels, so routing always picks the MRU piece.
  std::vector<std::vector<i64>> pts = {{0, 2}, {32, 0}, {-16, 3}};
  std::vector<std::vector<i64>> labels = {{}, {}, {}};
  expect_equivalent(pts, labels, 2, 0);
}

TEST(CollapseGuard, StopsAccumulatingPiecesPastCap) {
  FolderOptions opts;
  opts.max_pieces = 4;
  Folder f(1, 1, opts);
  // Every point breaks the previous fit: thousands of closes. The guard
  // must keep the result at one collapsed piece and the full observed
  // count, without accumulating closed pieces past the cap internally.
  for (i64 i = 0; i < 4096; ++i) {
    i64 pt[1] = {i};
    f.add(pt, std::vector<i64>{(i * 7919) % 100003});
  }
  PolySet s = f.finish();
  ASSERT_EQ(s.pieces().size(), 1u);
  EXPECT_FALSE(s.pieces()[0].exact);
  EXPECT_EQ(s.pieces()[0].observed_points, 4096u);
  auto b = s.pieces()[0].domain.var_bounds(0);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->first, 0);
  EXPECT_EQ(b->second, 4095);
  // A second round after finish() starts clean.
  for (i64 i = 0; i < 8; ++i) {
    i64 pt[1] = {i};
    f.add(pt, std::vector<i64>{2 * i});
  }
  PolySet s2 = f.finish();
  ASSERT_EQ(s2.pieces().size(), 1u);
  EXPECT_TRUE(s2.pieces()[0].exact);
}

TEST(FoldCacheTest, IdenticalStreamsShareOnePiece) {
  FoldCache cache;
  FolderOptions opts;
  opts.cache = &cache;
  auto run = [&]() {
    Folder f(2, 1, opts);
    for (i64 i = 0; i < 8; ++i)
      for (i64 j = 0; j <= i; ++j) {
        i64 pt[2] = {i, j};
        f.add(pt, std::vector<i64>{10 * i + j});
      }
    return f.finish();
  };
  PolySet a = run();
  PolySet b = run();
  // The second fold's close is a cache hit and the outputs are identical.
  EXPECT_GE(cache.hits(), 1u);
  EXPECT_EQ(describe(a), describe(b));
  EXPECT_EQ(cache.size(), cache.misses());
}

TEST(FoldCacheTest, CachedAndUncachedOutputsMatch) {
  for (int seed = 0; seed < 20; ++seed) {
    Rng rng(static_cast<u64>(seed) * 131 + 5);
    std::vector<std::vector<i64>> pts, labels;
    std::vector<i64> cur = {0, 0};
    int n = static_cast<int>(rng.next(10, 80));
    for (int k = 0; k < n; ++k) {
      cur[1] += rng.next(0, 2);
      if (rng.next(0, 7) == 0) {
        cur[0] += 1;
        cur[1] = rng.next(-5, 5);
      }
      pts.push_back(cur);
      labels.push_back({cur[0] * 3 - cur[1] +
                        (rng.next(0, 9) == 0 ? rng.next(1, 9) : 0)});
    }
    FoldCache cache;
    FolderOptions cached, plain;
    cached.cache = &cache;
    Folder f_cached(2, 1, cached);
    Folder f_plain(2, 1, plain);
    for (std::size_t k = 0; k < pts.size(); ++k) {
      f_cached.add(pts[k], labels[k]);
      f_plain.add(pts[k], labels[k]);
    }
    // Fold the same stream twice through the cache so the second pass
    // hits; all three outputs must be identical.
    PolySet first = f_cached.finish();
    for (std::size_t k = 0; k < pts.size(); ++k) f_cached.add(pts[k], labels[k]);
    PolySet second = f_cached.finish();
    PolySet reference = f_plain.finish();
    EXPECT_EQ(describe(first), describe(reference));
    EXPECT_EQ(describe(second), describe(reference));
  }
}

TEST(OverflowRegression, OctagonSumPastInt64DegradesInsteadOfTrapping) {
  // Octagon sum/difference rows hold i128 bounds: with coordinates at the
  // int64 extremes the difference x - y reaches 2^64 - 3 > INT64_MAX.
  // The seed folder trapped ("i128 value exceeds int64 range"); now the
  // offending bound is dropped and the piece degrades to inexact.
  const i64 M = std::numeric_limits<i64>::max();
  Folder f(2, 0);
  {
    i64 pt[2] = {M - 1, -M};
    f.add(pt, {});
  }
  {
    i64 pt[2] = {M, -M};
    f.add(pt, {});
  }
  {
    i64 pt[2] = {M, -M + 1};
    f.add(pt, {});
  }
  PolySet s;
  EXPECT_NO_THROW(s = f.finish());
  ASSERT_EQ(s.pieces().size(), 1u);
  EXPECT_FALSE(s.pieces()[0].exact);
  EXPECT_EQ(s.pieces()[0].observed_points, 3u);
  // The single-variable bounds survive; only the wild pair rows dropped.
  auto bx = s.pieces()[0].domain.var_bounds(0);
  ASSERT_TRUE(bx.has_value());
  EXPECT_EQ(bx->first, M - 1);
  EXPECT_EQ(bx->second, M);
}

TEST(OctagonCount, ClosedFormAgreesWithEnumeration) {
  // Random 2-D streams: the closed-form 2-D octagon counter decides
  // exactness; it must agree with what public enumeration reports for
  // the emitted domain.
  for (int seed = 0; seed < 30; ++seed) {
    Rng rng(static_cast<u64>(seed) * 977 + 3);
    Folder f(2, 0);
    i64 lo = rng.next(-8, 0), hi = rng.next(1, 9);
    bool tri = rng.next(0, 1) == 1;
    u64 fed = 0;
    for (i64 i = lo; i <= hi; ++i)
      for (i64 j = lo; j <= (tri ? i : hi); ++j) {
        i64 pt[2] = {i, j};
        f.add(pt, {});
        ++fed;
      }
    if (fed == 0) continue;
    PolySet s = f.finish();
    ASSERT_EQ(s.pieces().size(), 1u);
    const auto& p = s.pieces()[0];
    auto n = p.domain.count_points();
    ASSERT_TRUE(n.has_value());
    EXPECT_EQ(p.exact, *n == p.observed_points) << "seed " << seed;
    EXPECT_TRUE(p.exact) << "seed " << seed;  // dense nests fold exactly
  }
}

}  // namespace
}  // namespace pp::fold
