#include "fold/folded_ddg.hpp"

#include <gtest/gtest.h>

#include "ir/builder.hpp"

namespace pp::fold {
namespace {

using ir::Builder;
using ir::Function;
using ir::Module;
using ir::Op;
using ir::Reg;

struct Pipeline {
  cfg::ControlStructure cs;
  std::unique_ptr<ddg::DdgBuilder> builder;
  FoldedProgram prog;
};

void run(const Module& m, Pipeline& p, FolderOptions fopts = {}) {
  {
    vm::Machine machine(m);
    cfg::DynamicCfgBuilder dyn;
    machine.set_observer(&dyn);
    machine.run("main");
    p.cs = cfg::ControlStructure::build(dyn, {m.find_function("main")->id});
  }
  FoldingSink sink(fopts);
  {
    vm::Machine machine(m);
    p.builder = std::make_unique<ddg::DdgBuilder>(m, p.cs, &sink);
    machine.set_observer(p.builder.get());
    machine.run("main");
  }
  p.prog = sink.finalize(p.builder->statements());
}

// a[i] = i for i in 0..n-1, then s += a[i] in a second loop.
Module two_loop_module(i64 n) {
  Module m;
  i64 g = m.add_global("a", n * 8);
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg base = b.const_(g);
  Reg nreg = b.const_(n);
  b.counted_loop(0, nreg, 1, [&](Reg iv) {
    Reg off = b.muli(iv, 8);
    Reg ptr = b.add(base, off);
    b.store(ptr, iv);
  });
  Reg acc = b.const_(0);
  b.counted_loop(0, nreg, 1, [&](Reg iv) {
    Reg off = b.muli(iv, 8);
    Reg ptr = b.add(base, off);
    Reg v = b.load(ptr);
    b.add(acc, v, acc);
  });
  b.ret(acc);
  return m;
}

TEST(FoldedDdg, InductionArithmeticRecognizedAsScev) {
  Module m = two_loop_module(16);
  Pipeline p;
  run(m, p);
  // The muli (iv * 8) statements produce affine values of the iteration
  // vector -> SCEV.
  int scev_mulis = 0;
  for (const auto& s : p.prog.statements) {
    if (s.meta.op == Op::kMulI && s.meta.depth == 1) {
      EXPECT_TRUE(s.is_scev);
      ++scev_mulis;
    }
  }
  EXPECT_EQ(scev_mulis, 2);
  EXPECT_GT(p.prog.pruned_dep_edges, 0u);
}

TEST(FoldedDdg, LoadsAndStoresAreNeverScev) {
  Module m = two_loop_module(16);
  Pipeline p;
  run(m, p);
  for (const auto& s : p.prog.statements) {
    if (s.meta.is_memory) {
      EXPECT_FALSE(s.is_scev);
    }
  }
}

TEST(FoldedDdg, AccessFunctionsFoldToStridedAffine) {
  Module m = two_loop_module(16);
  Pipeline p;
  run(m, p);
  int strided = 0;
  for (const auto& s : p.prog.statements) {
    if (!s.meta.is_memory || s.meta.depth != 1) continue;
    const poly::AffineMap* fn = s.affine_access();
    ASSERT_NE(fn, nullptr);
    EXPECT_EQ(s.stride_along(0).value(), 8);  // unit (8-byte) stride
    ++strided;
  }
  EXPECT_EQ(strided, 2);  // the store and the load
}

TEST(FoldedDdg, MemFlowDependenceFoldsToIdentityMap) {
  // Producer loop writes a[i], consumer loop reads a[i]: the folded
  // dependence relation maps consumer i -> producer i.
  Module m = two_loop_module(12);
  Pipeline p;
  run(m, p);
  bool found = false;
  for (const auto& d : p.prog.deps) {
    const auto& src = p.prog.stmt(d.src).meta;
    const auto& dst = p.prog.stmt(d.dst).meta;
    if (src.op == Op::kStore && dst.op == Op::kLoad) {
      ASSERT_EQ(d.relation.pieces().size(), 1u);
      const auto& piece = d.relation.pieces()[0];
      EXPECT_TRUE(piece.exact);
      EXPECT_EQ(piece.observed_points, 12u);
      // src coords = identity of dst coords.
      EXPECT_EQ(piece.label_fn.output(0).coeff(0), 1);
      EXPECT_EQ(piece.label_fn.output(0).const_term(), 0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(FoldedDdg, ReductionDependenceHasDistanceOne) {
  // acc += v: the add at iteration i reads the add at iteration i-1.
  Module m = two_loop_module(12);
  Pipeline p;
  run(m, p);
  bool found = false;
  for (const auto& d : p.prog.deps) {
    const auto& src = p.prog.stmt(d.src).meta;
    const auto& dst = p.prog.stmt(d.dst).meta;
    if (src.op == Op::kAdd && dst.op == Op::kAdd && d.src == d.dst) {
      for (const auto& piece : d.relation.pieces()) {
        if (piece.label_fn.out_dim() == 1 &&
            piece.label_fn.output(0).coeff(0) == 1 &&
            piece.label_fn.output(0).const_term() == -1)
          found = true;
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST(FoldedDdg, FullyAffineOpsCountsNonPointerChasingCode) {
  Module m = two_loop_module(16);
  Pipeline p;
  run(m, p);
  // The whole program is affine: the %Aff numerator should cover most
  // dynamic ops (everything except potentially boundary statements).
  EXPECT_GT(p.prog.fully_affine_ops(), p.prog.total_dynamic_ops / 2);
  EXPECT_LE(p.prog.fully_affine_ops(), p.prog.total_dynamic_ops);
}

TEST(FoldedDdg, PointerChasingIsNotAffine) {
  // Linked-list walk: addresses are loaded from memory, not affine in i.
  Module m;
  // nodes: [next, value] pairs; node k at offset 16k points to node k+1
  // pseudo-randomly shuffled to break affinity.
  std::vector<i64> words;
  const int n = 8;
  std::vector<int> order = {3, 6, 1, 7, 4, 0, 5, 2};
  words.resize(2 * n);
  for (int k = 0; k < n; ++k) {
    int nxt = (k + 1 < n) ? order[static_cast<std::size_t>(k + 1)] : -1;
    words[2 * static_cast<std::size_t>(order[static_cast<std::size_t>(k)])] =
        nxt < 0 ? -1 : nxt * 16;
    words[2 * static_cast<std::size_t>(order[static_cast<std::size_t>(k)]) + 1] =
        k;
  }
  Module mm;
  (void)mm;
  i64 g = m.add_global_init("nodes", words);
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  int entry = b.make_block();
  int header = b.make_block();
  int body = b.make_block();
  int exit_bb = b.make_block();
  b.set_block(entry);
  Reg cur = b.fresh();
  b.const_(g + order[0] * 16, cur);
  Reg acc = b.const_(0);
  Reg minus1 = b.const_(-1);
  b.br(header);
  b.set_block(header);
  Reg done = b.cmp(Op::kCmpEq, cur, minus1);
  b.br_cond(done, exit_bb, body);
  b.set_block(body);
  Reg v = b.load(cur, 8);
  b.add(acc, v, acc);
  Reg nxt = b.load(cur, 0);
  Reg goff = b.const_(g);
  Reg isend = b.cmp(Op::kCmpEq, nxt, minus1);
  int adv = b.make_block();
  int back = b.make_block();
  b.br_cond(isend, back, adv);
  b.set_block(adv);
  b.add(nxt, goff, cur);
  b.br(header);
  b.set_block(back);
  b.mov(minus1, cur);
  b.br(header);
  b.set_block(exit_bb);
  b.ret(acc);

  Pipeline p;
  run(m, p);
  // The value-load's addresses must NOT fold to a single exact affine
  // piece.
  bool checked = false;
  for (const auto& s : p.prog.statements) {
    if (s.meta.op == Op::kLoad && s.meta.depth == 1) {
      EXPECT_EQ(s.affine_access(), nullptr);
      checked = true;
    }
  }
  EXPECT_TRUE(checked);
  EXPECT_LT(p.prog.fully_affine_ops(), p.prog.total_dynamic_ops);
}

TEST(FoldedDdg, InterproceduralTwoDimensionalDomain) {
  // Outer loop in main calls kernel(i) which loops nj times storing into
  // a[i][j]: the store's folded domain is the full 2-D rectangle even
  // though the two loops live in different functions.
  const i64 ni = 5, nj = 7;
  Module m;
  i64 g = m.add_global("a", ni * nj * 8);
  Function& kernel = m.add_function("kernel", 1);
  {
    Builder b(m, kernel);
    b.set_block(b.make_block());
    Reg base = b.const_(g);
    Reg njr = b.const_(nj);
    Reg rowoff = b.muli(0, nj * 8);
    b.counted_loop(0, njr, 1, [&](Reg jv) {
      Reg off = b.muli(jv, 8);
      Reg ptr = b.add(base, off);
      Reg ptr2 = b.add(ptr, rowoff);
      b.store(ptr2, jv);
    });
    b.ret();
  }
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg nir = b.const_(ni);
  b.counted_loop(0, nir, 1, [&](Reg iv) { b.call(kernel, {iv}); });
  b.ret();

  Pipeline p;
  run(m, p);
  bool found = false;
  for (const auto& s : p.prog.statements) {
    if (s.meta.op != Op::kStore) continue;
    EXPECT_EQ(s.meta.depth, 2u);
    ASSERT_EQ(s.domain.pieces().size(), 1u);
    const auto& piece = s.domain.pieces()[0];
    EXPECT_TRUE(piece.exact);
    EXPECT_EQ(piece.observed_points, static_cast<u64>(ni * nj));
    // Access function: 56i + 8j + base.
    const poly::AffineMap* fn = s.affine_access();
    ASSERT_NE(fn, nullptr);
    EXPECT_EQ(fn->output(0).coeff(0), nj * 8);
    EXPECT_EQ(fn->output(0).coeff(1), 8);
    found = true;
  }
  EXPECT_TRUE(found);
}

TEST(FoldedDdg, MustRelationKeepsOnlyExactPieces) {
  // Affine program: every dependence piece is exact, so the must-relation
  // equals the full relation and coverage is 1.
  Module m = two_loop_module(12);
  Pipeline p;
  run(m, p);
  ASSERT_FALSE(p.prog.deps.empty());
  for (const auto& d : p.prog.deps) {
    if (!d.relation.all_exact()) continue;
    EXPECT_EQ(d.must_relation().pieces().size(), d.relation.pieces().size());
    EXPECT_DOUBLE_EQ(d.must_coverage(), 1.0);
  }
}

TEST(FoldedDdg, MustCoverageDropsForScrambledDeps) {
  // A permutation scatter/gather in one loop: the dependence collapses to
  // an over-approximate piece; its must-relation is empty and coverage 0.
  const i64 n = 160;
  Module m;
  std::vector<i64> perm(static_cast<std::size_t>(n));
  for (i64 i = 0; i < n; ++i)
    perm[static_cast<std::size_t>(i)] = (i * 79) % n;
  i64 g_perm = m.add_global_init("perm", perm);
  std::vector<i64> init(static_cast<std::size_t>(n), 1);
  i64 g_scr = m.add_global_init("scratch", init);
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg pbase = b.const_(g_perm);
  Reg sbase = b.const_(g_scr);
  Reg nr = b.const_(n);
  Reg acc = b.const_(0);
  b.counted_loop(0, nr, 1, [&](Reg i) {
    Reg ioff = b.muli(i, 8);
    Reg rp = b.add(sbase, ioff);
    Reg v = b.load(rp);
    b.add(acc, v, acc);
    Reg poff = b.muli(i, 8);
    Reg pp = b.add(pbase, poff);
    Reg tgt = b.load(pp);
    Reg toff = b.muli(tgt, 8);
    Reg sp = b.add(sbase, toff);
    b.store(sp, acc);
  });
  b.ret(acc);

  Pipeline p;
  run(m, p);
  bool found = false;
  for (const auto& d : p.prog.deps) {
    const auto& src = p.prog.stmt(d.src).meta;
    const auto& dst = p.prog.stmt(d.dst).meta;
    if (src.op != Op::kStore || dst.op != Op::kLoad) continue;
    found = true;
    EXPECT_LT(d.must_coverage(), 1.0);
    EXPECT_LT(d.must_relation().pieces().size(), d.relation.pieces().size());
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace pp::fold
