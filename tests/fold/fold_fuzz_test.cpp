// Property fuzzing of the streaming folder: whatever the input stream,
// the output must SOUNDLY describe it —
//  * every observed point lies in some output piece;
//  * every piece marked exact reconstructs its labels exactly on every
//    lattice point of its domain;
//  * the sum of observed_points equals the stream length;
//  * a piece is never marked exact when its domain holds lattice points
//    that were not observed.
#include <gtest/gtest.h>

#include <map>

#include "fold/folder.hpp"

namespace pp::fold {
namespace {

struct Stream {
  std::vector<std::vector<i64>> points;
  std::vector<std::vector<i64>> labels;
};

// Deterministic RNG.
struct Rng {
  u64 state;
  explicit Rng(u64 seed) : state(seed * 6364136223846793005ull + 1) {}
  i64 range(i64 lo, i64 hi) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return lo + static_cast<i64>((state >> 33) % static_cast<u64>(hi - lo + 1));
  }
};

// Checks the soundness contract of a fold against its input stream.
void check_sound(const Stream& in, const poly::PolySet& out,
                 std::size_t label_dim) {
  u64 total = 0;
  for (const auto& piece : out.pieces()) total += piece.observed_points;
  EXPECT_EQ(total, in.points.size());

  // Exact pieces reconstruct labels on the points they claim; since we
  // cannot ask which piece absorbed which point, check the weaker but
  // still sharp property: for every input point, SOME piece contains it,
  // and every exact piece containing it predicts its label.
  for (std::size_t k = 0; k < in.points.size(); ++k) {
    const auto& pt = in.points[k];
    bool contained = false;
    bool exact_match = false;
    bool any_exact_contains = false;
    for (const auto& piece : out.pieces()) {
      if (!piece.domain.contains(pt)) continue;
      contained = true;
      if (!piece.exact) continue;
      any_exact_contains = true;
      auto lab = piece.label_fn.eval(pt);
      bool ok = true;
      for (std::size_t j = 0; j < label_dim; ++j)
        if (lab[j] != in.labels[k][j]) ok = false;
      if (ok) exact_match = true;
    }
    EXPECT_TRUE(contained) << "point escaped the fold";
    if (any_exact_contains) {
      EXPECT_TRUE(exact_match)
          << "no exact piece containing the point predicts its label";
    }
  }

  // Exact pieces must not cover unobserved lattice points: their combined
  // lattice size equals their combined observed count only if each piece
  // individually matches (checked per piece).
  for (const auto& piece : out.pieces()) {
    if (!piece.exact) continue;
    auto n = piece.domain.count_points();
    ASSERT_TRUE(n.has_value());
    EXPECT_EQ(*n, piece.observed_points);
  }
}

class FoldFuzz : public ::testing::TestWithParam<int> {};

TEST_P(FoldFuzz, InterleavedPiecewiseStreams) {
  Rng rng(static_cast<u64>(GetParam()) * 7919 + 13);
  // K interleaved affine branches selected by (i + j) % K — an adversarial
  // piecewise pattern.
  const i64 K = rng.range(1, 3);
  const i64 ni = rng.range(2, 10), nj = rng.range(2, 10);
  std::vector<std::array<i64, 3>> fns;
  for (i64 k = 0; k < K; ++k)
    fns.push_back({rng.range(-4, 4), rng.range(-4, 4), rng.range(-40, 40)});
  Stream in;
  Folder f(2, 1);
  for (i64 i = 0; i < ni; ++i) {
    for (i64 j = 0; j < nj; ++j) {
      auto& fn = fns[static_cast<std::size_t>((i + j) % K)];
      i64 lab = fn[0] * i + fn[1] * j + fn[2];
      in.points.push_back({i, j});
      in.labels.push_back({lab});
      i64 pt[2] = {i, j};
      i64 lb[1] = {lab};
      f.add(pt, lb);
    }
  }
  check_sound(in, f.finish(), 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FoldFuzz, ::testing::Range(0, 40));

class FoldFuzzHoles : public ::testing::TestWithParam<int> {};

TEST_P(FoldFuzzHoles, RandomSubsetsNeverClaimExactness) {
  Rng rng(static_cast<u64>(GetParam()) * 104729 + 7);
  // Random ~50% subset of a box, constant labels: domains with holes.
  Stream in;
  Folder f(2, 1);
  for (i64 i = 0; i < 8; ++i) {
    for (i64 j = 0; j < 8; ++j) {
      if (rng.range(0, 1) == 0) continue;
      in.points.push_back({i, j});
      in.labels.push_back({7});
      i64 pt[2] = {i, j};
      i64 lb[1] = {7};
      f.add(pt, lb);
    }
  }
  if (in.points.empty()) return;
  poly::PolySet out = f.finish();
  check_sound(in, out, 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FoldFuzzHoles, ::testing::Range(0, 40));

class FoldFuzz3D : public ::testing::TestWithParam<int> {};

TEST_P(FoldFuzz3D, AffineVectorLabelsRoundTrip) {
  Rng rng(static_cast<u64>(GetParam()) * 31337 + 3);
  const i64 a = rng.range(1, 5), bdim = rng.range(1, 5), c = rng.range(1, 4);
  std::array<std::array<i64, 4>, 2> fns;
  for (auto& fn : fns)
    fn = {rng.range(-3, 3), rng.range(-3, 3), rng.range(-3, 3),
          rng.range(-20, 20)};
  Folder f(3, 2);
  u64 n = 0;
  for (i64 x = 0; x < a; ++x)
    for (i64 y = 0; y < bdim; ++y)
      for (i64 z = 0; z < c; ++z) {
        i64 pt[3] = {x, y, z};
        i64 lb[2] = {fns[0][0] * x + fns[0][1] * y + fns[0][2] * z + fns[0][3],
                     fns[1][0] * x + fns[1][1] * y + fns[1][2] * z + fns[1][3]};
        f.add(pt, lb);
        ++n;
      }
  poly::PolySet out = f.finish();
  ASSERT_EQ(out.pieces().size(), 1u);
  const auto& piece = out.pieces()[0];
  EXPECT_TRUE(piece.exact);
  EXPECT_EQ(piece.observed_points, n);
  auto pts = piece.domain.enumerate();
  ASSERT_TRUE(pts.has_value());
  for (const auto& pt : *pts) {
    auto lab = piece.label_fn.eval(pt);
    EXPECT_EQ(lab[0],
              fns[0][0] * pt[0] + fns[0][1] * pt[1] + fns[0][2] * pt[2] + fns[0][3]);
    EXPECT_EQ(lab[1],
              fns[1][0] * pt[0] + fns[1][1] * pt[1] + fns[1][2] * pt[2] + fns[1][3]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FoldFuzz3D, ::testing::Range(0, 40));

}  // namespace
}  // namespace pp::fold
