#include "fold/folder.hpp"

#include <gtest/gtest.h>

namespace pp::fold {
namespace {

using poly::PolySet;

void add1(Folder& f, i64 x, std::vector<i64> label) {
  i64 pt[1] = {x};
  f.add(pt, label);
}

void add2(Folder& f, i64 x, i64 y, std::vector<i64> label) {
  i64 pt[2] = {x, y};
  f.add(pt, label);
}

TEST(Folder, FoldsAffine1DStreamExactly) {
  Folder f(1, 1);
  for (i64 i = 0; i < 10; ++i) add1(f, i, {2 * i + 3});
  PolySet s = f.finish();
  ASSERT_EQ(s.pieces().size(), 1u);
  const auto& p = s.pieces()[0];
  EXPECT_TRUE(p.exact);
  EXPECT_EQ(p.observed_points, 10u);
  auto bounds = p.domain.var_bounds(0);
  ASSERT_TRUE(bounds.has_value());
  EXPECT_EQ(bounds->first, 0);
  EXPECT_EQ(bounds->second, 9);
  // Label function = 2x + 3.
  EXPECT_EQ(p.label_fn.output(0).coeff(0), 2);
  EXPECT_EQ(p.label_fn.output(0).const_term(), 3);
}

TEST(Folder, FoldsTriangularDomainExactly) {
  // {(i,j) : 0 <= j <= i <= 4}, label = 10i + j. Triangles need the
  // octagon template rows (i - j >= 0).
  Folder f(2, 1);
  for (i64 i = 0; i <= 4; ++i)
    for (i64 j = 0; j <= i; ++j) add2(f, i, j, {10 * i + j});
  PolySet s = f.finish();
  ASSERT_EQ(s.pieces().size(), 1u);
  const auto& p = s.pieces()[0];
  EXPECT_TRUE(p.exact);
  EXPECT_EQ(p.observed_points, 15u);
  EXPECT_EQ(p.domain.count_points().value(), 15u);
  EXPECT_EQ(p.label_fn.output(0).coeff(0), 10);
  EXPECT_EQ(p.label_fn.output(0).coeff(1), 1);
}

TEST(Folder, RectangularLoopNestMatchesPaperTable2Shape) {
  // backprop's layerforward loop shape: 0<=cj<=15, 0<=ck<=42, dependence
  // label (cj', ck') = (cj, ck-1) — the paper's I4->I4 row of Table 2.
  Folder f(2, 2);
  for (i64 cj = 0; cj <= 15; ++cj)
    for (i64 ck = 1; ck <= 42; ++ck) add2(f, cj, ck, {cj, ck - 1});
  PolySet s = f.finish();
  ASSERT_EQ(s.pieces().size(), 1u);
  const auto& p = s.pieces()[0];
  EXPECT_TRUE(p.exact);
  // Domain: 0<=cj<=15 and 1<=ck<=42.
  EXPECT_EQ(p.domain.var_bounds(0)->first, 0);
  EXPECT_EQ(p.domain.var_bounds(0)->second, 15);
  EXPECT_EQ(p.domain.var_bounds(1)->first, 1);
  EXPECT_EQ(p.domain.var_bounds(1)->second, 42);
  // cj' = cj + 0ck ; ck' = 0cj + ck - 1.
  EXPECT_EQ(p.label_fn.output(0).coeff(0), 1);
  EXPECT_EQ(p.label_fn.output(0).coeff(1), 0);
  EXPECT_EQ(p.label_fn.output(1).coeff(1), 1);
  EXPECT_EQ(p.label_fn.output(1).const_term(), -1);
}

TEST(Folder, PiecewiseLabelsSplitIntoTwoPieces) {
  Folder f(1, 1);
  for (i64 i = 0; i < 5; ++i) add1(f, i, {i});
  for (i64 i = 5; i < 10; ++i) add1(f, i, {100 + i});
  PolySet s = f.finish();
  ASSERT_EQ(s.pieces().size(), 2u);
  EXPECT_TRUE(s.pieces()[0].exact);
  EXPECT_TRUE(s.pieces()[1].exact);
  EXPECT_EQ(s.pieces()[0].observed_points, 5u);
  EXPECT_EQ(s.pieces()[1].observed_points, 5u);
  EXPECT_EQ(s.pieces()[1].label_fn.output(0).const_term(), 100);
}

TEST(Folder, DomainWithHolesIsOverApproximated) {
  // Even points only: the template polyhedron [0,8] has 9 lattice points
  // but only 5 were observed -> certified over-approximation.
  Folder f(1, 0);
  for (i64 i = 0; i <= 8; i += 2) {
    i64 pt[1] = {i};
    f.add(pt, {});
  }
  PolySet s = f.finish();
  ASSERT_EQ(s.pieces().size(), 1u);
  EXPECT_FALSE(s.pieces()[0].exact);
  EXPECT_EQ(s.pieces()[0].observed_points, 5u);
  EXPECT_FALSE(s.all_exact());
}

TEST(Folder, NonAffineLabelsNeverReportExactSinglePiece) {
  Folder f(1, 1);
  for (i64 i = 0; i < 32; ++i) add1(f, i, {i * i});
  PolySet s = f.finish();
  // Quadratic labels fragment into many pieces (or collapse); whatever the
  // piece structure, the fold must not claim a single exact affine piece.
  ASSERT_GE(s.pieces().size(), 1u);
  if (s.pieces().size() == 1) {
    EXPECT_FALSE(s.pieces()[0].exact);
  }
}

TEST(Folder, MaxPiecesCollapsesToOverApproximation) {
  FolderOptions opts;
  opts.max_pieces = 4;
  Folder f(1, 1, opts);
  // Random-ish labels force a chunk break at nearly every point.
  for (i64 i = 0; i < 64; ++i) add1(f, i, {(i * 7919) % 1000});
  PolySet s = f.finish();
  ASSERT_EQ(s.pieces().size(), 1u);
  EXPECT_FALSE(s.pieces()[0].exact);
  EXPECT_EQ(s.pieces()[0].observed_points, 64u);
  // The collapsed domain still covers the full range.
  auto b = s.pieces()[0].domain.var_bounds(0);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->first, 0);
  EXPECT_EQ(b->second, 63);
}

TEST(Folder, ZeroDimensionalSinglePoint) {
  Folder f(0, 1);
  f.add({}, std::vector<i64>{42});
  PolySet s = f.finish();
  ASSERT_EQ(s.pieces().size(), 1u);
  EXPECT_TRUE(s.pieces()[0].exact);
  EXPECT_EQ(s.pieces()[0].label_fn.output(0).const_term(), 42);
}

TEST(Folder, DuplicatePointForfeitsExactness) {
  Folder f(0, 0);
  f.add({}, {});
  f.add({}, {});  // a 0-dim statement observed twice: not a unique instance
  PolySet s = f.finish();
  ASSERT_EQ(s.pieces().size(), 1u);
  EXPECT_FALSE(s.pieces()[0].exact);
}

TEST(Folder, SkewedDiagonalDomainFoldsExactly) {
  // Wavefront-style band: points (i, j) with j = i (diagonal). The octagon
  // template pins i - j == 0 as an equality.
  Folder f(2, 0);
  for (i64 i = 0; i < 6; ++i) add2(f, i, i, {});
  PolySet s = f.finish();
  ASSERT_EQ(s.pieces().size(), 1u);
  EXPECT_TRUE(s.pieces()[0].exact);
  EXPECT_EQ(s.pieces()[0].domain.count_points().value(), 6u);
}

TEST(Folder, ContinuesStreamingAfterFinish) {
  Folder f(1, 1);
  for (i64 i = 0; i < 4; ++i) add1(f, i, {i});
  PolySet s1 = f.finish();
  EXPECT_EQ(s1.pieces().size(), 1u);
  for (i64 i = 0; i < 4; ++i) add1(f, i, {5 * i});
  PolySet s2 = f.finish();
  ASSERT_EQ(s2.pieces().size(), 1u);
  EXPECT_EQ(s2.pieces()[0].label_fn.output(0).coeff(0), 5);
}

TEST(Folder, ArityMismatchThrows) {
  Folder f(2, 1);
  i64 pt[1] = {0};
  EXPECT_THROW(f.add(pt, std::vector<i64>{1}), Error);
}

// Property sweep: random affine label over a random 2-D loop nest folds to
// a single exact piece that reconstructs the label everywhere.
class FoldRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(FoldRoundTrip, ReconstructsAffineLabels) {
  u64 state = static_cast<u64>(GetParam()) * 1442695040888963407ULL + 11;
  auto next = [&](int lo, int hi) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return lo + static_cast<int>((state >> 33) % static_cast<u64>(hi - lo + 1));
  };
  int ni = next(1, 8), nj = next(1, 8);
  i64 a = next(-5, 5), b = next(-5, 5), c = next(-50, 50);
  bool triangular = next(0, 1) == 1;
  Folder f(2, 1);
  u64 expected_pts = 0;
  for (i64 i = 0; i < ni; ++i) {
    for (i64 j = 0; j < (triangular ? i + 1 : nj); ++j) {
      add2(f, i, j, {a * i + b * j + c});
      ++expected_pts;
    }
  }
  PolySet s = f.finish();
  ASSERT_EQ(s.pieces().size(), 1u);
  const auto& p = s.pieces()[0];
  EXPECT_TRUE(p.exact);
  EXPECT_EQ(p.observed_points, expected_pts);
  // Verify the reconstructed function on every lattice point.
  auto pts = p.domain.enumerate();
  ASSERT_TRUE(pts.has_value());
  EXPECT_EQ(pts->size(), expected_pts);
  for (const auto& pt : *pts) {
    auto out = p.label_fn.eval(pt);
    EXPECT_EQ(out[0], a * pt[0] + b * pt[1] + c);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FoldRoundTrip, ::testing::Range(0, 60));

}  // namespace
}  // namespace pp::fold
