#include "fold/folder.hpp"

#include <cstdint>
#include <limits>
#include <gtest/gtest.h>

namespace pp::fold {
namespace {

using poly::PolySet;

void add1(Folder& f, i64 x, std::vector<i64> label) {
  i64 pt[1] = {x};
  f.add(pt, label);
}

void add2(Folder& f, i64 x, i64 y, std::vector<i64> label) {
  i64 pt[2] = {x, y};
  f.add(pt, label);
}

TEST(Folder, FoldsAffine1DStreamExactly) {
  Folder f(1, 1);
  for (i64 i = 0; i < 10; ++i) add1(f, i, {2 * i + 3});
  PolySet s = f.finish();
  ASSERT_EQ(s.pieces().size(), 1u);
  const auto& p = s.pieces()[0];
  EXPECT_TRUE(p.exact);
  EXPECT_EQ(p.observed_points, 10u);
  auto bounds = p.domain.var_bounds(0);
  ASSERT_TRUE(bounds.has_value());
  EXPECT_EQ(bounds->first, 0);
  EXPECT_EQ(bounds->second, 9);
  // Label function = 2x + 3.
  EXPECT_EQ(p.label_fn.output(0).coeff(0), 2);
  EXPECT_EQ(p.label_fn.output(0).const_term(), 3);
}

TEST(Folder, FoldsTriangularDomainExactly) {
  // {(i,j) : 0 <= j <= i <= 4}, label = 10i + j. Triangles need the
  // octagon template rows (i - j >= 0).
  Folder f(2, 1);
  for (i64 i = 0; i <= 4; ++i)
    for (i64 j = 0; j <= i; ++j) add2(f, i, j, {10 * i + j});
  PolySet s = f.finish();
  ASSERT_EQ(s.pieces().size(), 1u);
  const auto& p = s.pieces()[0];
  EXPECT_TRUE(p.exact);
  EXPECT_EQ(p.observed_points, 15u);
  EXPECT_EQ(p.domain.count_points().value(), 15u);
  EXPECT_EQ(p.label_fn.output(0).coeff(0), 10);
  EXPECT_EQ(p.label_fn.output(0).coeff(1), 1);
}

TEST(Folder, RectangularLoopNestMatchesPaperTable2Shape) {
  // backprop's layerforward loop shape: 0<=cj<=15, 0<=ck<=42, dependence
  // label (cj', ck') = (cj, ck-1) — the paper's I4->I4 row of Table 2.
  Folder f(2, 2);
  for (i64 cj = 0; cj <= 15; ++cj)
    for (i64 ck = 1; ck <= 42; ++ck) add2(f, cj, ck, {cj, ck - 1});
  PolySet s = f.finish();
  ASSERT_EQ(s.pieces().size(), 1u);
  const auto& p = s.pieces()[0];
  EXPECT_TRUE(p.exact);
  // Domain: 0<=cj<=15 and 1<=ck<=42.
  EXPECT_EQ(p.domain.var_bounds(0)->first, 0);
  EXPECT_EQ(p.domain.var_bounds(0)->second, 15);
  EXPECT_EQ(p.domain.var_bounds(1)->first, 1);
  EXPECT_EQ(p.domain.var_bounds(1)->second, 42);
  // cj' = cj + 0ck ; ck' = 0cj + ck - 1.
  EXPECT_EQ(p.label_fn.output(0).coeff(0), 1);
  EXPECT_EQ(p.label_fn.output(0).coeff(1), 0);
  EXPECT_EQ(p.label_fn.output(1).coeff(1), 1);
  EXPECT_EQ(p.label_fn.output(1).const_term(), -1);
}

TEST(Folder, PiecewiseLabelsSplitIntoTwoPieces) {
  Folder f(1, 1);
  for (i64 i = 0; i < 5; ++i) add1(f, i, {i});
  for (i64 i = 5; i < 10; ++i) add1(f, i, {100 + i});
  PolySet s = f.finish();
  ASSERT_EQ(s.pieces().size(), 2u);
  EXPECT_TRUE(s.pieces()[0].exact);
  EXPECT_TRUE(s.pieces()[1].exact);
  EXPECT_EQ(s.pieces()[0].observed_points, 5u);
  EXPECT_EQ(s.pieces()[1].observed_points, 5u);
  EXPECT_EQ(s.pieces()[1].label_fn.output(0).const_term(), 100);
}

TEST(Folder, DomainWithHolesIsOverApproximated) {
  // Even points only: the template polyhedron [0,8] has 9 lattice points
  // but only 5 were observed -> certified over-approximation.
  Folder f(1, 0);
  for (i64 i = 0; i <= 8; i += 2) {
    i64 pt[1] = {i};
    f.add(pt, {});
  }
  PolySet s = f.finish();
  ASSERT_EQ(s.pieces().size(), 1u);
  EXPECT_FALSE(s.pieces()[0].exact);
  EXPECT_EQ(s.pieces()[0].observed_points, 5u);
  EXPECT_FALSE(s.all_exact());
}

TEST(Folder, NonAffineLabelsNeverReportExactSinglePiece) {
  Folder f(1, 1);
  for (i64 i = 0; i < 32; ++i) add1(f, i, {i * i});
  PolySet s = f.finish();
  // Quadratic labels fragment into many pieces (or collapse); whatever the
  // piece structure, the fold must not claim a single exact affine piece.
  ASSERT_GE(s.pieces().size(), 1u);
  if (s.pieces().size() == 1) {
    EXPECT_FALSE(s.pieces()[0].exact);
  }
}

TEST(Folder, MaxPiecesCollapsesToOverApproximation) {
  FolderOptions opts;
  opts.max_pieces = 4;
  Folder f(1, 1, opts);
  // Random-ish labels force a chunk break at nearly every point.
  for (i64 i = 0; i < 64; ++i) add1(f, i, {(i * 7919) % 1000});
  PolySet s = f.finish();
  ASSERT_EQ(s.pieces().size(), 1u);
  EXPECT_FALSE(s.pieces()[0].exact);
  EXPECT_EQ(s.pieces()[0].observed_points, 64u);
  // The collapsed domain still covers the full range.
  auto b = s.pieces()[0].domain.var_bounds(0);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->first, 0);
  EXPECT_EQ(b->second, 63);
}

TEST(Folder, ZeroDimensionalSinglePoint) {
  Folder f(0, 1);
  f.add({}, std::vector<i64>{42});
  PolySet s = f.finish();
  ASSERT_EQ(s.pieces().size(), 1u);
  EXPECT_TRUE(s.pieces()[0].exact);
  EXPECT_EQ(s.pieces()[0].label_fn.output(0).const_term(), 42);
}

TEST(Folder, DuplicatePointForfeitsExactness) {
  Folder f(0, 0);
  f.add({}, {});
  f.add({}, {});  // a 0-dim statement observed twice: not a unique instance
  PolySet s = f.finish();
  ASSERT_EQ(s.pieces().size(), 1u);
  EXPECT_FALSE(s.pieces()[0].exact);
}

TEST(Folder, SkewedDiagonalDomainFoldsExactly) {
  // Wavefront-style band: points (i, j) with j = i (diagonal). The octagon
  // template pins i - j == 0 as an equality.
  Folder f(2, 0);
  for (i64 i = 0; i < 6; ++i) add2(f, i, i, {});
  PolySet s = f.finish();
  ASSERT_EQ(s.pieces().size(), 1u);
  EXPECT_TRUE(s.pieces()[0].exact);
  EXPECT_EQ(s.pieces()[0].domain.count_points().value(), 6u);
}

TEST(Folder, ContinuesStreamingAfterFinish) {
  Folder f(1, 1);
  for (i64 i = 0; i < 4; ++i) add1(f, i, {i});
  PolySet s1 = f.finish();
  EXPECT_EQ(s1.pieces().size(), 1u);
  for (i64 i = 0; i < 4; ++i) add1(f, i, {5 * i});
  PolySet s2 = f.finish();
  ASSERT_EQ(s2.pieces().size(), 1u);
  EXPECT_EQ(s2.pieces()[0].label_fn.output(0).coeff(0), 5);
}

TEST(Folder, ArityMismatchThrows) {
  Folder f(2, 1);
  i64 pt[1] = {0};
  EXPECT_THROW(f.add(pt, std::vector<i64>{1}), Error);
}

// Property sweep: random affine label over a random 2-D loop nest folds to
// a single exact piece that reconstructs the label everywhere.
class FoldRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(FoldRoundTrip, ReconstructsAffineLabels) {
  u64 state = static_cast<u64>(GetParam()) * 1442695040888963407ULL + 11;
  auto next = [&](int lo, int hi) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return lo + static_cast<int>((state >> 33) % static_cast<u64>(hi - lo + 1));
  };
  int ni = next(1, 8), nj = next(1, 8);
  i64 a = next(-5, 5), b = next(-5, 5), c = next(-50, 50);
  bool triangular = next(0, 1) == 1;
  Folder f(2, 1);
  u64 expected_pts = 0;
  for (i64 i = 0; i < ni; ++i) {
    for (i64 j = 0; j < (triangular ? i + 1 : nj); ++j) {
      add2(f, i, j, {a * i + b * j + c});
      ++expected_pts;
    }
  }
  PolySet s = f.finish();
  ASSERT_EQ(s.pieces().size(), 1u);
  const auto& p = s.pieces()[0];
  EXPECT_TRUE(p.exact);
  EXPECT_EQ(p.observed_points, expected_pts);
  // Verify the reconstructed function on every lattice point.
  auto pts = p.domain.enumerate();
  ASSERT_TRUE(pts.has_value());
  EXPECT_EQ(pts->size(), expected_pts);
  for (const auto& pt : *pts) {
    auto out = p.label_fn.eval(pt);
    EXPECT_EQ(out[0], a * pt[0] + b * pt[1] + c);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FoldRoundTrip, ::testing::Range(0, 60));

// add_run's contract: feeding (point, label, strides, n) is equivalent to
// n scalar add() calls advancing with 64-bit wrap — for any chunking, and
// whether or not the bulk O(1) extension branch triggers. The compacted
// DDG replay path leans on this for byte-identical folding.
class FolderAddRun : public ::testing::TestWithParam<int> {
 protected:
  std::uint32_t state_ = static_cast<std::uint32_t>(GetParam()) * 2654435761u + 12345u;
  i64 next(i64 lo, i64 hi) {
    state_ = state_ * 1664525u + 1013904223u;
    return lo + static_cast<i64>(state_ % static_cast<std::uint32_t>(hi - lo + 1));
  }
};

TEST_P(FolderAddRun, EquivalentToScalarAddsUnderAnyChunking) {
  // One innermost-striding run per "row", random chunk splits on the
  // bulk side, wrap-prone labels on some seeds.
  const i64 rows = next(1, 5), cols = next(2, 40);
  const i64 la = next(-4, 4), lb = next(-6, 6);
  const bool wrap = GetParam() % 5 == 0;
  const i64 lbase0 = wrap ? std::numeric_limits<i64>::max() - 7 : next(-9, 9);

  Folder scalar(2, 1), bulk(2, 1);
  for (i64 i = 0; i < rows; ++i) {
    // Scalar reference: wrap-advancing adds.
    i64 lab = static_cast<i64>(static_cast<u64>(lbase0) +
                               static_cast<u64>(la * i));
    for (i64 j = 0; j < cols; ++j) {
      i64 pt[2] = {i, j};
      i64 lv[1] = {lab};
      scalar.add(pt, lv);
      lab = static_cast<i64>(static_cast<u64>(lab) + static_cast<u64>(lb));
    }
    // Bulk side: the same row split into random add_run chunks.
    i64 j = 0;
    lab = static_cast<i64>(static_cast<u64>(lbase0) +
                           static_cast<u64>(la * i));
    while (j < cols) {
      i64 n = std::min<i64>(next(1, cols), cols - j);
      i64 pt[2] = {i, j};
      i64 lv[1] = {lab};
      i64 ps[2] = {0, 1};
      i64 ls[1] = {lb};
      bulk.add_run(pt, lv, ps, ls, static_cast<u64>(n));
      j += n;
      lab = static_cast<i64>(static_cast<u64>(lab) +
                             static_cast<u64>(lb * n));
    }
  }
  EXPECT_EQ(scalar.points_seen(), bulk.points_seen());
  poly::PolySet a = scalar.finish();
  poly::PolySet c = bulk.finish();
  EXPECT_EQ(a.str(), c.str());
}

TEST(FolderAddRunEdge, SinglePointRunEqualsAdd) {
  Folder scalar(1, 1), bulk(1, 1);
  for (i64 i = 0; i < 6; ++i) {
    i64 pt[1] = {i};
    i64 lv[1] = {3 * i - 1};
    scalar.add(pt, lv);
    i64 ps[1] = {1};
    i64 ls[1] = {3};
    bulk.add_run(pt, lv, ps, ls, 1);
  }
  EXPECT_EQ(scalar.finish().str(), bulk.finish().str());
}

TEST(FolderAddRunEdge, MixedScalarAndBulkStreams) {
  // Interleave add() and add_run() mid-row: the pending-run state must
  // absorb both without changing the folded result.
  Folder scalar(2, 1), mixed(2, 1);
  for (i64 i = 0; i < 3; ++i) {
    for (i64 j = 0; j < 12; ++j) {
      i64 pt[2] = {i, j};
      i64 lv[1] = {5 * i + 2 * j};
      scalar.add(pt, lv);
    }
    i64 head[2] = {i, 0};
    i64 hlab[1] = {5 * i};
    mixed.add(head, hlab);
    i64 pt[2] = {i, 1};
    i64 lv[1] = {5 * i + 2};
    i64 ps[2] = {0, 1};
    i64 ls[1] = {2};
    mixed.add_run(pt, lv, ps, ls, 11);
  }
  EXPECT_EQ(scalar.points_seen(), mixed.points_seen());
  EXPECT_EQ(scalar.finish().str(), mixed.finish().str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FolderAddRun, ::testing::Range(0, 40));

}  // namespace
}  // namespace pp::fold
