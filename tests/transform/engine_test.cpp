// Transformation-engine soundness contract (src/transform): every applied
// schedule must leave program output byte-identical, at every pipeline
// thread count; the report section is deterministic; an oracle-
// contradicted schedule is refused with a diagnostic; and when the oracle
// gate is forced off, an illegal rewrite is *reported* as a soundness
// violation instead of silently trusted.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "ir/builder.hpp"
#include "ir/loop_nest.hpp"
#include "transform/engine.hpp"
#include "workloads/workloads.hpp"

namespace pp::transform {
namespace {

// ---- output-identity harness over the whole mini-Rodinia suite --------

class TransformIdentity : public ::testing::TestWithParam<std::string> {};

TEST_P(TransformIdentity, AllAppliedSchedulesKeepOutputByteIdentical) {
  const std::string name = GetParam();
  std::string serial_section;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    workloads::Workload w = workloads::make_rodinia(name);
    core::PipelineOptions opts;
    opts.threads = threads;
    opts.apply_transforms = true;
    core::Pipeline pipe(w.module);
    core::ProfileResult r = pipe.run(opts);

    EXPECT_TRUE(r.transform.ok())
        << name << " t=" << threads << ": "
        << (r.transform.violations.empty() ? "" : r.transform.violations[0]);
    for (const Applied& a : r.transform.applied)
      EXPECT_TRUE(a.output_identical) << name << " t=" << threads << ": "
                                      << a.desc;
    EXPECT_TRUE(r.transform.combined_identical) << name << " t=" << threads;

    // The section is part of the byte-identical report contract: the
    // engine's plans and measurements must not depend on the profiling
    // pipeline's thread count.
    const std::string section = render_section(r.transform);
    if (threads == 1)
      serial_section = section;
    else
      EXPECT_EQ(section, serial_section) << name << " t=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, TransformIdentity,
                         ::testing::ValuesIn(workloads::rodinia_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n)
                             if (c == '+') c = 'p';
                           return n;
                         });

// ---- golden report section --------------------------------------------

TEST(TransformReport, KmeansSectionMatchesGolden) {
  workloads::Workload w = workloads::make_rodinia("kmeans");
  core::PipelineOptions opts;
  opts.threads = 1;
  opts.apply_transforms = true;
  core::Pipeline pipe(w.module);
  core::ProfileResult r = pipe.run(opts);
  ASSERT_TRUE(r.transform.ran);
  const std::string golden =
      "baseline: 168932 cycles under the transform cost model\n"
      "applied:\n"
      "  kmeans_clustering.c:140 (main)  tile 4x4 loops @140/@141  "
      "predicted 1.00x  measured 1.13x (168932 -> 149504 cycles)  "
      "output identical  [parallel outer]\n"
      "refused:\n"
      "  kmeans_clustering.c:160 (main)  interchange loops @160/@160: "
      "opaque dependences forced the identity schedule\n"
      "soundness: every applied schedule left program output "
      "byte-identical\n"
      "combined: 1.13x  output identical\n";
  EXPECT_EQ(render_section(r.transform), golden);
}

// ---- negative: oracle-contradicted schedules are refused ---------------

// A loop the profile proves serial: A[i] = A[i-1] + 1.
ir::Module build_serial_chain(i64 n) {
  ir::Module m;
  i64 ga = m.add_global("A", (n + 1) * 8);
  ir::Function& f = m.add_function("main", 0, "serial.c");
  ir::Builder b(m, f);
  b.set_block(b.make_block());
  ir::Reg a = b.const_(ga);
  ir::Reg nr = b.const_(n);
  b.store(a, b.const_(7));
  b.counted_loop(0, nr, 1, [&](ir::Reg i) {
    ir::Reg off = b.muli(i, 8);
    ir::Reg prev = b.load(b.add(a, off));
    ir::Reg next = b.addi(prev, 1);
    b.store(b.add(a, off), next, 8);
  });
  b.ret(b.load(a, static_cast<i64>(n) * 8));
  return m;
}

TEST(TransformOracle, DoctoredParallelClaimIsRefusedNotApplied) {
  ir::Module m = build_serial_chain(32);
  core::PipelineOptions popts;
  popts.threads = 1;
  popts.ddg.track_anti_output = true;
  core::Pipeline pipe(m);
  core::ProfileResult r = pipe.run(popts);
  ASSERT_FALSE(r.truncated);

  auto regions = r.hot_regions(0.05);
  ASSERT_FALSE(regions.empty());
  feedback::RegionMetrics mx = r.analyze(regions[0]);
  ASSERT_FALSE(mx.sched.groups.empty());
  // Doctor the schedule the way a corrupted (or downgraded-then-reused)
  // metrics object would look: claim every level parallel. The loop is
  // serial, so the oracle's must-evidence contradicts the claim.
  bool flipped = false;
  for (auto& g : mx.sched.groups)
    for (auto& lvl : g.levels)
      if (!lvl.parallel) lvl.parallel = flipped = true;
  ASSERT_TRUE(flipped) << "expected a serial level to doctor";

  Plan p;
  p.kind = Kind::kInterchange;
  p.site = "serial.c:1 (main)";
  p.desc = "interchange loops @1/@1";
  p.mx = mx;
  Options topts;
  EngineReport rep =
      apply_and_measure(m, r.program, {p}, "main", {}, topts);
  ASSERT_EQ(rep.applied.size(), 0u);
  ASSERT_EQ(rep.refused.size(), 1u);
  EXPECT_NE(rep.refused[0].reason.find("oracle contradicted the schedule"),
            std::string::npos)
      << rep.refused[0].reason;
  EXPECT_TRUE(rep.ok());
}

// ---- negative: forced illegal rewrite is reported, not dropped ---------

// A[i][j] = A[i-1][j+1] + i: dependence distance (1,-1), so interchange
// is illegal — the swapped order reads cells before they are written.
ir::Module build_interchange_illegal(i64 n) {
  ir::Module m;
  i64 ga = m.add_global("A", n * n * 8);
  ir::Function& f = m.add_function("main", 0, "illegal.c");
  ir::Builder b(m, f);
  b.set_block(b.make_block());
  ir::Reg a = b.const_(ga);
  ir::Reg nr = b.const_(n);
  ir::Reg n1 = b.const_(n * n);
  b.counted_loop(0, n1, 1, [&](ir::Reg k) {
    b.store(b.add(a, b.muli(k, 8)), k);
  });
  ir::Reg innerb = b.const_(n - 1);
  b.counted_loop(1, nr, 1, [&](ir::Reg i) {
    b.counted_loop(0, innerb, 1, [&](ir::Reg j) {
      ir::Reg im1 = b.addi(i, -1);
      ir::Reg jp1 = b.addi(j, 1);
      ir::Reg src = b.add(b.mul(im1, nr), jp1);
      ir::Reg v = b.load(b.add(a, b.muli(src, 8)));
      ir::Reg dst = b.add(b.mul(i, nr), j);
      b.store(b.add(a, b.muli(dst, 8)), b.add(v, i));
    });
  });
  b.ret();
  return m;
}

TEST(TransformForce, IllegalInterchangeReportedAsSoundnessViolation) {
  ir::Module m = build_interchange_illegal(8);
  core::PipelineOptions popts;
  popts.threads = 1;
  popts.ddg.track_anti_output = true;
  core::Pipeline pipe(m);
  core::ProfileResult r = pipe.run(popts);
  ASSERT_FALSE(r.truncated);

  // Hand-build the illegal plan: the kernel nest is the second loop pair.
  const ir::Function& f = *m.find_function("main");
  std::vector<ir::CountedLoop> loops = ir::find_counted_loops(f);
  Plan p;
  p.kind = Kind::kInterchange;
  p.func = f.id;
  for (const ir::CountedLoop& outer : loops)
    for (const ir::CountedLoop& inner : loops)
      if (outer.body == inner.preheader && inner.exit == outer.latch) {
        p.outer_header = outer.header;
        p.inner_header = inner.header;
      }
  ASSERT_GE(p.outer_header, 0);
  p.site = "illegal.c:1 (main)";
  p.desc = "interchange loops @1/@1";

  Options topts;
  topts.force = true;  // bypass the oracle gate — the identity check must
                       // catch the broken rewrite and say so
  EngineReport rep =
      apply_and_measure(m, r.program, {p}, "main", {}, topts);
  ASSERT_EQ(rep.applied.size(), 1u);
  EXPECT_FALSE(rep.applied[0].output_identical);
  EXPECT_FALSE(rep.ok());
  ASSERT_FALSE(rep.violations.empty());
  EXPECT_NE(rep.violations[0].find("output"), std::string::npos)
      << rep.violations[0];
}

}  // namespace
}  // namespace pp::transform
