#include "workloads/workloads.hpp"

#include <gtest/gtest.h>

#include "vm/vm.hpp"

namespace pp::workloads {
namespace {

TEST(Workloads, RegistryHasAllNineteen) {
  EXPECT_EQ(rodinia_names().size(), 19u);
}

TEST(Workloads, UnknownNameThrows) {
  EXPECT_THROW(make_rodinia("doom3"), Error);
}

// Parameterized over the whole suite: every benchmark verifies, runs to
// completion deterministically, and actually executes a nontrivial amount
// of work.
class RodiniaSuite : public ::testing::TestWithParam<std::string> {};

TEST_P(RodiniaSuite, BuildsVerifiesAndRuns) {
  Workload w = make_rodinia(GetParam());
  EXPECT_EQ(w.name, GetParam());
  EXPECT_GT(w.ld_src, 0);
  EXPECT_FALSE(w.region_hint.empty());
  ASSERT_NO_THROW(ir::verify(w.module));

  vm::Machine vm1(w.module);
  vm::RunResult r1 = vm1.run("main");
  EXPECT_GT(r1.stats.instructions, 1000u);

  vm::Machine vm2(w.module);
  vm::RunResult r2 = vm2.run("main");
  EXPECT_EQ(r1.exit_value, r2.exit_value);
  EXPECT_EQ(r1.stats.instructions, r2.stats.instructions);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, RodiniaSuite,
                         ::testing::ValuesIn(rodinia_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n)
                             if (c == '+') c = 'p';
                           return n;
                         });

TEST(Workloads, Fig6KernelRuns) {
  ir::Module m = make_backprop_fig6();
  ASSERT_NO_THROW(ir::verify(m));
  vm::Machine vm(m);
  vm::RunResult r = vm.run("main");
  // 16 columns x 43 rows of inner work.
  EXPECT_GE(r.stats.loads, 16u * 43u * 3u);
}

TEST(Workloads, BackpropTransformedComputesSameResult) {
  // The hand-applied transformation must preserve semantics: identical
  // checksums.
  ir::Module base = make_backprop();
  ir::Module tx = make_backprop_transformed();
  vm::Machine v1(base), v2(tx);
  EXPECT_EQ(v1.run("main").exit_value, v2.run("main").exit_value);
}

TEST(Workloads, BackpropTransformedIsFasterInCycleModel) {
  ir::Module base = make_backprop(16, 48);
  ir::Module tx = make_backprop_transformed(16, 48);
  vm::Machine v1(base), v2(tx);
  u64 c1 = v1.run("main").stats.cycles;
  u64 c2 = v2.run("main").stats.cycles;
  EXPECT_LT(c2, c1);  // interchange + expansion wins in the cache model
}

TEST(Workloads, GemsFdtdVariantsAgree) {
  ir::Module base = make_gemsfdtd();
  ir::Module tiled = make_gemsfdtd_tiled();
  vm::Machine v1(base), v2(tiled);
  EXPECT_EQ(v1.run("main").exit_value, v2.run("main").exit_value);
}

TEST(Workloads, GemsFdtdTilingReducesMisses) {
  ir::Module base = make_gemsfdtd(16, 16, 16);
  ir::Module tiled = make_gemsfdtd_tiled(16, 16, 16, 4);
  vm::Machine v1(base), v2(tiled);
  u64 m1 = v1.run("main").stats.cache_misses;
  u64 m2 = v2.run("main").stats.cache_misses;
  EXPECT_LT(m2, m1);
}

}  // namespace
}  // namespace pp::workloads
