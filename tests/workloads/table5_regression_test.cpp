// Table 5 regression harness: the full pipeline runs over every
// mini-Rodinia benchmark and the headline per-benchmark verdicts are
// pinned to expectation bands. This is what keeps the reproduction's
// "shape" stable: if a change to folding/scheduling silently flips a
// benchmark from affine to non-affine (or kills its parallelism), this
// suite catches it.
#include <gtest/gtest.h>

#include <future>

#include "core/pipeline.hpp"
#include "workloads/workloads.hpp"

namespace pp::workloads {
namespace {

struct Expectation {
  const char* name;
  double aff_min, aff_max;   // strict %Aff band
  int min_tile_depth;        // TileD of the hottest region, at least
  bool parallel;             // hottest region exposes parallelism
  bool interproc;            // any hot region spans functions
};

// Bands are deliberately loose (the exact values depend on workload
// constants) but tight enough to pin the paper-relevant shape:
// affine benchmarks stay high, lud/nn/particlefilter stay low,
// every schedulable benchmark keeps its tilable depth.
const Expectation kTable[] = {
    {"backprop",       70, 100, 2, true,  true},
    {"bfs",            30,  75, 2, true,  false},
    {"b+tree",         25,  70, 2, true,  false},
    {"cfd",            70, 100, 3, true,  false},
    {"heartwall",      60, 100, 2, true,  false},
    {"hotspot",        70, 100, 2, true,  false},
    {"hotspot3D",      85, 100, 3, true,  false},
    {"kmeans",         70, 100, 3, true,  false},
    {"lavaMD",         60, 100, 3, true,  false},
    {"leukocyte",      80, 100, 3, true,  false},
    {"lud",             0,  25, 1, true,  false},
    {"myocyte",        85, 100, 1, true,  false},
    {"nn",              5,  50, 1, true,  false},
    {"nw",             70, 100, 2, true,  false},
    {"particlefilter",  5,  40, 2, true,  false},
    {"pathfinder",     60, 100, 2, true,  false},
    {"srad_v1",        80, 100, 2, true,  true},
    {"srad_v2",        80, 100, 2, true,  true},
    {"streamcluster",  75, 100, 3, true,  false},
};

class Table5Regression : public ::testing::TestWithParam<Expectation> {};

TEST_P(Table5Regression, ShapeHolds) {
  const Expectation& e = GetParam();
  Workload w = make_rodinia(e.name);
  core::Pipeline pipe(w.module);
  core::ProfileResult r = pipe.run();

  double aff = r.percent_affine();
  EXPECT_GE(aff, e.aff_min) << e.name << " %Aff collapsed";
  EXPECT_LE(aff, e.aff_max) << e.name << " %Aff inflated";

  auto regions = r.hot_regions(0.05);
  ASSERT_FALSE(regions.empty());
  bool any_interproc = false;
  for (const auto& reg : regions) any_interproc |= reg.interprocedural;
  EXPECT_EQ(any_interproc, e.interproc) << e.name;

  feedback::RegionMetrics mx = r.analyze(regions[0]);
  EXPECT_GE(mx.tile_depth, e.min_tile_depth) << e.name;
  EXPECT_EQ(mx.parallel_ops > 0, e.parallel) << e.name;
  // Every benchmark folds into a nonempty DDG and prunes some bookkeeping.
  EXPECT_GT(r.program.statements.size(), 10u);
  EXPECT_GT(r.program.pruned_dep_edges, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, Table5Regression,
                         ::testing::ValuesIn(kTable),
                         [](const auto& info) {
                           std::string n = info.param.name;
                           for (char& c : n)
                             if (c == '+') c = 'p';
                           return n;
                         });

TEST(Table5Regression, ConcurrentPipelinesAreDeterministic) {
  // The Table 5 bench sweeps benchmarks on a thread pool; pipelines must
  // not share hidden state. Run the same benchmark concurrently and
  // compare headline numbers against a serial run.
  Workload w = make_rodinia("kmeans");
  core::Pipeline serial(w.module);
  core::ProfileResult base = serial.run();

  auto job = [&]() {
    Workload local = make_rodinia("kmeans");
    core::Pipeline pipe(local.module);
    core::ProfileResult r = pipe.run();
    return std::make_tuple(r.program.total_dynamic_ops,
                           r.program.statements.size(),
                           r.program.deps.size(), r.percent_affine());
  };
  auto f1 = std::async(std::launch::async, job);
  auto f2 = std::async(std::launch::async, job);
  auto a = f1.get();
  auto b = f2.get();
  auto expected = std::make_tuple(base.program.total_dynamic_ops,
                                  base.program.statements.size(),
                                  base.program.deps.size(),
                                  base.percent_affine());
  EXPECT_EQ(a, expected);
  EXPECT_EQ(b, expected);
}

}  // namespace
}  // namespace pp::workloads
