// End-to-end case-study checks: profile the backprop and GemsFDTD
// workloads through the full pipeline and verify the paper's qualitative
// findings (Tables 3 and 4).
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "workloads/workloads.hpp"

namespace pp::workloads {
namespace {

TEST(CaseStudy, BackpropFig6FoldsLikeTable2) {
  // The Fig. 6 kernel must fold the reduction dependence I4 -> I4 into a
  // single exact piece with (cj', ck') = (cj, ck - 1) over
  // 0<=cj<=15, 1<=ck<=42 (Table 2, last row).
  ir::Module m = make_backprop_fig6();
  core::Pipeline pipe(m);
  core::ProfileResult r = pipe.run();

  bool found = false;
  for (const auto& d : r.program.deps) {
    const auto& src = r.program.stmt(d.src).meta;
    const auto& dst = r.program.stmt(d.dst).meta;
    if (src.id != dst.id) continue;
    if (src.op != ir::Op::kFAdd || src.depth != 2) continue;
    ASSERT_EQ(d.relation.pieces().size(), 1u);
    const auto& piece = d.relation.pieces()[0];
    EXPECT_TRUE(piece.exact);
    // Domain 0<=cj<=15 and 1<=ck<=42.
    auto bj = piece.domain.var_bounds(0);
    auto bk = piece.domain.var_bounds(1);
    ASSERT_TRUE(bj && bk);
    EXPECT_EQ(bj->first, 0);
    EXPECT_EQ(bj->second, 15);
    EXPECT_EQ(bk->first, 1);
    EXPECT_EQ(bk->second, 42);
    // cj' = cj ; ck' = ck - 1.
    EXPECT_EQ(piece.label_fn.output(0).coeff(0), 1);
    EXPECT_EQ(piece.label_fn.output(0).coeff(1), 0);
    EXPECT_EQ(piece.label_fn.output(1).coeff(1), 1);
    EXPECT_EQ(piece.label_fn.output(1).const_term(), -1);
    found = true;
  }
  EXPECT_TRUE(found);
}

TEST(CaseStudy, Fig6InductionIncrementsAreScev) {
  // I5 (k = k + 1) and I8 (j = j + 1) fold to affine SCEVs and are pruned
  // from the DDG (paper §5: "This happens for example for instructions I5
  // and I8").
  ir::Module m = make_backprop_fig6();
  core::Pipeline pipe(m);
  core::ProfileResult r = pipe.run();
  int scev_incrs = 0;
  for (const auto& s : r.program.statements) {
    if (s.meta.op == ir::Op::kAddI && s.is_scev) ++scev_incrs;
  }
  EXPECT_GE(scev_incrs, 2);  // at least the k++ and j++ of the kernel
  EXPECT_GT(r.program.pruned_dep_edges, 0u);
}

TEST(CaseStudy, BackpropRegionsAreInterprocedural) {
  ir::Module m = make_backprop();
  core::Pipeline pipe(m);
  core::ProfileResult r = pipe.run();
  auto regions = r.hot_regions(0.05);
  ASSERT_GE(regions.size(), 2u);
  // The hot layerforward/adjust_weights calls span main + callee (+squash).
  int interproc = 0;
  for (const auto& reg : regions)
    if (reg.interprocedural) ++interproc;
  EXPECT_GE(interproc, 1);
}

TEST(CaseStudy, BackpropTable3Shape) {
  ir::Module m = make_backprop();
  core::Pipeline pipe(m);
  core::ProfileResult r = pipe.run();
  // Depth 2 drills into the individual calls inside bpnn_train (the
  // paper's per-call fat regions of Table 3).
  auto regions = r.hot_regions(0.10, /*depth=*/2);
  ASSERT_GE(regions.size(), 2u);
  // Analyze the two hottest regions (layerforward and adjust_weights).
  int fully_permutable_2d = 0;
  bool any_interchange = false;
  for (std::size_t i = 0; i < 2; ++i) {
    feedback::RegionMetrics mx = r.analyze(regions[i]);
    if (mx.tile_depth == 2) ++fully_permutable_2d;
    for (const auto& s : mx.suggestions)
      if (s.find("interchange") != std::string::npos) any_interchange = true;
    EXPECT_GT(mx.parallel_ops, 0u);
  }
  EXPECT_EQ(fully_permutable_2d, 2);  // Table 3: permutable (yes, yes) twice
  EXPECT_TRUE(any_interchange);       // Table 3: interchange suggested
}

TEST(CaseStudy, BackpropTopRegionIsBpnnTrain) {
  // At depth 1 the dominant region is the whole bpnn_train call — the
  // paper's Table 5 region "facetrain.c:25" with several fused components.
  ir::Module m = make_backprop();
  core::Pipeline pipe(m);
  core::ProfileResult r = pipe.run();
  auto regions = r.hot_regions(0.10);
  ASSERT_GE(regions.size(), 1u);
  EXPECT_NE(regions[0].name.find("bpnn_train"), std::string::npos);
  EXPECT_TRUE(regions[0].interprocedural);
  feedback::RegionMetrics mx = r.analyze(regions[0]);
  // Several sibling nests above the 5% threshold: C > 1, like the paper's
  // C=6 for the full training region.
  EXPECT_GT(mx.components_before, 1);
}

TEST(CaseStudy, BackpropSpecializationHintEmitted) {
  // Fig. 7's annotation "specialize adjustweight (2nd call)": the full
  // report must single out the dominated-by-one-call functions.
  ir::Module m = make_backprop();
  core::Pipeline pipe(m);
  core::ProfileResult r = pipe.run();
  std::string rep = core::full_report(r);
  EXPECT_NE(rep.find("specialization hints"), std::string::npos);
  EXPECT_NE(rep.find("specialize bpnn_adjust_weights"), std::string::npos);
  EXPECT_NE(rep.find("specialize bpnn_layerforward"), std::string::npos);
}

TEST(CaseStudy, GemsFdtdTable4Shape) {
  // Table 4: the update loops are fully parallel and tilable at depth 3.
  ir::Module m = make_gemsfdtd(8, 8, 8);
  core::Pipeline pipe(m);
  core::ProfileResult r = pipe.run();
  auto regions = r.hot_regions(0.05);
  ASSERT_GE(regions.size(), 1u);
  int deep_tilable = 0;
  for (const auto& reg : regions) {
    feedback::RegionMetrics mx = r.analyze(reg);
    if (mx.tile_depth >= 3 && mx.parallel_ops == mx.ops) ++deep_tilable;
  }
  EXPECT_GE(deep_tilable, 1);
}

}  // namespace
}  // namespace pp::workloads
