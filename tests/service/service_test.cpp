// pp::service contract tests: jobs submitted to the Server come back with
// the same byte-identical reports the library produces one-shot; cancels,
// deadlines, sheds and overload downgrades all land as *diagnosed*
// terminal outcomes, never hangs or throws; identical resubmissions are
// served from the result cache without re-profiling.
#include "service/service.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "workloads/workloads.hpp"

namespace pp::service {
namespace {

// One-shot library reference for a workload: what the service must match.
std::string serial_report(const ir::Module& m,
                          const core::PipelineOptions& base = {},
                          double min_fraction = 0.05) {
  core::PipelineOptions opts = base;
  opts.threads = 1;
  core::ProfileResult r = core::Pipeline(m).run(opts);
  return core::full_report(r, core::ReportOptions{min_fraction});
}

JobRequest request_for(const ir::Module& m, const std::string& name) {
  JobRequest req;
  req.module = &m;
  req.name = name;
  return req;
}

TEST(Service, SubmittedJobMatchesSerialReport) {
  workloads::Workload wl = workloads::make_rodinia("pathfinder");
  ServerOptions sopts;
  sopts.pool_threads = 4;
  Server server(sopts);

  JobHandle job = server.submit(request_for(wl.module, "pathfinder"));
  const JobOutcome& out = job->wait();

  EXPECT_EQ(out.state, JobState::kCompleted);
  EXPECT_FALSE(out.from_cache);
  EXPECT_FALSE(out.truncated);
  EXPECT_EQ(out.attempts, 1);
  EXPECT_EQ(out.report, serial_report(wl.module));
  EXPECT_EQ(out.report_fingerprint, obs::fnv1a(out.report));

  Server::Stats st = server.stats();
  EXPECT_EQ(st.submitted, 1u);
  EXPECT_EQ(st.completed, 1u);
  EXPECT_EQ(st.shed, 0u);
}

TEST(Service, CacheHitServedWithoutReprofiling) {
  workloads::Workload wl = workloads::make_rodinia("nw");
  ServerOptions sopts;
  sopts.pool_threads = 2;
  Server server(sopts);

  JobHandle first = server.submit(request_for(wl.module, "nw"));
  first->wait();
  ASSERT_EQ(first->wait().state, JobState::kCompleted);

  JobHandle second = server.submit(request_for(wl.module, "nw"));
  const JobOutcome& out = second->wait();
  EXPECT_EQ(out.state, JobState::kCompleted);
  EXPECT_TRUE(out.from_cache);
  EXPECT_EQ(out.attempts, 0);  // no pipeline run was paid for
  EXPECT_EQ(out.report, first->wait().report);
  EXPECT_NE(out.outcome_line.find("cache hit"), std::string::npos);

  Server::Stats st = server.stats();
  EXPECT_EQ(st.cache_hits, 1u);
  EXPECT_EQ(st.completed, 1u);  // executed once, served twice
}

TEST(Service, CacheKeyDistinguishesOptionsButNotThreads) {
  workloads::Workload wl = workloads::make_rodinia("nw");
  JobRequest a = request_for(wl.module, "nw");
  JobRequest b = a;
  b.pipeline.threads = 7;  // thread count must NOT change the key
  EXPECT_EQ(Server::fingerprint(a), Server::fingerprint(b));

  JobRequest c = a;
  c.pipeline.fold.max_pieces = 8;
  EXPECT_NE(Server::fingerprint(a), Server::fingerprint(c));
  JobRequest d = a;
  d.pipeline.args = {3};
  EXPECT_NE(Server::fingerprint(a), Server::fingerprint(d));

  workloads::Workload other = workloads::make_rodinia("pathfinder");
  JobRequest e = request_for(other.module, "nw");
  EXPECT_NE(Server::fingerprint(a), Server::fingerprint(e));
}

TEST(Service, ChaosCancelledJobDeliversDeterministicPartialReport) {
  workloads::Workload wl = workloads::make_rodinia("pathfinder");
  JobRequest req = request_for(wl.module, "pathfinder");
  req.pipeline.chaos.service = vm::ServiceFault::kCancelAtDdg;

  ServerOptions sopts;
  sopts.pool_threads = 2;
  Server server(sopts);
  JobHandle job = server.submit(req);
  const JobOutcome& out = job->wait();

  EXPECT_EQ(out.state, JobState::kCancelled);
  EXPECT_TRUE(out.truncated);
  EXPECT_NE(out.report.find("PARTIAL PROFILE"), std::string::npos);
  EXPECT_NE(out.report.find("cancelled"), std::string::npos);
  EXPECT_NE(out.outcome_line.find("cancelled"), std::string::npos);

  // The partial report is the same one the library yields one-shot.
  support::CancelToken token;
  core::PipelineOptions direct = req.pipeline;
  direct.threads = 1;
  direct.cancel = &token;
  core::ProfileResult r = core::Pipeline(wl.module).run(direct);
  EXPECT_EQ(out.report, core::full_report(r, core::ReportOptions{}));

  EXPECT_EQ(server.stats().cancelled, 1u);
}

TEST(Service, DeadlineExpiresLongJob) {
  workloads::Workload wl = workloads::make_rodinia("cfd");
  JobRequest req = request_for(wl.module, "cfd");
  req.deadline_ms = 1;  // cfd takes tens of milliseconds

  ServerOptions sopts;
  sopts.pool_threads = 2;
  Server server(sopts);
  JobHandle job = server.submit(req);
  const JobOutcome& out = job->wait();

  EXPECT_EQ(out.state, JobState::kDeadlineExpired);
  EXPECT_NE(out.outcome_line.find("deadline expired"), std::string::npos);
  EXPECT_EQ(server.stats().deadline_expired, 1u);
  // A report may or may not have been started; if present it is flagged.
  if (!out.report.empty())
    EXPECT_NE(out.report.find("PARTIAL PROFILE"), std::string::npos);
}

TEST(Service, ClientCancelStopsJobWithoutHanging) {
  workloads::Workload wl = workloads::make_rodinia("cfd");
  ServerOptions sopts;
  sopts.pool_threads = 2;
  Server server(sopts);
  JobHandle job = server.submit(request_for(wl.module, "cfd"));
  job->cancel();
  const JobOutcome& out = job->wait();
  // The cancel races job completion; both terminal states are legal, a
  // hang or throw is not.
  EXPECT_TRUE(out.state == JobState::kCancelled ||
              out.state == JobState::kCompleted);
}

TEST(Service, ChaosQueueFullShedsDeterministically) {
  workloads::Workload wl = workloads::make_rodinia("nw");
  JobRequest req = request_for(wl.module, "nw");
  req.pipeline.chaos.service = vm::ServiceFault::kQueueFull;

  Server server((ServerOptions()));
  JobHandle job = server.submit(req);
  const JobOutcome& out = job->wait();
  EXPECT_EQ(out.state, JobState::kShed);
  EXPECT_TRUE(out.report.empty());
  EXPECT_NE(out.outcome_line.find("queue full"), std::string::npos);
  EXPECT_EQ(server.stats().shed, 1u);
  EXPECT_EQ(server.stats().submitted, 0u);  // sheds are not admissions
}

TEST(Service, OverloadDowngradeCollapsesFoldAndDisablesOracle) {
  workloads::Workload wl = workloads::make_rodinia("pathfinder");
  ServerOptions sopts;
  sopts.executors = 1;
  sopts.pool_threads = 2;
  sopts.high_watermark = 1;  // overloaded from the first admission
  sopts.low_watermark = 0;   // and never recovers
  Server server(sopts);

  JobHandle job = server.submit(request_for(wl.module, "pathfinder"));
  const JobOutcome& out = job->wait();
  EXPECT_EQ(out.state, JobState::kCompleted);
  EXPECT_TRUE(out.downgraded);
  EXPECT_NE(out.outcome_line.find("downgraded under overload"),
            std::string::npos);
  EXPECT_NE(out.report.find("skipped (disabled by service overload downgrade)"),
            std::string::npos);
  EXPECT_EQ(server.stats().downgraded, 1u);

  // Downgraded results are lower fidelity: they must NOT enter the cache.
  JobHandle again = server.submit(request_for(wl.module, "pathfinder"));
  EXPECT_FALSE(again->wait().from_cache);
}

TEST(Service, QueueOverflowShedsWhenSaturated) {
  workloads::Workload slow = workloads::make_rodinia("cfd");
  workloads::Workload fast = workloads::make_rodinia("nw");
  ServerOptions sopts;
  sopts.executors = 1;
  sopts.pool_threads = 2;
  sopts.queue_capacity = 2;
  sopts.cache = false;  // identical fast jobs must all really queue
  Server server(sopts);

  // Occupy the single executor with a slow job, then overfill the queue.
  JobHandle blocker = server.submit(request_for(slow.module, "cfd"));
  std::vector<JobHandle> jobs;
  for (int i = 0; i < 6; ++i)
    jobs.push_back(server.submit(request_for(fast.module, "nw")));
  u64 shed = 0, completed = 0;
  for (const JobHandle& j : jobs) {
    const JobOutcome& out = j->wait();
    if (out.state == JobState::kShed) {
      ++shed;
      EXPECT_NE(out.outcome_line.find("queue full"), std::string::npos);
    } else {
      ++completed;
      EXPECT_EQ(out.state, JobState::kCompleted);
    }
  }
  blocker->wait();
  // The blocker may still be queued when the fast jobs arrive, so the
  // queue holds {1, 2} of them; either way capacity 2 cannot hold 6.
  EXPECT_GE(shed, 4u);
  EXPECT_GE(completed, 1u);
  EXPECT_EQ(completed + shed, 6u);
  EXPECT_EQ(server.stats().shed, shed);
}

TEST(Service, TransientChaosRetriedToCleanCompletion) {
  workloads::Workload wl = workloads::make_rodinia("pathfinder");
  JobRequest req = request_for(wl.module, "pathfinder");
  req.pipeline.chaos.kind = vm::FaultKind::kTruncate;
  req.pipeline.chaos.seed = 7;
  req.chaos_transient = true;  // the fault does not recur on retry
  req.max_attempts = 3;

  ServerOptions sopts;
  sopts.pool_threads = 2;
  Server server(sopts);
  JobHandle job = server.submit(req);
  const JobOutcome& out = job->wait();

  EXPECT_EQ(out.state, JobState::kCompleted);
  EXPECT_FALSE(out.truncated);  // the retry ran clean
  EXPECT_EQ(out.attempts, 2);
  EXPECT_EQ(server.stats().retries, 1u);
  EXPECT_EQ(out.report, serial_report(wl.module));
}

TEST(Service, PersistentChaosExhaustsRetriesWithPartialReport) {
  workloads::Workload wl = workloads::make_rodinia("pathfinder");
  JobRequest req = request_for(wl.module, "pathfinder");
  req.pipeline.chaos.kind = vm::FaultKind::kTruncate;
  req.pipeline.chaos.seed = 7;
  req.max_attempts = 2;  // chaos_transient off: the fault recurs

  ServerOptions sopts;
  sopts.pool_threads = 2;
  Server server(sopts);
  JobHandle job = server.submit(req);
  const JobOutcome& out = job->wait();
  EXPECT_EQ(out.state, JobState::kCompleted);
  EXPECT_TRUE(out.truncated);
  EXPECT_EQ(out.attempts, 2);
  EXPECT_NE(out.outcome_line.find("retries exhausted"), std::string::npos);
  EXPECT_NE(out.report.find("PARTIAL PROFILE"), std::string::npos);
  EXPECT_EQ(server.stats().retries, 1u);
}

TEST(Service, ObservedJobCarriesRunManifest) {
  workloads::Workload wl = workloads::make_rodinia("nw");
  ServerOptions sopts;
  sopts.pool_threads = 2;
  sopts.observe_jobs = true;
  Server server(sopts);
  JobHandle job = server.submit(request_for(wl.module, "nw"));
  const JobOutcome& out = job->wait();
  ASSERT_EQ(out.state, JobState::kCompleted);
  ASSERT_FALSE(out.manifest.empty());
  EXPECT_NE(out.manifest.find("\"workload\": \"nw\""), std::string::npos);
  EXPECT_NE(out.manifest.find("\"report_fingerprint\""), std::string::npos);
  // Service-level counters are exported through the server session.
  std::string svc = server.observability().manifest_json();
  EXPECT_NE(svc.find("service.submitted"), std::string::npos);
  EXPECT_NE(svc.find("service.completed"), std::string::npos);
}

TEST(Service, ShutdownDrainsQueuedJobs) {
  workloads::Workload wl = workloads::make_rodinia("nw");
  ServerOptions sopts;
  sopts.executors = 1;
  sopts.pool_threads = 2;
  sopts.cache = false;
  Server server(sopts);
  std::vector<JobHandle> jobs;
  for (int i = 0; i < 4; ++i)
    jobs.push_back(server.submit(request_for(wl.module, "nw")));
  server.shutdown();  // drain: queued jobs still run to completion
  for (const JobHandle& j : jobs)
    EXPECT_EQ(j->wait().state, JobState::kCompleted);
  // Post-shutdown submissions are shed, not silently dropped.
  JobHandle late_job = server.submit(request_for(wl.module, "nw"));
  const JobOutcome& late = late_job->wait();
  EXPECT_EQ(late.state, JobState::kShed);
  EXPECT_NE(late.outcome_line.find("shutting down"), std::string::npos);
}

TEST(Service, ShutdownCancelPendingStopsEverything) {
  workloads::Workload wl = workloads::make_rodinia("cfd");
  ServerOptions sopts;
  sopts.executors = 1;
  sopts.pool_threads = 2;
  sopts.cache = false;
  Server server(sopts);
  std::vector<JobHandle> jobs;
  for (int i = 0; i < 3; ++i)
    jobs.push_back(server.submit(request_for(wl.module, "cfd")));
  server.shutdown(/*cancel_pending=*/true);
  for (const JobHandle& j : jobs) {
    const JobOutcome& out = j->wait();
    EXPECT_TRUE(out.state == JobState::kCancelled ||
                out.state == JobState::kCompleted)
        << job_state_name(out.state);
  }
}

TEST(Service, NullModuleIsShedWithDiagnosis) {
  Server server((ServerOptions()));
  JobRequest req;  // no module
  JobHandle job = server.submit(req);
  const JobOutcome& out = job->wait();
  EXPECT_EQ(out.state, JobState::kShed);
  EXPECT_NE(out.outcome_line.find("no module"), std::string::npos);
}

}  // namespace
}  // namespace pp::service
