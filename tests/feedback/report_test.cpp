#include "feedback/report.hpp"

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "ir/builder.hpp"

namespace pp::feedback {
namespace {

using ir::Builder;
using ir::Function;
using ir::Module;
using ir::Reg;

Reg elem_ptr_helper(Builder& b, Reg base, Reg i) {
  Reg off = b.muli(i, 8);
  return b.add(base, off);
}

// A 2-D nest with a reduction: exercises all AST decorations.
Module reduction_nest() {
  Module m;
  i64 g = m.add_global("a", 16 * 16 * 8);
  Function& f = m.add_function("main", 0, "red.c");
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg a = b.const_(g);
  Reg n = b.const_(16);
  b.set_line(3);
  b.counted_loop(0, n, 1, [&](Reg i) {
    Reg acc = b.fconst(0.0);
    b.set_line(4);
    b.counted_loop(0, n, 1, [&](Reg j) {
      Reg row = b.mul(i, n);
      Reg cell = b.add(row, j);
      Reg off = b.muli(cell, 8);
      Reg p = b.add(a, off);
      Reg v = b.load(p);
      b.fadd(acc, v, acc);
    });
    Reg off = b.muli(i, 8);
    Reg p = b.add(a, off);
    b.store(p, acc);
  });
  b.ret();
  return m;
}

TEST(Report, AstShowsLoopsStatementsAndBands) {
  Module m = reduction_nest();
  core::Pipeline pipe(m);
  core::ProfileResult r = pipe.run();
  auto regions = r.hot_regions(0.2);
  ASSERT_GE(regions.size(), 1u);
  RegionMetrics mx = analyze_region(r.program, regions[0]);
  std::string ast = render_ast(mx, r.program, &m);
  EXPECT_NE(ast.find("for t0"), std::string::npos);
  EXPECT_NE(ast.find("for t1"), std::string::npos);
  EXPECT_NE(ast.find("red.c"), std::string::npos);
  EXPECT_NE(ast.find("[load]"), std::string::npos);
  EXPECT_NE(ast.find("fully permutable: tilable"), std::string::npos);
  // Execution counts are shown per statement.
  EXPECT_NE(ast.find("x256"), std::string::npos);
}

TEST(Report, SummaryContainsAllMetricLines) {
  Module m = reduction_nest();
  core::Pipeline pipe(m);
  core::ProfileResult r = pipe.run();
  auto regions = r.hot_regions(0.2);
  RegionMetrics mx = analyze_region(r.program, regions[0]);
  std::string s = summarize(mx);
  for (const char* needle :
       {"ops=", "loop depth (binary)=", "tile depth=", "parallel ops=",
        "reuse=", "components:", "estimated speedup"}) {
    EXPECT_NE(s.find(needle), std::string::npos) << "missing " << needle;
  }
}

TEST(Report, UnschedulableRegionSaysSo) {
  // Scatter writes through a pseudo-random permutation, then read back in
  // index order: the memory dependence's source coordinates are the
  // inverse permutation — non-affine, so the dependence folder collapses
  // and the scheduler must refuse the region.
  const i64 n = 160;
  Module m;
  std::vector<i64> perm(static_cast<std::size_t>(n));
  // Multiplicative permutation with a large multiplier: consecutive
  // labels wrap nearly every step, so the dependence folder exceeds its
  // piece budget and collapses to an over-approximation.
  for (i64 i = 0; i < n; ++i)
    perm[static_cast<std::size_t>(i)] = (i * 79) % n;
  i64 g_perm = m.add_global_init("perm", perm);
  std::vector<i64> scratch_init(static_cast<std::size_t>(n), 1);
  i64 g_scr = m.add_global_init("scratch", scratch_init);
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg pbase = b.const_(g_perm);
  Reg sbase = b.const_(g_scr);
  Reg nr = b.const_(n);
  Reg acc = b.const_(0);
  // Scatter and gather in the SAME loop: iteration i reads scratch[i]
  // (written by the permuted store of an arbitrary earlier iteration) and
  // stores to scratch[perm[i]].
  b.counted_loop(0, nr, 1, [&](Reg i) {
    Reg v = b.load(elem_ptr_helper(b, sbase, i));
    b.add(acc, v, acc);
    Reg tgt = b.load(elem_ptr_helper(b, pbase, i));
    Reg sp = elem_ptr_helper(b, sbase, tgt);
    b.store(sp, acc);
  });
  b.ret(acc);

  core::Pipeline pipe(m);
  core::ProfileResult r = pipe.run();
  feedback::Region whole = r.whole_program();
  RegionMetrics mx = analyze_region(r.program, whole);
  ASSERT_FALSE(mx.schedulable);
  std::string ast = render_ast(mx, r.program, &m);
  EXPECT_NE(ast.find("NOT schedulable"), std::string::npos);
  bool has_note = false;
  for (const auto& sg : mx.suggestions)
    if (sg.find("non-affine") != std::string::npos) has_note = true;
  EXPECT_TRUE(has_note);
}

TEST(Report, DecoratedTreeMapsSourceLines) {
  Module m = reduction_nest();
  core::Pipeline pipe(m);
  core::ProfileResult r = pipe.run();
  std::string tree = render_decorated_tree(r.schedule_tree, r.program, &m);
  EXPECT_NE(tree.find("<program> 100%"), std::string::npos);
  EXPECT_NE(tree.find("loop("), std::string::npos);
  EXPECT_NE(tree.find("red.c:4"), std::string::npos);  // inner loop line
  EXPECT_NE(tree.find("red.c:3"), std::string::npos);  // outer loop line
}

TEST(Report, FullReportBundlesEverything) {
  Module m = reduction_nest();
  core::Pipeline pipe(m);
  core::ProfileResult r = pipe.run();
  std::string rep = core::full_report(r);
  for (const char* needle :
       {"poly-prof feedback report", "SCEV-pruned", "decorated schedule tree",
        "regions of interest", "estimated speedup", "for t0",
        "-- degradations --"}) {
    EXPECT_NE(rep.find(needle), std::string::npos) << "missing " << needle;
  }
  // A clean run's degradation section is exactly "none".
  EXPECT_NE(rep.find("-- degradations --\nnone\n"), std::string::npos);
}

TEST(Report, DegradationsRenderDeterministically) {
  // Golden check: the same faulty run renders the identical degradation
  // section twice, and the section carries the flag, the degraded-
  // statement count and every diagnostic line in insertion order.
  Module m = reduction_nest();
  core::PipelineOptions opts;
  opts.budget.coord_pool_words = 32;  // trips early in the 16x16 nest
  core::Pipeline pipe(m);
  core::ProfileResult r = pipe.run(opts);
  ASSERT_TRUE(r.truncated);
  ASSERT_GT(r.program.degraded_statements, 0u);

  std::string rep1 = core::full_report(r);
  std::string rep2 = core::full_report(r);
  EXPECT_EQ(rep1, rep2);

  std::size_t at = rep1.find("-- degradations --");
  ASSERT_NE(at, std::string::npos);
  std::string section = rep1.substr(at);
  EXPECT_NE(section.find("trace truncated: results are a partial profile"),
            std::string::npos);
  EXPECT_NE(section.find("statement(s) degraded to over-approximation"),
            std::string::npos);
  EXPECT_NE(section.find("[warn] ddg: coordinate-pool budget exhausted"),
            std::string::npos);
  // And the whole run is reproducible: a second faulty run renders the
  // same report (seeded, deterministic degradation order).
  core::ProfileResult r2 = pipe.run(opts);
  EXPECT_EQ(rep1, core::full_report(r2));
}

TEST(Report, StaticBaselineSectionIsGoldenAndDeterministic) {
  Module m = reduction_nest();
  core::Pipeline pipe(m);
  core::ProfileResult r = pipe.run();
  std::string rep1 = core::full_report(r);
  EXPECT_EQ(rep1, core::full_report(r)) << "report not deterministic";
  auto section = [](const std::string& rep) {
    auto b = rep.find("-- static baseline --");
    EXPECT_NE(b, std::string::npos);
    auto e = rep.find("\n\n", b);
    return rep.substr(b, e == std::string::npos ? std::string::npos : e - b);
  };
  EXPECT_EQ(section(rep1),
            "-- static baseline --\n"
            "main: affine  loops 2/2  nest-depth 2  accesses 2/2");
}

TEST(Report, FullReportCarriesOracleVerdict) {
  Module m = reduction_nest();
  core::Pipeline pipe(m);
  core::ProfileResult r = pipe.run();
  std::string rep = core::full_report(r);
  EXPECT_NE(rep.find("-- soundness oracle --"), std::string::npos);
  EXPECT_NE(rep.find("soundness oracle: OK"), std::string::npos);
  EXPECT_EQ(rep.find("VIOLATED"), std::string::npos);
}

TEST(Report, UnanalyzableRegionSummaryRenders) {
  RegionMetrics m;
  m.region.name = "bad.c:1 (broken)";
  m.analyzable = false;
  m.degrade_reason = "scheduler fault";
  m.ops = 123;
  std::string s = summarize(m);
  EXPECT_EQ(s,
            "region bad.c:1 (broken)\n"
            "  UNANALYZABLE: scheduler fault\n"
            "  ops=123 (counted; no metrics derived)\n");
}

}  // namespace
}  // namespace pp::feedback
