#include "feedback/flamegraph.hpp"

#include <gtest/gtest.h>

namespace pp::feedback {
namespace {

iiv::DynScheduleTree sample_tree() {
  iiv::DynScheduleTree t;
  // main -> loop -> stmt (+ a small sibling)
  t.insert({{{iiv::CtxElem::block(0, 0), iiv::CtxElem::loop(0, 1)},
             {iiv::CtxElem::block(0, 2)}}},
           900);
  t.insert({{{iiv::CtxElem::block(0, 0)}}}, 100);
  return t;
}

TEST(FlameGraph, SvgStructure) {
  iiv::DynScheduleTree t = sample_tree();
  std::string svg = render_flamegraph_svg(t, nullptr);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("total ops: 1000"), std::string::npos);
  // Loop nodes orange, block nodes blue.
  EXPECT_NE(svg.find("#f28e2b"), std::string::npos);
  EXPECT_NE(svg.find("#4e79a7"), std::string::npos);
  // Tooltips carry percentages.
  EXPECT_NE(svg.find("90%"), std::string::npos);
}

TEST(FlameGraph, GrayedNodesUseGray) {
  iiv::DynScheduleTree t = sample_tree();
  FlameGraphOptions opts;
  for (int i = 1; i < static_cast<int>(t.size()); ++i) opts.grayed.insert(i);
  std::string svg = render_flamegraph_svg(t, nullptr, opts);
  EXPECT_NE(svg.find("#9a9a9a"), std::string::npos);
  EXPECT_EQ(svg.find("#f28e2b"), std::string::npos);
}

TEST(FlameGraph, TitleIsXmlEscaped) {
  iiv::DynScheduleTree t = sample_tree();
  FlameGraphOptions opts;
  opts.title = "a<b & \"c\"";
  std::string svg = render_flamegraph_svg(t, nullptr, opts);
  EXPECT_NE(svg.find("a&lt;b &amp; &quot;c&quot;"), std::string::npos);
  EXPECT_EQ(svg.find("a<b"), std::string::npos);
}

TEST(FlameGraph, SliversHidden) {
  iiv::DynScheduleTree t;
  t.insert({{{iiv::CtxElem::block(0, 0)}}}, 100000);
  t.insert({{{iiv::CtxElem::block(0, 1)}}}, 1);  // 0.001%: below threshold
  std::string svg = render_flamegraph_svg(t, nullptr);
  EXPECT_NE(svg.find("f0:bb0"), std::string::npos);
  EXPECT_EQ(svg.find("f0:bb1"), std::string::npos);
}

TEST(FlameGraph, AsciiRendersAllNodes) {
  iiv::DynScheduleTree t = sample_tree();
  std::string a = render_flamegraph_ascii(t, nullptr);
  EXPECT_NE(a.find("loop L1"), std::string::npos);
  EXPECT_NE(a.find("f0:bb0"), std::string::npos);
  EXPECT_NE(a.find("900"), std::string::npos);
}

TEST(FlameGraph, RecursionNodesMarked) {
  iiv::DynScheduleTree t;
  t.insert({{{iiv::CtxElem::block(0, 0), iiv::CtxElem::comp(0)},
             {iiv::CtxElem::block(1, 0)}}},
           10);
  std::string a = render_flamegraph_ascii(t, nullptr);
  EXPECT_NE(a.find("rec RC0"), std::string::npos);
  std::string svg = render_flamegraph_svg(t, nullptr);
  EXPECT_NE(svg.find("#e15759"), std::string::npos);
}

}  // namespace
}  // namespace pp::feedback
