#include "feedback/flamegraph.hpp"

#include <gtest/gtest.h>

#include <cstring>

namespace pp::feedback {
namespace {

/// Minimal XML well-formedness check: tags balance, no stray '<'/'>'/'&'
/// outside the entities the writer emits. Enough to catch an unescaped
/// hostile label or a label truncated mid-escape.
bool xml_well_formed(const std::string& doc) {
  std::vector<std::string> stack;
  std::size_t i = 0;
  while (i < doc.size()) {
    char c = doc[i];
    if (c == '<') {
      std::size_t end = doc.find('>', i);
      if (end == std::string::npos) return false;
      std::string tag = doc.substr(i + 1, end - i - 1);
      if (tag.empty()) return false;
      if (tag[0] == '/') {
        if (stack.empty() || stack.back() != tag.substr(1)) return false;
        stack.pop_back();
      } else if (tag.back() == '/' || tag[0] == '?' || tag[0] == '!') {
        // self-closing / prolog / comment: no stack effect
      } else {
        std::size_t sp = tag.find_first_of(" \t\n");
        stack.push_back(sp == std::string::npos ? tag : tag.substr(0, sp));
      }
      i = end + 1;
    } else if (c == '>') {
      return false;
    } else if (c == '&') {
      bool ok = false;
      for (const char* e : {"&lt;", "&gt;", "&amp;", "&quot;"}) {
        if (doc.compare(i, std::strlen(e), e) == 0) {
          ok = true;
          i += std::strlen(e);
          break;
        }
      }
      if (!ok) return false;
    } else {
      ++i;
    }
  }
  return stack.empty();
}

iiv::DynScheduleTree sample_tree() {
  iiv::DynScheduleTree t;
  // main -> loop -> stmt (+ a small sibling)
  t.insert({{{iiv::CtxElem::block(0, 0), iiv::CtxElem::loop(0, 1)},
             {iiv::CtxElem::block(0, 2)}}},
           900);
  t.insert({{{iiv::CtxElem::block(0, 0)}}}, 100);
  return t;
}

TEST(FlameGraph, SvgStructure) {
  iiv::DynScheduleTree t = sample_tree();
  std::string svg = render_flamegraph_svg(t, nullptr);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("total ops: 1000"), std::string::npos);
  // Loop nodes orange, block nodes blue.
  EXPECT_NE(svg.find("#f28e2b"), std::string::npos);
  EXPECT_NE(svg.find("#4e79a7"), std::string::npos);
  // Tooltips carry percentages with one decimal.
  EXPECT_NE(svg.find("90.0%"), std::string::npos);
  EXPECT_TRUE(xml_well_formed(svg));
}

TEST(FlameGraph, TooltipPercentRoundsHalfUpOneDecimal) {
  iiv::DynScheduleTree t;
  t.insert({{{iiv::CtxElem::block(0, 0)}}}, 999);
  t.insert({{{iiv::CtxElem::block(0, 1)}}}, 1);
  FlameGraphOptions opts;
  opts.min_fraction = 0.0;
  std::string svg = render_flamegraph_svg(t, nullptr, opts);
  // 999/1000 used to truncate to "99%"; must round to one decimal.
  EXPECT_NE(svg.find("(99.9%)"), std::string::npos);
  EXPECT_NE(svg.find("(0.1%)"), std::string::npos);

  iiv::DynScheduleTree full;
  full.insert({{{iiv::CtxElem::block(0, 0)}}}, 5);
  EXPECT_NE(render_flamegraph_svg(full, nullptr).find("(100.0%)"),
            std::string::npos);
}

TEST(FlameGraph, LabelTruncationKeepsUtf8Boundary) {
  ir::Module m;
  ir::Function f;
  f.id = 0;
  f.name = "xéééééééééé";
  m.functions.push_back(f);
  iiv::DynScheduleTree t;
  t.insert({{{iiv::CtxElem::block(0, 0)}}}, 10);
  FlameGraphOptions opts;
  // Box width 56px -> label budget 8 bytes, which lands on the second
  // byte of the fourth 'é'; the cut must back up to the boundary.
  opts.width_px = 56;
  std::string svg = render_flamegraph_svg(t, &m, opts);
  EXPECT_NE(svg.find(">xééé</text>"), std::string::npos);
  EXPECT_EQ(svg.find("\xC3</text>"), std::string::npos);
  EXPECT_TRUE(xml_well_formed(svg));
}

TEST(FlameGraph, GoldenHostileNames) {
  ir::Module m;
  ir::Function f0;
  f0.id = 0;
  f0.name = "vec<int>&do";
  ir::Function f1;
  f1.id = 1;
  f1.name = std::string(200, 'q');
  ir::Function f2;
  f2.id = 2;
  f2.name = "λβγ_ε";
  m.functions = {f0, f1, f2};

  iiv::DynScheduleTree t;
  t.insert({{{iiv::CtxElem::block(0, 0)}}}, 600);
  t.insert({{{iiv::CtxElem::block(1, 0)}}}, 300);
  t.insert({{{iiv::CtxElem::block(2, 0)}}}, 99);
  t.insert({{{iiv::CtxElem::block(0, 1)}}}, 1);  // 0.1% sliver
  FlameGraphOptions opts;
  opts.min_fraction = 0.01;
  opts.title = "hostile <&> title";
  std::string svg = render_flamegraph_svg(t, &m, opts);

  EXPECT_TRUE(xml_well_formed(svg));
  // Angle brackets and ampersands escape; the raw forms must not survive.
  EXPECT_NE(svg.find("vec&lt;int&gt;&amp;do:bb0"), std::string::npos);
  EXPECT_EQ(svg.find("vec<int>"), std::string::npos);
  EXPECT_NE(svg.find("hostile &lt;&amp;&gt; title"), std::string::npos);
  // The 200-char name shows untruncated in the tooltip.
  EXPECT_NE(svg.find(std::string(200, 'q') + ":bb0 — 300 ops"),
            std::string::npos);
  // Multi-byte names pass through intact.
  EXPECT_NE(svg.find("λβγ_ε:bb0"), std::string::npos);
  // The sliver below min_fraction is pruned.
  EXPECT_EQ(svg.find(":bb1"), std::string::npos);
  // Golden structure of the dominant box (layout is deterministic).
  EXPECT_NE(svg.find("<g><title>vec&lt;int&gt;&amp;do:bb0 — 600 ops "
                     "(60.0%)</title><rect x=\"0\" y=\""),
            std::string::npos);
  EXPECT_NE(svg.find("\" width=\"720\" height=\"17\" fill=\"#4e79a7\" "
                     "rx=\"2\"/>"),
            std::string::npos);
}

TEST(FlameGraph, ZeroWeightRootIsWellFormed) {
  iiv::DynScheduleTree t;
  t.insert({{{iiv::CtxElem::block(0, 0)}}}, 0);
  std::string svg = render_flamegraph_svg(t, nullptr);
  EXPECT_TRUE(xml_well_formed(svg));
  EXPECT_NE(svg.find("total ops: 0"), std::string::npos);
}

TEST(FlameGraph, GrayedNodesUseGray) {
  iiv::DynScheduleTree t = sample_tree();
  FlameGraphOptions opts;
  for (int i = 1; i < static_cast<int>(t.size()); ++i) opts.grayed.insert(i);
  std::string svg = render_flamegraph_svg(t, nullptr, opts);
  EXPECT_NE(svg.find("#9a9a9a"), std::string::npos);
  EXPECT_EQ(svg.find("#f28e2b"), std::string::npos);
}

TEST(FlameGraph, TitleIsXmlEscaped) {
  iiv::DynScheduleTree t = sample_tree();
  FlameGraphOptions opts;
  opts.title = "a<b & \"c\"";
  std::string svg = render_flamegraph_svg(t, nullptr, opts);
  EXPECT_NE(svg.find("a&lt;b &amp; &quot;c&quot;"), std::string::npos);
  EXPECT_EQ(svg.find("a<b"), std::string::npos);
}

TEST(FlameGraph, SliversHidden) {
  iiv::DynScheduleTree t;
  t.insert({{{iiv::CtxElem::block(0, 0)}}}, 100000);
  t.insert({{{iiv::CtxElem::block(0, 1)}}}, 1);  // 0.001%: below threshold
  std::string svg = render_flamegraph_svg(t, nullptr);
  EXPECT_NE(svg.find("f0:bb0"), std::string::npos);
  EXPECT_EQ(svg.find("f0:bb1"), std::string::npos);
}

TEST(FlameGraph, AsciiRendersAllNodes) {
  iiv::DynScheduleTree t = sample_tree();
  std::string a = render_flamegraph_ascii(t, nullptr);
  EXPECT_NE(a.find("loop L1"), std::string::npos);
  EXPECT_NE(a.find("f0:bb0"), std::string::npos);
  EXPECT_NE(a.find("900"), std::string::npos);
}

TEST(FlameGraph, RecursionNodesMarked) {
  iiv::DynScheduleTree t;
  t.insert({{{iiv::CtxElem::block(0, 0), iiv::CtxElem::comp(0)},
             {iiv::CtxElem::block(1, 0)}}},
           10);
  std::string a = render_flamegraph_ascii(t, nullptr);
  EXPECT_NE(a.find("rec RC0"), std::string::npos);
  std::string svg = render_flamegraph_svg(t, nullptr);
  EXPECT_NE(svg.find("#e15759"), std::string::npos);
}

}  // namespace
}  // namespace pp::feedback
