#include "feedback/metrics.hpp"

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "ir/builder.hpp"
#include "workloads/workloads.hpp"

namespace pp::feedback {
namespace {

using ir::Builder;
using ir::Function;
using ir::Module;
using ir::Reg;

// NOTE: the module must outlive the ProfileResult (it holds a pointer to
// it for name lookups), so tests keep a named Module in scope.
core::ProfileResult profile(const Module& m) {
  core::Pipeline pipe(m);
  return pipe.run();
}

// A stride-friendly 1-D streaming kernel: everything parallel, perfect
// reuse.
Module stream_kernel(i64 n) {
  Module m;
  i64 ga = m.add_global("a", n * 8);
  i64 gb = m.add_global("b", n * 8);
  Function& f = m.add_function("main", 0, "stream.c");
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg a = b.const_(ga);
  Reg bb = b.const_(gb);
  Reg nr = b.const_(n);
  b.set_line(5);
  b.counted_loop(0, nr, 1, [&](Reg i) {
    Reg off = b.muli(i, 8);
    Reg pa = b.add(a, off);
    Reg pb = b.add(bb, off);
    Reg v = b.load(pa);
    Reg w = b.fmul(v, v);
    b.store(pb, w);
  });
  b.ret();
  return m;
}

TEST(Metrics, MakeProblemExcludesScev) {
  Module m = stream_kernel(32);
  core::ProfileResult r = profile(m);
  std::vector<int> all;
  int scev_count = 0;
  for (const auto& s : r.program.statements) {
    all.push_back(s.meta.id);
    if (s.is_scev) ++scev_count;
  }
  scheduler::Problem p = make_problem(r.program, all);
  EXPECT_GT(scev_count, 0);
  EXPECT_EQ(p.statements.size(), all.size() - static_cast<std::size_t>(scev_count));
}

TEST(Metrics, StreamKernelFullyParallelWithPerfectReuse) {
  Module m = stream_kernel(32);
  core::ProfileResult r = profile(m);
  auto regions = r.hot_regions(0.2);
  ASSERT_GE(regions.size(), 1u);
  RegionMetrics mx = analyze_region(r.program, regions[0]);
  EXPECT_EQ(mx.max_loop_depth, 1);
  EXPECT_GT(mx.parallel_ops, 0u);
  EXPECT_EQ(mx.parallel_ops, mx.simd_ops);  // 1-D parallel loop: both
  EXPECT_EQ(mx.reuse_mem_ops, mx.mem_ops);  // stride-8 loads/stores
  EXPECT_EQ(mx.preuse_mem_ops, mx.mem_ops);
  EXPECT_FALSE(mx.skew_used);
  EXPECT_TRUE(mx.schedulable);
}

TEST(Metrics, PercentAffineStrictVsExtended) {
  // A kernel with an interleaved piecewise access pattern: extended
  // affinity credits it, strict does not.
  const i64 n = 24, wrap = 16;
  Module m;
  i64 g = m.add_global("a", n * 8);
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg a = b.const_(g);
  Reg nr = b.const_(n);
  Reg wr = b.const_(wrap);
  b.counted_loop(0, nr, 1, [&](Reg i) {
    Reg wrapped = b.rem(i, wr);  // 0..15, 0..7: piecewise affine
    Reg off = b.muli(wrapped, 8);
    Reg p = b.add(a, off);
    b.load(p);
  });
  b.ret();
  core::ProfileResult r = profile(m);
  double strict = percent_affine(r.program, true);
  double extended = percent_affine(r.program, false);
  EXPECT_LT(strict, extended);
}

TEST(Metrics, EstimatedSpeedupAboveOneForBadStrides) {
  // Column-major walk: the model must predict an interchange win.
  const i64 n = 16;
  Module m;
  i64 g = m.add_global("mat", n * n * 8);
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg a = b.const_(g);
  Reg nr = b.const_(n);
  b.counted_loop(0, nr, 1, [&](Reg j) {
    b.counted_loop(0, nr, 1, [&](Reg i) {
      Reg row = b.mul(i, nr);
      Reg cell = b.add(row, j);
      Reg off = b.muli(cell, 8);
      Reg p = b.add(a, off);
      Reg v = b.load(p);
      b.store(p, v);
    });
  });
  b.ret();
  core::ProfileResult r = profile(m);
  auto regions = r.hot_regions(0.2);
  ASSERT_GE(regions.size(), 1u);
  RegionMetrics mx = analyze_region(r.program, regions[0]);
  EXPECT_GT(mx.preuse_mem_ops, mx.reuse_mem_ops);
  EXPECT_GT(mx.est_speedup, 1.5);
}

TEST(Metrics, AnalyzeRespectsSchedulerOptions) {
  Module m = stream_kernel(16);
  core::ProfileResult r = profile(m);
  auto regions = r.hot_regions(0.2);
  ASSERT_GE(regions.size(), 1u);
  AnalyzeOptions maxfuse;
  maxfuse.sched.fusion = scheduler::FusionHeuristic::kMaxFuse;
  RegionMetrics mx = analyze_region(r.program, regions[0], maxfuse);
  EXPECT_EQ(mx.fusion, 'M');
  AnalyzeOptions smart;
  RegionMetrics ms = analyze_region(r.program, regions[0], smart);
  EXPECT_EQ(ms.fusion, 'S');
  EXPECT_LE(mx.sched.groups.size(), ms.sched.groups.size());
}

TEST(Metrics, PercentHelpers) {
  RegionMetrics m;
  m.ops = 200;
  m.mem_ops = 50;
  EXPECT_DOUBLE_EQ(m.pct(100), 50.0);
  EXPECT_DOUBLE_EQ(m.pct_mem(25), 50.0);
  RegionMetrics zero;
  EXPECT_DOUBLE_EQ(zero.pct(10), 0.0);
  EXPECT_DOUBLE_EQ(zero.pct_mem(10), 0.0);
}

TEST(Metrics, IdentityOnlySchedulingStillReportsParallelism) {
  Module m = stream_kernel(16);
  core::ProfileResult r = profile(m);
  auto regions = r.hot_regions(0.2);
  AnalyzeOptions approx;
  approx.sched.identity_only = true;
  RegionMetrics mx = analyze_region(r.program, regions[0], approx);
  EXPECT_GT(mx.parallel_ops, 0u);  // the identity row is already parallel
}

TEST(Metrics, LargeDomainsGetParameterized) {
  // A 2000-iteration loop: the domain constant exceeds the threshold and
  // one parameter is introduced (paper §6).
  Module m = stream_kernel(2000);
  core::ProfileResult r = profile(m);
  auto regions = r.hot_regions(0.2);
  ASSERT_GE(regions.size(), 1u);
  RegionMetrics mx = analyze_region(r.program, regions[0]);
  EXPECT_GE(mx.domain_parameters, 1);

  // A tiny loop needs none.
  Module small = stream_kernel(8);
  core::ProfileResult rs = profile(small);
  auto rsmall = rs.hot_regions(0.2);
  RegionMetrics ms = analyze_region(rs.program, rsmall[0]);
  EXPECT_EQ(ms.domain_parameters, 0);
}

}  // namespace
}  // namespace pp::feedback
