#include "iiv/cct.hpp"

#include <gtest/gtest.h>

#include "ir/builder.hpp"

namespace pp::iiv {
namespace {

using ir::Builder;
using ir::Function;
using ir::Module;
using ir::Op;
using ir::Reg;

TEST(Cct, DistinguishesCallSites) {
  // Two calls to g from different instructions create two CCT nodes.
  Module m;
  Function& g = m.add_function("g", 0);
  {
    Builder b(m, g);
    b.set_block(b.make_block());
    b.ret();
  }
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  b.call(g, {});
  b.call(g, {});
  b.ret();

  vm::Machine machine(m);
  CallingContextTree cct;
  machine.set_observer(&cct);
  machine.run("main");
  EXPECT_EQ(cct.size(), 3u);  // root + two contexts
  EXPECT_EQ(cct.max_depth(), 1);
  std::string s = cct.str(&m);
  EXPECT_NE(s.find("main"), std::string::npos);
  EXPECT_NE(s.find("g (from"), std::string::npos);
}

TEST(Cct, RepeatedCallsFromSameSiteShareNode) {
  Module m;
  Function& g = m.add_function("g", 0);
  {
    Builder b(m, g);
    b.set_block(b.make_block());
    b.ret();
  }
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg n = b.const_(5);
  b.counted_loop(0, n, 1, [&](Reg) { b.call(g, {}); });
  b.ret();

  vm::Machine machine(m);
  CallingContextTree cct;
  machine.set_observer(&cct);
  machine.run("main");
  EXPECT_EQ(cct.size(), 2u);  // one shared context node
  EXPECT_EQ(cct.node(1).calls, 5u);
}

TEST(Cct, RecursionGrowsDepthLinearly) {
  // The known CCT weakness the paper contrasts with the dynamic IIV: depth
  // proportional to recursion depth.
  Module m;
  Function& rec = m.add_function("rec", 1);
  {
    Builder b(m, rec);
    int entry = b.make_block();
    int base = b.make_block();
    int again = b.make_block();
    b.set_block(entry);
    Reg zero = b.const_(0);
    Reg done = b.cmp(Op::kCmpLe, 0, zero);
    b.br_cond(done, base, again);
    b.set_block(base);
    b.ret();
    b.set_block(again);
    Reg nm1 = b.addi(0, -1);
    b.call(rec, {nm1});
    b.ret();
  }
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg n = b.const_(8);
  b.call(rec, {n});
  b.ret();

  vm::Machine machine(m);
  CallingContextTree cct;
  machine.set_observer(&cct);
  machine.run("main");
  EXPECT_EQ(cct.max_depth(), 9);  // main -> rec x9 contexts
}

}  // namespace
}  // namespace pp::iiv
