#include "iiv/diiv.hpp"

#include <gtest/gtest.h>

namespace pp::iiv {
namespace {

using cfg::LoopEvent;
using Kind = LoopEvent::Kind;

// Shorthand constructors for synthetic loop events.
LoopEvent N(int f, int b) { return {Kind::kBlock, f, b, -1, -1}; }
LoopEvent C(int f, int b) { return {Kind::kCall, f, b, -1, -1}; }
LoopEvent R(int f, int b) { return {Kind::kRet, f, b, -1, -1}; }
LoopEvent E(int f, int b, int l) { return {Kind::kEnter, f, b, l, -1}; }
LoopEvent I(int f, int b, int l) { return {Kind::kIterate, f, b, l, -1}; }
LoopEvent X(int f, int b, int l) { return {Kind::kExit, f, b, l, -1}; }
LoopEvent Ec(int f, int b, int c) { return {Kind::kEnterRec, f, b, -1, c}; }
LoopEvent Ic(int f, int b, int c) {
  return {Kind::kIterateRecCall, f, b, -1, c};
}
LoopEvent Ir(int f, int b, int c) {
  return {Kind::kIterateRecRet, f, b, -1, c};
}
LoopEvent Xr(int f, int b, int c) { return {Kind::kExitRec, f, b, -1, c}; }

TEST(DynamicIiv, BlockEventsTrackCurrentBlock) {
  DynamicIiv d;
  d.apply(N(0, 0));
  EXPECT_EQ(d.depth(), 0u);
  EXPECT_EQ(d.str(), "(f0:bb0)");
  d.apply(N(0, 2));
  EXPECT_EQ(d.str(), "(f0:bb2)");
}

TEST(DynamicIiv, CallPushesReturnPops) {
  // Paper's worked example: C(C0) on (M1/D0) then R back.
  DynamicIiv d;
  d.apply(N(0, 1));   // (M1)
  d.apply(C(3, 0));   // call D -> (M1/D0)
  EXPECT_EQ(d.str(), "(f0:bb1/f3:bb0)");
  d.apply(C(2, 0));   // call C -> (M1/D0/C0)
  EXPECT_EQ(d.str(), "(f0:bb1/f3:bb0/f2:bb0)");
  d.apply(R(3, 0));   // return into D block 0
  EXPECT_EQ(d.str(), "(f0:bb1/f3:bb0)");
  d.apply(R(0, 1));   // return into M block 1
  EXPECT_EQ(d.str(), "(f0:bb1)");
}

TEST(DynamicIiv, LoopEnterAddsDimension) {
  // E(L1, A1) applied to (M0/A0-ish): header slot replaced by loop id,
  // fresh dimension opens at 0 (paper Fig. 3d step 3).
  DynamicIiv d;
  d.apply(N(0, 0));  // (M0)
  d.apply(C(1, 0));  // call A -> (M0/A0)
  d.apply(E(1, 1, 0));  // A jumps to header A1 of L0
  EXPECT_EQ(d.depth(), 1u);
  EXPECT_EQ(d.coordinates(), (std::vector<i64>{0}));
  EXPECT_EQ(d.str(), "(f0:bb0/f1:L0, 0, f1:bb1)");
}

TEST(DynamicIiv, IterateIncrementsInnermost) {
  DynamicIiv d;
  d.apply(N(0, 0));
  d.apply(E(0, 1, 0));
  d.apply(N(0, 2));
  d.apply(I(0, 1, 0));
  EXPECT_EQ(d.coordinates(), (std::vector<i64>{1}));
  d.apply(N(0, 2));
  d.apply(I(0, 1, 0));
  EXPECT_EQ(d.coordinates(), (std::vector<i64>{2}));
}

TEST(DynamicIiv, ExitRemovesDimensionPaperExample) {
  // X(L2, B3) applied to (M0/L1, 0, A1/L2, 1, B2) -> (M0/L1, 0, A1/B3).
  DynamicIiv d;
  d.apply(N(0, 0));     // (M0)
  d.apply(E(0, 1, 1));  // -> (M0->L1, 0, bb1): use func 0 loop 1 as "L1"
  d.apply(N(0, 1));
  d.apply(E(0, 2, 2));  // inner loop L2 headered at bb2... build shape:
  // now (f0:L1, 0, f0:L2, 0, f0:bb2); iterate inner once
  d.apply(I(0, 2, 2));
  EXPECT_EQ(d.str(), "(f0:L1, 0, f0:L2, 1, f0:bb2)");
  d.apply(X(0, 3, 2));
  EXPECT_EQ(d.str(), "(f0:L1, 0, f0:bb3)");
  EXPECT_EQ(d.coordinates(), (std::vector<i64>{0}));
}

TEST(DynamicIiv, TwoDimensionalInterproceduralNest) {
  // Fig. 3 Ex. 1: loop L1 in A contains a call to B containing loop L2:
  // instructions in B's loop body carry a 2-deep IIV.
  DynamicIiv d;
  d.apply(N(0, 0));      // M0
  d.apply(C(1, 0));      // call A
  d.apply(E(1, 1, 0));   // A enters L1 (loop 0 of func 1)
  d.apply(C(2, 0));      // A1 calls B
  d.apply(E(2, 1, 0));   // B enters L2 (loop 0 of func 2)
  EXPECT_EQ(d.depth(), 2u);
  EXPECT_EQ(d.coordinates(), (std::vector<i64>{0, 0}));
  EXPECT_EQ(d.str(), "(f0:bb0/f1:L0, 0, f1:bb1/f2:L0, 0, f2:bb1)");
  d.apply(I(2, 1, 0));
  EXPECT_EQ(d.coordinates(), (std::vector<i64>{0, 1}));
  // Exit inner, return to A, iterate outer.
  d.apply(X(2, 2, 0));
  d.apply(R(1, 1));
  d.apply(N(1, 2));
  d.apply(I(1, 1, 0));
  EXPECT_EQ(d.coordinates(), (std::vector<i64>{1}));
  EXPECT_EQ(d.depth(), 1u);
}

TEST(DynamicIiv, RecursionFig3Ex2IvSequence) {
  // The recursive-loop induction variable keeps increasing across calls
  // AND returns (paper: "It does not go up and down. It keeps increasing").
  DynamicIiv d;
  d.apply(N(0, 1));        // (M1)
  d.apply(Ec(1, 0, 0));    // enter recursive loop -> (M1/RC0, 0, B0)
  EXPECT_EQ(d.str(), "(f0:bb1/RC0, 0, f1:bb0)");
  EXPECT_EQ(d.coordinates(), (std::vector<i64>{0}));
  d.apply(N(1, 1));        // B1
  d.apply(Ic(1, 0, 0));    // first recursive call
  EXPECT_EQ(d.coordinates(), (std::vector<i64>{1}));
  d.apply(N(1, 1));
  d.apply(Ic(1, 0, 0));    // second recursive call
  EXPECT_EQ(d.coordinates(), (std::vector<i64>{2}));
  d.apply(N(1, 1));
  d.apply(Ir(1, 5, 0));    // return from header: iv keeps increasing
  EXPECT_EQ(d.coordinates(), (std::vector<i64>{3}));
  d.apply(Ir(1, 5, 0));
  EXPECT_EQ(d.coordinates(), (std::vector<i64>{4}));
  d.apply(Xr(0, 1, 0));    // unstacked: loop exits
  EXPECT_EQ(d.depth(), 0u);
  EXPECT_EQ(d.str(), "(f0:bb1)");
}

TEST(DynamicIiv, RecursionDepthDoesNotGrowIivLength) {
  DynamicIiv d;
  d.apply(N(0, 0));
  d.apply(Ec(1, 0, 0));
  for (int k = 0; k < 100; ++k) {
    d.apply(N(1, 1));
    d.apply(Ic(1, 0, 0));
  }
  EXPECT_EQ(d.depth(), 1u);  // NOT 100: the whole point of the RCS
  EXPECT_EQ(d.coordinates(), (std::vector<i64>{100}));
}

TEST(DynamicIiv, CallInsideRecursiveLoopNests) {
  // Fig. 3 Ex. 2, block C0 called from B1: IIV (M1/L1, i1, B1/C0).
  DynamicIiv d;
  d.apply(N(0, 1));
  d.apply(Ec(1, 0, 0));
  d.apply(N(1, 1));
  d.apply(C(2, 0));  // call C from B1
  EXPECT_EQ(d.str(), "(f0:bb1/RC0, 0, f1:bb1/f2:bb0)");
  d.apply(R(1, 1));
  d.apply(Ic(1, 0, 0));
  d.apply(N(1, 1));
  d.apply(C(2, 0));
  EXPECT_EQ(d.str(), "(f0:bb1/RC0, 1, f1:bb1/f2:bb0)");
}

TEST(DynamicIiv, ContextKeySeparatesDimensions) {
  DynamicIiv d;
  d.apply(N(0, 0));
  d.apply(E(0, 1, 0));
  ContextKey k = d.context();
  ASSERT_EQ(k.parts.size(), 2u);
  EXPECT_EQ(k.depth(), 1u);
  EXPECT_EQ(k.parts[0].back(), CtxElem::loop(0, 0));
  EXPECT_EQ(k.parts[1].back(), CtxElem::block(0, 1));
}

TEST(DynamicIiv, ContextKeyEqualityAcrossIterations) {
  // The context (non-numerical part) must be identical across iterations
  // of the same loop — only the coordinates change.
  DynamicIiv d;
  d.apply(N(0, 0));
  d.apply(E(0, 1, 0));
  d.apply(N(0, 2));
  ContextKey k1 = d.context();
  auto c1 = d.coordinates();
  d.apply(I(0, 1, 0));
  d.apply(N(0, 2));
  ContextKey k2 = d.context();
  auto c2 = d.coordinates();
  EXPECT_EQ(k1, k2);
  EXPECT_NE(c1, c2);
  ContextKeyHash h;
  EXPECT_EQ(h(k1), h(k2));
}

TEST(DynamicIiv, ErrorsOnMalformedStreams) {
  DynamicIiv d;
  EXPECT_THROW(d.apply(I(0, 0, 0)), Error);   // iterate with no dimension
  EXPECT_THROW(d.apply(X(0, 0, 0)), Error);   // exit with no dimension
  DynamicIiv d2;
  EXPECT_THROW(d2.apply(R(0, 0)), Error);     // return with empty context
}

}  // namespace
}  // namespace pp::iiv
