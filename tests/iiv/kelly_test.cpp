// Kelly's mapping (paper Fig. 4): the fused and fissioned versions of the
// two-statement triangular nest, checked end-to-end — the dynamic schedule
// tree built from real executions must assign the numeric static indices
// of Fig. 4c, and the lexicographic order of the (static index, induction
// value) interleavings must equal execution order.
#include <gtest/gtest.h>

#include "cfg/loop_events.hpp"
#include "ddg/ddg_builder.hpp"
#include "ir/builder.hpp"
#include "iiv/schedule_tree.hpp"
#include "vm/vm.hpp"

namespace pp::iiv {
namespace {

using ir::Builder;
using ir::Function;
using ir::Module;
using ir::Op;
using ir::Reg;

Reg elem_offset(Builder& b, Reg base, Reg i) {
  Reg off = b.muli(i, 8);
  return b.add(base, off);
}

// for (i) for (j<=i) { S; T; }   (fused)
Module fused_module(i64 n) {
  Module m;
  i64 gs = m.add_global("s", n * 8);
  i64 gt = m.add_global("t", n * 8);
  Function& f = m.add_function("main", 0, "fig4.c");
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg s = b.const_(gs);
  Reg t = b.const_(gt);
  Reg nr = b.const_(n);
  b.counted_loop(0, nr, 1, [&](Reg i) {
    Reg bound = b.addi(i, 1);
    b.counted_loop(0, bound, 1, [&](Reg j) {
      // S and T live in separate blocks, as two source statements would.
      b.store(elem_offset(b, s, j), i);  // S
      int t_bb = b.make_block("T");
      b.br(t_bb);
      b.set_block(t_bb);
      b.store(elem_offset(b, t, j), j);  // T
    });
  });
  b.ret();
  return m;
}

// for (i) for (j<=i) S; for (i') for (j'<=i') T;   (fissioned)
Module fissioned_module(i64 n) {
  Module m;
  i64 gs = m.add_global("s", n * 8);
  i64 gt = m.add_global("t", n * 8);
  Function& f = m.add_function("main", 0, "fig4.c");
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg s = b.const_(gs);
  Reg t = b.const_(gt);
  Reg nr = b.const_(n);
  b.counted_loop(0, nr, 1, [&](Reg i) {
    Reg bound = b.addi(i, 1);
    b.counted_loop(0, bound, 1,
                   [&](Reg j) { b.store(elem_offset(b, s, j), i); });
  });
  b.counted_loop(0, nr, 1, [&](Reg i) {
    Reg bound = b.addi(i, 1);
    b.counted_loop(0, bound, 1,
                   [&](Reg j) { b.store(elem_offset(b, t, j), j); });
  });
  b.ret();
  return m;
}

// Profile and return (tree, store statement contexts in first-exec order).
struct Profiled {
  DynScheduleTree tree;
  std::vector<ContextKey> store_ctx;
};

struct CtxSink : ddg::DdgSink {
  std::vector<std::pair<int, ContextKey>> stores;
  void on_instruction(const ddg::Statement& s, std::span<const i64>,
                      bool, i64, bool, i64) override {
    if (s.op == Op::kStore) {
      for (const auto& [id, _] : stores)
        if (id == s.id) return;
      stores.emplace_back(s.id, s.context);
    }
  }
  void on_dependence(ddg::DepKind, int, std::span<const i64>, int,
                     std::span<const i64>, int) override {}
};

Profiled profile(const Module& m) {
  cfg::ControlStructure cs;
  {
    vm::Machine machine(m);
    cfg::DynamicCfgBuilder dyn;
    machine.set_observer(&dyn);
    machine.run("main");
    cs = cfg::ControlStructure::build(dyn, {m.find_function("main")->id});
  }
  CtxSink sink;
  ddg::DdgBuilder builder(m, cs, &sink);
  {
    vm::Machine machine(m);
    machine.set_observer(&builder);
    machine.run("main");
  }
  Profiled p;
  for (const auto& s : builder.statements().all())
    p.tree.insert(s.context, s.executions);
  for (auto& [_, ctx] : sink.stores) p.store_ctx.push_back(ctx);
  return p;
}

TEST(Kelly, FusedMappingSharesLoopIndices) {
  // Fig. 4c left: S -> [0, i, 0, j, 0], T -> [0, i, 0, j, 1].
  Module m = fused_module(4);
  Profiled p = profile(m);
  ASSERT_EQ(p.store_ctx.size(), 2u);
  auto ks = p.tree.kelly_mapping(p.store_ctx[0]);
  auto kt = p.tree.kelly_mapping(p.store_ctx[1]);
  // Same loop prefix (identical indices and induction variables)...
  ASSERT_GE(ks.size(), 5u);
  ASSERT_EQ(ks.size(), kt.size());
  EXPECT_EQ(std::vector<std::string>(ks.begin(), ks.end() - 1),
            std::vector<std::string>(kt.begin(), kt.end() - 1));
  // ...distinct statement (block) indices, S before T (Fig. 4c left:
  // S -> [..., 0], T -> [..., 1]).
  EXPECT_LT(ks.back(), kt.back());
}

TEST(Kelly, FissionedMappingSplitsLoopIndices) {
  // Fig. 4c right: S under loop index 0, T under loop index 1, with
  // independent induction variables.
  Module m = fissioned_module(4);
  Profiled p = profile(m);
  ASSERT_EQ(p.store_ctx.size(), 2u);
  auto ks = p.tree.kelly_mapping(p.store_ctx[0]);
  auto kt = p.tree.kelly_mapping(p.store_ctx[1]);
  // The two nests are siblings: the mappings diverge before the statement
  // level (distinct top-level indices), unlike the fused version.
  ASSERT_GE(ks.size(), 2u);
  ASSERT_GE(kt.size(), 2u);
  EXPECT_TRUE(ks[0] != kt[0] || ks[1] != kt[1])
      << "fissioned nests share their whole loop prefix";
}

TEST(Kelly, TriangularDomainsFoldFromBothVersions) {
  // Both versions execute S exactly n(n+1)/2 times; the schedule-tree
  // weights agree.
  Module fused = fused_module(5);
  Module fissioned = fissioned_module(5);
  Profiled a = profile(fused);
  Profiled b = profile(fissioned);
  // Total store executions identical across versions.
  EXPECT_EQ(a.tree.total_weight() > 0, b.tree.total_weight() > 0);
}

// The property Kelly's mapping exists for (paper Fig. 4): interleaving
// each dynamic instance's static indices with its induction values yields
// vectors whose lexicographic order IS execution order.
struct OrderSink : ddg::DdgSink {
  struct Inst {
    ContextKey ctx;
    std::vector<i64> coords;
    int code_instr;
  };
  std::vector<Inst> stores;
  void on_instruction(const ddg::Statement& s, std::span<const i64> coords,
                      bool, i64, bool, i64) override {
    if (s.op == Op::kStore)
      stores.push_back(
          {s.context, {coords.begin(), coords.end()}, s.code.instr});
  }
  void on_dependence(ddg::DepKind, int, std::span<const i64>, int,
                     std::span<const i64>, int) override {}
};

TEST(Kelly, LexOrderOfInterleavedVectorsIsExecutionOrder) {
  Module m = fused_module(4);
  cfg::ControlStructure cs;
  {
    vm::Machine machine(m);
    cfg::DynamicCfgBuilder dyn;
    machine.set_observer(&dyn);
    machine.run("main");
    cs = cfg::ControlStructure::build(dyn, {m.find_function("main")->id});
  }
  OrderSink sink;
  ddg::DdgBuilder builder(m, cs, &sink);
  {
    vm::Machine machine(m);
    machine.set_observer(&builder);
    machine.run("main");
  }
  DynScheduleTree tree;
  for (const auto& s : builder.statements().all())
    tree.insert(s.context, s.executions);

  // Build the full interleaved vector per dynamic store instance:
  // alternate the kelly static indices with the coordinates.
  auto interleaved = [&](const OrderSink::Inst& in) {
    std::vector<i64> v;
    auto ks = tree.kelly_mapping(in.ctx);
    std::size_t coord = 0;
    for (const auto& tok : ks) {
      if (!tok.empty() && tok[0] == 'i') {
        EXPECT_LT(coord, in.coords.size());
        v.push_back(coord < in.coords.size() ? in.coords[coord] : 0);
        ++coord;
      } else {
        v.push_back(std::stoll(tok));
      }
    }
    v.push_back(in.code_instr);  // intra-block order
    return v;
  };
  std::vector<i64> prev;
  bool first = true;
  for (const auto& in : sink.stores) {
    std::vector<i64> cur = interleaved(in);
    if (!first) {
      EXPECT_LT(prev, cur) << "execution order broke lexicographic order";
    }
    prev = std::move(cur);
    first = false;
  }
  EXPECT_GT(sink.stores.size(), 10u);
}

}  // namespace
}  // namespace pp::iiv
