#include "iiv/schedule_tree.hpp"

#include <gtest/gtest.h>

namespace pp::iiv {
namespace {

ContextKey key(std::vector<std::vector<CtxElem>> parts) {
  return ContextKey{std::move(parts)};
}

TEST(ScheduleTree, InsertBuildsPath) {
  DynScheduleTree t;
  // (M0/L1, i, S)
  t.insert(key({{CtxElem::block(0, 0), CtxElem::loop(0, 1)},
                {CtxElem::block(0, 2)}}),
           10);
  EXPECT_EQ(t.size(), 4u);  // root + M0 + L1 + bb2
  EXPECT_EQ(t.total_weight(), 10u);
  EXPECT_EQ(t.max_depth(), 3);
}

TEST(ScheduleTree, SharedPrefixesMerge) {
  DynScheduleTree t;
  auto s = key({{CtxElem::block(0, 0), CtxElem::loop(0, 1)},
                {CtxElem::block(0, 2)}});
  auto u = key({{CtxElem::block(0, 0), CtxElem::loop(0, 1)},
                {CtxElem::block(0, 3)}});
  t.insert(s, 5);
  t.insert(u, 7);
  // root, M0, L1 shared; two leaves.
  EXPECT_EQ(t.size(), 5u);
  EXPECT_EQ(t.total_weight(), 12u);
  // The loop node's weight aggregates both statements.
  const auto& root = t.root();
  const auto& m0 = t.node(root.children[0]);
  const auto& l1 = t.node(m0.children[0]);
  EXPECT_EQ(l1.weight, 12u);
  EXPECT_EQ(l1.children.size(), 2u);
}

TEST(ScheduleTree, StaticIndicesFollowFirstAppearance) {
  // Fused vs fissioned orderings (Fig. 4): sibling statement order is the
  // numeric static index of Kelly's mapping.
  DynScheduleTree t;
  auto s = key({{CtxElem::block(0, 0), CtxElem::loop(0, 1)},
                {CtxElem::block(0, 2)}});
  auto u = key({{CtxElem::block(0, 0), CtxElem::loop(0, 1)},
                {CtxElem::block(0, 3)}});
  t.insert(s);
  t.insert(u);
  auto ks = t.kelly_mapping(s);
  auto ku = t.kelly_mapping(u);
  // [idx(M0), idx(L1), i0, idx(S)]: S got index 0, T index 1.
  EXPECT_EQ(ks, (std::vector<std::string>{"0", "0", "i0", "0"}));
  EXPECT_EQ(ku, (std::vector<std::string>{"0", "0", "i0", "1"}));
}

TEST(ScheduleTree, FissionedLoopsGetDistinctIndices) {
  // Two sibling loops: [0, i, ...] vs [1, i', ...] as in Fig. 4c right.
  DynScheduleTree t;
  auto s = key({{CtxElem::block(0, 0), CtxElem::loop(0, 1)},
                {CtxElem::block(0, 2)}});
  auto u = key({{CtxElem::block(0, 0), CtxElem::loop(0, 5)},
                {CtxElem::block(0, 6)}});
  t.insert(s);
  t.insert(u);
  auto ks = t.kelly_mapping(s);
  auto ku = t.kelly_mapping(u);
  EXPECT_EQ(ks[1], "0");  // first loop
  EXPECT_EQ(ku[1], "1");  // second loop
}

TEST(ScheduleTree, KellyMappingUnknownContextThrows) {
  DynScheduleTree t;
  EXPECT_THROW(t.kelly_mapping(key({{CtxElem::block(9, 9)}})), Error);
}

TEST(ScheduleTree, SelfWeightOnLeafOnly) {
  DynScheduleTree t;
  auto s = key({{CtxElem::block(0, 0)}});
  t.insert(s, 3);
  const auto& leaf = t.node(t.root().children[0]);
  EXPECT_EQ(leaf.self_weight, 3u);
  EXPECT_EQ(t.root().self_weight, 0u);
}

TEST(ScheduleTree, StrShowsWeights) {
  DynScheduleTree t;
  t.insert(key({{CtxElem::block(0, 0)}}), 4);
  std::string s = t.str();
  EXPECT_NE(s.find("w=4"), std::string::npos);
  EXPECT_NE(s.find("<root>"), std::string::npos);
}

}  // namespace
}  // namespace pp::iiv
