// CFG corner cases for the static analyzer: multi-exit loops, unreachable
// blocks and single-block self-loops must produce stable verdicts (same
// answer on every call), never crash, and flag the complex-control-flow
// reason 'C' where the loop shape warrants it.
#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "statican/statican.hpp"

namespace pp::statican {
namespace {

using ir::Builder;
using ir::Function;
using ir::Module;
using ir::Op;
using ir::Reg;

/// The verdict must be a pure function of the module.
void expect_stable(const Module& m, const Function& f) {
  FunctionVerdict a = analyze_function(m, f);
  FunctionVerdict b = analyze_function(m, f);
  EXPECT_EQ(a.affine_modeled, b.affine_modeled);
  EXPECT_EQ(a.reasons, b.reasons);
  EXPECT_EQ(a.num_loops, b.num_loops);
  EXPECT_EQ(a.num_modeled_loops, b.num_modeled_loops);
  EXPECT_EQ(a.max_modeled_nest_depth, b.max_modeled_nest_depth);
  // model_function is the same analysis with the model attached.
  FunctionModel fm = model_function(m, f);
  EXPECT_EQ(fm.verdict.reasons, a.reasons);
  EXPECT_EQ(fm.verdict.affine_modeled, a.affine_modeled);
}

TEST(StaticanCfg, MultiExitLoopFlagsComplexControlFlow) {
  // for (i = 0..100) { if (a[i] != 0) break; } — a second, early exit.
  Module m;
  i64 g = m.add_global("a", 800);
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  int entry = b.make_block();
  int header = b.make_block();
  int body = b.make_block();
  int latch = b.make_block();
  int exit_bb = b.make_block();
  b.set_block(entry);
  Reg base = b.const_(g);
  Reg n = b.const_(100);
  Reg iv = b.const_(0);
  b.br(header);
  b.set_block(header);
  Reg c = b.cmp(Op::kCmpLt, iv, n);
  b.br_cond(c, body, exit_bb);
  b.set_block(body);
  Reg p = b.add(base, b.muli(iv, 8));
  Reg v = b.load(p);
  b.br_cond(v, exit_bb, latch);  // break on nonzero: second loop exit
  b.set_block(latch);
  b.addi(iv, 1, iv);
  b.br(header);
  b.set_block(exit_bb);
  b.ret();

  FunctionVerdict verdict = analyze_function(m, f);
  EXPECT_FALSE(verdict.affine_modeled);
  EXPECT_TRUE(verdict.reasons.count('C'))
      << "reasons: " << reasons_str(verdict.reasons);
  expect_stable(m, f);
}

TEST(StaticanCfg, UnreachableBlockDoesNotCrashOrPerturb) {
  // A clean affine loop plus a dead block full of memory traffic. The dead
  // code must neither crash the analysis nor change the loop verdicts.
  auto build = [](bool with_dead) {
    Module m;
    i64 g = m.add_global("a", 80);
    Function& f = m.add_function("main", 0);
    Builder b(m, f);
    b.set_block(b.make_block());
    Reg base = b.const_(g);
    Reg n = b.const_(10);
    b.counted_loop(0, n, 1, [&](Reg iv) {
      Reg p = b.add(base, b.muli(iv, 8));
      b.store(p, iv);
    });
    b.ret();
    if (with_dead) {
      int dead = b.make_block();
      b.set_block(dead);
      Reg x = b.load(base);
      Reg q = b.mul(x, x);  // opaque address in dead code
      b.store(q, x);
      b.ret();
    }
    return m;
  };
  Module clean = build(false);
  Module dead = build(true);
  FunctionVerdict vc = analyze_function(clean, clean.functions[0]);
  FunctionVerdict vd = analyze_function(dead, dead.functions[0]);
  EXPECT_EQ(vc.num_loops, vd.num_loops);
  EXPECT_EQ(vc.num_modeled_loops, vd.num_modeled_loops);
  expect_stable(dead, dead.functions[0]);
}

TEST(StaticanCfg, SingleBlockSelfLoop) {
  // One block that is simultaneously header, body and latch:
  //   l: a[i] = i; i += 1; if (i < n) goto l;
  Module m;
  i64 g = m.add_global("a", 160);
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  int entry = b.make_block();
  int l = b.make_block();
  int exit_bb = b.make_block();
  b.set_block(entry);
  Reg base = b.const_(g);
  Reg n = b.const_(20);
  Reg iv = b.const_(0);
  b.br(l);
  b.set_block(l);
  Reg p = b.add(base, b.muli(iv, 8));
  b.store(p, iv);
  b.addi(iv, 1, iv);
  Reg c = b.cmp(Op::kCmpLt, iv, n);
  b.br_cond(c, l, exit_bb);
  b.set_block(exit_bb);
  b.ret();

  FunctionVerdict verdict = analyze_function(m, f);
  EXPECT_EQ(verdict.num_loops, 1);
  expect_stable(m, f);
  // The self-loop still yields a usable access model: one store, affine in
  // the loop's IV.
  FunctionModel fm = model_function(m, f);
  ASSERT_EQ(fm.accesses.size(), 1u);
  EXPECT_TRUE(fm.accesses[0].is_store);
  EXPECT_TRUE(fm.accesses[0].affine);
}

TEST(StaticanCfg, NestedMultiExitStaysStable) {
  // Outer clean loop, inner loop with an extra exit jumping PAST the inner
  // latch — only the inner loop's region should carry 'C'.
  Module m;
  i64 g = m.add_global("a", 1600);
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg base = b.const_(g);
  Reg n = b.const_(10);
  b.counted_loop(0, n, 1, [&](Reg i) {
    int ih = b.make_block();
    int ib = b.make_block();
    int il = b.make_block();
    int ix = b.make_block();
    Reg j = b.fresh();
    b.const_(0, j);
    b.br(ih);
    b.set_block(ih);
    Reg c = b.cmp(Op::kCmpLt, j, n);
    b.br_cond(c, ib, ix);
    b.set_block(ib);
    Reg p = b.add(base, b.muli(b.add(i, j), 8));
    Reg v = b.load(p);
    b.br_cond(v, ix, il);  // early inner exit
    b.set_block(il);
    b.addi(j, 1, j);
    b.br(ih);
    b.set_block(ix);
  });
  b.ret();

  FunctionVerdict verdict = analyze_function(m, f);
  EXPECT_GE(verdict.num_loops, 2);
  EXPECT_TRUE(verdict.reasons.count('C'))
      << "reasons: " << reasons_str(verdict.reasons);
  expect_stable(m, f);
}

}  // namespace
}  // namespace pp::statican
