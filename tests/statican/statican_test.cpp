#include "statican/statican.hpp"

#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "workloads/workloads.hpp"

namespace pp::statican {
namespace {

using ir::Builder;
using ir::Function;
using ir::Module;
using ir::Op;
using ir::Reg;

TEST(StaticCfg, CapturesAllEdges) {
  Module m;
  Function& f = m.add_function("f", 0);
  Builder b(m, f);
  int e = b.make_block();
  int t = b.make_block();
  int el = b.make_block();
  b.set_block(e);
  Reg c = b.const_(0);
  b.br_cond(c, t, el);
  b.set_block(t);
  b.ret();
  b.set_block(el);
  b.ret();
  cfg::FunctionCfg g = static_cfg(f);
  // Unlike the dynamic CFG, BOTH branch targets appear.
  EXPECT_TRUE(g.blocks.has_edge(e, t));
  EXPECT_TRUE(g.blocks.has_edge(e, el));
}

TEST(Statican, CleanAffineLoopIsModeled) {
  // for (i = 0; i < 10; ++i) a[i] = i with a global base: fully affine.
  Module m;
  i64 g = m.add_global("a", 80);
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg base = b.const_(g);
  Reg n = b.const_(10);
  b.counted_loop(0, n, 1, [&](Reg iv) {
    Reg off = b.muli(iv, 8);
    Reg p = b.add(base, off);
    b.store(p, iv);
  });
  b.ret();
  FunctionVerdict v = analyze_function(m, f);
  EXPECT_TRUE(v.affine_modeled) << reasons_str(v.reasons);
}

TEST(Statican, CallTriggersR) {
  Module m;
  Function& g = m.add_function("g", 0);
  {
    Builder b(m, g);
    b.set_block(b.make_block());
    b.ret();
  }
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  b.call(g, {});
  b.ret();
  FunctionVerdict v = analyze_function(m, f);
  EXPECT_TRUE(v.reasons.count('R'));
}

TEST(Statican, MultipleReturnsTriggerC) {
  Module m;
  Function& f = m.add_function("main", 1);
  Builder b(m, f);
  int e = b.make_block();
  int t = b.make_block();
  int el = b.make_block();
  b.set_block(e);
  Reg z = b.const_(0);
  Reg c = b.cmp(Op::kCmpLt, 0, z);
  b.br_cond(c, t, el);
  b.set_block(t);
  b.ret();
  b.set_block(el);
  b.ret();
  FunctionVerdict v = analyze_function(m, f);
  EXPECT_TRUE(v.reasons.count('C'));
}

TEST(Statican, DataDependentBoundTriggersB) {
  // while (a[i] != 0) ++i : the loop condition depends on loaded data.
  Module m;
  i64 g = m.add_global_init("a", {1, 2, 0});
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  int entry = b.make_block();
  int header = b.make_block();
  int body = b.make_block();
  int exit_bb = b.make_block();
  b.set_block(entry);
  Reg base = b.const_(g);
  Reg i = b.const_(0);
  b.br(header);
  b.set_block(header);
  Reg off = b.muli(i, 8);
  Reg p = b.add(base, off);
  Reg val = b.load(p);
  Reg zero = b.const_(0);
  Reg ne = b.cmp(Op::kCmpNe, val, zero);
  b.br_cond(ne, body, exit_bb);
  b.set_block(body);
  b.addi(i, 1, i);
  b.br(header);
  b.set_block(exit_bb);
  b.ret();
  FunctionVerdict v = analyze_function(m, f);
  EXPECT_TRUE(v.reasons.count('B')) << reasons_str(v.reasons);
}

TEST(Statican, PointerIndirectionTriggersF) {
  // Access through a loaded pointer: p = load(t); load(p).
  Module m;
  i64 g = m.add_global_init("t", {8, 0});
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg base = b.const_(g);
  Reg p = b.load(base);
  b.load(p);
  b.ret();
  FunctionVerdict v = analyze_function(m, f);
  EXPECT_TRUE(v.reasons.count('F'));
}

TEST(Statican, TwoArgumentBasesTriggerA) {
  // kernel(dst, src): stores through one argument, loads through another —
  // no static no-alias proof.
  Module m;
  Function& f = m.add_function("kernel", 2);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg v = b.load(1);
  b.store(0, v);
  b.ret();
  FunctionVerdict verdict = analyze_function(m, f);
  EXPECT_TRUE(verdict.reasons.count('A')) << reasons_str(verdict.reasons);
}

TEST(Statican, SwappedBasePointerTriggersP) {
  // pathfinder-style src/dst swap inside the outer loop.
  Module m;
  i64 ga = m.add_global("bufA", 64);
  i64 gb = m.add_global("bufB", 64);
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg a = b.const_(ga);
  Reg bb_ = b.const_(gb);
  Reg src = b.fresh();
  Reg dst = b.fresh();
  b.mov(a, src);
  b.mov(bb_, dst);
  Reg n = b.const_(4);
  b.counted_loop(0, n, 1, [&](Reg) {
    Reg v = b.load(src);
    b.store(dst, v);
    Reg tmp = b.fresh();
    b.mov(src, tmp);
    b.mov(dst, src);
    b.mov(tmp, dst);
  });
  b.ret();
  FunctionVerdict v = analyze_function(m, f);
  EXPECT_TRUE(v.reasons.count('P') || v.reasons.count('F'))
      << reasons_str(v.reasons);
}

TEST(Statican, ReasonsStrOrdering) {
  EXPECT_EQ(reasons_str({'F', 'R', 'B'}), "RBF");
  EXPECT_EQ(reasons_str({}), "-");
  EXPECT_EQ(reasons_str({'P', 'A', 'C'}), "CAP");
}

TEST(Statican, RegionUnionsReasons) {
  Module m;
  Function& g = m.add_function("g", 2);
  {
    Builder b(m, g);
    b.set_block(b.make_block());
    Reg v = b.load(1);
    b.store(0, v);
    b.ret();
  }
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg z = b.const_(0);
  b.call(g, {z, z});
  b.ret();
  auto reasons = analyze_region(m, {f.id, g.id});
  EXPECT_TRUE(reasons.count('R'));
  EXPECT_TRUE(reasons.count('A'));
}

TEST(Statican, SubregionVerdictsCountModeledLoops) {
  // An affine 2-D nest followed by a pointer-chasing loop: the nest (both
  // levels) is modelable, the chase is not.
  Module m;
  i64 g = m.add_global("a", 16 * 16 * 8);
  i64 g_list = m.add_global_init("list", {8, 16, 0});
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg a = b.const_(g);
  Reg n = b.const_(16);
  b.counted_loop(0, n, 1, [&](Reg i) {
    b.counted_loop(0, n, 1, [&](Reg j) {
      Reg row = b.mul(i, n);
      Reg cell = b.add(row, j);
      Reg off = b.muli(cell, 8);
      Reg p = b.add(a, off);
      b.store(p, cell);
    });
  });
  // Pointer chase: load a pointer, follow it.
  Reg cur = b.fresh();
  Reg base = b.const_(g_list);
  b.mov(base, cur);
  int h = b.make_block();
  int body = b.make_block();
  int x = b.make_block();
  b.br(h);
  b.set_block(h);
  Reg nxt = b.load(cur);
  Reg zero = b.const_(0);
  Reg done = b.cmp(Op::kCmpEq, nxt, zero);
  b.br_cond(done, x, body);
  b.set_block(body);
  Reg p2 = b.add(base, nxt);
  b.mov(p2, cur);
  b.br(h);
  b.set_block(x);
  b.ret();

  FunctionVerdict v = analyze_function(m, f);
  EXPECT_FALSE(v.affine_modeled);       // the chase poisons the function
  EXPECT_EQ(v.num_loops, 3);            // 2-D nest + chase loop
  EXPECT_EQ(v.num_modeled_loops, 2);    // both nest levels are clean
  EXPECT_EQ(v.max_modeled_nest_depth, 2);
}

TEST(Statican, FullyCleanFunctionModelsAllLoops) {
  Module m;
  i64 g = m.add_global("a", 64);
  Function& f = m.add_function("main", 0);
  Builder b(m, f);
  b.set_block(b.make_block());
  Reg a = b.const_(g);
  Reg n = b.const_(8);
  b.counted_loop(0, n, 1, [&](Reg i) {
    Reg off = b.muli(i, 8);
    Reg p = b.add(a, off);
    b.store(p, i);
  });
  b.ret();
  FunctionVerdict v = analyze_function(m, f);
  EXPECT_TRUE(v.affine_modeled);
  EXPECT_EQ(v.num_modeled_loops, v.num_loops);
  EXPECT_EQ(v.max_modeled_nest_depth, 1);
}

// Experiment II's headline: Polly-like analysis cannot model the whole
// region of interest for ANY of the 19 Rodinia benchmarks.
class StaticanRodinia : public ::testing::TestWithParam<std::string> {};

TEST_P(StaticanRodinia, WholeRegionNeverModeled) {
  workloads::Workload w = workloads::make_rodinia(GetParam());
  std::vector<int> funcs;
  for (const auto& f : w.module.functions) funcs.push_back(f.id);
  auto reasons = analyze_region(w.module, funcs);
  EXPECT_FALSE(reasons.empty())
      << GetParam() << " unexpectedly fully modeled statically";
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, StaticanRodinia,
                         ::testing::ValuesIn(workloads::rodinia_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n)
                             if (c == '+') c = 'p';
                           return n;
                         });

}  // namespace
}  // namespace pp::statican
