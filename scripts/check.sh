#!/usr/bin/env bash
# Repo-wide check gate: format check, clang-tidy over src/verify/, and the
# test suite in ALL build flavors (default, POLYPROF_SANITIZE, and — when
# the toolchain supports -fsanitize=thread — POLYPROF_TSAN, which races
# the parallel pipeline under ThreadSanitizer).
#
# clang-format / clang-tidy are optional: when a tool is missing the step
# is reported as SKIPPED instead of failing, so the script stays usable in
# minimal containers that only carry the compiler toolchain.
#
# Usage: scripts/check.sh [--no-tests]
set -u -o pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

RUN_TESTS=1
[[ "${1:-}" == "--no-tests" ]] && RUN_TESTS=0

FAIL=0
note() { printf '== %s\n' "$*"; }

# ---- 1. format check (whole tree, advisory-by-availability) -------------
if command -v clang-format >/dev/null 2>&1; then
  note "clang-format --dry-run over src/ tests/ bench/"
  mapfile -t FILES < <(find src tests bench -name '*.cpp' -o -name '*.hpp')
  if ! clang-format --dry-run --Werror "${FILES[@]}"; then
    note "clang-format: FAILED"
    FAIL=1
  else
    note "clang-format: OK (${#FILES[@]} files)"
  fi
else
  note "clang-format: SKIPPED (not installed)"
fi

# ---- 2. clang-tidy on the static-analysis subsystems --------------------
# src/verify (oracle, exact analysis, mutator) and src/poly (Omega test,
# simplex, polyhedra) carry the correctness-critical arithmetic; warnings
# there are treated as errors.
if command -v clang-tidy >/dev/null 2>&1; then
  note "clang-tidy over src/verify/ src/poly/ src/transform/ (compile_commands from build/)"
  if [[ ! -f build/compile_commands.json ]]; then
    cmake -S . -B build -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  fi
  if ! clang-tidy -p build --warnings-as-errors='*' \
      src/verify/*.cpp src/poly/*.cpp src/transform/*.cpp; then
    note "clang-tidy: FAILED"
    FAIL=1
  else
    note "clang-tidy: OK"
  fi
else
  note "clang-tidy: SKIPPED (not installed)"
fi

# ---- 3. build + test, both flavors --------------------------------------
if [[ $RUN_TESTS -eq 1 ]]; then
  flavor() {
    local dir="$1"; shift
    local label="$1"; shift
    note "configure+build+test: $label ($dir)"
    cmake -S . -B "$dir" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON "$@" >/dev/null || { FAIL=1; return; }
    cmake --build "$dir" -j "$(nproc)" >/dev/null || { FAIL=1; return; }
    if ! ctest --test-dir "$dir" --output-on-failure -j "$(nproc)"; then
      note "$label tests: FAILED"
      FAIL=1
    else
      note "$label tests: OK"
    fi
  }
  # ---- 3a'. service soak gate (run per flavor, below) --------------------
  # bench/service_soak pushes 76 concurrent jobs (all 19 workloads, mixed
  # plain / chaos-retry / chaos-cancel / shed / deadline / client-cancel)
  # through one pp::service::Server and exits nonzero on any hang (hard
  # alarm), non-byte-identical clean report, undelivered partial, or
  # cache-hit resubmission that re-profiled. Run in every flavor: the
  # ASan/TSan builds turn latent lifetime/race bugs in the job machinery
  # into hard failures.
  soak_gate() {
    local dir="$1"; shift
    local label="$1"; shift
    if [[ -x "$dir/bench/service_soak" ]]; then
      note "service soak gate ($label): bench/service_soak --json"
      if ! "$dir/bench/service_soak" --json; then
        note "service soak gate ($label): FAILED"
        FAIL=1
      else
        note "service soak gate ($label): OK"
      fi
    else
      note "service soak gate ($label): SKIPPED ($dir/bench/service_soak not built)"
    fi
  }

  # ---- 3a''. trace compaction gate (run per flavor, below) ---------------
  # bench/trace_compaction checks the PR-9 payoff contract: the Ball-Larus
  # path cache must compress the bulk of the instruction stream on the
  # structurally compressible workloads, beat the uncompacted ddg stage by
  # its committed factor (median paired ratio), and keep full_report
  # byte-identical compaction on/off. Sanitizer builds self-disable the
  # speedup gate (instrumented timing is meaningless) but still enforce
  # byte-identity and compression.
  compaction_gate() {
    local dir="$1"; shift
    local label="$1"; shift
    if [[ -x "$dir/bench/trace_compaction" ]]; then
      note "trace compaction gate ($label): bench/trace_compaction --json"
      if ! "$dir/bench/trace_compaction" --json; then
        note "trace compaction gate ($label): FAILED"
        FAIL=1
      else
        note "trace compaction gate ($label): OK"
      fi
    else
      note "trace compaction gate ($label): SKIPPED ($dir/bench/trace_compaction not built)"
    fi
  }

  # ---- 3a'''. transform replay gate (run per flavor, below) --------------
  # bench/transform_replay closes the loop on the profiler's feedback: it
  # applies every justified schedule on all 19 mini-Rodinia workloads and
  # exits nonzero if any applied schedule breaks the byte-identity
  # contract, or if interchange/tiling/fusion fail to each show a measured
  # simulated speedup > 1.0x somewhere. Speedups come from the VM cost
  # model (deterministic cycle counts), so the gate is sanitizer-safe.
  replay_gate() {
    local dir="$1"; shift
    local label="$1"; shift
    if [[ -x "$dir/bench/transform_replay" ]]; then
      note "transform replay gate ($label): bench/transform_replay --json"
      if ! "$dir/bench/transform_replay" --json; then
        note "transform replay gate ($label): FAILED"
        FAIL=1
      else
        note "transform replay gate ($label): OK"
      fi
    else
      note "transform replay gate ($label): SKIPPED ($dir/bench/transform_replay not built)"
    fi
  }

  flavor build default
  soak_gate build default
  compaction_gate build default
  replay_gate build default

  # ---- 3b. observability overhead gate (default flavor only) -------------
  # pp::obs promises that an enabled-but-idle Session costs at most a few
  # percent of pipeline wall time (DESIGN.md "Observability"). obs_overhead
  # measures the serial backprop pipeline observe-off vs observe-on
  # (interleaved min-of-N) and exits nonzero above its 3% threshold.
  if [[ -x build/bench/obs_overhead ]]; then
    note "obs overhead gate: bench/obs_overhead --json"
    if ! build/bench/obs_overhead --json; then
      note "obs overhead gate: FAILED (enabled-but-idle overhead above threshold)"
      FAIL=1
    else
      note "obs overhead gate: OK"
    fi
  else
    note "obs overhead gate: SKIPPED (build/bench/obs_overhead not built)"
  fi

  # ---- 3c. fold regression gate (default flavor only) --------------------
  # bench/fold_only replays recorded cfd + heartwall DDG streams into a
  # FoldingSink and times fold alone; it exits nonzero when the cfd fold
  # wall time exceeds its committed budget (see kCfdBudgetMs), catching
  # folder asymptotic regressions that full-pipeline timing would blur.
  if [[ -x build/bench/fold_only ]]; then
    note "fold regression gate: bench/fold_only --json"
    if ! build/bench/fold_only --json; then
      note "fold regression gate: FAILED (cfd fold wall time above budget)"
      FAIL=1
    else
      note "fold regression gate: OK"
    fi
  else
    note "fold regression gate: SKIPPED (build/bench/fold_only not built)"
  fi
  # ---- 3d. selective instrumentation gate (default flavor only) ----------
  # bench/selective_overhead checks the PR-8 payoff contract: on a kernel
  # whose every store the exact static analysis proves dependence-free,
  # skipping stage-2 shadow work must beat the full run (median paired
  # ratio below threshold), an empty-plan workload must pay at most the
  # plan computation, and full_report must stay byte-identical.
  if [[ -x build/bench/selective_overhead ]]; then
    note "selective instrumentation gate: bench/selective_overhead --json"
    if ! build/bench/selective_overhead --json; then
      note "selective instrumentation gate: FAILED"
      FAIL=1
    else
      note "selective instrumentation gate: OK"
    fi
  else
    note "selective instrumentation gate: SKIPPED (build/bench/selective_overhead not built)"
  fi
  flavor build-asan sanitize -DPOLYPROF_SANITIZE=ON
  soak_gate build-asan sanitize
  compaction_gate build-asan sanitize
  replay_gate build-asan sanitize
  # TSan flavor, gated on toolchain support: probe a trivial compile+link
  # with -fsanitize=thread and skip (not fail) when unavailable.
  TSAN_PROBE_DIR="$(mktemp -d)"
  if printf 'int main(){return 0;}\n' > "$TSAN_PROBE_DIR/t.cpp" &&
     ${CXX:-c++} -fsanitize=thread "$TSAN_PROBE_DIR/t.cpp" \
       -o "$TSAN_PROBE_DIR/t" >/dev/null 2>&1; then
    TSAN_OPTIONS="halt_on_error=1" flavor build-tsan tsan -DPOLYPROF_TSAN=ON
    TSAN_OPTIONS="halt_on_error=1" soak_gate build-tsan tsan
    TSAN_OPTIONS="halt_on_error=1" compaction_gate build-tsan tsan
    TSAN_OPTIONS="halt_on_error=1" replay_gate build-tsan tsan
  else
    note "tsan flavor: SKIPPED (toolchain lacks -fsanitize=thread)"
  fi
  rm -rf "$TSAN_PROBE_DIR"
fi

if [[ $FAIL -ne 0 ]]; then
  note "check.sh: FAILURES above"
  exit 1
fi
note "check.sh: all checks passed (skipped steps noted above)"
