// The recursion story (paper §3.2, Fig. 3 Ex. 2): a recursive array walk
// is profiled; the recursive-component-set folds the unbounded call chain
// into ONE extra iteration-vector dimension, the folded domain looks like
// an ordinary loop's, and the calling-context tree (shown for contrast)
// blows up linearly with depth.
#include <cstdio>

#include "core/pipeline.hpp"
#include "ir/builder.hpp"

using namespace pp;

// sum = rec(0): rec(i) = a[i] + rec(i+1) until i == n.
static ir::Module build_recursive_sum(i64 n) {
  ir::Module m;
  std::vector<i64> data;
  for (i64 i = 0; i < n; ++i) data.push_back(i * 3 + 1);
  i64 g = m.add_global_init("a", data);

  ir::Function& rec = m.add_function("rec", 1, "recsum.c");
  {
    ir::Builder b(m, rec);
    int entry = b.make_block();
    int base = b.make_block();
    int step = b.make_block();
    b.set_block(entry);
    b.set_line(4);
    ir::Reg nr = b.const_(n);
    ir::Reg done = b.cmp(ir::Op::kCmpGe, 0, nr);
    b.br_cond(done, base, step);
    b.set_block(base);
    ir::Reg z = b.const_(0);
    b.ret(z);
    b.set_block(step);
    b.set_line(7);
    ir::Reg off = b.muli(0, 8);
    ir::Reg baseaddr = b.const_(g);
    ir::Reg p = b.add(baseaddr, off);
    ir::Reg v = b.load(p);
    ir::Reg next = b.addi(0, 1);
    ir::Reg sub = b.call(rec, {next}, true);
    ir::Reg s = b.add(v, sub);
    b.ret(s);
  }
  ir::Function& f = m.add_function("main", 0, "recsum.c");
  ir::Builder b(m, f);
  b.set_block(b.make_block());
  ir::Reg zero = b.const_(0);
  ir::Reg res = b.call(rec, {zero}, true);
  b.ret(res);
  return m;
}

int main() {
  const i64 depth = 64;
  std::printf("== Recursion inspector: rec() %lld levels deep ==\n\n",
              static_cast<long long>(depth));
  ir::Module m = build_recursive_sum(depth);
  core::Pipeline pipe(m);
  core::ProfileResult r = pipe.run();

  std::printf("recursive components:\n%s\n", r.control.rcs.str().c_str());

  std::printf("calling-context tree depth: %d (grows with recursion)\n",
              r.cct.max_depth());
  std::printf("dynamic IIV depth of the recursive load: ");
  for (const auto& s : r.program.statements) {
    if (s.meta.op != ir::Op::kLoad) continue;
    std::printf("%zu (constant!)\n\n", s.meta.depth);
    std::printf("folded domain of the load (one point per recursion "
                "level, exactly Fig. 3k):\n");
    std::vector<std::string> names = {"i1"};
    for (const auto& piece : s.domain.pieces())
      std::printf("  %s  [%llu observed instances, %s]\n",
                  piece.domain.str(names).c_str(),
                  static_cast<unsigned long long>(piece.observed_points),
                  piece.exact ? "exact" : "approx");
    if (const poly::AffineMap* fn = s.affine_access())
      std::printf("  access function: %s (stride %lld bytes per level)\n",
                  fn->str(names).c_str(),
                  static_cast<long long>(fn->output(0).coeff(0)));
  }

  std::printf("\nregion feedback:\n");
  for (const auto& region : r.hot_regions(0.2)) {
    feedback::RegionMetrics mx = r.analyze(region);
    std::printf("%s", feedback::summarize(mx).c_str());
  }
  return 0;
}
