// polyprof as a tool: profile any mini-Rodinia benchmark by name and dump
// the full feedback bundle — the annotated flame graph (SVG + ASCII), the
// per-region metrics, and the proposed post-transformation AST.
//
//   $ ./flamegraph_export nw
//   $ ./flamegraph_export            # lists available benchmarks
#include <cstdio>
#include <cstring>

#include "core/pipeline.hpp"
#include "feedback/flamegraph.hpp"
#include "workloads/workloads.hpp"

using namespace pp;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::printf("usage: %s <benchmark>\navailable:", argv[0]);
    for (const auto& n : workloads::rodinia_names())
      std::printf(" %s", n.c_str());
    std::printf("\n");
    return 1;
  }
  workloads::Workload w = workloads::make_rodinia(argv[1]);
  std::printf("profiling %s ...\n", w.name.c_str());
  core::Pipeline pipe(w.module);
  core::ProfileResult r = pipe.run();

  std::string svg_name = w.name + "_flamegraph.svg";
  for (char& c : svg_name)
    if (c == '+') c = 'p';
  std::string svg = feedback::render_flamegraph_svg(
      r.schedule_tree, &w.module, {.title = w.name + " (poly-prof)"});
  if (FILE* f = std::fopen(svg_name.c_str(), "w")) {
    std::fwrite(svg.data(), 1, svg.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n\n", svg_name.c_str());
  }

  std::printf("%s\n",
              feedback::render_flamegraph_ascii(r.schedule_tree, &w.module)
                  .c_str());
  std::printf("%s\n", core::full_report(r).c_str());
  return 0;
}
