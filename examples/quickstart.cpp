// polyprof quickstart: build a small program in the mini-ISA, profile it
// through the full POLY-PROF pipeline, and read the structured-
// transformation feedback.
//
//   $ ./quickstart [--threads N]
//
// --threads selects the profiling pipeline's worker count (0 = one lane
// per hardware thread, 1 = serial reference). The report is byte-identical
// for every choice — only the wall time changes.
//
// The example program is a matrix-vector product with the loops in the
// "wrong" order (column-major walk of a row-major matrix) — the classic
// situation the profiler's interchange feedback exists for.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/pipeline.hpp"
#include "ir/builder.hpp"

using namespace pp;

// y[j] += A[i][j] * x[i], looping j outer / i inner: A is walked with a
// large stride in the inner loop.
static ir::Module build_matvec(i64 n) {
  ir::Module m;
  i64 ga = m.add_global("A", n * n * 8);
  i64 gx = m.add_global("x", n * 8);
  i64 gy = m.add_global("y", n * 8);

  ir::Function& f = m.add_function("main", 0, "matvec.c");
  ir::Builder b(m, f);
  b.set_block(b.make_block());

  ir::Reg a = b.const_(ga);
  ir::Reg x = b.const_(gx);
  ir::Reg y = b.const_(gy);
  ir::Reg nr = b.const_(n);

  // Fill A and x with something deterministic.
  b.set_line(3);
  b.counted_loop(0, nr, 1, [&](ir::Reg i) {
    b.counted_loop(0, nr, 1, [&](ir::Reg j) {
      ir::Reg idx = b.mul(i, nr);
      ir::Reg idx2 = b.add(idx, j);
      ir::Reg off = b.muli(idx2, 8);
      ir::Reg ptr = b.add(a, off);
      ir::Reg sum = b.add(i, j);
      ir::Reg v = b.i2f(sum);
      b.store(ptr, v);
    });
  });
  b.counted_loop(0, nr, 1, [&](ir::Reg i) {
    ir::Reg off = b.muli(i, 8);
    ir::Reg ptr = b.add(x, off);
    ir::Reg v = b.i2f(i);
    b.store(ptr, v);
  });

  // The kernel: for j { for i { y[j] += A[i][j] * x[i] } }.
  b.set_line(10);
  b.counted_loop(0, nr, 1, [&](ir::Reg j) {
    ir::Reg acc = b.fconst(0.0);
    b.set_line(11);
    b.counted_loop(0, nr, 1, [&](ir::Reg i) {
      ir::Reg row = b.mul(i, nr);
      ir::Reg cell = b.add(row, j);
      ir::Reg aoff = b.muli(cell, 8);
      ir::Reg aptr = b.add(a, aoff);
      ir::Reg av = b.load(aptr);
      ir::Reg xoff = b.muli(i, 8);
      ir::Reg xptr = b.add(x, xoff);
      ir::Reg xv = b.load(xptr);
      ir::Reg prod = b.fmul(av, xv);
      b.fadd(acc, prod, acc);
    });
    ir::Reg yoff = b.muli(j, 8);
    ir::Reg yptr = b.add(y, yoff);
    b.store(yptr, acc);
  });
  b.ret();
  return m;
}

int main(int argc, char** argv) {
  unsigned threads = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<unsigned>(std::atoi(argv[++i]));
    } else {
      std::fprintf(stderr, "usage: %s [--threads N]\n", argv[0]);
      return 2;
    }
  }
  std::printf("polyprof quickstart: profiling a j-outer/i-inner matvec\n\n");
  ir::Module m = build_matvec(24);

  // The whole pipeline is two lines.
  core::PipelineOptions opts;
  opts.threads = threads;
  core::Pipeline pipe(m);
  core::ProfileResult r = pipe.run(opts);

  std::printf("dynamic ops: %llu   statements after folding: %zu   "
              "dependence edges: %zu (SCEV-pruned: %llu)\n",
              static_cast<unsigned long long>(r.program.total_dynamic_ops),
              r.program.statements.size(), r.program.deps.size(),
              static_cast<unsigned long long>(r.program.pruned_dep_edges));
  std::printf("fully affine: %.0f%% of dynamic ops\n\n", r.percent_affine());

  for (const auto& region : r.hot_regions(0.10)) {
    feedback::RegionMetrics mx = r.analyze(region);
    std::printf("%s", feedback::summarize(mx).c_str());
    std::printf("\nproposed structure:\n%s\n",
                feedback::render_ast(mx, r.program, &m).c_str());
  }
  return 0;
}
