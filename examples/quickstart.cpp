// polyprof quickstart: build a small program in the mini-ISA, profile it
// through the full POLY-PROF pipeline, and read the structured-
// transformation feedback.
//
//   $ ./quickstart [--threads N] [--trace-out F] [--manifest-out F]
//                  [--stable] [--selective] [--no-path-compaction]
//                  [--apply-transforms] [workload]
//
// --apply-transforms closes the loop: after profiling, the transformation
// engine (pp::transform) applies the schedules the profile justifies to a
// copy of the module, re-runs it under the VM cost model, and prints the
// measured speedup next to the scheduler's prediction — with a byte-
// identity check on the program output.
//
// --threads selects the profiling pipeline's worker count (0 = one lane
// per hardware thread, 1 = serial reference). The report is byte-identical
// for every choice — only the wall time changes.
//
// --selective turns on selective instrumentation: the exact static
// dependence analysis (verify::exact) proves access sites dependence-free
// before stage 2, and the profiler skips shadow-memory tracking for them.
// Also byte-identical by construction — the line printed above the report
// shows how many sites the plan covers.
//
// --no-path-compaction disables hot-path trace compaction (the Ball-Larus
// path cache that replays re-executed loop iterations into the DDG in
// bulk; on by default). The report is byte-identical either way — the
// flag exists for A/B timing, exactly what bench/trace_compaction gates.
//
// --trace-out writes a Chrome trace_event JSON of the profiler's own run
// (open it in Perfetto / chrome://tracing); --manifest-out writes the flat
// run manifest (per-stage wall/CPU, counter finals, report fingerprint).
// Either flag turns self-observability on. --stable elides timing-
// dependent values from the report's self-profile section.
//
// The optional positional argument profiles a mini-Rodinia workload by
// name (e.g. backprop, hotspot, srad_v1) instead of the built-in example:
// a matrix-vector product with the loops in the "wrong" order
// (column-major walk of a row-major matrix) — the classic situation the
// profiler's interchange feedback exists for.
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "core/pipeline.hpp"
#include "ir/builder.hpp"
#include "obs/obs.hpp"
#include "verify/exact.hpp"
#include "workloads/workloads.hpp"

using namespace pp;

// y[j] += A[i][j] * x[i], looping j outer / i inner: A is walked with a
// large stride in the inner loop.
static ir::Module build_matvec(i64 n) {
  ir::Module m;
  i64 ga = m.add_global("A", n * n * 8);
  i64 gx = m.add_global("x", n * 8);
  i64 gy = m.add_global("y", n * 8);

  ir::Function& f = m.add_function("main", 0, "matvec.c");
  ir::Builder b(m, f);
  b.set_block(b.make_block());

  ir::Reg a = b.const_(ga);
  ir::Reg x = b.const_(gx);
  ir::Reg y = b.const_(gy);
  ir::Reg nr = b.const_(n);

  // Fill A and x with something deterministic.
  b.set_line(3);
  b.counted_loop(0, nr, 1, [&](ir::Reg i) {
    b.counted_loop(0, nr, 1, [&](ir::Reg j) {
      ir::Reg idx = b.mul(i, nr);
      ir::Reg idx2 = b.add(idx, j);
      ir::Reg off = b.muli(idx2, 8);
      ir::Reg ptr = b.add(a, off);
      ir::Reg sum = b.add(i, j);
      ir::Reg v = b.i2f(sum);
      b.store(ptr, v);
    });
  });
  b.counted_loop(0, nr, 1, [&](ir::Reg i) {
    ir::Reg off = b.muli(i, 8);
    ir::Reg ptr = b.add(x, off);
    ir::Reg v = b.i2f(i);
    b.store(ptr, v);
  });

  // The kernel: for j { for i { y[j] += A[i][j] * x[i] } }.
  b.set_line(10);
  b.counted_loop(0, nr, 1, [&](ir::Reg j) {
    ir::Reg acc = b.fconst(0.0);
    b.set_line(11);
    b.counted_loop(0, nr, 1, [&](ir::Reg i) {
      ir::Reg row = b.mul(i, nr);
      ir::Reg cell = b.add(row, j);
      ir::Reg aoff = b.muli(cell, 8);
      ir::Reg aptr = b.add(a, aoff);
      ir::Reg av = b.load(aptr);
      ir::Reg xoff = b.muli(i, 8);
      ir::Reg xptr = b.add(x, xoff);
      ir::Reg xv = b.load(xptr);
      ir::Reg prod = b.fmul(av, xv);
      b.fadd(acc, prod, acc);
    });
    ir::Reg yoff = b.muli(j, 8);
    ir::Reg yptr = b.add(y, yoff);
    b.store(yptr, acc);
  });
  b.ret();
  return m;
}

static bool write_file(const char* path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
  return static_cast<bool>(out);
}

// Strict numeric flag parsing: atoi silently maps garbage to 0 and a cast
// to unsigned turns "--threads -1" into 4294967295 worker lanes. Reject
// anything that is not a whole non-negative decimal number in range.
static bool parse_unsigned_flag(const char* flag, const char* text,
                                long max_value, unsigned* out) {
  char* end = nullptr;
  errno = 0;
  long v = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE || v < 0 ||
      v > max_value) {
    std::fprintf(stderr, "%s expects an integer in [0, %ld], got '%s'\n",
                 flag, max_value, text);
    return false;
  }
  *out = static_cast<unsigned>(v);
  return true;
}

int main(int argc, char** argv) {
  unsigned threads = 1;
  const char* trace_out = nullptr;
  const char* manifest_out = nullptr;
  bool stable = false;
  bool selective = false;
  bool path_compaction = true;
  bool apply_transforms = false;
  std::string workload;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      if (!parse_unsigned_flag("--threads", argv[++i], 4096, &threads))
        return 2;
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--manifest-out") == 0 && i + 1 < argc) {
      manifest_out = argv[++i];
    } else if (std::strcmp(argv[i], "--stable") == 0) {
      stable = true;
    } else if (std::strcmp(argv[i], "--selective") == 0) {
      selective = true;
    } else if (std::strcmp(argv[i], "--no-path-compaction") == 0) {
      path_compaction = false;
    } else if (std::strcmp(argv[i], "--apply-transforms") == 0) {
      apply_transforms = true;
    } else if (argv[i][0] != '-' && workload.empty()) {
      workload = argv[i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--threads N] [--trace-out F] "
                   "[--manifest-out F] [--stable] [--selective] "
                   "[--no-path-compaction] [--apply-transforms] [workload]\n",
                   argv[0]);
      return 2;
    }
  }
  ir::Module m;
  if (workload.empty()) {
    std::printf("polyprof quickstart: profiling a j-outer/i-inner matvec\n\n");
    m = build_matvec(24);
  } else {
    std::printf("polyprof quickstart: profiling mini-Rodinia '%s'\n\n",
                workload.c_str());
    m = workloads::make_rodinia(workload).module;
  }

  // The whole pipeline is two lines.
  core::PipelineOptions opts;
  opts.threads = threads;
  opts.observe = trace_out != nullptr || manifest_out != nullptr;
  opts.selective_instrumentation = selective;
  opts.path_compaction = path_compaction;
  opts.apply_transforms = apply_transforms;
  if (selective) {
    const ddg::SelectivePlan plan = verify::exact::compute_selective_plan(m);
    std::printf("selective instrumentation: %zu access site(s) proven "
                "dependence-free, shadow tracking skipped for them\n\n",
                plan.total_sites());
  }
  const u64 t0 = obs::now_ns();
  core::Pipeline pipe(m);
  core::ProfileResult r = pipe.run(opts);

  std::printf("dynamic ops: %llu   statements after folding: %zu   "
              "dependence edges: %zu (SCEV-pruned: %llu)\n",
              static_cast<unsigned long long>(r.program.total_dynamic_ops),
              r.program.statements.size(), r.program.deps.size(),
              static_cast<unsigned long long>(r.program.pruned_dep_edges));
  std::printf("fully affine: %.0f%% of dynamic ops\n\n", r.percent_affine());

  if (r.obs == nullptr) {
    for (const auto& region : r.hot_regions(0.10)) {
      feedback::RegionMetrics mx = r.analyze(region);
      std::printf("%s", feedback::summarize(mx).c_str());
      std::printf("\nproposed structure:\n%s\n",
                  feedback::render_ast(mx, r.program, &m).c_str());
    }
    if (r.transform.ran)
      std::printf("-- transformation --\n%s\n",
                  transform::render_section(r.transform).c_str());
  } else {
    // Observed mode prints the full report instead of the hand-rolled
    // summaries: it carries the same region feedback plus the self-profile
    // section, and every piece of post-pipeline analysis runs inside the
    // report's feedback span (so the stage spans cover the wall time).
    core::ReportOptions ropts;
    ropts.stable_self_profile = stable;
    const std::string report = core::full_report(r, ropts);
    const u64 wall = obs::now_ns() - t0;
    std::printf("%s\n", report.c_str());

    u64 span_sum = 0;
    for (const obs::SpanRec& s : r.obs->stage_spans()) span_sum += s.dur_ns;
    std::printf("self profile: %zu stage spans cover %.1f%% of %.1f ms wall\n",
                r.obs->stage_spans().size(),
                100.0 * static_cast<double>(span_sum) /
                    static_cast<double>(wall == 0 ? 1 : wall),
                static_cast<double>(wall) / 1e6);

    if (trace_out != nullptr) {
      if (!write_file(trace_out, r.obs->chrome_trace_json(
                                     workload.empty() ? "matvec" : workload)))
        return 1;
      std::printf("wrote Chrome trace: %s (load in Perfetto)\n", trace_out);
    }
    if (manifest_out != nullptr) {
      obs::Session::ManifestExtra extra;
      extra.workload = workload.empty() ? "matvec" : workload;
      extra.threads = threads;
      extra.truncated = r.truncated;
      extra.degraded_statements = r.program.degraded_statements;
      extra.diagnostics = r.diagnostics.size();
      char fp[32];
      std::snprintf(fp, sizeof fp, "%016llx",
                    static_cast<unsigned long long>(obs::fnv1a(report)));
      extra.report_fingerprint = fp;
      if (!write_file(manifest_out, r.obs->manifest_json(extra))) return 1;
      std::printf("wrote run manifest: %s\n", manifest_out);
    }
  }
  return 0;
}
