// Case study II (paper §7): GemsFDTD. The dependence structure of the
// 3-D field updates is captured exactly (not just "has/has no deps"), so
// the feedback can certify full-dimension tilability; tiling + fusing the
// component sweeps is then measured in the cycle model.
#include <cstdio>

#include "core/pipeline.hpp"
#include "workloads/workloads.hpp"

using namespace pp;

int main() {
  std::printf("== Case study II: GemsFDTD ==\n\n");
  ir::Module base = workloads::make_gemsfdtd(12, 12, 12);
  core::Pipeline pipe(base);
  core::ProfileResult r = pipe.run();

  std::printf("%%Aff = %.0f%%\n\n", r.percent_affine());
  std::printf("fat functions (by dynamic ops):\n");
  std::vector<std::pair<u64, std::string>> fat;
  for (std::size_t i = 0; i < r.stats.per_function_instrs.size(); ++i) {
    fat.emplace_back(r.stats.per_function_instrs[i],
                     base.functions[i].name);
  }
  std::sort(fat.rbegin(), fat.rend());
  for (const auto& [ops, name] : fat)
    std::printf("  %-16s %llu ops\n", name.c_str(),
                static_cast<unsigned long long>(ops));
  std::printf("\n");

  for (const auto& region : r.hot_regions(0.05)) {
    feedback::RegionMetrics mx = r.analyze(region);
    std::printf("%-40s parallel=%s tilable at depth %d%s\n",
                region.name.c_str(), mx.parallel_ops == mx.ops ? "all" : "part",
                mx.tile_depth, mx.skew_used ? " (skewed)" : "");
  }

  ir::Module big = workloads::make_gemsfdtd(20, 20, 20);
  ir::Module tiled = workloads::make_gemsfdtd_tiled(20, 20, 20, 4);
  vm::Machine v1(big), v2(tiled);
  vm::RunResult r1 = v1.run("main");
  vm::RunResult r2 = v2.run("main");
  std::printf("\nchecksums match: %s\n",
              r1.exit_value == r2.exit_value ? "yes" : "NO (bug!)");
  std::printf("tiling speedup (cycle model): %.2fx, misses %llu -> %llu\n",
              static_cast<double>(r1.stats.cycles) /
                  static_cast<double>(r2.stats.cycles),
              static_cast<unsigned long long>(r1.stats.cache_misses),
              static_cast<unsigned long long>(r2.stats.cache_misses));
  return 0;
}
