// Case study I (paper §7): profile the backprop benchmark, pinpoint the
// two fat 2-D loop nests, read the interchange + SIMD + scalar-expansion
// feedback, then measure the suggested transformation's effect in the
// VM's cache-aware cycle model. Also writes the Fig. 7-style flame graph.
#include <cstdio>

#include "core/pipeline.hpp"
#include "feedback/flamegraph.hpp"
#include "workloads/workloads.hpp"

using namespace pp;

int main() {
  std::printf("== Case study I: backprop ==\n\n");
  ir::Module base = workloads::make_backprop();
  core::Pipeline pipe(base);
  core::ProfileResult r = pipe.run();

  std::printf("%%Aff = %.0f%% of %llu dynamic ops\n\n", r.percent_affine(),
              static_cast<unsigned long long>(r.program.total_dynamic_ops));

  for (const auto& region : r.hot_regions(0.10)) {
    feedback::RegionMetrics mx = r.analyze(region);
    std::printf("%s\n", feedback::summarize(mx).c_str());
  }

  // Apply what the feedback says (interchange + array-expand the scalar)
  // and measure, at a layer size that exceeds the modeled cache.
  ir::Module big = workloads::make_backprop(64, 256);
  ir::Module tx = workloads::make_backprop_transformed(64, 256);
  vm::Machine v1(big), v2(tx);
  vm::RunResult r1 = v1.run("main");
  vm::RunResult r2 = v2.run("main");
  std::printf("checksums match: %s\n",
              r1.exit_value == r2.exit_value ? "yes" : "NO (bug!)");
  std::printf("cycles: %llu -> %llu (%.2fx), cache misses: %llu -> %llu\n\n",
              static_cast<unsigned long long>(r1.stats.cycles),
              static_cast<unsigned long long>(r2.stats.cycles),
              static_cast<double>(r1.stats.cycles) /
                  static_cast<double>(r2.stats.cycles),
              static_cast<unsigned long long>(r1.stats.cache_misses),
              static_cast<unsigned long long>(r2.stats.cache_misses));

  std::string svg = feedback::render_flamegraph_svg(
      r.schedule_tree, &base, {.title = "backprop (poly-prof)"});
  FILE* f = std::fopen("backprop_flamegraph.svg", "w");
  if (f) {
    std::fwrite(svg.data(), 1, svg.size(), f);
    std::fclose(f);
    std::printf("flame graph written to backprop_flamegraph.svg\n");
  }
  return 0;
}
