// Regenerates the paper's Table 5: summary statistics of POLY-PROF's
// feedback over the (mini-)Rodinia 3.1 suite, one row per benchmark:
//   #ops, %Aff, Region, %ops/%Mops/%FPops of the region, interprocedural,
//   why the static (Polly-like) analysis fails, skew, %||ops, %simdops,
//   %reuse, %Preuse, ld-src, ld-bin, TileD, %Tilops, C, Comp., fusion.
// streamcluster reproduces the paper's missing row: past the statement
// budget the scheduler stage is skipped and "-" is printed.
#include <chrono>
#include <fstream>
#include <future>
#include <memory>
#include <thread>

#include "bench_util.hpp"
#include "obs/obs.hpp"
#include "statican/statican.hpp"

namespace pp {
namespace {

// Paper's scheduler memory blow-up analog: regions folding into more
// statements than this get no scheduling feedback.
constexpr std::size_t kSchedulerStatementBudget = 250;

std::string run_benchmark_row(const std::string& name);

// The 19 pipelines are independent: sweep them on a thread pool, like the
// paper's per-core accounting ("total CPU time summing for all cores").
void print_table5_rows() {
  std::size_t workers = std::max(2u, std::thread::hardware_concurrency());
  std::vector<std::future<std::string>> rows;
  rows.reserve(workloads::rodinia_names().size());
  std::size_t launched = 0;
  const auto& names = workloads::rodinia_names();
  // Simple bounded fan-out: launch up to `workers` at a time.
  std::vector<std::string> results(names.size());
  for (std::size_t begin = 0; begin < names.size(); begin += workers) {
    std::size_t end = std::min(begin + workers, names.size());
    std::vector<std::future<std::string>> batch;
    for (std::size_t i = begin; i < end; ++i)
      batch.push_back(std::async(std::launch::async, run_benchmark_row,
                                 names[i]));
    for (std::size_t i = begin; i < end; ++i)
      results[i] = batch[i - begin].get();
    launched = end;
  }
  (void)launched;
  for (const auto& r : results) std::fputs(r.c_str(), stdout);
}

std::string row_to_string(
    const std::vector<std::pair<std::string, int>>& cells) {
  std::string out;
  for (const auto& [text, width] : cells) {
    std::string t = text;
    if (static_cast<int>(t.size()) > width)
      t = t.substr(0, static_cast<std::size_t>(width));
    t.resize(static_cast<std::size_t>(width), ' ');
    out += t;
    out += ' ';
  }
  out += '\n';
  return out;
}

std::string run_benchmark_row(const std::string& name) {
  workloads::Workload w = workloads::make_rodinia(name);
  core::Pipeline pipe(w.module);
  core::ProfileResult r = pipe.run();

  double aff = r.percent_affine();
  auto regions = r.hot_regions(0.05);
  feedback::Region region =
      regions.empty() ? r.whole_program() : regions[0];
  // "We considered a region to be interprocedural if inlining was required
  // to perform the transformation" — true when any hot region spans
  // several functions.
  bool any_interproc = false;
  for (const auto& reg : regions) any_interproc |= reg.interprocedural;
  region.interprocedural = region.interprocedural || any_interproc;

  // Static baseline over the functions the region touches.
  std::set<int> funcs;
  for (int id : region.stmts)
    funcs.insert(r.program.stmt(id).meta.code.func);
  std::set<char> polly = statican::analyze_region(
      w.module, std::vector<int>(funcs.begin(), funcs.end()));

  // The paper's streamcluster footnote: scheduling skipped past budget.
  bool budget_blown = region.stmts.size() > kSchedulerStatementBudget;

  using bench::pct;
  using bench::human;
  std::vector<std::pair<std::string, int>> cells;
  cells.emplace_back(name, 14);
  cells.emplace_back(human(r.program.total_dynamic_ops), 7);
  cells.emplace_back(pct(aff), 5);
  cells.emplace_back(w.region_hint, 22);
  if (budget_blown) {
    feedback::RegionMetrics mx;  // ops accounting only, no scheduling
    for (int id : region.stmts) {
      const auto& s = r.program.stmt(id);
      mx.ops += s.meta.executions;
      if (s.meta.is_memory) mx.mem_ops += s.meta.executions;
      if (s.meta.is_fp) mx.fp_ops += s.meta.executions;
    }
    double rops = 100.0 * static_cast<double>(mx.ops) /
                  static_cast<double>(r.program.total_dynamic_ops);
    cells.emplace_back(pct(rops), 5);
    cells.emplace_back(pct(mx.pct(mx.mem_ops)), 6);
    cells.emplace_back(pct(mx.pct(mx.fp_ops)), 7);
    cells.emplace_back(region.interprocedural ? "Y" : "N", 2);
    cells.emplace_back(statican::reasons_str(polly), 7);
    for (int i = 0; i < 6; ++i) cells.emplace_back("-", i < 1 ? 4 : 6);
    cells.emplace_back(std::to_string(w.ld_src) + "D", 3);
    for (int i = 0; i < 5; ++i) cells.emplace_back("-", 4);
    std::string out = row_to_string(cells);
    out += "  note: " + std::to_string(region.stmts.size()) +
           " folded statements exceed the scheduling budget (" +
           std::to_string(kSchedulerStatementBudget) +
           ") - the paper's streamcluster ran out of memory here\n";
    return out;
  }

  feedback::RegionMetrics mx = r.analyze(region);
  double rops = 100.0 * static_cast<double>(mx.ops) /
                static_cast<double>(r.program.total_dynamic_ops);
  cells.emplace_back(pct(rops), 5);
  cells.emplace_back(pct(mx.pct(mx.mem_ops)), 6);
  cells.emplace_back(pct(mx.pct(mx.fp_ops)), 7);
  cells.emplace_back(region.interprocedural ? "Y" : "N", 2);
  cells.emplace_back(statican::reasons_str(polly), 7);
  cells.emplace_back(mx.skew_used ? "Y" : "N", 4);
  cells.emplace_back(pct(mx.pct(mx.parallel_ops)), 6);
  cells.emplace_back(pct(mx.pct(mx.simd_ops)), 6);
  cells.emplace_back(pct(mx.pct_mem(mx.reuse_mem_ops)), 6);
  cells.emplace_back(pct(mx.pct_mem(mx.preuse_mem_ops)), 6);
  cells.emplace_back(std::to_string(w.ld_src) + "D", 6);
  cells.emplace_back(std::to_string(mx.max_loop_depth) + "D", 3);
  cells.emplace_back(std::to_string(mx.tile_depth) + "D", 4);
  cells.emplace_back(pct(mx.pct(mx.tilable_ops)), 4);
  cells.emplace_back(std::to_string(mx.components_before), 4);
  cells.emplace_back(std::to_string(mx.components_after), 4);
  cells.emplace_back(std::string(1, mx.fusion), 4);
  return row_to_string(cells);
}

void print_table5() {
  std::printf("== Table 5: POLY-PROF summary statistics on mini-Rodinia ==\n");
  bench::print_row({{"benchmark", 14}, {"#ops", 7},   {"%Aff", 5},
                    {"Region", 22},    {"%ops", 5},   {"%Mops", 6},
                    {"%FPops", 7},     {"ip", 2},     {"Polly", 7},
                    {"skew", 4},       {"%||ops", 6}, {"%simd", 6},
                    {"%reuse", 6},     {"%Preu", 6},  {"ld-src", 6},
                    {"ld-b", 3},       {"TileD", 4},  {"%Til", 4},
                    {"C", 4},          {"Comp", 4},   {"fuse", 4}});
  auto t0 = std::chrono::steady_clock::now();
  print_table5_rows();
  auto t1 = std::chrono::steady_clock::now();
  std::printf("\n(19-benchmark sweep: %.1f s wall on %u threads)\n\n",
              std::chrono::duration<double>(t1 - t0).count(),
              std::max(2u, std::thread::hardware_concurrency()));
}

// Machine-readable mode (--json): per-workload profile summary from an
// observed serial run (wall time plus the pp::obs per-stage breakdown),
// then a thread sweep {1, 2, 4} of the full pipeline on the largest
// workload (by dynamic ops) with wall time, a FNV-1a fingerprint of
// full_report, and byte-identity of every threaded report against the
// serial reference (reports carry the stable self-profile section, which
// must not break the identity). This is the artifact behind
// BENCH_parallel_pipeline.json. --trace-out/--manifest-out additionally
// export the threads=4 sweep run as a Chrome trace / run manifest.
int print_json(const char* trace_out, const char* manifest_out,
               unsigned max_threads) {
  struct Row {
    std::string name;
    u64 ops = 0;
    double aff = 0;
    std::size_t stmts = 0, deps = 0;
    double wall_ms = 0;
    std::vector<obs::SpanRec> stages;
  };
  auto profile_once = [](const ir::Module& m, unsigned threads,
                         std::string* report) {
    core::Pipeline pipe(m);
    core::PipelineOptions opts;
    opts.threads = threads;
    opts.observe = true;
    auto t0 = std::chrono::steady_clock::now();
    core::ProfileResult r = pipe.run(opts);
    if (report != nullptr) *report = core::full_report(r);
    auto t1 = std::chrono::steady_clock::now();
    return std::make_pair(
        r, std::chrono::duration<double, std::milli>(t1 - t0).count());
  };
  auto stages_json = [](const std::vector<obs::SpanRec>& stages) {
    std::string out = "{";
    for (std::size_t i = 0; i < stages.size(); ++i) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%s\"%s\": %.3f",
                    i > 0 ? ", " : "", stages[i].name + 6,
                    static_cast<double>(stages[i].dur_ns) / 1e6);
      out += buf;
    }
    return out + "}";
  };

  std::vector<Row> rows;
  std::size_t largest = 0;
  for (const auto& name : workloads::rodinia_names()) {
    workloads::Workload w = workloads::make_rodinia(name);
    // Render the report here too: the feedback stage only runs (and its
    // stage span only exists) inside full_report, and every row must
    // carry the same uniform stage set as the thread-sweep runs below.
    std::string rep;
    auto [r, ms] = profile_once(w.module, 1, &rep);
    Row row;
    row.name = name;
    row.ops = r.program.total_dynamic_ops;
    row.aff = r.percent_affine();
    row.stmts = r.program.statements.size();
    row.deps = r.program.deps.size();
    row.wall_ms = ms;
    row.stages = r.obs->stage_spans();
    if (rows.empty() || row.ops > rows[largest].ops) largest = rows.size();
    rows.push_back(row);
  }

  workloads::Workload big = workloads::make_rodinia(rows[largest].name);
  struct Run {
    unsigned threads;
    double wall_ms;
    u64 report_fnv1a;
    bool identical;
    std::vector<obs::SpanRec> stages;
  };
  std::vector<Run> runs;
  std::string serial_report;
  std::shared_ptr<obs::Session> export_session;
  core::ProfileResult export_result;
  std::vector<unsigned> sweep;
  for (unsigned t : {1u, 2u, 4u})
    if (t <= max_threads) sweep.push_back(t);
  if (sweep.empty()) sweep.push_back(1u);
  for (unsigned t : sweep) {
    std::string report;
    auto [r, ms] = profile_once(big.module, t, &report);
    if (t == 1) serial_report = report;
    runs.push_back({t, ms, bench::fnv1a(report), report == serial_report,
                    r.obs->stage_spans()});
    if (t == sweep.back()) {
      export_session = r.obs;
      export_result = std::move(r);
    }
  }
  double serial_ms = runs[0].wall_ms;

  if (trace_out != nullptr) {
    std::ofstream(trace_out, std::ios::binary)
        << export_session->chrome_trace_json(rows[largest].name);
  }
  if (manifest_out != nullptr) {
    obs::Session::ManifestExtra extra;
    extra.workload = rows[largest].name;
    extra.threads = sweep.back();
    extra.truncated = export_result.truncated;
    extra.degraded_statements = export_result.program.degraded_statements;
    extra.diagnostics = export_result.diagnostics.size();
    extra.report_fingerprint = bench::hex64(runs.back().report_fnv1a);
    std::ofstream(manifest_out, std::ios::binary)
        << export_session->manifest_json(extra);
  }

  std::printf("{\n  \"bench\": \"table5_rodinia\",\n");
  std::printf("  \"hardware_threads\": %u,\n",
              std::thread::hardware_concurrency());
  std::printf("  \"workloads\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::printf("    {\"name\": %s, \"ops\": %llu, \"pct_affine\": %.1f, "
                "\"statements\": %zu, \"deps\": %zu, "
                "\"serial_wall_ms\": %.2f, \"stage_wall_ms\": %s}%s\n",
                bench::json_str(row.name).c_str(),
                static_cast<unsigned long long>(row.ops), row.aff, row.stmts,
                row.deps, row.wall_ms, stages_json(row.stages).c_str(),
                i + 1 < rows.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"thread_sweep\": {\n    \"workload\": %s,\n"
              "    \"runs\": [\n",
              bench::json_str(rows[largest].name).c_str());
  bool all_identical = true;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const Run& run = runs[i];
    all_identical &= run.identical;
    std::printf("      {\"threads\": %u, \"wall_ms\": %.2f, "
                "\"report_fnv1a\": %s, \"speedup_vs_serial\": %.2f, "
                "\"report_identical_to_serial\": %s, "
                "\"stage_wall_ms\": %s}%s\n",
                run.threads, run.wall_ms,
                bench::json_str(bench::hex64(run.report_fnv1a)).c_str(),
                run.wall_ms > 0 ? serial_ms / run.wall_ms : 0.0,
                run.identical ? "true" : "false",
                stages_json(run.stages).c_str(),
                i + 1 < runs.size() ? "," : "");
  }
  std::printf("    ],\n    \"all_reports_identical\": %s\n  }\n}\n",
              all_identical ? "true" : "false");
  return all_identical ? 0 : 1;
}

// google-benchmark timing: full-pipeline profiling cost per benchmark
// (Experiment I's "profiling does not come for free" measurement).
void BM_ProfilePipeline(benchmark::State& state,
                        const std::string& name) {
  workloads::Workload w = workloads::make_rodinia(name);
  for (auto _ : state) {
    core::Pipeline pipe(w.module);
    core::ProfileResult r = pipe.run();
    benchmark::DoNotOptimize(r.program.total_dynamic_ops);
  }
}

}  // namespace
}  // namespace pp

int main(int argc, char** argv) {
  bool json = false;
  const char* trace_out = nullptr;
  const char* manifest_out = nullptr;
  unsigned max_threads = 4;  // upper bound for the determinism thread sweep
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      json = true;
    } else if (std::string(argv[i]) == "--trace-out" && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (std::string(argv[i]) == "--manifest-out" && i + 1 < argc) {
      manifest_out = argv[++i];
    } else if (std::string(argv[i]) == "--threads" && i + 1 < argc) {
      if (!pp::bench::parse_unsigned_flag("--threads", argv[++i], 4096,
                                          &max_threads))
        return 2;
      if (max_threads == 0) max_threads = 4;
    }
  }
  if (json || trace_out != nullptr || manifest_out != nullptr)
    return pp::print_json(trace_out, manifest_out, max_threads);
  pp::print_table5();
  for (const char* name : {"backprop", "hotspot", "nw"}) {
    benchmark::RegisterBenchmark(
        (std::string("BM_ProfilePipeline/") + name).c_str(),
        [name](benchmark::State& s) { pp::BM_ProfilePipeline(s, name); })
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
