// Shadow-memory microbenchmark: the page-table shadow + interned
// iteration vectors against the seed's hash-map design (one
// std::unordered_map entry per word, one heap-allocated std::vector<i64>
// of coordinates per occurrence). Three views:
//
//   1. raw shadow write/read throughput on sequential / strided / random
//      address streams (the per-access cost every load/store pays),
//   2. stage-2 trace replay: a recorded mini-Rodinia VM event stream
//      driven straight into DdgBuilder, isolating Instrumentation II from
//      interpreter cost (events/second before/after is the paper's
//      "profiling overhead" lens on this change),
//   3. a heap-allocation census of that replay, verifying the steady
//      state of DdgBuilder::on_instr is allocation-free.
#include <atomic>
#include <cstdlib>
#include <new>
#include <random>
#include <unordered_map>

#include "bench_util.hpp"
#include "trace_replay.hpp"

// --- global allocation counter (view 3) ------------------------------------
// Counts every operator-new hit in the process; benches snapshot it around
// the measured section. Relaxed ordering is fine: the benches are
// single-threaded and only need before/after deltas.
static std::atomic<unsigned long long> g_allocs{0};

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace pp {
namespace {

// --- the seed's shadow design, kept as the measurement baseline ------------
struct LegacyOccurrence {
  int stmt = -1;
  std::vector<i64> coords;
};

class LegacyShadow {
 public:
  void write(i64 addr, LegacyOccurrence w) { last_writer_[addr] = std::move(w); }
  const LegacyOccurrence* read(i64 addr) const {
    auto it = last_writer_.find(addr);
    return it == last_writer_.end() ? nullptr : &it->second;
  }
  void clear() { last_writer_.clear(); }

 private:
  std::unordered_map<i64, LegacyOccurrence> last_writer_;
};

std::vector<i64> make_addresses(i64 n, const char* pattern) {
  std::vector<i64> addrs;
  addrs.reserve(static_cast<std::size_t>(n));
  if (std::string(pattern) == "seq") {
    for (i64 i = 0; i < n; ++i) addrs.push_back(i * 8);
  } else if (std::string(pattern) == "strided") {
    for (i64 i = 0; i < n; ++i) addrs.push_back((i * 64) % (n * 8));
  } else {  // random within the same working set
    std::mt19937_64 rng(42);
    for (i64 i = 0; i < n; ++i)
      addrs.push_back(static_cast<i64>(rng() % static_cast<u64>(n)) * 8);
  }
  return addrs;
}

const char* pattern_name(i64 id) {
  return id == 0 ? "seq" : id == 1 ? "strided" : "random";
}

void BM_ShadowWriteRead_PageTable(benchmark::State& state) {
  std::vector<i64> addrs =
      make_addresses(state.range(0), pattern_name(state.range(1)));
  support::CoordPool pool;
  support::CoordRef c = pool.intern(std::vector<i64>{1, 2});
  ddg::ShadowMemory sm;
  for (auto _ : state) {
    int hits = 0;
    for (std::size_t i = 0; i < addrs.size(); ++i) {
      sm.write(addrs[i], {static_cast<int>(i), c});
      if (sm.read(addrs[addrs.size() - 1 - i]) != nullptr) ++hits;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
  state.SetLabel(pattern_name(state.range(1)));
}
BENCHMARK(BM_ShadowWriteRead_PageTable)
    ->Args({1 << 14, 0})
    ->Args({1 << 14, 1})
    ->Args({1 << 14, 2});

void BM_ShadowWriteRead_LegacyHashMap(benchmark::State& state) {
  std::vector<i64> addrs =
      make_addresses(state.range(0), pattern_name(state.range(1)));
  LegacyShadow sm;
  for (auto _ : state) {
    int hits = 0;
    for (std::size_t i = 0; i < addrs.size(); ++i) {
      sm.write(addrs[i], {static_cast<int>(i), {1, 2}});
      if (sm.read(addrs[addrs.size() - 1 - i]) != nullptr) ++hits;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
  state.SetLabel(pattern_name(state.range(1)));
}
BENCHMARK(BM_ShadowWriteRead_LegacyHashMap)
    ->Args({1 << 14, 0})
    ->Args({1 << 14, 1})
    ->Args({1 << 14, 2});

// --- stage-2 replay throughput ----------------------------------------------
void BM_Stage2Replay(benchmark::State& state) {
  static const bench::Trace trace = bench::record_trace("backprop");
  u64 sunk = 0;
  for (auto _ : state) {
    bench::CountingSink sink;
    ddg::DdgBuilder builder(trace.module, trace.cs, &sink,
                            {.track_anti_output = true});
    bench::replay(trace, builder);
    sunk += sink.seen;
  }
  benchmark::DoNotOptimize(sunk);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(trace.events.size()));
  state.SetLabel("backprop");
}
BENCHMARK(BM_Stage2Replay);

// Allocation census: replay the trace twice through one builder — the
// first pass populates the statement table, coordinate arena, shadow
// pages and frame pool; the second pass must not allocate on the
// per-event path. Printed (not google-benchmark timed) so the acceptance
// check "no per-event heap allocation in steady state" is a number in the
// bench output, not an inspection claim. The only tolerated residue is
// the coordinate arena's geometric growth (a handful of reallocs).
void print_allocation_census() {
  std::printf("== Stage-2 steady-state allocation census (backprop) ==\n");
  bench::Trace trace = bench::record_trace("backprop");
  bench::CountingSink sink;
  ddg::DdgBuilder builder(trace.module, trace.cs, &sink,
                          {.track_anti_output = true});
  bench::replay(trace, builder);  // warm-up: statements, pages, coords
  unsigned long long before = g_allocs.load();
  bench::replay(trace, builder);  // steady state
  unsigned long long after = g_allocs.load();
  std::printf("events replayed: %zu   heap allocations: %llu"
              "   (%.6f allocs/event)\n\n",
              trace.events.size(), after - before,
              static_cast<double>(after - before) /
                  static_cast<double>(trace.events.size()));
}

}  // namespace
}  // namespace pp

int main(int argc, char** argv) {
  pp::print_allocation_census();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
