// Regenerates the paper's Fig. 3: the two running examples' traces with
// loop events and dynamic interprocedural iteration vectors —
// Example 1 (a 2-D loop nest spread across two functions) and Example 2
// (self-recursion folded by the recursive-component-set).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "iiv/diiv.hpp"

namespace pp {
namespace {

struct Tracer {
  cfg::ControlStructure cs;
  std::unique_ptr<cfg::LoopEventMachine> lem;
  iiv::DynamicIiv diiv;
  int step = 0;

  explicit Tracer(cfg::ControlStructure cs_in) : cs(std::move(cs_in)) {
    lem = std::make_unique<cfg::LoopEventMachine>(
        cs, [this](const cfg::LoopEvent& ev) {
          diiv.apply(ev);
          std::printf("%3d: %-14s %s\n", step, ev.str().c_str(),
                      diiv.str().c_str());
        });
  }
  void jump(int f, int b) {
    ++step;
    lem->on_jump(f, b);
  }
  void call(int caller, int callee) {
    ++step;
    lem->on_call(caller, callee, 0);
  }
  void ret(int from, int into_f, int into_b) {
    ++step;
    lem->on_return(from, into_f, into_b);
  }
};

void example1() {
  std::printf("== Fig. 3 Example 1: interprocedural 2-D nest ==\n");
  std::printf("M=f0 calls A=f1 (loop L0 at bb1); A1 calls B=f2 (loop L0 at "
              "bb1)\n");
  cfg::ControlStructure cs;
  {
    cfg::FunctionCfg mcfg;
    mcfg.func = 0;
    mcfg.blocks.add_node(0);
    cs.forests.emplace(0, cfg::LoopForest(mcfg));
    cfg::FunctionCfg a;
    a.func = 1;
    a.blocks.add_edge(0, 1);
    a.blocks.add_edge(1, 2);
    a.blocks.add_edge(2, 1);
    a.blocks.add_edge(1, 3);
    cs.forests.emplace(1, cfg::LoopForest(a));
    cfg::FunctionCfg b;
    b.func = 2;
    b.blocks.add_edge(0, 1);
    b.blocks.add_edge(1, 1);
    b.blocks.add_edge(1, 2);
    cs.forests.emplace(2, cfg::LoopForest(b));
    cfg::CallGraph cg;
    cg.graph.add_edge(0, 1);
    cg.graph.add_edge(1, 2);
    cs.rcs = cfg::RecursiveComponentSet(cg, {0});
  }
  Tracer t(std::move(cs));
  t.jump(0, 0);     // N(M0)
  t.call(0, 1);     // C -> A
  t.jump(1, 1);     // E(L) in A
  t.call(1, 2);     // C -> B
  t.jump(2, 1);     // E(L) in B
  t.jump(2, 1);     // I in B
  t.jump(2, 2);     // X in B
  t.ret(2, 1, 1);   // R -> A
  t.jump(1, 2);     // N(A2)
  t.jump(1, 1);     // I in A
  t.jump(1, 3);     // X in A
  t.ret(1, 0, 0);   // R -> M
  std::printf("\n");
}

void example2() {
  std::printf("== Fig. 3 Example 2: recursion via the recursive-component-"
              "set ==\n");
  std::printf("M=f0 calls B=f1 (self-recursive); B1 calls C=f2\n");
  cfg::ControlStructure cs;
  {
    cfg::FunctionCfg mcfg;
    mcfg.func = 0;
    mcfg.blocks.add_node(0);
    cs.forests.emplace(0, cfg::LoopForest(mcfg));
    cfg::FunctionCfg b;
    b.func = 1;
    b.blocks.add_edge(0, 1);
    cs.forests.emplace(1, cfg::LoopForest(b));
    cfg::FunctionCfg c;
    c.func = 2;
    c.blocks.add_node(0);
    cs.forests.emplace(2, cfg::LoopForest(c));
    cfg::CallGraph cg;
    cg.graph.add_edge(0, 1);
    cg.graph.add_edge(1, 1);
    cg.graph.add_edge(1, 2);
    cs.rcs = cfg::RecursiveComponentSet(cg, {0});
  }
  Tracer t(std::move(cs));
  t.jump(0, 0);      // N(M0)
  t.call(0, 1);      // Ec: enter the recursive loop, iv = 0
  t.jump(1, 1);      // N(B1)
  t.call(1, 2);      // C -> C0 (indexed by the recursion iv)
  t.ret(2, 1, 1);    // R
  t.call(1, 1);      // Ic: iv = 1
  t.jump(1, 1);      // N(B1)
  t.call(1, 2);      // C -> C0
  t.ret(2, 1, 1);    // R
  t.call(1, 1);      // Ic: iv = 2
  t.jump(1, 1);      // N(B1)
  t.ret(1, 1, 1);    // Ir: iv = 3 ("it keeps increasing")
  t.ret(1, 1, 1);    // Ir: iv = 4
  t.ret(1, 0, 0);    // Xr: recursion unstacked
  std::printf("\n");
}

void BM_Example2Trace(benchmark::State& state) {
  for (auto _ : state) {
    iiv::DynamicIiv d;
    d.apply({cfg::LoopEvent::Kind::kBlock, 0, 0, -1, -1});
    d.apply({cfg::LoopEvent::Kind::kEnterRec, 1, 0, -1, 0});
    for (int i = 0; i < 64; ++i) {
      d.apply({cfg::LoopEvent::Kind::kBlock, 1, 1, -1, -1});
      d.apply({cfg::LoopEvent::Kind::kIterateRecCall, 1, 0, -1, 0});
    }
    benchmark::DoNotOptimize(d.coordinates());
  }
}
BENCHMARK(BM_Example2Trace);

}  // namespace
}  // namespace pp

int main(int argc, char** argv) {
  pp::example1();
  pp::example2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
