// Ablations of the scheduler's design choices (DESIGN.md):
//  1. skewing on/off — a Gauss-Seidel-style stencil is tilable only with
//     skewing (the wavefront), so disabling the skew candidates loses the
//     band;
//  2. maxfuse vs smartfuse — the Table 5 fusion column;
//  3. exact candidate search vs the approximate identity-only mode (the
//     paper's §10 "approximate (non-optimal) polyhedral scheduling
//     strategies" future work): cheaper, but interchange opportunities
//     disappear.
#include <chrono>

#include "bench_util.hpp"
#include "scheduler/scheduler.hpp"

namespace pp {
namespace {

using namespace scheduler;

Problem seidel_problem() {
  Problem p;
  SchedStatement s;
  s.id = 0;
  s.depth = 2;
  s.ops = 1000;
  s.domain_pieces.push_back(poly::Polyhedron::box({{0, 63}, {0, 63}}));
  p.statements.push_back(std::move(s));
  auto shift = [&](std::vector<i64> delta) {
    std::vector<poly::AffineExpr> outs;
    for (std::size_t i = 0; i < 2; ++i)
      outs.push_back(poly::AffineExpr::var(2, i) - delta[i]);
    SchedDep d;
    d.src = d.dst = 0;
    d.pieces.push_back({poly::Polyhedron::box({{1, 63}, {1, 63}}),
                        poly::AffineMap(2, std::move(outs)), true});
    p.deps.push_back(std::move(d));
  };
  shift({1, 0});
  shift({0, 1});
  shift({1, -1});
  return p;
}

void ablate_skew() {
  std::printf("== Ablation 1: skew candidates (Gauss-Seidel stencil) ==\n");
  Problem p = seidel_problem();
  for (bool skew : {false, true}) {
    Options o;
    o.allow_skew = skew;
    ScheduleResult r = schedule(p, o);
    const GroupSchedule& g = r.groups[0];
    std::printf("  allow_skew=%-5s tile depth=%d  fully permutable=%s  "
                "skewed=%s\n",
                skew ? "true" : "false", g.tile_depth(),
                g.fully_permutable() ? "yes" : "no",
                g.uses_skew() ? "yes" : "no");
  }
  std::printf("  (without skewing the band breaks after one level: no "
              "tiling, no wavefront)\n\n");
}

void ablate_fusion() {
  std::printf("== Ablation 2: fusion heuristics ==\n");
  // Three independent nests plus one producer-consumer pair.
  Problem p;
  for (int i = 0; i < 4; ++i) {
    SchedStatement s;
    s.id = i;
    s.depth = 1;
    s.ops = 1000;
    s.domain_pieces.push_back(poly::Polyhedron::box({{0, 99}}));
    p.statements.push_back(std::move(s));
  }
  SchedDep d;
  d.src = 2;
  d.dst = 3;
  d.pieces.push_back({poly::Polyhedron::box({{0, 99}}),
                      poly::AffineMap::identity(1), true});
  p.deps.push_back(std::move(d));

  for (auto fusion : {FusionHeuristic::kSmartFuse, FusionHeuristic::kMaxFuse}) {
    Options o;
    o.fusion = fusion;
    ScheduleResult r = schedule(p, o);
    std::printf("  %s: %zu fused groups (Comp. = %d at the 5%% threshold)\n",
                fusion == FusionHeuristic::kMaxFuse ? "maxfuse  " : "smartfuse",
                r.groups.size(), r.num_components(0.05, 4000));
  }
  std::printf("\n");
}

void ablate_identity_only() {
  std::printf("== Ablation 3: approximate scheduling (identity-only) ==\n");
  // An interchange-needed nest: dependence (0,1) with the parallel
  // dimension inner... identity keeps it outer-parallel only; the full
  // search is identical here, but on a reversed-preference nest the
  // difference shows in the permutation freedom. Measure cost on a wide
  // problem instead.
  Problem p;
  for (int i = 0; i < 24; ++i) {
    SchedStatement s;
    s.id = i;
    s.depth = 3;
    s.ops = 100;
    s.domain_pieces.push_back(
        poly::Polyhedron::box({{0, 15}, {0, 15}, {0, 15}}));
    p.statements.push_back(std::move(s));
    if (i > 0) {
      SchedDep d;
      d.src = i - 1;
      d.dst = i;
      d.pieces.push_back(
          {poly::Polyhedron::box({{0, 15}, {0, 15}, {0, 15}}),
           poly::AffineMap::identity(3), true});
      p.deps.push_back(std::move(d));
    }
  }
  for (bool approx : {false, true}) {
    Options o;
    o.identity_only = approx;
    o.fusion = FusionHeuristic::kMaxFuse;
    auto t0 = std::chrono::steady_clock::now();
    ScheduleResult r = schedule(p, o);
    auto t1 = std::chrono::steady_clock::now();
    std::printf("  identity_only=%-5s %.1f ms, tile depth=%d\n",
                approx ? "true" : "false",
                std::chrono::duration<double, std::milli>(t1 - t0).count(),
                r.groups[0].tile_depth());
  }
  std::printf("\n");
}

void BM_ScheduleSeidel(benchmark::State& state) {
  Problem p = seidel_problem();
  Options o;
  o.identity_only = state.range(0) != 0;
  for (auto _ : state) {
    ScheduleResult r = schedule(p, o);
    benchmark::DoNotOptimize(r.groups.size());
  }
}
BENCHMARK(BM_ScheduleSeidel)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pp

int main(int argc, char** argv) {
  pp::ablate_skew();
  pp::ablate_fusion();
  pp::ablate_identity_only();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
