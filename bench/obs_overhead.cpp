// Overhead contract of pp::obs (DESIGN.md "Observability"): with a
// Session enabled but the pipeline otherwise idle from obs's point of
// view — no exporters, no report section — the instrumented run must stay
// within a few percent of the uninstrumented one, and a disabled run must
// be indistinguishable from the seed (every entry point is a branch on a
// constant bool).
//
//   $ ./obs_overhead            # human-readable table
//   $ ./obs_overhead --json     # {"overhead_pct":..,"pass":..}; exit 1 on fail
//
// scripts/check.sh runs the --json mode and gates on `pass`. Min-of-N
// wall times keep scheduler noise out of the comparison.
#include <algorithm>
#include <cstdio>
#include <cstring>

#include "core/pipeline.hpp"
#include "obs/obs.hpp"
#include "workloads/workloads.hpp"

using namespace pp;

namespace {

constexpr double kThresholdPct = 3.0;
constexpr int kReps = 7;

double one_wall_ms(const ir::Module& m, bool observe, unsigned threads) {
  core::Pipeline pipe(m);
  core::PipelineOptions opts;
  opts.threads = threads;
  opts.observe = observe;
  const u64 t0 = obs::now_ns();
  core::ProfileResult r = pipe.run(opts);
  const u64 dt = obs::now_ns() - t0;
  if (r.truncated) {
    std::fprintf(stderr, "obs_overhead: unexpected truncated profile\n");
    std::exit(2);
  }
  return static_cast<double>(dt) / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      std::fprintf(stderr, "usage: %s [--json]\n", argv[0]);
      return 2;
    }
  }

  workloads::Workload wl = workloads::make_rodinia("backprop");
  // Serial pipeline: the most overhead-sensitive configuration (no ring /
  // fan-out latency to hide the instrumentation behind). Off/on reps
  // interleave so frequency/cache drift hits both sides equally; one
  // untimed warm-up run absorbs first-touch effects.
  one_wall_ms(wl.module, /*observe=*/false, 1);
  double off_ms = 1e300;
  double on_ms = 1e300;
  for (int i = 0; i < kReps; ++i) {
    off_ms = std::min(off_ms, one_wall_ms(wl.module, /*observe=*/false, 1));
    on_ms = std::min(on_ms, one_wall_ms(wl.module, /*observe=*/true, 1));
  }
  const double overhead_pct = (on_ms - off_ms) / off_ms * 100.0;
  const bool pass = overhead_pct <= kThresholdPct;

  if (json) {
    std::printf("{\"workload\": \"backprop\", \"threads\": 1, "
                "\"reps\": %d, \"off_ms\": %.3f, \"on_ms\": %.3f, "
                "\"overhead_pct\": %.2f, \"threshold_pct\": %.1f, "
                "\"pass\": %s}\n",
                kReps, off_ms, on_ms, overhead_pct, kThresholdPct,
                pass ? "true" : "false");
  } else {
    std::printf("pp::obs enabled-but-idle overhead (backprop, serial, "
                "min of %d)\n", kReps);
    std::printf("  observe off: %8.3f ms\n", off_ms);
    std::printf("  observe on:  %8.3f ms\n", on_ms);
    std::printf("  overhead:    %+7.2f %%  (threshold %.1f %%) -> %s\n",
                overhead_pct, kThresholdPct, pass ? "PASS" : "FAIL");
  }
  return pass ? 0 : 1;
}
