// Shared helpers for the bench binaries: each bench prints the
// paper-style table it regenerates, then runs its google-benchmark
// timings. Keeping the table output on stdout makes
// `for b in build/bench/*; do $b; done` reproduce the whole evaluation.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "workloads/workloads.hpp"

namespace pp::bench {

inline std::string pct(double v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%.0f%%", v);
  return buf;
}

inline std::string human(u64 n) {
  char buf[32];
  if (n >= 1000000000ull)
    std::snprintf(buf, sizeof buf, "%.1fG", static_cast<double>(n) / 1e9);
  else if (n >= 1000000ull)
    std::snprintf(buf, sizeof buf, "%.1fM", static_cast<double>(n) / 1e6);
  else if (n >= 1000ull)
    std::snprintf(buf, sizeof buf, "%.1fK", static_cast<double>(n) / 1e3);
  else
    std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(n));
  return buf;
}

/// Fixed-width row printer.
inline void print_row(const std::vector<std::pair<std::string, int>>& cells) {
  for (const auto& [text, width] : cells) {
    std::string t = text;
    if (static_cast<int>(t.size()) > width) t = t.substr(0, static_cast<std::size_t>(width));
    std::printf("%-*s ", width, t.c_str());
  }
  std::printf("\n");
}

}  // namespace pp::bench
