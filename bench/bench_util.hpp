// Shared helpers for the bench binaries: each bench prints the
// paper-style table it regenerates, then runs its google-benchmark
// timings. Keeping the table output on stdout makes
// `for b in build/bench/*; do $b; done` reproduce the whole evaluation.
#pragma once

#include <benchmark/benchmark.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "workloads/workloads.hpp"

namespace pp::bench {

inline std::string pct(double v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%.0f%%", v);
  return buf;
}

inline std::string human(u64 n) {
  char buf[32];
  if (n >= 1000000000ull)
    std::snprintf(buf, sizeof buf, "%.1fG", static_cast<double>(n) / 1e9);
  else if (n >= 1000000ull)
    std::snprintf(buf, sizeof buf, "%.1fM", static_cast<double>(n) / 1e6);
  else if (n >= 1000ull)
    std::snprintf(buf, sizeof buf, "%.1fK", static_cast<double>(n) / 1e3);
  else
    std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(n));
  return buf;
}

/// FNV-1a 64-bit over arbitrary bytes — stable fingerprint for report
/// byte-identity checks in the machine-readable (--json) bench output.
inline u64 fnv1a(const std::string& bytes) {
  u64 h = 1469598103934665603ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

inline std::string hex64(u64 v) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Minimal JSON string escaping (bench names/notes are plain ASCII).
inline std::string json_str(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

/// Strict numeric flag parsing: atoi silently maps garbage to 0 and a
/// cast to unsigned turns "--threads -1" into 4294967295. Reject anything
/// that is not a whole non-negative decimal number in range, with a
/// usage-style message on stderr.
inline bool parse_unsigned_flag(const char* flag, const char* text,
                                long max_value, unsigned* out) {
  char* end = nullptr;
  errno = 0;
  long v = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE || v < 0 ||
      v > max_value) {
    std::fprintf(stderr, "%s expects an integer in [0, %ld], got '%s'\n",
                 flag, max_value, text);
    return false;
  }
  *out = static_cast<unsigned>(v);
  return true;
}

/// Fixed-width row printer.
inline void print_row(const std::vector<std::pair<std::string, int>>& cells) {
  for (const auto& [text, width] : cells) {
    std::string t = text;
    if (static_cast<int>(t.size()) > width) t = t.substr(0, static_cast<std::size_t>(width));
    std::printf("%-*s ", width, t.c_str());
  }
  std::printf("\n");
}

}  // namespace pp::bench
