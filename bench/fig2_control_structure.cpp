// Regenerates the paper's Fig. 2: (a/b) the example CFG and its
// loop-nesting tree, (c/d) the example call graph and its
// recursive-component-set.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "cfg/loop_forest.hpp"
#include "cfg/recursive_components.hpp"

namespace pp {
namespace {

cfg::FunctionCfg fig2_cfg() {
  // A=0, B=1, C=2, D=3, E=4.
  cfg::FunctionCfg c;
  c.func = 0;
  c.entry = 0;
  c.blocks.add_edge(0, 1);
  c.blocks.add_edge(1, 2);
  c.blocks.add_edge(1, 3);
  c.blocks.add_edge(2, 3);
  c.blocks.add_edge(2, 4);
  c.blocks.add_edge(3, 2);
  c.blocks.add_edge(3, 1);
  return c;
}

cfg::CallGraph fig2_cg() {
  // M=0, B=1, C=2 with M->B, B->C, C->B, C->C.
  cfg::CallGraph cg;
  cg.graph.add_edge(0, 1);
  cg.graph.add_edge(1, 2);
  cg.graph.add_edge(2, 1);
  cg.graph.add_edge(2, 2);
  return cg;
}

void print_fig2() {
  std::printf("== Fig. 2(a/b): CFG -> loop-nesting tree ==\n");
  std::printf("CFG edges: A->B, B->C, B->D, C->D, C->E, D->C, D->B\n");
  cfg::LoopForest lf(fig2_cfg());
  std::printf("%s", lf.str().c_str());
  std::printf("(expected: L1 header B region {B,C,D}; nested L2 header C "
              "region {C,D} — C chosen among entries {C, D})\n\n");

  std::printf("== Fig. 2(c/d): CG -> recursive-component-set ==\n");
  std::printf("CG edges: M->B, B->C, C->B, C->C\n");
  cfg::RecursiveComponentSet rcs(fig2_cg(), {0});
  std::printf("%s", rcs.str().c_str());
  std::printf("(expected: one component {B, C}, entries {B}, headers "
              "{B, C})\n\n");
}

void BM_LoopForestFig2(benchmark::State& state) {
  cfg::FunctionCfg c = fig2_cfg();
  for (auto _ : state) {
    cfg::LoopForest lf(c);
    benchmark::DoNotOptimize(lf.loops().size());
  }
}
BENCHMARK(BM_LoopForestFig2);

void BM_RecursiveComponentsFig2(benchmark::State& state) {
  cfg::CallGraph cg = fig2_cg();
  for (auto _ : state) {
    cfg::RecursiveComponentSet rcs(cg, {0});
    benchmark::DoNotOptimize(rcs.components().size());
  }
}
BENCHMARK(BM_RecursiveComponentsFig2);

}  // namespace
}  // namespace pp

int main(int argc, char** argv) {
  pp::print_fig2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
