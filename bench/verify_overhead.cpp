// pp::verify overhead: what the always-on pipeline-entry verifier costs,
// and what the differential soundness oracle costs on top of a profile,
// measured on the largest mini-Rodinia module (by static instruction
// count). The verifier runs before EVERY pipeline invocation, so its cost
// is the one that matters for profiling latency; the oracle is a
// post-profile validation pass.
#include "bench_util.hpp"
#include "core/pipeline.hpp"
#include "verify/oracle.hpp"
#include "verify/verifier.hpp"

namespace pp {
namespace {

std::size_t static_instrs(const ir::Module& m) {
  std::size_t n = 0;
  for (const auto& f : m.functions)
    for (const auto& bb : f.blocks) n += bb.instrs.size();
  return n;
}

workloads::Workload largest_workload() {
  workloads::Workload best;
  std::size_t best_size = 0;
  for (const auto& name : workloads::rodinia_names()) {
    workloads::Workload w = workloads::make_rodinia(name);
    std::size_t n = static_instrs(w.module);
    if (n > best_size) {
      best_size = n;
      best = std::move(w);
    }
  }
  return best;
}

void print_overhead() {
  std::printf("== pp::verify overhead on the largest mini-Rodinia module ==\n");
  workloads::Workload w = largest_workload();
  std::printf("module: %s (%zu static instructions, %zu functions)\n",
              w.name.c_str(), static_instrs(w.module),
              w.module.functions.size());

  verify::VerifyReport vr = verify::verify_module(w.module);
  std::printf("verifier: %zu issue(s), ok=%s\n", vr.issues.size(),
              vr.ok() ? "yes" : "no");

  core::Pipeline pipe(w.module);
  core::ProfileResult r = pipe.run();
  std::vector<feedback::RegionMetrics> metrics;
  for (const auto& region : r.hot_regions())
    metrics.push_back(r.analyze(region));
  std::vector<feedback::RegionMetrics*> ptrs;
  for (auto& m : metrics) ptrs.push_back(&m);
  verify::OracleReport rep = verify::run_oracle(w.module, r.program, ptrs);
  std::printf("%s\n\n", rep.verdict_line().c_str());
}

void BM_VerifyModule(benchmark::State& state) {
  workloads::Workload w = largest_workload();
  for (auto _ : state) {
    verify::VerifyReport rep = verify::verify_module(w.module);
    benchmark::DoNotOptimize(rep.issues.size());
  }
}
BENCHMARK(BM_VerifyModule)->Unit(benchmark::kMicrosecond);

void BM_VerifyStructuralOnly(benchmark::State& state) {
  // Without the statican-backed alignment pass: the lower bound a
  // latency-sensitive embedder can opt down to.
  workloads::Workload w = largest_workload();
  verify::VerifyOptions opts;
  opts.check_alignment = false;
  for (auto _ : state) {
    verify::VerifyReport rep = verify::verify_module(w.module, opts);
    benchmark::DoNotOptimize(rep.issues.size());
  }
}
BENCHMARK(BM_VerifyStructuralOnly)->Unit(benchmark::kMicrosecond);

void BM_CoverageOracle(benchmark::State& state) {
  workloads::Workload w = largest_workload();
  core::Pipeline pipe(w.module);
  core::ProfileResult r = pipe.run();
  for (auto _ : state) {
    verify::CoverageReport rep =
        verify::check_dynamic_coverage(w.module, r.program);
    benchmark::DoNotOptimize(rep.checked);
  }
}
BENCHMARK(BM_CoverageOracle)->Unit(benchmark::kMillisecond);

void BM_ClaimOracle(benchmark::State& state) {
  workloads::Workload w = largest_workload();
  core::Pipeline pipe(w.module);
  core::ProfileResult r = pipe.run();
  std::vector<feedback::RegionMetrics> metrics;
  for (const auto& region : r.hot_regions())
    metrics.push_back(r.analyze(region));
  for (auto _ : state) {
    for (auto& m : metrics) {
      verify::ClaimReport rep =
          verify::check_parallel_claims(r.program, m, /*downgrade=*/false);
      benchmark::DoNotOptimize(rep.instances_checked);
    }
  }
}
BENCHMARK(BM_ClaimOracle)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pp

int main(int argc, char** argv) {
  pp::print_overhead();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
