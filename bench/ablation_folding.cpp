// Ablations of the folding stage's design choices (DESIGN.md):
//  1. multi-chunk routing (vs the single-open-chunk folder the paper's
//     behaviour on interleaved piecewise streams corresponds to),
//  2. the octagon template rows (vs box-only),
//  3. clamping (bounded instances per statement).
// Each ablation shows the *feedback quality* impact, then times the
// configurations.
#include <chrono>

#include "bench_util.hpp"
#include "fold/folder.hpp"

namespace pp {
namespace {

using fold::Folder;
using fold::FolderOptions;

void ablate_multichunk() {
  std::printf("== Ablation 1: multi-chunk routing ==\n");
  std::printf("stream: a loop-exit compare (affine except on the final "
              "iteration of each row)\n");
  for (std::size_t open : {std::size_t{1}, std::size_t{4}}) {
    FolderOptions o;
    o.max_open_chunks = open;
    Folder f(2, 1, o);
    for (i64 i = 0; i < 16; ++i)
      for (i64 j = 0; j <= 43; ++j) {
        i64 pt[2] = {i, j};
        i64 lab[1] = {j < 43 ? 1 : 0};
        f.add(pt, lab);
      }
    poly::PolySet s = f.finish();
    std::size_t exact = 0;
    for (const auto& p : s.pieces()) exact += p.exact;
    std::printf("  max_open_chunks=%zu: %zu pieces (%zu exact) -> %s\n",
                open, s.pieces().size(), exact,
                s.pieces().size() <= 2 && s.all_exact()
                    ? "recognized as bookkeeping (SCEV-prunable)"
                    : "fragmented: stays in the DDG, constrains scheduling");
  }
  std::printf("\n");
}

void ablate_octagon() {
  std::printf("== Ablation 2: octagon template rows ==\n");
  std::printf("stream: a triangular iteration domain 0 <= j <= i <= 31\n");
  for (bool oct : {false, true}) {
    FolderOptions o;
    o.use_octagon = oct;
    Folder f(2, 0, o);
    for (i64 i = 0; i < 32; ++i)
      for (i64 j = 0; j <= i; ++j) {
        i64 pt[2] = {i, j};
        f.add(pt, {});
      }
    poly::PolySet s = f.finish();
    const auto& p = s.pieces()[0];
    std::printf("  octagon=%s: %s, %llu observed vs %s lattice points\n",
                oct ? "on " : "off",
                p.exact ? "EXACT" : "over-approximated",
                static_cast<unsigned long long>(p.observed_points),
                p.domain.count_points()
                    ? std::to_string(*p.domain.count_points()).c_str()
                    : "?");
  }
  std::printf("\n");
}

void ablate_clamping() {
  std::printf("== Ablation 3: clamping (paper Fig. 1 'clamping') ==\n");
  workloads::Workload w = workloads::make_rodinia("kmeans");
  for (u64 clamp : {u64{0}, u64{64}}) {
    core::PipelineOptions opts;
    opts.ddg.clamp_instances = clamp;
    core::Pipeline pipe(w.module);
    auto t0 = std::chrono::steady_clock::now();
    core::ProfileResult r = pipe.run(opts);
    auto t1 = std::chrono::steady_clock::now();
    std::printf("  clamp=%-4llu: %%Aff=%.0f%%  profile time %.0f ms\n",
                static_cast<unsigned long long>(clamp), r.percent_affine(),
                std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  std::printf("  (clamping bounds per-statement instances: cheaper, and the\n"
              "   folded domains shrink to the observed prefix)\n\n");
}

void ablate_affinity_metric() {
  std::printf("== Ablation 4: strict vs extended %%Aff ==\n");
  std::printf("strict = single-piece folds only (the paper's lattice-less "
              "folding);\nextended = exact piecewise folds also count "
              "(what multi-chunk routing buys)\n");
  std::printf("%-12s %10s %10s\n", "benchmark", "strict", "extended");
  for (const char* name : {"hotspot", "heartwall", "pathfinder", "kmeans"}) {
    workloads::Workload w = workloads::make_rodinia(name);
    core::Pipeline pipe(w.module);
    core::ProfileResult r = pipe.run();
    std::printf("%-12s %9.0f%% %9.0f%%\n", name,
                feedback::percent_affine(r.program, /*strict=*/true),
                feedback::percent_affine(r.program, /*strict=*/false));
  }
  std::printf("\n");
}

void BM_FoldPiecewise(benchmark::State& state) {
  FolderOptions o;
  o.max_open_chunks = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Folder f(2, 1, o);
    for (i64 i = 0; i < 64; ++i)
      for (i64 j = 0; j < 32; ++j) {
        i64 pt[2] = {i, j};
        i64 lab[1] = {j < 31 ? j : -1};
        f.add(pt, lab);
      }
    benchmark::DoNotOptimize(f.finish().pieces().size());
  }
}
BENCHMARK(BM_FoldPiecewise)->Arg(1)->Arg(4);

}  // namespace
}  // namespace pp

int main(int argc, char** argv) {
  pp::ablate_multichunk();
  pp::ablate_octagon();
  pp::ablate_clamping();
  pp::ablate_affinity_metric();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
