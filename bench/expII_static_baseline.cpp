// Experiment II (paper §8): run the Polly-like static analyzer over every
// mini-Rodinia benchmark and report, per benchmark,
//  * whether the whole region of interest could be modeled (never),
//  * why not (the R/C/B/F/A/P taxonomy),
//  * the deepest loop nest the static analysis could still model — the
//    paper's "some smaller subregions, 1D or 2D loop nests, in most
//    benchmarks" (with heartwall's nine 2-D nests and lud's inner nest as
//    the notable larger catches).
#include "bench_util.hpp"
#include "statican/statican.hpp"

namespace pp {
namespace {

void print_expII() {
  std::printf("== Experiment II: static (Polly-like) baseline ==\n");
  bench::print_row({{"benchmark", 14},
                    {"whole region", 12},
                    {"reasons", 8},
                    {"loops", 6},
                    {"modeled", 8},
                    {"deepest modeled nest", 20}});
  int fully_modeled = 0;
  for (const auto& name : workloads::rodinia_names()) {
    workloads::Workload w = workloads::make_rodinia(name);
    std::set<char> reasons;
    int loops = 0, modeled = 0, deepest = 0;
    for (const auto& f : w.module.functions) {
      statican::FunctionVerdict v = statican::analyze_function(w.module, f);
      reasons.insert(v.reasons.begin(), v.reasons.end());
      loops += v.num_loops;
      modeled += v.num_modeled_loops;
      deepest = std::max(deepest, v.max_modeled_nest_depth);
    }
    bool whole = reasons.empty();
    if (whole) ++fully_modeled;
    bench::print_row({{name, 14},
                      {whole ? "YES" : "no", 12},
                      {statican::reasons_str(reasons), 8},
                      {std::to_string(loops), 6},
                      {std::to_string(modeled), 8},
                      {deepest ? std::to_string(deepest) + "D" : "-", 20}});
  }
  std::printf("\nwhole-region modeled: %d / %zu benchmarks (paper: 0 / 19)\n\n",
              fully_modeled, workloads::rodinia_names().size());
}

void BM_StaticAnalysis(benchmark::State& state) {
  workloads::Workload w = workloads::make_rodinia("backprop");
  for (auto _ : state) {
    for (const auto& f : w.module.functions) {
      auto v = statican::analyze_function(w.module, f);
      benchmark::DoNotOptimize(v.reasons.size());
    }
  }
}
BENCHMARK(BM_StaticAnalysis)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace pp

int main(int argc, char** argv) {
  pp::print_expII();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
