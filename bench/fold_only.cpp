// Fold-stage microbench: record one workload's DDG event stream (the
// exact on_instruction / on_dependence sequence Instrumentation II
// emits), then time FoldingSink consumption + finalize() alone. This
// isolates stage 3 from the VM and the DDG builder, which is the right
// lens for folder-asymptotics work — cfd's seed profile spent 3.6 s of a
// 3.8 s pipeline inside fold, so pipeline-level timing is mostly noise
// around the folder.
//
//   $ ./fold_only            # human-readable table
//   $ ./fold_only --json     # {"workloads":[...],"pass":..}; exit 1 on fail
//
// scripts/check.sh runs the --json mode and gates on `pass`: the cfd
// fold wall time must stay under a committed budget (min-of-N to keep
// scheduler noise out).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <vector>

#include "fold/folded_ddg.hpp"
#include "obs/obs.hpp"
#include "trace_replay.hpp"

using namespace pp;

namespace {

// The regression budget for the recorded cfd stream. Seed folded it in
// ~3660 ms; the stride-run/closed-form-count folder does it in ~25 ms.
// 400 ms leaves >10x headroom over the measured time for slow CI boxes
// while still failing loudly on any asymptotic regression.
constexpr double kCfdBudgetMs = 400.0;
constexpr int kReps = 5;

/// Recorded DDG stream: statement copies by id plus one flat coordinate
/// pool, so replay into a sink costs a span construction per event.
struct DdgStream {
  struct Ev {
    bool is_dep = false;
    // instruction fields
    int stmt = 0;
    bool has_value = false, has_address = false;
    i64 value = 0, address = 0;
    // dependence fields
    ddg::DepKind kind = ddg::DepKind::kRegFlow;
    int src = 0, dst = 0, slot = 0;
    // coords in `pool`: [off, off+n1) primary, [off+n1, off+n1+n2) second
    std::size_t off = 0;
    std::size_t n1 = 0, n2 = 0;
  };
  std::vector<ddg::Statement> stmts;  ///< by id
  std::vector<i64> pool;
  std::vector<Ev> events;
  ddg::StatementTable table;

  void replay_into(ddg::DdgSink& sink) const {
    for (const Ev& e : events) {
      std::span<const i64> c1(pool.data() + e.off, e.n1);
      if (e.is_dep) {
        std::span<const i64> c2(pool.data() + e.off + e.n1, e.n2);
        sink.on_dependence(e.kind, e.src, c1, e.dst, c2, e.slot);
      } else {
        sink.on_instruction(stmts[static_cast<std::size_t>(e.stmt)], c1,
                            e.has_value, e.value, e.has_address, e.address);
      }
    }
  }
};

struct StreamRecorder : ddg::DdgSink {
  DdgStream* out;
  explicit StreamRecorder(DdgStream* o) : out(o) {}

  void keep_stmt(const ddg::Statement& s) {
    std::size_t id = static_cast<std::size_t>(s.id);
    if (out->stmts.size() <= id) out->stmts.resize(id + 1);
    out->stmts[id] = s;
  }
  std::size_t push(std::span<const i64> c) {
    std::size_t off = out->pool.size();
    out->pool.insert(out->pool.end(), c.begin(), c.end());
    return off;
  }

  void on_instruction(const ddg::Statement& s, std::span<const i64> coords,
                      bool has_value, i64 value, bool has_address,
                      i64 address) override {
    keep_stmt(s);
    DdgStream::Ev e;
    e.stmt = s.id;
    e.has_value = has_value;
    e.value = value;
    e.has_address = has_address;
    e.address = address;
    e.off = push(coords);
    e.n1 = coords.size();
    out->events.push_back(e);
  }
  void on_dependence(ddg::DepKind kind, int src_stmt,
                     std::span<const i64> src_coords, int dst_stmt,
                     std::span<const i64> dst_coords, int slot) override {
    DdgStream::Ev e;
    e.is_dep = true;
    e.kind = kind;
    e.src = src_stmt;
    e.dst = dst_stmt;
    e.slot = slot;
    e.off = push(dst_coords);
    e.n1 = dst_coords.size();
    push(src_coords);
    e.n2 = src_coords.size();
    out->events.push_back(e);
  }
};

DdgStream record_stream(const char* workload) {
  bench::Trace t = bench::record_trace(workload);
  DdgStream s;
  StreamRecorder rec(&s);
  ddg::DdgBuilder builder(t.module, t.cs, &rec);
  bench::replay(t, builder);
  s.table = builder.statements();
  return s;
}

struct Result {
  const char* workload;
  u64 events;
  double fold_ms;
  u64 pieces;
  u64 cache_hits;
};

Result time_fold(const char* workload) {
  DdgStream s = record_stream(workload);
  Result r{workload, s.events.size(), 1e300, 0, 0};
  for (int i = 0; i < kReps; ++i) {
    fold::FoldingSink sink{fold::FolderOptions{}};
    const u64 t0 = obs::now_ns();
    s.replay_into(sink);
    fold::FoldedProgram prog = sink.finalize(s.table);
    const u64 dt = obs::now_ns() - t0;
    r.fold_ms = std::min(r.fold_ms, static_cast<double>(dt) / 1e6);
    u64 pieces = 0;
    for (const auto& st : prog.statements)
      pieces += st.domain.pieces().size() + st.values.pieces().size() +
                st.addresses.pieces().size();
    for (const auto& d : prog.deps) pieces += d.relation.pieces().size();
    r.pieces = pieces;
    r.cache_hits = sink.cache().hits();
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      std::fprintf(stderr, "usage: %s [--json]\n", argv[0]);
      return 2;
    }
  }

  const char* kWorkloads[] = {"cfd", "heartwall"};
  std::vector<Result> results;
  for (const char* w : kWorkloads) results.push_back(time_fold(w));

  double cfd_ms = 0;
  for (const Result& r : results)
    if (std::strcmp(r.workload, "cfd") == 0) cfd_ms = r.fold_ms;
  const bool pass = cfd_ms <= kCfdBudgetMs;

  if (json) {
    std::printf("{\"reps\": %d, \"workloads\": [", kReps);
    for (std::size_t i = 0; i < results.size(); ++i) {
      const Result& r = results[i];
      std::printf("%s{\"workload\": \"%s\", \"events\": %llu, "
                  "\"fold_ms\": %.3f, \"pieces\": %llu, "
                  "\"cache_hits\": %llu}",
                  i ? ", " : "", r.workload,
                  static_cast<unsigned long long>(r.events), r.fold_ms,
                  static_cast<unsigned long long>(r.pieces),
                  static_cast<unsigned long long>(r.cache_hits));
    }
    std::printf("], \"cfd_budget_ms\": %.1f, \"pass\": %s}\n", kCfdBudgetMs,
                pass ? "true" : "false");
  } else {
    std::printf("fold-only wall time (recorded DDG streams, min of %d)\n",
                kReps);
    for (const Result& r : results)
      std::printf("  %-10s %10llu events  %9.3f ms  %6llu pieces  "
                  "%8llu cache hits\n",
                  r.workload, static_cast<unsigned long long>(r.events),
                  r.fold_ms, static_cast<unsigned long long>(r.pieces),
                  static_cast<unsigned long long>(r.cache_hits));
    std::printf("  cfd budget %.1f ms -> %s\n", kCfdBudgetMs,
                pass ? "PASS" : "FAIL");
  }
  return pass ? 0 : 1;
}
