// Selective instrumentation's payoff contract (ISSUE PR 8): on a kernel
// whose every access site the exact static analysis proves dependence-free,
// skipping the stage-2 shadow work must make the profile measurably faster
// (higher events/sec) while the full_report stays byte-identical; on a
// workload with an empty plan the option must cost nothing.
//
// What skipping elides is the per-event shadow-record traffic. On a
// sequential kernel that traffic is cache-resident and the win drowns in
// the fixed per-event cost, so the timed kernel is a *strided* multi-store
// scatter: every store lands on a fresh shadow cache line, and eliding
// those misses is the measurable slice.
//
//   $ ./selective_overhead            # human-readable table
//   $ ./selective_overhead --json     # machine gate; exit 1 on fail
//
// scripts/check.sh runs the --json mode and gates on `pass`. Min-of-N
// interleaved wall times keep scheduler noise out of the comparison.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "ir/builder.hpp"
#include "obs/obs.hpp"
#include "verify/exact.hpp"
#include "workloads/workloads.hpp"

using namespace pp;

namespace {

constexpr int kReps = 7;
/// Extra reps for the no-op side: the workload is ~20 ms, so min-of-N
/// needs more samples to shake scheduler noise out of a tight ratio.
constexpr int kNoopReps = 15;
/// The scatter's plan covers every store: selective must actually win
/// (median ratio measured ~0.94; the margin absorbs scheduler noise).
constexpr double kScatterRatioMax = 0.98;
/// Empty-plan workload: selective still computes the (empty) plan — one
/// exact-analysis pass, sub-millisecond but visible against a ~20 ms
/// workload. Bound the cost, don't pretend it is zero.
constexpr double kNoopRatioMax = 1.15;

/// `k` strided store streams: out_j[i*stride] = i*3 over disjoint globals.
/// Affine, provably dependence-free (every site skippable), and with
/// stride 8 words each store's shadow Record sits on its own cache line —
/// the full run pays a miss per store that the selective run elides.
/// One word of tail padding per array: statican widens IV ranges by one
/// step (the exit value), which would otherwise make adjacent arrays look
/// dependent at their shared boundary word.
ir::Module make_scatter(i64 n, i64 k, i64 stride) {
  ir::Module m;
  std::vector<i64> bases;
  for (i64 j = 0; j < k; ++j) {
    std::string name = "out" + std::to_string(j);
    bases.push_back(m.add_global(name, (n * stride + 1) * 8));
  }
  ir::Function& f = m.add_function("main", 0);
  ir::Builder b(m, f);
  b.set_block(b.make_block());
  std::vector<ir::Reg> rb;
  for (i64 j = 0; j < k; ++j)
    rb.push_back(b.const_(bases[static_cast<std::size_t>(j)]));
  ir::Reg nn = b.const_(n);
  b.counted_loop(0, nn, 1, [&](ir::Reg iv) {
    ir::Reg off = b.muli(iv, stride * 8);
    ir::Reg v = b.muli(iv, 3);
    for (i64 j = 0; j < k; ++j)
      b.store(b.add(rb[static_cast<std::size_t>(j)], off), v);
  });
  // Return a pre-loop register: a loop-defined one is not defined on the
  // zero-trip path and the IR verifier rejects the whole module.
  b.ret(nn);
  return m;
}

/// out[i] = a[i]*3 + b[i]: the canonical all-sites-skippable kernel from
/// core_selective_test, used here for the byte-identity spot check.
ir::Module make_triad(i64 n) {
  ir::Module m;
  std::vector<i64> init(static_cast<std::size_t>(n) + 1);
  for (i64 i = 0; i <= n; ++i) init[static_cast<std::size_t>(i)] = i * 7 + 1;
  const i64 ga = m.add_global_init("a", init);
  const i64 gb = m.add_global_init("b", init);
  const i64 go = m.add_global("out", (n + 1) * 8);
  ir::Function& f = m.add_function("main", 0);
  ir::Builder b(m, f);
  b.set_block(b.make_block());
  ir::Reg ra = b.const_(ga);
  ir::Reg rb = b.const_(gb);
  ir::Reg ro = b.const_(go);
  ir::Reg nn = b.const_(n);
  b.counted_loop(0, nn, 1, [&](ir::Reg iv) {
    ir::Reg off = b.muli(iv, 8);
    ir::Reg x = b.load(b.add(ra, off));
    ir::Reg y = b.load(b.add(rb, off));
    b.store(b.add(ro, off), b.add(b.muli(x, 3), y));
  });
  b.ret(nn);
  return m;
}

struct Run {
  double ms = 0;
  u64 events = 0;
};

Run one_run(const ir::Module& m, bool selective) {
  core::Pipeline pipe(m);
  core::PipelineOptions opts;
  opts.threads = 1;
  opts.selective_instrumentation = selective;
  const u64 t0 = obs::now_ns();
  core::ProfileResult r = pipe.run(opts);
  const u64 dt = obs::now_ns() - t0;
  if (r.truncated) {
    std::fprintf(stderr, "selective_overhead: unexpected truncated profile\n");
    std::exit(2);
  }
  return {static_cast<double>(dt) / 1e6, r.stats.instructions};
}

double median(std::vector<double> v) {
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  return v[mid];
}

struct Comparison {
  std::string name;
  std::size_t plan_sites = 0;
  double full_ms = 0, sel_ms = 0;  ///< medians, reported for context
  double med_ratio = 0;            ///< median of paired ratios — the gate
  u64 events = 0;
  double ratio() const { return med_ratio; }
  double full_eps() const { return static_cast<double>(events) / full_ms * 1e3; }
  double sel_eps() const { return static_cast<double>(events) / sel_ms * 1e3; }
};

/// Each rep times full and selective back to back and records their ratio;
/// the gate is the MEDIAN of those paired ratios. Pairing cancels slow
/// machine drift and the median resists one-off outliers in either
/// direction — a min-of-N gate flips whenever a single lucky run lands in
/// the denominator.
Comparison compare(const std::string& name, const ir::Module& m,
                   int reps = kReps) {
  Comparison c;
  c.name = name;
  c.plan_sites = verify::exact::compute_selective_plan(m).total_sites();
  one_run(m, false);  // warm-up absorbs first-touch effects
  std::vector<double> fulls, sels, ratios;
  for (int i = 0; i < reps; ++i) {
    Run full = one_run(m, false);
    Run sel = one_run(m, true);
    fulls.push_back(full.ms);
    sels.push_back(sel.ms);
    ratios.push_back(sel.ms / full.ms);
    c.events = full.events;
  }
  c.full_ms = median(fulls);
  c.sel_ms = median(sels);
  c.med_ratio = median(ratios);
  return c;
}

std::string report_of(const ir::Module& m, bool selective) {
  core::Pipeline pipe(m);
  core::PipelineOptions opts;
  opts.threads = 1;
  opts.selective_instrumentation = selective;
  core::ProfileResult r = pipe.run(opts);
  return core::full_report(r);
}

bool identical_reports(const ir::Module& m) {
  return report_of(m, false) == report_of(m, true);
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      std::fprintf(stderr, "usage: %s [--json]\n", argv[0]);
      return 2;
    }
  }

  // Timing kernels: the cache-hostile scatter (every site skippable — the
  // win) and one real workload with an empty plan (the no-regression side).
  const ir::Module scatter = make_scatter(1 << 16, 8, 8);
  workloads::Workload noop = workloads::make_rodinia("backprop");
  Comparison sc = compare("scatter", scatter);
  Comparison nop = compare("backprop", noop.module, kNoopReps);

  // Byte-identity spot checks (the full sweep lives in core_selective_test);
  // small instances keep the reports (oracle included) cheap.
  const bool identical = identical_reports(make_triad(4096)) &&
                         identical_reports(make_scatter(1024, 8, 8));

  const bool pass = sc.plan_sites > 0 && sc.ratio() <= kScatterRatioMax &&
                    nop.ratio() <= kNoopRatioMax && identical;

  if (json) {
    std::printf(
        "{\"scatter\": {\"plan_sites\": %zu, \"events\": %llu, "
        "\"full_ms\": %.3f, \"selective_ms\": %.3f, \"ratio\": %.3f, "
        "\"full_events_per_sec\": %.0f, \"selective_events_per_sec\": %.0f}, "
        "\"backprop\": {\"plan_sites\": %zu, \"full_ms\": %.3f, "
        "\"selective_ms\": %.3f, \"ratio\": %.3f}, "
        "\"report_identical\": %s, \"scatter_ratio_max\": %.2f, "
        "\"noop_ratio_max\": %.2f, \"pass\": %s}\n",
        sc.plan_sites, static_cast<unsigned long long>(sc.events),
        sc.full_ms, sc.sel_ms, sc.ratio(), sc.full_eps(), sc.sel_eps(),
        nop.plan_sites, nop.full_ms, nop.sel_ms, nop.ratio(),
        identical ? "true" : "false", kScatterRatioMax, kNoopRatioMax,
        pass ? "true" : "false");
  } else {
    std::printf(
        "selective instrumentation overhead (serial, min of %d/%d)\n",
        kReps, kNoopReps);
    std::printf(
        "  scatter  (%zu skippable sites, %llu events):\n"
        "    full:      %8.3f ms  (%.1f M events/s)\n"
        "    selective: %8.3f ms  (%.1f M events/s)  ratio %.3f "
        "(max %.2f)\n",
        sc.plan_sites, static_cast<unsigned long long>(sc.events),
        sc.full_ms, sc.full_eps() / 1e6, sc.sel_ms, sc.sel_eps() / 1e6,
        sc.ratio(), kScatterRatioMax);
    std::printf(
        "  backprop (empty plan, no-regression):\n"
        "    full:      %8.3f ms\n"
        "    selective: %8.3f ms  ratio %.3f (max %.2f)\n",
        nop.full_ms, nop.sel_ms, nop.ratio(), kNoopRatioMax);
    std::printf("  full_report byte-identical: %s\n",
                identical ? "yes" : "NO");
    std::printf("  -> %s\n", pass ? "PASS" : "FAIL");
  }
  return pass ? 0 : 1;
}
