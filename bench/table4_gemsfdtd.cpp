// Regenerates the paper's Table 4 (GemsFDTD case study): per fat region,
// the tiling feedback (all update loops fully parallel and tilable), and
// the cycle-model speedup of the hand-tiled variant.
#include "bench_util.hpp"

namespace pp {
namespace {

void print_table4() {
  std::printf("== Table 4: GemsFDTD case study ==\n");
  const i64 n = 12;
  ir::Module base = workloads::make_gemsfdtd(n, n, n);
  core::Pipeline pipe(base);
  core::ProfileResult r = pipe.run();

  std::printf("program: %s dynamic ops, %%Aff = %.0f%%\n",
              bench::human(r.program.total_dynamic_ops).c_str(),
              r.percent_affine());

  bench::print_row({{"Fat region", 36},
                    {"%op", 5},
                    {"parallel", 9},
                    {"tilable", 8},
                    {"TileD", 6},
                    {"suggest", 40}});
  for (const auto& region : r.hot_regions(0.05)) {
    feedback::RegionMetrics mx = r.analyze(region);
    double rops = 100.0 * static_cast<double>(mx.ops) /
                  static_cast<double>(r.program.total_dynamic_ops);
    std::string tiles;
    for (const auto& s : mx.suggestions)
      if (s.find("tile") != std::string::npos) tiles = s;
    bench::print_row({{region.name, 36},
                      {bench::pct(rops), 5},
                      {mx.parallel_ops == 0 ? "no" : "yes", 9},
                      {mx.tile_depth >= 2 ? "yes" : "no", 8},
                      {std::to_string(mx.tile_depth) + "D", 6},
                      {tiles.empty() ? "-" : tiles, 40}});
  }

  // Speedup at a grid size whose six field arrays exceed the modeled
  // cache (the paper's grids dwarf L2 likewise).
  const i64 big = 20;
  ir::Module base_big = workloads::make_gemsfdtd(big, big, big);
  ir::Module tiled = workloads::make_gemsfdtd_tiled(big, big, big, 4);
  vm::Machine v1(base_big), v2(tiled);
  vm::RunResult r1 = v1.run("main");
  vm::RunResult r2 = v2.run("main");
  PP_CHECK(r1.exit_value == r2.exit_value,
           "tiled GemsFDTD diverged from the baseline");
  std::printf(
      "\ncycle-model speedup after tiling every dimension (T=4) + fusing "
      "component sweeps: %.2fx (misses %llu -> %llu)\n\n",
      static_cast<double>(r1.stats.cycles) /
          static_cast<double>(r2.stats.cycles),
      static_cast<unsigned long long>(r1.stats.cache_misses),
      static_cast<unsigned long long>(r2.stats.cache_misses));
}

void BM_FdtdBaseline(benchmark::State& state) {
  ir::Module m = workloads::make_gemsfdtd(12, 12, 12);
  vm::Machine vm(m);
  for (auto _ : state) benchmark::DoNotOptimize(vm.run("main").stats.cycles);
}
BENCHMARK(BM_FdtdBaseline)->Unit(benchmark::kMillisecond);

void BM_FdtdTiled(benchmark::State& state) {
  ir::Module m = workloads::make_gemsfdtd_tiled(12, 12, 12, 4);
  vm::Machine vm(m);
  for (auto _ : state) benchmark::DoNotOptimize(vm.run("main").stats.cycles);
}
BENCHMARK(BM_FdtdTiled)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pp

int main(int argc, char** argv) {
  pp::print_table4();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
