// Experiment I's cost accounting ("the first three stages of POLY-PROF
// took 3h06' CPU for the full Rodinia suite"): measures the overhead of
// each pipeline stage against the uninstrumented run — native execution,
// stage 1 (control-structure instrumentation), stage 1+2+3 (full DDG
// profiling and folding) — plus events/second throughput of the folding
// kernel itself.
#include <chrono>
#include <thread>

#include "bench_util.hpp"
#include "fold/folder.hpp"
#include "trace_replay.hpp"

namespace pp {
namespace {

void print_overheads() {
  std::printf("== Profiling overhead per stage (mini-Rodinia subset) ==\n");
  std::printf("%-14s %12s %12s %14s %10s\n", "benchmark", "native(ms)",
              "stage1(ms)", "stage1-3(ms)", "slowdown");
  for (const char* name : {"backprop", "hotspot", "kmeans", "nw", "srad_v2"}) {
    workloads::Workload w = workloads::make_rodinia(name);
    auto clock_ms = [](auto fn) {
      auto t0 = std::chrono::steady_clock::now();
      fn();
      auto t1 = std::chrono::steady_clock::now();
      return std::chrono::duration<double, std::milli>(t1 - t0).count();
    };
    double native = clock_ms([&] {
      vm::Machine vm(w.module);
      vm.run("main");
    });
    double stage1 = clock_ms([&] {
      vm::Machine vm(w.module);
      cfg::DynamicCfgBuilder dyn;
      vm.set_observer(&dyn);
      vm.run("main");
    });
    double full = clock_ms([&] {
      core::Pipeline pipe(w.module);
      pipe.run();
    });
    std::printf("%-14s %12.2f %12.2f %14.2f %9.1fx\n", name, native, stage1,
                full, native > 0 ? full / native : 0.0);
  }
  std::printf("\n");
}

// Machine-readable mode (--json): the same stage-overhead accounting as
// the table, plus the full pipeline timed serial (threads=1) and threaded
// (threads=4) with report byte-identity — the §8 cost numbers consumed by
// BENCH_parallel_pipeline.json.
int print_json() {
  auto clock_ms = [](auto fn) {
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
  };
  std::printf("{\n  \"bench\": \"overhead_profiling\",\n");
  std::printf("  \"hardware_threads\": %u,\n",
              std::thread::hardware_concurrency());
  std::printf("  \"benchmarks\": [\n");
  const std::vector<std::string> names = {"backprop", "hotspot", "kmeans",
                                          "nw", "srad_v2"};
  for (std::size_t i = 0; i < names.size(); ++i) {
    workloads::Workload w = workloads::make_rodinia(names[i]);
    double native = clock_ms([&] {
      vm::Machine vm(w.module);
      vm.run("main");
    });
    double stage1 = clock_ms([&] {
      vm::Machine vm(w.module);
      cfg::DynamicCfgBuilder dyn;
      vm.set_observer(&dyn);
      vm.run("main");
    });
    std::string serial_report, threaded_report;
    auto full_run = [&](unsigned threads, std::string* report) {
      return clock_ms([&] {
        core::Pipeline pipe(w.module);
        core::PipelineOptions opts;
        opts.threads = threads;
        core::ProfileResult r = pipe.run(opts);
        *report = core::full_report(r);
      });
    };
    double serial_ms = full_run(1, &serial_report);
    double threaded_ms = full_run(4, &threaded_report);
    std::printf(
        "    {\"name\": %s, \"native_ms\": %.2f, \"stage1_ms\": %.2f, "
        "\"full_serial_ms\": %.2f, \"full_threads4_ms\": %.2f, "
        "\"slowdown_serial\": %.1f, \"speedup_threads4\": %.2f, "
        "\"report_identical\": %s}%s\n",
        bench::json_str(names[i]).c_str(), native, stage1, serial_ms,
        threaded_ms, native > 0 ? serial_ms / native : 0.0,
        threaded_ms > 0 ? serial_ms / threaded_ms : 0.0,
        serial_report == threaded_report ? "true" : "false",
        i + 1 < names.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
  return 0;
}

// Stage-2 (Instrumentation II) throughput: the recorded VM event stream
// replayed straight into DdgBuilder, so the number is the DDG builder's
// own events/second — shadow memory, iteration-vector interning and
// statement identification — without interpreter or folding cost. This is
// the hot path the page-table shadow + CoordPool rewrite targets.
void print_stage2_throughput() {
  std::printf("== Stage-2 DDG throughput (trace replay, anti/output on) ==\n");
  std::printf("%-14s %12s %14s %14s %12s\n", "benchmark", "events",
              "events/sec", "shadow pages", "coord words");
  for (const char* name : {"backprop", "hotspot", "kmeans", "nw", "srad_v2"}) {
    bench::Trace trace = bench::record_trace(name);
    const int reps = 10;
    u64 sunk = 0;
    std::size_t pages = 0, coord_words = 0;
    auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) {
      bench::CountingSink sink;
      ddg::DdgBuilder builder(trace.module, trace.cs, &sink,
                              {.track_anti_output = true});
      bench::replay(trace, builder);
      sunk += sink.seen;
      pages = builder.shadow().pages_live();
      coord_words = builder.coord_pool().size_words();
    }
    auto t1 = std::chrono::steady_clock::now();
    double sec = std::chrono::duration<double>(t1 - t0).count();
    double evs = static_cast<double>(trace.events.size()) * reps / sec;
    std::printf("%-14s %12zu %14s %14zu %12zu\n", name, trace.events.size(),
                (bench::human(static_cast<u64>(evs)) + "/s").c_str(), pages,
                coord_words);
    benchmark::DoNotOptimize(sunk);
  }
  std::printf("\n");
}

// Folding kernel throughput: points/second for the streaming folder on an
// affine 2-D stream (the per-event cost every dependence pays).
void BM_FolderThroughput(benchmark::State& state) {
  const i64 n = state.range(0);
  for (auto _ : state) {
    fold::Folder f(2, 2);
    for (i64 i = 0; i < n; ++i) {
      for (i64 j = 0; j < 16; ++j) {
        i64 pt[2] = {i, j};
        i64 lab[2] = {i, j - 1};
        f.add(pt, lab);
      }
    }
    benchmark::DoNotOptimize(f.finish().pieces().size());
  }
  state.SetItemsProcessed(state.iterations() * n * 16);
}
BENCHMARK(BM_FolderThroughput)->Arg(64)->Arg(512);

void BM_VmThroughput(benchmark::State& state) {
  workloads::Workload w = workloads::make_rodinia("srad_v2");
  vm::Machine vm(w.module);
  for (auto _ : state) {
    vm::RunResult r = vm.run("main");
    state.SetItemsProcessed(static_cast<int64_t>(r.stats.instructions));
    benchmark::DoNotOptimize(r.exit_value);
  }
}
BENCHMARK(BM_VmThroughput)->Unit(benchmark::kMillisecond);

// Full-pipeline events/second (the "3h06' for the whole suite" analog).
void BM_FullPipeline(benchmark::State& state) {
  workloads::Workload w = workloads::make_rodinia("kmeans");
  for (auto _ : state) {
    core::Pipeline pipe(w.module);
    core::ProfileResult r = pipe.run();
    state.SetItemsProcessed(
        static_cast<int64_t>(r.program.total_dynamic_ops));
  }
}
BENCHMARK(BM_FullPipeline)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pp

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--json") return pp::print_json();
  pp::print_overheads();
  pp::print_stage2_throughput();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
