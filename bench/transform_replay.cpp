// Transform replay — the paper's Table 3/4 payoff, automated: run every
// mini-Rodinia workload through the full pipeline with the transformation
// engine on, and print the profiler's *predicted* speedup next to the
// *measured* simulated speedup of the rewritten module under the VM cost
// model, plus the output-identity verdict for every applied schedule.
//
// The process exit code is the soundness + usefulness gate scripts/check.sh
// relies on:
//   * nonzero if ANY applied schedule failed the byte-identity contract
//     (a soundness violation — the engine's legality reasoning or the
//     profiler's dependence information is wrong);
//   * nonzero unless interchange, tiling and fusion are EACH exercised by
//     at least one workload with measured speedup > 1.0x (the evaluation
//     claim being reproduced).
//
// `--json` prints the machine-readable form of the same table.
#include "bench_util.hpp"

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "transform/engine.hpp"
#include "workloads/workloads.hpp"

namespace pp {
namespace {

struct WorkloadResult {
  std::string name;
  transform::EngineReport rep;
};

std::vector<WorkloadResult> replay_all() {
  std::vector<WorkloadResult> out;
  for (const std::string& name : workloads::rodinia_names()) {
    workloads::Workload w = workloads::make_rodinia(name);
    core::PipelineOptions opts;
    opts.apply_transforms = true;
    core::Pipeline pipe(w.module);
    core::ProfileResult r = pipe.run(opts);
    out.push_back({name, std::move(r.transform)});
  }
  return out;
}

struct Gate {
  bool all_identical = true;   // every applied schedule byte-identical
  bool no_violations = true;   // no EngineReport carries a violation
  // kind -> best measured speedup over all workloads
  std::map<transform::Kind, double> best;
  bool each_kind_wins() const {
    for (transform::Kind k : {transform::Kind::kInterchange,
                              transform::Kind::kTile, transform::Kind::kFuse}) {
      auto it = best.find(k);
      if (it == best.end() || it->second <= 1.0) return false;
    }
    return true;
  }
  bool pass() const { return all_identical && no_violations && each_kind_wins(); }
};

Gate evaluate(const std::vector<WorkloadResult>& results) {
  Gate g;
  for (const WorkloadResult& wr : results) {
    g.no_violations &= wr.rep.ok();
    for (const transform::Applied& a : wr.rep.applied) {
      g.all_identical &= a.output_identical;
      double& best = g.best[a.kind];
      if (a.measured > best) best = a.measured;
    }
  }
  return g;
}

void print_table(const std::vector<WorkloadResult>& results, const Gate& g) {
  std::printf("transform replay: predicted vs measured simulated speedup "
              "(VM cost model)\n\n");
  bench::print_row({{"workload", 14},
                    {"transformation", 34},
                    {"pred", 6},
                    {"meas", 6},
                    {"output", 9}});
  for (const WorkloadResult& wr : results) {
    if (!wr.rep.ran) {
      bench::print_row({{wr.name, 14},
                        {"(skipped: " + wr.rep.skipped_reason + ")", 34},
                        {"-", 6},
                        {"-", 6},
                        {"-", 9}});
      continue;
    }
    if (wr.rep.applied.empty()) {
      bench::print_row(
          {{wr.name, 14}, {"-", 34}, {"-", 6}, {"-", 6}, {"-", 9}});
      continue;
    }
    bool first = true;
    for (const transform::Applied& a : wr.rep.applied) {
      char pred[16], meas[16];
      std::snprintf(pred, sizeof pred, "%.2fx", a.predicted);
      std::snprintf(meas, sizeof meas, "%.2fx", a.measured);
      bench::print_row({{first ? wr.name : "", 14},
                        {a.desc, 34},
                        {pred, 6},
                        {meas, 6},
                        {a.output_identical ? "identical" : "DIFFERS", 9}});
      first = false;
    }
    for (const std::string& v : wr.rep.violations)
      std::printf("  SOUNDNESS VIOLATION: %s\n", v.c_str());
  }
  std::printf("\nbest measured speedup per transformation kind:\n");
  for (auto k : {transform::Kind::kInterchange, transform::Kind::kTile,
                 transform::Kind::kFuse}) {
    auto it = g.best.find(k);
    if (it == g.best.end())
      std::printf("  %-12s never applied\n", transform::kind_name(k));
    else
      std::printf("  %-12s %.2fx\n", transform::kind_name(k), it->second);
  }
  std::printf("gate: %s\n", g.pass() ? "PASS" : "FAIL");
}

void print_json(const std::vector<WorkloadResult>& results, const Gate& g) {
  std::printf("{\n  \"bench\": \"transform_replay\",\n  \"workloads\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const WorkloadResult& wr = results[i];
    std::printf("    {\"name\": %s, \"ran\": %s, \"baseline_cycles\": %llu, "
                "\"combined_speedup\": %.4f, \"combined_identical\": %s, "
                "\"violations\": %zu, \"applied\": [",
                bench::json_str(wr.name).c_str(), wr.rep.ran ? "true" : "false",
                static_cast<unsigned long long>(wr.rep.baseline_cycles),
                wr.rep.combined_speedup,
                wr.rep.combined_identical ? "true" : "false",
                wr.rep.violations.size());
    for (std::size_t j = 0; j < wr.rep.applied.size(); ++j) {
      const transform::Applied& a = wr.rep.applied[j];
      std::printf("%s{\"kind\": %s, \"desc\": %s, \"predicted\": %.4f, "
                  "\"measured\": %.4f, \"output_identical\": %s}",
                  j ? ", " : "", bench::json_str(kind_name(a.kind)).c_str(),
                  bench::json_str(a.desc).c_str(), a.predicted, a.measured,
                  a.output_identical ? "true" : "false");
    }
    std::printf("], \"refused\": %zu}%s\n", wr.rep.refused.size(),
                i + 1 < results.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"all_output_identical\": %s,\n",
              g.all_identical && g.no_violations ? "true" : "false");
  std::printf("  \"each_kind_speedup_above_1\": %s,\n",
              g.each_kind_wins() ? "true" : "false");
  std::printf("  \"gate\": %s\n}\n", g.pass() ? "\"PASS\"" : "\"FAIL\"");
}

// google-benchmark timing: cost of the transform phase itself on the
// workload with the richest plan set.
void BM_TransformReplay(benchmark::State& state, const std::string& name) {
  workloads::Workload w = workloads::make_rodinia(name);
  for (auto _ : state) {
    core::PipelineOptions opts;
    opts.apply_transforms = true;
    core::Pipeline pipe(w.module);
    core::ProfileResult r = pipe.run(opts);
    benchmark::DoNotOptimize(r.transform.applied.size());
  }
}

}  // namespace
}  // namespace pp

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--json") json = true;

  std::vector<pp::WorkloadResult> results = pp::replay_all();
  pp::Gate gate = pp::evaluate(results);
  if (json) {
    pp::print_json(results, gate);
    return gate.pass() ? 0 : 1;
  }
  pp::print_table(results, gate);
  for (const char* name : {"kmeans", "streamcluster"}) {
    benchmark::RegisterBenchmark(
        (std::string("BM_TransformReplay/") + name).c_str(),
        [name](benchmark::State& s) { pp::BM_TransformReplay(s, name); })
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return gate.pass() ? 0 : 1;
}
