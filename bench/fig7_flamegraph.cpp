// Regenerates the paper's Fig. 7: the annotated flame graph of the
// backprop benchmark. Writes flamegraph_backprop.svg next to the binary
// and prints the ASCII rendering plus the per-region annotations
// (transformation suggestions) that the paper overlays on the SVG.
#include "bench_util.hpp"
#include <set>

#include "feedback/flamegraph.hpp"

namespace pp {
namespace {

void print_fig7() {
  std::printf("== Fig. 7: annotated flame graph for backprop ==\n");
  ir::Module m = workloads::make_backprop();
  core::Pipeline pipe(m);
  core::ProfileResult r = pipe.run();

  feedback::FlameGraphOptions opts;
  opts.title = "poly-prof: backprop dynamic schedule tree";
  // Gray out the "libc" and initialization regions, exactly like the
  // paper's Fig. 7 ("grayed regions are non-affine and blacklisted
  // (initialization and extensive calls to libc)").
  std::set<int> libc_funcs;
  for (const auto& fn : m.functions)
    if (fn.source_file == "libc") libc_funcs.insert(fn.id);
  for (int id = 1; id < static_cast<int>(r.schedule_tree.size()); ++id) {
    const auto& node = r.schedule_tree.node(id);
    if (node.elem.func >= 0 && libc_funcs.count(node.elem.func))
      opts.grayed.insert(id);
  }
  std::string svg = feedback::render_flamegraph_svg(r.schedule_tree, &m, opts);
  const char* path = "flamegraph_backprop.svg";
  FILE* f = std::fopen(path, "w");
  if (f) {
    std::fwrite(svg.data(), 1, svg.size(), f);
    std::fclose(f);
    std::printf("wrote %s (%zu bytes)\n\n", path, svg.size());
  }

  std::printf("%s\n",
              feedback::render_flamegraph_ascii(r.schedule_tree, &m).c_str());

  std::printf("region annotations (the paper's clickable notes):\n");
  int idx = 1;
  for (const auto& region : r.hot_regions(0.08)) {
    feedback::RegionMetrics mx = r.analyze(region);
    std::printf("%d. %s — %.0f%% of ops.", idx++, region.name.c_str(),
                100.0 * static_cast<double>(mx.ops) /
                    static_cast<double>(r.program.total_dynamic_ops));
    for (const auto& s : mx.suggestions) std::printf(" %s.", s.c_str());
    std::printf("\n");
  }
  std::printf("\n");
}

void BM_RenderFlameGraph(benchmark::State& state) {
  ir::Module m = workloads::make_backprop();
  core::Pipeline pipe(m);
  core::ProfileResult r = pipe.run();
  for (auto _ : state) {
    std::string svg = feedback::render_flamegraph_svg(r.schedule_tree, &m);
    benchmark::DoNotOptimize(svg.size());
  }
}
BENCHMARK(BM_RenderFlameGraph)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pp

int main(int argc, char** argv) {
  pp::print_fig7();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
