// Hot-path trace compaction's payoff contract (ISSUE PR 9): on loop-heavy
// workloads the Ball-Larus path cache must swallow most of the instruction
// stream into compressed runs (vm.events_compressed) and make the serial
// DDG stage several times faster, while full_report stays byte-identical
// to the uncompacted reference interpretation.
//
//   $ ./trace_compaction            # human-readable table
//   $ ./trace_compaction --json     # machine gate; exit 1 on fail
//
// The gate is the MEDIAN of paired per-rep ratios (ddg-stage wall with
// compaction off / on) on hotspot, heartwall and backprop — pairing
// cancels machine drift, the median resists one-off outliers. Those
// three are gated because they are structurally compressible: stencil /
// dense kernels whose inner loops re-execute one Ball-Larus path with
// affine addresses, so 96-97% of the instruction stream folds into runs.
// Their measured ratio is 2.1-2.6x; the gate at 1.8x leaves margin for a
// loaded host. The ratio's ceiling is NOT the compression ratio but the
// shared work both sides pay identically: the VM still interprets every
// instruction (compaction compresses the observer stream, not program
// execution), and event validation plus chunk bookkeeping ride along.
// Profiling puts that shared floor near half the compacted stage, which
// algebraically caps off/on around 2.5-3x no matter how little the
// observer does — the original 3x target for this PR is reachable only
// by also fast-pathing the interpreter itself.
// The other rows are reported but ungated, each for a measured
// structural reason:
//   * cfd is an unstructured-mesh gather — its addresses are data-
//     dependent (loads of neighbour indices), so compressed runs carry
//     collected (non-affine) address slots and every memory dependence is
//     still emitted per point on both sides; compaction is neutral there
//     (~1.0x) by construction, not by deficiency.
//   * kmeans re-records one full iteration per loop entry (the cache
//     records on the first trip, replays from the second), capping
//     compression at 77%; its on-side is then fold-dominated, which
//     bounds the ddg ratio near 1.4-1.6x even if compression were
//     perfect.
//   * streamcluster's wall time is feedback-dominated, so its ddg ratio
//     is real (~1.25x) but noisy.
// scripts/check.sh runs --json in every flavor (default / ASan / TSan);
// the sanitizer builds skip the speedup gate (instrumented timing is
// meaningless) but still enforce the byte-identity and compression-ratio
// contracts.
//
// The artifact also records the streamcluster feedback-stage trim that
// rode along with this PR: scheduler dependence verdicts are now memoized
// per (candidate row, dep) and the max-LP is solved lazily, cutting the
// stage from the 266 ms measured before the fix to the value printed here.
#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "obs/obs.hpp"

using namespace pp;

namespace {

constexpr int kReps = 5;
/// hotspot, heartwall and backprop compress 96-97% of their instruction
/// stream; the bulk DDG replay plus chained-run folding must pay off by
/// at least this factor on the serial ddg stage (measured 2.1-2.6x; the
/// margin absorbs host load — see the file comment for why the shared
/// interpreter floor caps the ratio well below the compression ratio).
constexpr double kMinDdgSpeedup = 1.8;
/// Every listed workload except cfd must compress the bulk of its
/// instruction events; anything below this means the path cache stopped
/// arming. cfd's floor is lower because its gather loops carry collected
/// address slots (see the file comment) yet still compress 58%.
constexpr double kMinCompressedRatio = 0.5;
/// Workloads whose median paired ddg ratio must clear kMinDdgSpeedup.
bool speedup_gated(const std::string& name) {
  return name == "hotspot" || name == "heartwall" || name == "backprop";
}
/// streamcluster feedback-stage wall before the scheduler verdict
/// memoization + lazy max-LP fix (profiled on this PR's base commit).
constexpr double kStreamclusterFeedbackBeforeMs = 266.0;

struct Run {
  double wall_ms = 0, ddg_ms = 0, feedback_ms = 0;
  u64 instr_events = 0, compressed = 0, hits = 0, bailouts = 0;
};

/// One serial observed pipeline run; the report is rendered because the
/// feedback stage (and its span) only exists inside full_report.
Run one_run(const ir::Module& m, bool compaction) {
  core::Pipeline pipe(m);
  core::PipelineOptions opts;
  opts.threads = 1;
  opts.observe = true;
  opts.path_compaction = compaction;
  // The selective-instrumentation plan (exact LP analysis) runs inside
  // the ddg stage span and costs the same on both sides; leaving it on
  // would dilute the measured compaction ratio with a constant term.
  opts.selective_instrumentation = false;
  const u64 t0 = obs::now_ns();
  core::ProfileResult r = pipe.run(opts);
  std::string report = core::full_report(r);
  const u64 dt = obs::now_ns() - t0;
  if (r.truncated) {
    std::fprintf(stderr, "trace_compaction: unexpected truncated profile\n");
    std::exit(2);
  }
  Run run;
  run.wall_ms = static_cast<double>(dt) / 1e6;
  for (const obs::SpanRec& s : r.obs->stage_spans()) {
    if (std::strcmp(s.name, "stage:ddg") == 0)
      run.ddg_ms = static_cast<double>(s.dur_ns) / 1e6;
    if (std::strcmp(s.name, "stage:feedback") == 0)
      run.feedback_ms = static_cast<double>(s.dur_ns) / 1e6;
  }
  auto cs = r.obs->counters();
  if (auto it = cs.find("ddg.instr_events"); it != cs.end())
    run.instr_events = static_cast<u64>(it->second.value);
  if (auto it = cs.find("vm.events_compressed"); it != cs.end())
    run.compressed = static_cast<u64>(it->second.value);
  if (auto it = cs.find("vm.path_hits"); it != cs.end())
    run.hits = static_cast<u64>(it->second.value);
  if (auto it = cs.find("vm.path_bailouts"); it != cs.end())
    run.bailouts = static_cast<u64>(it->second.value);
  return run;
}

std::string report_of(const ir::Module& m, bool compaction) {
  core::Pipeline pipe(m);
  core::PipelineOptions opts;
  opts.threads = 1;
  opts.path_compaction = compaction;
  core::ProfileResult r = pipe.run(opts);
  return core::full_report(r);
}

double median(std::vector<double> v) {
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  return v[mid];
}

struct Comparison {
  std::string name;
  double off_wall_ms = 0, on_wall_ms = 0;    ///< medians, context
  double off_ddg_ms = 0, on_ddg_ms = 0;      ///< medians, context
  double feedback_ms = 0;                    ///< median (compaction on)
  double med_ddg_ratio = 0;                  ///< median paired ratio — gate
  u64 instr_events = 0, compressed = 0, hits = 0, bailouts = 0;
  bool identical = false;
  double compressed_ratio() const {
    return instr_events > 0
               ? static_cast<double>(compressed) /
                     static_cast<double>(instr_events)
               : 0.0;
  }
  double off_eps() const {
    return static_cast<double>(instr_events) / off_ddg_ms * 1e3;
  }
  double on_eps() const {
    return static_cast<double>(instr_events) / on_ddg_ms * 1e3;
  }
};

/// Each rep times the reference and compacted pipelines back to back and
/// records the ddg-stage ratio; the gate is the median of those pairs.
Comparison compare(const std::string& name) {
  workloads::Workload w = workloads::make_rodinia(name);
  Comparison c;
  c.name = name;
  one_run(w.module, true);  // warm-up absorbs first-touch effects
  std::vector<double> off_walls, on_walls, off_ddgs, on_ddgs, fbs, ratios;
  for (int i = 0; i < kReps; ++i) {
    Run off = one_run(w.module, false);
    Run on = one_run(w.module, true);
    off_walls.push_back(off.wall_ms);
    on_walls.push_back(on.wall_ms);
    off_ddgs.push_back(off.ddg_ms);
    on_ddgs.push_back(on.ddg_ms);
    fbs.push_back(on.feedback_ms);
    ratios.push_back(off.ddg_ms / on.ddg_ms);
    c.instr_events = on.instr_events;
    c.compressed = on.compressed;
    c.hits = on.hits;
    c.bailouts = on.bailouts;
  }
  c.off_wall_ms = median(off_walls);
  c.on_wall_ms = median(on_walls);
  c.off_ddg_ms = median(off_ddgs);
  c.on_ddg_ms = median(on_ddgs);
  c.feedback_ms = median(fbs);
  c.med_ddg_ratio = median(ratios);
  c.identical = report_of(w.module, false) == report_of(w.module, true);
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool no_speedup_gate = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--no-speedup-gate") == 0) {
      no_speedup_gate = true;
    } else {
      std::fprintf(stderr, "usage: %s [--json] [--no-speedup-gate]\n",
                   argv[0]);
      return 2;
    }
  }
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  no_speedup_gate = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  no_speedup_gate = true;
#endif
#endif

  std::vector<Comparison> rows;
  for (const char* name : {"hotspot", "heartwall", "backprop", "cfd", "kmeans",
                           "streamcluster"})
    rows.push_back(compare(name));

  bool pass = true;
  for (const Comparison& c : rows) {
    pass &= c.identical;
    pass &= c.hits > 0;
    if (c.name != "cfd") pass &= c.compressed_ratio() >= kMinCompressedRatio;
    if (speedup_gated(c.name) && !no_speedup_gate)
      pass &= c.med_ddg_ratio >= kMinDdgSpeedup;
  }
  const Comparison& sc = rows.back();

  if (json) {
    std::printf("{\n  \"bench\": \"trace_compaction\",\n");
    std::printf("  \"reps\": %d,\n  \"min_ddg_speedup\": %.1f,\n"
                "  \"min_compressed_ratio\": %.2f,\n"
                "  \"speedup_gate_active\": %s,\n",
                kReps, kMinDdgSpeedup, kMinCompressedRatio,
                no_speedup_gate ? "false" : "true");
    std::printf("  \"workloads\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Comparison& c = rows[i];
      std::printf(
          "    {\"name\": %s, \"instr_events\": %llu, "
          "\"compressed_events\": %llu, \"compressed_ratio\": %.3f, "
          "\"path_hits\": %llu, \"path_bailouts\": %llu, "
          "\"ddg_off_ms\": %.3f, \"ddg_on_ms\": %.3f, "
          "\"ddg_speedup_median_paired\": %.2f, "
          "\"ddg_off_events_per_sec\": %.0f, "
          "\"ddg_on_events_per_sec\": %.0f, "
          "\"wall_off_ms\": %.3f, \"wall_on_ms\": %.3f, "
          "\"report_identical\": %s, \"gated\": %s}%s\n",
          bench::json_str(c.name).c_str(),
          static_cast<unsigned long long>(c.instr_events),
          static_cast<unsigned long long>(c.compressed), c.compressed_ratio(),
          static_cast<unsigned long long>(c.hits),
          static_cast<unsigned long long>(c.bailouts), c.off_ddg_ms,
          c.on_ddg_ms, c.med_ddg_ratio, c.off_eps(), c.on_eps(),
          c.off_wall_ms, c.on_wall_ms, c.identical ? "true" : "false",
          speedup_gated(c.name) ? "true" : "false",
          i + 1 < rows.size() ? "," : "");
    }
    std::printf("  ],\n");
    std::printf("  \"streamcluster_feedback\": {\"before_ms\": %.1f, "
                "\"after_ms\": %.3f, \"fix\": \"scheduler dependence-verdict "
                "memoization per (candidate row, dep) + lazy max-LP in "
                "check_dep\"},\n",
                kStreamclusterFeedbackBeforeMs, sc.feedback_ms);
    std::printf("  \"pass\": %s\n}\n", pass ? "true" : "false");
  } else {
    std::printf("trace compaction payoff (serial, median of %d paired reps)\n",
                kReps);
    for (const Comparison& c : rows) {
      std::printf(
          "  %-14s %8.1fM events, %.1f%% compressed, %llu runs, "
          "%llu bailouts\n"
          "    ddg stage: %8.3f ms off -> %8.3f ms on  (%.2fx, gate %s)\n"
          "    wall:      %8.3f ms off -> %8.3f ms on\n"
          "    full_report byte-identical: %s\n",
          c.name.c_str(), static_cast<double>(c.instr_events) / 1e6,
          100.0 * c.compressed_ratio(),
          static_cast<unsigned long long>(c.hits),
          static_cast<unsigned long long>(c.bailouts), c.off_ddg_ms,
          c.on_ddg_ms, c.med_ddg_ratio,
          speedup_gated(c.name) ? ">=1.8x" : "none",
          c.off_wall_ms, c.on_wall_ms, c.identical ? "yes" : "NO");
    }
    std::printf(
        "  streamcluster feedback stage: %.1f ms before scheduler fix, "
        "%.3f ms now\n",
        kStreamclusterFeedbackBeforeMs, sc.feedback_ms);
    std::printf("  -> %s\n", pass ? "PASS" : "FAIL");
  }
  return pass ? 0 : 1;
}
