// Regenerates the paper's Fig. 6 / Table 1 / Table 2: the backprop
// bpnn_layerforward kernel's dependence input streams (a sample) and the
// folding stage's output — one polyhedron + affine function per folded
// dependence, matching Table 2's
//   I1->I2, I2->I4 : 0<=cj<=15, 0<=ck<=42 : (cj', ck') = (cj, ck)
//   I4->I4         : 0<=cj<=15, 1<=ck<=42 : (cj', ck') = (cj, ck-1)
#include "bench_util.hpp"
#include "fold/folded_ddg.hpp"

namespace pp {
namespace {

struct StreamSample : ddg::DdgSink {
  // Record the first few dynamic dependences between FP statements (the
  // I2->I4 style edges of Table 1).
  struct Rec {
    int src, dst;
    std::vector<i64> s, d;
  };
  std::vector<Rec> sample;
  u64 total = 0;

  void on_instruction(const ddg::Statement&, std::span<const i64>, bool,
                      i64, bool, i64) override {}
  void on_dependence(ddg::DepKind, int src_stmt,
                     std::span<const i64> src_coords, int dst_stmt,
                     std::span<const i64> dst_coords, int) override {
    ++total;
    if (sample.size() < 6 && src_coords.size() == 2 && dst_coords.size() == 2)
      sample.push_back({src_stmt,
                        dst_stmt,
                        {src_coords.begin(), src_coords.end()},
                        {dst_coords.begin(), dst_coords.end()}});
  }
};

std::string vec_str(const std::vector<i64>& v) {
  std::string s = "(";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) s += ",";
    s += std::to_string(v[i]);
  }
  return s + ")";
}

void print_tables() {
  ir::Module m = workloads::make_backprop_fig6();
  std::printf("== Fig. 6 kernel (bpnn_layerforward pseudo-assembly) ==\n%s\n",
              ir::print(*m.find_function("bpnn_layerforward")).c_str());

  // Table 1: a sample of the raw dependence stream.
  cfg::ControlStructure cs;
  {
    vm::Machine machine(m);
    cfg::DynamicCfgBuilder dyn;
    machine.set_observer(&dyn);
    machine.run("main");
    cs = cfg::ControlStructure::build(dyn, {m.find_function("main")->id});
  }
  StreamSample sampler;
  {
    ddg::DdgBuilder builder(m, cs, &sampler);
    vm::Machine machine(m);
    machine.set_observer(&builder);
    machine.run("main");
  }
  std::printf("== Table 1: dependence input stream (first 2-D samples of %llu"
              " events) ==\n",
              static_cast<unsigned long long>(sampler.total));
  std::printf("%-14s %-12s %-12s\n", "edge", "(cj,ck)", "(cj',ck')");
  for (const auto& rec : sampler.sample)
    std::printf("S%-3d -> S%-3d   %-12s %-12s\n", rec.src, rec.dst,
                vec_str(rec.d).c_str(), vec_str(rec.s).c_str());

  // Table 2: the folded output.
  core::Pipeline pipe(m);
  core::ProfileResult r = pipe.run();
  std::printf("\n== Table 2: folded dependences of the 2-D kernel ==\n");
  std::printf("%-22s %-44s %s\n", "edge", "polyhedron (cj,ck)",
              "label (cj',ck')");
  std::vector<std::string> names = {"cj", "ck"};
  for (const auto& d : r.program.deps) {
    const auto& src = r.program.stmt(d.src).meta;
    const auto& dst = r.program.stmt(d.dst).meta;
    if (src.depth != 2 || dst.depth != 2) continue;
    for (const auto& piece : d.relation.pieces()) {
      std::string edge = std::string(ir::op_name(src.op)) + " -> " +
                         ir::op_name(dst.op);
      std::printf("%-22s %-44s %s%s\n", edge.c_str(),
                  piece.domain.str(names).c_str(),
                  piece.label_fn.str(names).c_str(),
                  piece.exact ? "" : " (approx)");
    }
  }
  std::printf("\nSCEV-pruned dependence edges: %llu (e.g. the I5 `k = k + 1`"
              " and I8 `j = j + 1` chains)\n\n",
              static_cast<unsigned long long>(r.program.pruned_dep_edges));
}

void BM_FoldFig6(benchmark::State& state) {
  ir::Module m = workloads::make_backprop_fig6();
  for (auto _ : state) {
    core::Pipeline pipe(m);
    core::ProfileResult r = pipe.run();
    benchmark::DoNotOptimize(r.program.deps.size());
  }
}
BENCHMARK(BM_FoldFig6)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pp

int main(int argc, char** argv) {
  pp::print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
