// Service soak: N concurrent jobs across all 19 mini-Rodinia workloads
// with a mixed fault diet — plain runs, chaos-transient retries,
// chaos-injected cancels, queue-full sheds, tight deadlines and client
// cancels — pushed through one pp::service::Server. The acceptance gates
// (scripts/check.sh, including the ASan and TSan flavors):
//
//   * zero hangs: the whole soak finishes under a hard alarm;
//   * every job that completed clean delivers a report byte-identical to
//     the serial one-shot reference for its workload;
//   * chaos-cancelled jobs deliver diagnosed PARTIAL reports;
//   * cache-hit resubmissions (one per workload) are served without
//     re-profiling.
//
//   $ ./service_soak            # human-readable table
//   $ ./service_soak --json     # one JSON line; exit 1 on gate failure
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "service/service.hpp"
#include "workloads/workloads.hpp"

#ifdef __unix__
#include <unistd.h>
#endif

using namespace pp;

namespace {

constexpr int kJobs = 76;  // 4 waves over the 19 workloads

enum class Mode {
  kPlain,          // expect clean completion, byte-identical report
  kTransientRetry, // chaos truncation, retried clean — identical report
  kChaosCancel,    // service fault fires the job's token mid-pipeline
  kChaosShed,      // admission rejects as if the queue were full
  kDeadline,       // 1 ms whole-job deadline
  kClientCancel,   // cancel() right after submit
};

Mode mode_for(int i) {
  switch (i % 8) {
    case 0:
    case 1:
    case 2: return Mode::kPlain;
    case 3: return Mode::kChaosShed;
    case 4: return Mode::kTransientRetry;
    case 5: return Mode::kChaosCancel;
    case 6: return Mode::kDeadline;
    default: return Mode::kClientCancel;
  }
}

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::kPlain: return "plain";
    case Mode::kTransientRetry: return "transient-retry";
    case Mode::kChaosCancel: return "chaos-cancel";
    case Mode::kChaosShed: return "chaos-shed";
    case Mode::kDeadline: return "deadline";
    case Mode::kClientCancel: return "client-cancel";
  }
  return "?";
}

service::JobRequest plain_request(const workloads::Workload& wl) {
  service::JobRequest req;
  req.module = &wl.module;
  req.name = wl.name;
  return req;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      std::fprintf(stderr, "usage: %s [--json]\n", argv[0]);
      return 2;
    }
  }
#ifdef __unix__
  alarm(240);  // hard hang gate: SIGALRM kills a wedged soak
#endif

  const std::vector<std::string>& names = workloads::rodinia_names();
  std::vector<workloads::Workload> wls;
  wls.reserve(names.size());
  for (const std::string& n : names) wls.push_back(workloads::make_rodinia(n));

  // Serial one-shot references: what every clean service job must match.
  std::map<std::string, std::string> reference;
  for (const workloads::Workload& wl : wls) {
    core::PipelineOptions opts;
    opts.threads = 1;
    core::ProfileResult r = core::Pipeline(wl.module).run(opts);
    reference[wl.name] = core::full_report(r);
  }

  service::ServerOptions sopts;
  sopts.executors = 4;
  sopts.queue_capacity = 128;    // the soak sheds via chaos, not capacity
  sopts.high_watermark = 128;    // no overload downgrades: clean jobs must
  sopts.low_watermark = 64;      // stay byte-comparable to the references
  service::Server server(sopts);

  std::vector<service::JobHandle> jobs;
  std::vector<Mode> modes;
  jobs.reserve(kJobs);
  for (int i = 0; i < kJobs; ++i) {
    const workloads::Workload& wl = wls[static_cast<std::size_t>(i) % wls.size()];
    const Mode mode = mode_for(i);
    service::JobRequest req = plain_request(wl);
    switch (mode) {
      case Mode::kPlain:
        break;
      case Mode::kTransientRetry:
        req.pipeline.chaos.kind = vm::FaultKind::kTruncate;
        req.pipeline.chaos.seed = static_cast<u64>(i) + 1;
        req.chaos_transient = true;
        req.max_attempts = 3;
        break;
      case Mode::kChaosCancel: {
        static const vm::ServiceFault kPoints[] = {
            vm::ServiceFault::kCancelAtControl, vm::ServiceFault::kCancelAtDdg,
            vm::ServiceFault::kCancelAtFold, vm::ServiceFault::kCancelAtFeedback,
            vm::ServiceFault::kDeadlineMidFold};
        req.pipeline.chaos.service = kPoints[(i / 8) % 5];
        req.pipeline.chaos.seed = static_cast<u64>(i) + 1;
        break;
      }
      case Mode::kChaosShed:
        req.pipeline.chaos.service = vm::ServiceFault::kQueueFull;
        break;
      case Mode::kDeadline:
        req.deadline_ms = 1;
        break;
      case Mode::kClientCancel:
        break;
    }
    modes.push_back(mode);
    jobs.push_back(server.submit(std::move(req)));
    if (mode == Mode::kClientCancel) jobs.back()->cancel();
  }

  int mismatches = 0;
  int unexpected = 0;
  std::map<std::string, int> by_state;
  for (int i = 0; i < kJobs; ++i) {
    const service::JobOutcome& out = jobs[static_cast<std::size_t>(i)]->wait();
    ++by_state[service::job_state_name(out.state)];
    const std::string& wname = jobs[static_cast<std::size_t>(i)]->request().name;
    auto fail = [&](const char* why) {
      ++unexpected;
      std::fprintf(stderr, "job %d (%s, %s): %s — state %s, \"%s\"\n", i,
                   wname.c_str(), mode_name(modes[static_cast<std::size_t>(i)]),
                   why, service::job_state_name(out.state),
                   out.outcome_line.c_str());
    };
    switch (modes[static_cast<std::size_t>(i)]) {
      case Mode::kPlain:
      case Mode::kTransientRetry:
        if (out.state != service::JobState::kCompleted || out.truncated)
          fail("expected clean completion");
        else if (!out.from_cache && out.report != reference[wname]) {
          ++mismatches;
          fail("report differs from serial reference");
        }
        break;
      case Mode::kChaosCancel:
        if (out.state != service::JobState::kCancelled &&
            out.state != service::JobState::kDeadlineExpired)
          fail("expected a cancelled/deadline outcome");
        else if (out.report.find("PARTIAL PROFILE") == std::string::npos)
          fail("partial report missing PARTIAL PROFILE marker");
        break;
      case Mode::kChaosShed:
        if (out.state != service::JobState::kShed)
          fail("expected a shed outcome");
        break;
      case Mode::kDeadline:
        // Tiny workloads may legitimately beat a 1 ms deadline.
        if (out.state != service::JobState::kDeadlineExpired &&
            out.state != service::JobState::kCompleted)
          fail("expected deadline-expired or completed");
        break;
      case Mode::kClientCancel:
        if (out.state != service::JobState::kCancelled &&
            out.state != service::JobState::kCompleted)
          fail("expected cancelled or completed");
        break;
    }
  }

  // Cache gate: one identical plain resubmission per workload. Every
  // workload saw at least one clean plain job above, so all 19 must be
  // served from cache without re-profiling.
  int cache_misses = 0;
  for (const workloads::Workload& wl : wls) {
    service::JobHandle job = server.submit(plain_request(wl));
    const service::JobOutcome& out = job->wait();
    if (!out.from_cache || out.report != reference[wl.name]) {
      ++cache_misses;
      std::fprintf(stderr, "resubmission of %s: not a faithful cache hit\n",
                   wl.name.c_str());
    }
  }
  server.shutdown();

  service::Server::Stats st = server.stats();
  const bool pass = unexpected == 0 && mismatches == 0 && cache_misses == 0;
  if (json) {
    std::printf(
        "{\"jobs\":%d,\"completed\":%llu,\"cancelled\":%llu,"
        "\"deadline_expired\":%llu,\"shed\":%llu,\"retries\":%llu,"
        "\"cache_hits\":%llu,\"max_queue_depth\":%zu,\"mismatches\":%d,"
        "\"unexpected\":%d,\"cache_misses\":%d,\"pass\":%s}\n",
        kJobs, static_cast<unsigned long long>(st.completed),
        static_cast<unsigned long long>(st.cancelled),
        static_cast<unsigned long long>(st.deadline_expired),
        static_cast<unsigned long long>(st.shed),
        static_cast<unsigned long long>(st.retries),
        static_cast<unsigned long long>(st.cache_hits), st.max_queue_depth,
        mismatches, unexpected, cache_misses, pass ? "true" : "false");
  } else {
    std::printf("service soak: %d jobs over %zu workloads\n", kJobs,
                wls.size());
    for (const auto& [state, count] : by_state)
      std::printf("  %-18s %d\n", state.c_str(), count);
    std::printf(
        "  retries %llu, cache hits %llu, max queue depth %zu\n"
        "  report mismatches %d, unexpected outcomes %d, cache misses %d\n"
        "%s\n",
        static_cast<unsigned long long>(st.retries),
        static_cast<unsigned long long>(st.cache_hits), st.max_queue_depth,
        mismatches, unexpected, cache_misses, pass ? "PASS" : "FAIL");
  }
  return pass ? 0 : 1;
}
