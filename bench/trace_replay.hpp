// Stage-2 trace replay harness shared by the bench binaries: record one
// workload's full VM event stream (jumps, calls, returns, retired
// instructions), then drive it straight into a DdgBuilder. Replay
// isolates Instrumentation II from interpreter cost, which is the right
// lens for shadow-memory / iteration-vector hot-path work — the VM would
// otherwise dominate and hide a 2-3x stage-2 change.
#pragma once

#include <vector>

#include "cfg/dynamic_cfg.hpp"
#include "ddg/ddg_builder.hpp"
#include "workloads/workloads.hpp"

namespace pp::bench {

struct TraceEvent {
  enum Kind { kJump, kCall, kReturn, kInstr } kind;
  int a = 0, b = 0;
  vm::CodeRef ref;
  vm::InstrEvent instr;
};

struct Trace {
  ir::Module module;
  cfg::ControlStructure cs;
  std::vector<TraceEvent> events;
};

struct Tracer : vm::Observer {
  std::vector<TraceEvent>* out;
  explicit Tracer(std::vector<TraceEvent>* o) : out(o) {}
  void on_local_jump(int f, int b) override {
    out->push_back({TraceEvent::kJump, f, b, {}, {}});
  }
  void on_call(vm::CodeRef site, int callee) override {
    out->push_back({TraceEvent::kCall, callee, 0, site, {}});
  }
  void on_return(int callee, vm::CodeRef into) override {
    out->push_back({TraceEvent::kReturn, callee, 0, into, {}});
  }
  void on_instr(const vm::InstrEvent& ev) override {
    out->push_back({TraceEvent::kInstr, 0, 0, {}, ev});
  }
};

/// Swallows the DDG stream while counting it (a "perfect" sink: zero
/// per-event work, so the builder itself is what gets timed).
struct CountingSink : ddg::DdgSink {
  u64 seen = 0;
  void on_instruction(const ddg::Statement&, std::span<const i64>, bool, i64,
                      bool, i64) override {
    ++seen;
  }
  void on_dependence(ddg::DepKind, int, std::span<const i64>, int,
                     std::span<const i64>, int) override {
    ++seen;
  }
};

inline Trace record_trace(const char* workload) {
  Trace t;
  workloads::Workload w = workloads::make_rodinia(workload);
  t.module = std::move(w.module);
  {
    vm::Machine machine(t.module);
    cfg::DynamicCfgBuilder dyn;
    machine.set_observer(&dyn);
    machine.run("main");
    t.cs =
        cfg::ControlStructure::build(dyn, {t.module.find_function("main")->id});
  }
  Tracer tracer(&t.events);
  vm::Machine machine(t.module);
  machine.set_observer(&tracer);
  machine.run("main");
  return t;
}

inline void replay(const Trace& t, vm::Observer& b) {
  for (const TraceEvent& e : t.events) {
    switch (e.kind) {
      case TraceEvent::kJump: b.on_local_jump(e.a, e.b); break;
      case TraceEvent::kCall: b.on_call(e.ref, e.a); break;
      case TraceEvent::kReturn: b.on_return(e.a, e.ref); break;
      case TraceEvent::kInstr: b.on_instr(e.instr); break;
    }
  }
}

}  // namespace pp::bench
