// Regenerates the paper's Table 3 (backprop case study): per fat region,
// the interchange+SIMD feedback, parallel/permutable verdicts, stride
// statistics, and the before/after speedup — here measured with the VM's
// cache-aware cycle model by actually running the hand-transformed
// binary (exactly how the paper's authors measured GFlop/s after applying
// the suggested transformation by hand).
#include "bench_util.hpp"

namespace pp {
namespace {

void print_table3() {
  std::printf("== Table 3: backprop case study ==\n");
  ir::Module base = workloads::make_backprop();
  core::Pipeline pipe(base);
  core::ProfileResult r = pipe.run();

  std::printf("program: %s dynamic ops, %%Aff = %.0f%%\n",
              bench::human(r.program.total_dynamic_ops).c_str(),
              r.percent_affine());

  bench::print_row({{"Fat region", 34},
                    {"%Ops", 6},
                    {"interchange", 12},
                    {"parallel", 12},
                    {"permutable", 12},
                    {"%stride 0/1", 14},
                    {"suggest", 36}});
  auto regions = r.hot_regions(0.05, /*depth=*/2);
  for (const auto& region : regions) {
    feedback::RegionMetrics mx = r.analyze(region);
    double rops = 100.0 * static_cast<double>(mx.ops) /
                  static_cast<double>(r.program.total_dynamic_ops);
    bool permutable2 = mx.tile_depth >= 2;
    bool interchange = mx.preuse_mem_ops > mx.reuse_mem_ops;
    std::string strides = bench::pct(mx.pct_mem(mx.reuse_mem_ops)) + " -> " +
                          bench::pct(mx.pct_mem(mx.preuse_mem_ops));
    std::string first_sugg =
        mx.suggestions.empty() ? "-" : mx.suggestions.front();
    bench::print_row({{region.name, 34},
                      {bench::pct(rops), 6},
                      {interchange ? "(yes)" : "(no)", 12},
                      {mx.parallel_ops > 0 ? "yes" : "no", 12},
                      {permutable2 ? "(yes,yes)" : "(no)", 12},
                      {strides, 14},
                      {first_sugg, 36}});
  }

  // Speedup: run the transformed module in the cycle model, at a layer
  // size whose weight matrix exceeds the modeled cache (as the paper's
  // n2=16 hot call does on real hardware) so the column-major walk pays.
  const i64 hidden = 64, input = 256;
  ir::Module big = workloads::make_backprop(hidden, input);
  ir::Module tx = workloads::make_backprop_transformed(hidden, input);
  vm::Machine v1(big), v2(tx);
  vm::RunResult r1 = v1.run("main");
  vm::RunResult r2 = v2.run("main");
  PP_CHECK(r1.exit_value == r2.exit_value,
           "transformed backprop diverged from the baseline");
  std::printf(
      "\ncycle-model speedup after interchange + scalar expansion: %.2fx "
      "(%llu -> %llu cycles, misses %llu -> %llu)\n\n",
      static_cast<double>(r1.stats.cycles) /
          static_cast<double>(r2.stats.cycles),
      static_cast<unsigned long long>(r1.stats.cycles),
      static_cast<unsigned long long>(r2.stats.cycles),
      static_cast<unsigned long long>(r1.stats.cache_misses),
      static_cast<unsigned long long>(r2.stats.cache_misses));
}

void BM_BackpropBaseline(benchmark::State& state) {
  ir::Module m = workloads::make_backprop();
  vm::Machine vm(m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vm.run("main").stats.cycles);
  }
}
BENCHMARK(BM_BackpropBaseline)->Unit(benchmark::kMillisecond);

void BM_BackpropTransformed(benchmark::State& state) {
  ir::Module m = workloads::make_backprop_transformed();
  vm::Machine vm(m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vm.run("main").stats.cycles);
  }
}
BENCHMARK(BM_BackpropTransformed)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pp

int main(int argc, char** argv) {
  pp::print_table3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
