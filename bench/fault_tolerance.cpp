// Cost of the fault-tolerance machinery on the stage-2 hot path: the
// EventValidator in front of the DDG builder, and the per-event RunBudget
// checks inside it. Both guard every retired instruction, so their price
// must stay in the noise next to shadow-memory + interning work. Also
// prints the degradation profile of deliberately starved runs (budget cap
// vs retained %Aff) — the "graceful" in graceful degradation, quantified.
#include <chrono>

#include "bench_util.hpp"
#include "core/pipeline.hpp"
#include "support/budget.hpp"
#include "trace_replay.hpp"
#include "vm/event_validator.hpp"

namespace pp {
namespace {

void print_validator_overhead() {
  std::printf("== Stage-2 guard overhead (trace replay, anti/output on) ==\n");
  std::printf("%-14s %12s %12s %12s %10s %10s\n", "benchmark", "events",
              "bare(ms)", "guarded(ms)", "validator", "budget");
  for (const char* name : {"backprop", "hotspot", "kmeans", "nw"}) {
    bench::Trace trace = bench::record_trace(name);
    const int reps = 5;
    auto clock_ms = [&](auto fn) {
      auto t0 = std::chrono::steady_clock::now();
      for (int r = 0; r < reps; ++r) fn();
      auto t1 = std::chrono::steady_clock::now();
      return std::chrono::duration<double, std::milli>(t1 - t0).count() / reps;
    };
    double bare = clock_ms([&] {
      bench::CountingSink sink;
      ddg::DdgBuilder builder(trace.module, trace.cs, &sink,
                              {.track_anti_output = true});
      bench::replay(trace, builder);
      benchmark::DoNotOptimize(sink.seen);
    });
    double validated = clock_ms([&] {
      bench::CountingSink sink;
      ddg::DdgBuilder builder(trace.module, trace.cs, &sink,
                              {.track_anti_output = true});
      vm::EventValidator val(trace.module, &builder);
      bench::replay(trace, val);
      benchmark::DoNotOptimize(sink.seen);
    });
    // Generous armed budget: every per-event check runs, none ever trips.
    support::RunBudget budget;
    budget.wall_ms = 3'600'000;
    budget.shadow_pages = 1u << 20;
    budget.coord_pool_words = 1u << 30;
    budget.arm();
    double budgeted = clock_ms([&] {
      bench::CountingSink sink;
      ddg::DdgOptions opts{.track_anti_output = true};
      opts.budget = &budget;
      ddg::DdgBuilder builder(trace.module, trace.cs, &sink, opts);
      bench::replay(trace, builder);
      benchmark::DoNotOptimize(sink.seen);
    });
    std::printf("%-14s %12zu %12.2f %12.2f %9.1f%% %9.1f%%\n", name,
                trace.events.size(), bare, validated,
                bare > 0 ? 100.0 * (validated - bare) / bare : 0.0,
                bare > 0 ? 100.0 * (budgeted - bare) / bare : 0.0);
  }
  std::printf("\n");
}

void print_degradation_profile() {
  std::printf("== Graceful degradation: coord-pool budget vs %%Aff ==\n");
  std::printf("%-14s %12s %12s %12s %10s\n", "pool cap", "statements",
              "degraded", "%Aff", "truncated");
  workloads::Workload w = workloads::make_rodinia("backprop");
  core::Pipeline pipe(w.module);
  core::ProfileResult clean = pipe.run();
  std::size_t full = clean.coord_pool_words;
  for (double frac : {1.0, 0.5, 0.25, 0.1}) {
    core::PipelineOptions opts;
    if (frac < 1.0)
      opts.budget.coord_pool_words =
          std::max<std::size_t>(1, static_cast<std::size_t>(
                                       static_cast<double>(full) * frac));
    core::ProfileResult r = pipe.run(opts);
    char cap[32];
    std::snprintf(cap, sizeof cap, "%3.0f%% (%zu)", frac * 100,
                  opts.budget.coord_pool_words);
    std::printf("%-14s %12zu %12llu %11.0f%% %10s\n", cap,
                r.program.statements.size(),
                static_cast<unsigned long long>(r.program.degraded_statements),
                r.percent_affine(), r.truncated ? "yes" : "no");
  }
  std::printf("\n");
}

void BM_ValidatorPassthrough(benchmark::State& state) {
  bench::Trace trace = bench::record_trace("kmeans");
  for (auto _ : state) {
    bench::CountingSink sink;
    ddg::DdgBuilder builder(trace.module, trace.cs, &sink,
                            {.track_anti_output = true});
    vm::EventValidator val(trace.module, &builder);
    bench::replay(trace, val);
    benchmark::DoNotOptimize(val.instr_events());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(trace.events.size()));
}
BENCHMARK(BM_ValidatorPassthrough)->Unit(benchmark::kMillisecond);

void BM_BudgetedBuilder(benchmark::State& state) {
  bench::Trace trace = bench::record_trace("kmeans");
  support::RunBudget budget;
  budget.shadow_pages = 1u << 20;
  budget.coord_pool_words = 1u << 30;
  budget.wall_ms = 3'600'000;
  budget.arm();
  for (auto _ : state) {
    bench::CountingSink sink;
    ddg::DdgOptions opts{.track_anti_output = true};
    opts.budget = &budget;
    ddg::DdgBuilder builder(trace.module, trace.cs, &sink, opts);
    bench::replay(trace, builder);
    benchmark::DoNotOptimize(sink.seen);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(trace.events.size()));
}
BENCHMARK(BM_BudgetedBuilder)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pp

int main(int argc, char** argv) {
  pp::print_validator_overhead();
  pp::print_degradation_profile();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
