// Calling-context tree (Ammons/Ball/Larus, paper §4 Fig. 3h): enumerative
// dynamic call contexts with call-site labels. Kept for comparison with
// the dynamic IIV representation — on recursive programs the CCT's depth
// grows with recursion depth, while the dynamic IIV stays flat (the
// property the recursive-component-set buys us).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "vm/vm.hpp"

namespace pp::iiv {

class CallingContextTree : public vm::Observer {
 public:
  struct Node {
    int func = -1;
    vm::CodeRef callsite;       ///< which call site created this context
    u64 calls = 0;              ///< activations of this context
    std::vector<int> children;
    int parent = -1;
  };

  CallingContextTree();

  void on_call(vm::CodeRef callsite, int callee) override;
  void on_return(int callee, vm::CodeRef into) override;
  void on_local_jump(int func, int dst_bb) override;

  const Node& node(int id) const { return nodes_[static_cast<std::size_t>(id)]; }
  std::size_t size() const { return nodes_.size(); }
  int max_depth() const;
  std::string str(const ir::Module* m = nullptr) const;

 private:
  std::vector<Node> nodes_;
  std::map<std::pair<int, std::pair<vm::CodeRef, int>>, int> index_;
  std::vector<int> stack_;  ///< current path, node ids
};

}  // namespace pp::iiv
