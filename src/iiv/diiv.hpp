// Dynamic interprocedural iteration vectors (paper §4, Algorithm 3).
// A dynamic IIV alternates context parts and canonical induction
// variables:
//     (CTX0, iv0, CTX1, iv1, ..., CTXk)
// where each CTX is a stack of calling contexts ending in the identifier
// of the current loop/basic-block — the unification of Kelly's mapping
// (intraprocedural schedule trees) with calling-context-paths. Recursion
// never grows the vector: recursive-component iterations bump an induction
// variable instead (Fig. 3 Ex. 2).
#pragma once

#include <compare>
#include <string>
#include <vector>

#include "cfg/loop_events.hpp"

namespace pp::iiv {

/// One element of a context part: a basic block, a CFG loop, or a
/// recursive component.
struct CtxElem {
  enum class Kind : std::uint8_t { kBlock, kLoop, kComp };
  Kind kind;
  int func = -1;  ///< owning function (kBlock/kLoop); unused for kComp
  int id = -1;    ///< block id / loop id / component id

  static CtxElem block(int func, int bb) { return {Kind::kBlock, func, bb}; }
  static CtxElem loop(int func, int l) { return {Kind::kLoop, func, l}; }
  static CtxElem comp(int c) { return {Kind::kComp, -1, c}; }

  bool operator==(const CtxElem&) const = default;
  auto operator<=>(const CtxElem&) const = default;
  std::string str() const;
};

/// The non-numerical part of an IIV: the flattened context parts with
/// dimension boundaries preserved. Two dynamic instructions fold together
/// exactly when their ContextKey (plus static instruction id) agree.
struct ContextKey {
  std::vector<std::vector<CtxElem>> parts;  ///< dims' contexts + trailing

  bool operator==(const ContextKey&) const = default;
  bool operator<(const ContextKey& o) const { return parts < o.parts; }
  std::size_t depth() const { return parts.size() - 1; }  ///< #ivs
  std::string str() const;
};

struct ContextKeyHash {
  std::size_t operator()(const ContextKey& k) const;
};

/// The dynamic IIV state machine (Algorithm 3). Feed it the loop-event
/// stream; read back the current coordinates / context at any instruction.
class DynamicIiv {
 public:
  /// Apply one loop event (Algorithm 3 plus the implicit N(B) rule).
  void apply(const cfg::LoopEvent& ev);

  /// Monotonic state version: bumped by every apply(). Lets consumers
  /// cache derived data (e.g. the flattened ContextKey) per state.
  u64 version() const { return version_; }

  /// Current loop depth (number of induction variables).
  std::size_t depth() const { return dims_.size(); }

  /// Numerical part: the canonical induction variables, outermost first.
  std::vector<i64> coordinates() const;

  /// Allocation-free variant for hot paths: overwrite `out` with the
  /// current coordinates, reusing its capacity.
  void coordinates_into(std::vector<i64>& out) const;

  /// Non-numerical part (dimension-preserving).
  ContextKey context() const;

  /// Allocation-free variant: overwrite `out`, reusing the capacity of its
  /// parts (the context is recomputed once per loop event on the DDG hot
  /// path, so steady-state recomputation must not allocate).
  void context_into(ContextKey& out) const;

  /// Rendering like "(M0/L1, 0, A1/L2, 1, B1)" used in the paper's Fig. 3.
  std::string str() const;

 private:
  struct Dim {
    std::vector<CtxElem> ctx;
    i64 iv = 0;
  };

  void ctx_last(CtxElem e);  ///< CTX.last := e (replace-or-push)
  void add_dimension(i64 iv, CtxElem b);
  void remove_dimension();

  std::vector<Dim> dims_;
  std::vector<CtxElem> inner_;  ///< trailing context
  u64 version_ = 0;
};

}  // namespace pp::iiv
