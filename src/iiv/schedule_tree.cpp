#include "iiv/schedule_tree.hpp"

#include <functional>
#include <sstream>

namespace pp::iiv {

DynScheduleTree::DynScheduleTree() {
  Node root;
  root.elem = CtxElem::block(-1, -1);  // synthetic root
  nodes_.push_back(root);
}

int DynScheduleTree::child(int parent, CtxElem elem) {
  auto it = index_.find({parent, elem});
  if (it != index_.end()) return it->second;
  Node n;
  n.elem = elem;
  n.parent = parent;
  n.static_index =
      static_cast<int>(nodes_[static_cast<std::size_t>(parent)].children.size());
  int id = static_cast<int>(nodes_.size());
  nodes_.push_back(n);
  nodes_[static_cast<std::size_t>(parent)].children.push_back(id);
  index_[{parent, elem}] = id;
  return id;
}

void DynScheduleTree::insert(const ContextKey& key, u64 weight) {
  int cur = 0;
  nodes_[0].weight += weight;
  for (const auto& part : key.parts) {
    for (const auto& e : part) {
      cur = child(cur, e);
      nodes_[static_cast<std::size_t>(cur)].weight += weight;
    }
  }
  nodes_[static_cast<std::size_t>(cur)].self_weight += weight;
}

int DynScheduleTree::find(const ContextKey& key) const {
  int cur = 0;
  for (const auto& part : key.parts) {
    for (const auto& e : part) {
      auto it = index_.find({cur, e});
      if (it == index_.end()) return -1;
      cur = it->second;
    }
  }
  return cur;
}

std::vector<std::string> DynScheduleTree::kelly_mapping(
    const ContextKey& key) const {
  std::vector<std::string> out;
  int cur = 0;
  int iv = 0;
  for (const auto& part : key.parts) {
    for (const auto& e : part) {
      auto it = index_.find({cur, e});
      PP_CHECK(it != index_.end(), "kelly_mapping: context not in tree");
      cur = it->second;
      out.push_back(std::to_string(nodes_[static_cast<std::size_t>(cur)].static_index));
      if (e.kind != CtxElem::Kind::kBlock)
        out.push_back("i" + std::to_string(iv++));
    }
  }
  return out;
}

int DynScheduleTree::max_depth() const {
  std::function<int(int)> rec = [&](int id) {
    int best = 0;
    for (int c : nodes_[static_cast<std::size_t>(id)].children)
      best = std::max(best, rec(c));
    return best + 1;
  };
  return rec(0) - 1;  // root does not count
}

std::string DynScheduleTree::str() const {
  std::ostringstream os;
  std::function<void(int, int)> rec = [&](int id, int indent) {
    const Node& n = nodes_[static_cast<std::size_t>(id)];
    os << std::string(static_cast<std::size_t>(indent) * 2, ' ');
    if (id == 0)
      os << "<root>";
    else
      os << n.elem.str() << "(" << n.static_index << ")";
    os << " w=" << n.weight << "\n";
    for (int c : n.children) rec(c, indent + 1);
  };
  rec(0, 0);
  return os.str();
}

}  // namespace pp::iiv
