#include "iiv/cct.hpp"

#include <functional>
#include <sstream>

namespace pp::iiv {

CallingContextTree::CallingContextTree() {
  Node root;
  nodes_.push_back(root);
  stack_.push_back(0);
}

void CallingContextTree::on_local_jump(int func, int dst_bb) {
  (void)dst_bb;
  // First event of a run names the entry function.
  if (stack_.size() == 1 && nodes_[0].func < 0) nodes_[0].func = func;
}

void CallingContextTree::on_call(vm::CodeRef callsite, int callee) {
  int parent = stack_.back();
  auto key = std::make_pair(parent, std::make_pair(callsite, callee));
  auto it = index_.find(key);
  int id;
  if (it != index_.end()) {
    id = it->second;
  } else {
    Node n;
    n.func = callee;
    n.callsite = callsite;
    n.parent = parent;
    id = static_cast<int>(nodes_.size());
    nodes_.push_back(n);
    nodes_[static_cast<std::size_t>(parent)].children.push_back(id);
    index_[key] = id;
  }
  ++nodes_[static_cast<std::size_t>(id)].calls;
  stack_.push_back(id);
}

void CallingContextTree::on_return(int callee, vm::CodeRef into) {
  (void)callee;
  (void)into;
  PP_CHECK(stack_.size() > 1, "CCT return underflow");
  stack_.pop_back();
}

int CallingContextTree::max_depth() const {
  std::function<int(int)> rec = [&](int id) {
    int best = 0;
    for (int c : nodes_[static_cast<std::size_t>(id)].children)
      best = std::max(best, rec(c));
    return best + 1;
  };
  return rec(0) - 1;
}

std::string CallingContextTree::str(const ir::Module* m) const {
  std::ostringstream os;
  std::function<void(int, int)> rec = [&](int id, int indent) {
    const Node& n = nodes_[static_cast<std::size_t>(id)];
    os << std::string(static_cast<std::size_t>(indent) * 2, ' ');
    if (n.func >= 0 && m)
      os << m->functions[static_cast<std::size_t>(n.func)].name;
    else
      os << "f" << n.func;
    if (id != 0)
      os << " (from f" << n.callsite.func << ":bb" << n.callsite.block << ":"
         << n.callsite.instr << ")";
    os << " x" << n.calls << "\n";
    for (int c : n.children) rec(c, indent + 1);
  };
  rec(0, 0);
  return os.str();
}

}  // namespace pp::iiv
