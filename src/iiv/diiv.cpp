#include "iiv/diiv.hpp"

#include <sstream>

namespace pp::iiv {

std::string CtxElem::str() const {
  std::ostringstream os;
  switch (kind) {
    case Kind::kBlock: os << "f" << func << ":bb" << id; break;
    case Kind::kLoop: os << "f" << func << ":L" << id; break;
    case Kind::kComp: os << "RC" << id; break;
  }
  return os.str();
}

std::string ContextKey::str() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) os << " | ";
    for (std::size_t j = 0; j < parts[i].size(); ++j) {
      if (j) os << "/";
      os << parts[i][j].str();
    }
  }
  return os.str();
}

std::size_t ContextKeyHash::operator()(const ContextKey& k) const {
  std::size_t h = 1469598103934665603ull;
  auto mix = [&](std::size_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (const auto& part : k.parts) {
    mix(0x9e3779b9);
    for (const auto& e : part) {
      mix(static_cast<std::size_t>(e.kind));
      mix(static_cast<std::size_t>(e.func) + 0x517cc1b7);
      mix(static_cast<std::size_t>(e.id) + 0x27220a95);
    }
  }
  return h;
}

void DynamicIiv::ctx_last(CtxElem e) {
  if (inner_.empty())
    inner_.push_back(e);
  else
    inner_.back() = e;
}

void DynamicIiv::add_dimension(i64 iv, CtxElem b) {
  dims_.push_back({std::move(inner_), iv});
  inner_.clear();
  inner_.push_back(b);
}

void DynamicIiv::remove_dimension() {
  PP_CHECK(!dims_.empty(), "removeDimension on flat IIV");
  inner_ = std::move(dims_.back().ctx);
  dims_.pop_back();
}

void DynamicIiv::apply(const cfg::LoopEvent& ev) {
  using Kind = cfg::LoopEvent::Kind;
  ++version_;
  switch (ev.kind) {
    case Kind::kBlock:  // N(B): CTX.last := B
      ctx_last(CtxElem::block(ev.func, ev.block));
      break;
    case Kind::kCall:  // C(F,B): CTX.push(B)
      inner_.push_back(CtxElem::block(ev.func, ev.block));
      break;
    case Kind::kRet:  // R(B): CTX.pop(); CTX.last := B
      PP_CHECK(!inner_.empty(), "R event with empty context");
      inner_.pop_back();
      ctx_last(CtxElem::block(ev.func, ev.block));
      break;
    case Kind::kEnter:  // E(L,B): CTX.last := L; addDimension(0, B)
      ctx_last(CtxElem::loop(ev.func, ev.loop));
      add_dimension(0, CtxElem::block(ev.func, ev.block));
      break;
    case Kind::kEnterRec:  // Ec(L,B): CTX.push(L); addDimension(0, B)
      inner_.push_back(CtxElem::comp(ev.comp));
      add_dimension(0, CtxElem::block(ev.func, ev.block));
      break;
    case Kind::kExit:  // X(L,B): removeDimension(); CTX.last := B
      remove_dimension();
      ctx_last(CtxElem::block(ev.func, ev.block));
      break;
    case Kind::kExitRec:
      // Xr(L,B): symmetric to Ec — the component element was *pushed*
      // (not substituted for a header block), so exiting pops it before
      // updating the landing block (Fig. 3i step 22: (M1/L1,4,B5)->(M1)).
      remove_dimension();
      PP_CHECK(!inner_.empty(), "Xr with empty context");
      inner_.pop_back();
      ctx_last(CtxElem::block(ev.func, ev.block));
      break;
    case Kind::kIterate:         // I(L,B): IV++; CTX.last := B
    case Kind::kIterateRecCall:  // Ic
    case Kind::kIterateRecRet:   // Ir
      PP_CHECK(!dims_.empty(), "iterate event with no live dimension");
      ++dims_.back().iv;
      ctx_last(CtxElem::block(ev.func, ev.block));
      break;
  }
}

std::vector<i64> DynamicIiv::coordinates() const {
  std::vector<i64> out;
  coordinates_into(out);
  return out;
}

void DynamicIiv::coordinates_into(std::vector<i64>& out) const {
  out.clear();
  out.reserve(dims_.size());
  for (const auto& d : dims_) out.push_back(d.iv);
}

ContextKey DynamicIiv::context() const {
  ContextKey k;
  context_into(k);
  return k;
}

void DynamicIiv::context_into(ContextKey& out) const {
  // resize + element-wise assign reuses the inner vectors' capacity.
  out.parts.resize(dims_.size() + 1);
  for (std::size_t i = 0; i < dims_.size(); ++i) out.parts[i] = dims_[i].ctx;
  out.parts.back() = inner_;
}

std::string DynamicIiv::str() const {
  std::ostringstream os;
  os << "(";
  auto put_ctx = [&](const std::vector<CtxElem>& ctx) {
    for (std::size_t j = 0; j < ctx.size(); ++j) {
      if (j) os << "/";
      os << ctx[j].str();
    }
  };
  for (const auto& d : dims_) {
    put_ctx(d.ctx);
    os << ", " << d.iv << ", ";
  }
  put_ctx(inner_);
  os << ")";
  return os.str();
}

}  // namespace pp::iiv
