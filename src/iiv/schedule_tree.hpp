// Dynamic schedule tree (paper §4, Fig. 3e/j and Fig. 5): the structure
// that is "for the dynamic IIVs what the calling-context-tree is for
// calling-context paths" — schedule tree ∪ CCT. Built by inserting the
// context keys of observed dynamic instructions; sibling order is first-
// appearance order, which equals the topological (Kelly) order because the
// trace visits regions in schedule order. Rendered as a flame graph by
// pp::feedback.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "iiv/diiv.hpp"

namespace pp::iiv {

class DynScheduleTree {
 public:
  struct Node {
    CtxElem elem;
    int static_index = 0;        ///< Kelly static index among siblings
    u64 weight = 0;              ///< dynamic ops attributed to the subtree
    u64 self_weight = 0;         ///< ops attributed to this node itself
    std::vector<int> children;   ///< node ids, in first-appearance order
    int parent = -1;
  };

  DynScheduleTree();

  /// Record `weight` dynamic operations at the context `key`.
  void insert(const ContextKey& key, u64 weight = 1);

  const Node& node(int id) const { return nodes_[static_cast<std::size_t>(id)]; }
  const Node& root() const { return nodes_[0]; }
  std::size_t size() const { return nodes_.size(); }

  /// Node id of the leaf reached by walking `key` from the root, or -1
  /// when the context was never inserted.
  int find(const ContextKey& key) const;

  /// Kelly's mapping of a context: alternating static indices and symbolic
  /// induction variables, numeric form (Fig. 4c), e.g. [0, i0, 1, i1, 0].
  /// Loop/component nodes contribute an induction variable.
  std::vector<std::string> kelly_mapping(const ContextKey& key) const;

  /// Total weight inserted.
  u64 total_weight() const { return nodes_[0].weight; }

  /// Depth of the deepest node.
  int max_depth() const;

  /// Indented dump (tests, textual reports).
  std::string str() const;

 private:
  int child(int parent, CtxElem elem);  ///< find-or-create

  std::vector<Node> nodes_;
  std::map<std::pair<int, CtxElem>, int> index_;  ///< (parent, elem) -> id
};

}  // namespace pp::iiv
