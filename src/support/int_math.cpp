#include "support/int_math.hpp"

#include <algorithm>

namespace pp {

std::string to_string_i128(i128 v) {
  if (v == 0) return "0";
  bool neg = v < 0;
  // Peel digits from the absolute value; careful with INT128_MIN by
  // negating digit-wise instead of the whole value.
  std::string out;
  while (v != 0) {
    int digit = static_cast<int>(v % 10);
    if (digit < 0) digit = -digit;
    out.push_back(static_cast<char>('0' + digit));
    v /= 10;
  }
  if (neg) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace pp
