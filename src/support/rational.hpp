// Exact rational arithmetic over 128-bit integers. This is the numeric
// tower underneath the polyhedral library: simplex pivots, Gaussian
// elimination and affine-function interpolation all run on pp::Rat so
// results are exact (no epsilon tuning) and overflow is detected, not
// silently wrapped.
#pragma once

#include <compare>
#include <string>

#include "support/int_math.hpp"

namespace pp {

/// An exact rational number kept in canonical form: gcd(num, den) == 1 and
/// den > 0. Value-semantic, cheap to copy (two 128-bit words).
class Rat {
 public:
  constexpr Rat() : num_(0), den_(1) {}
  Rat(i128 n) : num_(n), den_(1) {}  // NOLINT(google-explicit-constructor)
  Rat(i64 n) : num_(n), den_(1) {}   // NOLINT(google-explicit-constructor)
  Rat(int n) : num_(n), den_(1) {}   // NOLINT(google-explicit-constructor)
  Rat(i128 n, i128 d) : num_(n), den_(d) { normalize(); }

  i128 num() const { return num_; }
  i128 den() const { return den_; }

  bool is_zero() const { return num_ == 0; }
  bool is_integer() const { return den_ == 1; }
  /// Sign of the value: -1, 0 or +1.
  int sign() const { return num_ < 0 ? -1 : (num_ > 0 ? 1 : 0); }

  Rat operator-() const { return Rat(unchecked{}, -num_, den_); }
  Rat operator+(const Rat& o) const;
  Rat operator-(const Rat& o) const;
  Rat operator*(const Rat& o) const;
  Rat operator/(const Rat& o) const;
  Rat& operator+=(const Rat& o) { return *this = *this + o; }
  Rat& operator-=(const Rat& o) { return *this = *this - o; }
  Rat& operator*=(const Rat& o) { return *this = *this * o; }
  Rat& operator/=(const Rat& o) { return *this = *this / o; }

  bool operator==(const Rat& o) const { return num_ == o.num_ && den_ == o.den_; }
  bool operator!=(const Rat& o) const { return !(*this == o); }
  bool operator<(const Rat& o) const { return cmp(o) < 0; }
  bool operator<=(const Rat& o) const { return cmp(o) <= 0; }
  bool operator>(const Rat& o) const { return cmp(o) > 0; }
  bool operator>=(const Rat& o) const { return cmp(o) >= 0; }

  /// Largest integer <= value.
  i128 floor() const { return floor_div(num_, den_); }
  /// Smallest integer >= value.
  i128 ceil() const { return ceil_div(num_, den_); }

  Rat abs() const { return num_ < 0 ? -*this : *this; }

  /// "7/3" or "4" when integral.
  std::string str() const;

  /// Lossy conversion for reporting/metrics only — never used in the exact
  /// kernels.
  double to_double() const {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }

 private:
  struct unchecked {};
  Rat(unchecked, i128 n, i128 d) : num_(n), den_(d) {}
  void normalize();
  int cmp(const Rat& o) const;

  i128 num_;
  i128 den_;
};

inline Rat operator+(i128 a, const Rat& b) { return Rat(a) + b; }
inline Rat operator-(i128 a, const Rat& b) { return Rat(a) - b; }
inline Rat operator*(i128 a, const Rat& b) { return Rat(a) * b; }

}  // namespace pp
