// Cooperative cancellation — the robustness substrate for pp::service.
// A CancelToken is a thread-safe, monotonic "stop now" flag with an
// optional deadline. The pipeline checks it at stage boundaries, the VM at
// a fixed step cadence, the fold stage at every merge position, and the
// scheduler/oracle per fused group / region; a fired token degrades the
// run to a diagnosed partial result (degrade-don't-die), it never aborts.
//
// The token never un-fires: once cancelled, every observer — on any
// thread — eventually sees it, and the first reason to fire wins. poll()
// is the checkpoint primitive (it also evaluates the deadline, so
// deadlines work without a watchdog); cancelled() is the cheap hot-path
// probe (one acquire load, no clock read) for code that runs between
// checkpoints, e.g. fold worker tasks.
#pragma once

#include <atomic>
#include <chrono>

#include "support/int_math.hpp"

namespace pp::support {

enum class CancelReason : std::uint8_t {
  kNone = 0,
  kCancel,    ///< explicit client/server cancellation
  kDeadline,  ///< the job's deadline passed
};
const char* cancel_reason_name(CancelReason r);

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Fire the token (idempotent; the first reason wins).
  void cancel(CancelReason r = CancelReason::kCancel) {
    std::uint8_t expected = 0;
    state_.compare_exchange_strong(expected, static_cast<std::uint8_t>(r),
                                   std::memory_order_release,
                                   std::memory_order_relaxed);
  }
  /// Fire as an expired deadline (what a watchdog calls).
  void expire() { cancel(CancelReason::kDeadline); }

  /// Arm a deadline `ms` from now (steady clock). poll() fires the token
  /// once the deadline passes; a watchdog thread may fire it earlier via
  /// expire() so jobs wedged between checkpoints still observe it at the
  /// very next one.
  void set_deadline_in_ms(u64 ms) {
    auto tp = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
    deadline_ns_.store(tp.time_since_epoch().count(),
                       std::memory_order_release);
  }
  bool has_deadline() const {
    return deadline_ns_.load(std::memory_order_acquire) != 0;
  }
  std::chrono::steady_clock::time_point deadline() const {
    return std::chrono::steady_clock::time_point(
        std::chrono::steady_clock::duration(
            deadline_ns_.load(std::memory_order_acquire)));
  }

  /// Cheap probe: has the token fired? One acquire load; never reads the
  /// clock, so a not-yet-polled expired deadline is not observed here.
  bool cancelled() const {
    return state_.load(std::memory_order_acquire) != 0;
  }

  /// Checkpoint probe: cancelled(), or the deadline passed (which fires
  /// the token as kDeadline). This is what stage boundaries call.
  bool poll() {
    if (cancelled()) return true;
    i64 dl = deadline_ns_.load(std::memory_order_acquire);
    if (dl != 0 &&
        std::chrono::steady_clock::now().time_since_epoch().count() >= dl) {
      expire();
      return true;
    }
    return false;
  }

  CancelReason reason() const {
    return static_cast<CancelReason>(state_.load(std::memory_order_acquire));
  }
  const char* reason_name() const { return cancel_reason_name(reason()); }

 private:
  std::atomic<std::uint8_t> state_{0};
  std::atomic<i64> deadline_ns_{0};  ///< steady-clock ns; 0 = no deadline
};

}  // namespace pp::support
