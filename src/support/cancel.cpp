#include "support/cancel.hpp"

namespace pp::support {

const char* cancel_reason_name(CancelReason r) {
  switch (r) {
    case CancelReason::kNone: return "none";
    case CancelReason::kCancel: return "cancel";
    case CancelReason::kDeadline: return "deadline";
  }
  return "?";
}

}  // namespace pp::support
