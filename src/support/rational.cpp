#include "support/rational.hpp"

namespace pp {

void Rat::normalize() {
  PP_CHECK(den_ != 0, "rational with zero denominator");
  if (den_ < 0) {
    num_ = -num_;
    den_ = -den_;
  }
  if (num_ == 0) {
    den_ = 1;
    return;
  }
  i128 g = gcd(num_, den_);
  num_ /= g;
  den_ /= g;
}

Rat Rat::operator+(const Rat& o) const {
  // Cross-reduce first to keep intermediates small: a/b + c/d with
  // g = gcd(b, d) computes over b/g and d/g.
  i128 g = gcd(den_, o.den_);
  i128 db = den_ / g;
  i128 dod = o.den_ / g;
  i128 n = add_checked(mul_checked(num_, dod), mul_checked(o.num_, db));
  i128 d = mul_checked(den_, dod);
  return Rat(n, d);
}

Rat Rat::operator-(const Rat& o) const { return *this + (-o); }

Rat Rat::operator*(const Rat& o) const {
  // Cross-cancel before multiplying to limit growth.
  i128 g1 = gcd(num_, o.den_);
  i128 g2 = gcd(o.num_, den_);
  i128 n = mul_checked(num_ / g1, o.num_ / g2);
  i128 d = mul_checked(den_ / g2, o.den_ / g1);
  return Rat(n, d);
}

Rat Rat::operator/(const Rat& o) const {
  PP_CHECK(!o.is_zero(), "rational division by zero");
  return *this * Rat(o.den_, o.num_);
}

int Rat::cmp(const Rat& o) const {
  // Compare a/b ? c/d via a*d ? c*b (denominators positive).
  i128 l = mul_checked(num_, o.den_);
  i128 r = mul_checked(o.num_, den_);
  return l < r ? -1 : (l > r ? 1 : 0);
}

std::string Rat::str() const {
  if (den_ == 1) return to_string_i128(num_);
  return to_string_i128(num_) + "/" + to_string_i128(den_);
}

}  // namespace pp
