// Diagnostics: assertion and fatal-error helpers used across all polyprof
// libraries. Analysis code favours throwing `pp::Error` over aborting so
// that a misbehaving workload cannot take down a long profiling run.
#pragma once

#include <stdexcept>
#include <string>

namespace pp {

/// Exception type for all recoverable polyprof errors (bad input IR,
/// arithmetic overflow in exact computations, malformed traces, ...).
class Error : public std::runtime_error {
 public:
  explicit Error(std::string msg) : std::runtime_error(std::move(msg)) {}
};

[[noreturn]] inline void fatal(const std::string& msg) { throw Error(msg); }

/// Internal invariant check. Unlike assert() this is always on: the exact
/// arithmetic kernels are cheap to guard and silent corruption is far more
/// expensive to debug than the branch is to execute.
#define PP_CHECK(cond, msg)                                                  \
  do {                                                                       \
    if (!(cond)) ::pp::fatal(std::string("PP_CHECK failed: ") + (msg) +      \
                             " at " + __FILE__ + ":" + std::to_string(__LINE__)); \
  } while (0)

}  // namespace pp
