// Work-stealing thread pool — the fan-out substrate for the parallel
// profiling pipeline. One pool is shared by every parallel stage of a run
// (fold fan-out, per-SCC-group scheduling, oracle re-validation, report
// rendering); stages submit index ranges and the pool load-balances them
// by stealing half-ranges from busy workers.
//
// Determinism contract: the pool parallelizes only the *execution* of
// independent tasks — callers collect results into pre-indexed slots and
// merge them in a stable order, so any worker count (including 1, which
// runs everything inline on the calling thread) produces byte-identical
// output. See DESIGN.md "Concurrency architecture".
//
// Nesting: parallel_for may be called from inside a pool task (the
// scheduler fans out groups while full_report fans out regions). A thread
// waiting on its batch executes other pending tasks instead of blocking,
// so nested fan-outs cannot deadlock and idle no one.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "support/int_math.hpp"

namespace pp::support {

class ThreadPool {
 public:
  /// max(1, std::thread::hardware_concurrency) — what `workers = 0` means.
  static unsigned default_workers();

  /// A pool of `workers` execution lanes: `workers - 1` background threads
  /// plus the thread calling parallel_for (which always participates).
  /// `workers = 0` resolves to default_workers(); `workers = 1` spawns no
  /// threads at all and every parallel_for runs inline, in index order.
  explicit ThreadPool(unsigned workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned workers() const { return workers_; }
  /// True when the pool has a single lane (parallel_for is a plain loop).
  bool serial() const { return workers_ <= 1; }

  /// Per-lane work accounting (self-observability): chunks executed from
  /// the lane's own queue, chunks stolen from other lanes, and idle waits
  /// (condvar sleeps in the worker loop + backoff naps while helping).
  /// Values are timing-dependent — they exist for pp::obs, never for
  /// output that must be deterministic.
  struct LaneStats {
    u64 tasks = 0;
    u64 steals = 0;
    u64 idle_waits = 0;
  };
  LaneStats lane_stats(std::size_t lane) const;
  /// Sum over all lanes.
  LaneStats total_stats() const;

  /// Run body(i) for every i in [0, n), blocking until all calls returned.
  /// Iterations are distributed over the pool's lanes and stolen in
  /// half-range chunks when a lane runs dry. The first exception thrown by
  /// any iteration is rethrown on the calling thread after the batch
  /// drains (remaining iterations of that chunk are skipped; other chunks
  /// still run — callers that need per-item fault isolation catch inside
  /// the body, as the fold stage does).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

 private:
  struct Batch {
    const std::function<void(std::size_t)>* body = nullptr;
    std::atomic<std::size_t> remaining{0};  ///< indices not yet executed
    std::mutex err_mu;
    std::exception_ptr error;

    void run_range(std::size_t begin, std::size_t end);
  };

  struct RangeTask {
    Batch* batch = nullptr;
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  void worker_loop(std::size_t self);
  void push_task(std::size_t queue, RangeTask t);
  bool try_pop_or_steal(std::size_t self, RangeTask& out);
  /// Execute pending tasks until `batch` completes (helping semantics).
  void help_until_done(std::size_t self, Batch& batch);

  /// Cache-line-padded per-lane counters (relaxed atomics; each lane
  /// writes its own slot, readers aggregate after the fan-outs joined).
  struct alignas(64) LaneCounters {
    std::atomic<u64> tasks{0};
    std::atomic<u64> steals{0};
    std::atomic<u64> idle_waits{0};
  };

  unsigned workers_ = 1;
  std::vector<std::deque<RangeTask>> queues_;  ///< one per lane
  std::vector<std::unique_ptr<std::mutex>> queue_mu_;
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::atomic<std::size_t> pending_{0};  ///< tasks sitting in queues
  std::atomic<bool> stop_{false};
  std::vector<std::unique_ptr<LaneCounters>> lane_counters_;
  std::vector<std::thread> threads_;
};

}  // namespace pp::support
