// Dense exact-rational matrices and the linear-algebra kernels used by the
// folding stage (affine-function interpolation) and the polyhedral library
// (nullspaces, linear independence of schedule rows).
#pragma once

#include <initializer_list>
#include <optional>
#include <string>
#include <vector>

#include "support/rational.hpp"

namespace pp {

/// Dense rational vector.
using RatVec = std::vector<Rat>;

/// Dense row-major rational matrix with exact Gaussian elimination.
class RatMatrix {
 public:
  RatMatrix() = default;
  RatMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols) {}
  RatMatrix(std::initializer_list<std::initializer_list<Rat>> init);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  Rat& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  const Rat& at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Append a row (must match the column count; sets it on first row).
  void push_row(const RatVec& row);

  RatVec row(std::size_t r) const;

  /// Rank via fraction-free-ish Gaussian elimination (on a copy).
  std::size_t rank() const;

  /// Solve A·x = b exactly. Returns nullopt when inconsistent; when the
  /// system is under-determined an arbitrary solution (free vars = 0) is
  /// returned.
  std::optional<RatVec> solve(const RatVec& b) const;

  /// Basis of the (right) nullspace {x : A·x = 0}; empty when A has full
  /// column rank.
  std::vector<RatVec> nullspace() const;

  /// True if `v` lies in the row space of this matrix (used to force new
  /// schedule rows to be linearly independent of the band built so far).
  bool row_space_contains(const RatVec& v) const;

  std::string str() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Rat> data_;
};

/// Dot product of two equally-sized rational vectors.
Rat dot(const RatVec& a, const RatVec& b);

}  // namespace pp
