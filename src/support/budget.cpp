#include "support/budget.hpp"

#include <algorithm>
#include <sstream>

namespace pp::support {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kInfo: return "info";
    case Severity::kWarn: return "warn";
    case Severity::kError: return "error";
  }
  return "?";
}

const char* stage_name(Stage s) {
  switch (s) {
    case Stage::kSetup: return "setup";
    case Stage::kVerify: return "verify";
    case Stage::kControl: return "control";
    case Stage::kDdg: return "ddg";
    case Stage::kFold: return "fold";
    case Stage::kFeedback: return "feedback";
  }
  return "?";
}

std::string Diagnostic::str() const {
  std::ostringstream os;
  os << "[" << severity_name(severity) << "] " << stage_name(stage) << ": "
     << reason;
  if (statement >= 0) os << " (statement S" << statement << ")";
  if (!region.empty()) os << " (region " << region << ")";
  return os.str();
}

std::size_t DiagnosticLog::count(Severity sev) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::size_t n = 0;
  for (const auto& d : records_)
    if (d.severity == sev) ++n;
  return n;
}

std::string DiagnosticLog::render() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out;
  for (const auto& d : records_) {
    out += d.str();
    out += '\n';
  }
  return out;
}

std::string DiagnosticLog::stable_flush() {
  std::lock_guard<std::mutex> lk(mu_);
  std::stable_sort(records_.begin(), records_.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.stage != b.stage) return a.stage < b.stage;
                     return a.statement < b.statement;
                   });
  std::string out;
  for (const auto& d : records_) {
    out += d.str();
    out += '\n';
  }
  records_.clear();
  return out;
}

}  // namespace pp::support
