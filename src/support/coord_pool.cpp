#include "support/coord_pool.hpp"

#include <algorithm>
#include <limits>

namespace pp::support {

CoordRef CoordPool::intern(std::span<const i64> coords) {
  if (coords.size() == last_.len &&
      std::equal(coords.begin(), coords.end(), arena_.data() + last_.offset))
    return last_;
  PP_CHECK(arena_.size() + coords.size() <=
               std::numeric_limits<std::uint32_t>::max(),
           "CoordPool arena overflow");
  CoordRef r{static_cast<std::uint32_t>(arena_.size()), static_cast<std::uint32_t>(coords.size())};
  arena_.insert(arena_.end(), coords.begin(), coords.end());
  last_ = r;
  return r;
}

}  // namespace pp::support
