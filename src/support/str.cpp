#include "support/str.hpp"

#include <cmath>
#include <cstdio>

namespace pp {

std::string percent(double num, double den) {
  if (den <= 0.0) return "-";
  double p = 100.0 * num / den;
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.0f%%", p);
  return buf;
}

}  // namespace pp
