#include "support/matrix.hpp"

#include <sstream>

namespace pp {

RatMatrix::RatMatrix(std::initializer_list<std::initializer_list<Rat>> init) {
  for (const auto& r : init) push_row(RatVec(r));
}

void RatMatrix::push_row(const RatVec& row) {
  if (rows_ == 0 && cols_ == 0) cols_ = row.size();
  PP_CHECK(row.size() == cols_, "push_row: column count mismatch");
  data_.insert(data_.end(), row.begin(), row.end());
  ++rows_;
}

RatVec RatMatrix::row(std::size_t r) const {
  PP_CHECK(r < rows_, "row index out of range");
  return RatVec(data_.begin() + static_cast<std::ptrdiff_t>(r * cols_),
                data_.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols_));
}

namespace {

// In-place row echelon reduction; returns the pivot columns.
std::vector<std::size_t> echelon(std::vector<RatVec>& m) {
  std::vector<std::size_t> pivots;
  std::size_t rows = m.size();
  if (rows == 0) return pivots;
  std::size_t cols = m[0].size();
  std::size_t pr = 0;  // current pivot row
  for (std::size_t pc = 0; pc < cols && pr < rows; ++pc) {
    // Find a pivot in column pc at or below row pr.
    std::size_t sel = pr;
    while (sel < rows && m[sel][pc].is_zero()) ++sel;
    if (sel == rows) continue;
    std::swap(m[sel], m[pr]);
    // Normalize pivot row.
    Rat inv = Rat(1) / m[pr][pc];
    for (std::size_t c = pc; c < cols; ++c) m[pr][c] *= inv;
    // Eliminate all other rows.
    for (std::size_t r = 0; r < rows; ++r) {
      if (r == pr || m[r][pc].is_zero()) continue;
      Rat f = m[r][pc];
      for (std::size_t c = pc; c < cols; ++c) m[r][c] -= f * m[pr][c];
    }
    pivots.push_back(pc);
    ++pr;
  }
  return pivots;
}

}  // namespace

std::size_t RatMatrix::rank() const {
  std::vector<RatVec> m;
  m.reserve(rows_);
  for (std::size_t r = 0; r < rows_; ++r) m.push_back(row(r));
  return echelon(m).size();
}

std::optional<RatVec> RatMatrix::solve(const RatVec& b) const {
  PP_CHECK(b.size() == rows_, "solve: rhs size mismatch");
  // Augmented matrix [A | b].
  std::vector<RatVec> m;
  m.reserve(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    RatVec rv = row(r);
    rv.push_back(b[r]);
    m.push_back(std::move(rv));
  }
  std::vector<std::size_t> pivots = echelon(m);
  // Inconsistent iff a pivot landed in the augmented column.
  if (!pivots.empty() && pivots.back() == cols_) return std::nullopt;
  RatVec x(cols_, Rat(0));
  for (std::size_t i = 0; i < pivots.size(); ++i) x[pivots[i]] = m[i][cols_];
  return x;
}

std::vector<RatVec> RatMatrix::nullspace() const {
  std::vector<RatVec> m;
  m.reserve(rows_);
  for (std::size_t r = 0; r < rows_; ++r) m.push_back(row(r));
  std::vector<std::size_t> pivots = echelon(m);
  std::vector<bool> is_pivot(cols_, false);
  for (std::size_t p : pivots) is_pivot[p] = true;
  std::vector<RatVec> basis;
  for (std::size_t free_c = 0; free_c < cols_; ++free_c) {
    if (is_pivot[free_c]) continue;
    RatVec v(cols_, Rat(0));
    v[free_c] = Rat(1);
    // Back-substitute: pivot rows are already fully reduced.
    for (std::size_t i = 0; i < pivots.size(); ++i) {
      if (i < m.size()) v[pivots[i]] = -m[i][free_c];
    }
    basis.push_back(std::move(v));
  }
  return basis;
}

bool RatMatrix::row_space_contains(const RatVec& v) const {
  PP_CHECK(v.size() == cols_, "row_space_contains: size mismatch");
  std::vector<RatVec> m;
  m.reserve(rows_ + 1);
  for (std::size_t r = 0; r < rows_; ++r) m.push_back(row(r));
  std::size_t base_rank = [&] {
    std::vector<RatVec> copy = m;
    return echelon(copy).size();
  }();
  m.push_back(v);
  return echelon(m).size() == base_rank;
}

std::string RatMatrix::str() const {
  std::ostringstream os;
  for (std::size_t r = 0; r < rows_; ++r) {
    os << "[ ";
    for (std::size_t c = 0; c < cols_; ++c) os << at(r, c).str() << " ";
    os << "]\n";
  }
  return os.str();
}

Rat dot(const RatVec& a, const RatVec& b) {
  PP_CHECK(a.size() == b.size(), "dot: size mismatch");
  Rat s(0);
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

}  // namespace pp
