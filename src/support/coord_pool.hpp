// Arena interning for iteration-vector coordinates. The DDG hot path
// stamps every dynamic instruction with its current iteration vector;
// materializing a std::vector<i64> per event (and copying it into shadow
// memory, register producers and the sink stream) is exactly the per-event
// heap traffic a shadow-memory profiler cannot afford. Coordinates change
// only at loop events, so the builder interns each distinct vector once
// into a flat arena and passes around a trivially-copyable CoordRef.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/diag.hpp"
#include "support/int_math.hpp"

namespace pp::support {

/// Stable handle into a CoordPool arena: (offset, length) in words.
/// The default-constructed ref denotes the empty vector (depth 0) and is
/// valid against any pool.
struct CoordRef {
  std::uint32_t offset = 0;
  std::uint32_t len = 0;
  bool operator==(const CoordRef&) const = default;
};

static_assert(sizeof(CoordRef) == 8);

/// Append-only arena of i64 coordinate vectors. Handles stay valid until
/// clear(); clear() keeps the arena capacity, so a pool reused across
/// profiling runs reaches a steady state with no allocation at all.
class CoordPool {
 public:
  /// Intern a copy of `coords`. Consecutive identical vectors (the common
  /// case: most loop events update only the context part of the IIV, not
  /// the induction variables) collapse onto the previous handle.
  CoordRef intern(std::span<const i64> coords);

  /// Resolve a handle. The span stays valid until clear() (the arena grows
  /// but offsets never move logically; resolution re-reads the base).
  std::span<const i64> get(CoordRef r) const {
    PP_CHECK(static_cast<std::size_t>(r.offset) + r.len <= arena_.size(),
             "CoordRef out of pool bounds");
    return {arena_.data() + r.offset, r.len};
  }

  /// Drop all handles but keep the allocated capacity for reuse.
  void clear() {
    arena_.clear();
    last_ = CoordRef{};
  }

  std::size_t size_words() const { return arena_.size(); }
  std::size_t capacity_words() const { return arena_.capacity(); }

 private:
  std::vector<i64> arena_;
  CoordRef last_;  ///< most recent intern (dedupe target)
};

}  // namespace pp::support
