// Small string helpers shared by printers and report writers.
#pragma once

#include <sstream>
#include <string>
#include <vector>

namespace pp {

/// Join the elements of `items` with `sep`, converting each with `fn`.
template <typename Range, typename Fn>
std::string join(const Range& items, const std::string& sep, Fn fn) {
  std::ostringstream os;
  bool first = true;
  for (const auto& it : items) {
    if (!first) os << sep;
    first = false;
    os << fn(it);
  }
  return os.str();
}

/// Join a range of strings/streamables with `sep`.
template <typename Range>
std::string join(const Range& items, const std::string& sep) {
  return join(items, sep, [](const auto& x) {
    std::ostringstream os;
    os << x;
    return os.str();
  });
}

/// Left-pad/truncate `s` to width `w` (for fixed-width table output).
inline std::string pad(const std::string& s, std::size_t w) {
  if (s.size() >= w) return s;
  return s + std::string(w - s.size(), ' ');
}

/// Render a fraction as a percentage string like "85%".
std::string percent(double num, double den);

}  // namespace pp
