// Run budgets and structured diagnostics — the degrade-don't-die substrate
// (paper §5 extends over-approximation to folding only; the pipeline
// extends it to every stage). A RunBudget caps the resources one profiling
// run may consume (wall clock, VM steps, shadow pages, interned coordinate
// words, folder pieces); exceeding a cap never aborts the run — the owning
// stage records a Diagnostic and degrades to a certified over-approximation
// or a truncated trace. The DiagnosticLog is the run's flight recorder:
// every degradation, trap and validator rejection lands here as a
// structured record that the feedback report renders deterministically.
#pragma once

#include <chrono>
#include <string>
#include <vector>

#include "support/int_math.hpp"

namespace pp::support {

/// Resource caps for one profiling run. 0 = unlimited. Checked at stage
/// boundaries by the pipeline and inside the stage-2 hot path by the DDG
/// builder; exceeding a cap degrades (it never throws).
struct RunBudget {
  u64 wall_ms = 0;                 ///< wall-clock for the whole run
  u64 vm_steps = 0;                ///< retired instructions per VM replay
  std::size_t shadow_pages = 0;    ///< live shadow-memory pages (32 KiB each)
  std::size_t coord_pool_words = 0;  ///< interned iteration-vector words
  std::size_t folder_pieces = 0;   ///< per-stream folded pieces (fold cap)

  /// Start the wall clock. Checks before arm() never report exhaustion.
  void arm() {
    start_ = std::chrono::steady_clock::now();
    armed_ = true;
  }
  bool armed() const { return armed_; }

  u64 elapsed_ms() const {
    if (!armed_) return 0;
    return static_cast<u64>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                std::chrono::steady_clock::now() - start_)
                                .count());
  }

  bool wall_exceeded() const {
    return wall_ms != 0 && armed_ && elapsed_ms() >= wall_ms;
  }
  bool steps_exceeded(u64 steps) const {
    return vm_steps != 0 && steps > vm_steps;
  }
  bool shadow_exceeded(std::size_t pages) const {
    return shadow_pages != 0 && pages > shadow_pages;
  }
  bool pool_exceeded(std::size_t words) const {
    return coord_pool_words != 0 && words > coord_pool_words;
  }

  bool unlimited() const {
    return wall_ms == 0 && vm_steps == 0 && shadow_pages == 0 &&
           coord_pool_words == 0 && folder_pieces == 0;
  }

 private:
  std::chrono::steady_clock::time_point start_{};
  bool armed_ = false;
};

enum class Severity : std::uint8_t { kInfo, kWarn, kError };
const char* severity_name(Severity s);

/// Pipeline stage a diagnostic originates from.
enum class Stage : std::uint8_t {
  kSetup,     ///< option/entry validation before any replay
  kVerify,    ///< pipeline-entry IR verification (pp::verify)
  kControl,   ///< stage 1: dynamic control structure
  kDdg,       ///< stage 2: DDG construction (VM replay + shadow memory)
  kFold,      ///< stage 3: polyhedral folding
  kFeedback,  ///< stage 4: scheduling/metrics/report
};
const char* stage_name(Stage s);

/// One structured degradation record.
struct Diagnostic {
  Severity severity = Severity::kWarn;
  Stage stage = Stage::kSetup;
  int statement = -1;   ///< statement id when the record is per-statement
  std::string region;   ///< region name when the record is per-region
  std::string reason;

  /// Deterministic one-line rendering, e.g.
  /// "[error] ddg: budget exhausted (statement S3)".
  std::string str() const;
};

/// Append-only log of a run's degradations. Insertion order is the
/// pipeline's deterministic processing order, so render() is golden-
/// testable.
class DiagnosticLog {
 public:
  void add(Severity sev, Stage stage, std::string reason, int statement = -1,
           std::string region = {}) {
    records_.push_back(Diagnostic{sev, stage, statement, std::move(region),
                                  std::move(reason)});
  }
  void info(Stage stage, std::string reason, int statement = -1) {
    add(Severity::kInfo, stage, std::move(reason), statement);
  }
  void warn(Stage stage, std::string reason, int statement = -1) {
    add(Severity::kWarn, stage, std::move(reason), statement);
  }
  void error(Stage stage, std::string reason, int statement = -1) {
    add(Severity::kError, stage, std::move(reason), statement);
  }

  bool empty() const { return records_.empty(); }
  std::size_t size() const { return records_.size(); }
  const std::vector<Diagnostic>& all() const { return records_; }
  void clear() { records_.clear(); }

  std::size_t count(Severity sev) const;
  bool has_errors() const { return count(Severity::kError) > 0; }

  /// One line per record, insertion order, trailing newline per line.
  std::string render() const;

 private:
  std::vector<Diagnostic> records_;
};

}  // namespace pp::support
