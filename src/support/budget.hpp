// Run budgets and structured diagnostics — the degrade-don't-die substrate
// (paper §5 extends over-approximation to folding only; the pipeline
// extends it to every stage). A RunBudget caps the resources one profiling
// run may consume (wall clock, VM steps, shadow pages, interned coordinate
// words, folder pieces); exceeding a cap never aborts the run — the owning
// stage records a Diagnostic and degrades to a certified over-approximation
// or a truncated trace. The DiagnosticLog is the run's flight recorder:
// every degradation, trap and validator rejection lands here as a
// structured record that the feedback report renders deterministically.
#pragma once

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <vector>

#include "support/int_math.hpp"

namespace pp::support {

/// Resource caps for one profiling run. 0 = unlimited. Checked at stage
/// boundaries by the pipeline and inside the stage-2 hot path by the DDG
/// builder; exceeding a cap degrades (it never throws).
///
/// Thread safety: the caps themselves are set before the run and never
/// mutated while stages execute. arm() publishes the wall clock through an
/// atomic, so armed()/wall_exceeded() may race with arm() from another
/// thread (the threaded replay checks the wall on the consumer lane while
/// the producer owns the VM). charge_pieces() is the one mutating
/// operation stages share — it is a relaxed atomic add; exhaustion is
/// *enforced* in deterministic merge order by the fold stage, the counter
/// only accounts.
struct RunBudget {
  u64 wall_ms = 0;                 ///< wall-clock for the whole run
  u64 vm_steps = 0;                ///< retired instructions per VM replay
  std::size_t shadow_pages = 0;    ///< live shadow-memory pages (32 KiB each)
  std::size_t coord_pool_words = 0;  ///< interned iteration-vector words
  std::size_t folder_pieces = 0;   ///< per-stream folded pieces (fold cap)

  RunBudget() = default;
  RunBudget(const RunBudget& o) { copy_from(o); }
  RunBudget& operator=(const RunBudget& o) {
    if (this != &o) copy_from(o);
    return *this;
  }

  /// Start the wall clock. Checks before arm() never report exhaustion.
  void arm() {
    start_ = std::chrono::steady_clock::now();
    armed_.store(true, std::memory_order_release);
  }
  bool armed() const { return armed_.load(std::memory_order_acquire); }

  u64 elapsed_ms() const {
    if (!armed()) return 0;
    return static_cast<u64>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                std::chrono::steady_clock::now() - start_)
                                .count());
  }

  bool wall_exceeded() const {
    return wall_ms != 0 && armed() && elapsed_ms() >= wall_ms;
  }
  bool steps_exceeded(u64 steps) const {
    return vm_steps != 0 && steps > vm_steps;
  }
  bool shadow_exceeded(std::size_t pages) const {
    return shadow_pages != 0 && pages > shadow_pages;
  }
  bool pool_exceeded(std::size_t words) const {
    return coord_pool_words != 0 && words > coord_pool_words;
  }

  /// Atomically account `n` folded pieces; returns the post-charge total.
  /// Safe from any fold worker; callers decide exhaustion from the
  /// deterministic per-stream totals, not from this global counter.
  std::size_t charge_pieces(std::size_t n) {
    return pieces_charged_.fetch_add(n, std::memory_order_relaxed) + n;
  }
  std::size_t pieces_charged() const {
    return pieces_charged_.load(std::memory_order_relaxed);
  }
  bool pieces_exceeded(std::size_t used) const {
    return folder_pieces != 0 && used > folder_pieces;
  }

  bool unlimited() const {
    return wall_ms == 0 && vm_steps == 0 && shadow_pages == 0 &&
           coord_pool_words == 0 && folder_pieces == 0;
  }

 private:
  void copy_from(const RunBudget& o) {
    wall_ms = o.wall_ms;
    vm_steps = o.vm_steps;
    shadow_pages = o.shadow_pages;
    coord_pool_words = o.coord_pool_words;
    folder_pieces = o.folder_pieces;
    start_ = o.start_;
    armed_.store(o.armed(), std::memory_order_relaxed);
    pieces_charged_.store(o.pieces_charged(), std::memory_order_relaxed);
  }

  std::chrono::steady_clock::time_point start_{};
  std::atomic<bool> armed_{false};
  std::atomic<std::size_t> pieces_charged_{0};
};

enum class Severity : std::uint8_t { kInfo, kWarn, kError };
const char* severity_name(Severity s);

/// Pipeline stage a diagnostic originates from.
enum class Stage : std::uint8_t {
  kSetup,     ///< option/entry validation before any replay
  kVerify,    ///< pipeline-entry IR verification (pp::verify)
  kControl,   ///< stage 1: dynamic control structure
  kDdg,       ///< stage 2: DDG construction (VM replay + shadow memory)
  kFold,      ///< stage 3: polyhedral folding
  kFeedback,  ///< stage 4: scheduling/metrics/report
};
const char* stage_name(Stage s);

/// One structured degradation record.
struct Diagnostic {
  Severity severity = Severity::kWarn;
  Stage stage = Stage::kSetup;
  int statement = -1;   ///< statement id when the record is per-statement
  std::string region;   ///< region name when the record is per-region
  std::string reason;

  /// Deterministic one-line rendering, e.g.
  /// "[error] ddg: budget exhausted (statement S3)".
  std::string str() const;
};

/// Append-only log of a run's degradations. Insertion order is the
/// pipeline's deterministic processing order, so render() is golden-
/// testable.
///
/// Thread safety: add()/info()/warn()/error(), size(), empty(), count()
/// and render() may race with each other — records are guarded by an
/// internal mutex. all() hands out an unguarded reference and must only
/// be called once concurrent writers have quiesced (the pipeline reads it
/// strictly after every fan-out joined). Parallel stages that need a
/// *deterministic* record order do not interleave into a shared log at
/// all: each task writes a private DiagnosticLog and the stage merges
/// them with merge_from() in its stable merge order. stable_flush() is
/// the alternative for genuinely unordered producers — it sequences what
/// racing threads wrote by the stable (stage, statement) key.
class DiagnosticLog {
 public:
  DiagnosticLog() = default;
  DiagnosticLog(const DiagnosticLog& o) : records_(o.snapshot()) {}
  DiagnosticLog(DiagnosticLog&& o) noexcept : records_(o.take()) {}
  DiagnosticLog& operator=(const DiagnosticLog& o) {
    if (this != &o) {
      auto copy = o.snapshot();
      std::lock_guard<std::mutex> lk(mu_);
      records_ = std::move(copy);
    }
    return *this;
  }
  DiagnosticLog& operator=(DiagnosticLog&& o) noexcept {
    if (this != &o) {
      auto taken = o.take();
      std::lock_guard<std::mutex> lk(mu_);
      records_ = std::move(taken);
    }
    return *this;
  }

  void add(Severity sev, Stage stage, std::string reason, int statement = -1,
           std::string region = {}) {
    Diagnostic d{sev, stage, statement, std::move(region), std::move(reason)};
    std::lock_guard<std::mutex> lk(mu_);
    records_.push_back(std::move(d));
  }
  void info(Stage stage, std::string reason, int statement = -1) {
    add(Severity::kInfo, stage, std::move(reason), statement);
  }
  void warn(Stage stage, std::string reason, int statement = -1) {
    add(Severity::kWarn, stage, std::move(reason), statement);
  }
  void error(Stage stage, std::string reason, int statement = -1) {
    add(Severity::kError, stage, std::move(reason), statement);
  }

  /// Append another log's records after this log's own, preserving the
  /// donor's internal order. The stages' stable merge primitive: per-task
  /// logs are merged in statement-table / sorted-dep-key order, which
  /// reproduces the serial insertion order byte for byte.
  void merge_from(DiagnosticLog&& other) {
    auto donated = other.take();
    std::lock_guard<std::mutex> lk(mu_);
    records_.insert(records_.end(), std::make_move_iterator(donated.begin()),
                    std::make_move_iterator(donated.end()));
  }

  bool empty() const {
    std::lock_guard<std::mutex> lk(mu_);
    return records_.empty();
  }
  std::size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return records_.size();
  }
  /// Unguarded view; requires no concurrent writers (post-join reads).
  const std::vector<Diagnostic>& all() const { return records_; }
  void clear() {
    std::lock_guard<std::mutex> lk(mu_);
    records_.clear();
  }

  std::size_t count(Severity sev) const;
  bool has_errors() const { return count(Severity::kError) > 0; }

  /// One line per record, insertion order, trailing newline per line.
  std::string render() const;

  /// Sequence records written by unordered concurrent producers: stable-
  /// sort by (stage, statement) — ties keep arrival order — then render
  /// and clear. Unlike render(), the output does not depend on thread
  /// interleaving as long as each (stage, statement) key has one producer.
  std::string stable_flush();

 private:
  std::vector<Diagnostic> snapshot() const {
    std::lock_guard<std::mutex> lk(mu_);
    return records_;
  }
  std::vector<Diagnostic> take() {
    std::lock_guard<std::mutex> lk(mu_);
    return std::move(records_);
  }

  mutable std::mutex mu_;
  std::vector<Diagnostic> records_;
};

}  // namespace pp::support
