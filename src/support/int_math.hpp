// Overflow-checked integer helpers over __int128. The folding and
// scheduling stages perform exact rational arithmetic whose intermediate
// values can grow quickly (Gaussian elimination on skewed iteration
// domains); 128-bit intermediates with explicit overflow detection keep
// the computation exact or loudly failing, never silently wrong.
#pragma once

#include <cstdint>
#include <string>

#include "support/diag.hpp"

namespace pp {

using i64 = std::int64_t;
using u64 = std::uint64_t;
using i128 = __int128;

/// Checked addition; throws pp::Error on signed overflow.
inline i128 add_checked(i128 a, i128 b) {
  i128 r;
  if (__builtin_add_overflow(a, b, &r)) fatal("i128 addition overflow");
  return r;
}

/// Checked subtraction; throws pp::Error on signed overflow.
inline i128 sub_checked(i128 a, i128 b) {
  i128 r;
  if (__builtin_sub_overflow(a, b, &r)) fatal("i128 subtraction overflow");
  return r;
}

/// Checked multiplication; throws pp::Error on signed overflow.
inline i128 mul_checked(i128 a, i128 b) {
  i128 r;
  if (__builtin_mul_overflow(a, b, &r)) fatal("i128 multiplication overflow");
  return r;
}

/// Greatest common divisor (always non-negative; gcd(0,0) == 0).
inline i128 gcd(i128 a, i128 b) {
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  while (b != 0) {
    i128 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

/// Least common multiple (always non-negative) with overflow checking.
inline i128 lcm(i128 a, i128 b) {
  if (a == 0 || b == 0) return 0;
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  i128 g = gcd(a, b);
  return mul_checked(a / g, b);
}

/// Floor division (round towards negative infinity), exact for all signs.
inline i128 floor_div(i128 a, i128 b) {
  PP_CHECK(b != 0, "floor_div by zero");
  i128 q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

/// Ceiling division (round towards positive infinity).
inline i128 ceil_div(i128 a, i128 b) {
  PP_CHECK(b != 0, "ceil_div by zero");
  i128 q = a / b;
  if ((a % b != 0) && ((a < 0) == (b < 0))) ++q;
  return q;
}

/// Decimal rendering of a 128-bit integer (std::to_string lacks support).
std::string to_string_i128(i128 v);

/// Narrow to int64, throwing if the value does not fit.
inline i64 narrow_i64(i128 v) {
  PP_CHECK(v >= INT64_MIN && v <= INT64_MAX, "i128 value exceeds int64 range");
  return static_cast<i64>(v);
}

}  // namespace pp
