#include "support/thread_pool.hpp"

#include <algorithm>
#include <chrono>

namespace pp::support {

namespace {

// Lane of the current thread inside `tls_pool` (workers set it once at
// startup; external threads submit and help through lane 0).
thread_local const ThreadPool* tls_pool = nullptr;
thread_local std::size_t tls_lane = 0;

}  // namespace

unsigned ThreadPool::default_workers() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned workers)
    : workers_(workers == 0 ? default_workers() : workers) {
  queues_.resize(workers_);
  queue_mu_.reserve(workers_);
  lane_counters_.reserve(workers_);
  for (unsigned i = 0; i < workers_; ++i) {
    queue_mu_.push_back(std::make_unique<std::mutex>());
    lane_counters_.push_back(std::make_unique<LaneCounters>());
  }
  threads_.reserve(workers_ > 0 ? workers_ - 1 : 0);
  for (unsigned i = 1; i < workers_; ++i)
    threads_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
    stop_.store(true, std::memory_order_relaxed);
  }
  wake_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Batch::run_range(std::size_t begin, std::size_t end) {
  try {
    for (std::size_t i = begin; i < end; ++i) (*body)(i);
  } catch (...) {
    std::lock_guard<std::mutex> lk(err_mu);
    if (!error) error = std::current_exception();
  }
  // The full chunk is accounted even when an exception skipped its tail —
  // remaining counts indices that will never run as "done" so the batch
  // can drain and rethrow.
  remaining.fetch_sub(end - begin, std::memory_order_acq_rel);
}

void ThreadPool::push_task(std::size_t queue, RangeTask t) {
  {
    std::lock_guard<std::mutex> lk(*queue_mu_[queue]);
    queues_[queue].push_back(t);
  }
  pending_.fetch_add(1, std::memory_order_release);
  wake_cv_.notify_one();
}

bool ThreadPool::try_pop_or_steal(std::size_t self, RangeTask& out) {
  {
    // Own lane: LIFO for locality.
    std::lock_guard<std::mutex> lk(*queue_mu_[self]);
    if (!queues_[self].empty()) {
      out = queues_[self].back();
      queues_[self].pop_back();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      lane_counters_[self]->tasks.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  // Steal: FIFO from the other lanes (oldest chunk = biggest remaining
  // work under the round-robin initial split).
  for (std::size_t k = 1; k < workers_; ++k) {
    std::size_t victim = (self + k) % workers_;
    std::lock_guard<std::mutex> lk(*queue_mu_[victim]);
    if (!queues_[victim].empty()) {
      out = queues_[victim].front();
      queues_[victim].pop_front();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      lane_counters_[self]->tasks.fetch_add(1, std::memory_order_relaxed);
      lane_counters_[self]->steals.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

ThreadPool::LaneStats ThreadPool::lane_stats(std::size_t lane) const {
  const LaneCounters& c = *lane_counters_[lane];
  return {c.tasks.load(std::memory_order_relaxed),
          c.steals.load(std::memory_order_relaxed),
          c.idle_waits.load(std::memory_order_relaxed)};
}

ThreadPool::LaneStats ThreadPool::total_stats() const {
  LaneStats total;
  for (std::size_t i = 0; i < workers_; ++i) {
    LaneStats s = lane_stats(i);
    total.tasks += s.tasks;
    total.steals += s.steals;
    total.idle_waits += s.idle_waits;
  }
  return total;
}

void ThreadPool::worker_loop(std::size_t self) {
  tls_pool = this;
  tls_lane = self;
  for (;;) {
    RangeTask t;
    if (try_pop_or_steal(self, t)) {
      t.batch->run_range(t.begin, t.end);
      continue;
    }
    lane_counters_[self]->idle_waits.fetch_add(1, std::memory_order_relaxed);
    std::unique_lock<std::mutex> lk(wake_mu_);
    wake_cv_.wait(lk, [&] {
      return stop_.load(std::memory_order_relaxed) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_relaxed)) return;
  }
}

void ThreadPool::help_until_done(std::size_t self, Batch& batch) {
  using namespace std::chrono_literals;
  while (batch.remaining.load(std::memory_order_acquire) > 0) {
    RangeTask t;
    if (try_pop_or_steal(self, t)) {
      // Help with ANY pending chunk, not just our own batch: a nested
      // parallel_for inside a stolen chunk keeps the lane busy instead of
      // deadlocking it, and foreign chunks are exactly the work our batch
      // may transitively be waiting on.
      t.batch->run_range(t.begin, t.end);
      continue;
    }
    // Nothing runnable: every remaining chunk is in flight on another
    // lane. Sleep briefly rather than spin; the timeout bounds the wait
    // for completion signals without a per-batch condition variable
    // handshake on the hot path.
    lane_counters_[self]->idle_waits.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(20us);
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (serial() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  Batch batch;
  batch.body = &body;
  batch.remaining.store(n, std::memory_order_relaxed);

  std::size_t lane = (tls_pool == this) ? tls_lane : 0;
  // Over-decompose by 4x so stolen chunks rebalance uneven task costs
  // (statement folds vary by orders of magnitude).
  std::size_t chunks =
      std::min<std::size_t>(n, static_cast<std::size_t>(workers_) * 4);
  for (std::size_t c = 0; c < chunks; ++c) {
    std::size_t begin = n * c / chunks;
    std::size_t end = n * (c + 1) / chunks;
    if (begin == end) continue;
    push_task((lane + c) % workers_, RangeTask{&batch, begin, end});
  }
  help_until_done(lane, batch);
  if (batch.error) std::rethrow_exception(batch.error);
}

}  // namespace pp::support
