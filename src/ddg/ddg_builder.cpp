#include "ddg/ddg_builder.hpp"

namespace pp::ddg {

const char* dep_kind_name(DepKind k) {
  switch (k) {
    case DepKind::kRegFlow: return "reg-flow";
    case DepKind::kMemFlow: return "mem-flow";
    case DepKind::kAnti: return "anti";
    case DepKind::kOutput: return "output";
  }
  return "?";
}

DdgBuilder::DdgBuilder(const ir::Module& m, const cfg::ControlStructure& cs,
                       DdgSink* sink, DdgOptions opts)
    : module_(m),
      lem_(cs, [this](const cfg::LoopEvent& ev) { diiv_.apply(ev); }),
      sink_(sink),
      opts_(opts) {}

void DdgBuilder::on_local_jump(int func, int dst_bb) {
  if (frames_.empty()) {
    // First event of the run: materialize the entry frame.
    const ir::Function& f = module_.functions[static_cast<std::size_t>(func)];
    frames_.push_back(
        {ShadowFrame(static_cast<std::size_t>(f.num_regs)), ir::kNoReg});
  }
  lem_.on_jump(func, dst_bb);
}

void DdgBuilder::on_call(vm::CodeRef callsite, int callee) {
  const ir::Function& cf = module_.functions[static_cast<std::size_t>(callee)];
  const ir::Instr& in = module_.functions[static_cast<std::size_t>(callsite.func)]
                            .blocks[static_cast<std::size_t>(callsite.block)]
                            .instrs[static_cast<std::size_t>(callsite.instr)];
  FrameCtl nf{ShadowFrame(static_cast<std::size_t>(cf.num_regs)), in.dst};
  // Argument pass-through: the callee's parameter registers inherit the
  // caller's producers, so calling-convention moves do not create DDG
  // nodes (the dependence materializes at first real use).
  const ShadowFrame& caller = frames_.back().shadow;
  for (std::size_t i = 0; i < in.args.size(); ++i)
    nf.shadow.regs[i] = caller.regs[static_cast<std::size_t>(in.args[i])];
  frames_.push_back(std::move(nf));
  lem_.on_call(callsite.func, callee, 0);
}

void DdgBuilder::on_return(int callee, vm::CodeRef into) {
  PP_CHECK(frames_.size() > 1, "DDG return underflow");
  ir::Reg dst = frames_.back().ret_dst;
  frames_.pop_back();
  if (dst != ir::kNoReg && pending_ret_)
    frames_.back().shadow.regs[static_cast<std::size_t>(dst)] = *pending_ret_;
  pending_ret_.reset();
  lem_.on_return(callee, into.func, into.block);
}

void DdgBuilder::reg_dep(const ShadowFrame& frame, ir::Reg r,
                         const Occurrence& dst, int slot) {
  if (r == ir::kNoReg) return;
  const auto& prod = frame.regs[static_cast<std::size_t>(r)];
  if (!prod) return;  // value predates profiling (e.g. entry arguments)
  ++deps_emitted_;
  sink_->on_dependence(DepKind::kRegFlow, *prod, dst, slot);
}

void DdgBuilder::on_instr(const vm::InstrEvent& ev) {
  const ir::Instr& in = *ev.instr;
  PP_CHECK(!frames_.empty(), "instruction with no frame");
  ShadowFrame& frame = frames_.back().shadow;

  if (diiv_.version() != ctx_version_) {
    ctx_cache_ = diiv_.context();
    ctx_version_ = diiv_.version();
  }
  int stmt = table_.touch(ctx_cache_, ev.ref, in);
  const Statement& s = table_.stmt(stmt);

  bool clamped = false;
  if (opts_.clamp_instances != 0 && s.executions > opts_.clamp_instances) {
    clamped_.insert(stmt);
    clamped = true;
  }

  Occurrence occ{stmt, diiv_.coordinates()};

  if (!clamped) {
    // Register-operand dependences.
    switch (in.op) {
      case ir::Op::kConst:
      case ir::Op::kFConst:
        break;
      case ir::Op::kBr:
        break;
      case ir::Op::kCall:
        // Arguments are pass-through (see on_call); the call itself reads
        // nothing.
        break;
      case ir::Op::kRet:
        // Return-value plumbing is pass-through as well.
        break;
      case ir::Op::kLoad:
      case ir::Op::kBrCond:
      case ir::Op::kMov:
      case ir::Op::kI2F:
      case ir::Op::kF2I:
      case ir::Op::kAddI:
      case ir::Op::kMulI:
        reg_dep(frame, in.a, occ, 0);
        break;
      case ir::Op::kStore:
        reg_dep(frame, in.a, occ, 0);
        reg_dep(frame, in.b, occ, 1);
        break;
      default:  // all two-operand arithmetic/compares
        reg_dep(frame, in.a, occ, 0);
        reg_dep(frame, in.b, occ, 1);
        break;
    }

    // Memory dependences through shadow memory.
    if (in.op == ir::Op::kLoad) {
      if (const Occurrence* w = shadow_.read(ev.address)) {
        ++deps_emitted_;
        sink_->on_dependence(DepKind::kMemFlow, *w, occ, 0);
      }
      if (opts_.track_anti_output) last_reader_[ev.address] = occ;
    } else if (in.op == ir::Op::kStore) {
      if (opts_.track_anti_output) {
        if (const Occurrence* w = shadow_.read(ev.address)) {
          ++deps_emitted_;
          sink_->on_dependence(DepKind::kOutput, *w, occ, 0);
        }
        auto it = last_reader_.find(ev.address);
        if (it != last_reader_.end()) {
          ++deps_emitted_;
          sink_->on_dependence(DepKind::kAnti, it->second, occ, 0);
        }
      }
      shadow_.write(ev.address, occ);
    }

    sink_->on_instruction(s, occ, ev.has_result, ev.result,
                          ir::op_is_memory(in.op), ev.address);
  }

  // Producer bookkeeping (always, even when clamped — later instances
  // still need correct producers).
  if (in.op == ir::Op::kRet) {
    if (in.a != ir::kNoReg)
      pending_ret_ = frame.regs[static_cast<std::size_t>(in.a)];
    else
      pending_ret_.reset();
  } else if (in.op != ir::Op::kCall && in.op != ir::Op::kStore &&
             in.op != ir::Op::kBr && in.op != ir::Op::kBrCond &&
             in.dst != ir::kNoReg) {
    frame.regs[static_cast<std::size_t>(in.dst)] = occ;
  }
}

}  // namespace pp::ddg
