#include "ddg/ddg_builder.hpp"

namespace pp::ddg {

const char* dep_kind_name(DepKind k) {
  switch (k) {
    case DepKind::kRegFlow: return "reg-flow";
    case DepKind::kMemFlow: return "mem-flow";
    case DepKind::kAnti: return "anti";
    case DepKind::kOutput: return "output";
  }
  return "?";
}

DdgBuilder::DdgBuilder(const ir::Module& m, const cfg::ControlStructure& cs,
                       DdgSink* sink, DdgOptions opts)
    : module_(m),
      lem_(cs, [this](const cfg::LoopEvent& ev) { diiv_.apply(ev); }),
      sink_(sink),
      opts_(opts) {}

void DdgBuilder::on_local_jump(int func, int dst_bb) {
  if (depth_ == 0) {
    // First event of the run: materialize the entry frame.
    const ir::Function& f = module_.functions[static_cast<std::size_t>(func)];
    frames_.emplace_back();
    frames_.back().shadow.reset(static_cast<std::size_t>(f.num_regs));
    frames_.back().ret_dst = ir::kNoReg;
    depth_ = 1;
  }
  lem_.on_jump(func, dst_bb);
}

void DdgBuilder::on_call(vm::CodeRef callsite, int callee) {
  const ir::Function& cf = module_.functions[static_cast<std::size_t>(callee)];
  const ir::Instr& in = module_.functions[static_cast<std::size_t>(callsite.func)]
                            .blocks[static_cast<std::size_t>(callsite.block)]
                            .instrs[static_cast<std::size_t>(callsite.instr)];
  if (depth_ == frames_.size()) frames_.emplace_back();
  FrameCtl& nf = frames_[depth_];
  nf.shadow.reset(static_cast<std::size_t>(cf.num_regs));
  nf.ret_dst = in.dst;
  // Argument pass-through: the callee's parameter registers inherit the
  // caller's producers, so calling-convention moves do not create DDG
  // nodes (the dependence materializes at first real use).
  const ShadowFrame& caller = frames_[depth_ - 1].shadow;
  for (std::size_t i = 0; i < in.args.size(); ++i)
    nf.shadow.regs[i] = caller.regs[static_cast<std::size_t>(in.args[i])];
  ++depth_;
  lem_.on_call(callsite.func, callee, 0);
}

void DdgBuilder::on_return(int callee, vm::CodeRef into) {
  PP_CHECK(depth_ > 1, "DDG return underflow");
  ir::Reg dst = frames_[depth_ - 1].ret_dst;
  --depth_;
  if (dst != ir::kNoReg && pending_ret_.valid())
    frames_[depth_ - 1].shadow.regs[static_cast<std::size_t>(dst)] =
        pending_ret_;
  pending_ret_ = Occurrence{};
  lem_.on_return(callee, into.func, into.block);
}

void DdgBuilder::reg_dep(const ShadowFrame& frame, ir::Reg r,
                         const Occurrence& dst,
                         std::span<const i64> dst_coords, int slot) {
  if (r == ir::kNoReg) return;
  const Occurrence& prod = frame.regs[static_cast<std::size_t>(r)];
  if (!prod.valid()) return;  // value predates profiling (e.g. entry args)
  ++deps_emitted_;
  sink_->on_dependence(DepKind::kRegFlow, prod.stmt, pool_.get(prod.coords),
                       dst.stmt, dst_coords, slot);
}

bool DdgBuilder::stmt_skipped(int stmt, const Statement& s) {
  if (opts_.selective == nullptr || opts_.track_anti_output) return false;
  const std::size_t i = static_cast<std::size_t>(stmt);
  if (i >= skip_cache_.size()) skip_cache_.resize(i + 1, -1);
  if (skip_cache_[i] < 0) {
    skip_cache_[i] = opts_.selective->skip(s.code.func, s.code.block,
                                           s.code.instr)
                         ? 1
                         : 0;
  }
  return skip_cache_[i] != 0;
}

void DdgBuilder::materialize_skipped_pages() {
  for (const i64 a : skipped_store_addrs_) shadow_.touch(a);
  skipped_store_addrs_.clear();
}

void DdgBuilder::mem_dep(DepKind kind, const Occurrence& src,
                         const Occurrence& dst,
                         std::span<const i64> dst_coords) {
  ++deps_emitted_;
  sink_->on_dependence(kind, src.stmt, pool_.get(src.coords), dst.stmt,
                       dst_coords, 0);
}

void DdgBuilder::on_instr(const vm::InstrEvent& ev) {
  const ir::Instr& in = *ev.instr;
  PP_CHECK(depth_ > 0, "instruction with no frame");
  ShadowFrame& frame = frames_[depth_ - 1].shadow;

  if (diiv_.version() != ctx_version_) {
    diiv_.context_into(ctx_cache_);
    ctx_id_ = table_.intern_context(ctx_cache_);
    diiv_.coordinates_into(coord_scratch_);
    coord_cache_ = pool_.intern(coord_scratch_);
    ctx_version_ = diiv_.version();
  }
  int stmt = table_.touch(ctx_id_, ev.ref, in);
  const Statement& s = table_.stmt(stmt);

  // Budget checks on the hot path. Cheap counters (shadow pages, pool
  // words) every event; the wall clock — a syscall-backed read — every
  // 8192 events. Exhaustion is one-way and degrades exactly like clamping:
  // emission stops, shadow/producer state stays current.
  ++events_;
  if (opts_.budget != nullptr && !budget_exhausted_) {
    const char* why = nullptr;
    if (opts_.budget->shadow_exceeded(shadow_.pages_live()))
      why = "shadow-page budget exhausted";
    else if (opts_.budget->pool_exceeded(pool_.size_words()))
      why = "coordinate-pool budget exhausted";
    else if ((events_ & 8191) == 0 && opts_.budget->wall_exceeded())
      why = "wall-clock budget exhausted";
    if (why != nullptr) {
      budget_exhausted_ = true;
      if (opts_.diag != nullptr)
        opts_.diag->warn(support::Stage::kDdg,
                         std::string(why) +
                             " — degrading subsequent statements to "
                             "over-approximation");
    }
  }

  bool clamped = false;
  if (opts_.clamp_instances != 0 && s.executions > opts_.clamp_instances) {
    if (s.executions == opts_.clamp_instances + 1) clamped_.insert(stmt);
    clamped = true;
  }
  if (budget_exhausted_) {
    degraded_.insert(stmt);
    clamped = true;
  }

  Occurrence occ{stmt, coord_cache_};
  std::span<const i64> coords = pool_.get(coord_cache_);

  if (!clamped) {
    // Register-operand dependences.
    switch (in.op) {
      case ir::Op::kConst:
      case ir::Op::kFConst:
        break;
      case ir::Op::kBr:
        break;
      case ir::Op::kCall:
        // Arguments are pass-through (see on_call); the call itself reads
        // nothing.
        break;
      case ir::Op::kRet:
        // Return-value plumbing is pass-through as well.
        break;
      case ir::Op::kLoad:
      case ir::Op::kBrCond:
      case ir::Op::kMov:
      case ir::Op::kI2F:
      case ir::Op::kF2I:
      case ir::Op::kAddI:
      case ir::Op::kMulI:
        reg_dep(frame, in.a, occ, coords, 0);
        break;
      case ir::Op::kStore:
        reg_dep(frame, in.a, occ, coords, 0);
        reg_dep(frame, in.b, occ, coords, 1);
        break;
      default:  // all two-operand arithmetic/compares
        reg_dep(frame, in.a, occ, coords, 0);
        reg_dep(frame, in.b, occ, coords, 1);
        break;
    }

    sink_->on_instruction(s, coords, ev.has_result, ev.result,
                          ir::op_is_memory(in.op), ev.address);
  }

  // Memory dependences through shadow memory. Shadow state is updated
  // even when clamped — a skipped update would leave a stale last-writer
  // (or a stale last-reader) and misattribute every later dependence on
  // this word. Only the *emission* is gated on !clamped.
  if (in.op == ir::Op::kLoad) {
    PP_CHECK((ev.address & 7) == 0, "unaligned VM load address");
    if (opts_.track_anti_output) {
      ShadowMemory::Record& r = shadow_.touch(ev.address);
      if (!clamped && r.writer.valid()) mem_dep(DepKind::kMemFlow, r.writer, occ, coords);
      r.reader = occ;
    } else if (stmt_skipped(stmt, s)) {
      // Proven dependence-free: no store in the run can have written this
      // word, so the lookup could never find a writer.
      ++mem_skipped_;
    } else if (!clamped) {
      if (const Occurrence* w = shadow_.read(ev.address))
        mem_dep(DepKind::kMemFlow, *w, occ, coords);
    }
  } else if (in.op == ir::Op::kStore) {
    PP_CHECK((ev.address & 7) == 0, "unaligned VM store address");
    if (stmt_skipped(stmt, s)) {
      // Proven dependence-free: no load in the run ever consults this
      // word's record, so the writer update is unobservable. Keep only the
      // address — materialize_skipped_pages() reconstructs pages_live.
      skipped_store_addrs_.push_back(ev.address);
      ++mem_skipped_;
    } else {
      ShadowMemory::Record& r = shadow_.touch(ev.address);
      if (!clamped && opts_.track_anti_output) {
        if (r.writer.valid()) mem_dep(DepKind::kOutput, r.writer, occ, coords);
        if (r.reader.valid()) mem_dep(DepKind::kAnti, r.reader, occ, coords);
      }
      r.writer = occ;
      // The store kills the pending read: the next store to this word must
      // not report an anti dependence from a reader that preceded this one.
      r.reader = Occurrence{};
    }
  }

  // Producer bookkeeping (always, even when clamped — later instances
  // still need correct producers).
  if (in.op == ir::Op::kRet) {
    if (in.a != ir::kNoReg)
      pending_ret_ = frame.regs[static_cast<std::size_t>(in.a)];
    else
      pending_ret_ = Occurrence{};
  } else if (in.op != ir::Op::kCall && in.op != ir::Op::kStore &&
             in.op != ir::Op::kBr && in.op != ir::Op::kBrCond &&
             in.dst != ir::kNoReg) {
    frame.regs[static_cast<std::size_t>(in.dst)] = occ;
  }
}

}  // namespace pp::ddg
