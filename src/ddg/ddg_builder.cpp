#include "ddg/ddg_builder.hpp"

#include <algorithm>

namespace pp::ddg {

const char* dep_kind_name(DepKind k) {
  switch (k) {
    case DepKind::kRegFlow: return "reg-flow";
    case DepKind::kMemFlow: return "mem-flow";
    case DepKind::kAnti: return "anti";
    case DepKind::kOutput: return "output";
  }
  return "?";
}

namespace {

inline i64 wadd(i64 a, i64 b) {
  return static_cast<i64>(static_cast<u64>(a) + static_cast<u64>(b));
}

void advance(std::vector<i64>& v, std::span<const i64> stride) {
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = wadd(v[i], stride[i]);
}

}  // namespace

void DdgSink::on_instruction_run(const InstrRun& r) {
  std::vector<i64> coords(r.coords.begin(), r.coords.end());
  i64 value = r.value;
  i64 address = r.address;
  for (u64 t = 0; t < r.n; ++t) {
    if (r.has_value && !r.value_affine) value = r.values[t];
    if (r.has_address && !r.address_affine) address = r.addresses[t];
    on_instruction(*r.stmt, coords, r.has_value, value, r.has_address,
                   address);
    advance(coords, r.coord_stride);
    value = wadd(value, r.value_stride);
    address = wadd(address, r.address_stride);
  }
}

void DdgSink::on_dependence_run(const DepRun& r) {
  std::vector<i64> src(r.src_coords.begin(), r.src_coords.end());
  std::vector<i64> dst(r.dst_coords.begin(), r.dst_coords.end());
  for (u64 t = 0; t < r.n; ++t) {
    on_dependence(r.kind, r.src_stmt, src, r.dst_stmt, dst, r.slot);
    advance(src, r.src_stride);
    advance(dst, r.dst_stride);
  }
}

DdgBuilder::DdgBuilder(const ir::Module& m, const cfg::ControlStructure& cs,
                       DdgSink* sink, DdgOptions opts)
    : module_(m),
      cs_(cs),
      lem_(cs,
           [this](const cfg::LoopEvent& ev) {
             diiv_.apply(ev);
             if (pc_ != nullptr) tee(ev);
           }),
      sink_(sink),
      opts_(opts) {
  // Compaction replays whole runs in bulk, which is only transparent when
  // no per-event budget check could have tripped mid-run. Anti/output
  // tracking reads shadow state per load, which bulk store replay would
  // reorder — the reference path handles it instead.
  const support::RunBudget* b = opts_.budget;
  const bool budget_ok = b == nullptr || (b->wall_ms == 0 &&
                                          b->shadow_pages == 0 &&
                                          b->coord_pool_words == 0);
  if (opts_.path_compaction && !opts_.track_anti_output && budget_ok) {
    vm::PathHost& host = *this;  // private base: convert in member scope
    pc_ = std::make_unique<vm::PathCache>(host);
  }
}

void DdgBuilder::tee(const cfg::LoopEvent& ev) {
  using K = cfg::LoopEvent::Kind;
  if (pc_->armed()) {
    // While a run is armed the only structural events that can reach the
    // loop-event machine are the compressed back-edge (kIterate) and
    // intra-path blocks — everything else mismatches the template in
    // consume()/consume_jump() and disarms first.
    PP_CHECK(ev.kind == K::kIterate || ev.kind == K::kBlock,
             "path cache armed across a structural loop event");
    return;
  }
  switch (ev.kind) {
    case K::kEnter:
      pc_->loop_enter(ev.func, ev.loop, ev.block);
      break;
    case K::kIterate:
      pc_->loop_iterate(ev.func, ev.loop);
      break;
    case K::kExit:
      pc_->loop_exit();
      break;
    case K::kBlock:
      pc_->block_event(ev.func, ev.block);
      break;
    default:  // calls, returns, recursive-component events
      pc_->impure();
      break;
  }
}

bool DdgBuilder::path_loop_usable(int func, int loop) {
  return loop_paths(func, loop).usable;
}

bool DdgBuilder::path_edge_increment(int func, int loop, int from, int to,
                                     u64* inc) {
  const cfg::LoopPaths& p = loop_paths(func, loop);
  return p.usable && p.increment(from, to, inc);
}

const cfg::LoopPaths& DdgBuilder::loop_paths(int func, int loop) {
  auto key = std::make_pair(func, loop);
  auto it = paths_.find(key);
  if (it != paths_.end()) return it->second;
  cfg::LoopPaths p;
  auto fit = cs_.forests.find(func);
  if (fit != cs_.forests.end())
    p = cfg::number_loop_paths(
        module_.functions[static_cast<std::size_t>(func)], fit->second, loop);
  return paths_.emplace(key, std::move(p)).first->second;
}

void DdgBuilder::on_local_jump(int func, int dst_bb) {
  if (depth_ == 0) {
    // First event of the run: materialize the entry frame.
    const ir::Function& f = module_.functions[static_cast<std::size_t>(func)];
    frames_.emplace_back();
    frames_.back().shadow.reset(static_cast<std::size_t>(f.num_regs));
    frames_.back().ret_dst = ir::kNoReg;
    depth_ = 1;
  }
  // Armed consumption first: a mismatching jump must flush the run before
  // the loop-event machine (and the IIV state) advances past it.
  if (pc_ != nullptr && pc_->armed()) pc_->consume_jump(func, dst_bb);
  lem_.on_jump(func, dst_bb);
}

void DdgBuilder::on_call(vm::CodeRef callsite, int callee) {
  const ir::Function& cf = module_.functions[static_cast<std::size_t>(callee)];
  const ir::Instr& in = module_.functions[static_cast<std::size_t>(callsite.func)]
                            .blocks[static_cast<std::size_t>(callsite.block)]
                            .instrs[static_cast<std::size_t>(callsite.instr)];
  if (depth_ == frames_.size()) frames_.emplace_back();
  FrameCtl& nf = frames_[depth_];
  nf.shadow.reset(static_cast<std::size_t>(cf.num_regs));
  nf.ret_dst = in.dst;
  // Argument pass-through: the callee's parameter registers inherit the
  // caller's producers, so calling-convention moves do not create DDG
  // nodes (the dependence materializes at first real use).
  const ShadowFrame& caller = frames_[depth_ - 1].shadow;
  for (std::size_t i = 0; i < in.args.size(); ++i)
    nf.shadow.regs[i] = caller.regs[static_cast<std::size_t>(in.args[i])];
  ++depth_;
  lem_.on_call(callsite.func, callee, 0);
}

void DdgBuilder::on_return(int callee, vm::CodeRef into) {
  PP_CHECK(depth_ > 1, "DDG return underflow");
  ir::Reg dst = frames_[depth_ - 1].ret_dst;
  --depth_;
  if (dst != ir::kNoReg && pending_ret_.valid())
    frames_[depth_ - 1].shadow.regs[static_cast<std::size_t>(dst)] =
        pending_ret_;
  pending_ret_ = Occurrence{};
  lem_.on_return(callee, into.func, into.block);
}

void DdgBuilder::reg_dep(const ShadowFrame& frame, ir::Reg r,
                         const Occurrence& dst,
                         std::span<const i64> dst_coords, int slot) {
  if (r == ir::kNoReg) return;
  const Occurrence& prod = frame.regs[static_cast<std::size_t>(r)];
  if (!prod.valid()) return;  // value predates profiling (e.g. entry args)
  ++deps_emitted_;
  sink_->on_dependence(DepKind::kRegFlow, prod.stmt, pool_.get(prod.coords),
                       dst.stmt, dst_coords, slot);
}

bool DdgBuilder::stmt_skipped(int stmt, const Statement& s) {
  if (opts_.selective == nullptr || opts_.track_anti_output) return false;
  const std::size_t i = static_cast<std::size_t>(stmt);
  if (i >= skip_cache_.size()) skip_cache_.resize(i + 1, -1);
  if (skip_cache_[i] < 0) {
    skip_cache_[i] = opts_.selective->skip(s.code.func, s.code.block,
                                           s.code.instr)
                         ? 1
                         : 0;
  }
  return skip_cache_[i] != 0;
}

void DdgBuilder::materialize_skipped_pages() {
  for (const i64 a : skipped_store_addrs_) shadow_.touch(a);
  skipped_store_addrs_.clear();
}

void DdgBuilder::mem_dep(DepKind kind, const Occurrence& src,
                         const Occurrence& dst,
                         std::span<const i64> dst_coords) {
  ++deps_emitted_;
  sink_->on_dependence(kind, src.stmt, pool_.get(src.coords), dst.stmt,
                       dst_coords, 0);
}

void DdgBuilder::on_instr(const vm::InstrEvent& ev) {
  // Armed fast path: a matching event is swallowed into the compressed
  // run. On a mismatch, consume() bulk-replays the run first and the
  // event falls through to the reference path below.
  if (pc_ != nullptr && pc_->armed() && pc_->consume(ev)) return;

  const ir::Instr& in = *ev.instr;
  PP_CHECK(depth_ > 0, "instruction with no frame");
  ShadowFrame& frame = frames_[depth_ - 1].shadow;

  if (diiv_.version() != ctx_version_) {
    diiv_.context_into(ctx_cache_);
    ctx_id_ = table_.intern_context(ctx_cache_);
    diiv_.coordinates_into(coord_scratch_);
    coord_cache_ = pool_.intern(coord_scratch_);
    ctx_version_ = diiv_.version();
  }
  int stmt = table_.touch(ctx_id_, ev.ref, in);
  const Statement& s = table_.stmt(stmt);
  if (pc_ != nullptr) pc_->observe_instr(ev, stmt);

  // Budget checks on the hot path. Cheap counters (shadow pages, pool
  // words) every event; the wall clock — a syscall-backed read — every
  // 8192 events. Exhaustion is one-way and degrades exactly like clamping:
  // emission stops, shadow/producer state stays current.
  ++events_;
  if (opts_.budget != nullptr && !budget_exhausted_) {
    const char* why = nullptr;
    if (opts_.budget->shadow_exceeded(shadow_.pages_live()))
      why = "shadow-page budget exhausted";
    else if (opts_.budget->pool_exceeded(pool_.size_words()))
      why = "coordinate-pool budget exhausted";
    else if ((events_ & 8191) == 0 && opts_.budget->wall_exceeded())
      why = "wall-clock budget exhausted";
    if (why != nullptr) {
      budget_exhausted_ = true;
      if (opts_.diag != nullptr)
        opts_.diag->warn(support::Stage::kDdg,
                         std::string(why) +
                             " — degrading subsequent statements to "
                             "over-approximation");
    }
  }

  bool clamped = false;
  if (opts_.clamp_instances != 0 && s.executions > opts_.clamp_instances) {
    if (s.executions == opts_.clamp_instances + 1) clamped_.insert(stmt);
    clamped = true;
  }
  if (budget_exhausted_) {
    degraded_.insert(stmt);
    clamped = true;
  }

  Occurrence occ{stmt, coord_cache_};
  std::span<const i64> coords = pool_.get(coord_cache_);

  if (!clamped) {
    // Register-operand dependences.
    switch (in.op) {
      case ir::Op::kConst:
      case ir::Op::kFConst:
        break;
      case ir::Op::kBr:
        break;
      case ir::Op::kCall:
        // Arguments are pass-through (see on_call); the call itself reads
        // nothing.
        break;
      case ir::Op::kRet:
        // Return-value plumbing is pass-through as well.
        break;
      case ir::Op::kLoad:
      case ir::Op::kBrCond:
      case ir::Op::kMov:
      case ir::Op::kI2F:
      case ir::Op::kF2I:
      case ir::Op::kAddI:
      case ir::Op::kMulI:
        reg_dep(frame, in.a, occ, coords, 0);
        break;
      case ir::Op::kStore:
        reg_dep(frame, in.a, occ, coords, 0);
        reg_dep(frame, in.b, occ, coords, 1);
        break;
      default:  // all two-operand arithmetic/compares
        reg_dep(frame, in.a, occ, coords, 0);
        reg_dep(frame, in.b, occ, coords, 1);
        break;
    }

    sink_->on_instruction(s, coords, ev.has_result, ev.result,
                          ir::op_is_memory(in.op), ev.address);
  }

  // Memory dependences through shadow memory. Shadow state is updated
  // even when clamped — a skipped update would leave a stale last-writer
  // (or a stale last-reader) and misattribute every later dependence on
  // this word. Only the *emission* is gated on !clamped.
  if (in.op == ir::Op::kLoad) {
    PP_CHECK((ev.address & 7) == 0, "unaligned VM load address");
    if (opts_.track_anti_output) {
      ShadowMemory::Record& r = shadow_.touch(ev.address);
      if (!clamped && r.writer.valid()) mem_dep(DepKind::kMemFlow, r.writer, occ, coords);
      r.reader = occ;
    } else if (stmt_skipped(stmt, s)) {
      // Proven dependence-free: no store in the run can have written this
      // word, so the lookup could never find a writer.
      ++mem_skipped_;
    } else if (!clamped) {
      if (const Occurrence* w = shadow_.read(ev.address))
        mem_dep(DepKind::kMemFlow, *w, occ, coords);
    }
  } else if (in.op == ir::Op::kStore) {
    PP_CHECK((ev.address & 7) == 0, "unaligned VM store address");
    if (stmt_skipped(stmt, s)) {
      // Proven dependence-free: no load in the run ever consults this
      // word's record, so the writer update is unobservable. Keep only the
      // address — materialize_skipped_pages() reconstructs pages_live.
      skipped_store_addrs_.push_back(ev.address);
      ++mem_skipped_;
    } else {
      ShadowMemory::Record& r = shadow_.touch(ev.address);
      if (!clamped && opts_.track_anti_output) {
        if (r.writer.valid()) mem_dep(DepKind::kOutput, r.writer, occ, coords);
        if (r.reader.valid()) mem_dep(DepKind::kAnti, r.reader, occ, coords);
      }
      r.writer = occ;
      // The store kills the pending read: the next store to this word must
      // not report an anti dependence from a reader that preceded this one.
      r.reader = Occurrence{};
    }
  }

  // Producer bookkeeping (always, even when clamped — later instances
  // still need correct producers).
  if (in.op == ir::Op::kRet) {
    if (in.a != ir::kNoReg)
      pending_ret_ = frame.regs[static_cast<std::size_t>(in.a)];
    else
      pending_ret_ = Occurrence{};
  } else if (in.op != ir::Op::kCall && in.op != ir::Op::kStore &&
             in.op != ir::Op::kBr && in.op != ir::Op::kBrCond &&
             in.dst != ir::kNoReg) {
    frame.regs[static_cast<std::size_t>(in.dst)] = occ;
  }
}

namespace {

/// True when the slot's instruction updates a register producer (mirrors
/// the bookkeeping at the end of on_instr; kCall/kRet never appear in
/// templates).
bool slot_writes_reg(const vm::PathSlot& sl) {
  const ir::Op op = sl.instr->op;
  return op != ir::Op::kCall && op != ir::Op::kStore && op != ir::Op::kBr &&
         op != ir::Op::kBrCond && op != ir::Op::kRet &&
         sl.instr->dst != ir::kNoReg;
}

}  // namespace

void DdgBuilder::expand_path_run(const vm::PathTemplate& tp,
                                 const vm::PathRun& run) {
  const u64 T = run.trips;
  const bool partial = run.pos > 0;
  if (T == 0 && !partial) return;

  // Coordinates. The IIV state stayed live through the run (every jump is
  // forwarded to the loop-event machine), so the current coordinate
  // vector belongs to the partial iteration; trip t rolls the innermost
  // coordinate back by (T - t).
  diiv_.coordinates_into(x_base_);
  PP_CHECK(!x_base_.empty(), "compressed run outside any loop");
  const std::size_t dim = x_base_.size();
  x_base_.back() -= static_cast<i64>(T);
  x_stride_.assign(dim, 0);
  x_stride_.back() = 1;
  x_prev_ = x_base_;
  x_prev_.back() -= 1;  // the recording iteration: carried-dep sources

  // Intern one coordinate vector per iteration, in iteration order — the
  // exact append sequence the reference path produces (it interns once at
  // each iteration's first instruction; later re-interns of the same
  // vector dedupe against the pool's last entry).
  const u64 n_iter = T + (partial ? 1 : 0);
  x_refs_.resize(static_cast<std::size_t>(n_iter));
  x_scratch_ = x_base_;
  for (u64 t = 0; t < n_iter; ++t) {
    x_refs_[static_cast<std::size_t>(t)] = pool_.intern(x_scratch_);
    ++x_scratch_.back();
  }

  events_ += T * tp.instr_slots + run.prefix_instr_slots;

  PP_CHECK(depth_ > 0, "compressed run with no frame");
  ShadowFrame& frame = frames_[depth_ - 1].shadow;
  const ir::Function& fn =
      module_.functions[static_cast<std::size_t>(tp.func)];

  // Register-producer classification. A read resolves, in order, to the
  // last template slot writing the register earlier in the same iteration
  // (intra), else to the last writer anywhere in the path (carried from
  // the previous iteration), else to the pre-run producer snapshot
  // (loop-invariant). The snapshot is exact for carried reads of trip 0
  // too: the iteration that armed the run executed this same path through
  // the reference machinery immediately before.
  fw_scratch_.assign(static_cast<std::size_t>(fn.num_regs), -1);
  run_scratch_.assign(static_cast<std::size_t>(fn.num_regs), -1);
  std::vector<int>& final_writer = fw_scratch_;
  std::vector<int>& running = run_scratch_;
  for (std::size_t i = 0; i < tp.slots.size(); ++i) {
    const vm::PathSlot& sl = tp.slots[i];
    if (!sl.is_jump && slot_writes_reg(sl))
      final_writer[static_cast<std::size_t>(sl.instr->dst)] =
          static_cast<int>(i);
  }

  auto reg_dep_run = [&](const vm::PathSlot& sl, ir::Reg r, int opslot,
                         u64 n_emit) {
    if (r == ir::kNoReg || n_emit == 0) return;
    DdgSink::DepRun d;
    d.kind = DepKind::kRegFlow;
    d.dst_stmt = sl.stmt;
    d.slot = opslot;
    d.n = n_emit;
    d.dst_coords = x_base_;
    d.dst_stride = x_stride_;
    const int intra = running[static_cast<std::size_t>(r)];
    const int carried = final_writer[static_cast<std::size_t>(r)];
    if (intra >= 0) {
      d.src_stmt = tp.slots[static_cast<std::size_t>(intra)].stmt;
      d.src_coords = x_base_;
      d.src_stride = x_stride_;
    } else if (carried >= 0) {
      d.src_stmt = tp.slots[static_cast<std::size_t>(carried)].stmt;
      d.src_coords = x_prev_;
      d.src_stride = x_stride_;
    } else {
      const Occurrence& snap = frame.regs[static_cast<std::size_t>(r)];
      if (!snap.valid()) return;  // value predates profiling
      d.src_stmt = snap.stmt;
      d.src_coords = pool_.get(snap.coords);
      if (x_zero_.size() < d.src_coords.size())
        x_zero_.assign(d.src_coords.size(), 0);
      d.src_stride =
          std::span<const i64>(x_zero_.data(), d.src_coords.size());
    }
    deps_emitted_ += n_emit;
    sink_->on_dependence_run(d);
  };

  // Instance streams + register dependences, one bulk call per stream.
  slot_n_.assign(tp.slots.size(), 0);
  slot_emit_.assign(tp.slots.size(), 0);
  std::vector<u64>& slot_n = slot_n_;
  std::vector<u64>& slot_emit = slot_emit_;
  const u64 clamp = opts_.clamp_instances;
  for (std::size_t i = 0; i < tp.slots.size(); ++i) {
    const vm::PathSlot& sl = tp.slots[i];
    if (sl.is_jump) continue;
    const u64 n_i = T + (i < run.pos ? 1 : 0);
    slot_n[i] = n_i;
    if (n_i == 0) continue;
    Statement& st = table_.stmt_mut(sl.stmt);
    const u64 exec0 = st.executions;
    st.executions += n_i;
    u64 emit = n_i;
    if (clamp != 0) {
      emit = exec0 >= clamp ? 0 : std::min<u64>(n_i, clamp - exec0);
      if (exec0 <= clamp && exec0 + n_i >= clamp + 1)
        clamped_.insert(sl.stmt);
    }
    slot_emit[i] = emit;

    const ir::Instr& in = *sl.instr;
    switch (in.op) {
      case ir::Op::kConst:
      case ir::Op::kFConst:
      case ir::Op::kBr:
        break;
      case ir::Op::kLoad:
      case ir::Op::kBrCond:
      case ir::Op::kMov:
      case ir::Op::kI2F:
      case ir::Op::kF2I:
      case ir::Op::kAddI:
      case ir::Op::kMulI:
        reg_dep_run(sl, in.a, 0, emit);
        break;
      case ir::Op::kStore:
        reg_dep_run(sl, in.a, 0, emit);
        reg_dep_run(sl, in.b, 1, emit);
        break;
      default:
        reg_dep_run(sl, in.a, 0, emit);
        reg_dep_run(sl, in.b, 1, emit);
        break;
    }

    if (emit > 0) {
      DdgSink::InstrRun r;
      r.stmt = &st;
      r.n = emit;
      r.coords = x_base_;
      r.coord_stride = x_stride_;
      r.has_value = sl.has_result;
      if (sl.has_result) {
        if (sl.vclass == vm::PathValClass::kAffine) {
          r.value_affine = true;
          r.value = static_cast<i64>(static_cast<u64>(sl.vbase) +
                                     static_cast<u64>(sl.vstride));
          r.value_stride = sl.vstride;
        } else {
          r.values = run.collect[static_cast<std::size_t>(sl.collect_v)];
        }
      }
      r.has_address = sl.is_mem;
      if (sl.is_mem) {
        if (sl.aclass == vm::PathValClass::kAffine) {
          r.address_affine = true;
          r.address = static_cast<i64>(static_cast<u64>(sl.abase) +
                                       static_cast<u64>(sl.astride));
          r.address_stride = sl.astride;
        } else {
          r.addresses = run.collect[static_cast<std::size_t>(sl.collect_a)];
        }
      }
      sink_->on_instruction_run(r);
    }

    if (slot_writes_reg(sl))
      running[static_cast<std::size_t>(in.dst)] = static_cast<int>(i);
  }

  // Memory phase. Shadow state changes in exact instance order unless the
  // slots are provably order-independent: all addresses affine and the
  // word intervals of distinct slots pairwise disjoint — then each slot
  // replays in one strided page-walk. Selective-plan skips never touch
  // shadow and are handled separately.
  struct MemRef {
    std::size_t i;
    int stmt;
    u64 n, emit;
    bool store;
    bool affine;
    i64 base = 0, stride = 0;       // affine
    const std::vector<i64>* addrs;  // collected
    i64 lo = 0, hi = 0;             // byte-address interval (affine)
  };
  std::vector<MemRef> mem;
  bool batched_ok = true;
  for (std::size_t i = 0; i < tp.slots.size(); ++i) {
    const vm::PathSlot& sl = tp.slots[i];
    if (sl.is_jump || !sl.is_mem || slot_n[i] == 0) continue;
    MemRef m;
    m.i = i;
    m.stmt = sl.stmt;
    m.n = slot_n[i];
    m.emit = slot_emit[i];
    m.store = sl.instr->op == ir::Op::kStore;
    m.affine = sl.aclass == vm::PathValClass::kAffine;
    if (m.affine) {
      m.base = static_cast<i64>(static_cast<u64>(sl.abase) +
                                static_cast<u64>(sl.astride));
      m.stride = sl.astride;
      PP_CHECK((m.base & 7) == 0 && (m.stride & 7) == 0,
               "unaligned compressed-run access");
      const i64 last = m.base + m.stride * static_cast<i64>(m.n - 1);
      m.lo = std::min(m.base, last);
      m.hi = std::max(m.base, last);
      m.addrs = nullptr;
    } else {
      m.addrs = &run.collect[static_cast<std::size_t>(sl.collect_a)];
      batched_ok = false;
    }
    const Statement& st = table_.stmt(sl.stmt);
    if (stmt_skipped(sl.stmt, st)) {
      // Mirror the reference path exactly: skipped loads only count;
      // skipped stores also park their addresses for page realization.
      if (m.store) {
        if (m.affine) {
          i64 a = m.base;
          for (u64 t = 0; t < m.n; ++t, a += m.stride)
            skipped_store_addrs_.push_back(a);
        } else {
          for (u64 t = 0; t < m.n; ++t)
            skipped_store_addrs_.push_back((*m.addrs)[t]);
        }
      }
      mem_skipped_ += m.n;
      continue;
    }
    mem.push_back(m);
  }
  if (batched_ok) {
    for (std::size_t a = 0; a < mem.size() && batched_ok; ++a)
      for (std::size_t b = a + 1; b < mem.size(); ++b)
        if (mem[a].lo <= mem[b].hi && mem[b].lo <= mem[a].hi) {
          batched_ok = false;
          break;
        }
  }
  if (batched_ok) {
    for (const MemRef& m : mem) {
      if (m.store) {
        shadow_.apply_strided_run(
            m.base, m.stride, m.n, [&](u64 t, ShadowMemory::Record& rec) {
              rec.writer =
                  Occurrence{m.stmt, x_refs_[static_cast<std::size_t>(t)]};
              rec.reader = Occurrence{};
            });
      } else if (m.emit > 0) {
        shadow_.read_strided_run(
            m.base, m.stride, m.emit,
            [&](u64 t, const ShadowMemory::Record* rec) {
              if (rec != nullptr && rec->writer.valid()) {
                const support::CoordRef ref =
                    x_refs_[static_cast<std::size_t>(t)];
                mem_dep(DepKind::kMemFlow, rec->writer,
                        Occurrence{m.stmt, ref}, pool_.get(ref));
              }
            });
      }
    }
  } else {
    // Reference interleaving: instance order across slots is observable
    // (a slot may read words another slot wrote earlier in the run).
    std::vector<i64> cur(mem.size());
    for (std::size_t k = 0; k < mem.size(); ++k)
      cur[k] = mem[k].affine ? mem[k].base : 0;
    for (u64 t = 0; t < n_iter; ++t) {
      for (std::size_t k = 0; k < mem.size(); ++k) {
        MemRef& m = mem[k];
        if (t >= m.n) continue;
        const i64 addr = m.affine ? cur[k] : (*m.addrs)[t];
        PP_CHECK((addr & 7) == 0, "unaligned compressed-run access");
        const support::CoordRef ref = x_refs_[static_cast<std::size_t>(t)];
        if (m.store) {
          ShadowMemory::Record& rec = shadow_.touch(addr);
          rec.writer = Occurrence{m.stmt, ref};
          rec.reader = Occurrence{};
        } else if (t < m.emit) {
          if (const Occurrence* w = shadow_.read(addr))
            mem_dep(DepKind::kMemFlow, *w, Occurrence{m.stmt, ref},
                    pool_.get(ref));
        }
        if (m.affine) cur[k] += m.stride;
      }
    }
  }

  // Final register producers: the temporally-last write of each register.
  // Template order is execution order within one trip, so the last
  // template-order writer is the last write — except when the run ends in
  // a partial prefix: slots before run.pos executed once more, AFTER every
  // full trip, so a writer inside the prefix supersedes any template-later
  // writer outside it (the bailed iteration resumes on the slow path and
  // must see the snapshot it would have had under reference execution).
  for (std::size_t i = 0; i < tp.slots.size(); ++i) {
    const vm::PathSlot& sl = tp.slots[i];
    if (sl.is_jump || slot_n[i] == 0 || !slot_writes_reg(sl)) continue;
    frame.regs[static_cast<std::size_t>(sl.instr->dst)] = Occurrence{
        sl.stmt, x_refs_[static_cast<std::size_t>(slot_n[i] - 1)]};
  }
  for (std::size_t i = 0; i < run.pos; ++i) {
    const vm::PathSlot& sl = tp.slots[i];
    if (sl.is_jump || slot_n[i] == 0 || !slot_writes_reg(sl)) continue;
    frame.regs[static_cast<std::size_t>(sl.instr->dst)] = Occurrence{
        sl.stmt, x_refs_[static_cast<std::size_t>(slot_n[i] - 1)]};
  }
}

}  // namespace pp::ddg
