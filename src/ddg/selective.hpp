// Selective-instrumentation plan: the set of static memory-access sites
// stage 2 may skip without changing ANY observable output. The plan is
// computed by pp::verify::exact (compute_selective_plan) but lives here as
// plain data so the hot DDG layer does not depend on the verifier.
//
// Contract (the reason byte-identity holds by construction): a site is in
// the plan only when it belongs to a dependence-free overlap component —
// every access in the module is reach-known (global base, affine, clean
// block, all coefficient loops with recovered bounds), the component's word
// ranges are disjoint from every other component's, and the exact integer
// test proves every (store, load) pair inside the component independent.
// Skipping such a site therefore removes shadow traffic that could never
// have produced a dependence edge; skipped stores record their addresses so
// the shadow page count is reconstructed at the end of the replay.
#pragma once

#include <set>
#include <string>
#include <utility>
#include <vector>

namespace pp::ddg {

struct SelectivePlan {
  struct FuncPlan {
    /// Skippable (block, instr) sites of this function, sorted.
    std::set<std::pair<int, int>> sites;
  };
  /// Indexed by function id (empty FuncPlan for functions with no sites).
  std::vector<FuncPlan> funcs;
  /// Dependence-free overlap components the sites were drawn from.
  std::size_t groups = 0;
  /// First reason the planner refused to emit any site (one unanalyzable
  /// access poisons the whole address space); empty when a plan exists or
  /// the module simply has no skippable component.
  std::string poison_reason;

  std::size_t total_sites() const {
    std::size_t n = 0;
    for (const FuncPlan& f : funcs) n += f.sites.size();
    return n;
  }

  bool skip(int func, int block, int instr) const {
    if (func < 0 || static_cast<std::size_t>(func) >= funcs.size())
      return false;
    return funcs[static_cast<std::size_t>(func)].sites.count(
               {block, instr}) != 0;
  }
};

}  // namespace pp::ddg
