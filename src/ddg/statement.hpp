// Statement identification for the DDG. A *statement* is a static
// instruction in a specific interprocedural context: the pair
// (ContextKey, CodeRef). All dynamic instances of a statement share the
// context (non-numerical IIV part) and differ only in coordinates — the
// property folding relies on ("folding is performed for each context
// separately", paper §5).
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "iiv/diiv.hpp"
#include "vm/vm.hpp"

namespace pp::ddg {

struct Statement {
  int id = -1;
  iiv::ContextKey context;
  vm::CodeRef code;
  ir::Op op;
  int line = 0;            ///< debug info
  std::size_t depth = 0;   ///< loop depth (# coordinates)
  u64 executions = 0;
  bool is_memory = false;
  bool is_fp = false;
  bool writes_memory = false;
};

/// Interns (context, code) pairs into dense statement ids.
///
/// Contexts are interned separately from statements: hashing a ContextKey
/// walks every element of every part, which is far too expensive to pay
/// per retired instruction. The DDG builder interns the context once per
/// IIV state change (contexts are invariant between loop events) and then
/// touches statements under a cheap (ctx id, CodeRef) integer key.
class StatementTable {
 public:
  /// Intern a context part; stable dense id.
  int intern_context(const iiv::ContextKey& ctx);

  /// Find-or-create under a pre-interned context; bumps the execution
  /// counter. This is the hot-path entry: no ContextKey hashing.
  int touch(int ctx_id, vm::CodeRef code, const ir::Instr& in);

  /// Convenience overload (tests, one-shot callers).
  int touch(const iiv::ContextKey& ctx, vm::CodeRef code, const ir::Instr& in) {
    return touch(intern_context(ctx), code, in);
  }

  const Statement& stmt(int id) const {
    return stmts_[static_cast<std::size_t>(id)];
  }
  /// Mutable access for bulk updates (compressed-run expansion bumps
  /// `executions` once per run instead of once per instance).
  Statement& stmt_mut(int id) { return stmts_[static_cast<std::size_t>(id)]; }
  std::size_t size() const { return stmts_.size(); }
  const std::vector<Statement>& all() const { return stmts_; }

  u64 total_executions() const {
    u64 n = 0;
    for (const auto& s : stmts_) n += s.executions;
    return n;
  }

 private:
  struct Key {
    int ctx_id;
    vm::CodeRef code;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      std::size_t h = static_cast<std::size_t>(k.ctx_id) * 0x165667b19e3779f9ull;
      h ^= static_cast<std::size_t>(k.code.func) * 0x9e3779b97f4a7c15ull;
      h ^= static_cast<std::size_t>(k.code.block) * 0xc2b2ae3d27d4eb4full;
      h ^= static_cast<std::size_t>(k.code.instr + 1) * 0x165667b19e3779f9ull;
      return h;
    }
  };

  std::vector<Statement> stmts_;
  std::vector<iiv::ContextKey> contexts_;  ///< id -> context (copy-safe)
  std::unordered_map<iiv::ContextKey, int, iiv::ContextKeyHash> ctx_index_;
  std::unordered_map<Key, int, KeyHash> index_;
};

}  // namespace pp::ddg
