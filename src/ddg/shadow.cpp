#include "ddg/shadow.hpp"

#include <algorithm>
#include <limits>

namespace pp::ddg {

std::int32_t ShadowMemory::grab_page() {
  if (!free_.empty()) {
    std::int32_t pi = free_.back();
    free_.pop_back();
    Page& p = *pages_[static_cast<std::size_t>(pi)];
    std::fill(std::begin(p.words), std::end(p.words), Record{});
    return pi;
  }
  PP_CHECK(pages_.size() < static_cast<std::size_t>(
                               std::numeric_limits<std::int32_t>::max()),
           "shadow page index overflow");
  pages_.push_back(std::make_unique<Page>());
  return static_cast<std::int32_t>(pages_.size() - 1);
}

std::size_t ShadowMemory::tracked_words() const {
  std::size_t n = 0;
  for (std::int32_t pi : dir_) {
    if (pi < 0) continue;
    const Page& p = *pages_[static_cast<std::size_t>(pi)];
    for (const Record& r : p.words)
      if (r.writer.valid()) ++n;
  }
  return n;
}

void ShadowMemory::clear() {
  for (std::int32_t& pi : dir_) {
    if (pi >= 0) free_.push_back(pi);
    pi = -1;
  }
}

}  // namespace pp::ddg
