#include "ddg/statement.hpp"

namespace pp::ddg {

int StatementTable::touch(const iiv::ContextKey& ctx, vm::CodeRef code,
                          const ir::Instr& in) {
  Key k{ctx, code};
  auto it = index_.find(k);
  if (it != index_.end()) {
    ++stmts_[static_cast<std::size_t>(it->second)].executions;
    return it->second;
  }
  Statement s;
  s.id = static_cast<int>(stmts_.size());
  s.context = ctx;
  s.code = code;
  s.op = in.op;
  s.line = in.line;
  s.depth = ctx.depth();
  s.executions = 1;
  s.is_memory = ir::op_is_memory(in.op);
  s.is_fp = ir::op_is_fp(in.op);
  s.writes_memory = in.op == ir::Op::kStore;
  int id = s.id;
  stmts_.push_back(std::move(s));
  index_.emplace(std::move(k), id);
  return id;
}

}  // namespace pp::ddg
