#include "ddg/statement.hpp"

namespace pp::ddg {

int StatementTable::intern_context(const iiv::ContextKey& ctx) {
  auto it = ctx_index_.find(ctx);
  if (it != ctx_index_.end()) return it->second;
  int id = static_cast<int>(contexts_.size());
  ctx_index_.emplace(ctx, id);
  contexts_.push_back(ctx);
  return id;
}

int StatementTable::touch(int ctx_id, vm::CodeRef code, const ir::Instr& in) {
  Key k{ctx_id, code};
  auto it = index_.find(k);
  if (it != index_.end()) {
    ++stmts_[static_cast<std::size_t>(it->second)].executions;
    return it->second;
  }
  const iiv::ContextKey& ctx = contexts_[static_cast<std::size_t>(ctx_id)];
  Statement s;
  s.id = static_cast<int>(stmts_.size());
  s.context = ctx;
  s.code = code;
  s.op = in.op;
  s.line = in.line;
  s.depth = ctx.depth();
  s.executions = 1;
  s.is_memory = ir::op_is_memory(in.op);
  s.is_fp = ir::op_is_fp(in.op);
  s.writes_memory = in.op == ir::Op::kStore;
  int id = s.id;
  stmts_.push_back(std::move(s));
  index_.emplace(k, id);
  return id;
}

}  // namespace pp::ddg
