// Stage 2 ("Instrumentation II"): builds the dynamic dependence graph.
// Every retired instruction becomes a DDG vertex tagged with its dynamic
// interprocedural iteration vector; every data dependence (register flow,
// memory flow through shadow memory, optionally anti/output) becomes an
// edge between two tagged instances. Vertices and edges are streamed to a
// DdgSink — in the real pipeline that sink is the folding stage, so the
// full graph never materializes (the paper's scalability requirement).
//
// Hot-path design: this observer runs once per retired instruction, so
// its steady state is allocation-free — iteration vectors are interned in
// a CoordPool (one entry per IIV state change, not per event), shadow
// memory is a flat page table keyed by 8-byte word, contexts are interned
// once per loop event, and call frames are pooled. Sinks receive
// coordinates as spans into the pool, valid for the duration of the call.
#pragma once

#include <memory>
#include <set>
#include <span>

#include "cfg/loop_events.hpp"
#include "cfg/path_numbering.hpp"
#include "ddg/selective.hpp"
#include "vm/path_cache.hpp"
#include "ddg/shadow.hpp"
#include "ddg/statement.hpp"
#include "iiv/diiv.hpp"
#include "support/budget.hpp"
#include "support/coord_pool.hpp"

namespace pp::ddg {

enum class DepKind : std::uint8_t {
  kRegFlow,   ///< read-after-write through a register
  kMemFlow,   ///< read-after-write through memory (shadow memory)
  kAnti,      ///< write-after-read through memory
  kOutput,    ///< write-after-write through memory
};

const char* dep_kind_name(DepKind k);

/// Consumer of the DDG event stream (the folding stage, or a test
/// recorder). Coordinate spans point into the builder's CoordPool and are
/// only guaranteed valid for the duration of the callback.
class DdgSink {
 public:
  virtual ~DdgSink() = default;
  /// A dynamic instance of `s` at iteration coordinates `coords`; `value`
  /// is the produced register value (SCEV detection), `address` the
  /// effective address of a load/store (access-function recovery).
  virtual void on_instruction(const Statement& s, std::span<const i64> coords,
                              bool has_value, i64 value, bool has_address,
                              i64 address) = 0;
  /// A dynamic dependence dst <- src between statement instances. `slot`
  /// identifies the consuming operand position (0 = first register operand
  /// / memory, 1 = second register operand), so that an instruction
  /// reading the same producer statement through two operands folds as two
  /// separate affine edges.
  virtual void on_dependence(DepKind kind, int src_stmt,
                             std::span<const i64> src_coords, int dst_stmt,
                             std::span<const i64> dst_coords, int slot) = 0;

  /// `n` consecutive instances of one statement: instance t executes at
  /// coords + coord_stride·t (64-bit wrapping, all spans same length).
  /// Values/addresses are either affine (base + stride·t) or collected
  /// verbatim (`values`/`addresses` hold n entries). Emitted by the trace
  /// compactor; semantically identical to n on_instruction calls in trip
  /// order.
  struct InstrRun {
    const Statement* stmt = nullptr;
    u64 n = 0;
    std::span<const i64> coords;
    std::span<const i64> coord_stride;
    bool has_value = false;
    bool value_affine = false;
    i64 value = 0, value_stride = 0;
    std::span<const i64> values;  ///< when has_value && !value_affine
    bool has_address = false;
    bool address_affine = false;
    i64 address = 0, address_stride = 0;
    std::span<const i64> addresses;  ///< when has_address && !address_affine
  };
  /// `n` consecutive instances of one dependence key; src/dst coordinates
  /// advance independently by their stride vectors per instance.
  /// Semantically identical to n on_dependence calls in trip order.
  struct DepRun {
    DepKind kind{};
    int src_stmt = -1, dst_stmt = -1, slot = 0;
    u64 n = 0;
    std::span<const i64> src_coords;
    std::span<const i64> src_stride;
    std::span<const i64> dst_coords;
    std::span<const i64> dst_stride;
  };
  /// Bulk entry points. Defaults expand per point through the scalar
  /// virtuals, so every sink stays correct; high-volume sinks (the folding
  /// stage) override with O(1)-per-run handling.
  virtual void on_instruction_run(const InstrRun& r);
  virtual void on_dependence_run(const DepRun& r);
};

struct DdgOptions {
  bool track_anti_output = false;  ///< also emit WAR/WAW edges
  /// "Clamping" (paper Fig. 1): stop streaming a statement's instances
  /// after this many (0 = unlimited). Bounds profiling cost on huge loops;
  /// clamped statements are flagged. Clamping gates *emission* only:
  /// shadow/producer state is always kept current, so the instances that
  /// are streamed never cite a stale producer.
  u64 clamp_instances = 0;
  /// Resource budget checked on the hot path (shadow pages and coordinate
  /// words every event, wall clock every 8192 events). Exhaustion degrades
  /// like clamping — emission stops, shadow/producer state stays current —
  /// and every statement touched afterwards is recorded as degraded so the
  /// folder can demote it to an over-approximation. Null = no budget.
  const support::RunBudget* budget = nullptr;
  /// Destination for the (single) budget-exhaustion diagnostic.
  support::DiagnosticLog* diag = nullptr;
  /// Selective instrumentation (verify::exact::compute_selective_plan):
  /// access sites proven dependence-free skip shadow-memory work entirely.
  /// Loads skip the whole lookup; stores only append their address to a
  /// flat vector so materialize_skipped_pages() can reconstruct the shadow
  /// page count. Ignored when track_anti_output is set (skips would drop
  /// WAR/WAW edges the plan does not reason about). The plan must outlive
  /// the builder.
  const SelectivePlan* selective = nullptr;
  /// Hot-path trace compaction (vm::PathCache): recognize re-executed
  /// loop-body paths whose values/addresses follow affine per-iteration
  /// recurrences and replay whole runs in bulk instead of per instruction.
  /// The builder silently ignores the flag when track_anti_output is set
  /// or the budget carries caps it must check per event (shadow pages,
  /// pool words, wall clock) — compaction never changes what is streamed,
  /// so all outputs stay byte-identical to the reference interpretation.
  bool path_compaction = false;
};

/// The Instrumentation-II observer. Wire it into a vm::Machine run after
/// stage 1 produced the ControlStructure for the same program.
class DdgBuilder : public vm::Observer, private vm::PathHost {
 public:
  DdgBuilder(const ir::Module& m, const cfg::ControlStructure& cs,
             DdgSink* sink, DdgOptions opts = {});

  void on_local_jump(int func, int dst_bb) override;
  void on_call(vm::CodeRef callsite, int callee) override;
  void on_return(int callee, vm::CodeRef into) override;
  void on_instr(const vm::InstrEvent& ev) override;

  const StatementTable& statements() const { return table_; }
  const std::set<int>& clamped_statements() const { return clamped_; }
  u64 dependences_emitted() const { return deps_emitted_; }
  /// Instruction events consumed by this builder (self-observability).
  u64 instr_events_seen() const { return events_; }

  /// True once a RunBudget cap tripped mid-replay.
  bool budget_exhausted() const { return budget_exhausted_; }
  /// Statements touched after exhaustion — their streamed instance sets are
  /// incomplete and must fold as over-approximations, never as exact/affine.
  const std::set<int>& degraded_statements() const { return degraded_; }

  /// Introspection for benchmarks / reports.
  const support::CoordPool& coord_pool() const { return pool_; }
  const ShadowMemory& shadow() const { return shadow_; }

  /// True when trace compaction is live for this run (requested by the
  /// options and not vetoed by an incompatible configuration).
  bool compaction_active() const { return pc_ != nullptr; }
  /// Path-cache counters, or nullptr when compaction is inactive.
  const vm::PathCacheStats* path_stats() const {
    return pc_ != nullptr ? &pc_->stats() : nullptr;
  }
  /// Flush any armed compressed run (bulk-replaying its effects). Call
  /// after the VM replay returns or traps, before reading any builder
  /// state; safe to call when idle or when compaction is inactive.
  void flush_compaction() {
    if (pc_ != nullptr) pc_->flush();
  }

  /// Memory events whose shadow work the selective plan elided.
  u64 memory_events_skipped() const { return mem_skipped_; }
  /// Touch the shadow words of every skipped store so pages_live matches a
  /// full run exactly. Call once after the replay, before reading shadow
  /// statistics.
  void materialize_skipped_pages();

 private:
  void reg_dep(const ShadowFrame& frame, ir::Reg r, const Occurrence& dst,
               std::span<const i64> dst_coords, int slot);
  void mem_dep(DepKind kind, const Occurrence& src, const Occurrence& dst,
               std::span<const i64> dst_coords);

  // vm::PathHost: Ball-Larus numbering lookups + bulk run replay.
  bool path_loop_usable(int func, int loop) override;
  bool path_edge_increment(int func, int loop, int from, int to,
                           u64* inc) override;
  void expand_path_run(const vm::PathTemplate& t,
                       const vm::PathRun& run) override;
  const cfg::LoopPaths& loop_paths(int func, int loop);
  void tee(const cfg::LoopEvent& ev);

  const ir::Module& module_;
  const cfg::ControlStructure& cs_;
  cfg::LoopEventMachine lem_;
  iiv::DynamicIiv diiv_;
  StatementTable table_;
  ShadowMemory shadow_;
  support::CoordPool pool_;
  DdgSink* sink_;
  DdgOptions opts_;

  struct FrameCtl {
    ShadowFrame shadow;
    ir::Reg ret_dst = ir::kNoReg;  ///< caller register receiving the result
  };
  // Pooled frame stack: depth_ is the live height; slots above it keep
  // their register-vector capacity for reuse (no allocation per call once
  // the deepest point of the run has been visited).
  std::vector<FrameCtl> frames_;
  std::size_t depth_ = 0;
  Occurrence pending_ret_;  ///< producer of the return value (stmt < 0: none)
  // Context cache: the IIV context, coordinates and interned ids are
  // invariant between loop events, so recomputing them per instruction
  // would dominate profiling cost.
  u64 ctx_version_ = ~0ull;
  iiv::ContextKey ctx_cache_;
  int ctx_id_ = -1;
  support::CoordRef coord_cache_;
  std::vector<i64> coord_scratch_;
  bool stmt_skipped(int stmt, const Statement& s);
  /// Per-statement skip verdict (-1 unknown, else 0/1): the plan lookup is
  /// a set query, too slow for once-per-event.
  std::vector<signed char> skip_cache_;
  std::vector<i64> skipped_store_addrs_;
  u64 mem_skipped_ = 0;
  std::set<int> clamped_;
  u64 deps_emitted_ = 0;
  bool budget_exhausted_ = false;
  std::set<int> degraded_;
  u64 events_ = 0;  ///< instruction events seen (wall-clock check cadence)

  // Trace compaction (null = inactive).
  std::unique_ptr<vm::PathCache> pc_;
  std::map<std::pair<int, int>, cfg::LoopPaths> paths_;  ///< lazy numbering
  // Expansion scratch (allocation-free once warm).
  std::vector<i64> x_base_, x_stride_, x_prev_, x_zero_, x_scratch_;
  std::vector<support::CoordRef> x_refs_;
  std::vector<int> fw_scratch_, run_scratch_;  ///< per-register writer maps
  std::vector<u64> slot_n_, slot_emit_;        ///< per-slot trip counts
};

}  // namespace pp::ddg
