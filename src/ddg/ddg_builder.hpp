// Stage 2 ("Instrumentation II"): builds the dynamic dependence graph.
// Every retired instruction becomes a DDG vertex tagged with its dynamic
// interprocedural iteration vector; every data dependence (register flow,
// memory flow through shadow memory, optionally anti/output) becomes an
// edge between two tagged instances. Vertices and edges are streamed to a
// DdgSink — in the real pipeline that sink is the folding stage, so the
// full graph never materializes (the paper's scalability requirement).
//
// Hot-path design: this observer runs once per retired instruction, so
// its steady state is allocation-free — iteration vectors are interned in
// a CoordPool (one entry per IIV state change, not per event), shadow
// memory is a flat page table keyed by 8-byte word, contexts are interned
// once per loop event, and call frames are pooled. Sinks receive
// coordinates as spans into the pool, valid for the duration of the call.
#pragma once

#include <set>
#include <span>

#include "cfg/loop_events.hpp"
#include "ddg/selective.hpp"
#include "ddg/shadow.hpp"
#include "ddg/statement.hpp"
#include "iiv/diiv.hpp"
#include "support/budget.hpp"
#include "support/coord_pool.hpp"

namespace pp::ddg {

enum class DepKind : std::uint8_t {
  kRegFlow,   ///< read-after-write through a register
  kMemFlow,   ///< read-after-write through memory (shadow memory)
  kAnti,      ///< write-after-read through memory
  kOutput,    ///< write-after-write through memory
};

const char* dep_kind_name(DepKind k);

/// Consumer of the DDG event stream (the folding stage, or a test
/// recorder). Coordinate spans point into the builder's CoordPool and are
/// only guaranteed valid for the duration of the callback.
class DdgSink {
 public:
  virtual ~DdgSink() = default;
  /// A dynamic instance of `s` at iteration coordinates `coords`; `value`
  /// is the produced register value (SCEV detection), `address` the
  /// effective address of a load/store (access-function recovery).
  virtual void on_instruction(const Statement& s, std::span<const i64> coords,
                              bool has_value, i64 value, bool has_address,
                              i64 address) = 0;
  /// A dynamic dependence dst <- src between statement instances. `slot`
  /// identifies the consuming operand position (0 = first register operand
  /// / memory, 1 = second register operand), so that an instruction
  /// reading the same producer statement through two operands folds as two
  /// separate affine edges.
  virtual void on_dependence(DepKind kind, int src_stmt,
                             std::span<const i64> src_coords, int dst_stmt,
                             std::span<const i64> dst_coords, int slot) = 0;
};

struct DdgOptions {
  bool track_anti_output = false;  ///< also emit WAR/WAW edges
  /// "Clamping" (paper Fig. 1): stop streaming a statement's instances
  /// after this many (0 = unlimited). Bounds profiling cost on huge loops;
  /// clamped statements are flagged. Clamping gates *emission* only:
  /// shadow/producer state is always kept current, so the instances that
  /// are streamed never cite a stale producer.
  u64 clamp_instances = 0;
  /// Resource budget checked on the hot path (shadow pages and coordinate
  /// words every event, wall clock every 8192 events). Exhaustion degrades
  /// like clamping — emission stops, shadow/producer state stays current —
  /// and every statement touched afterwards is recorded as degraded so the
  /// folder can demote it to an over-approximation. Null = no budget.
  const support::RunBudget* budget = nullptr;
  /// Destination for the (single) budget-exhaustion diagnostic.
  support::DiagnosticLog* diag = nullptr;
  /// Selective instrumentation (verify::exact::compute_selective_plan):
  /// access sites proven dependence-free skip shadow-memory work entirely.
  /// Loads skip the whole lookup; stores only append their address to a
  /// flat vector so materialize_skipped_pages() can reconstruct the shadow
  /// page count. Ignored when track_anti_output is set (skips would drop
  /// WAR/WAW edges the plan does not reason about). The plan must outlive
  /// the builder.
  const SelectivePlan* selective = nullptr;
};

/// The Instrumentation-II observer. Wire it into a vm::Machine run after
/// stage 1 produced the ControlStructure for the same program.
class DdgBuilder : public vm::Observer {
 public:
  DdgBuilder(const ir::Module& m, const cfg::ControlStructure& cs,
             DdgSink* sink, DdgOptions opts = {});

  void on_local_jump(int func, int dst_bb) override;
  void on_call(vm::CodeRef callsite, int callee) override;
  void on_return(int callee, vm::CodeRef into) override;
  void on_instr(const vm::InstrEvent& ev) override;

  const StatementTable& statements() const { return table_; }
  const std::set<int>& clamped_statements() const { return clamped_; }
  u64 dependences_emitted() const { return deps_emitted_; }
  /// Instruction events consumed by this builder (self-observability).
  u64 instr_events_seen() const { return events_; }

  /// True once a RunBudget cap tripped mid-replay.
  bool budget_exhausted() const { return budget_exhausted_; }
  /// Statements touched after exhaustion — their streamed instance sets are
  /// incomplete and must fold as over-approximations, never as exact/affine.
  const std::set<int>& degraded_statements() const { return degraded_; }

  /// Introspection for benchmarks / reports.
  const support::CoordPool& coord_pool() const { return pool_; }
  const ShadowMemory& shadow() const { return shadow_; }

  /// Memory events whose shadow work the selective plan elided.
  u64 memory_events_skipped() const { return mem_skipped_; }
  /// Touch the shadow words of every skipped store so pages_live matches a
  /// full run exactly. Call once after the replay, before reading shadow
  /// statistics.
  void materialize_skipped_pages();

 private:
  void reg_dep(const ShadowFrame& frame, ir::Reg r, const Occurrence& dst,
               std::span<const i64> dst_coords, int slot);
  void mem_dep(DepKind kind, const Occurrence& src, const Occurrence& dst,
               std::span<const i64> dst_coords);

  const ir::Module& module_;
  cfg::LoopEventMachine lem_;
  iiv::DynamicIiv diiv_;
  StatementTable table_;
  ShadowMemory shadow_;
  support::CoordPool pool_;
  DdgSink* sink_;
  DdgOptions opts_;

  struct FrameCtl {
    ShadowFrame shadow;
    ir::Reg ret_dst = ir::kNoReg;  ///< caller register receiving the result
  };
  // Pooled frame stack: depth_ is the live height; slots above it keep
  // their register-vector capacity for reuse (no allocation per call once
  // the deepest point of the run has been visited).
  std::vector<FrameCtl> frames_;
  std::size_t depth_ = 0;
  Occurrence pending_ret_;  ///< producer of the return value (stmt < 0: none)
  // Context cache: the IIV context, coordinates and interned ids are
  // invariant between loop events, so recomputing them per instruction
  // would dominate profiling cost.
  u64 ctx_version_ = ~0ull;
  iiv::ContextKey ctx_cache_;
  int ctx_id_ = -1;
  support::CoordRef coord_cache_;
  std::vector<i64> coord_scratch_;
  bool stmt_skipped(int stmt, const Statement& s);
  /// Per-statement skip verdict (-1 unknown, else 0/1): the plan lookup is
  /// a set query, too slow for once-per-event.
  std::vector<signed char> skip_cache_;
  std::vector<i64> skipped_store_addrs_;
  u64 mem_skipped_ = 0;
  std::set<int> clamped_;
  u64 deps_emitted_ = 0;
  bool budget_exhausted_ = false;
  std::set<int> degraded_;
  u64 events_ = 0;  ///< instruction events seen (wall-clock check cadence)
};

}  // namespace pp::ddg
