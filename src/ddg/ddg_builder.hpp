// Stage 2 ("Instrumentation II"): builds the dynamic dependence graph.
// Every retired instruction becomes a DDG vertex tagged with its dynamic
// interprocedural iteration vector; every data dependence (register flow,
// memory flow through shadow memory, optionally anti/output) becomes an
// edge between two tagged instances. Vertices and edges are streamed to a
// DdgSink — in the real pipeline that sink is the folding stage, so the
// full graph never materializes (the paper's scalability requirement).
#pragma once

#include <set>

#include "cfg/loop_events.hpp"
#include "ddg/shadow.hpp"
#include "ddg/statement.hpp"
#include "iiv/diiv.hpp"

namespace pp::ddg {

enum class DepKind : std::uint8_t {
  kRegFlow,   ///< read-after-write through a register
  kMemFlow,   ///< read-after-write through memory (shadow memory)
  kAnti,      ///< write-after-read through memory
  kOutput,    ///< write-after-write through memory
};

const char* dep_kind_name(DepKind k);

/// Consumer of the DDG event stream (the folding stage, or a test recorder).
class DdgSink {
 public:
  virtual ~DdgSink() = default;
  /// A dynamic instance of `s` at coordinates `occ.coords`; `value` is the
  /// produced register value (SCEV detection), `address` the effective
  /// address of a load/store (access-function recovery).
  virtual void on_instruction(const Statement& s, const Occurrence& occ,
                              bool has_value, i64 value, bool has_address,
                              i64 address) = 0;
  /// A dynamic dependence dst <- src. `slot` identifies the consuming
  /// operand position (0 = first register operand / memory, 1 = second
  /// register operand), so that an instruction reading the same producer
  /// statement through two operands folds as two separate affine edges.
  virtual void on_dependence(DepKind kind, const Occurrence& src,
                             const Occurrence& dst, int slot) = 0;
};

struct DdgOptions {
  bool track_anti_output = false;  ///< also emit WAR/WAW edges
  /// "Clamping" (paper Fig. 1): stop streaming a statement's instances
  /// after this many (0 = unlimited). Bounds profiling cost on huge loops;
  /// clamped statements are flagged.
  u64 clamp_instances = 0;
};

/// The Instrumentation-II observer. Wire it into a vm::Machine run after
/// stage 1 produced the ControlStructure for the same program.
class DdgBuilder : public vm::Observer {
 public:
  DdgBuilder(const ir::Module& m, const cfg::ControlStructure& cs,
             DdgSink* sink, DdgOptions opts = {});

  void on_local_jump(int func, int dst_bb) override;
  void on_call(vm::CodeRef callsite, int callee) override;
  void on_return(int callee, vm::CodeRef into) override;
  void on_instr(const vm::InstrEvent& ev) override;

  const StatementTable& statements() const { return table_; }
  const std::set<int>& clamped_statements() const { return clamped_; }
  u64 dependences_emitted() const { return deps_emitted_; }

 private:
  void reg_dep(const ShadowFrame& frame, ir::Reg r, const Occurrence& dst,
               int slot);
  void set_producer(ir::Reg r, Occurrence occ);

  const ir::Module& module_;
  cfg::LoopEventMachine lem_;
  iiv::DynamicIiv diiv_;
  StatementTable table_;
  ShadowMemory shadow_;
  std::unordered_map<i64, Occurrence> last_reader_;  ///< for WAR edges
  DdgSink* sink_;
  DdgOptions opts_;

  struct FrameCtl {
    ShadowFrame shadow;
    ir::Reg ret_dst = ir::kNoReg;  ///< caller register receiving the result
  };
  std::vector<FrameCtl> frames_;
  std::optional<Occurrence> pending_ret_;  ///< producer of the return value
  // Context cache: the IIV context is invariant between loop events, so
  // recomputing it per instruction would dominate profiling cost.
  u64 ctx_version_ = ~0ull;
  iiv::ContextKey ctx_cache_;
  std::set<int> clamped_;
  u64 deps_emitted_ = 0;
};

}  // namespace pp::ddg
