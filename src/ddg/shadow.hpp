// Shadow memory for dependence tracking (paper §9 "Shadow memory records a
// piece of information for each storage location — for dependency tracking
// this is usually the last dynamic instruction that modified that
// location"). One record per 8-byte word — keys are normalized to word
// granularity (addr >> 3) — holding the last writing occurrence and, when
// anti/output tracking is on, the last reading occurrence.
//
// Layout: a two-level page table instead of a hash map. The directory maps
// (word >> kPageBits) to a lazily-allocated fixed-size page of records, so
// the per-access path is two indexed loads with no hashing, no probing and
// no per-record heap allocation — the flat shadow organization the paper's
// instrumentation (and every production race detector) relies on for
// throughput. clear() is O(pages): pages are parked on a free list and
// re-zeroed only when reused, so a ShadowMemory recycled across profiling
// runs stops allocating entirely.
#pragma once

#include <memory>
#include <type_traits>
#include <vector>

#include "support/coord_pool.hpp"
#include "support/int_math.hpp"

namespace pp::ddg {

/// A dynamic instance: statement id + interned iteration coordinates.
/// Trivially copyable by design — occurrences are stored by value in
/// shadow words, register slots and call frames on the profiling hot path.
struct Occurrence {
  int stmt = -1;  ///< < 0 means "no occurrence recorded"
  support::CoordRef coords;

  bool valid() const { return stmt >= 0; }
};

static_assert(std::is_trivially_copyable_v<Occurrence>);

class ShadowMemory {
 public:
  /// Shadow state of one 8-byte word.
  struct Record {
    Occurrence writer;  ///< last store to the word
    Occurrence reader;  ///< last load since that store (WAR tracking)
  };

  static constexpr std::size_t kPageBits = 12;  ///< 4096 words = 32 KiB span
  static constexpr std::size_t kPageWords = std::size_t{1} << kPageBits;

  /// Record of the word containing byte address `addr`, or nullptr if its
  /// page was never touched. Never allocates.
  const Record* find(i64 addr) const {
    std::size_t word = word_of(addr);
    std::size_t top = word >> kPageBits;
    if (top >= dir_.size() || dir_[top] < 0) return nullptr;
    return &pages_[static_cast<std::size_t>(dir_[top])]
                ->words[word & (kPageWords - 1)];
  }

  /// Find-or-create the record of the word containing `addr`.
  Record& touch(i64 addr) {
    std::size_t word = word_of(addr);
    std::size_t top = word >> kPageBits;
    if (top >= dir_.size()) dir_.resize(top + 1, -1);
    std::int32_t pi = dir_[top];
    if (pi < 0) pi = dir_[top] = grab_page();
    return pages_[static_cast<std::size_t>(pi)]->words[word & (kPageWords - 1)];
  }

  /// Record `w` as the last writer of the word at `addr`.
  void write(i64 addr, Occurrence w) { touch(addr).writer = w; }

  /// Last writer of `addr`, if any write was observed.
  const Occurrence* read(i64 addr) const {
    const Record* r = find(addr);
    return r != nullptr && r->writer.valid() ? &r->writer : nullptr;
  }

  /// Visit the records of the `n` words at addr, addr+stride, ... (byte
  /// addresses; the caller guarantees every address is non-negative),
  /// creating pages on demand. `fn(t, Record&)` is called in trip order.
  /// The directory is consulted once per crossed page, not per access —
  /// the batched expansion path of compressed trace runs lives on this.
  template <typename Fn>
  void apply_strided_run(i64 addr, i64 stride, u64 n, Fn&& fn) {
    std::size_t cur_top = kNoPage;
    Page* page = nullptr;
    for (u64 t = 0; t < n; ++t, addr += stride) {
      std::size_t word = word_of(addr);
      std::size_t top = word >> kPageBits;
      if (top != cur_top) {
        if (top >= dir_.size()) dir_.resize(top + 1, -1);
        std::int32_t pi = dir_[top];
        if (pi < 0) pi = dir_[top] = grab_page();
        page = pages_[static_cast<std::size_t>(pi)].get();
        cur_top = top;
      }
      fn(t, page->words[word & (kPageWords - 1)]);
    }
  }

  /// Non-creating strided walk: `fn(t, const Record*)` receives nullptr
  /// for words on never-touched pages.
  template <typename Fn>
  void read_strided_run(i64 addr, i64 stride, u64 n, Fn&& fn) const {
    std::size_t cur_top = kNoPage;
    const Page* page = nullptr;
    for (u64 t = 0; t < n; ++t, addr += stride) {
      std::size_t word = word_of(addr);
      std::size_t top = word >> kPageBits;
      if (top != cur_top) {
        page = top < dir_.size() && dir_[top] >= 0
                   ? pages_[static_cast<std::size_t>(dir_[top])].get()
                   : nullptr;
        cur_top = top;
      }
      fn(t, page != nullptr ? &page->words[word & (kPageWords - 1)]
                            : nullptr);
    }
  }

  /// Words with a recorded writer. O(pages · kPageWords): diagnostics and
  /// tests only, never on the profiling path.
  std::size_t tracked_words() const;

  /// Park every live page on the free list; the directory empties in
  /// O(pages). Parked pages are re-zeroed lazily on reuse.
  void clear();

  std::size_t pages_live() const { return pages_.size() - free_.size(); }
  std::size_t pages_allocated() const { return pages_.size(); }
  std::size_t pages_free() const { return free_.size(); }

 private:
  struct Page {
    Record words[kPageWords];
  };

  static constexpr std::size_t kNoPage = static_cast<std::size_t>(-1);

  /// Word index of a byte address: keys are word-granular so byte aliases
  /// of the same 8-byte word share one record.
  static std::size_t word_of(i64 addr) {
    PP_CHECK(addr >= 0, "shadow memory address must be non-negative");
    return static_cast<std::size_t>(addr) >> 3;
  }

  std::int32_t grab_page();

  std::vector<std::int32_t> dir_;  ///< word >> kPageBits -> page index, -1 if absent
  std::vector<std::unique_ptr<Page>> pages_;
  std::vector<std::int32_t> free_;  ///< parked page indices (cleared lazily)
};

/// Shadow state for one frame's registers: last producing occurrence per
/// virtual register (pass-through across calls/returns, so moves through
/// the calling convention do not appear as extra DDG nodes). An invalid
/// occurrence (stmt < 0) marks a register whose value predates profiling.
struct ShadowFrame {
  std::vector<Occurrence> regs;
  ShadowFrame() = default;
  explicit ShadowFrame(std::size_t num_regs) : regs(num_regs) {}
  /// Reinitialize in place (frame pooling: reuse keeps capacity).
  void reset(std::size_t num_regs) { regs.assign(num_regs, Occurrence{}); }
};

}  // namespace pp::ddg
