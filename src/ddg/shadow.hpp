// Shadow memory for dependence tracking (paper §9 "Shadow memory records a
// piece of information for each storage location — for dependency tracking
// this is usually the last dynamic instruction that modified that
// location"). One record per 8-byte word: the last writing statement and
// its iteration coordinates.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "support/int_math.hpp"

namespace pp::ddg {

/// A dynamic instance: statement id + iteration vector coordinates.
struct Occurrence {
  int stmt = -1;
  std::vector<i64> coords;
};

class ShadowMemory {
 public:
  /// Record `w` as the last writer of the word at `addr`.
  void write(i64 addr, Occurrence w) { last_writer_[addr] = std::move(w); }

  /// Last writer of `addr`, if any write was observed.
  const Occurrence* read(i64 addr) const {
    auto it = last_writer_.find(addr);
    return it == last_writer_.end() ? nullptr : &it->second;
  }

  std::size_t tracked_words() const { return last_writer_.size(); }
  void clear() { last_writer_.clear(); }

 private:
  std::unordered_map<i64, Occurrence> last_writer_;
};

/// Shadow state for one frame's registers: last producing occurrence per
/// virtual register (pass-through across calls/returns, so moves through
/// the calling convention do not appear as extra DDG nodes).
struct ShadowFrame {
  std::vector<std::optional<Occurrence>> regs;
  explicit ShadowFrame(std::size_t num_regs) : regs(num_regs) {}
};

}  // namespace pp::ddg
