// Small integer-node digraph with Tarjan SCC — shared machinery for the
// loop-nesting forest (on CFGs) and the recursive-component-set (on the
// call graph).
#pragma once

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "support/int_math.hpp"

namespace pp::cfg {

/// Adjacency-set digraph over sparse integer node ids.
class Digraph {
 public:
  void add_node(int n) { succs_[n]; }
  void add_edge(int from, int to) {
    succs_[from].insert(to);
    succs_[to];  // ensure the target exists as a node
  }
  bool has_node(int n) const { return succs_.count(n) != 0; }
  bool has_edge(int from, int to) const {
    auto it = succs_.find(from);
    return it != succs_.end() && it->second.count(to) != 0;
  }
  const std::set<int>& succs(int n) const {
    static const std::set<int> kEmpty;
    auto it = succs_.find(n);
    return it == succs_.end() ? kEmpty : it->second;
  }
  std::vector<int> nodes() const {
    std::vector<int> out;
    out.reserve(succs_.size());
    for (const auto& [n, _] : succs_) out.push_back(n);
    return out;
  }
  std::size_t num_nodes() const { return succs_.size(); }

 private:
  std::map<int, std::set<int>> succs_;
};

/// Strongly connected components (Tarjan, iterative). Restricted to the
/// sub-graph induced by `nodes`, optionally skipping a set of removed
/// edges. Components are returned in reverse topological order; node order
/// inside a component is deterministic (sorted).
std::vector<std::vector<int>> strongly_connected_components(
    const Digraph& g, const std::vector<int>& nodes,
    const std::set<std::pair<int, int>>& removed_edges = {});

/// True when the induced component has a cycle: more than one node, or a
/// (non-removed) self-edge.
bool component_has_cycle(const Digraph& g, const std::vector<int>& comp,
                         const std::set<std::pair<int, int>>& removed_edges);

}  // namespace pp::cfg
