#include "cfg/path_numbering.hpp"

#include <set>

namespace pp::cfg {
namespace {

/// Path-id budget: loops with more distinct acyclic paths than this are
/// not worth caching (the template store would thrash anyway).
constexpr u64 kMaxPaths = u64{1} << 30;

/// Ordered static successors of a block (kBrCond's taken edge first, like
/// the VM resolves it). Returns false for malformed/empty blocks.
bool successors(const ir::BasicBlock& bb, int out[2], int* n) {
  *n = 0;
  if (bb.instrs.empty()) return false;
  const ir::Instr& t = bb.instrs.back();
  switch (t.op) {
    case ir::Op::kBr:
      out[(*n)++] = static_cast<int>(t.imm);
      return true;
    case ir::Op::kBrCond:
      out[(*n)++] = static_cast<int>(t.imm);
      if (t.imm2 != t.imm) out[(*n)++] = static_cast<int>(t.imm2);
      return true;
    case ir::Op::kRet:
      return true;  // no successors: the path ends at the sink
    default:
      return false;  // fallthrough is not part of the mini-ISA
  }
}

}  // namespace

LoopPaths number_loop_paths(const ir::Function& f, const LoopForest& forest,
                            int loop_id) {
  LoopPaths p;
  p.func = f.id;
  p.loop = loop_id;
  const Loop& loop = forest.loop(loop_id);
  p.header = loop.header;

  // Body = blocks the loop owns directly; sub-loop regions behave like
  // exits (a pure — compactable — iteration never enters them).
  std::set<int> body;
  for (int b : loop.blocks)
    if (forest.innermost_loop(b) == loop_id) body.insert(b);
  if (body.find(loop.header) == body.end()) return p;

  // NumPaths by DFS with memoization over the body DAG; a virtual exit
  // sink (NumPaths = 1) absorbs the back-edge, loop exits, sub-loop
  // entries and returns. Any cycle among owned blocks would have been a
  // sub-loop SCC, but stay defensive: an on-stack revisit bails out.
  std::unordered_map<int, u64> np;
  std::set<int> on_stack;
  bool ok = true;
  auto num = [&](auto&& self, int b) -> u64 {
    auto it = np.find(b);
    if (it != np.end()) return it->second;
    if (!on_stack.insert(b).second) {
      ok = false;
      return 1;
    }
    int succ[2];
    int n = 0;
    if (b < 0 || static_cast<std::size_t>(b) >= f.blocks.size() ||
        !successors(f.block(b), succ, &n)) {
      ok = false;
      on_stack.erase(b);
      return 1;
    }
    u64 total = 0;
    u64 acc = 0;
    for (int i = 0; i < n && ok; ++i) {
      int s = succ[i];
      bool leaves = s == loop.header || body.find(s) == body.end();
      u64 paths = leaves ? 1 : self(self, s);
      p.inc[LoopPaths::edge_key(b, s)] = acc;
      acc += paths;
      total += paths;
      if (total > kMaxPaths) ok = false;
    }
    if (n == 0) total = 1;  // kRet: the block itself ends one path
    on_stack.erase(b);
    np[b] = total;
    return total;
  };
  p.num_paths = num(num, loop.header);
  if (!ok || p.num_paths == 0 || p.num_paths > kMaxPaths) {
    p.inc.clear();
    return p;
  }
  p.usable = true;
  return p;
}

}  // namespace pp::cfg
