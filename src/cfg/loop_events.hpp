// Loop-event generation — the paper's Algorithms 1 and 2. Raw control
// events (jump / call / return) are turned into loop events:
//   E(L,H)  enter CFG loop L            I(L,H)   iterate CFG loop L
//   X(L,B)  exit CFG loop L             N(B)     local jump to block B
//   Ec(L,B) enter recursive loop L      Ic(L,B)  iterate (call to header)
//   Ir(L,B) iterate (return from header) Xr(L,B) exit recursive loop
//   C(F,B)  plain call                  R(B)     plain return
// The stream drives the dynamic-IIV updater (Algorithm 3, pp::iiv).
#pragma once

#include <functional>

#include "cfg/loop_forest.hpp"
#include "cfg/recursive_components.hpp"

namespace pp::cfg {

/// The interprocedural control structure computed by stage 1: one loop
/// forest per executed function plus the recursive-component-set.
struct ControlStructure {
  std::map<int, LoopForest> forests;
  RecursiveComponentSet rcs;

  /// Convenience: build everything from a finished DynamicCfgBuilder.
  static ControlStructure build(const DynamicCfgBuilder& dyn,
                                const std::vector<int>& roots);
};

struct LoopEvent {
  enum class Kind {
    kEnter,          // E(L, H)
    kIterate,        // I(L, H)
    kExit,           // X(L, B)
    kBlock,          // N(B)
    kCall,           // C(F, B)
    kRet,            // R(B)
    kEnterRec,       // Ec(L, B)
    kIterateRecCall, // Ic(L, B)
    kIterateRecRet,  // Ir(L, B)
    kExitRec,        // Xr(L, B)
  };
  Kind kind;
  int func = -1;   ///< function owning `block` (for kCall: the callee)
  int block = -1;  ///< B: current basic block after the event
  int loop = -1;   ///< CFG loop id within func's forest (kEnter/kIterate/kExit)
  int comp = -1;   ///< recursive component id (k*Rec)

  std::string str() const;
};

/// Stateful translator from raw control events to loop events.
class LoopEventMachine {
 public:
  using Sink = std::function<void(const LoopEvent&)>;

  LoopEventMachine(const ControlStructure& cs, Sink sink)
      : cs_(cs), sink_(std::move(sink)) {}

  /// Raw events, in execution order (same shape as vm::Observer's).
  void on_jump(int func, int dst_bb);
  void on_call(int caller_func, int callee, int callee_entry_bb = 0);
  void on_return(int returned_from, int into_func, int into_bb);

  /// Number of loop contexts currently live (for tests).
  std::size_t live_depth() const { return live_.size(); }

 private:
  struct Live {
    bool is_cfg;
    // CFG loop:
    int func = -1;
    int loop = -1;
    int frame = -1;
    // Recursive component:
    int comp = -1;
    int entry_fn = -1;
    int stackcount = 0;
  };

  void emit(LoopEvent ev) { sink_(ev); }
  const LoopForest* forest(int func) const;
  bool comp_live(int comp) const;

  const ControlStructure& cs_;
  Sink sink_;
  std::vector<Live> live_;
  int frame_depth_ = 0;
};

}  // namespace pp::cfg
