#include "cfg/dynamic_cfg.hpp"

namespace pp::cfg {

void DynamicCfgBuilder::on_local_jump(int func, int dst_bb) {
  FunctionCfg& c = cfgs_.try_emplace(func, FunctionCfg{func, 0, {}}).first->second;
  c.blocks.add_node(dst_bb);
  if (!stack_.empty() && stack_.back().func == func) {
    c.blocks.add_edge(stack_.back().cur_block, dst_bb);
    stack_.back().cur_block = dst_bb;
  } else {
    // First event of a run (entry into the program's entry function).
    stack_.push_back({func, dst_bb});
  }
}

void DynamicCfgBuilder::on_call(vm::CodeRef callsite, int callee) {
  cg_.graph.add_node(callsite.func);
  cg_.graph.add_edge(callsite.func, callee);
  cg_.sites[{callsite.func, callee}].insert(callsite);
  cfgs_.try_emplace(callee, FunctionCfg{callee, 0, {}})
      .first->second.blocks.add_node(0);
  stack_.push_back({callee, 0});
}

void DynamicCfgBuilder::on_return(int callee, vm::CodeRef into) {
  (void)callee;
  (void)into;
  PP_CHECK(!stack_.empty(), "return with empty shadow stack");
  stack_.pop_back();
}

const FunctionCfg& DynamicCfgBuilder::cfg(int func) const {
  static const FunctionCfg kEmpty;
  auto it = cfgs_.find(func);
  return it == cfgs_.end() ? kEmpty : it->second;
}

std::vector<int> DynamicCfgBuilder::executed_functions() const {
  std::vector<int> out;
  out.reserve(cfgs_.size());
  for (const auto& [f, _] : cfgs_) out.push_back(f);
  return out;
}

}  // namespace pp::cfg
