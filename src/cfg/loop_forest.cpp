#include "cfg/loop_forest.hpp"

#include <functional>
#include <sstream>

namespace pp::cfg {

LoopForest::LoopForest(const FunctionCfg& cfg) {
  std::set<std::pair<int, int>> removed;
  build(cfg, cfg.blocks.nodes(), removed, /*parent=*/-1, /*depth=*/1);
}

void LoopForest::build(const FunctionCfg& cfg, const std::vector<int>& nodes,
                       std::set<std::pair<int, int>>& removed, int parent,
                       int depth) {
  auto sccs = strongly_connected_components(cfg.blocks, nodes, removed);
  for (const auto& comp : sccs) {
    if (!component_has_cycle(cfg.blocks, comp, removed)) continue;
    std::set<int> region(comp.begin(), comp.end());

    // Entry nodes: targets of edges from outside the region (or the CFG
    // entry itself). The header is the lowest-numbered entry — a
    // deterministic stand-in for Havlak's DFS-based choice; any entry is a
    // valid header per Ramalingam.
    std::set<int> entries;
    for (int n : cfg.blocks.nodes()) {
      if (region.count(n)) continue;
      for (int s : cfg.blocks.succs(n))
        if (region.count(s)) entries.insert(s);
    }
    if (region.count(cfg.entry)) entries.insert(cfg.entry);
    PP_CHECK(!entries.empty(), "loop SCC with no entry (unreachable cycle?)");
    int header = *entries.begin();

    Loop loop;
    loop.id = static_cast<int>(loops_.size());
    loop.header = header;
    loop.blocks = region;
    loop.parent = parent;
    loop.depth = depth;
    for (int n : comp) {
      if (cfg.blocks.has_edge(n, header) && removed.count({n, header}) == 0)
        loop.back_edges.insert({n, header});
    }
    PP_CHECK(!loop.back_edges.empty(), "loop without back-edges");
    int id = loop.id;
    loops_.push_back(std::move(loop));
    header_to_loop_[header] = id;
    if (parent >= 0)
      loops_[static_cast<std::size_t>(parent)].children.push_back(id);
    for (int n : comp) {
      // Innermost-loop map: deeper recursive calls overwrite with sub-loops.
      innermost_[n] = id;
    }

    // Remove the back-edges and recurse to find sub-loops.
    for (const auto& be : loops_[static_cast<std::size_t>(id)].back_edges)
      removed.insert(be);
    build(cfg, comp, removed, id, depth + 1);
  }
}

int LoopForest::loop_of_header(int block) const {
  auto it = header_to_loop_.find(block);
  return it == header_to_loop_.end() ? -1 : it->second;
}

int LoopForest::innermost_loop(int block) const {
  auto it = innermost_.find(block);
  return it == innermost_.end() ? -1 : it->second;
}

int LoopForest::max_depth() const {
  int d = 0;
  for (const auto& l : loops_) d = std::max(d, l.depth);
  return d;
}

std::string LoopForest::str() const {
  std::ostringstream os;
  // Print top-level loops recursively.
  std::function<void(int, int)> rec = [&](int id, int indent) {
    const Loop& l = loops_[static_cast<std::size_t>(id)];
    os << std::string(static_cast<std::size_t>(indent) * 2, ' ') << "L" << l.id
       << " header=bb" << l.header << " blocks={";
    bool first = true;
    for (int b : l.blocks) {
      if (!first) os << ",";
      first = false;
      os << b;
    }
    os << "}\n";
    for (int c : l.children) rec(c, indent + 1);
  };
  for (const auto& l : loops_)
    if (l.parent < 0) rec(l.id, 0);
  return os.str();
}

}  // namespace pp::cfg
