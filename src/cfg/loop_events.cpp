#include "cfg/loop_events.hpp"

#include <sstream>

namespace pp::cfg {

ControlStructure ControlStructure::build(const DynamicCfgBuilder& dyn,
                                         const std::vector<int>& roots) {
  ControlStructure cs;
  for (int f : dyn.executed_functions()) cs.forests.emplace(f, LoopForest(dyn.cfg(f)));
  cs.rcs = RecursiveComponentSet(dyn.call_graph(), roots);
  return cs;
}

std::string LoopEvent::str() const {
  std::ostringstream os;
  switch (kind) {
    case Kind::kEnter: os << "E(L" << loop << ",bb" << block << ")"; break;
    case Kind::kIterate: os << "I(L" << loop << ",bb" << block << ")"; break;
    case Kind::kExit: os << "X(L" << loop << ",bb" << block << ")"; break;
    case Kind::kBlock: os << "N(bb" << block << ")"; break;
    case Kind::kCall: os << "C(f" << func << ",bb" << block << ")"; break;
    case Kind::kRet: os << "R(bb" << block << ")"; break;
    case Kind::kEnterRec: os << "Ec(RC" << comp << ",bb" << block << ")"; break;
    case Kind::kIterateRecCall:
      os << "Ic(RC" << comp << ",bb" << block << ")";
      break;
    case Kind::kIterateRecRet:
      os << "Ir(RC" << comp << ",bb" << block << ")";
      break;
    case Kind::kExitRec: os << "Xr(RC" << comp << ",bb" << block << ")"; break;
  }
  return os.str();
}

const LoopForest* LoopEventMachine::forest(int func) const {
  auto it = cs_.forests.find(func);
  return it == cs_.forests.end() ? nullptr : &it->second;
}

bool LoopEventMachine::comp_live(int comp) const {
  for (const auto& l : live_)
    if (!l.is_cfg && l.comp == comp) return true;
  return false;
}

void LoopEventMachine::on_jump(int func, int dst_bb) {
  // Algorithm 1. Pop live CFG loops of the current frame whose region does
  // not contain the destination block — they are exited.
  while (!live_.empty()) {
    const Live& top = live_.back();
    if (!top.is_cfg || top.frame != frame_depth_) break;
    const LoopForest* lf = forest(top.func);
    PP_CHECK(lf != nullptr, "live loop in unknown function");
    if (top.func == func &&
        lf->loop(top.loop).blocks.count(dst_bb) != 0)
      break;
    int loop = top.loop;
    live_.pop_back();
    emit({LoopEvent::Kind::kExit, func, dst_bb, loop, -1});
  }
  // Header? Either an iteration of the live top loop or a fresh entry.
  if (const LoopForest* lf = forest(func)) {
    int L = lf->loop_of_header(dst_bb);
    if (L >= 0) {
      if (!live_.empty() && live_.back().is_cfg && live_.back().func == func &&
          live_.back().loop == L && live_.back().frame == frame_depth_) {
        emit({LoopEvent::Kind::kIterate, func, dst_bb, L, -1});
      } else {
        Live lv;
        lv.is_cfg = true;
        lv.func = func;
        lv.loop = L;
        lv.frame = frame_depth_;
        live_.push_back(lv);
        emit({LoopEvent::Kind::kEnter, func, dst_bb, L, -1});
      }
    }
  }
  emit({LoopEvent::Kind::kBlock, func, dst_bb, -1, -1});
}

void LoopEventMachine::on_call(int caller_func, int callee,
                               int callee_entry_bb) {
  (void)caller_func;
  // Algorithm 2, call part.
  int comp = cs_.rcs.component_of(callee);
  ++frame_depth_;
  if (comp >= 0 && cs_.rcs.is_entry(callee) && !comp_live(comp)) {
    Live lv;
    lv.is_cfg = false;
    lv.comp = comp;
    lv.entry_fn = callee;
    lv.stackcount = 0;
    live_.push_back(lv);
    emit({LoopEvent::Kind::kEnterRec, callee, callee_entry_bb, -1, comp});
    return;
  }
  if (comp >= 0 && cs_.rcs.is_header(callee) && comp_live(comp)) {
    // New iteration of the recursive loop: every context nested inside it
    // is exited first (paper: "all live sub-loops are considered exited").
    while (!live_.empty() &&
           (live_.back().is_cfg || live_.back().comp != comp)) {
      Live top = live_.back();
      live_.pop_back();
      if (top.is_cfg)
        emit({LoopEvent::Kind::kExit, top.func, callee_entry_bb, top.loop, -1});
      else
        emit({LoopEvent::Kind::kExitRec, callee, callee_entry_bb, -1, top.comp});
    }
    PP_CHECK(!live_.empty(), "iterating a recursive loop that is not live");
    ++live_.back().stackcount;
    emit({LoopEvent::Kind::kIterateRecCall, callee, callee_entry_bb, -1, comp});
    return;
  }
  emit({LoopEvent::Kind::kCall, callee, callee_entry_bb, -1, -1});
}

void LoopEventMachine::on_return(int returned_from, int into_func,
                                 int into_bb) {
  // Algorithm 2, return part. First exit all CFG loops of the destroyed
  // frame.
  while (!live_.empty() && live_.back().is_cfg &&
         live_.back().frame == frame_depth_) {
    int loop = live_.back().loop;
    live_.pop_back();
    emit({LoopEvent::Kind::kExit, into_func, into_bb, loop, -1});
  }
  --frame_depth_;
  int comp = cs_.rcs.component_of(returned_from);
  if (comp >= 0 && !live_.empty() && !live_.back().is_cfg &&
      live_.back().comp == comp && live_.back().stackcount == 0 &&
      live_.back().entry_fn == returned_from &&
      cs_.rcs.is_entry(returned_from)) {
    live_.pop_back();
    emit({LoopEvent::Kind::kExitRec, into_func, into_bb, -1, comp});
    return;
  }
  if (comp >= 0 && cs_.rcs.is_header(returned_from) && comp_live(comp)) {
    for (auto it = live_.rbegin(); it != live_.rend(); ++it) {
      if (!it->is_cfg && it->comp == comp) {
        --it->stackcount;
        break;
      }
    }
    emit({LoopEvent::Kind::kIterateRecRet, into_func, into_bb, -1, comp});
    return;
  }
  emit({LoopEvent::Kind::kRet, into_func, into_bb, -1, -1});
}

}  // namespace pp::cfg
