// Ball-Larus path numbering of one loop body (Ball & Larus, "Efficient
// Path Profiling"; multi-iteration extension after D'Elia & Demetrescu,
// arXiv 1304.5197): the loop's directly-owned blocks (sub-loop regions
// collapse into exits) form a DAG once back-edges are removed, and every
// acyclic path through it gets a dense integer id from per-edge
// increments. One loop iteration therefore reduces to a single path id,
// which is the key the VM-side path cache uses to recognize that a new
// iteration re-executes an already-recorded template (vm/path_cache.hpp).
#pragma once

#include <unordered_map>

#include "cfg/loop_forest.hpp"
#include "ir/ir.hpp"

namespace pp::cfg {

/// Path numbering for one (function, loop) body. Edges leaving the body —
/// the back-edge to the header, loop exits, entries into sub-loops, and
/// returns — all target a virtual exit sink, so a path id is complete as
/// soon as the iteration ends, whichever way it ends.
struct LoopPaths {
  int func = -1;
  int loop = -1;
  int header = -1;
  /// False when the body is not an acyclic DAG over its owned blocks
  /// (irreducible region) or the path count exceeds the id budget; such
  /// loops are simply never compacted.
  bool usable = false;
  u64 num_paths = 0;

  static u64 edge_key(int from, int to) {
    return (static_cast<u64>(static_cast<std::uint32_t>(from)) << 32) |
           static_cast<std::uint32_t>(to);
  }
  /// Increment of the DAG edge `from`→`to`; false when the edge is not
  /// part of the numbering (never taken by a pure iteration).
  bool increment(int from, int to, u64* out) const {
    auto it = inc.find(edge_key(from, to));
    if (it == inc.end()) return false;
    *out = it->second;
    return true;
  }

  std::unordered_map<u64, u64> inc;
};

/// Number the acyclic paths of `forest.loop(loop_id)` inside `f`, using
/// the static successor structure (terminators), not observed edges: the
/// numbering must cover paths before they execute.
LoopPaths number_loop_paths(const ir::Function& f, const LoopForest& forest,
                            int loop_id);

}  // namespace pp::cfg
