// Loop-nesting forest construction following Ramalingam's recursive
// characterization (paper §3.1, [58]; Havlak [31] computes the same forest
// near-linearly — we favour the direct recursive formulation, which is the
// definition the paper states):
//   1. each SCC of the CFG containing a cycle is the region of an
//      outermost loop;
//   2. one entry node of the loop is designated its header;
//   3. edges inside the loop targeting the header are back-edges;
//   4. removing all back-edges recursively defines the sub-loops.
#pragma once

#include <optional>
#include <string>

#include "cfg/dynamic_cfg.hpp"

namespace pp::cfg {

/// One loop in the nesting forest.
struct Loop {
  int id = -1;
  int header = -1;             ///< designated header block
  std::set<int> blocks;        ///< region: all blocks, including sub-loops
  std::set<std::pair<int, int>> back_edges;
  int parent = -1;             ///< enclosing loop id, -1 for top level
  std::vector<int> children;   ///< sub-loop ids
  int depth = 1;               ///< nesting depth (top level = 1)
};

/// The loop-nesting forest of one function's CFG.
class LoopForest {
 public:
  LoopForest() = default;
  /// Build from the (dynamically discovered) CFG.
  explicit LoopForest(const FunctionCfg& cfg);

  const std::vector<Loop>& loops() const { return loops_; }
  const Loop& loop(int id) const { return loops_[static_cast<std::size_t>(id)]; }

  /// Loop whose header is `block`, or -1.
  int loop_of_header(int block) const;
  /// Innermost loop containing `block`, or -1.
  int innermost_loop(int block) const;
  /// Maximum nesting depth in the forest (0 when loop-free).
  int max_depth() const;

  /// Indented textual rendering (for tests and reports).
  std::string str() const;

 private:
  void build(const FunctionCfg& cfg, const std::vector<int>& nodes,
             std::set<std::pair<int, int>>& removed, int parent, int depth);

  std::vector<Loop> loops_;
  std::map<int, int> header_to_loop_;
  std::map<int, int> innermost_;  ///< block -> innermost loop id
};

}  // namespace pp::cfg
