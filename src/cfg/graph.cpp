#include "cfg/graph.hpp"

namespace pp::cfg {

namespace {

struct TarjanState {
  std::map<int, int> index;
  std::map<int, int> lowlink;
  std::set<int> on_stack;
  std::vector<int> stack;
  int next_index = 0;
  std::vector<std::vector<int>> components;
};

}  // namespace

std::vector<std::vector<int>> strongly_connected_components(
    const Digraph& g, const std::vector<int>& nodes,
    const std::set<std::pair<int, int>>& removed_edges) {
  std::set<int> allowed(nodes.begin(), nodes.end());
  TarjanState st;

  // Iterative Tarjan: explicit work stack of (node, successor iterator
  // position) to survive deep CFGs without blowing the call stack.
  struct WorkItem {
    int node;
    std::vector<int> succs;
    std::size_t next = 0;
  };

  auto edge_ok = [&](int from, int to) {
    return allowed.count(to) != 0 && removed_edges.count({from, to}) == 0;
  };

  for (int root : nodes) {
    if (st.index.count(root)) continue;
    std::vector<WorkItem> work;
    auto push_node = [&](int n) {
      st.index[n] = st.lowlink[n] = st.next_index++;
      st.stack.push_back(n);
      st.on_stack.insert(n);
      WorkItem wi;
      wi.node = n;
      for (int s : g.succs(n))
        if (edge_ok(n, s)) wi.succs.push_back(s);
      work.push_back(std::move(wi));
    };
    push_node(root);
    while (!work.empty()) {
      WorkItem& wi = work.back();
      if (wi.next < wi.succs.size()) {
        int s = wi.succs[wi.next++];
        if (!st.index.count(s)) {
          push_node(s);
        } else if (st.on_stack.count(s)) {
          st.lowlink[wi.node] = std::min(st.lowlink[wi.node], st.index[s]);
        }
      } else {
        int n = wi.node;
        if (st.lowlink[n] == st.index[n]) {
          std::vector<int> comp;
          for (;;) {
            int m = st.stack.back();
            st.stack.pop_back();
            st.on_stack.erase(m);
            comp.push_back(m);
            if (m == n) break;
          }
          std::sort(comp.begin(), comp.end());
          st.components.push_back(std::move(comp));
        }
        work.pop_back();
        if (!work.empty()) {
          int parent = work.back().node;
          st.lowlink[parent] = std::min(st.lowlink[parent], st.lowlink[n]);
        }
      }
    }
  }
  return st.components;
}

bool component_has_cycle(const Digraph& g, const std::vector<int>& comp,
                         const std::set<std::pair<int, int>>& removed_edges) {
  if (comp.size() > 1) return true;
  int n = comp[0];
  return g.has_edge(n, n) && removed_edges.count({n, n}) == 0;
}

}  // namespace pp::cfg
