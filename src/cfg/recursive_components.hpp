// The recursive-component-set (paper §3.2): "for the call-graph what the
// loop-nesting-tree is for the control-flow-graph". Construction follows
// the paper's recursive definition:
//   1. every top-level SCC of the CG with a cycle is a recursive component;
//   2. its entry nodes are the functions called from outside the component;
//   3. repeatedly: pick an entry node of a (sub-)SCC, add it to the
//      component's headers-set, remove the SCC-internal edges targeting it,
//      until no cycles remain.
#pragma once

#include <string>

#include "cfg/dynamic_cfg.hpp"

namespace pp::cfg {

/// One recursive component: a top-level CG SCC with its entries + headers.
struct RecursiveComponent {
  int id = -1;
  std::set<int> functions;  ///< SCC members
  std::set<int> entries;    ///< functions called from outside the component
  std::set<int> headers;    ///< header functions (iteration points)
};

class RecursiveComponentSet {
 public:
  RecursiveComponentSet() = default;
  /// Build from the dynamic call graph; `roots` are program entry
  /// functions (they count as externally entered).
  explicit RecursiveComponentSet(const CallGraph& cg,
                                 const std::vector<int>& roots = {});

  const std::vector<RecursiveComponent>& components() const {
    return components_;
  }
  /// Component containing function `f`, or -1 when f is not recursive.
  int component_of(int f) const;
  bool is_entry(int f) const;
  bool is_header(int f) const;

  std::string str() const;

 private:
  std::vector<RecursiveComponent> components_;
  std::map<int, int> func_to_comp_;
};

}  // namespace pp::cfg
