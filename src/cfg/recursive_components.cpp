#include "cfg/recursive_components.hpp"

#include <sstream>

namespace pp::cfg {

RecursiveComponentSet::RecursiveComponentSet(const CallGraph& cg,
                                             const std::vector<int>& roots) {
  const Digraph& g = cg.graph;
  auto sccs = strongly_connected_components(g, g.nodes());
  std::set<int> root_set(roots.begin(), roots.end());
  for (const auto& comp : sccs) {
    if (!component_has_cycle(g, comp, {})) continue;
    RecursiveComponent rc;
    rc.id = static_cast<int>(components_.size());
    rc.functions.insert(comp.begin(), comp.end());

    // Entries: called from outside the SCC, or program roots.
    for (int n : g.nodes()) {
      if (rc.functions.count(n)) continue;
      for (int s : g.succs(n))
        if (rc.functions.count(s)) rc.entries.insert(s);
    }
    for (int r : roots)
      if (rc.functions.count(r)) rc.entries.insert(r);
    PP_CHECK(!rc.entries.empty(), "recursive component with no entry");

    // Header elimination: repeatedly pick an entry of each remaining
    // cyclic sub-SCC, record it as a header, drop its SCC-internal
    // incoming edges, until acyclic.
    std::set<std::pair<int, int>> removed;
    std::vector<int> members(comp.begin(), comp.end());
    for (;;) {
      auto subs = strongly_connected_components(g, members, removed);
      bool any_cycle = false;
      for (const auto& sub : subs) {
        if (!component_has_cycle(g, sub, removed)) continue;
        any_cycle = true;
        std::set<int> sub_set(sub.begin(), sub.end());
        // Entries of this sub-SCC w.r.t. the whole graph; prefer component
        // entries, fall back to the lowest-id member.
        int chosen = -1;
        for (int n : sub) {
          bool entered_from_outside = root_set.count(n) != 0;
          for (int m : g.nodes()) {
            if (sub_set.count(m)) continue;
            if (g.has_edge(m, n)) entered_from_outside = true;
          }
          if (entered_from_outside) {
            chosen = n;
            break;
          }
        }
        if (chosen < 0) chosen = sub[0];
        rc.headers.insert(chosen);
        for (int m : sub)
          if (g.has_edge(m, chosen)) removed.insert({m, chosen});
      }
      if (!any_cycle) break;
    }

    for (int f : comp) func_to_comp_[f] = rc.id;
    components_.push_back(std::move(rc));
  }
}

int RecursiveComponentSet::component_of(int f) const {
  auto it = func_to_comp_.find(f);
  return it == func_to_comp_.end() ? -1 : it->second;
}

bool RecursiveComponentSet::is_entry(int f) const {
  int c = component_of(f);
  return c >= 0 &&
         components_[static_cast<std::size_t>(c)].entries.count(f) != 0;
}

bool RecursiveComponentSet::is_header(int f) const {
  int c = component_of(f);
  return c >= 0 &&
         components_[static_cast<std::size_t>(c)].headers.count(f) != 0;
}

std::string RecursiveComponentSet::str() const {
  std::ostringstream os;
  for (const auto& rc : components_) {
    os << "component " << rc.id << ": functions={";
    bool first = true;
    for (int f : rc.functions) {
      if (!first) os << ",";
      first = false;
      os << f;
    }
    os << "} entries={";
    first = true;
    for (int f : rc.entries) {
      if (!first) os << ",";
      first = false;
      os << f;
    }
    os << "} headers={";
    first = true;
    for (int f : rc.headers) {
      if (!first) os << ",";
      first = false;
      os << f;
    }
    os << "}\n";
  }
  return os.str();
}

}  // namespace pp::cfg
