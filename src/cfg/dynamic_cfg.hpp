// Stage 1 ("Instrumentation I"): dynamic reconstruction of per-function
// control-flow graphs and the whole-program call graph from the raw
// control-event stream. Only code that actually executes is ever analyzed,
// exactly as in the paper (§3): "only the part of a program that is
// actually executed will be analyzed".
#pragma once

#include <map>

#include "cfg/graph.hpp"
#include "vm/vm.hpp"

namespace pp::cfg {

/// The dynamically observed CFG of one function.
struct FunctionCfg {
  int func = -1;
  int entry = 0;      ///< entry block id (always 0 in the mini-ISA)
  Digraph blocks;     ///< nodes = executed blocks, edges = observed jumps
};

/// The dynamically observed call graph. Nodes are function ids.
struct CallGraph {
  Digraph graph;
  /// Call sites per (caller, callee) pair, for CCT labeling.
  std::map<std::pair<int, int>, std::set<vm::CodeRef>> sites;
};

/// VM observer that accumulates CFGs + CG over one (or more) runs.
class DynamicCfgBuilder : public vm::Observer {
 public:
  void on_local_jump(int func, int dst_bb) override;
  void on_call(vm::CodeRef callsite, int callee) override;
  void on_return(int callee, vm::CodeRef into) override;

  /// Observed CFG for `func` (creates an empty one if never executed).
  const FunctionCfg& cfg(int func) const;
  bool has_cfg(int func) const { return cfgs_.count(func) != 0; }
  const CallGraph& call_graph() const { return cg_; }
  std::vector<int> executed_functions() const;

 private:
  struct FrameState {
    int func;
    int cur_block;
  };

  std::map<int, FunctionCfg> cfgs_;
  CallGraph cg_;
  std::vector<FrameState> stack_;
};

}  // namespace pp::cfg
