#include "vm/event_validator.hpp"

namespace pp::vm {

bool EventValidator::func_ok(int func) const {
  return func >= 0 && static_cast<std::size_t>(func) < module_.functions.size();
}

bool EventValidator::block_ok(int func, int block) const {
  if (!func_ok(func)) return false;
  const auto& f = module_.functions[static_cast<std::size_t>(func)];
  return block >= 0 && static_cast<std::size_t>(block) < f.blocks.size();
}

int EventValidator::block_len(int func, int block) const {
  if (!block_ok(func, block)) return -1;
  const auto& f = module_.functions[static_cast<std::size_t>(func)];
  return static_cast<int>(f.blocks[static_cast<std::size_t>(block)].instrs.size());
}

void EventValidator::reject(const std::string& reason) {
  if (!fault_.empty()) return;
  fault_ = reason;
  if (diag_)
    diag_->error(stage_, "event stream rejected: " + reason +
                             " — trace truncated at last well-formed event");
}

void EventValidator::on_local_jump(int func, int dst_bb) {
  if (!ok()) return;
  if (!func_ok(func)) {
    reject("jump names out-of-range function f" + std::to_string(func));
    return;
  }
  if (!block_ok(func, dst_bb)) {
    reject("jump targets out-of-range block b" + std::to_string(dst_bb) +
           " of f" + std::to_string(func));
    return;
  }
  if (frames_.empty()) {
    // First event of the run: the entry frame materializes here.
    frames_.push_back({func, dst_bb, 0, block_len(func, dst_bb)});
  } else {
    if (frames_.back().func != func) {
      reject("local jump crosses functions (f" +
             std::to_string(frames_.back().func) + " -> f" +
             std::to_string(func) + ")");
      return;
    }
    frames_.back().block = dst_bb;
    frames_.back().next_instr = 0;
    frames_.back().n_instrs = block_len(func, dst_bb);
  }
  inner_->on_local_jump(func, dst_bb);
}

void EventValidator::on_call(CodeRef callsite, int callee) {
  if (!ok()) return;
  if (!func_ok(callee)) {
    reject("call to out-of-range function f" + std::to_string(callee));
    return;
  }
  if (!block_ok(callsite.func, callsite.block) || callsite.instr < 0) {
    reject("call from out-of-range site");
    return;
  }
  if (frames_.empty()) {
    reject("call before any control event");
    return;
  }
  frames_.push_back({callee, 0, 0, block_len(callee, 0)});
  inner_->on_call(callsite, callee);
}

void EventValidator::on_return(int callee, CodeRef into) {
  if (!ok()) return;
  // The entry frame never returns through the observer, so a return must
  // leave at least one frame behind.
  if (frames_.size() < 2) {
    reject("unmatched return from f" + std::to_string(callee));
    return;
  }
  if (frames_.back().func != callee) {
    reject("return from f" + std::to_string(callee) +
           " does not match innermost call (f" +
           std::to_string(frames_.back().func) + ")");
    return;
  }
  frames_.pop_back();
  if (into.func != frames_.back().func) {
    reject("return lands in f" + std::to_string(into.func) +
           " instead of caller f" + std::to_string(frames_.back().func));
    return;
  }
  inner_->on_return(callee, into);
}

void EventValidator::on_instr(const InstrEvent& ev) {
  if (!ok()) return;
  if (frames_.empty()) {
    reject("instruction before any control event");
    return;
  }
  Frame& fr = frames_.back();
  // Fast path: the event is exactly the expected next instruction of the
  // frame's current block, whose length was range-checked when the frame
  // entered it — integer compares fully imply the slow-path checks. Any
  // mismatch (including a location that went out of range, n_instrs < 0)
  // falls through to the full checks for the precise rejection message.
  if (ev.ref.func == fr.func && ev.ref.block == fr.block &&
      ev.ref.instr == fr.next_instr && ev.ref.instr < fr.n_instrs)
      [[likely]] {
    if (ev.instr != nullptr && ir::op_is_memory(ev.instr->op)) {
      if (ev.address < 0) {
        reject("negative effective address " + std::to_string(ev.address));
        return;
      }
      if ((ev.address & 7) != 0) {
        reject("misaligned effective address " + std::to_string(ev.address) +
               " (8-byte alignment required)");
        return;
      }
    }
    ++fr.next_instr;
    ++instr_events_;
    inner_->on_instr(ev);
    return;
  }
  if (!block_ok(ev.ref.func, ev.ref.block)) {
    reject("instruction in out-of-range location f" +
           std::to_string(ev.ref.func) + ":b" + std::to_string(ev.ref.block));
    return;
  }
  const auto& bb = module_.functions[static_cast<std::size_t>(ev.ref.func)]
                       .blocks[static_cast<std::size_t>(ev.ref.block)];
  if (ev.ref.instr < 0 ||
      static_cast<std::size_t>(ev.ref.instr) >= bb.instrs.size()) {
    reject("instruction index i" + std::to_string(ev.ref.instr) +
           " out of range for f" + std::to_string(ev.ref.func) + ":b" +
           std::to_string(ev.ref.block));
    return;
  }
  if (ev.ref.func != fr.func || ev.ref.block != fr.block ||
      ev.ref.instr != fr.next_instr) {
    reject("non-monotone event ordering: expected f" +
           std::to_string(fr.func) + ":b" + std::to_string(fr.block) + ":i" +
           std::to_string(fr.next_instr) + ", got f" +
           std::to_string(ev.ref.func) + ":b" + std::to_string(ev.ref.block) +
           ":i" + std::to_string(ev.ref.instr));
    return;
  }
  if (ev.instr != nullptr && ir::op_is_memory(ev.instr->op)) {
    if (ev.address < 0) {
      reject("negative effective address " + std::to_string(ev.address));
      return;
    }
    if ((ev.address & 7) != 0) {
      reject("misaligned effective address " + std::to_string(ev.address) +
             " (8-byte alignment required)");
      return;
    }
  }
  ++fr.next_instr;
  ++instr_events_;
  inner_->on_instr(ev);
}

}  // namespace pp::vm
