#include "vm/vm.hpp"

#include <cstring>

namespace pp::vm {

namespace {

double as_double(i64 bits) {
  double d;
  std::memcpy(&d, &bits, sizeof d);
  return d;
}

i64 as_bits(double d) {
  i64 bits;
  std::memcpy(&bits, &d, sizeof bits);
  return bits;
}

// Guest integer arithmetic wraps (two's complement), like the machine
// code the VM stands in for — guest LCGs and hash mixers overflow i64 on
// purpose. Computing in u64 keeps that defined under UBSan.
i64 wrap_add(i64 a, i64 b) {
  return static_cast<i64>(static_cast<u64>(a) + static_cast<u64>(b));
}
i64 wrap_sub(i64 a, i64 b) {
  return static_cast<i64>(static_cast<u64>(a) - static_cast<u64>(b));
}
i64 wrap_mul(i64 a, i64 b) {
  return static_cast<i64>(static_cast<u64>(a) * static_cast<u64>(b));
}

}  // namespace

Machine::Machine(const ir::Module& m, i64 extra_heap_bytes) : module_(m) {
  ir::verify(m);
  i64 total = m.data_segment_size + extra_heap_bytes;
  memory_.assign(static_cast<std::size_t>((total + 7) / 8), 0);
  for (const auto& g : m.globals) {
    for (std::size_t i = 0; i < g.init_words.size(); ++i)
      memory_[static_cast<std::size_t>(g.address / 8) + i] = g.init_words[i];
  }
  cache_tags_.assign(cost_.cache_lines, ~0ull);
}

i64 Machine::read_word(i64 addr) const {
  PP_CHECK(addr >= 0 && addr % 8 == 0 &&
               static_cast<std::size_t>(addr / 8) < memory_.size(),
           "read_word: bad address " + std::to_string(addr));
  return memory_[static_cast<std::size_t>(addr / 8)];
}

void Machine::write_word(i64 addr, i64 value) {
  PP_CHECK(addr >= 0 && addr % 8 == 0 &&
               static_cast<std::size_t>(addr / 8) < memory_.size(),
           "write_word: bad address " + std::to_string(addr));
  memory_[static_cast<std::size_t>(addr / 8)] = value;
}

i64 Machine::mem_load(i64 addr) {
  if (addr < 0 || addr % 8 != 0 ||
      static_cast<std::size_t>(addr / 8) >= memory_.size())
    fatal("load trap at address " + std::to_string(addr));
  return memory_[static_cast<std::size_t>(addr / 8)];
}

void Machine::mem_store(i64 addr, i64 value) {
  if (addr < 0 || addr % 8 != 0 ||
      static_cast<std::size_t>(addr / 8) >= memory_.size())
    fatal("store trap at address " + std::to_string(addr));
  memory_[static_cast<std::size_t>(addr / 8)] = value;
}

u64 Machine::access_cost(i64 addr) {
  u64 line = static_cast<u64>(addr) / cost_.line_bytes;
  u64 num_sets = cost_.cache_lines / cost_.ways;
  u64 set = (line % num_sets) * cost_.ways;
  // LRU within the set: ways are kept most-recent-first.
  for (u64 w = 0; w < cost_.ways; ++w) {
    if (cache_tags_[set + w] == line) {
      // Move to front.
      for (u64 k = w; k > 0; --k) cache_tags_[set + k] = cache_tags_[set + k - 1];
      cache_tags_[set] = line;
      return 1;
    }
  }
  ++stats_.cache_misses;
  for (u64 k = cost_.ways - 1; k > 0; --k)
    cache_tags_[set + k] = cache_tags_[set + k - 1];
  cache_tags_[set] = line;
  return 1 + cost_.miss_penalty;
}

RunResult Machine::run(const std::string& entry, const std::vector<i64>& args,
                       u64 max_steps) {
  const ir::Function* ef = module_.find_function(entry);
  PP_CHECK(ef != nullptr, "entry function '" + entry + "' not found");
  PP_CHECK(static_cast<int>(args.size()) == ef->num_args,
           "entry argument count mismatch");

  stats_ = RunStats{};
  stats_.per_function_instrs.assign(module_.functions.size(), 0);
  std::fill(cache_tags_.begin(), cache_tags_.end(), ~0ull);

  std::vector<Frame> stack;
  stack.push_back({ef->id, 0, 0, ir::kNoReg, CodeRef{}, {}});
  stack.back().regs.assign(static_cast<std::size_t>(ef->num_regs), 0);
  std::copy(args.begin(), args.end(), stack.back().regs.begin());

  if (observer_) observer_->on_local_jump(ef->id, 0);

  i64 exit_value = 0;
  u64 steps = 0;
  bool truncated = false;
  bool cancelled = false;
  while (!stack.empty()) {
    Frame& fr = stack.back();
    const ir::Function& f = module_.functions[static_cast<std::size_t>(fr.func)];
    const ir::BasicBlock& bb = f.blocks[static_cast<std::size_t>(fr.block)];
    const ir::Instr& in = bb.instrs[static_cast<std::size_t>(fr.instr)];

    if (++steps > max_steps) {
      // Degrade, don't die: a step-capped run yields partial stats and a
      // truncation status instead of discarding everything collected.
      truncated = true;
      break;
    }
    // Cancellation checkpoint: fixed step cadence, so a token fired before
    // the run truncates at the same step ordinal at every thread count.
    if (cancel_ != nullptr && (steps & 2047u) == 0 && cancel_->poll()) {
      truncated = true;
      cancelled = true;
      break;
    }
    ++stats_.instructions;
    ++stats_.per_function_instrs[static_cast<std::size_t>(fr.func)];
    ++stats_.cycles;
    if (ir::op_is_fp(in.op)) ++stats_.fp_ops;

    InstrEvent ev;
    ev.ref = {fr.func, fr.block, fr.instr};
    ev.instr = &in;

    auto& regs = fr.regs;
    auto set = [&](ir::Reg r, i64 v) {
      regs[static_cast<std::size_t>(r)] = v;
      ev.result = v;
      ev.has_result = true;
    };
    auto get = [&](ir::Reg r) { return regs[static_cast<std::size_t>(r)]; };

    int next_block = -1;  // >= 0: jump within function
    bool advanced = false;

    switch (in.op) {
      case ir::Op::kConst:
      case ir::Op::kFConst:
        set(in.dst, in.imm);
        break;
      case ir::Op::kMov:
        set(in.dst, get(in.a));
        break;
      case ir::Op::kAdd: set(in.dst, wrap_add(get(in.a), get(in.b))); break;
      case ir::Op::kSub: set(in.dst, wrap_sub(get(in.a), get(in.b))); break;
      case ir::Op::kMul: set(in.dst, wrap_mul(get(in.a), get(in.b))); break;
      case ir::Op::kDiv: {
        i64 d = get(in.b);
        if (d == 0) fatal("division by zero");
        set(in.dst, get(in.a) / d);
        break;
      }
      case ir::Op::kRem: {
        i64 d = get(in.b);
        if (d == 0) fatal("remainder by zero");
        set(in.dst, get(in.a) % d);
        break;
      }
      case ir::Op::kAddI: set(in.dst, wrap_add(get(in.a), in.imm)); break;
      case ir::Op::kMulI: set(in.dst, wrap_mul(get(in.a), in.imm)); break;
      case ir::Op::kAnd: set(in.dst, get(in.a) & get(in.b)); break;
      case ir::Op::kOr: set(in.dst, get(in.a) | get(in.b)); break;
      case ir::Op::kXor: set(in.dst, get(in.a) ^ get(in.b)); break;
      case ir::Op::kShl:
        set(in.dst, get(in.a) << (get(in.b) & 63));
        break;
      case ir::Op::kShr:
        set(in.dst, static_cast<i64>(static_cast<u64>(get(in.a)) >>
                                     (get(in.b) & 63)));
        break;
      case ir::Op::kCmpEq: set(in.dst, get(in.a) == get(in.b)); break;
      case ir::Op::kCmpNe: set(in.dst, get(in.a) != get(in.b)); break;
      case ir::Op::kCmpLt: set(in.dst, get(in.a) < get(in.b)); break;
      case ir::Op::kCmpLe: set(in.dst, get(in.a) <= get(in.b)); break;
      case ir::Op::kCmpGt: set(in.dst, get(in.a) > get(in.b)); break;
      case ir::Op::kCmpGe: set(in.dst, get(in.a) >= get(in.b)); break;
      case ir::Op::kFAdd:
        set(in.dst, as_bits(as_double(get(in.a)) + as_double(get(in.b))));
        break;
      case ir::Op::kFSub:
        set(in.dst, as_bits(as_double(get(in.a)) - as_double(get(in.b))));
        break;
      case ir::Op::kFMul:
        set(in.dst, as_bits(as_double(get(in.a)) * as_double(get(in.b))));
        break;
      case ir::Op::kFDiv:
        set(in.dst, as_bits(as_double(get(in.a)) / as_double(get(in.b))));
        break;
      case ir::Op::kI2F:
        set(in.dst, as_bits(static_cast<double>(get(in.a))));
        break;
      case ir::Op::kF2I:
        set(in.dst, static_cast<i64>(as_double(get(in.a))));
        break;
      case ir::Op::kLoad: {
        i64 addr = get(in.a) + in.imm;
        ev.address = addr;
        ++stats_.loads;
        stats_.cycles += access_cost(addr) - 1;
        set(in.dst, mem_load(addr));
        break;
      }
      case ir::Op::kStore: {
        i64 addr = get(in.a) + in.imm;
        ev.address = addr;
        ++stats_.stores;
        stats_.cycles += access_cost(addr) - 1;
        mem_store(addr, get(in.b));
        break;
      }
      case ir::Op::kBr:
        next_block = static_cast<int>(in.imm);
        break;
      case ir::Op::kBrCond:
        next_block = static_cast<int>(get(in.a) != 0 ? in.imm : in.imm2);
        break;
      case ir::Op::kCall: {
        ++stats_.calls;
        const ir::Function& callee =
            module_.functions[static_cast<std::size_t>(in.imm)];
        if (observer_) observer_->on_instr(ev);
        if (observer_) observer_->on_call(ev.ref, callee.id);
        Frame nf;
        nf.func = callee.id;
        nf.block = 0;
        nf.instr = 0;
        nf.ret_dst = in.dst;
        nf.callsite = ev.ref;
        nf.regs.assign(static_cast<std::size_t>(callee.num_regs), 0);
        for (std::size_t i = 0; i < in.args.size(); ++i)
          nf.regs[i] = get(in.args[i]);
        ++fr.instr;  // resume after the call upon return
        stack.push_back(std::move(nf));
        advanced = true;
        break;
      }
      case ir::Op::kRet: {
        i64 rv = in.a == ir::kNoReg ? 0 : get(in.a);
        ev.result = rv;
        ev.has_result = in.a != ir::kNoReg;
        if (observer_) observer_->on_instr(ev);
        int callee_id = fr.func;
        CodeRef site = fr.callsite;
        ir::Reg dst = fr.ret_dst;
        stack.pop_back();
        if (stack.empty()) {
          exit_value = rv;
        } else {
          if (observer_) observer_->on_return(callee_id, site);
          if (dst != ir::kNoReg)
            stack.back().regs[static_cast<std::size_t>(dst)] = rv;
        }
        advanced = true;
        break;
      }
    }

    if (in.op != ir::Op::kCall && in.op != ir::Op::kRet) {
      if (observer_) observer_->on_instr(ev);
      if (next_block >= 0) {
        fr.block = next_block;
        fr.instr = 0;
        if (observer_) observer_->on_local_jump(fr.func, next_block);
      } else if (!advanced) {
        ++fr.instr;
      }
    }
  }

  RunResult res;
  res.exit_value = exit_value;
  res.stats = stats_;
  res.truncated = truncated;
  if (cancelled)
    res.truncate_reason =
        std::string("cancelled (") + cancel_->reason_name() + ")";
  else if (truncated)
    res.truncate_reason =
        "VM step limit (" + std::to_string(max_steps) + ") exceeded";
  return res;
}

}  // namespace pp::vm
