// Hot-path trace compaction: a Ball-Larus multi-iteration path cache
// (D'Elia & Demetrescu, arXiv 1304.5197). A loop iteration whose block
// sequence repeats an already-recorded acyclic path — and whose observed
// values and addresses follow the recorded per-iteration recurrences —
// does not need per-instruction processing: the cache swallows its events
// and counts a trip, and the run's whole effect is replayed in bulk when
// the run ends (PathHost::expand_path_run). Any mismatch (data-dependent
// control, a non-affine value/address, a call, an inner loop, a trap)
// falls back to the interpreted slow path at exactly the diverging event.
//
// The cache is driven by its owner (ddg::DdgBuilder), which tees the
// loop-event stream at it and consults it first on every raw event while
// a run is armed. Layering: pp_vm sits below pp_cfg, so the Ball-Larus
// numbering itself (cfg::LoopPaths) is reached through PathHost hooks.
//
// Template life cycle per (func, loop, path id):
//   record    one fully-observed pure iteration becomes the template
//             (instruction refs, statement ids, observed values);
//   learn     the next consecutive iteration of the same path yields the
//             per-iteration strides (value/address recurrences);
//   arm       from then on, each re-recorded slow iteration refreshes the
//             bases and arms a compressed run;
//   guard     armed events must match ref-for-ref; kAffine slots must
//             reproduce base + stride·trip (64-bit wrapping), kCollect
//             slots are captured verbatim (always correct, never bails);
//   demote    a kAffine slot that bails out an immature run (< 3 trips)
//             is permanently demoted to kCollect — structurally irregular
//             values stop killing runs, while a loop-exit compare that
//             fails once per loop completion stays affine.
#pragma once

#include <map>
#include <tuple>
#include <vector>

#include "vm/vm.hpp"

namespace pp::vm {

enum class PathValClass : std::uint8_t {
  kNone,     ///< no value in this position (no result / not a memory op)
  kAffine,   ///< guarded recurrence base + stride·trip (wrapping)
  kCollect,  ///< captured per trip, replayed verbatim
};

/// One template position: an instruction event or a local jump.
struct PathSlot {
  CodeRef ref{};
  const ir::Instr* instr = nullptr;
  int stmt = -1;  ///< owner's statement id, captured at record time
  bool is_jump = false;
  int jump_dst = -1;
  bool has_result = false;
  bool is_mem = false;
  PathValClass vclass = PathValClass::kNone;
  PathValClass aclass = PathValClass::kNone;
  /// Recurrence state: value/address observed in the last slow iteration
  /// (the run's trip 0 predicts base + stride, wrapping).
  i64 vbase = 0, vstride = 0;
  i64 abase = 0, astride = 0;
  int collect_v = -1;  ///< collect-stream index (vclass == kCollect)
  int collect_a = -1;  ///< collect-stream index (aclass == kCollect)
};

struct PathTemplate {
  int func = -1, loop = -1, header = -1;
  u64 path_id = 0;
  bool strides_known = false;
  u64 last_epoch = 0;  ///< loop-entry epoch of the last slow recording
  u64 last_iter = 0;   ///< iteration index within that epoch
  std::vector<PathSlot> slots;
  std::size_t instr_slots = 0;  ///< non-jump slots
  int n_collect = 0;            ///< live collect streams
};

/// Live state of one armed run, handed to the host at flush time: `trips`
/// complete iterations, then the first `pos` slots (`prefix_instr_slots`
/// of them instructions) of one more partial iteration.
struct PathRun {
  u64 trips = 0;
  std::size_t pos = 0;
  std::size_t prefix_instr_slots = 0;
  /// Per collect index: one value per trip, plus one more for streams
  /// whose slot lies inside the partial prefix.
  std::vector<std::vector<i64>> collect;
  /// Per slot: predicted value/address of the current iteration (kAffine).
  std::vector<i64> vnext, anext;
};

struct PathCacheStats {
  u64 path_hits = 0;          ///< compressed (swallowed) iterations
  u64 path_bailouts = 0;      ///< armed runs ended by a divergence
  u64 events_compressed = 0;  ///< instruction events swallowed
  u64 templates_created = 0;
  u64 runs_armed = 0;
};

/// Owner-side hooks: Ball-Larus numbering lookups (record time) and the
/// bulk replay of a finished run (flush time). expand_path_run is always
/// called BEFORE the event that caused the bailout reaches the slow path,
/// so the owner's state is exact when that event processes.
class PathHost {
 public:
  virtual ~PathHost() = default;
  virtual bool path_loop_usable(int func, int loop) = 0;
  virtual bool path_edge_increment(int func, int loop, int from, int to,
                                   u64* inc) = 0;
  virtual void expand_path_run(const PathTemplate& t, const PathRun& run) = 0;
};

class PathCache {
 public:
  explicit PathCache(PathHost& host) : host_(host) {}

  bool armed() const { return tmpl_ != nullptr; }

  /// Armed fast path: returns true when the event was swallowed into the
  /// run. False means the run (if any) was flushed and the caller must
  /// process the event through the slow path.
  bool consume(const InstrEvent& ev);
  /// Local jump while armed; call BEFORE the loop-event machine processes
  /// the jump (a flush must see pre-jump owner state). The jump itself is
  /// never swallowed — the owner always forwards it to the loop-event
  /// machine, keeping IIV/context state live through compressed runs.
  void consume_jump(int func, int dst_bb);

  /// Slow-path capture: call at the end of the owner's instruction
  /// handling with the computed statement id. No-op unless the innermost
  /// tracked loop is recording a pure iteration.
  void observe_instr(const InstrEvent& ev, int stmt);

  /// Loop-event tee (owner translates cfg::LoopEvent kinds; the cache
  /// never sees cfg types). Call AFTER the loop-event machine applied the
  /// event. kCall/kRet/recursive kinds all map to impure().
  void loop_enter(int func, int loop, int header);
  void loop_iterate(int func, int loop);
  void loop_exit();
  void block_event(int func, int block);
  void impure();

  /// External flush: trap, stream end, cancellation. Safe when idle.
  void flush();

  const PathCacheStats& stats() const { return stats_; }

 private:
  /// One live CFG loop being watched; mirrors the loop-event machine's
  /// CFG-loop stack exactly (enter pushes, exit pops). Only the top
  /// records or arms.
  struct Track {
    int func = -1, loop = -1, header = -1;
    bool numberable = false;
    u64 epoch = 0;
    u64 iter_index = 0;       ///< completed iterations since entry
    bool iter_valid = false;  ///< current iteration pure & seen from start
    bool at_start = false;    ///< awaiting the header block event
    u64 path_id = 0;
    int prev_block = -1;
  };

  static i64 wrap_add(i64 a, i64 b) {
    return static_cast<i64>(static_cast<u64>(a) + static_cast<u64>(b));
  }
  static i64 wrap_sub(i64 a, i64 b) {
    return static_cast<i64>(static_cast<u64>(a) - static_cast<u64>(b));
  }
  /// Result ops the recurrence guard tries first; everything else with a
  /// result (loads, FP bit patterns, conversions) starts as kCollect. A
  /// wrong guess costs performance only — demotion repairs it — never
  /// correctness: collected values replay verbatim.
  static bool affine_result_candidate(ir::Op op);

  void finish_iteration(Track& t);
  void arm(Track& t, PathTemplate& tp);
  /// End the armed run: expand through the host, account stats, demote
  /// the failing slot when the run died young, restore recording state.
  void end_run(bool bailout, std::size_t fail_slot, bool value_guard,
               bool addr_guard);

  PathHost& host_;
  PathCacheStats stats_;
  std::vector<Track> stack_;
  u64 epoch_counter_ = 0;

  // Recording scratch (top-of-stack iteration).
  std::vector<PathSlot> rec_;
  std::size_t rec_instr_slots_ = 0;

  std::map<std::tuple<int, int, u64>, PathTemplate> templates_;

  // Armed run.
  PathTemplate* tmpl_ = nullptr;
  PathRun run_;
};

}  // namespace pp::vm
