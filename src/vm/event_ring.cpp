#include "vm/event_ring.hpp"

#include <algorithm>
#include <exception>
#include <thread>
#include <utility>

namespace pp::vm {

void dispatch_event(const Event& ev, Observer& obs) {
  switch (ev.kind) {
    case Event::Kind::kLocalJump:
      obs.on_local_jump(ev.func, ev.dst_bb);
      return;
    case Event::Kind::kCall:
      obs.on_call(ev.ref, ev.func);
      return;
    case Event::Kind::kReturn:
      obs.on_return(ev.func, ev.ref);
      return;
    case Event::Kind::kInstr: {
      InstrEvent ie;
      ie.ref = ev.ref;
      ie.instr = ev.instr;
      ie.result = ev.result;
      ie.has_result = ev.has_result;
      ie.address = ev.address;
      obs.on_instr(ie);
      return;
    }
  }
}

EventRing::EventRing(std::size_t slots, std::size_t batch_capacity)
    : slots_(slots == 0 ? 1 : slots),
      batch_capacity_(batch_capacity == 0 ? 1 : batch_capacity) {}

std::vector<Event>& EventRing::acquire() {
  std::unique_lock<std::mutex> lk(mu_);
  if (count_ >= slots_.size() && !aborted_) ++stats_.producer_stalls;
  not_full_.wait(lk, [&] { return count_ < slots_.size() || aborted_; });
  std::vector<Event>& buf = slots_[tail_];
  buf.clear();  // capacity retained — recycled from a drained batch
  return buf;
}

void EventRing::commit() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (aborted_) return;  // consumer bailed: drop on the floor
    tail_ = (tail_ + 1) % slots_.size();
    ++count_;
    ++stats_.batches;
    stats_.max_occupancy = std::max<u64>(stats_.max_occupancy, count_);
  }
  not_empty_.notify_one();
}

void EventRing::close() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    closed_ = true;
  }
  not_empty_.notify_all();
}

bool EventRing::consume(std::vector<Event>& out) {
  std::unique_lock<std::mutex> lk(mu_);
  if (aborted_) return false;  // consumer side already closed
  if (count_ == 0 && !closed_) ++stats_.consumer_stalls;
  not_empty_.wait(lk, [&] { return count_ > 0 || closed_ || aborted_; });
  if (aborted_ || count_ == 0) return false;
  std::swap(out, slots_[head_]);  // drained vector goes back for reuse
  head_ = (head_ + 1) % slots_.size();
  --count_;
  lk.unlock();
  not_full_.notify_one();
  return true;
}

void EventRing::close_consumer() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    aborted_ = true;
  }
  // Wake BOTH sides: the producer may be parked in acquire() on a full
  // ring (the deadlock this call exists to break), and a second consume()
  // racing in must see the closure rather than wait forever.
  not_full_.notify_all();
  not_empty_.notify_all();
}

void RingWriter::push(const Event& ev) {
  if (buf_ == nullptr) buf_ = &ring_.acquire();
  buf_->push_back(ev);
  if (buf_->size() >= ring_.batch_capacity()) {
    ring_.commit();
    buf_ = nullptr;
  }
}

void RingWriter::flush() {
  if (buf_ != nullptr && !buf_->empty()) ring_.commit();
  buf_ = nullptr;
}

RunResult replay_threaded(
    Machine& m, const std::string& entry, const std::vector<i64>& args,
    u64 max_steps, Observer& downstream,
    const std::function<Observer*(Observer&)>& wrap_producer,
    std::size_t ring_slots, std::size_t batch_capacity, obs::Session* obs,
    support::CancelToken* cancel) {
  EventRing ring(ring_slots, batch_capacity);
  RingWriter writer(ring);
  Observer* head = &writer;
  if (wrap_producer) head = wrap_producer(writer);

  RunResult result;
  std::exception_ptr producer_error;
  m.set_observer(head);
  m.set_cancel(cancel);
  std::thread producer([&] {
    try {
      result = m.run(entry, args, max_steps);
    } catch (...) {
      producer_error = std::current_exception();
    }
    // Deliver the partial batch buffered before a trap/truncation — the
    // synchronous chain would have seen those events too.
    writer.flush();
    ring.close();
  });

  std::vector<Event> batch;
  u64 events_consumed = 0;
  try {
    while (ring.consume(batch)) {
      events_consumed += batch.size();
      for (const Event& ev : batch) dispatch_event(ev, downstream);
      // Batch-granular cancellation checkpoint: stop draining and unpark
      // the producer; it observes the token at its own step cadence and
      // finishes as a truncated run.
      if (cancel != nullptr && cancel->poll()) {
        ring.close_consumer();
        break;
      }
    }
  } catch (...) {
    ring.abort();
    producer.join();
    m.set_observer(nullptr);
    m.set_cancel(nullptr);
    throw;
  }
  producer.join();
  m.set_observer(nullptr);
  m.set_cancel(nullptr);
  if (obs != nullptr && obs->enabled()) {
    const EventRing::Stats rs = ring.stats();
    obs->add("ring.events_consumed", static_cast<i64>(events_consumed),
             obs::Stability::kTiming);
    obs->add("ring.batches", static_cast<i64>(rs.batches),
             obs::Stability::kTiming);
    obs->add("ring.producer_stalls", static_cast<i64>(rs.producer_stalls),
             obs::Stability::kTiming);
    obs->add("ring.consumer_stalls", static_cast<i64>(rs.consumer_stalls),
             obs::Stability::kTiming);
    obs->gauge_max("ring.max_occupancy", static_cast<i64>(rs.max_occupancy));
  }
  if (producer_error) std::rethrow_exception(producer_error);
  return result;
}

}  // namespace pp::vm
