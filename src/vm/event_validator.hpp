// Event-stream validation — the pipeline's first line of defense against a
// corrupted instrumentation stream (cf. "Parallel Binary Code Analysis",
// which treats malformed inputs as the common case). The validator sits
// between the event producer (the VM, or a fault-injecting wrapper) and a
// real observer (DynamicCfgBuilder, DdgBuilder) and forwards only a
// well-formed prefix: on the first malformed event it records a structured
// Diagnostic and silently drops everything after it, so downstream
// observers always see a consistent — possibly truncated — trace and the
// pipeline can still assemble a partial result.
//
// Checked invariants:
//  * function / basic-block / instruction ids are in range for the module,
//  * calls and returns balance (a return must match the innermost call),
//  * load/store effective addresses are non-negative and 8-byte aligned,
//  * instruction events advance monotonically: each frame retires
//    consecutive instructions, restarted only by an observed jump, call or
//    return (the VM's precise emission contract).
#pragma once

#include "support/budget.hpp"
#include "vm/vm.hpp"

namespace pp::vm {

class EventValidator : public Observer {
 public:
  /// Forward validated events to `inner`; record rejections in `diag`
  /// (nullable) under `stage`.
  EventValidator(const ir::Module& m, Observer* inner,
                 support::DiagnosticLog* diag = nullptr,
                 support::Stage stage = support::Stage::kDdg)
      : module_(m), inner_(inner), diag_(diag), stage_(stage) {}

  void on_local_jump(int func, int dst_bb) override;
  void on_call(CodeRef callsite, int callee) override;
  void on_return(int callee, CodeRef into) override;
  void on_instr(const InstrEvent& ev) override;

  /// False once a malformed event was seen (stream is truncated there).
  bool ok() const { return fault_.empty(); }
  const std::string& fault() const { return fault_; }

  /// Instruction events forwarded before any fault. The pipeline compares
  /// this against the VM's retired-instruction count to detect a silently
  /// truncated stream (e.g. an instrumentation layer that stopped
  /// forwarding without any malformed event).
  u64 instr_events() const { return instr_events_; }

  /// Open (unreturned) calls, including the entry frame once running.
  std::size_t frame_depth() const { return frames_.size(); }

 private:
  struct Frame {
    int func = -1;
    int block = -1;
    int next_instr = 0;  ///< expected instr index of the next event
    /// Instruction count of `block`, cached when the frame enters it (-1
    /// when the location is out of range). Lets on_instr accept the
    /// common in-sequence event with integer compares only, instead of
    /// re-indexing the module per event.
    int n_instrs = -1;
  };

  bool func_ok(int func) const;
  bool block_ok(int func, int block) const;
  /// Instruction count of the block, or -1 when out of range.
  int block_len(int func, int block) const;
  void reject(const std::string& reason);

  const ir::Module& module_;
  Observer* inner_;
  support::DiagnosticLog* diag_;
  support::Stage stage_;
  std::vector<Frame> frames_;
  std::string fault_;
  u64 instr_events_ = 0;
};

}  // namespace pp::vm
