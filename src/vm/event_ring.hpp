// Bounded SPSC event ring — overlaps VM execution with instrumentation
// consumption. The producer thread runs the Machine behind a RingWriter
// observer that records events into batch buffers; the consumer (the
// pipeline's calling thread) drains whole batches and replays them into
// the downstream observer chain (validator -> builders), which therefore
// stays single-threaded and sees the exact serial event order.
//
// The ring is batch-granular: synchronization cost is paid once per
// thousands of events, and batch vectors are recycled by swapping (the
// consumer's drained vector returns to the slot the producer will fill
// next), so the steady state allocates nothing.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <vector>

#include "obs/obs.hpp"
#include "vm/vm.hpp"

namespace pp::vm {

/// One instrumentation event, tagged; the flattened union of the four
/// Observer callbacks so a batch is a plain contiguous vector.
struct Event {
  enum class Kind : std::uint8_t { kLocalJump, kCall, kReturn, kInstr };
  Kind kind = Kind::kInstr;
  int func = -1;    ///< jump: func; call/return: callee
  int dst_bb = -1;  ///< jump: destination block
  CodeRef ref;      ///< call: callsite; return: landing site; instr: identity
  const ir::Instr* instr = nullptr;
  i64 result = 0;
  bool has_result = false;
  i64 address = 0;
};

/// Replay one recorded event into an observer.
void dispatch_event(const Event& ev, Observer& obs);

/// Bounded single-producer single-consumer ring of event batches.
class EventRing {
 public:
  explicit EventRing(std::size_t slots = 8, std::size_t batch_capacity = 4096);

  std::size_t batch_capacity() const { return batch_capacity_; }

  // -- producer side (exactly one thread) --
  /// Buffer for the next batch; blocks while the ring is full. The
  /// returned vector is empty with its previous capacity retained. After
  /// an abort() the buffer is a sink: commits are discarded silently so
  /// the producer can finish its run without special-casing.
  std::vector<Event>& acquire();
  /// Publish the buffer last returned by acquire().
  void commit();
  /// Producer is done (normal exit, trap, or truncation). Wakes the
  /// consumer; committed batches remain drainable.
  void close();

  // -- consumer side (exactly one thread) --
  /// Swap the oldest committed batch into `out`; blocks until a batch is
  /// available or the ring is closed and drained (then returns false).
  bool consume(std::vector<Event>& out);
  /// Consumer is done early — cancellation, a downstream trap, or any
  /// other early exit. A producer parked in acquire() on a full ring is
  /// unblocked, and everything it still commits is discarded silently, so
  /// the producer thread always runs to completion and can be joined
  /// without deadlock. Idempotent; safe to call from either side.
  void close_consumer();
  /// Consumer is bailing out (downstream threw): alias for
  /// close_consumer(), kept for the exception path's vocabulary.
  void abort() { close_consumer(); }

  /// Occupancy/stall accounting (self-observability). Counted inline under
  /// the ring mutex — no extra synchronization, no cost beyond an
  /// increment — and published to pp::obs by replay_threaded after the
  /// run. All values are timing-dependent.
  struct Stats {
    u64 batches = 0;          ///< batches committed by the producer
    u64 producer_stalls = 0;  ///< acquire() calls that found the ring full
    u64 consumer_stalls = 0;  ///< consume() calls that found the ring empty
    u64 max_occupancy = 0;    ///< high watermark of committed batches
  };
  Stats stats() const {
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
  }

 private:
  std::vector<std::vector<Event>> slots_;
  std::size_t batch_capacity_;
  std::size_t head_ = 0;   ///< next slot to consume
  std::size_t tail_ = 0;   ///< next slot to fill
  std::size_t count_ = 0;  ///< committed, unconsumed slots
  bool closed_ = false;
  bool aborted_ = false;
  Stats stats_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
};

/// Observer that records events into ring batches, committing each time a
/// batch fills. Call flush() after the run to publish the final partial
/// batch — events buffered up to a trap must still reach the consumer,
/// exactly as they would have in a synchronous chain.
class RingWriter final : public Observer {
 public:
  explicit RingWriter(EventRing& ring) : ring_(ring) {}

  void on_local_jump(int func, int dst_bb) override {
    Event ev;
    ev.kind = Event::Kind::kLocalJump;
    ev.func = func;
    ev.dst_bb = dst_bb;
    push(ev);
  }
  void on_call(CodeRef callsite, int callee) override {
    Event ev;
    ev.kind = Event::Kind::kCall;
    ev.ref = callsite;
    ev.func = callee;
    push(ev);
  }
  void on_return(int callee, CodeRef into) override {
    Event ev;
    ev.kind = Event::Kind::kReturn;
    ev.func = callee;
    ev.ref = into;
    push(ev);
  }
  void on_instr(const InstrEvent& ie) override {
    Event ev;
    ev.kind = Event::Kind::kInstr;
    ev.ref = ie.ref;
    ev.instr = ie.instr;
    ev.result = ie.result;
    ev.has_result = ie.has_result;
    ev.address = ie.address;
    push(ev);
  }

  void flush();

 private:
  void push(const Event& ev);

  EventRing& ring_;
  std::vector<Event>* buf_ = nullptr;
};

/// Run `m.run(entry, args, max_steps)` on a producer thread, streaming
/// its events through a bounded ring into `downstream` on the calling
/// thread. `wrap_producer`, when set, is called (on the calling thread,
/// before the producer starts) with the ring's writer and returns the
/// observer the Machine should drive — the pipeline uses it to interpose
/// the ChaosObserver in front of the ring, whose event-count-seeded
/// injection point thus lands identically to the serial chain. Producer
/// exceptions are rethrown on the calling thread after the ring drains
/// and the thread joined, so callers' existing trap handling — including
/// reading m.stats() afterwards — works unchanged.
/// `obs` (optional) receives the ring's occupancy/stall counters and the
/// consumed event count after the replay (accumulating adds: the pipeline
/// replays twice per run).
/// `cancel` (optional) makes the replay cooperatively cancellable: the
/// Machine polls it at its step cadence on the producer thread (the run
/// comes back truncated, reason "cancelled"), and the consumer checks it
/// between batches — on cancellation it stops draining via
/// close_consumer(), which also unparks a producer blocked on a full
/// ring, so a cancelled replay can never deadlock.
RunResult replay_threaded(
    Machine& m, const std::string& entry, const std::vector<i64>& args,
    u64 max_steps, Observer& downstream,
    const std::function<Observer*(Observer&)>& wrap_producer = {},
    std::size_t ring_slots = 8, std::size_t batch_capacity = 4096,
    obs::Session* obs = nullptr, support::CancelToken* cancel = nullptr);

}  // namespace pp::vm
