// Fault-injection harness for the instrumentation stream. A ChaosObserver
// wraps a real observer chain and corrupts the event stream at a
// seeded-RNG-chosen point: truncating it, fabricating an unmatched return,
// misaligning an effective address, or emitting out-of-range ids. It is
// the adversarial producer the EventValidator + stage-isolating pipeline
// are tested against (tests/core/fault_injection_test.cpp): every injected
// fault must surface as a diagnosed partial ProfileResult, never as an
// uncaught pp::Error or a silently-wrong report.
#pragma once

#include "vm/vm.hpp"

namespace pp::vm {

enum class FaultKind : std::uint8_t {
  kNone,             ///< pass-through (harness disabled)
  kTruncate,         ///< stop forwarding mid-stream
  kUnmatchedReturn,  ///< fabricate a return that matches no open call
  kMisalign,         ///< corrupt the next load/store effective address
  kBadFunc,          ///< jump event naming an out-of-range function id
  kBadBlock,         ///< jump event naming an out-of-range block id
};

const char* fault_kind_name(FaultKind k);

/// Service-level fault points — the failure surface pp::service adds on
/// top of the event-stream faults above. These don't corrupt events; they
/// fire a job's CancelToken (or shed it) at a deterministic structural
/// point, so cancellation paths are testable with byte-identical partial
/// reports at any thread count (unlike a wall-clock cancel, which lands
/// wherever the race does).
enum class ServiceFault : std::uint8_t {
  kNone,              ///< no service fault injected
  kCancelAtControl,   ///< cancel fired at the stage-1 boundary
  kCancelAtDdg,       ///< cancel fired at the stage-2 boundary
  kCancelAtFold,      ///< cancel fired at the fold boundary
  kCancelAtFeedback,  ///< cancel fired entering stage 4 (report/oracle)
  kDeadlineMidFold,   ///< deadline expires at a seeded fold merge position
  kQueueFull,         ///< service admission rejects as if the queue were full
};

const char* service_fault_name(ServiceFault f);

struct ChaosOptions {
  FaultKind kind = FaultKind::kNone;
  u64 seed = 1;          ///< drives the injection point deterministically
  u64 min_events = 8;    ///< earliest event ordinal eligible for injection
  u64 window = 64;       ///< point drawn uniformly from [min, min+window)
  /// Service fault point (independent of `kind`; needs a CancelToken on
  /// the run for every point except kQueueFull).
  ServiceFault service = ServiceFault::kNone;
};

class ChaosObserver : public Observer {
 public:
  ChaosObserver(Observer* inner, ChaosOptions opts);

  void on_local_jump(int func, int dst_bb) override;
  void on_call(CodeRef callsite, int callee) override;
  void on_return(int callee, CodeRef into) override;
  void on_instr(const InstrEvent& ev) override;

  bool injected() const { return injected_; }
  u64 trigger_event() const { return trigger_; }

 private:
  /// Advance the event counter; returns true when the fault fires now.
  bool tick();

  Observer* inner_;
  ChaosOptions opts_;
  u64 events_ = 0;
  u64 trigger_ = 0;
  bool armed_misalign_ = false;  ///< waiting for the next memory event
  bool injected_ = false;
  bool dead_ = false;  ///< truncation: drop everything from here on
  int cur_func_ = 0;   ///< last observed function (for kBadBlock)
};

}  // namespace pp::vm
