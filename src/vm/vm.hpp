// The polyprof virtual machine: executes mini-ISA modules and surfaces the
// instrumentation event stream that the paper obtains from QEMU plugins
// (control transfers for "Instrumentation I", per-instruction values and
// effective addresses for "Instrumentation II"). It also keeps a simple
// cache-aware cycle model used to report simulated speedups for the case
// studies (the stand-in for the paper's GFlop/s measurements).
#pragma once

#include <array>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "ir/ir.hpp"
#include "support/cancel.hpp"

namespace pp::vm {

/// Static identity of an instruction inside a module.
struct CodeRef {
  int func = -1;
  int block = -1;
  int instr = -1;
  bool operator==(const CodeRef&) const = default;
  auto operator<=>(const CodeRef&) const = default;
};

/// Per-instruction dynamic event (Instrumentation II).
struct InstrEvent {
  CodeRef ref;
  const ir::Instr* instr = nullptr;
  i64 result = 0;    ///< value produced (valid when instr writes a register)
  bool has_result = false;
  i64 address = 0;   ///< effective address (valid for load/store)
};

/// Instrumentation interface — the moral equivalent of the QEMU-plugin API
/// the paper extends [30]. Default implementations ignore everything, so
/// observers override only the events they need.
class Observer {
 public:
  virtual ~Observer() = default;
  /// Control transferred between blocks of the same function (jump event).
  virtual void on_local_jump(int func, int dst_bb) {
    (void)func;
    (void)dst_bb;
  }
  /// A call is being made; execution continues in the callee's entry block.
  virtual void on_call(CodeRef callsite, int callee) {
    (void)callsite;
    (void)callee;
  }
  /// A return from `callee` landing back in `into` (the callsite's block).
  virtual void on_return(int callee, CodeRef into) {
    (void)callee;
    (void)into;
  }
  /// Every retired instruction (including the control instructions above).
  virtual void on_instr(const InstrEvent& ev) { (void)ev; }
};

/// Aggregate execution statistics (drives the %ops/%Mops/%FPops columns of
/// the paper's Table 5 and the cycle model behind simulated speedups).
struct RunStats {
  u64 instructions = 0;
  u64 loads = 0;
  u64 stores = 0;
  u64 fp_ops = 0;
  u64 calls = 0;
  u64 cycles = 0;             ///< cost-model cycles (cache-aware)
  u64 cache_misses = 0;
  std::vector<u64> per_function_instrs;  ///< indexed by function id
};

/// Result of a VM run.
struct RunResult {
  i64 exit_value = 0;
  RunStats stats;
  /// The run stopped at the step cap instead of program exit. Partial
  /// stats are still valid — step-capped profiling reports partial
  /// results rather than dying (degrade-don't-die).
  bool truncated = false;
  std::string truncate_reason;
};

/// Cost-model configuration: a set-associative LRU cache (associativity
/// avoids the pathological aliasing a direct-mapped model shows when
/// same-sized arrays interleave).
struct CostModel {
  u64 cache_lines = 512;   ///< total lines (512 x 64B = 32 KiB)
  u64 line_bytes = 64;
  u64 ways = 8;
  u64 miss_penalty = 30;   ///< extra cycles on a miss (memory-bound model)
};

/// Interpreter for mini-ISA modules. Memory is a flat byte-addressable
/// space holding the module's data segment plus `extra_heap_bytes`.
class Machine {
 public:
  explicit Machine(const ir::Module& m, i64 extra_heap_bytes = 1 << 20);

  /// Install an observer (may be null to profile nothing).
  void set_observer(Observer* obs) { observer_ = obs; }
  void set_cost_model(const CostModel& cm) { cost_ = cm; }

  /// Cooperative cancellation: run() polls the token every ~2048 steps
  /// (same cadence at every thread count — a pre-fired token truncates at
  /// a deterministic step ordinal) and stops with a truncated RunResult,
  /// exactly like the step cap. May be null (default: never cancelled).
  void set_cancel(support::CancelToken* cancel) { cancel_ = cancel; }

  /// Run `entry` with the given arguments; throws pp::Error on traps
  /// (bad address, division by zero). Exhausting `max_steps` is NOT a
  /// trap: the run stops and returns a truncated RunResult.
  RunResult run(const std::string& entry, const std::vector<i64>& args = {},
                u64 max_steps = 500'000'000);

  /// Stats accumulated by the current/last run. Valid even after a trap
  /// unwound run() — the pipeline recovers partial accounting from here.
  const RunStats& stats() const { return stats_; }

  /// Direct word access for test setup/inspection (byte address, 8-aligned).
  i64 read_word(i64 addr) const;
  void write_word(i64 addr, i64 value);

  /// The full word-granular memory image (data segment + heap). Two runs
  /// computed the same observable state iff their images are identical —
  /// pp::transform's output-identity contract compares exactly this.
  std::span<const i64> memory_image() const { return memory_; }

 private:
  struct Frame {
    int func;
    int block;
    int instr;
    ir::Reg ret_dst;
    CodeRef callsite;  ///< where this frame was called from
    std::vector<i64> regs;
  };

  i64 mem_load(i64 addr);
  void mem_store(i64 addr, i64 value);
  u64 access_cost(i64 addr);

  const ir::Module& module_;
  std::vector<i64> memory_;  ///< word-granular backing store
  Observer* observer_ = nullptr;
  support::CancelToken* cancel_ = nullptr;
  CostModel cost_;
  std::vector<u64> cache_tags_;
  RunStats stats_;
};

}  // namespace pp::vm
