#include "vm/path_cache.hpp"

namespace pp::vm {
namespace {

/// Iterations with more recorded positions than this never become
/// templates: the per-iteration match cost and template memory would
/// outgrow the win (hot compactable paths are short by nature).
constexpr std::size_t kMaxSlots = 4096;

}  // namespace

bool PathCache::affine_result_candidate(ir::Op op) {
  switch (op) {
    case ir::Op::kConst:
    case ir::Op::kMov:
    case ir::Op::kAdd:
    case ir::Op::kSub:
    case ir::Op::kMul:
    case ir::Op::kAddI:
    case ir::Op::kMulI:
    case ir::Op::kAnd:
    case ir::Op::kOr:
    case ir::Op::kXor:
    case ir::Op::kShl:
    case ir::Op::kShr:
    case ir::Op::kCmpEq:
    case ir::Op::kCmpNe:
    case ir::Op::kCmpLt:
    case ir::Op::kCmpLe:
    case ir::Op::kCmpGt:
    case ir::Op::kCmpGe:
      return true;
    default:
      return false;
  }
}

bool PathCache::consume(const InstrEvent& ev) {
  PathTemplate& tp = *tmpl_;
  if (run_.pos >= tp.slots.size()) {
    // Structurally impossible (the last slot is the back-edge jump), but
    // never let a desync swallow events.
    end_run(true, run_.pos, false, false);
    return false;
  }
  PathSlot& slot = tp.slots[run_.pos];
  if (slot.is_jump || !(slot.ref == ev.ref)) {
    end_run(true, run_.pos, false, false);
    return false;
  }
  if (slot.vclass == PathValClass::kAffine &&
      ev.result != run_.vnext[run_.pos]) {
    end_run(true, run_.pos, true, false);
    return false;
  }
  if (slot.aclass == PathValClass::kAffine &&
      ev.address != run_.anext[run_.pos]) {
    end_run(true, run_.pos, false, true);
    return false;
  }
  if (slot.vclass == PathValClass::kCollect)
    run_.collect[static_cast<std::size_t>(slot.collect_v)].push_back(
        ev.result);
  if (slot.aclass == PathValClass::kCollect)
    run_.collect[static_cast<std::size_t>(slot.collect_a)].push_back(
        ev.address);
  ++run_.pos;
  ++run_.prefix_instr_slots;
  return true;
}

void PathCache::consume_jump(int func, int dst_bb) {
  PathTemplate& tp = *tmpl_;
  if (run_.pos >= tp.slots.size()) {
    end_run(true, run_.pos, false, false);
    return;
  }
  const PathSlot& slot = tp.slots[run_.pos];
  if (!slot.is_jump || func != tp.func || slot.jump_dst != dst_bb) {
    end_run(true, run_.pos, false, false);
    return;
  }
  ++run_.pos;
  if (run_.pos == tp.slots.size()) {
    // Back-edge matched: one more compressed iteration.
    ++run_.trips;
    if (!stack_.empty()) ++stack_.back().iter_index;
    run_.pos = 0;
    run_.prefix_instr_slots = 0;
    for (std::size_t i = 0; i < tp.slots.size(); ++i) {
      const PathSlot& s = tp.slots[i];
      if (s.vclass == PathValClass::kAffine)
        run_.vnext[i] = wrap_add(run_.vnext[i], s.vstride);
      if (s.aclass == PathValClass::kAffine)
        run_.anext[i] = wrap_add(run_.anext[i], s.astride);
    }
  }
}

void PathCache::end_run(bool bailout, std::size_t fail_slot, bool value_guard,
                        bool addr_guard) {
  PathTemplate& tp = *tmpl_;
  stats_.path_hits += run_.trips;
  stats_.events_compressed +=
      run_.trips * tp.instr_slots + run_.prefix_instr_slots;
  if (bailout) ++stats_.path_bailouts;
  if (run_.trips != 0 || run_.pos != 0) host_.expand_path_run(tp, run_);
  // Demote a guard that killed the run young: structurally irregular
  // values (hash mixes, data-dependent loads) stop ending runs, while a
  // guard that held for many trips (the loop-exit compare flipping on the
  // final iteration) keeps its affine fast path.
  if ((value_guard || addr_guard) && run_.trips < 3 &&
      fail_slot < tp.slots.size()) {
    PathSlot& s = tp.slots[fail_slot];
    if (value_guard && s.vclass == PathValClass::kAffine) {
      s.vclass = PathValClass::kCollect;
      s.collect_v = tp.n_collect++;
    }
    if (addr_guard && s.aclass == PathValClass::kAffine) {
      s.aclass = PathValClass::kCollect;
      s.collect_a = tp.n_collect++;
    }
  }
  const bool at_iteration_start = bailout && run_.pos == 0;
  tmpl_ = nullptr;
  if (stack_.empty()) return;
  Track& t = stack_.back();
  t.at_start = false;
  rec_.clear();
  rec_instr_slots_ = 0;
  if (at_iteration_start) {
    // The run died before consuming anything of the current iteration —
    // it is fully observable from here, so record it.
    t.iter_valid = true;
    t.path_id = 0;
    t.prev_block = t.header;
  } else {
    t.iter_valid = false;
  }
}

void PathCache::observe_instr(const InstrEvent& ev, int stmt) {
  if (armed() || stack_.empty()) return;
  Track& t = stack_.back();
  if (!t.numberable || !t.iter_valid) return;
  if (rec_.size() >= kMaxSlots) {
    t.iter_valid = false;
    rec_.clear();
    rec_instr_slots_ = 0;
    return;
  }
  PathSlot s;
  s.ref = ev.ref;
  s.instr = ev.instr;
  s.stmt = stmt;
  s.has_result = ev.has_result;
  s.is_mem = ir::op_is_memory(ev.instr->op);
  s.vbase = ev.result;
  s.abase = ev.address;
  rec_.push_back(s);
  ++rec_instr_slots_;
}

void PathCache::loop_enter(int func, int loop, int header) {
  if (armed()) end_run(true, SIZE_MAX, false, false);
  if (!stack_.empty()) stack_.back().iter_valid = false;
  Track t;
  t.func = func;
  t.loop = loop;
  t.header = header;
  t.numberable = host_.path_loop_usable(func, loop);
  t.epoch = ++epoch_counter_;
  t.at_start = t.numberable;
  stack_.push_back(t);
  rec_.clear();
  rec_instr_slots_ = 0;
}

void PathCache::loop_iterate(int func, int loop) {
  if (armed()) return;  // counted by consume_jump already
  if (stack_.empty()) return;
  Track& t = stack_.back();
  if (t.func != func || t.loop != loop) {
    // Desync (should not happen: the loop-event machine only iterates its
    // live top) — degrade to "never compact" rather than crash.
    t.iter_valid = false;
    return;
  }
  if (t.numberable && t.iter_valid) finish_iteration(t);
  ++t.iter_index;
  t.at_start = t.numberable;
  t.iter_valid = false;
  rec_.clear();
  rec_instr_slots_ = 0;
}

void PathCache::loop_exit() {
  if (armed()) end_run(true, SIZE_MAX, false, false);
  if (!stack_.empty()) stack_.pop_back();
  rec_.clear();
  rec_instr_slots_ = 0;
}

void PathCache::block_event(int func, int block) {
  if (armed() || stack_.empty()) return;
  Track& t = stack_.back();
  if (!t.numberable) return;
  if (t.at_start) {
    t.at_start = false;
    if (func == t.func && block == t.header) {
      t.iter_valid = true;
      t.path_id = 0;
      t.prev_block = t.header;
      rec_.clear();
      rec_instr_slots_ = 0;
    } else {
      t.iter_valid = false;
    }
    return;
  }
  if (!t.iter_valid) return;
  if (func != t.func) {
    t.iter_valid = false;
    return;
  }
  u64 inc = 0;
  if (rec_.size() >= kMaxSlots ||
      !host_.path_edge_increment(func, t.loop, t.prev_block, block, &inc)) {
    t.iter_valid = false;
    rec_.clear();
    rec_instr_slots_ = 0;
    return;
  }
  t.path_id += inc;
  PathSlot s;
  s.is_jump = true;
  s.jump_dst = block;
  rec_.push_back(s);
  t.prev_block = block;
}

void PathCache::impure() {
  if (armed()) end_run(true, SIZE_MAX, false, false);
  if (!stack_.empty()) stack_.back().iter_valid = false;
  rec_.clear();
  rec_instr_slots_ = 0;
}

void PathCache::flush() {
  if (armed()) end_run(false, SIZE_MAX, false, false);
  if (!stack_.empty()) stack_.back().iter_valid = false;
  rec_.clear();
  rec_instr_slots_ = 0;
}

void PathCache::finish_iteration(Track& t) {
  // Close the path with the back-edge increment and append the back-edge
  // jump slot, so an armed iteration is matched end to end.
  u64 inc = 0;
  if (rec_.empty() || rec_.size() >= kMaxSlots ||
      !host_.path_edge_increment(t.func, t.loop, t.prev_block, t.header,
                                 &inc))
    return;
  const u64 path_id = t.path_id + inc;
  PathSlot back;
  back.is_jump = true;
  back.jump_dst = t.header;
  rec_.push_back(back);

  auto key = std::make_tuple(t.func, t.loop, path_id);
  auto it = templates_.find(key);
  bool match = it != templates_.end() &&
               it->second.slots.size() == rec_.size();
  if (match) {
    const PathTemplate& tp = it->second;
    for (std::size_t i = 0; match && i < rec_.size(); ++i) {
      const PathSlot& a = tp.slots[i];
      const PathSlot& b = rec_[i];
      match = a.is_jump == b.is_jump && a.jump_dst == b.jump_dst &&
              a.ref == b.ref && a.stmt == b.stmt;
    }
  }
  if (!match) {
    // First sighting — or the same static path under a new interprocedural
    // context (different statement ids): (re)build the template from this
    // iteration; the next consecutive same-path iteration learns strides.
    PathTemplate tp;
    tp.func = t.func;
    tp.loop = t.loop;
    tp.header = t.header;
    tp.path_id = path_id;
    tp.last_epoch = t.epoch;
    tp.last_iter = t.iter_index;
    tp.slots = rec_;
    tp.instr_slots = rec_instr_slots_;
    for (PathSlot& s : tp.slots) {
      if (s.is_jump) continue;
      if (s.has_result)
        s.vclass = affine_result_candidate(s.instr->op)
                       ? PathValClass::kAffine
                       : PathValClass::kCollect;
      if (s.is_mem) s.aclass = PathValClass::kAffine;
      if (s.vclass == PathValClass::kCollect) s.collect_v = tp.n_collect++;
    }
    templates_[key] = std::move(tp);
    ++stats_.templates_created;
    return;
  }

  PathTemplate& tp = it->second;
  const bool consecutive =
      tp.last_epoch == t.epoch && tp.last_iter + 1 == t.iter_index;
  if (!tp.strides_known && consecutive) {
    for (std::size_t i = 0; i < tp.slots.size(); ++i) {
      PathSlot& s = tp.slots[i];
      if (s.is_jump) continue;
      s.vstride = wrap_sub(rec_[i].vbase, s.vbase);
      s.astride = wrap_sub(rec_[i].abase, s.abase);
    }
    tp.strides_known = true;
  }
  for (std::size_t i = 0; i < tp.slots.size(); ++i) {
    tp.slots[i].vbase = rec_[i].vbase;
    tp.slots[i].abase = rec_[i].abase;
  }
  tp.last_epoch = t.epoch;
  tp.last_iter = t.iter_index;
  if (tp.strides_known) arm(t, tp);
}

void PathCache::arm(Track& t, PathTemplate& tp) {
  (void)t;
  tmpl_ = &tp;
  run_.trips = 0;
  run_.pos = 0;
  run_.prefix_instr_slots = 0;
  run_.collect.resize(static_cast<std::size_t>(tp.n_collect));
  for (auto& c : run_.collect) c.clear();
  run_.vnext.assign(tp.slots.size(), 0);
  run_.anext.assign(tp.slots.size(), 0);
  for (std::size_t i = 0; i < tp.slots.size(); ++i) {
    const PathSlot& s = tp.slots[i];
    if (s.vclass == PathValClass::kAffine)
      run_.vnext[i] = wrap_add(s.vbase, s.vstride);
    if (s.aclass == PathValClass::kAffine)
      run_.anext[i] = wrap_add(s.abase, s.astride);
  }
  ++stats_.runs_armed;
}

}  // namespace pp::vm
