#include "vm/chaos.hpp"

namespace pp::vm {

namespace {

u64 splitmix64(u64 x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kNone: return "none";
    case FaultKind::kTruncate: return "truncate";
    case FaultKind::kUnmatchedReturn: return "unmatched-return";
    case FaultKind::kMisalign: return "misalign";
    case FaultKind::kBadFunc: return "bad-func";
    case FaultKind::kBadBlock: return "bad-block";
  }
  return "?";
}

const char* service_fault_name(ServiceFault f) {
  switch (f) {
    case ServiceFault::kNone: return "none";
    case ServiceFault::kCancelAtControl: return "cancel-at-control";
    case ServiceFault::kCancelAtDdg: return "cancel-at-ddg";
    case ServiceFault::kCancelAtFold: return "cancel-at-fold";
    case ServiceFault::kCancelAtFeedback: return "cancel-at-feedback";
    case ServiceFault::kDeadlineMidFold: return "deadline-mid-fold";
    case ServiceFault::kQueueFull: return "queue-full";
  }
  return "?";
}

ChaosObserver::ChaosObserver(Observer* inner, ChaosOptions opts)
    : inner_(inner), opts_(opts) {
  u64 span = opts_.window == 0 ? 1 : opts_.window;
  trigger_ = opts_.min_events + splitmix64(opts_.seed) % span;
}

bool ChaosObserver::tick() {
  if (injected_ || opts_.kind == FaultKind::kNone) return false;
  return ++events_ > trigger_;
}

void ChaosObserver::on_local_jump(int func, int dst_bb) {
  if (dead_) return;
  cur_func_ = func;
  if (tick()) {
    injected_ = true;
    switch (opts_.kind) {
      case FaultKind::kTruncate:
        dead_ = true;
        return;
      case FaultKind::kUnmatchedReturn:
        inner_->on_return(/*callee=*/1'000'000, CodeRef{func, dst_bb, 0});
        break;
      case FaultKind::kBadFunc:
        inner_->on_local_jump(10'000'019, 0);
        break;
      case FaultKind::kBadBlock:
        inner_->on_local_jump(cur_func_, 10'000'019);
        break;
      case FaultKind::kMisalign:
        armed_misalign_ = true;
        break;
      case FaultKind::kNone:
        break;
    }
  }
  inner_->on_local_jump(func, dst_bb);
}

void ChaosObserver::on_call(CodeRef callsite, int callee) {
  if (dead_) return;
  cur_func_ = callee;
  if (tick()) {
    injected_ = true;
    switch (opts_.kind) {
      case FaultKind::kTruncate:
        dead_ = true;
        return;
      case FaultKind::kUnmatchedReturn:
        inner_->on_return(/*callee=*/1'000'000, callsite);
        break;
      case FaultKind::kBadFunc:
        inner_->on_call(callsite, 10'000'019);
        return;  // the corrupted call replaces the real one
      case FaultKind::kBadBlock:
        inner_->on_local_jump(callsite.func, 10'000'019);
        break;
      case FaultKind::kMisalign:
        armed_misalign_ = true;
        break;
      case FaultKind::kNone:
        break;
    }
  }
  inner_->on_call(callsite, callee);
}

void ChaosObserver::on_return(int callee, CodeRef into) {
  if (dead_) return;
  cur_func_ = into.func;
  if (tick()) {
    injected_ = true;
    switch (opts_.kind) {
      case FaultKind::kTruncate:
        dead_ = true;
        return;
      case FaultKind::kUnmatchedReturn:
        inner_->on_return(/*callee=*/1'000'000, into);
        break;
      case FaultKind::kBadFunc:
        inner_->on_local_jump(10'000'019, 0);
        break;
      case FaultKind::kBadBlock:
        inner_->on_local_jump(cur_func_, 10'000'019);
        break;
      case FaultKind::kMisalign:
        armed_misalign_ = true;
        break;
      case FaultKind::kNone:
        break;
    }
  }
  inner_->on_return(callee, into);
}

void ChaosObserver::on_instr(const InstrEvent& ev) {
  if (dead_) return;
  if (tick()) {
    injected_ = true;
    switch (opts_.kind) {
      case FaultKind::kTruncate:
        dead_ = true;
        return;
      case FaultKind::kUnmatchedReturn:
        inner_->on_return(/*callee=*/1'000'000, ev.ref);
        break;
      case FaultKind::kBadFunc:
        inner_->on_local_jump(10'000'019, 0);
        break;
      case FaultKind::kBadBlock:
        inner_->on_local_jump(ev.ref.func, 10'000'019);
        break;
      case FaultKind::kMisalign:
        armed_misalign_ = true;
        break;
      case FaultKind::kNone:
        break;
    }
  }
  if (armed_misalign_ && ev.instr != nullptr &&
      ir::op_is_memory(ev.instr->op)) {
    armed_misalign_ = false;
    InstrEvent corrupted = ev;
    corrupted.address += 3;  // aligned + 3 is never 8-byte aligned
    inner_->on_instr(corrupted);
    return;
  }
  inner_->on_instr(ev);
}

}  // namespace pp::vm
