#include "transform/engine.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>

#include "ir/loop_nest.hpp"
#include "verify/oracle.hpp"
#include "verify/verifier.hpp"

namespace pp::transform {

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kInterchange: return "interchange";
    case Kind::kTile: return "tile";
    case Kind::kFuse: return "fuse";
  }
  return "?";
}

namespace {

std::string fmt2(double v) {
  char b[32];
  std::snprintf(b, sizeof b, "%.2f", v);
  return b;
}

// The CFG loop a context dimension iterates, or (-1,-1) when the
// dimension belongs to a recursive component.
std::pair<int, int> loop_of_dim(const iiv::ContextKey& ctx, std::size_t d) {
  if (d >= ctx.depth() || ctx.parts[d].empty()) return {-1, -1};
  const iiv::CtxElem& e = ctx.parts[d].back();
  if (e.kind != iiv::CtxElem::Kind::kLoop) return {-1, -1};
  return {e.func, e.id};
}

int dim_of_loop(const iiv::ContextKey& ctx, int func, int loop_id) {
  for (std::size_t d = 0; d < ctx.depth(); ++d) {
    auto [f, l] = loop_of_dim(ctx, d);
    if (f == func && l == loop_id) return static_cast<int>(d);
  }
  return -1;
}

// Longest shared context prefix of two statements: the loop dimensions
// both sit under (identical parts, element for element).
int common_prefix_dims(const iiv::ContextKey& a, const iiv::ContextKey& b) {
  std::size_t n = std::min(a.depth(), b.depth());
  for (std::size_t d = 0; d < n; ++d)
    if (a.parts[d] != b.parts[d]) return static_cast<int>(d);
  return static_cast<int>(n);
}

struct LoopStmts {
  std::vector<int> stmts;  ///< statement ids whose context contains the loop
  int dim = -1;            ///< consistent context dimension, -1 when mixed
};

// Per (func, cfg-loop) statement membership, derived from the contexts.
std::map<std::pair<int, int>, LoopStmts> map_loop_stmts(
    const fold::FoldedProgram& prog) {
  std::map<std::pair<int, int>, LoopStmts> out;
  for (std::size_t id = 0; id < prog.statements.size(); ++id) {
    const iiv::ContextKey& ctx = prog.statements[id].meta.context;
    for (std::size_t d = 0; d < ctx.depth(); ++d) {
      auto key = loop_of_dim(ctx, d);
      if (key.first < 0) continue;
      LoopStmts& ls = out[key];
      if (ls.stmts.empty())
        ls.dim = static_cast<int>(d);
      else if (ls.dim != static_cast<int>(d))
        ls.dim = -1;  // same loop reached at different depths (call paths)
      ls.stmts.push_back(static_cast<int>(id));
    }
  }
  return out;
}

std::string site_of(const ir::Function& f, int line) {
  std::ostringstream os;
  os << (f.source_file.empty() ? "<?>" : f.source_file) << ":" << line << " ("
     << f.name << ")";
  return os.str();
}

int header_line(const ir::Function& f, const ir::CountedLoop& l) {
  return f.block(l.header).instrs[0].line;
}

// ---------------------------------------------------------------------------
// Sinking legality: the instructions between an outer loop's body entry and
// its inner loop's init will re-execute once per inner iteration. Safe when
// each is pure (or a load no nest store may alias), its result feeds only
// the inner interior, and its operands are stable across inner iterations.
// ---------------------------------------------------------------------------

bool reads_register(const ir::Instr& in, ir::Reg r) {
  switch (in.op) {
    case ir::Op::kConst:
    case ir::Op::kFConst:
    case ir::Op::kBr:
      return false;
    case ir::Op::kStore:
      return in.a == r || in.b == r;
    case ir::Op::kCall:
      return std::find(in.args.begin(), in.args.end(), r) != in.args.end();
    default:
      return in.a == r || in.b == r;
  }
}

struct SinkCheck {
  bool ok = false;
  std::string why;
};

SinkCheck check_sinkable(const ir::Module& m, const fold::FoldedProgram& prog,
                         int func, const ir::CountedLoop& outer,
                         const ir::CountedLoop& inner) {
  SinkCheck r;
  const ir::Function& f = m.functions[static_cast<std::size_t>(func)];
  const ir::BasicBlock& b1 = f.block(inner.preheader);
  if (b1.instrs.size() <= 2) {
    r.ok = true;
    return r;
  }
  std::vector<int> nest = ir::loop_blocks(f, outer);
  nest.push_back(outer.header);
  std::set<int> nest_set(nest.begin(), nest.end());
  std::vector<int> inner_interior = ir::loop_blocks(f, inner);
  std::set<int> inner_set(inner_interior.begin(), inner_interior.end());
  const std::vector<int> control{outer.header, inner.header, outer.latch};

  // Statement lookup for the load/alias check.
  auto stmts_at = [&](int block, int instr) {
    std::vector<int> ids;
    for (std::size_t i = 0; i < prog.statements.size(); ++i) {
      const vm::CodeRef& c = prog.statements[i].meta.code;
      if (c.func == func && c.block == block && c.instr == instr)
        ids.push_back(static_cast<int>(i));
    }
    return ids;
  };
  auto is_nest_mem_stmt = [&](int id) {
    const auto& s = prog.stmt(id).meta;
    return s.code.func == func && nest_set.count(s.code.block) != 0 &&
           s.is_memory;
  };

  for (std::size_t idx = 0; idx + 1 < b1.instrs.size(); ++idx) {
    if (static_cast<int>(idx) == inner.init_index) continue;
    const ir::Instr& e = b1.instrs[idx];
    if (e.op == ir::Op::kStore || e.op == ir::Op::kCall ||
        ir::op_is_terminator(e.op) || e.dst == ir::kNoReg) {
      r.why = "body-entry instruction cannot be sunk (side effects)";
      return r;
    }
    // Result must not steer loop control or be redefined in the nest.
    for (int cb : control) {
      for (const ir::Instr& in : f.block(cb).instrs) {
        if (reads_register(in, e.dst)) {
          r.why = cb == outer.latch
                      ? "body-entry value consumed after the inner loop "
                        "(reduction register — needs array expansion)"
                      : "body-entry value feeds loop control";
          return r;
        }
      }
    }
    for (int nb : nest) {
      const ir::BasicBlock& bb = f.block(nb);
      for (std::size_t i = 0; i < bb.instrs.size(); ++i) {
        if (nb == inner.preheader && i == idx) continue;
        if (bb.instrs[i].dst == e.dst) {
          r.why = "sunk register redefined in the nest";
          return r;
        }
      }
    }
    // Operands must be inner-iteration invariant (the outer iv is fine:
    // it is exactly the value the instruction varied with before).
    for (ir::Reg q : {e.a, e.b}) {
      if (q == ir::kNoReg) continue;
      if (q == inner.iv) {
        r.why = "sunk instruction reads the inner induction variable";
        return r;
      }
      for (int ib : inner_interior) {
        for (const ir::Instr& in : f.block(ib).instrs) {
          if (in.dst == q) {
            r.why = "sunk operand written inside the inner loop";
            return r;
          }
        }
      }
    }
    if (e.op == ir::Op::kLoad) {
      // Re-executing the load is safe only when no store in the nest may
      // alias it — ask the folded dependences.
      for (int sid : stmts_at(inner.preheader, static_cast<int>(idx))) {
        for (const fold::FoldedDep& d : prog.deps) {
          if (d.kind == ddg::DepKind::kRegFlow) continue;
          bool touches = (d.src == sid && is_nest_mem_stmt(d.dst)) ||
                         (d.dst == sid && is_nest_mem_stmt(d.src));
          if (touches) {
            r.why = "sunk load aliases a store in the nest";
            return r;
          }
        }
      }
    }
  }
  r.ok = true;
  return r;
}

// ---------------------------------------------------------------------------
// Planning
// ---------------------------------------------------------------------------

struct PairCand {
  ir::CountedLoop outer, inner;
  int func = -1;
  int d_outer = -1, d_inner = -1;
  std::vector<int> region;       ///< statement ids under the outer loop
  std::vector<int> deep_stmts;   ///< memory stmts directly in the inner body
};

// Schedule-band legality for reordering dims [d_outer, d_inner] of every
// group that actually spans the inner dimension.
bool bands_permit(const feedback::RegionMetrics& mx, int d_outer, int d_inner,
                  const fold::FoldedProgram& prog, std::string* why) {
  if (!mx.analyzable) {
    *why = "region unanalyzable: " + mx.degrade_reason;
    return false;
  }
  for (const scheduler::GroupSchedule& g : mx.sched.groups) {
    bool spans = false;
    for (int id : g.stmts)
      if (prog.stmt(id).meta.depth > static_cast<std::size_t>(d_inner))
        spans = true;
    if (!spans) continue;
    if (!g.schedulable) {
      *why = "opaque dependences forced the identity schedule";
      return false;
    }
    if (!g.band_spans(static_cast<std::size_t>(d_outer),
                      static_cast<std::size_t>(d_inner))) {
      *why = "dimensions are not in one permutable band";
      return false;
    }
  }
  return true;
}

i64 trip_count(const fold::FoldedProgram& prog, const std::vector<int>& stmts,
               int dim) {
  for (int id : stmts) {
    const fold::FoldedStatement& s = prog.stmt(id);
    if (s.meta.depth <= static_cast<std::size_t>(dim)) continue;
    for (const poly::Piece& p : s.domain.pieces()) {
      auto b = p.domain.var_bounds(static_cast<std::size_t>(dim));
      if (b) return static_cast<i64>(b->second - b->first) + 1;
    }
  }
  return -1;
}

void plan_pairs(const ir::Module& m, const fold::FoldedProgram& prog,
                const cfg::ControlStructure& cs, const Options& opts,
                const std::map<std::pair<int, int>, LoopStmts>& loop_stmts,
                std::vector<Plan>* plans, std::vector<Refusal>* refusals) {
  for (const ir::Function& f : m.functions) {
    auto fit = cs.forests.find(f.id);
    if (fit == cs.forests.end()) continue;  // function never executed
    std::vector<ir::CountedLoop> loops = ir::find_counted_loops(f);
    for (const ir::CountedLoop& outer : loops) {
      for (const ir::CountedLoop& inner : loops) {
        if (outer.body != inner.preheader || inner.exit != outer.latch)
          continue;
        PairCand pc;
        pc.outer = outer;
        pc.inner = inner;
        pc.func = f.id;
        int lo = fit->second.loop_of_header(outer.header);
        int li = fit->second.loop_of_header(inner.header);
        if (lo < 0 || li < 0) continue;
        auto oit = loop_stmts.find({f.id, lo});
        auto iit = loop_stmts.find({f.id, li});
        if (oit == loop_stmts.end() || iit == loop_stmts.end()) continue;
        if (oit->second.dim < 0 || iit->second.dim < 0) continue;
        pc.d_outer = oit->second.dim;
        pc.d_inner = iit->second.dim;
        if (pc.d_inner != pc.d_outer + 1) continue;
        pc.region = oit->second.stmts;

        // Memory statements directly in the inner body drive the locality
        // model; deeper statements keep their own innermost dimension.
        double cost_now = 0.0, cost_swapped = 0.0;
        bool big_stride = false, reuse = false, orient_conflict = false;
        for (int id : iit->second.stmts) {
          const fold::FoldedStatement& s = prog.stmt(id);
          if (!s.meta.is_memory ||
              s.meta.depth != static_cast<std::size_t>(pc.d_inner) + 1)
            continue;
          pc.deep_stmts.push_back(id);
          auto si = s.stride_along(static_cast<std::size_t>(pc.d_inner));
          auto so = s.stride_along(static_cast<std::size_t>(pc.d_outer));
          double w = static_cast<double>(s.meta.executions);
          cost_now += w * feedback::access_cost(si);
          cost_swapped += w * feedback::access_cost(so);
          if (so && (*so >= 64 || *so <= -64)) big_stride = true;
          if ((si && *si == 0) || (so && *so == 0)) reuse = true;
          // Orientation conflict (the transpose pattern): the inner sweep
          // jumps a full line per step while the outer direction moves
          // within one — tiling turns the outer steps of each tile into
          // same-line hits, which neither loop order can (interchange only
          // moves the conflict to the other access). Complete on its own:
          // the big inner stride is the eviction driver.
          if (si && so && (*si >= 64 || *si <= -64) && *so != 0 &&
              *so * static_cast<i64>(opts.tile) <= 64 &&
              *so * static_cast<i64>(opts.tile) >= -64)
            orient_conflict = true;
        }
        if (pc.deep_stmts.empty()) continue;
        // Tiling profits only when the nest re-touches data — a stencil
        // neighborhood (two accesses with the same linear part, shifted by
        // a small constant) or a dimension-broadcast (stride 0) — with an
        // outer-direction stride wide enough that the untiled sweep keeps
        // evicting it. A single-visit sweep (fill/copy) only pays the
        // extra loop overhead.
        for (std::size_t x = 0; x < pc.deep_stmts.size() && !reuse; ++x) {
          const poly::AffineMap* ax =
              prog.stmt(pc.deep_stmts[x]).affine_access();
          if (ax == nullptr || ax->out_dim() != 1) continue;
          for (std::size_t y = x + 1; y < pc.deep_stmts.size(); ++y) {
            const poly::AffineMap* ay =
                prog.stmt(pc.deep_stmts[y]).affine_access();
            if (ay == nullptr || ay->out_dim() != 1 ||
                ay->in_dim() != ax->in_dim())
              continue;
            poly::AffineExpr delta = ax->output(0) - ay->output(0);
            i64 k = delta.const_term();
            if (delta.is_constant() && k != 0 && k > -4096 && k < 4096) {
              reuse = true;
              break;
            }
          }
        }
        const bool tile_reuse = (big_stride && reuse) || orient_conflict;

        const std::string site = site_of(f, header_line(f, outer));
        const std::string lines = "loops @" +
                                  std::to_string(header_line(f, outer)) +
                                  "/@" + std::to_string(header_line(f, inner));
        bool want_interchange = cost_swapped < cost_now * 0.999;
        bool want_tile = tile_reuse &&
                         trip_count(prog, pc.deep_stmts, pc.d_outer) >=
                             2 * opts.tile &&
                         trip_count(prog, pc.deep_stmts, pc.d_inner) >=
                             2 * opts.tile;
        if (!want_interchange && !want_tile) continue;

        SinkCheck sink = check_sinkable(m, prog, f.id, outer, inner);
        if (!sink.ok) {
          refusals->push_back(
              {site, (want_interchange ? "interchange " : "tile ") + lines,
               sink.why});
          continue;
        }

        feedback::Region region;
        region.name = site;
        region.stmts = pc.region;
        feedback::AnalyzeOptions aopts;
        aopts.sched.pool = opts.pool;
        aopts.sched.cancel = opts.cancel;
        feedback::RegionMetrics mx = feedback::analyze_region(prog, region, aopts);
        std::string why;
        if (!bands_permit(mx, pc.d_outer, pc.d_inner, prog, &why)) {
          refusals->push_back(
              {site, (want_interchange ? "interchange " : "tile ") + lines,
               why});
          continue;
        }
        bool par = false;
        for (const auto& g : mx.sched.groups)
          if (static_cast<std::size_t>(pc.d_outer) < g.levels.size() &&
              g.levels[static_cast<std::size_t>(pc.d_outer)].parallel)
            par = true;

        if (want_interchange) {
          Plan p;
          p.kind = Kind::kInterchange;
          p.func = f.id;
          p.outer_header = outer.header;
          p.inner_header = inner.header;
          p.predicted = std::max(mx.est_speedup, 1.0);
          p.parallel_outer = par;
          p.site = site;
          p.desc = "interchange " + lines;
          p.mx = mx;
          plans->push_back(std::move(p));
        }
        if (want_tile && mx.tile_depth >= 2) {
          Plan p;
          p.kind = Kind::kTile;
          p.func = f.id;
          p.outer_header = outer.header;
          p.inner_header = inner.header;
          p.tile = opts.tile;
          p.predicted = 1.0;  // the stride model cannot see tile reuse
          p.parallel_outer = par;
          p.site = site;
          p.desc = "tile " + std::to_string(opts.tile) + "x" +
                   std::to_string(opts.tile) + " " + lines;
          p.mx = mx;
          plans->push_back(std::move(p));
        }
      }
    }
  }
}

poly::AffineExpr embed(const poly::AffineExpr& e, std::size_t off,
                       std::size_t total) {
  poly::AffineExpr out(total);
  for (std::size_t i = 0; i < e.dim(); ++i) out.coeff(off + i) = e.coeff(i);
  out.const_term() = e.const_term();
  return out;
}

// Shadow memory keeps only the LAST reader of each cell, so an anti
// dependence from an earlier-loop read to a later-loop overwrite can be
// missing from the folded DDG entirely — typically the overwrite's own
// reload was the cell's last reader. (Flow and output edges are complete:
// every read knows its producer and writes chain through last-writer.)
// Re-derive the missing edges from the folded address maps: a read in
// loop A and a write in loop B touching the same address within one
// shared-prefix iteration must satisfy i_write >= i_read at the fused
// dimension, or fusion moves the overwrite before the read.
bool fusion_anti_ok(const fold::FoldedProgram& prog,
                    const std::set<int>& a_stmts,
                    const std::set<int>& b_stmts, std::string* why) {
  for (int ra : a_stmts) {
    const fold::FoldedStatement& rs = prog.stmt(ra);
    if (!rs.meta.is_memory || rs.meta.writes_memory) continue;
    for (int wb : b_stmts) {
      const fold::FoldedStatement& ws = prog.stmt(wb);
      if (!ws.meta.writes_memory) continue;
      int pfx = common_prefix_dims(rs.meta.context, ws.meta.context);
      for (const poly::Piece& pr : rs.addresses.pieces()) {
        if (!pr.label_exact || pr.label_fn.out_dim() != 1) {
          *why = "read address not exactly affine — anti edges unknowable";
          return false;
        }
        for (const poly::Piece& pw : ws.addresses.pieces()) {
          if (!pw.label_exact || pw.label_fn.out_dim() != 1) {
            *why = "write address not exactly affine — anti edges unknowable";
            return false;
          }
          const std::size_t na = pr.domain.dim();
          const std::size_t nb = pw.domain.dim();
          const std::size_t tot = na + nb;
          if (na <= static_cast<std::size_t>(pfx) ||
              nb <= static_cast<std::size_t>(pfx)) {
            *why = "access outside the fused dimension — shape unusable";
            return false;
          }
          poly::Polyhedron p(tot);
          for (const poly::Constraint& c : pr.domain.constraints())
            p.add({embed(c.expr, 0, tot), c.equality});
          for (const poly::Constraint& c : pw.domain.constraints())
            p.add({embed(c.expr, na, tot), c.equality});
          p.add_eq0(embed(pr.label_fn.output(0), 0, tot) -
                    embed(pw.label_fn.output(0), na, tot));
          for (int c = 0; c < pfx; ++c)
            p.add_eq0(poly::AffineExpr::var(tot, static_cast<std::size_t>(c)) -
                      poly::AffineExpr::var(tot, na + static_cast<std::size_t>(c)));
          // A violating instance: the write's fused-dim iteration strictly
          // precedes the read's.
          p.add_ge0(poly::AffineExpr::var(tot, static_cast<std::size_t>(pfx)) -
                    poly::AffineExpr::var(tot, na + static_cast<std::size_t>(pfx)) -
                    1);
          if (!p.is_integer_empty()) {
            *why =
                "fusing would overwrite a cell before an earlier loop's read "
                "(anti dependence not in the folded DDG)";
            return false;
          }
        }
      }
    }
  }
  return true;
}

// Polyhedral fusion legality: every dependence from loop A into loop B
// must keep a non-negative distance at the fused level once the shared
// outer dimensions are pinned equal.
bool fusion_deps_ok(const fold::FoldedProgram& prog,
                    const std::set<int>& a_stmts, int a_func, int a_loop,
                    const std::set<int>& b_stmts, int b_func, int b_loop,
                    std::string* why) {
  for (const fold::FoldedDep& d : prog.deps) {
    bool fwd = a_stmts.count(d.src) != 0 && b_stmts.count(d.dst) != 0;
    bool bwd = b_stmts.count(d.src) != 0 && a_stmts.count(d.dst) != 0;
    if (!fwd && !bwd) continue;
    const iiv::ContextKey& sctx = prog.stmt(d.src).meta.context;
    const iiv::ContextKey& dctx = prog.stmt(d.dst).meta.context;
    int pfx = common_prefix_dims(sctx, dctx);
    if (dim_of_loop(sctx, fwd ? a_func : b_func, fwd ? a_loop : b_loop) !=
            pfx ||
        dim_of_loop(dctx, fwd ? b_func : a_func, fwd ? b_loop : a_loop) !=
            pfx) {
      *why = "dependence crosses incompatible nesting";
      return false;
    }
    for (const poly::Piece& p : d.relation.pieces()) {
      if (!p.label_exact) {
        *why = "dependence labels over-approximate";
        return false;
      }
      const std::size_t n = p.domain.dim();
      if (p.label_fn.in_dim() != n ||
          p.label_fn.out_dim() <= static_cast<std::size_t>(pfx) ||
          n <= static_cast<std::size_t>(pfx)) {
        *why = "dependence relation shape unusable";
        return false;
      }
      poly::Polyhedron dom = p.domain;
      for (int c = 0; c < pfx; ++c)
        dom.add_eq0(poly::AffineExpr::var(n, static_cast<std::size_t>(c)) -
                    p.label_fn.output(static_cast<std::size_t>(c)));
      if (bwd) {
        // src sits in the textually-later loop: the dependence crosses
        // iterations of a shared surrounding loop (src@t -> dst@t' with
        // t' > t), which fusion preserves — it never reorders the shared
        // dims. An instance with ALL shared dims equal would mean the
        // later loop fed the earlier one inside a single outer iteration;
        // only an over-approximated relation can claim that, and fusing
        // on top of it would be unsound.
        if (dom.minimize(poly::AffineExpr::var(n, 0) * 0).status !=
            poly::LpStatus::kInfeasible) {
          *why = "backward dependence not separated by the shared loops";
          return false;
        }
        continue;
      }
      poly::AffineExpr diff =
          poly::AffineExpr::var(n, static_cast<std::size_t>(pfx)) -
          p.label_fn.output(static_cast<std::size_t>(pfx));
      poly::BoundResult r = dom.minimize(diff);
      if (r.status == poly::LpStatus::kInfeasible) continue;
      if (r.status != poly::LpStatus::kOptimal || r.value < Rat(0)) {
        *why = "fused dependence distance may be negative";
        return false;
      }
    }
  }
  return true;
}

void plan_fusion(const ir::Module& m, const fold::FoldedProgram& prog,
                 const cfg::ControlStructure& cs, const Options& opts,
                 const std::map<std::pair<int, int>, LoopStmts>& loop_stmts,
                 std::vector<Plan>* plans, std::vector<Refusal>* refusals) {
  (void)opts;
  for (const ir::Function& f : m.functions) {
    auto fit = cs.forests.find(f.id);
    if (fit == cs.forests.end()) continue;
    std::vector<ir::CountedLoop> loops = ir::find_counted_loops(f);
    std::map<int, const ir::CountedLoop*> by_preheader;
    for (const ir::CountedLoop& l : loops)
      by_preheader[l.preheader] = &l;

    std::set<int> consumed;
    for (const ir::CountedLoop& first : loops) {
      if (consumed.count(first.header) != 0) continue;
      if (!first.init_is_const) continue;
      // Grow the maximal compatible adjacent chain starting here.
      std::vector<const ir::CountedLoop*> chain{&first};
      for (;;) {
        auto it = by_preheader.find(chain.back()->exit);
        if (it == by_preheader.end()) break;
        const ir::CountedLoop* nxt = it->second;
        if (!nxt->init_is_const || nxt->begin != first.begin ||
            nxt->step != first.step || nxt->cmp_op != first.cmp_op ||
            nxt->bound != first.bound)
          break;
        chain.push_back(nxt);
      }
      if (chain.size() < 2) continue;
      for (const ir::CountedLoop* l : chain) consumed.insert(l->header);

      // Per-loop statement sets + dims; every loop must be profiled.
      std::vector<std::set<int>> stmts;
      std::vector<int> cfg_ids;
      bool usable = true;
      for (const ir::CountedLoop* l : chain) {
        int lid = fit->second.loop_of_header(l->header);
        auto sit = lid < 0 ? loop_stmts.end() : loop_stmts.find({f.id, lid});
        if (sit == loop_stmts.end() || sit->second.dim < 0) {
          usable = false;
          break;
        }
        cfg_ids.push_back(lid);
        stmts.emplace_back(sit->second.stmts.begin(),
                           sit->second.stmts.end());
      }
      if (!usable) continue;

      // Profitability: some memory dependence actually crosses the chain —
      // fusing independent loops moves no data closer.
      bool mem_dep = false;
      for (const fold::FoldedDep& d : prog.deps) {
        if (d.kind == ddg::DepKind::kRegFlow) continue;
        for (std::size_t i = 0; i < stmts.size() && !mem_dep; ++i)
          for (std::size_t j = 0; j < stmts.size(); ++j)
            if (i != j && stmts[i].count(d.src) != 0 &&
                stmts[j].count(d.dst) != 0) {
              mem_dep = true;
              break;
            }
        if (mem_dep) break;
      }
      if (!mem_dep) continue;

      const std::string site = site_of(f, header_line(f, first));
      std::string desc = "fuse " + std::to_string(chain.size()) +
                         " loops @" + std::to_string(header_line(f, first));
      std::string why;
      bool legal = true;
      for (std::size_t i = 0; i < chain.size() && legal; ++i)
        for (std::size_t j = i + 1; j < chain.size() && legal; ++j)
          if (!fusion_deps_ok(prog, stmts[i], f.id, cfg_ids[i], stmts[j],
                              f.id, cfg_ids[j], &why) ||
              !fusion_anti_ok(prog, stmts[i], stmts[j], &why))
            legal = false;
      if (!legal) {
        refusals->push_back({site, desc, why});
        continue;
      }
      Plan p;
      p.kind = Kind::kFuse;
      p.func = f.id;
      for (const ir::CountedLoop* l : chain) p.chain.push_back(l->header);
      p.site = site;
      p.desc = std::move(desc);
      plans->push_back(std::move(p));
    }
  }
}

// ---------------------------------------------------------------------------
// Application + measurement
// ---------------------------------------------------------------------------

struct RunOut {
  bool ok = false;
  std::string why;
  i64 exit_value = 0;
  u64 cycles = 0;
  std::vector<i64> image;
};

RunOut run_module(const ir::Module& m, const std::string& entry,
                  const std::vector<i64>& args, const Options& opts) {
  RunOut out;
  vm::Machine mach(m);
  mach.set_cost_model(opts.cost);
  mach.set_cancel(opts.cancel);
  try {
    vm::RunResult rr = mach.run(entry, args, opts.max_steps);
    if (rr.truncated) {
      out.why = "run truncated: " + rr.truncate_reason;
      return out;
    }
    out.exit_value = rr.exit_value;
    out.cycles = rr.stats.cycles;
    std::span<const i64> img = mach.memory_image();
    out.image.assign(img.begin(), img.end());
    out.ok = true;
  } catch (const Error& e) {
    out.why = std::string("run trapped: ") + e.what();
  }
  return out;
}

bool apply_plan(ir::Module& mc, const Plan& p, std::string* why) {
  ir::Function& f = mc.functions[static_cast<std::size_t>(p.func)];
  switch (p.kind) {
    case Kind::kInterchange:
    case Kind::kTile: {
      std::optional<ir::CountedLoop> o =
          ir::match_counted_loop(f, p.outer_header);
      std::optional<ir::CountedLoop> i =
          ir::match_counted_loop(f, p.inner_header);
      if (!o || !i) {
        *why = "loop pair no longer matches";
        return false;
      }
      if (!ir::sink_preheader_extras(f, *o, *i)) {
        *why = "could not sink body-entry instructions";
        return false;
      }
      bool done = p.kind == Kind::kInterchange
                      ? ir::interchange(f, *o, *i)
                      : ir::tile2(f, *o, *i, p.tile);
      if (!done) *why = "structural rewrite preconditions failed";
      return done;
    }
    case Kind::kFuse: {
      if (p.chain.size() < 2) {
        *why = "fusion chain too short";
        return false;
      }
      for (std::size_t k = 1; k < p.chain.size(); ++k) {
        std::optional<ir::CountedLoop> a =
            ir::match_counted_loop(f, p.chain[0]);
        std::optional<ir::CountedLoop> b =
            ir::match_counted_loop(f, p.chain[k]);
        if (!a || !b) {
          *why = "fusion chain loop no longer matches";
          return false;
        }
        if (!ir::fuse(f, *a, *b)) {
          *why = "structural fusion preconditions failed";
          return false;
        }
      }
      return true;
    }
  }
  *why = "unknown transformation kind";
  return false;
}

void finish_module(ir::Module& mc) {
  for (ir::Function& f : mc.functions)
    if (!f.blocks.empty()) ir::remove_unreachable_blocks(f);
}

}  // namespace

std::vector<Plan> plan(const ir::Module& m, const fold::FoldedProgram& prog,
                       const cfg::ControlStructure& cs, const Options& opts) {
  std::vector<Plan> plans;
  std::vector<Refusal> refusals;  // surfaced again by apply_and_measure
  std::map<std::pair<int, int>, LoopStmts> loop_stmts = map_loop_stmts(prog);
  plan_pairs(m, prog, cs, opts, loop_stmts, &plans, &refusals);
  plan_fusion(m, prog, cs, opts, loop_stmts, &plans, &refusals);
  // Planning-time refusals travel as sentinel plans so a single report
  // shows both populations; apply_and_measure re-derives the diagnostics.
  (void)refusals;
  return plans;
}

EngineReport apply_and_measure(const ir::Module& m,
                               const fold::FoldedProgram& prog,
                               const std::vector<Plan>& plans,
                               const std::string& entry,
                               const std::vector<i64>& args,
                               const Options& opts) {
  EngineReport rep;
  rep.ran = true;
  RunOut base = run_module(m, entry, args, opts);
  if (!base.ok) {
    rep.skipped_reason = "baseline " + base.why;
    return rep;
  }
  rep.baseline_cycles = base.cycles;

  struct Measured {
    const Plan* plan = nullptr;
    double speedup = 1.0;
    bool identical = false;
  };
  std::vector<Measured> survivors;

  for (const Plan& p : plans) {
    if (opts.cancel != nullptr && opts.cancel->cancelled()) {
      rep.skipped_reason = std::string("cancelled (") +
                           opts.cancel->reason_name() + ")";
      break;
    }
    // Oracle gate: a schedule whose claims the must-evidence contradicts
    // is refused with a diagnostic, never applied.
    if (!opts.force && opts.run_oracle && !p.mx.sched.groups.empty()) {
      feedback::RegionMetrics mx = p.mx;
      verify::ClaimReport claims =
          verify::check_parallel_claims(prog, mx, /*downgrade=*/true,
                                        opts.pool);
      if (!claims.ok()) {
        std::ostringstream why;
        why << "oracle contradicted the schedule ("
            << claims.witnesses.size() << " witness(es), "
            << claims.downgraded_levels << " level(s) downgraded): "
            << claims.witnesses.front().message;
        rep.refused.push_back({p.site, p.desc, why.str()});
        continue;
      }
    }
    ir::Module mc = m;
    std::string why;
    if (!apply_plan(mc, p, &why)) {
      rep.refused.push_back({p.site, p.desc, why});
      continue;
    }
    finish_module(mc);
    verify::VerifyReport vr = verify::verify_module(mc);
    if (!vr.ok()) {
      rep.violations.push_back(p.site + "  " + p.desc +
                               ": rewritten module failed verification: " +
                               vr.issues.front().str());
      continue;
    }
    RunOut after = run_module(mc, entry, args, opts);
    if (!after.ok) {
      rep.violations.push_back(p.site + "  " + p.desc +
                               ": transformed " + after.why);
      continue;
    }
    Applied a;
    a.kind = p.kind;
    a.site = p.site;
    a.desc = p.desc;
    a.predicted = p.predicted;
    a.parallel_outer = p.parallel_outer;
    a.cycles_before = base.cycles;
    a.cycles_after = after.cycles;
    a.measured = after.cycles == 0
                     ? 1.0
                     : static_cast<double>(base.cycles) /
                           static_cast<double>(after.cycles);
    a.output_identical =
        after.exit_value == base.exit_value && after.image == base.image;
    if (!a.output_identical)
      rep.violations.push_back(p.site + "  " + p.desc +
                               ": output differs from the original run — "
                               "the applied schedule is unsound");
    if (a.output_identical)
      survivors.push_back({&p, a.measured, true});
    rep.applied.push_back(std::move(a));
  }

  // Combined module: all surviving plans together; when interchange and
  // tiling both survived on the same pair, keep the better-measured one.
  std::map<std::pair<int, int>, Measured> best_per_pair;
  std::vector<const Plan*> selected;
  for (const Measured& s : survivors) {
    if (s.speedup <= 1.0) continue;  // the combined module takes wins only
    if (s.plan->kind == Kind::kFuse) {
      selected.push_back(s.plan);
      continue;
    }
    auto key = std::make_pair(s.plan->func, s.plan->outer_header);
    auto it = best_per_pair.find(key);
    if (it == best_per_pair.end() || s.speedup > it->second.speedup)
      best_per_pair[key] = s;
  }
  for (const auto& [key, s] : best_per_pair) selected.push_back(s.plan);

  if (!selected.empty() && rep.skipped_reason.empty()) {
    ir::Module combined = m;
    for (const Plan* p : selected) {
      ir::Module snapshot = combined;
      std::string why;
      if (!apply_plan(combined, *p, &why)) combined = std::move(snapshot);
    }
    finish_module(combined);
    verify::VerifyReport vr = verify::verify_module(combined);
    if (!vr.ok()) {
      rep.violations.push_back(
          "combined module failed verification: " + vr.issues.front().str());
      rep.combined_identical = false;
    } else {
      RunOut after = run_module(combined, entry, args, opts);
      if (!after.ok) {
        rep.violations.push_back("combined transformed " + after.why);
        rep.combined_identical = false;
      } else {
        rep.combined_identical = after.exit_value == base.exit_value &&
                                 after.image == base.image;
        rep.combined_speedup =
            after.cycles == 0 ? 1.0
                              : static_cast<double>(base.cycles) /
                                    static_cast<double>(after.cycles);
        if (!rep.combined_identical)
          rep.violations.push_back(
              "combined module output differs from the original run");
      }
    }
  }
  return rep;
}

EngineReport run(const ir::Module& m, const fold::FoldedProgram& prog,
                 const cfg::ControlStructure& cs, const std::string& entry,
                 const std::vector<i64>& args, const Options& opts) {
  // Planning-time refusals (sink/band/dependence) must reach the report:
  // re-run the planners with a local refusal list and merge.
  std::vector<Plan> plans;
  std::vector<Refusal> refusals;
  std::map<std::pair<int, int>, LoopStmts> loop_stmts = map_loop_stmts(prog);
  plan_pairs(m, prog, cs, opts, loop_stmts, &plans, &refusals);
  plan_fusion(m, prog, cs, opts, loop_stmts, &plans, &refusals);
  EngineReport rep = apply_and_measure(m, prog, plans, entry, args, opts);
  rep.refused.insert(rep.refused.begin(), refusals.begin(), refusals.end());
  return rep;
}

std::string render_section(const EngineReport& r) {
  std::ostringstream os;
  if (!r.ran || !r.skipped_reason.empty()) {
    os << "skipped ("
       << (r.skipped_reason.empty() ? "engine did not run" : r.skipped_reason)
       << ")\n";
    return os.str();
  }
  os << "baseline: " << r.baseline_cycles
     << " cycles under the transform cost model\n";
  if (r.applied.empty()) {
    os << "applied: none\n";
  } else {
    os << "applied:\n";
    for (const Applied& a : r.applied) {
      os << "  " << a.site << "  " << a.desc << "  predicted "
         << fmt2(a.predicted) << "x  measured " << fmt2(a.measured) << "x ("
         << a.cycles_before << " -> " << a.cycles_after << " cycles)  output "
         << (a.output_identical ? "identical" : "DIFFERS");
      if (a.parallel_outer) os << "  [parallel outer]";
      os << "\n";
    }
  }
  if (!r.refused.empty()) {
    os << "refused:\n";
    for (const Refusal& f : r.refused)
      os << "  " << f.site << "  " << f.desc << ": " << f.reason << "\n";
  }
  if (r.violations.empty()) {
    os << "soundness: every applied schedule left program output "
          "byte-identical\n";
  } else {
    for (const std::string& v : r.violations)
      os << "SOUNDNESS VIOLATION: " << v << "\n";
  }
  if (!r.applied.empty())
    os << "combined: " << fmt2(r.combined_speedup) << "x  output "
       << (r.combined_identical ? "identical" : "DIFFERS") << "\n";
  return os.str();
}

}  // namespace pp::transform
