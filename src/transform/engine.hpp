// The transformation engine — the paper's "close the loop" payoff. The
// profiler's feedback names schedules (interchange, tile, fuse,
// parallelize); this engine regenerates the corresponding mini-ISA loop
// nests from the scheduler's per-group schedule tree, re-runs the
// transformed module under the VM cost model, and reports the *measured*
// simulated speedup next to the scheduler's prediction.
//
// Hard correctness contract: every applied transformation must leave the
// observable program output byte-identical to the original run (exit value
// plus the full VM memory image). A transformation that breaks identity is
// reported as a soundness violation — never silently dropped — because it
// means either the profiler's dependence information or the engine's
// legality reasoning is wrong, which is exactly what an end-to-end check
// exists to catch.
//
// Legality sources, in order:
//   1. register-level structure: ir::match_counted_loop's side conditions;
//   2. the scheduler's bands (GroupSchedule::band_spans) for interchange
//      and tiling — the dimensions must sit in one permutable band;
//   3. the engine's own polyhedral check over the folded dependence
//      relations for fusion (the scheduler never row-checks dependences
//      between distributed loops);
//   4. the differential oracle (verify::check_parallel_claims): a schedule
//      whose claims the must-evidence contradicts is refused with a
//      diagnostic, not applied.
#pragma once

#include <string>
#include <vector>

#include "cfg/loop_events.hpp"
#include "feedback/metrics.hpp"
#include "fold/folded_ddg.hpp"
#include "ir/ir.hpp"
#include "support/cancel.hpp"
#include "support/thread_pool.hpp"
#include "vm/vm.hpp"

namespace pp::transform {

enum class Kind : std::uint8_t { kInterchange, kTile, kFuse };
const char* kind_name(Kind k);

/// One planned rewrite. Interchange/tile name a perfectly-nestable loop
/// pair by header block; fusion names an adjacent chain of headers in
/// textual order. `mx` carries the schedule backing the plan so the oracle
/// can re-validate the claims right before the rewrite is applied.
struct Plan {
  Kind kind{};
  int func = -1;
  int outer_header = -1;
  int inner_header = -1;
  i64 tile = 4;
  std::vector<int> chain;
  double predicted = 1.0;
  bool parallel_outer = false;
  std::string site;  ///< "file:line (function)"
  std::string desc;  ///< "interchange loops @7/@9"
  feedback::RegionMetrics mx;
};

struct Options {
  /// Tile size for both dimensions of a 2-D tiling.
  i64 tile = 4;
  /// Cost model for the A/B measurement runs. Defaults to a deliberately
  /// small cache (16 lines x 64 B, 2-way, 1 KiB) so the locality effects
  /// the transformations target show up at mini-Rodinia problem sizes; the
  /// profiling pipeline itself keeps the VM's default model.
  vm::CostModel cost{16, 64, 2, 40};
  u64 max_steps = 500'000'000;
  /// Re-validate each plan's schedule claims through the differential
  /// oracle before applying; a contradicted schedule is refused.
  bool run_oracle = true;
  /// Test hook: apply plans without the oracle gate, so the output-
  /// identity check can be demonstrated catching an illegal rewrite.
  bool force = false;
  support::CancelToken* cancel = nullptr;
  support::ThreadPool* pool = nullptr;
};

/// One transformation that was applied and measured.
struct Applied {
  Kind kind{};
  std::string site;
  std::string desc;
  double predicted = 1.0;
  double measured = 1.0;   ///< baseline cycles / transformed cycles
  bool output_identical = false;
  bool parallel_outer = false;
  u64 cycles_before = 0;
  u64 cycles_after = 0;
};

/// One plan the engine declined to apply, with the diagnostic.
struct Refusal {
  std::string site;
  std::string desc;
  std::string reason;
};

struct EngineReport {
  bool ran = false;
  std::string skipped_reason;  ///< set when the engine could not run at all
  std::vector<Applied> applied;
  std::vector<Refusal> refused;
  /// Output-identity failures — the soundness contract. Non-empty means a
  /// transformation the legality reasoning accepted changed program
  /// output; such a result must never be trusted.
  std::vector<std::string> violations;
  u64 baseline_cycles = 0;
  /// All surviving transformations applied together.
  double combined_speedup = 1.0;
  bool combined_identical = true;
  bool ok() const { return violations.empty(); }
};

/// Plan every transformation the profile justifies: per-nest interchange /
/// tiling candidates gated by the scheduler's bands, and fusion chains
/// gated by the engine's polyhedral dependence check. Requires a profile
/// folded with anti/output tracking (DdgOptions::track_anti_output) —
/// without WAR/WAW edges the legality checks would be unsound.
std::vector<Plan> plan(const ir::Module& m, const fold::FoldedProgram& prog,
                       const cfg::ControlStructure& cs, const Options& opts);

/// Apply each plan to its own copy of the module, verify the rewritten
/// module (pp::verify::verify_module), A/B-run original vs transformed
/// under the cost model, and enforce the output-identity contract. A final
/// combined module stacks every surviving plan.
EngineReport apply_and_measure(const ir::Module& m,
                               const fold::FoldedProgram& prog,
                               const std::vector<Plan>& plans,
                               const std::string& entry,
                               const std::vector<i64>& args,
                               const Options& opts);

/// plan() + apply_and_measure().
EngineReport run(const ir::Module& m, const fold::FoldedProgram& prog,
                 const cfg::ControlStructure& cs, const std::string& entry,
                 const std::vector<i64>& args, const Options& opts);

/// Deterministic body of the report's `-- transformation --` section.
std::string render_section(const EngineReport& r);

}  // namespace pp::transform
