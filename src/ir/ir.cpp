#include "ir/ir.hpp"

#include <sstream>
#include <cstdio>
#include <unordered_set>

namespace pp::ir {

const char* op_name(Op op) {
  switch (op) {
    case Op::kConst: return "const";
    case Op::kMov: return "mov";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kMul: return "mul";
    case Op::kDiv: return "div";
    case Op::kRem: return "rem";
    case Op::kAddI: return "addi";
    case Op::kMulI: return "muli";
    case Op::kAnd: return "and";
    case Op::kOr: return "or";
    case Op::kXor: return "xor";
    case Op::kShl: return "shl";
    case Op::kShr: return "shr";
    case Op::kCmpEq: return "cmpeq";
    case Op::kCmpNe: return "cmpne";
    case Op::kCmpLt: return "cmplt";
    case Op::kCmpLe: return "cmple";
    case Op::kCmpGt: return "cmpgt";
    case Op::kCmpGe: return "cmpge";
    case Op::kFAdd: return "fadd";
    case Op::kFSub: return "fsub";
    case Op::kFMul: return "fmul";
    case Op::kFDiv: return "fdiv";
    case Op::kFConst: return "fconst";
    case Op::kI2F: return "i2f";
    case Op::kF2I: return "f2i";
    case Op::kLoad: return "load";
    case Op::kStore: return "store";
    case Op::kBr: return "br";
    case Op::kBrCond: return "brcond";
    case Op::kCall: return "call";
    case Op::kRet: return "ret";
  }
  return "?";
}

bool op_is_terminator(Op op) {
  return op == Op::kBr || op == Op::kBrCond || op == Op::kRet;
}

bool op_is_fp(Op op) {
  switch (op) {
    case Op::kFAdd:
    case Op::kFSub:
    case Op::kFMul:
    case Op::kFDiv:
      return true;
    default:
      return false;
  }
}

bool op_is_memory(Op op) { return op == Op::kLoad || op == Op::kStore; }

Function& Module::add_function(const std::string& name, int num_args,
                               const std::string& source_file) {
  Function f;
  f.id = static_cast<int>(functions.size());
  f.name = name;
  f.num_args = num_args;
  f.num_regs = num_args;  // args arrive in r0..r(num_args-1)
  f.source_file = source_file;
  functions.push_back(std::move(f));
  return functions.back();
}

i64 Module::add_global(const std::string& name, i64 size_bytes) {
  PP_CHECK(size_bytes > 0, "global must have positive size");
  i64 addr = data_segment_size;
  i64 aligned = (size_bytes + 7) / 8 * 8;
  globals.push_back({name, addr, aligned, {}});
  data_segment_size += aligned;
  return addr;
}

i64 Module::add_global_init(const std::string& name, std::vector<i64> words) {
  i64 addr = add_global(name, static_cast<i64>(words.size()) * 8);
  globals.back().init_words = std::move(words);
  return addr;
}

Function* Module::find_function(const std::string& name) {
  for (auto& f : functions)
    if (f.name == name) return &f;
  return nullptr;
}

const Function* Module::find_function(const std::string& name) const {
  return const_cast<Module*>(this)->find_function(name);
}

const Global* Module::find_global(const std::string& name) const {
  for (const auto& g : globals)
    if (g.name == name) return &g;
  return nullptr;
}

namespace {

void verify_function(const Module& m, const Function& f) {
  auto fail = [&](const std::string& why) {
    fatal("verify: function '" + f.name + "': " + why);
  };
  if (f.blocks.empty()) fail("has no blocks");
  auto check_reg = [&](Reg r, const char* what) {
    if (r < 0 || r >= f.num_regs)
      fail(std::string("bad ") + what + " register r" + std::to_string(r));
  };
  auto check_bb = [&](i64 id) {
    if (id < 0 || id >= static_cast<i64>(f.blocks.size()))
      fail("branch to nonexistent block " + std::to_string(id));
  };
  for (std::size_t bi = 0; bi < f.blocks.size(); ++bi) {
    const BasicBlock& bb = f.blocks[bi];
    if (bb.id != static_cast<int>(bi)) fail("block id out of order");
    if (bb.instrs.empty()) fail("block '" + bb.label + "' is empty");
    for (std::size_t ii = 0; ii < bb.instrs.size(); ++ii) {
      const Instr& in = bb.instrs[ii];
      bool last = ii + 1 == bb.instrs.size();
      if (op_is_terminator(in.op) != last)
        fail("terminator placement in block '" + bb.label + "'");
      switch (in.op) {
        case Op::kConst:
        case Op::kFConst:
          check_reg(in.dst, "dst");
          break;
        case Op::kMov:
        case Op::kI2F:
        case Op::kF2I:
          check_reg(in.dst, "dst");
          check_reg(in.a, "src");
          break;
        case Op::kAddI:
        case Op::kMulI:
          check_reg(in.dst, "dst");
          check_reg(in.a, "src");
          break;
        case Op::kAdd: case Op::kSub: case Op::kMul: case Op::kDiv:
        case Op::kRem: case Op::kAnd: case Op::kOr: case Op::kXor:
        case Op::kShl: case Op::kShr:
        case Op::kCmpEq: case Op::kCmpNe: case Op::kCmpLt:
        case Op::kCmpLe: case Op::kCmpGt: case Op::kCmpGe:
        case Op::kFAdd: case Op::kFSub: case Op::kFMul: case Op::kFDiv:
          check_reg(in.dst, "dst");
          check_reg(in.a, "lhs");
          check_reg(in.b, "rhs");
          break;
        case Op::kLoad:
          check_reg(in.dst, "dst");
          check_reg(in.a, "addr");
          break;
        case Op::kStore:
          check_reg(in.a, "addr");
          check_reg(in.b, "value");
          break;
        case Op::kBr:
          check_bb(in.imm);
          break;
        case Op::kBrCond:
          check_reg(in.a, "cond");
          check_bb(in.imm);
          check_bb(in.imm2);
          break;
        case Op::kCall: {
          if (in.imm < 0 || in.imm >= static_cast<i64>(m.functions.size()))
            fail("call to nonexistent function " + std::to_string(in.imm));
          const Function& callee = m.functions[static_cast<std::size_t>(in.imm)];
          if (static_cast<int>(in.args.size()) != callee.num_args)
            fail("call to '" + callee.name + "' with " +
                 std::to_string(in.args.size()) + " args, expected " +
                 std::to_string(callee.num_args));
          for (Reg r : in.args) check_reg(r, "call arg");
          if (in.dst != kNoReg) check_reg(in.dst, "call dst");
          break;
        }
        case Op::kRet:
          if (in.a != kNoReg) check_reg(in.a, "ret value");
          break;
      }
    }
  }
}

}  // namespace

void verify(const Module& m) {
  std::unordered_set<std::string> names;
  for (std::size_t i = 0; i < m.functions.size(); ++i) {
    const Function& f = m.functions[i];
    if (f.id != static_cast<int>(i)) fatal("verify: function id out of order");
    if (!names.insert(f.name).second)
      fatal("verify: duplicate function name '" + f.name + "'");
    verify_function(m, f);
  }
}

namespace {

std::string reg_str(Reg r) { return "r" + std::to_string(r); }

std::string instr_str(const Module* m, const Instr& in) {
  std::ostringstream os;
  os << op_name(in.op);
  switch (in.op) {
    case Op::kConst:
      os << " " << reg_str(in.dst) << ", " << in.imm;
      break;
    case Op::kFConst: {
      double d;
      static_assert(sizeof d == sizeof in.imm);
      __builtin_memcpy(&d, &in.imm, sizeof d);
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.17g", d);  // exact round-trip
      os << " " << reg_str(in.dst) << ", " << buf;
      break;
    }
    case Op::kMov:
    case Op::kI2F:
    case Op::kF2I:
      os << " " << reg_str(in.dst) << ", " << reg_str(in.a);
      break;
    case Op::kAddI:
    case Op::kMulI:
      os << " " << reg_str(in.dst) << ", " << reg_str(in.a) << ", " << in.imm;
      break;
    case Op::kLoad:
      os << " " << reg_str(in.dst) << ", [" << reg_str(in.a);
      if (in.imm) os << " + " << in.imm;
      os << "]";
      break;
    case Op::kStore:
      os << " [" << reg_str(in.a);
      if (in.imm) os << " + " << in.imm;
      os << "], " << reg_str(in.b);
      break;
    case Op::kBr:
      os << " bb" << in.imm;
      break;
    case Op::kBrCond:
      os << " " << reg_str(in.a) << ", bb" << in.imm << ", bb" << in.imm2;
      break;
    case Op::kCall: {
      if (in.dst != kNoReg) os << " " << reg_str(in.dst) << " =";
      std::string callee =
          m ? m->functions[static_cast<std::size_t>(in.imm)].name
            : "f" + std::to_string(in.imm);
      os << " " << callee << "(";
      for (std::size_t i = 0; i < in.args.size(); ++i) {
        if (i) os << ", ";
        os << reg_str(in.args[i]);
      }
      os << ")";
      break;
    }
    case Op::kRet:
      if (in.a != kNoReg) os << " " << reg_str(in.a);
      break;
    default:
      os << " " << reg_str(in.dst) << ", " << reg_str(in.a) << ", "
         << reg_str(in.b);
      break;
  }
  if (in.line) os << "   ; line " << in.line;
  return os.str();
}

void print_function(std::ostringstream& os, const Module* m,
                    const Function& f) {
  os << "func " << f.name << "(" << f.num_args << " args, " << f.num_regs
     << " regs)";
  if (!f.source_file.empty()) os << "  ; " << f.source_file;
  os << "\n";
  for (const auto& bb : f.blocks) {
    os << "bb" << bb.id;
    if (!bb.label.empty()) os << " (" << bb.label << ")";
    os << ":\n";
    for (const auto& in : bb.instrs) os << "  " << instr_str(m, in) << "\n";
  }
}

}  // namespace

std::string print(const Function& f) {
  std::ostringstream os;
  print_function(os, nullptr, f);
  return os.str();
}

std::string print(const Module& m) {
  std::ostringstream os;
  for (const auto& g : m.globals)
    os << "global " << g.name << " @" << g.address << " size " << g.size_bytes
       << "\n";
  for (const auto& f : m.functions) {
    print_function(os, &m, f);
    os << "\n";
  }
  return os.str();
}

}  // namespace pp::ir
