// Fluent construction API for mini-ISA functions. Workload kernels are all
// written against this builder; it keeps block bookkeeping out of the
// kernels and lets them read close to the pseudo-assembly in the paper's
// Fig. 6.
#pragma once

#include "ir/ir.hpp"

namespace pp::ir {

class Builder {
 public:
  Builder(Module& m, Function& f) : module_(m), func_(f) {}

  Module& module() { return module_; }
  Function& function() { return func_; }

  /// Allocate a fresh virtual register.
  Reg fresh() { return func_.num_regs++; }

  /// Create a block; does not change the insertion point.
  int make_block(const std::string& label = "");

  /// Set the insertion point. Blocks are filled strictly via the builder.
  void set_block(int bb);
  int current_block() const { return cur_; }

  /// Current source line attached to subsequently emitted instructions.
  void set_line(int line) { line_ = line; }

  // --- straight-line emission helpers (all return the dst register) ---
  Reg const_(i64 v, Reg dst = kNoReg);
  Reg fconst(double v, Reg dst = kNoReg);
  Reg mov(Reg a, Reg dst = kNoReg);
  Reg add(Reg a, Reg b, Reg dst = kNoReg);
  Reg sub(Reg a, Reg b, Reg dst = kNoReg);
  Reg mul(Reg a, Reg b, Reg dst = kNoReg);
  Reg div(Reg a, Reg b, Reg dst = kNoReg);
  Reg rem(Reg a, Reg b, Reg dst = kNoReg);
  Reg and_(Reg a, Reg b, Reg dst = kNoReg);
  Reg or_(Reg a, Reg b, Reg dst = kNoReg);
  Reg xor_(Reg a, Reg b, Reg dst = kNoReg);
  Reg shl(Reg a, Reg b, Reg dst = kNoReg);
  Reg shr(Reg a, Reg b, Reg dst = kNoReg);
  Reg addi(Reg a, i64 imm, Reg dst = kNoReg);
  Reg muli(Reg a, i64 imm, Reg dst = kNoReg);
  Reg cmp(Op cmp_op, Reg a, Reg b, Reg dst = kNoReg);
  Reg fadd(Reg a, Reg b, Reg dst = kNoReg);
  Reg fsub(Reg a, Reg b, Reg dst = kNoReg);
  Reg fmul(Reg a, Reg b, Reg dst = kNoReg);
  Reg fdiv(Reg a, Reg b, Reg dst = kNoReg);
  Reg i2f(Reg a, Reg dst = kNoReg);
  Reg f2i(Reg a, Reg dst = kNoReg);
  Reg load(Reg addr, i64 offset = 0, Reg dst = kNoReg);
  void store(Reg addr, Reg value, i64 offset = 0);
  Reg call(Function& callee, const std::vector<Reg>& args, Reg dst = kNoReg);
  Reg call(Function& callee, const std::vector<Reg>& args, bool want_result);

  // --- terminators ---
  void br(int bb);
  void br_cond(Reg cond, int then_bb, int else_bb);
  void ret(Reg value = kNoReg);

  /// Emit a canonical counted-loop skeleton:
  ///   for (iv = begin; iv < end_reg; iv += step) body
  /// Creates header/body/latch/exit blocks; calls `body(iv)` with the
  /// insertion point inside the body block; leaves the insertion point at
  /// the exit block. Returns the induction-variable register.
  template <typename BodyFn>
  Reg counted_loop(i64 begin, Reg end_reg, i64 step, BodyFn body) {
    Reg iv = fresh();
    const_(begin, iv);
    int header = make_block("loop.header");
    int body_bb = make_block("loop.body");
    int exit_bb = make_block("loop.exit");
    br(header);
    set_block(header);
    Reg c = cmp(Op::kCmpLt, iv, end_reg);
    br_cond(c, body_bb, exit_bb);
    set_block(body_bb);
    body(iv);
    addi(iv, step, iv);
    br(header);
    set_block(exit_bb);
    return iv;
  }

 private:
  Instr& emit(Instr in);
  Reg ensure(Reg dst) { return dst == kNoReg ? fresh() : dst; }

  Module& module_;
  Function& func_;
  int cur_ = -1;
  int line_ = 0;
};

}  // namespace pp::ir
