// Parser for the mini-ISA's textual form — the exact format ir::print()
// emits, so modules round-trip:  parse(print(m)) == print-identical m.
// Useful for textual test fixtures and for inspecting dumped programs.
//
//   global conn @0 size 344
//   func main(0 args, 4 regs)  ; backprop.c
//   bb0 (entry):
//     const r0, 42   ; line 5
//     br bb1
//   ...
//
// Global initializer data is not part of the textual form (print() does
// not emit it); parsed modules have zero-initialized globals.
#pragma once

#include <string>

#include "ir/ir.hpp"

namespace pp::ir {

/// Parse a module from its textual form. Throws pp::Error with a line
/// number on malformed input. The result always passes ir::verify().
Module parse(const std::string& text);

}  // namespace pp::ir
