#include "ir/loop_nest.hpp"

#include <algorithm>
#include <set>

namespace pp::ir {

namespace {

// Registers read by an instruction (operand roles differ per opcode).
void instr_reads(const Instr& in, std::vector<Reg>& out) {
  out.clear();
  switch (in.op) {
    case Op::kConst:
    case Op::kFConst:
    case Op::kBr:
      return;
    case Op::kLoad:
    case Op::kMov:
    case Op::kAddI:
    case Op::kMulI:
    case Op::kI2F:
    case Op::kF2I:
    case Op::kBrCond:
      if (in.a != kNoReg) out.push_back(in.a);
      return;
    case Op::kRet:
      if (in.a != kNoReg) out.push_back(in.a);
      return;
    case Op::kStore:
      if (in.a != kNoReg) out.push_back(in.a);
      if (in.b != kNoReg) out.push_back(in.b);
      return;
    case Op::kCall:
      for (Reg r : in.args) out.push_back(r);
      return;
    default:
      if (in.a != kNoReg) out.push_back(in.a);
      if (in.b != kNoReg) out.push_back(in.b);
      return;
  }
}

bool reads_reg(const Instr& in, Reg r) {
  std::vector<Reg> rs;
  instr_reads(in, rs);
  return std::find(rs.begin(), rs.end(), r) != rs.end();
}

// Terminator targets of a block (empty for kRet).
void block_targets(const BasicBlock& bb, std::vector<int>& out) {
  out.clear();
  if (bb.instrs.empty()) return;
  const Instr& t = bb.instrs.back();
  if (t.op == Op::kBr) {
    out.push_back(static_cast<int>(t.imm));
  } else if (t.op == Op::kBrCond) {
    out.push_back(static_cast<int>(t.imm));
    out.push_back(static_cast<int>(t.imm2));
  }
}

// Interior blocks (body..latch), or empty + ok=false when the region has
// a side exit (a path from body that leaves without passing the header).
std::vector<int> interior_blocks(const Function& f, const CountedLoop& l,
                                 bool& ok) {
  ok = true;
  std::vector<int> order;
  std::set<int> seen;
  std::vector<int> work{l.body};
  seen.insert(l.body);
  std::vector<int> targets;
  while (!work.empty()) {
    int id = work.back();
    work.pop_back();
    order.push_back(id);
    const BasicBlock& bb = f.block(id);
    if (!bb.instrs.empty() && bb.instrs.back().op == Op::kRet) {
      ok = false;  // return from inside the loop
      return {};
    }
    block_targets(bb, targets);
    for (int t : targets) {
      if (t == l.header) continue;
      if (t == l.exit) {
        ok = false;  // side exit
        return {};
      }
      if (seen.insert(t).second) work.push_back(t);
    }
  }
  return order;
}

bool is_latch_block(const BasicBlock& bb, Reg iv, int header) {
  if (bb.instrs.size() < 2) return false;
  const Instr& br = bb.instrs.back();
  const Instr& inc = bb.instrs[bb.instrs.size() - 2];
  return br.op == Op::kBr && br.imm == header && inc.op == Op::kAddI &&
         inc.dst == iv && inc.a == iv;
}

}  // namespace

std::optional<CountedLoop> match_counted_loop(const Function& f, int header) {
  if (header < 0 || static_cast<std::size_t>(header) >= f.blocks.size())
    return std::nullopt;
  const BasicBlock& h = f.block(header);
  if (h.instrs.size() != 2) return std::nullopt;
  const Instr& cmp = h.instrs[0];
  const Instr& br = h.instrs[1];
  if (cmp.op != Op::kCmpLt && cmp.op != Op::kCmpLe) return std::nullopt;
  if (br.op != Op::kBrCond || br.a != cmp.dst) return std::nullopt;
  if (br.imm == br.imm2) return std::nullopt;
  CountedLoop l;
  l.header = header;
  l.body = static_cast<int>(br.imm);
  l.exit = static_cast<int>(br.imm2);
  l.iv = cmp.a;
  l.bound = cmp.b;
  l.cmp_dst = cmp.dst;
  l.cmp_op = cmp.op;
  if (l.iv == kNoReg || l.bound == kNoReg || l.iv == l.bound)
    return std::nullopt;

  // Predecessors: exactly one latch (tail [addi iv; br header]) and one
  // preheader (unconditional br, holds the init).
  std::vector<int> preds;
  std::vector<int> targets;
  for (const BasicBlock& bb : f.blocks) {
    block_targets(bb, targets);
    if (std::find(targets.begin(), targets.end(), header) != targets.end())
      preds.push_back(bb.id);
  }
  if (preds.size() != 2) return std::nullopt;
  for (int p : preds) {
    if (is_latch_block(f.block(p), l.iv, header)) {
      if (l.latch != -1) return std::nullopt;  // ambiguous
      l.latch = p;
    } else {
      l.preheader = p;
    }
  }
  if (l.latch == -1 || l.preheader == -1) return std::nullopt;
  const BasicBlock& ph = f.block(l.preheader);
  if (ph.instrs.empty() || ph.instrs.back().op != Op::kBr ||
      ph.instrs.back().imm != header)
    return std::nullopt;
  l.step = f.block(l.latch).instrs[f.block(l.latch).instrs.size() - 2].imm;
  if (l.step == 0) return std::nullopt;

  // The init: last write of iv in the preheader, a constant or a copy.
  for (int i = static_cast<int>(ph.instrs.size()) - 1; i >= 0; --i) {
    if (ph.instrs[static_cast<std::size_t>(i)].dst == l.iv) {
      l.init_index = i;
      break;
    }
  }
  if (l.init_index < 0) return std::nullopt;
  const Instr& init = ph.instrs[static_cast<std::size_t>(l.init_index)];
  if (init.op == Op::kConst) {
    l.init_is_const = true;
    l.begin = init.imm;
  } else if (init.op != Op::kMov) {
    return std::nullopt;
  }

  // Interior: single exit, no side entries, iv written only by the latch
  // increment, bound loop-invariant.
  bool ok = false;
  std::vector<int> interior = interior_blocks(f, l, ok);
  if (!ok) return std::nullopt;
  std::set<int> in_loop(interior.begin(), interior.end());
  if (in_loop.count(l.latch) == 0) return std::nullopt;
  if (in_loop.count(l.header) != 0 || in_loop.count(l.preheader) != 0)
    return std::nullopt;
  for (const BasicBlock& bb : f.blocks) {
    if (in_loop.count(bb.id) != 0 || bb.id == l.header) continue;
    block_targets(bb, targets);
    for (int t : targets)
      if (in_loop.count(t) != 0) return std::nullopt;  // side entry
  }
  for (int id : interior) {
    const BasicBlock& bb = f.block(id);
    for (std::size_t i = 0; i < bb.instrs.size(); ++i) {
      const Instr& in = bb.instrs[i];
      if (in.dst == l.bound) return std::nullopt;
      if (in.dst == l.iv &&
          !(id == l.latch && i == bb.instrs.size() - 2))
        return std::nullopt;
    }
  }
  return l;
}

std::vector<CountedLoop> find_counted_loops(const Function& f) {
  std::vector<CountedLoop> out;
  for (const BasicBlock& bb : f.blocks)
    if (auto l = match_counted_loop(f, bb.id)) out.push_back(*l);
  return out;
}

std::vector<int> loop_blocks(const Function& f, const CountedLoop& l) {
  bool ok = false;
  return interior_blocks(f, l, ok);
}

bool perfectly_nested(const Function& f, const CountedLoop& outer,
                      const CountedLoop& inner) {
  if (outer.header == inner.header) return false;
  if (outer.body != inner.preheader || inner.exit != outer.latch)
    return false;
  return f.block(outer.body).instrs.size() == 2 &&
         f.block(outer.latch).instrs.size() == 2;
}

bool sink_preheader_extras(Function& f, const CountedLoop& outer,
                           CountedLoop& inner) {
  if (outer.body != inner.preheader) return false;
  BasicBlock& b1 = f.block(inner.preheader);
  if (b1.instrs.size() <= 2) return true;  // already just [init, br]
  std::vector<Instr> extras;
  Instr init = b1.instrs[static_cast<std::size_t>(inner.init_index)];
  for (std::size_t i = 0; i + 1 < b1.instrs.size(); ++i) {
    if (static_cast<int>(i) == inner.init_index) continue;
    extras.push_back(b1.instrs[i]);
  }
  // The init must not consume a value that is about to move below it.
  for (const Instr& e : extras)
    if (e.dst != kNoReg && reads_reg(init, e.dst)) return false;
  Instr term = b1.instrs.back();
  b1.instrs = {init, term};
  BasicBlock& body = f.block(inner.body);
  body.instrs.insert(body.instrs.begin(), extras.begin(), extras.end());
  inner.init_index = 0;
  return true;
}

bool interchange(Function& f, const CountedLoop& outer,
                 const CountedLoop& inner) {
  if (!perfectly_nested(f, outer, inner)) return false;
  // Everything the headers and the (relocated) inits consume must be
  // defined before the nest and stay constant across it: a bound or init
  // fed by the other loop's iv (a triangular nest) cannot be interchanged
  // by a register swap.
  std::vector<Reg> invariant{outer.bound, inner.bound};
  const Instr& oinit =
      f.block(outer.preheader).instrs[static_cast<std::size_t>(outer.init_index)];
  const Instr& iinit =
      f.block(inner.preheader).instrs[static_cast<std::size_t>(inner.init_index)];
  for (const Instr* init : {&oinit, &iinit})
    if (init->op == Op::kMov) invariant.push_back(init->a);
  std::vector<int> nest = loop_blocks(f, outer);
  nest.push_back(outer.header);
  for (int bb : nest)
    for (const Instr& in : f.block(bb).instrs)
      for (Reg r : invariant)
        if (in.dst == r) return false;
  // Inits swap whole: each preheader now starts the other loop's variable.
  std::swap(
      f.block(outer.preheader).instrs[static_cast<std::size_t>(outer.init_index)],
      f.block(inner.preheader).instrs[static_cast<std::size_t>(inner.init_index)]);
  // Header comparisons swap their (op, operands) but keep their own dst:
  // each br_cond still reads the compare emitted in its own block.
  Instr& co = f.block(outer.header).instrs[0];
  Instr& ci = f.block(inner.header).instrs[0];
  std::swap(co.op, ci.op);
  std::swap(co.a, ci.a);
  std::swap(co.b, ci.b);
  // Latch increments swap whole.
  BasicBlock& ol = f.block(outer.latch);
  BasicBlock& il = f.block(inner.latch);
  std::swap(ol.instrs[ol.instrs.size() - 2], il.instrs[il.instrs.size() - 2]);
  return true;
}

std::optional<StripResult> strip_mine(Function& f, const CountedLoop& l,
                                      i64 tile) {
  if (l.step < 1 || tile < 2) return std::nullopt;
  if (l.cmp_op != Op::kCmpLt && l.cmp_op != Op::kCmpLe) return std::nullopt;
  BasicBlock& ph = f.block(l.preheader);
  if (ph.instrs.back().op != Op::kBr) return std::nullopt;
  // The preheader must not read iv after the init loses its destination.
  for (const Instr& in : ph.instrs)
    if (reads_reg(in, l.iv)) return std::nullopt;

  const int line = f.block(l.header).instrs[0].line;
  const Reg ivt = f.num_regs++;
  const Reg c0 = f.num_regs++;
  const Reg te_raw = f.num_regs++;
  const Reg cle = f.num_regs++;
  const Reg diff = f.num_regs++;
  const Reg masked = f.num_regs++;
  const Reg te = f.num_regs++;
  // Last tile-local iteration: iv < ivt + tile*step (kCmpLt) or
  // iv <= ivt + (tile-1)*step (kCmpLe).
  const i64 span = (l.cmp_op == Op::kCmpLt ? tile : tile - 1) * l.step;

  StripResult r;
  r.tile_header = static_cast<int>(f.blocks.size());
  r.tile_preheader = r.tile_header + 1;
  r.tile_latch = r.tile_header + 2;

  // Preheader now initializes the tile counter and enters the tile loop.
  ph.instrs[static_cast<std::size_t>(l.init_index)].dst = ivt;
  ph.instrs.back().imm = r.tile_header;

  auto ins = [&](Op op, Reg dst, Reg a, Reg b, i64 imm, i64 imm2) {
    Instr in;
    in.op = op;
    in.dst = dst;
    in.a = a;
    in.b = b;
    in.imm = imm;
    in.imm2 = imm2;
    in.line = line;
    return in;
  };

  BasicBlock th;
  th.id = r.tile_header;
  th.label = "tile.header";
  th.instrs.push_back(ins(l.cmp_op, c0, ivt, l.bound, 0, 0));
  th.instrs.push_back(
      ins(Op::kBrCond, kNoReg, c0, kNoReg, r.tile_preheader, l.exit));

  // Branchless te = min(ivt + span, bound):
  //   te = bound + (ivt+span <= bound) * ((ivt+span) - bound).
  BasicBlock tp;
  tp.id = r.tile_preheader;
  tp.label = "tile.preheader";
  tp.instrs.push_back(ins(Op::kAddI, te_raw, ivt, kNoReg, span, 0));
  tp.instrs.push_back(ins(Op::kCmpLe, cle, te_raw, l.bound, 0, 0));
  tp.instrs.push_back(ins(Op::kSub, diff, te_raw, l.bound, 0, 0));
  tp.instrs.push_back(ins(Op::kMul, masked, cle, diff, 0, 0));
  tp.instrs.push_back(ins(Op::kAdd, te, l.bound, masked, 0, 0));
  tp.instrs.push_back(ins(Op::kMov, l.iv, ivt, kNoReg, 0, 0));
  tp.instrs.push_back(ins(Op::kBr, kNoReg, kNoReg, kNoReg, l.header, 0));

  BasicBlock tl;
  tl.id = r.tile_latch;
  tl.label = "tile.latch";
  tl.instrs.push_back(ins(Op::kAddI, ivt, ivt, kNoReg, tile * l.step, 0));
  tl.instrs.push_back(ins(Op::kBr, kNoReg, kNoReg, kNoReg, r.tile_header, 0));

  // The original loop now runs one tile: bound becomes te, exit edge goes
  // to the tile latch.
  BasicBlock& h = f.block(l.header);
  h.instrs[0].b = te;
  Instr& hbr = h.instrs[1];
  if (hbr.imm == l.exit) hbr.imm = r.tile_latch;
  if (hbr.imm2 == l.exit) hbr.imm2 = r.tile_latch;

  f.blocks.push_back(std::move(th));
  f.blocks.push_back(std::move(tp));
  f.blocks.push_back(std::move(tl));
  return r;
}

bool tile2(Function& f, const CountedLoop& outer, const CountedLoop& inner,
           i64 tile) {
  if (!perfectly_nested(f, outer, inner)) return false;
  if (outer.step < 1 || inner.step < 1) return false;
  std::optional<StripResult> so = strip_mine(f, outer, tile);
  if (!so) return false;
  std::optional<StripResult> si = strip_mine(f, inner, tile);
  if (!si) return false;  // outer already stripped; caller rebuilds from copy
  // The middle pair is now (point loop of outer, tile loop of inner) —
  // re-match both (the structs above are stale) and swap them, giving the
  // classic (outer tiles, inner tiles, outer points, inner points) order.
  std::optional<CountedLoop> mo = match_counted_loop(f, outer.header);
  std::optional<CountedLoop> mi = match_counted_loop(f, si->tile_header);
  if (!mo || !mi) return false;
  return interchange(f, *mo, *mi);
}

bool fuse(Function& f, const CountedLoop& a, const CountedLoop& b) {
  if (a.exit != b.preheader) return false;
  if (a.cmp_op != b.cmp_op || a.step != b.step || a.step < 1) return false;
  if (a.bound != b.bound) return false;
  if (!a.init_is_const || !b.init_is_const || a.begin != b.begin)
    return false;

  bool ok_a = false;
  bool ok_b = false;
  CountedLoop amut = a;
  CountedLoop bmut = b;
  std::vector<int> ia = interior_blocks(f, amut, ok_a);
  std::vector<int> ib = interior_blocks(f, bmut, ok_b);
  if (!ok_a || !ok_b) return false;
  std::set<int> a_region(ia.begin(), ia.end());
  a_region.insert(a.header);
  std::set<int> b_inside(ib.begin(), ib.end());
  b_inside.insert(b.header);

  // b's induction variable and compare result die with b's header: their
  // final values change under fusion, so nothing outside b may read them.
  for (const BasicBlock& bb : f.blocks) {
    if (b_inside.count(bb.id) != 0) continue;
    for (const Instr& in : bb.instrs)
      if (reads_reg(in, b.iv) || reads_reg(in, b.cmp_dst)) return false;
  }

  // Hoistable extras in b's preheader: pure ALU ops, operands and results
  // untouched by loop a (they will run before it instead of after).
  BasicBlock& bph = f.block(b.preheader);
  std::vector<Instr> extras;
  std::vector<Reg> reads;
  for (std::size_t i = 0; i + 1 < bph.instrs.size(); ++i) {
    const Instr& e = bph.instrs[i];
    if (static_cast<int>(i) == b.init_index) continue;
    if (op_is_memory(e.op) || e.op == Op::kCall || op_is_terminator(e.op))
      return false;
    if (e.dst == kNoReg || e.dst == b.iv) return false;
    instr_reads(e, reads);
    for (Reg r : reads)
      if (r == b.iv) return false;
    for (int id : a_region) {
      for (const Instr& in : f.block(id).instrs) {
        if (in.dst == e.dst || reads_reg(in, e.dst)) return false;
        for (Reg r : reads)
          if (in.dst == r) return false;
      }
    }
    for (const Instr& in : f.block(a.preheader).instrs)
      if (in.dst == e.dst || reads_reg(in, e.dst)) return false;
    extras.push_back(e);
  }

  // Rewrite. Hoist the extras above loop a…
  BasicBlock& aph = f.block(a.preheader);
  aph.instrs.insert(aph.instrs.end() - 1, extras.begin(), extras.end());
  bph.instrs = {bph.instrs.back()};  // b's preheader: dead unconditional br
  // …chain a's latch into b's body (copying the shared position)…
  BasicBlock& al = f.block(a.latch);
  Instr& a_inc = al.instrs[al.instrs.size() - 2];
  a_inc.op = Op::kMov;
  a_inc.dst = b.iv;
  a_inc.a = a.iv;
  a_inc.b = kNoReg;
  a_inc.imm = 0;
  al.instrs.back().imm = b.body;
  // …and b's latch back to a's header with the one increment.
  BasicBlock& bl = f.block(b.latch);
  Instr& b_inc = bl.instrs[bl.instrs.size() - 2];
  b_inc.op = Op::kAddI;
  b_inc.dst = a.iv;
  b_inc.a = a.iv;
  b_inc.b = kNoReg;
  b_inc.imm = a.step;
  bl.instrs.back().imm = a.header;
  // a's exit edge skips straight to b's exit.
  Instr& hbr = f.block(a.header).instrs[1];
  if (hbr.imm == a.exit) hbr.imm = b.exit;
  if (hbr.imm2 == a.exit) hbr.imm2 = b.exit;
  // b's preheader and header are now dead, but they survive until
  // remove_unreachable_blocks runs. Point their edges at b's exit so the
  // dead island keeps no edge into the merged loop — otherwise the merged
  // loop fails match_counted_loop's side-entry check and chain fusion
  // (fuse the merged loop with the next one) stops after one step.
  bph.instrs.back().imm = b.exit;
  Instr& dead_hbr = f.block(b.header).instrs[1];
  dead_hbr.imm = b.exit;
  dead_hbr.imm2 = b.exit;
  return true;
}

int remove_unreachable_blocks(Function& f) {
  if (f.blocks.empty()) return 0;
  std::vector<char> seen(f.blocks.size(), 0);
  std::vector<int> work{0};
  std::vector<int> targets;
  seen[0] = 1;
  while (!work.empty()) {
    int id = work.back();
    work.pop_back();
    block_targets(f.block(id), targets);
    for (int t : targets) {
      if (seen[static_cast<std::size_t>(t)] == 0) {
        seen[static_cast<std::size_t>(t)] = 1;
        work.push_back(t);
      }
    }
  }
  std::vector<int> remap(f.blocks.size(), -1);
  int next = 0;
  for (std::size_t i = 0; i < f.blocks.size(); ++i)
    if (seen[i] != 0) remap[i] = next++;
  if (next == static_cast<int>(f.blocks.size())) return 0;
  std::vector<BasicBlock> kept;
  kept.reserve(static_cast<std::size_t>(next));
  for (std::size_t i = 0; i < f.blocks.size(); ++i) {
    if (seen[i] == 0) continue;
    BasicBlock bb = std::move(f.blocks[i]);
    bb.id = remap[i];
    Instr& t = bb.instrs.back();
    if (t.op == Op::kBr) {
      t.imm = remap[static_cast<std::size_t>(t.imm)];
    } else if (t.op == Op::kBrCond) {
      t.imm = remap[static_cast<std::size_t>(t.imm)];
      t.imm2 = remap[static_cast<std::size_t>(t.imm2)];
    }
    kept.push_back(std::move(bb));
  }
  const int removed = static_cast<int>(f.blocks.size()) - next;
  f.blocks = std::move(kept);
  return removed;
}

}  // namespace pp::ir
