#include "ir/parser.hpp"

#include <map>
#include <sstream>
#include <vector>

namespace pp::ir {

namespace {

struct Cursor {
  std::vector<std::string> lines;
  std::size_t pos = 0;

  bool done() const { return pos >= lines.size(); }
  const std::string& peek() const { return lines[pos]; }
  void next() { ++pos; }
  [[noreturn]] void fail(const std::string& why) const {
    fatal("ir parse error at line " + std::to_string(pos + 1) + ": " + why);
  }
};

// Split a line into tokens, treating ',', '[', ']', '(', ')' and '=' as
// separators, and cutting at the ';' comment marker.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  auto flush = [&] {
    if (!cur.empty()) {
      out.push_back(cur);
      cur.clear();
    }
  };
  for (std::size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (c == ';') break;  // comment — but capture it separately below
    if (c == ' ' || c == '\t' || c == ',' || c == '(' || c == ')' ||
        c == '[' || c == ']' || c == '=') {
      flush();
      continue;
    }
    cur.push_back(c);
  }
  flush();
  return out;
}

// Extract "; line N" / "; file" comments.
std::string comment_of(const std::string& line) {
  auto p = line.find(';');
  if (p == std::string::npos) return "";
  std::string c = line.substr(p + 1);
  while (!c.empty() && c.front() == ' ') c.erase(c.begin());
  while (!c.empty() && (c.back() == ' ' || c.back() == '\r')) c.pop_back();
  return c;
}

i64 parse_int(Cursor& cur, const std::string& tok) {
  try {
    std::size_t used = 0;
    i64 v = std::stoll(tok, &used);
    if (used != tok.size()) cur.fail("bad integer '" + tok + "'");
    return v;
  } catch (const std::exception&) {
    cur.fail("bad integer '" + tok + "'");
  }
}

double parse_double(Cursor& cur, const std::string& tok) {
  try {
    return std::stod(tok);
  } catch (const std::exception&) {
    cur.fail("bad floating constant '" + tok + "'");
  }
}

Reg parse_reg(Cursor& cur, const std::string& tok) {
  if (tok.size() < 2 || tok[0] != 'r') cur.fail("expected register, got '" + tok + "'");
  return static_cast<Reg>(parse_int(cur, tok.substr(1)));
}

int parse_bb(Cursor& cur, const std::string& tok) {
  if (tok.rfind("bb", 0) != 0) cur.fail("expected block, got '" + tok + "'");
  return static_cast<int>(parse_int(cur, tok.substr(2)));
}

int parse_line_comment(const std::string& comment) {
  // "line 42"
  if (comment.rfind("line ", 0) == 0)
    return static_cast<int>(std::stoll(comment.substr(5)));
  return 0;
}

Op op_from_name(Cursor& cur, const std::string& name) {
  static const std::map<std::string, Op> kOps = {
      {"const", Op::kConst}, {"mov", Op::kMov},     {"add", Op::kAdd},
      {"sub", Op::kSub},     {"mul", Op::kMul},     {"div", Op::kDiv},
      {"rem", Op::kRem},     {"addi", Op::kAddI},   {"muli", Op::kMulI},
      {"and", Op::kAnd},     {"or", Op::kOr},       {"xor", Op::kXor},
      {"shl", Op::kShl},     {"shr", Op::kShr},     {"cmpeq", Op::kCmpEq},
      {"cmpne", Op::kCmpNe}, {"cmplt", Op::kCmpLt}, {"cmple", Op::kCmpLe},
      {"cmpgt", Op::kCmpGt}, {"cmpge", Op::kCmpGe}, {"fadd", Op::kFAdd},
      {"fsub", Op::kFSub},   {"fmul", Op::kFMul},   {"fdiv", Op::kFDiv},
      {"fconst", Op::kFConst}, {"i2f", Op::kI2F},   {"f2i", Op::kF2I},
      {"load", Op::kLoad},   {"store", Op::kStore}, {"br", Op::kBr},
      {"brcond", Op::kBrCond}, {"call", Op::kCall}, {"ret", Op::kRet},
  };
  auto it = kOps.find(name);
  if (it == kOps.end()) cur.fail("unknown opcode '" + name + "'");
  return it->second;
}

// "load r5, [r3 + 16]" tokenizes to {load r5 r3 + 16}; handle the optional
// "+ off" tail shared by load/store.
i64 take_offset(Cursor& cur, const std::vector<std::string>& t,
                std::size_t from) {
  if (from >= t.size()) return 0;
  if (t[from] == "+" && from + 1 < t.size()) return parse_int(cur, t[from + 1]);
  cur.fail("bad address offset");
}

}  // namespace

Module parse(const std::string& text) {
  Cursor cur;
  {
    std::istringstream is(text);
    std::string l;
    while (std::getline(is, l)) cur.lines.push_back(l);
  }

  // Pass 1: function signatures (call instructions refer by name).
  std::map<std::string, int> func_ids;
  {
    Module probe;
    for (const auto& line : cur.lines) {
      auto t = tokenize(line);
      if (t.size() >= 4 && t[0] == "func")
        func_ids.emplace(t[1], static_cast<int>(func_ids.size()));
    }
  }

  Module m;
  Function* fn = nullptr;
  BasicBlock* bb = nullptr;

  while (!cur.done()) {
    std::string raw = cur.peek();
    std::string comment = comment_of(raw);
    auto t = tokenize(raw);
    if (t.empty()) {
      cur.next();
      continue;
    }

    if (t[0] == "global") {
      // global <name> @<addr> size <bytes>
      if (t.size() < 4 || t[1].empty()) cur.fail("malformed global");
      if (t[2][0] != '@') cur.fail("expected @address");
      i64 addr = parse_int(cur, t[2].substr(1));
      if (t[3] != "size" || t.size() < 5) cur.fail("expected size");
      i64 size = parse_int(cur, t[4]);
      i64 got = m.add_global(t[1], size);
      if (got != addr)
        cur.fail("global address mismatch (got " + std::to_string(got) +
                 ", text says " + std::to_string(addr) + ")");
      cur.next();
      continue;
    }

    if (t[0] == "func") {
      // func <name>(<n> args, <m> regs)   ; source
      // tokens: {func, name, N, args, M, regs}
      if (t.size() < 6 || t[3] != "args" || t[5] != "regs")
        cur.fail("malformed func header");
      int num_args = static_cast<int>(parse_int(cur, t[2]));
      int num_regs = static_cast<int>(parse_int(cur, t[4]));
      fn = &m.add_function(t[1], num_args, comment);
      fn->num_regs = num_regs;
      bb = nullptr;
      cur.next();
      continue;
    }

    if (t[0].rfind("bb", 0) == 0 && raw.find(':') != std::string::npos &&
        raw.find("  ") != 0) {
      if (!fn) cur.fail("block outside function");
      std::string head = t[0];
      auto colon = head.find(':');
      if (colon != std::string::npos) head = head.substr(0, colon);
      int id = parse_bb(cur, head);
      // Optional "(label)" was split off by the tokenizer into t[1].
      std::string label;
      if (t.size() >= 2) {
        label = t[1];
        auto c2 = label.find(':');
        if (c2 != std::string::npos) label = label.substr(0, c2);
      }
      fn->blocks.push_back({id, label, {}});
      bb = &fn->blocks.back();
      cur.next();
      continue;
    }

    // Otherwise: an instruction line.
    if (!fn || !bb) cur.fail("instruction outside a block");
    Instr in;
    in.line = parse_line_comment(comment);
    in.op = op_from_name(cur, t[0]);
    try {
    switch (in.op) {
      case Op::kConst:
        in.dst = parse_reg(cur, t.at(1));
        in.imm = parse_int(cur, t.at(2));
        break;
      case Op::kFConst: {
        in.dst = parse_reg(cur, t.at(1));
        double d = parse_double(cur, t.at(2));
        __builtin_memcpy(&in.imm, &d, sizeof in.imm);
        break;
      }
      case Op::kMov:
      case Op::kI2F:
      case Op::kF2I:
        in.dst = parse_reg(cur, t.at(1));
        in.a = parse_reg(cur, t.at(2));
        break;
      case Op::kAddI:
      case Op::kMulI:
        in.dst = parse_reg(cur, t.at(1));
        in.a = parse_reg(cur, t.at(2));
        in.imm = parse_int(cur, t.at(3));
        break;
      case Op::kLoad:
        in.dst = parse_reg(cur, t.at(1));
        in.a = parse_reg(cur, t.at(2));
        in.imm = take_offset(cur, t, 3);
        break;
      case Op::kStore:
        in.a = parse_reg(cur, t.at(1));
        if (t.size() >= 4 && t[2] == "+") {
          in.imm = parse_int(cur, t.at(3));
          in.b = parse_reg(cur, t.at(4));
        } else {
          in.b = parse_reg(cur, t.at(2));
        }
        break;
      case Op::kBr:
        in.imm = parse_bb(cur, t.at(1));
        break;
      case Op::kBrCond:
        in.a = parse_reg(cur, t.at(1));
        in.imm = parse_bb(cur, t.at(2));
        in.imm2 = parse_bb(cur, t.at(3));
        break;
      case Op::kCall: {
        // "call r3 = callee(r1, r2)" or "call callee(r1)"; '=' and parens
        // were eaten by the tokenizer: {call, r3, callee, r1, r2} or
        // {call, callee, r1}.
        std::size_t idx = 1;
        if (t.size() > 1 && t[1].size() > 1 && t[1][0] == 'r' &&
            func_ids.count(t[1]) == 0 &&
            t[1].find_first_not_of("0123456789", 1) == std::string::npos) {
          in.dst = parse_reg(cur, t[1]);
          idx = 2;
        }
        auto fit = func_ids.find(t.at(idx));
        if (fit == func_ids.end()) cur.fail("call to unknown function '" + t.at(idx) + "'");
        in.imm = fit->second;
        for (std::size_t k = idx + 1; k < t.size(); ++k)
          in.args.push_back(parse_reg(cur, t[k]));
        break;
      }
      case Op::kRet:
        if (t.size() > 1) in.a = parse_reg(cur, t.at(1));
        break;
      default:  // three-register arithmetic/compare
        in.dst = parse_reg(cur, t.at(1));
        in.a = parse_reg(cur, t.at(2));
        in.b = parse_reg(cur, t.at(3));
        break;
    }
    } catch (const std::out_of_range&) {
      cur.fail("missing operand for '" + t[0] + "'");
    }
    bb->instrs.push_back(std::move(in));
    cur.next();
  }

  verify(m);
  return m;
}

}  // namespace pp::ir
