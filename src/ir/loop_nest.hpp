// Loop-nest recognition and rewriting on mini-ISA CFGs — the mechanics
// behind pp::transform. The profiler's feedback names *schedules*
// (interchange, tile, fuse); these utilities regenerate the corresponding
// mini-ISA control flow so the transformed module can be re-executed and
// re-measured under the VM cost model.
//
// Everything here is *mechanical*: a matched CountedLoop is rewritten
// without consulting dependences. Legality (dependence distances, oracle
// claims) is the caller's contract — pp::transform decides it from the
// folded DDG and the scheduler's bands. The register-level side conditions
// (induction variable written nowhere else, bound loop-invariant, fused
// trip counts provably equal) ARE checked here, because they are purely
// structural; a rewrite whose side conditions fail returns false and
// leaves the function untouched.
#pragma once

#include <optional>
#include <vector>

#include "ir/ir.hpp"

namespace pp::ir {

/// A canonical counted loop  for (iv = init; iv <op> bound; iv += step)
/// as emitted by Builder::counted_loop or hand-rolled in the same shape:
///   preheader: [... init iv ...; br header]
///   header:    [c = cmp op iv, bound; br_cond c, body, exit]
///   body..latch: [...; addi iv, step, iv; br header]
/// The latch tail may share a block with the body (Builder always does).
struct CountedLoop {
  int header = -1;
  int preheader = -1;  ///< unique non-latch predecessor
  int latch = -1;      ///< unique back-edge predecessor
  int body = -1;       ///< br_cond true target
  int exit = -1;       ///< br_cond false target
  Reg iv = kNoReg;
  Reg bound = kNoReg;    ///< cmp's b operand; loop-invariant register
  Reg cmp_dst = kNoReg;
  Op cmp_op = Op::kCmpLt;  ///< kCmpLt or kCmpLe
  i64 step = 0;            ///< latch increment (> 0 for all rewrites here)
  int init_index = -1;     ///< position of the iv init inside preheader
  bool init_is_const = false;
  i64 begin = 0;  ///< valid when init_is_const
};

/// Match the canonical shape rooted at `header`. Enforces the structural
/// side conditions: exactly two predecessors (preheader + latch), iv
/// written only by its init and the latch increment, bound never written
/// inside the loop, no side entries into the loop region.
std::optional<CountedLoop> match_counted_loop(const Function& f, int header);

/// All counted loops of `f`, in header-block order.
std::vector<CountedLoop> find_counted_loops(const Function& f);

/// Interior blocks of the loop (body through latch, excluding header and
/// exit), in discovery order from `body`.
std::vector<int> loop_blocks(const Function& f, const CountedLoop& l);

/// True when (outer, inner) form a perfect pair ready for interchange:
/// outer's body *is* inner's preheader holding nothing but inner's init,
/// and inner's exit *is* outer's latch holding nothing but the increment.
bool perfectly_nested(const Function& f, const CountedLoop& outer,
                      const CountedLoop& inner);

/// Move every instruction of inner's preheader (= outer's body block)
/// except inner's init and the terminator to the *front* of inner's body,
/// making the pair perfectly nested. Purely mechanical: the instructions
/// then execute once per inner iteration instead of once per outer one,
/// which preserves semantics only when the caller has proven the moved
/// instructions idempotent within the nest (pure ops, or loads that no
/// nest store may alias). Returns false (function untouched) if inner's
/// init reads a register defined by a moved instruction.
bool sink_preheader_extras(Function& f, const CountedLoop& outer,
                           CountedLoop& inner);

/// Swap the two loops of a perfect pair in place (three-way swap of init
/// instructions, header comparisons and latch increments). Block ids and
/// branch targets are untouched, so enclosing CountedLoop handles stay
/// valid; `outer` and `inner` themselves are stale afterwards — re-match.
/// Returns false (untouched) when the pair is not perfectly nested.
bool interchange(Function& f, const CountedLoop& outer,
                 const CountedLoop& inner);

/// Blocks appended by strip_mine, so callers can re-match the new loops.
struct StripResult {
  int tile_header = -1;
  int tile_preheader = -1;
  int tile_latch = -1;
};

/// Strip-mine `l` by `tile` iterations: a new tile loop (fresh induction
/// variable ivt stepping tile*step) wraps the original loop, whose bound
/// becomes min(ivt + tile*step, bound) computed branchlessly in the tile
/// preheader. Appends three blocks; existing block ids are untouched.
/// Requires step >= 1, tile >= 2 and an unconditional-branch preheader.
std::optional<StripResult> strip_mine(Function& f, const CountedLoop& l,
                                      i64 tile);

/// 2-D tiling of a perfect pair: strip-mine both loops, then interchange
/// the middle pair, yielding the classic (ot, it, o, i) order. Returns
/// false (function untouched) if any step fails its preconditions.
bool tile2(Function& f, const CountedLoop& outer, const CountedLoop& inner,
           i64 tile);

/// Fuse two adjacent counted loops (a.exit == b.preheader) with provably
/// equal trip spaces: same cmp_op, same step, same bound register, equal
/// constant inits. After fusion every iteration runs a's body then b's
/// body with b.iv copied from a.iv; b's header and preheader become
/// unreachable. Preheader instructions of b other than its init are
/// hoisted above loop a when they are pure ALU ops with operands defined
/// outside the fused region; any other extra refuses the fusion. Also
/// refuses when b.iv or b.cmp_dst is read outside b's body (their final
/// values change). Memory legality (no dependence forcing a's later
/// iterations before b's earlier ones) is the caller's contract.
bool fuse(Function& f, const CountedLoop& a, const CountedLoop& b);

/// Drop blocks unreachable from the entry block, renumbering the survivors
/// and rewriting branch targets. Returns the number of blocks removed.
int remove_unreachable_blocks(Function& f);

}  // namespace pp::ir
