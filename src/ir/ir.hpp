// The polyprof mini-ISA: a low-level three-address IR that plays the role
// of "compiled binary" in this reproduction. The paper instruments real
// x86/ARM binaries through QEMU; every downstream stage, however, consumes
// only the *event stream* (control transfers, memory addresses, produced
// values). Programs in this IR — with explicit address arithmetic,
// unstructured control flow, calls and recursion — produce exactly that
// stream through pp::vm.
//
// Deliberate "binary-like" properties:
//  * no structured loops: only conditional/unconditional branches,
//  * addresses computed with ordinary integer arithmetic (so the profiler
//    must recover strides/SCEVs, they are not given),
//  * unlimited virtual registers but no types beyond 64-bit words
//    (FP ops operate on double bit-patterns, flagged for %FPops metrics),
//  * optional debug info (file/line) that feedback maps regions onto.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "support/diag.hpp"
#include "support/int_math.hpp"

namespace pp::ir {

using Reg = int;               ///< virtual register index within a function
inline constexpr Reg kNoReg = -1;

/// Opcode set. Arithmetic is 64-bit two's complement; *F* variants operate
/// on IEEE doubles stored as bit patterns and are counted as FP operations.
enum class Op : std::uint8_t {
  kConst,   // dst = imm
  kMov,     // dst = a
  kAdd, kSub, kMul, kDiv, kRem,         // dst = a <op> b
  kAddI, kMulI,                         // dst = a <op> imm
  kAnd, kOr, kXor, kShl, kShr,          // dst = a <op> b
  kCmpEq, kCmpNe, kCmpLt, kCmpLe, kCmpGt, kCmpGe,  // dst = (a <op> b) ? 1:0
  kFAdd, kFSub, kFMul, kFDiv,           // double bit-pattern arithmetic
  kFConst,                              // dst = bit pattern of double imm
  kI2F, kF2I,                           // conversions
  kLoad,    // dst = mem[a + imm]
  kStore,   // mem[a + imm] = b
  kBr,      // goto bb(imm)
  kBrCond,  // if (a != 0) goto bb(imm) else goto bb(imm2)
  kCall,    // dst = call fn(imm) with args regs
  kRet,     // return a (or nothing when a == kNoReg)
};

const char* op_name(Op op);
bool op_is_terminator(Op op);
bool op_is_fp(Op op);
bool op_is_memory(Op op);

/// One instruction. Operand meaning depends on the opcode (see Op).
struct Instr {
  Op op;
  Reg dst = kNoReg;
  Reg a = kNoReg;
  Reg b = kNoReg;
  i64 imm = 0;
  i64 imm2 = 0;
  std::vector<Reg> args;  ///< kCall only
  int line = 0;           ///< debug info: source line (0 = unknown)
};

/// A basic block: straight-line instructions ending in a terminator.
struct BasicBlock {
  int id = -1;
  std::string label;
  std::vector<Instr> instrs;
};

/// A function: blocks + register count. Block 0 is the entry.
struct Function {
  int id = -1;
  std::string name;
  std::string source_file;  ///< debug info
  int num_args = 0;
  int num_regs = 0;
  std::vector<BasicBlock> blocks;

  BasicBlock& block(int id_) {
    PP_CHECK(id_ >= 0 && static_cast<std::size_t>(id_) < blocks.size(),
             "bad block id");
    return blocks[static_cast<std::size_t>(id_)];
  }
  const BasicBlock& block(int id_) const {
    return const_cast<Function*>(this)->block(id_);
  }
};

/// A named byte region in the module's flat data segment.
struct Global {
  std::string name;
  i64 address = 0;      ///< byte address in VM memory
  i64 size_bytes = 0;
  std::vector<i64> init_words;  ///< optional 8-byte-word initializer
};

/// A whole program: functions + globals. Function 0 need not be the entry;
/// the VM takes the entry by name.
struct Module {
  /// deque, not vector: add_function hands out stable references that must
  /// survive later additions (builder code holds Function& across calls).
  std::deque<Function> functions;
  std::vector<Global> globals;
  i64 data_segment_size = 0;

  Function& add_function(const std::string& name, int num_args,
                         const std::string& source_file = "");
  /// Reserve `size_bytes` (8-aligned) in the data segment; returns address.
  i64 add_global(const std::string& name, i64 size_bytes);
  /// Global with word initializers (size = 8 * words).
  i64 add_global_init(const std::string& name, std::vector<i64> words);

  Function* find_function(const std::string& name);
  const Function* find_function(const std::string& name) const;
  const Global* find_global(const std::string& name) const;
};

/// Structural validation: register/block/function indices in range, blocks
/// non-empty and properly terminated, no terminators mid-block. Throws
/// pp::Error with a description of the first problem found.
void verify(const Module& m);

/// Human-readable disassembly of a function / module.
std::string print(const Function& f);
std::string print(const Module& m);

}  // namespace pp::ir
