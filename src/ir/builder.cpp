#include "ir/builder.hpp"

namespace pp::ir {

int Builder::make_block(const std::string& label) {
  BasicBlock bb;
  bb.id = static_cast<int>(func_.blocks.size());
  bb.label = label;
  func_.blocks.push_back(std::move(bb));
  return func_.blocks.back().id;
}

void Builder::set_block(int bb) {
  PP_CHECK(bb >= 0 && static_cast<std::size_t>(bb) < func_.blocks.size(),
           "set_block: bad block");
  cur_ = bb;
}

Instr& Builder::emit(Instr in) {
  PP_CHECK(cur_ >= 0, "no insertion block set");
  in.line = line_;
  auto& instrs = func_.blocks[static_cast<std::size_t>(cur_)].instrs;
  PP_CHECK(instrs.empty() || !op_is_terminator(instrs.back().op),
           "emitting into a terminated block");
  instrs.push_back(std::move(in));
  return instrs.back();
}

Reg Builder::const_(i64 v, Reg dst) {
  dst = ensure(dst);
  emit({.op = Op::kConst, .dst = dst, .imm = v});
  return dst;
}

Reg Builder::fconst(double v, Reg dst) {
  dst = ensure(dst);
  i64 bits;
  __builtin_memcpy(&bits, &v, sizeof bits);
  emit({.op = Op::kFConst, .dst = dst, .imm = bits});
  return dst;
}

Reg Builder::mov(Reg a, Reg dst) {
  dst = ensure(dst);
  emit({.op = Op::kMov, .dst = dst, .a = a});
  return dst;
}

#define PP_BIN(name, opcode)                       \
  Reg Builder::name(Reg a, Reg b, Reg dst) {       \
    dst = ensure(dst);                             \
    emit({.op = opcode, .dst = dst, .a = a, .b = b, .imm = 0, .imm2 = 0, .args = {}, .line = 0}); \
    return dst;                                    \
  }
PP_BIN(add, Op::kAdd)
PP_BIN(sub, Op::kSub)
PP_BIN(mul, Op::kMul)
PP_BIN(div, Op::kDiv)
PP_BIN(rem, Op::kRem)
PP_BIN(and_, Op::kAnd)
PP_BIN(or_, Op::kOr)
PP_BIN(xor_, Op::kXor)
PP_BIN(shl, Op::kShl)
PP_BIN(shr, Op::kShr)
PP_BIN(fadd, Op::kFAdd)
PP_BIN(fsub, Op::kFSub)
PP_BIN(fmul, Op::kFMul)
PP_BIN(fdiv, Op::kFDiv)
#undef PP_BIN

Reg Builder::addi(Reg a, i64 imm, Reg dst) {
  dst = ensure(dst);
  emit({.op = Op::kAddI, .dst = dst, .a = a, .imm = imm});
  return dst;
}

Reg Builder::muli(Reg a, i64 imm, Reg dst) {
  dst = ensure(dst);
  emit({.op = Op::kMulI, .dst = dst, .a = a, .imm = imm});
  return dst;
}

Reg Builder::cmp(Op cmp_op, Reg a, Reg b, Reg dst) {
  dst = ensure(dst);
  emit({.op = cmp_op, .dst = dst, .a = a, .b = b});
  return dst;
}

Reg Builder::i2f(Reg a, Reg dst) {
  dst = ensure(dst);
  emit({.op = Op::kI2F, .dst = dst, .a = a});
  return dst;
}

Reg Builder::f2i(Reg a, Reg dst) {
  dst = ensure(dst);
  emit({.op = Op::kF2I, .dst = dst, .a = a});
  return dst;
}

Reg Builder::load(Reg addr, i64 offset, Reg dst) {
  dst = ensure(dst);
  emit({.op = Op::kLoad, .dst = dst, .a = addr, .imm = offset});
  return dst;
}

void Builder::store(Reg addr, Reg value, i64 offset) {
  emit({.op = Op::kStore, .a = addr, .b = value, .imm = offset});
}

Reg Builder::call(Function& callee, const std::vector<Reg>& args, Reg dst) {
  emit({.op = Op::kCall, .dst = dst, .imm = callee.id, .args = args});
  return dst;
}

Reg Builder::call(Function& callee, const std::vector<Reg>& args,
                  bool want_result) {
  return call(callee, args, want_result ? fresh() : kNoReg);
}

void Builder::br(int bb) { emit({.op = Op::kBr, .imm = bb}); }

void Builder::br_cond(Reg cond, int then_bb, int else_bb) {
  emit({.op = Op::kBrCond, .a = cond, .imm = then_bb, .imm2 = else_bb});
}

void Builder::ret(Reg value) { emit({.op = Op::kRet, .a = value}); }

}  // namespace pp::ir
